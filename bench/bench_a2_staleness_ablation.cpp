// Ablation A2 (DESIGN.md §6 ◊): what does stamp-based staleness filtering
// buy over applying reports in raw arrival order?
//
// The delivery-order baseline applies every update as it arrives; the
// strobe detectors discard updates that their stamps show to be superseded.
// The difference only matters when the network reorders a sensor's own
// reports — so we sweep the delay *variance* at fixed mean by comparing the
// fixed-delay model (no reordering possible) against uniform and
// exponential models at the same mean.
//
// Expected: identical scores under fixed delay; the baseline degrades as
// delay variance (hence per-sender reordering) grows, while the stamped
// detectors degrade only with cross-sender races.

#include <cstdio>

#include "analysis/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace psn;

  constexpr std::size_t kReps = 12;
  std::printf(
      "A2: staleness-filter ablation — delay variance at ~constant mean "
      "(2 doors, 10 events/s, %zu seeds x 60 s)\n\n",
      kReps);

  Table table({"delay model", "mean (ms)", "baseline FP+FN", "scalar FP+FN",
               "vector FP+FN", "vector uncovered FP+FN",
               "baseline belief acc", "scalar belief acc"});

  struct Case {
    const char* label;
    core::DelayKind kind;
    std::int64_t delta_ms;  // parameter, chosen for ~equal mean delay
  };
  // fixed(100) mean 100; uniform[18,180] mean ~99; exponential mean 100.
  const Case cases[] = {
      {"fixed (no reordering)", core::DelayKind::kFixed, 100},
      {"uniform bounded", core::DelayKind::kUniformBounded, 180},
      {"exponential (heavy tail)", core::DelayKind::kExponential, 100},
  };

  analysis::OccupancyConfig base_cfg;
  base_cfg.doors = 2;
  base_cfg.capacity = 50;
  base_cfg.movement_rate = 10.0;
  base_cfg.horizon = Duration::seconds(60);
  base_cfg.seed = 500;
  base_cfg.score_tolerance = Duration::millis(500);

  // The delay model and its Δ parameter move together, so they form one
  // custom axis rather than two independent ones.
  std::vector<analysis::SweepSpec::Mutator> delay_axis;
  for (const auto& c : cases) {
    delay_axis.push_back([c](analysis::OccupancyConfig& cfg) {
      cfg.delay_kind = c.kind;
      cfg.delta = Duration::millis(c.delta_ms);
    });
  }

  const auto result = analysis::sweep(base_cfg)
                          .vary_custom(delay_axis)
                          .replications(kReps)
                          .run();

  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const auto& point = result.points[i];
    const Case& c = cases[i];
    const auto& base = point.at("delivery-order");
    const auto& scalar = point.at("strobe-scalar");
    const auto& vector = point.at("strobe-vector");

    table.row()
        .cell(c.label)
        .cell(c.kind == core::DelayKind::kUniformBounded
                  ? (18 + c.delta_ms) / 2
                  : c.delta_ms)
        .cell(base.score.false_positives + base.score.false_negatives)
        .cell(scalar.score.false_positives + scalar.score.false_negatives)
        .cell(vector.score.false_positives + vector.score.false_negatives)
        // Races the vector detector *flagged* are not silent errors; the
        // uncovered remainder is its real error count.
        .cell(vector.score.false_positives + vector.score.false_negatives -
              vector.score.fn_covered_by_borderline)
        .cell(base.belief_accuracy.mean(), 4)
        .cell(scalar.belief_accuracy.mean(), 4);
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Reading: under fixed delay the rows agree (nothing to filter); with\n"
      "variance, the unstamped baseline accumulates extra errors from its\n"
      "own senders' reports arriving out of order.\n");
  return 0;
}
