// Ablation A4 — the paper's §5 "consensus based algorithm using vector
// strobes": race classification by multi-observer agreement instead of (or
// on top of) single-observer stamp concurrency.
//
// Each sensor keeps its own observation log; a transition is confident only
// if every observer derived it identically. Compare against the
// single-observer stamp heuristic on identical runs.
//
// Expected: consensus precision ≥ single-observer precision (disagreement
// catches stale-ordering races the stamp rule misses), at the cost of a
// larger borderline bin and O(n) observer state.

#include <cstdio>
#include <numeric>
#include <utility>
#include <vector>

#include "analysis/scoring.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/consensus.hpp"
#include "core/oracle.hpp"
#include "core/predicate_parser.hpp"
#include "world/scenarios.hpp"

namespace {

using namespace psn;

struct SeedScores {
  analysis::DetectionScore single;
  analysis::DetectionScore consensus;
};

/// One full system build + run + consensus scoring for one seed. Pure
/// function of (delta_ms, seed), so seeds fan out across the pool.
SeedScores run_consensus_seed(std::int64_t delta_ms, std::uint64_t seed) {
  core::SystemConfig sys;
  sys.num_sensors = 3;
  sys.sim.seed = seed;
  sys.sim.horizon = SimTime::zero() + Duration::seconds(60);
  sys.delta = Duration::millis(delta_ms);
  core::PervasiveSystem system(sys);
  core::enable_all_observers(system);

  world::ExhibitionHallConfig hall_cfg;
  hall_cfg.doors = 3;
  hall_cfg.capacity = 50;
  hall_cfg.movement_rate = 12.0;
  hall_cfg.target_occupancy = 50;
  hall_cfg.initial_occupancy = 40;
  world::ExhibitionHall hall(system.world(), hall_cfg,
                             system.sim().rng_for("hall"));
  for (int k = 0; k < 3; ++k) {
    const auto pid = static_cast<ProcessId>(k + 1);
    system.assign(hall.door_object(k), "entered", pid);
    system.assign(hall.door_object(k), "exited", pid);
  }
  hall.start();
  system.run();

  const auto phi =
      core::parse_predicate("overcrowded", "sum(entered) - sum(exited) > 50");
  const core::GroundTruthOracle oracle(phi, system.sensing());
  const auto truth =
      oracle.evaluate(system.timeline(), SimTime::zero() + Duration::seconds(60));
  analysis::ScoreConfig score_cfg;
  score_cfg.tolerance = Duration::millis(2 * delta_ms + 1);

  const auto single_dets = core::StrobeVectorDetector().run(system.log(), phi);
  const auto logs = core::ConsensusStrobeDetector::observer_logs(system);
  const auto consensus_dets = core::ConsensusStrobeDetector().run(logs, phi);

  SeedScores scores;
  scores.single = analysis::score_detections(truth, single_dets, score_cfg);
  scores.consensus =
      analysis::score_detections(truth, consensus_dets, score_cfg);
  return scores;
}

}  // namespace

int main() {
  using namespace psn;

  constexpr std::size_t kReps = 10;
  std::printf(
      "A4: consensus vs single-observer borderline classification "
      "(3-door hall, capacity 50, 12 movements/s, %zu seeds x 60 s)\n\n",
      kReps);

  Table table({"Delta (ms)", "occurrences", "single FP", "consensus FP",
               "single precision", "consensus precision", "single bin",
               "consensus bin", "recall w/ bin (cons.)"});

  ThreadPool pool(0);  // one worker per hardware thread
  std::vector<std::uint64_t> seeds(kReps);
  std::iota(seeds.begin(), seeds.end(), 1);

  for (const std::int64_t delta_ms : {25, 75, 150, 300}) {
    // Seeds are independent runs; merge in seed order keeps the totals
    // identical to the old sequential loop at any pool size.
    const auto per_seed =
        parallel_map(pool, seeds, [delta_ms](const std::uint64_t& seed) {
          return run_consensus_seed(delta_ms, seed);
        });
    analysis::DetectionScore single_total, consensus_total;
    for (const SeedScores& s : per_seed) {
      single_total += s.single;
      consensus_total += s.consensus;
    }

    table.row()
        .cell(delta_ms)
        .cell(single_total.oracle_occurrences)
        .cell(single_total.false_positives)
        .cell(consensus_total.false_positives)
        .cell(single_total.precision(), 3)
        .cell(consensus_total.precision(), 3)
        .cell(single_total.borderline_detections)
        .cell(consensus_total.borderline_detections)
        .cell(consensus_total.recall_with_borderline(), 3);
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Reading: multi-observer agreement removes residual confident FPs the\n"
      "stamp heuristic lets through (the E6 caveat in EXPERIMENTS.md), at\n"
      "the price of a larger borderline bin — the full §5 claim, 'false\n"
      "positives AND most false negatives in the borderline bin'.\n");
  return 0;
}
