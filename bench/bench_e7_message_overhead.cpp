// E7 — paper §4.2.2 ("[the strobe scalar] is lightweight — strobe size is
// O(1), not O(n)") and §3.2.1.a.ii ("this service does not come for free to
// the application; the lower layers pay the cost"): message and byte cost of
// each option to implement the single time axis, per n.
//
//   - strobe scalar:   broadcast per sense event, O(1) stamp
//   - strobe vector:   broadcast per sense event, O(n) stamp
//   - physical clocks: report to root per sense event, O(1) stamp, PLUS the
//     periodic sync-protocol traffic (RBS and TPSN measured empirically)
//
// Expected shape: vector bytes grow linearly with n at equal message counts;
// the physical option moves cost into sync traffic that exists even when
// nothing is sensed.

#include <cstdio>

#include "analysis/energy.hpp"
#include "analysis/experiments.hpp"
#include "clocks/sync_protocols.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

int main() {
  using namespace psn;

  std::printf(
      "E7: message overhead per option (60 s run, 10 events/s, Delta = 50 ms; "
      "sync assumed every 30 s)\n\n");

  Table table({"n (doors)", "reports", "scalar bytes", "vector bytes",
               "vector/scalar", "physical bytes", "RBS sync msgs/h",
               "RBS sync bytes/h", "TPSN sync msgs/h", "TPSN bytes/h",
               "achieved eps (RBS)"});

  for (const std::size_t doors : {2u, 4u, 8u, 16u, 32u}) {
    analysis::OccupancyConfig cfg;
    cfg.doors = doors;
    cfg.capacity = 50;
    cfg.movement_rate = 10.0;
    cfg.delta = Duration::millis(50);
    cfg.horizon = Duration::seconds(60);
    cfg.seed = 7;
    const auto run = analysis::run_occupancy_experiment(cfg);

    // Per-mode wire bytes, *measured by the transport*: every strobe
    // transmission is priced under all three modes in parallel
    // (MessageStats::strobe_mode_bytes), so one run answers E7 for each
    // deployment option without re-running.
    const std::size_t fanout = doors;  // root + (doors-1) other sensors
    const auto& mode_bytes = run.message_stats.strobe_mode_bytes;
    const std::size_t scalar_bytes = mode_bytes.scalar;
    const std::size_t vector_bytes = mode_bytes.vector;
    // Physical mode needs no system-wide broadcast — report to root only, so
    // divide out the broadcast fan-out the strobe accounting includes.
    const std::size_t physical_bytes = mode_bytes.physical / fanout;

    // Reconciliation: with zero loss every sense reaches the root exactly
    // once, so observed_updates == reports, and the measured totals must
    // equal reports x fanout x per-mode payload size. This is the check the
    // old hand-computed version silently failed when wire_bytes() charged
    // every mode at the vector payload size.
    const std::size_t reports = run.observed_updates;
    net::SenseReportPayload sample;
    sample.strobe_vector = clocks::VectorStamp(doors + 1);
    PSN_CHECK(
        scalar_bytes == reports * fanout * sample.wire_bytes_scalar_mode(),
        "E7: measured scalar-mode bytes disagree with analytic count");
    PSN_CHECK(
        vector_bytes == reports * fanout * sample.wire_bytes_vector_mode(),
        "E7: measured vector-mode bytes disagree with analytic count");
    PSN_CHECK(physical_bytes == reports * sample.wire_bytes_physical_mode(),
              "E7: measured physical-mode bytes disagree with analytic count");

    // Sync-protocol cost, measured: one pass per 30 s → 120 passes/hour.
    std::vector<clocks::DriftingClock> clocks_rbs, clocks_tpsn;
    Rng fleet_rng(99);
    for (std::size_t i = 0; i <= doors; ++i) {
      clocks::DriftingClockConfig dc;
      dc.initial_offset = fleet_rng.uniform_duration(
          -Duration::millis(20), Duration::millis(20));
      dc.drift_ppm = fleet_rng.uniform(-50.0, 50.0);
      dc.read_jitter = Duration::micros(5);
      clocks_rbs.emplace_back(dc, fleet_rng.substream("rbs", i));
      clocks_tpsn.emplace_back(dc, fleet_rng.substream("tpsn", i));
    }
    Rng sync_rng(123);
    clocks::RbsSync rbs({}, 8);
    const auto rbs_report =
        rbs.run(clocks_rbs, SimTime::from_seconds(1.0), sync_rng);
    clocks::TpsnSync tpsn({}, 4);
    const auto tpsn_report =
        tpsn.run(clocks_tpsn, SimTime::from_seconds(1.0), sync_rng);
    constexpr std::size_t kPassesPerHour = 120;

    table.row()
        .cell(doors)
        .cell(reports)
        .cell(scalar_bytes)
        .cell(vector_bytes)
        .cell(static_cast<double>(vector_bytes) /
                  static_cast<double>(scalar_bytes),
              3)
        .cell(physical_bytes)
        .cell(rbs_report.messages * kPassesPerHour)
        .cell(rbs_report.bytes * kPassesPerHour)
        .cell(tpsn_report.messages * kPassesPerHour)
        .cell(tpsn_report.bytes * kPassesPerHour)
        .cell(rbs_report.achieved_skew.to_string());
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Claim check: vector/scalar byte ratio grows ~linearly in n (O(n) vs\n"
      "O(1) stamps); physical clocks shift cost into standing sync traffic\n"
      "that is paid even when no events occur — the service is not free.\n\n");

  // --- radio energy per hour, the paper's actual currency (§3.3 item 1) ---
  // The strobe options need no time base, so their receivers may duty-cycle
  // freely; the periodic sync traffic of the physical option forces wider
  // wake windows (modeled here as always-on vs 10% duty for strobes).
  std::printf("Radio energy per fleet-hour (8 doors + root, CC2420-class):\n\n");
  const analysis::EnergyModel radio;
  const std::size_t n9 = 9;
  const Duration hour = Duration::seconds(3600);
  // Per-hour strobe byte volume extrapolated from the 60 s run at n=8.
  const std::size_t reports_per_hour = 625 * 60;
  net::SenseReportPayload sample8;
  sample8.strobe_vector = clocks::VectorStamp(9);
  const std::size_t fanout8 = 8;

  net::DutyCycle duty10;
  duty10.period = Duration::millis(1000);
  duty10.window = Duration::millis(100);

  Table energy({"option", "bytes/h", "tx+rx (mJ/h)", "listen+sleep (mJ/h)",
                "total (J/h)"});
  struct Option {
    const char* name;
    std::size_t bytes;
    std::optional<net::DutyCycle> duty;
  };
  const Option options[] = {
      {"strobe scalar, 10% duty",
       reports_per_hour * fanout8 * sample8.wire_bytes_scalar_mode(), duty10},
      {"strobe vector, 10% duty",
       reports_per_hour * fanout8 * sample8.wire_bytes_vector_mode(), duty10},
      {"physical + sync, always-on",
       reports_per_hour * sample8.wire_bytes_physical_mode() + 165'120,
       std::nullopt},
  };
  for (const auto& opt : options) {
    const auto e = analysis::fleet_energy(radio, hour, n9, opt.bytes,
                                          opt.bytes, opt.duty);
    energy.row()
        .cell(opt.name)
        .cell(opt.bytes)
        .cell(e.tx_mj + e.rx_mj, 4)
        .cell(e.listen_mj + e.sleep_mj, 4)
        .cell(e.total_mj() / 1000.0, 4);
  }
  std::printf("%s\n", energy.ascii().c_str());
  std::printf(
      "Idle listening dominates: the strobe options' freedom to duty-cycle\n"
      "(no standing time base to maintain) is worth ~10x in total energy —\n"
      "the quantitative form of 'synchronized clocks are not affordable in\n"
      "the wild'.\n");
  return 0;
}
