// Micro-benchmarks of clock-protocol primitives (google-benchmark): the
// per-event cost of each clock family, and how vector operations scale
// with n — the constant-factor side of the paper's O(1) vs O(n) contrast.

#include <benchmark/benchmark.h>

#include "clocks/clock_bundle.hpp"
#include "clocks/lamport.hpp"
#include "clocks/strobe_scalar.hpp"
#include "clocks/strobe_vector.hpp"
#include "clocks/vector_clock.hpp"
#include "common/rng.hpp"

namespace {

using namespace psn;
using namespace psn::clocks;

void BM_LamportTick(benchmark::State& state) {
  LamportClock clock(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.tick());
  }
}
BENCHMARK(BM_LamportTick);

void BM_LamportReceive(benchmark::State& state) {
  LamportClock clock(0);
  ScalarStamp incoming{1, 1};
  for (auto _ : state) {
    incoming.value += 2;
    benchmark::DoNotOptimize(clock.on_receive(incoming));
  }
}
BENCHMARK(BM_LamportReceive);

void BM_VectorClockTick(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MatternVectorClock clock(0, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.tick());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VectorClockTick)->RangeMultiplier(4)->Range(4, 256)->Complexity();

void BM_VectorClockReceive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MatternVectorClock clock(0, n);
  VectorStamp incoming(n);
  for (auto _ : state) {
    incoming[1] += 1;
    benchmark::DoNotOptimize(clock.on_receive(incoming));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VectorClockReceive)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

void BM_StrobeScalarRoundTrip(benchmark::State& state) {
  StrobeScalarClock a(0), b(1);
  for (auto _ : state) {
    const ScalarStamp s = a.on_relevant_event();
    b.on_strobe(s);
    benchmark::DoNotOptimize(b.current());
  }
}
BENCHMARK(BM_StrobeScalarRoundTrip);

void BM_StrobeVectorRoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StrobeVectorClock a(0, n), b(1, n);
  for (auto _ : state) {
    const VectorStamp s = a.on_relevant_event();
    b.on_strobe(s);
    benchmark::DoNotOptimize(b.current());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StrobeVectorRoundTrip)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

void BM_VectorStampCompare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  VectorStamp a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<std::uint64_t>(rng.uniform_int(0, 100));
    b[i] = static_cast<std::uint64_t>(rng.uniform_int(0, 100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(compare(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VectorStampCompare)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

void BM_ClockBundleSenseEvent(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ClockBundleConfig cfg;
  ClockBundle bundle(0, n, cfg, Rng(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle.on_sense_event());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ClockBundleSenseEvent)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

void BM_EpsClockRead(benchmark::State& state) {
  EpsSynchronizedClock clock(Duration::micros(100), Rng(2));
  SimTime t = SimTime::zero();
  for (auto _ : state) {
    t += Duration::micros(10);
    benchmark::DoNotOptimize(clock.read(t));
  }
}
BENCHMARK(BM_EpsClockRead);

}  // namespace
