// E2 — paper §3.3: "the use of logical vectors may result in some false
// negatives, whereas the use of logical scalars may also result in some
// false positives." Scalar strobes cannot see races (their order is total),
// so racy transitions are asserted confidently; vector strobes divert them
// to the borderline bin.
//
// Same sweep as E1, scalar and vector side by side.
// Expected shape: scalar FP count ≥ vector FP count at every Δ, with the
// gap growing with Δ·λ; vector recall-with-borderline ≥ scalar recall.

#include <cstdio>

#include "analysis/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace psn;

  constexpr double kRate = 10.0;
  constexpr std::size_t kReps = 12;

  std::printf(
      "E2: strobe scalar vs strobe vector (lambda=%.0f/s, %zu seeds x 60 s)\n\n",
      kRate, kReps);

  Table table({"Delta (ms)", "occ", "scalar FP", "vector FP", "scalar FN",
               "vector FN", "vector FN covered", "scalar recall",
               "vector recall+bin"});

  analysis::OccupancyConfig base;
  base.doors = 2;
  base.capacity = 50;
  base.movement_rate = kRate;
  base.horizon = Duration::seconds(60);
  base.seed = 100;

  const auto result =
      analysis::sweep(base)
          .vary_delta({Duration::millis(1), Duration::millis(5),
                       Duration::millis(10), Duration::millis(25),
                       Duration::millis(50), Duration::millis(100),
                       Duration::millis(200), Duration::millis(300)})
          .replications(kReps)
          .run();

  for (const auto& point : result.points) {
    const auto& s = point.at("strobe-scalar").score;
    const auto& v = point.at("strobe-vector").score;

    table.row()
        .cell(static_cast<std::int64_t>(point.config.delta.to_millis()))
        .cell(s.oracle_occurrences)
        .cell(s.false_positives)
        .cell(v.false_positives)
        .cell(s.false_negatives)
        .cell(v.false_negatives)
        .cell(v.fn_covered_by_borderline)
        .cell(s.recall(), 3)
        .cell(v.recall_with_borderline(), 3);
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Claim check: scalar FP >= vector FP at each Delta (races asserted vs\n"
      "quarantined); most vector FNs are covered by the borderline bin.\n");
  return 0;
}
