// E2 — paper §3.3: "the use of logical vectors may result in some false
// negatives, whereas the use of logical scalars may also result in some
// false positives." Scalar strobes cannot see races (their order is total),
// so racy transitions are asserted confidently; vector strobes divert them
// to the borderline bin.
//
// Same sweep as E1, scalar and vector side by side.
// Expected shape: scalar FP count ≥ vector FP count at every Δ, with the
// gap growing with Δ·λ; vector recall-with-borderline ≥ scalar recall.

#include <cstdio>

#include "analysis/experiments.hpp"
#include "common/table.hpp"

int main() {
  using namespace psn;

  constexpr double kRate = 10.0;
  constexpr std::size_t kReps = 12;

  std::printf(
      "E2: strobe scalar vs strobe vector (lambda=%.0f/s, %zu seeds x 60 s)\n\n",
      kRate, kReps);

  Table table({"Delta (ms)", "occ", "scalar FP", "vector FP", "scalar FN",
               "vector FN", "vector FN covered", "scalar recall",
               "vector recall+bin"});

  for (const std::int64_t delta_ms : {1, 5, 10, 25, 50, 100, 200, 300}) {
    analysis::OccupancyConfig cfg;
    cfg.doors = 2;
    cfg.capacity = 50;
    cfg.movement_rate = kRate;
    cfg.delta = Duration::millis(delta_ms);
    cfg.horizon = Duration::seconds(60);
    cfg.seed = 100;

    const auto agg = analysis::run_occupancy_replicated(cfg, kReps);
    const auto& s = agg.at("strobe-scalar").score;
    const auto& v = agg.at("strobe-vector").score;

    table.row()
        .cell(delta_ms)
        .cell(s.oracle_occurrences)
        .cell(s.false_positives)
        .cell(v.false_positives)
        .cell(s.false_negatives)
        .cell(v.false_negatives)
        .cell(v.fn_covered_by_borderline)
        .cell(s.recall(), 3)
        .cell(v.recall_with_borderline(), 3);
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Claim check: scalar FP >= vector FP at each Delta (races asserted vs\n"
      "quarantined); most vector FNs are covered by the borderline bin.\n");
  return 0;
}
