// Micro-benchmark of the Δ-windowed sharded runner (DESIGN.md §14): a
// shrunk city-scale scenario (star overlay, unicast-to-root reports, lean
// clocks, physical wire mode) executed end to end at 1/2/4/8 shards.
// Items/sec is *scheduler events per second* summed over every shard —
// the figure ISSUE 9 tracks against shard count.
//
// Two caveats the numbers must be read with:
//   - Speedup needs cores. shard_threads is pinned to
//     hardware_concurrency(); on a 1-CPU runner the 2/4/8-shard rows
//     measure the pure lockstep-window overhead (barriers + outbox
//     exchange) with zero parallel win, which is itself the regression
//     signal we want pinned.
//   - Results are byte-identical at every shard count (the golden suite
//     enforces it), so throughput is the only thing varying here.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <thread>

#include "analysis/experiments.hpp"

namespace {

using namespace psn;

analysis::OccupancyConfig city_config(std::size_t doors) {
  analysis::OccupancyConfig cfg;
  cfg.doors = doors;
  cfg.capacity = static_cast<int>(doors / 2);
  cfg.movement_rate = 2000.0;
  cfg.horizon = Duration::seconds(2);
  cfg.topology = core::TopologyKind::kStar;
  cfg.clock_mode = net::ClockMode::kPhysical;
  cfg.lean_clocks = true;
  cfg.unicast_reports = true;
  return cfg;
}

std::size_t pool_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// End-to-end sharded city run; arg 0 is the shard count. doors = 4096 is
/// the largest size that keeps the full 1/2/4/8 grid inside a micro-bench
/// budget; the CLI city preset (psn_cli run --scenario city) is the same
/// scenario at 10^5 doors.
void BM_CityShardedRun(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  analysis::OccupancyConfig cfg = city_config(4096);
  cfg.shards = shards;
  cfg.shard_threads = pool_threads();
  std::int64_t events = 0;
  std::size_t windows = 0;
  for (auto _ : state) {
    const analysis::OccupancyRunResult run =
        analysis::run_occupancy_experiment(cfg);
    const auto it = run.metrics.counters.find("sim.events_executed");
    events += it == run.metrics.counters.end()
                  ? 0
                  : static_cast<std::int64_t>(it->second);
    windows = run.shard_windows;
    benchmark::DoNotOptimize(run.oracle.transitions.size());
  }
  state.SetItemsProcessed(events);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["pool_threads"] = static_cast<double>(cfg.shard_threads);
  state.counters["windows"] = static_cast<double>(windows);
}
BENCHMARK(BM_CityShardedRun)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// The window machinery in isolation: same scenario, same K = 4 partition,
/// pool pinned to 1 thread so the delta vs the K = 1 row is pure fence +
/// outbox-exchange cost with no parallelism credit. This is the row that
/// stays meaningful on a 1-CPU runner.
void BM_CityShardOverheadSerial(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  analysis::OccupancyConfig cfg = city_config(4096);
  cfg.shards = shards;
  cfg.shard_threads = 1;
  std::int64_t events = 0;
  for (auto _ : state) {
    const analysis::OccupancyRunResult run =
        analysis::run_occupancy_experiment(cfg);
    const auto it = run.metrics.counters.find("sim.events_executed");
    events += it == run.metrics.counters.end()
                  ? 0
                  : static_cast<std::int64_t>(it->second);
    benchmark::DoNotOptimize(run.oracle.transitions.size());
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_CityShardOverheadSerial)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
