// E1 — paper §3.3 / §4.2: strobe vector clocks detecting the Instantaneously
// modality suffer false negatives when races occur within Δ, and accuracy
// degrades as Δ grows relative to the inter-event time 1/λ. FPs stay near
// zero because races are diverted to the borderline bin.
//
// Sweep: Δ·λ from 0.01 to 3 at fixed λ = 10 events/s.
// Expected shape: error ≈ 0 for Δ·λ ≪ 1, rising with Δ·λ; borderline bin
// grows alongside.

#include <cstdio>

#include "analysis/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace psn;

  constexpr double kRate = 10.0;  // λ events/s across the system
  constexpr std::size_t kReps = 12;

  std::printf(
      "E1: strobe-vector accuracy vs Delta*lambda "
      "(lambda=%.0f/s, 2 doors, capacity 50, %zu seeds x 60 s)\n\n",
      kRate, kReps);

  Table table({"Delta (ms)", "Delta*lambda", "occurrences", "FN rate",
               "FP rate", "recall", "recall w/ borderline", "borderline/occ",
               "belief acc"});

  analysis::OccupancyConfig base;
  base.doors = 2;
  base.capacity = 50;
  base.movement_rate = kRate;
  base.horizon = Duration::seconds(60);
  base.seed = 1;

  const auto result =
      analysis::sweep(base)
          .vary_delta({Duration::millis(1), Duration::millis(5),
                       Duration::millis(10), Duration::millis(25),
                       Duration::millis(50), Duration::millis(100),
                       Duration::millis(200), Duration::millis(300)})
          .replications(kReps)
          .run();

  for (const auto& point : result.points) {
    const double delta_ms = point.config.delta.to_millis();
    const auto& v = point.at("strobe-vector");
    const double occ = static_cast<double>(v.score.oracle_occurrences);
    const double fn_rate =
        occ > 0 ? static_cast<double>(v.score.false_negatives) / occ : 0.0;
    const double fp_rate =
        v.score.confident_detections > 0
            ? static_cast<double>(v.score.false_positives) /
                  static_cast<double>(v.score.confident_detections)
            : 0.0;

    table.row()
        .cell(static_cast<std::int64_t>(delta_ms))
        .cell(delta_ms / 1000.0 * kRate, 3)
        .cell(v.score.oracle_occurrences)
        .cell(fn_rate, 3)
        .cell(fp_rate, 3)
        .cell(v.score.recall(), 3)
        .cell(v.score.recall_with_borderline(), 3)
        .cell(static_cast<double>(v.score.borderline_detections) /
                  std::max(1.0, occ),
              3)
        .cell(v.belief_accuracy.mean(), 4);
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Claim check: FN rate ~0 at Delta*lambda << 1, grows with Delta*lambda;\n"
      "recall including the borderline bin stays well above plain recall.\n");
  return 0;
}
