// Ablation A3 — paper §5 (last paragraph): duty-cycle synchronization.
// "Synchronization of duty cycles among wireless sensor nodes for efficient
// execution of MAC and routing layer functions can be achieved using
// distributed timers. It is particularly feasible in applications such as
// habitat monitoring where the monitoring activities proceed slowly."
//
// Sweep the receiver duty fraction, with phases either synchronized (what
// the distributed-timer protocol achieves) or random (unsynchronized
// baseline). Duty cycling stretches the *effective* Δ: strobes wait out the
// receivers' sleep, so detection latency grows toward the sleep time, and
// with random phases the strobes reach different receivers in different
// cycles, creating extra races.
//
// Expected shape: latency ≈ message delay at duty 1.0, growing as duty
// falls; aligned phases no worse than random at every duty level.

#include <cstdio>

#include "analysis/experiments.hpp"
#include "common/table.hpp"

int main() {
  using namespace psn;

  constexpr std::size_t kReps = 8;
  std::printf(
      "A3: duty-cycled receivers (2 doors, 2 events/s — habitat-slow, "
      "Delta = 50 ms, period 1 s, %zu seeds x 120 s)\n\n",
      kReps);

  Table table({"duty fraction", "phases", "recall", "recall w/ bin",
               "p50 latency (ms)", "p95 latency (ms)", "belief acc"});

  for (const double duty : {1.0, 0.5, 0.2, 0.1}) {
    for (const bool aligned : {true, false}) {
      if (duty == 1.0 && !aligned) continue;  // always-on has no phases
      analysis::OccupancyConfig cfg;
      cfg.doors = 2;
      cfg.capacity = 20;
      cfg.movement_rate = 2.0;
      cfg.delta = Duration::millis(50);
      cfg.horizon = Duration::seconds(120);
      cfg.seed = 600;
      cfg.score_tolerance = Duration::millis(2200);
      if (duty < 1.0) {
        net::DutyCycle dc;
        dc.period = Duration::millis(1000);
        dc.window = Duration::millis(static_cast<std::int64_t>(1000 * duty));
        cfg.duty_cycle = dc;
        cfg.duty_phases_aligned = aligned;
      }

      const auto agg = analysis::run_occupancy_replicated(cfg, kReps);
      const auto& v = agg.at("strobe-vector");
      table.row()
          .cell(duty, 3)
          .cell(duty == 1.0 ? "always-on" : (aligned ? "synced" : "random"))
          .cell(v.score.recall(), 3)
          .cell(v.score.recall_with_borderline(), 3)
          .cell(v.score.latency_s.empty() ? 0.0
                                          : v.score.latency_s.median() * 1e3,
                4)
          .cell(v.score.latency_s.empty()
                    ? 0.0
                    : v.score.latency_s.percentile(95) * 1e3,
                4)
          .cell(v.belief_accuracy.mean(), 4);
    }
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Reading: the always-on root keeps median latency near Delta, but the\n"
      "tail stretches toward the sleep time and confident recall erodes as\n"
      "duty falls (sleeping sensors merge strobes late -> more races);\n"
      "synchronized phases beat random phases at every duty level — the\n"
      "value of the paper's duty-cycle synchronization via distributed\n"
      "timers. The borderline bin absorbs nearly all of the loss.\n");
  return 0;
}
