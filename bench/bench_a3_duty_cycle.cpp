// Ablation A3 — paper §5 (last paragraph): duty-cycle synchronization.
// "Synchronization of duty cycles among wireless sensor nodes for efficient
// execution of MAC and routing layer functions can be achieved using
// distributed timers. It is particularly feasible in applications such as
// habitat monitoring where the monitoring activities proceed slowly."
//
// Sweep the receiver duty fraction, with phases either synchronized (what
// the distributed-timer protocol achieves) or random (unsynchronized
// baseline). Duty cycling stretches the *effective* Δ: strobes wait out the
// receivers' sleep, so detection latency grows toward the sleep time, and
// with random phases the strobes reach different receivers in different
// cycles, creating extra races.
//
// Expected shape: latency ≈ message delay at duty 1.0, growing as duty
// falls; aligned phases no worse than random at every duty level.

#include <cstdio>

#include "analysis/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace psn;

  constexpr std::size_t kReps = 8;
  std::printf(
      "A3: duty-cycled receivers (2 doors, 2 events/s — habitat-slow, "
      "Delta = 50 ms, period 1 s, %zu seeds x 120 s)\n\n",
      kReps);

  Table table({"duty fraction", "phases", "recall", "recall w/ bin",
               "p50 latency (ms)", "p95 latency (ms)", "belief acc"});

  analysis::OccupancyConfig base;
  base.doors = 2;
  base.capacity = 20;
  base.movement_rate = 2.0;
  base.delta = Duration::millis(50);
  base.horizon = Duration::seconds(120);
  base.seed = 600;
  base.score_tolerance = Duration::millis(2200);

  // Duty fraction and phase alignment interact ("always-on has no phases"),
  // so the axis enumerates the valid (duty, aligned) combinations directly.
  struct Case {
    double duty;
    bool aligned;
  };
  std::vector<Case> cases = {{1.0, true}};
  for (const double duty : {0.5, 0.2, 0.1}) {
    cases.push_back({duty, true});
    cases.push_back({duty, false});
  }
  std::vector<analysis::SweepSpec::Mutator> duty_axis;
  for (const Case& c : cases) {
    duty_axis.push_back([c](analysis::OccupancyConfig& cfg) {
      if (c.duty < 1.0) {
        net::DutyCycle dc;
        dc.period = Duration::millis(1000);
        dc.window = Duration::millis(static_cast<std::int64_t>(1000 * c.duty));
        cfg.duty_cycle = dc;
        cfg.duty_phases_aligned = c.aligned;
      }
    });
  }

  const auto result = analysis::sweep(base)
                          .vary_custom(duty_axis)
                          .replications(kReps)
                          .run();

  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const auto& [duty, aligned] = cases[i];
    const auto& v = result.points[i].at("strobe-vector");
    table.row()
        .cell(duty, 3)
        .cell(duty == 1.0 ? "always-on" : (aligned ? "synced" : "random"))
        .cell(v.score.recall(), 3)
        .cell(v.score.recall_with_borderline(), 3)
        .cell(v.score.latency_s.empty() ? 0.0
                                        : v.score.latency_s.median() * 1e3,
              4)
        .cell(v.score.latency_s.empty()
                  ? 0.0
                  : v.score.latency_s.percentile(95) * 1e3,
              4)
        .cell(v.belief_accuracy.mean(), 4);
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Reading: the always-on root keeps median latency near Delta, but the\n"
      "tail stretches toward the sleep time and confident recall erodes as\n"
      "duty falls (sleeping sensors merge strobes late -> more races);\n"
      "synchronized phases beat random phases at every duty level — the\n"
      "value of the paper's duty-cycle synchronization via distributed\n"
      "timers. The borderline bin absorbs nearly all of the loss.\n");
  return 0;
}
