// Micro-benchmarks of the simulation substrate: event-calendar throughput,
// strobe broadcast fan-out through the transport, end-to-end system steps,
// and lattice enumeration cost.

#include <benchmark/benchmark.h>

#include "core/detectors.hpp"
#include "core/execution_view.hpp"
#include "core/lattice.hpp"
#include "core/predicate_parser.hpp"
#include "core/system.hpp"
#include "world/generators.hpp"

namespace {

using namespace psn;

void BM_SchedulerScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler sched;
    for (std::size_t i = 0; i < n; ++i) {
      sched.schedule_at(SimTime(static_cast<std::int64_t>(i)), [] {});
    }
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerScheduleAndRun)->Range(1 << 10, 1 << 16);

void BM_TransportBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::SimConfig cfg;
  cfg.horizon = SimTime::max();
  sim::Simulation sim(cfg);
  net::Transport transport(sim, net::Overlay::complete(n),
                           std::make_unique<net::FixedDelay>(Duration::millis(1)),
                           std::make_unique<net::NoLoss>(), Rng(1));
  for (ProcessId p = 0; p < n; ++p) {
    transport.register_handler(p, [](const net::Message&) {});
  }
  net::Message msg;
  msg.src = 0;
  msg.kind = net::MessageKind::kStrobe;
  net::SenseReportPayload payload;
  payload.strobe_vector = clocks::VectorStamp(n);
  msg.payload = payload;
  for (auto _ : state) {
    transport.broadcast(msg);
    sim.scheduler().run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK(BM_TransportBroadcast)->RangeMultiplier(4)->Range(4, 64);

void BM_FullOccupancySecond(benchmark::State& state) {
  // Cost of one simulated second of the standard occupancy system,
  // including sensing, stamping, broadcast, and logging.
  const auto doors = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::SystemConfig sys;
    sys.num_sensors = doors;
    sys.sim.seed = 1;
    sys.sim.horizon = SimTime::zero() + Duration::seconds(1);
    sys.delta = Duration::millis(50);
    core::PervasiveSystem system(sys);
    std::vector<std::unique_ptr<world::AttributeDriver>> drivers;
    for (ProcessId pid = 1; pid <= doors; ++pid) {
      const auto obj = system.world().create_object("o" + std::to_string(pid));
      system.world().object(obj).set_attribute("count", std::int64_t{0});
      system.assign(obj, "count", pid);
      drivers.push_back(std::make_unique<world::AttributeDriver>(
          system.world(), obj, "count",
          std::make_unique<world::PoissonArrivals>(20.0),
          std::make_unique<world::CounterValue>(),
          system.sim().rng_for("d", pid)));
      drivers.back()->start();
    }
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(BM_FullOccupancySecond)->RangeMultiplier(2)->Range(2, 16);

void BM_DetectorThroughput(benchmark::State& state) {
  // Updates/second each online detector can process, on a prebuilt log.
  core::SystemConfig sys;
  sys.num_sensors = 4;
  sys.sim.seed = 3;
  sys.sim.horizon = SimTime::zero() + Duration::seconds(30);
  sys.delta = Duration::millis(50);
  core::PervasiveSystem system(sys);
  std::vector<std::unique_ptr<world::AttributeDriver>> drivers;
  for (ProcessId pid = 1; pid <= 4; ++pid) {
    const auto obj = system.world().create_object("o" + std::to_string(pid));
    system.world().object(obj).set_attribute("count", std::int64_t{0});
    system.assign(obj, "count", pid);
    drivers.push_back(std::make_unique<world::AttributeDriver>(
        system.world(), obj, "count",
        std::make_unique<world::PoissonArrivals>(50.0),
        std::make_unique<world::CounterValue>(),
        system.sim().rng_for("d", pid)));
    drivers.back()->start();
  }
  system.run();
  const auto phi = core::parse_predicate("p", "sum(count) > 1000");
  const auto detectors = core::all_online_detectors();
  const auto& detector = detectors[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(detector->name());
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector->run(system.log(), phi));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(system.log().updates.size()));
}
BENCHMARK(BM_DetectorThroughput)->DenseRange(0, 3);

void BM_LatticeCount(benchmark::State& state) {
  // Consistent-cut counting cost on a strobe execution of growing size.
  const auto events_per_proc = static_cast<double>(state.range(0));
  core::SystemConfig sys;
  sys.num_sensors = 4;
  sys.sim.seed = 9;
  sys.sim.horizon = SimTime::zero() + Duration::seconds(4);
  sys.delta = Duration::millis(100);
  core::PervasiveSystem system(sys);
  std::vector<std::unique_ptr<world::AttributeDriver>> drivers;
  for (ProcessId pid = 1; pid <= 4; ++pid) {
    const auto obj = system.world().create_object("o" + std::to_string(pid));
    system.world().object(obj).set_attribute("count", std::int64_t{0});
    system.assign(obj, "count", pid);
    drivers.push_back(std::make_unique<world::AttributeDriver>(
        system.world(), obj, "count",
        std::make_unique<world::PoissonArrivals>(events_per_proc / 4.0),
        std::make_unique<world::CounterValue>(),
        system.sim().rng_for("d", pid)));
    drivers.back()->start();
  }
  system.run();
  const auto view = core::ExecutionView::from_strobe_stamps(system);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lattice::count_consistent_cuts(view));
  }
}
BENCHMARK(BM_LatticeCount)->DenseRange(4, 20, 8);

}  // namespace
