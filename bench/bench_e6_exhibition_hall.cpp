// E6 — paper §5, the exhibition hall: d door sensors, capacity 200,
// φ = Σ(x_i − y_i) > 200 detected with vector strobe clocks. "A false
// negative may occur when the occupancy is above 200, and a false positive
// may occur when the occupancy is below 201. ... the consensus based
// algorithm using vector strobes will be able to place false positives and
// most false negatives in a 'borderline bin' which is characterized by a
// race condition. ... To err on the safe side, such entries can be treated
// as positives."
//
// Sweep d ∈ {2, 4, 8} doors at the paper's scale.
// Expected shape: all FPs and most FNs land in the borderline bin; treating
// borderline as positive recovers nearly all missed crossings.

#include <cstdio>

#include "analysis/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace psn;

  constexpr std::size_t kReps = 10;
  std::printf(
      "E6: exhibition hall (capacity 200, 25 movements/s, Delta = 150 ms, "
      "%zu seeds x 120 s)\n\n",
      kReps);

  Table table({"doors", "crossings", "TP", "FP", "FN", "FN in bin",
               "bin size", "recall", "recall w/ bin", "precision",
               "p50 latency (ms)"});

  analysis::OccupancyConfig base;
  base.capacity = 200;
  base.movement_rate = 25.0;
  base.delta = Duration::millis(150);
  base.horizon = Duration::seconds(120);
  base.seed = 42;

  const auto result = analysis::sweep(base)
                          .vary_doors({2, 4, 8})
                          .replications(kReps)
                          .run();

  for (const auto& point : result.points) {
    const auto& v = point.at("strobe-vector");
    table.row()
        .cell(point.config.doors)
        .cell(v.score.oracle_occurrences)
        .cell(v.score.true_positives)
        .cell(v.score.false_positives)
        .cell(v.score.false_negatives)
        .cell(v.score.fn_covered_by_borderline)
        .cell(v.score.borderline_detections)
        .cell(v.score.recall(), 3)
        .cell(v.score.recall_with_borderline(), 3)
        .cell(v.score.precision(), 3)
        .cell(v.score.latency_s.empty() ? 0.0
                                        : v.score.latency_s.median() * 1e3,
              4);
  }
  std::printf("%s\n", table.ascii().c_str());

  std::printf(
      "Claim check: FP stays near zero (races quarantined); the borderline\n"
      "bin covers most FNs, so the err-on-the-safe-side policy loses little.\n");
  return 0;
}
