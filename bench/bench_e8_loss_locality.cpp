// E8 — paper §4.2.2 (end): "A message loss may result in the wrong detection
// of the predicate in the temporal vicinity of the lost message. However,
// there will be no long-term ripple effects of the message loss on later
// detection."
//
// A total-loss window is injected mid-run. Detector errors (FP + FN) are
// located on the true-time axis; we report how many fall inside the loss
// window padded by 2Δ versus elsewhere, and compare with a clean control
// run of the same seed.
//
// Expected shape: errors concentrate in the padded window; outside it the
// lossy run matches the clean run (no ripple).
//
// The clean/lossy run pairs need the raw per-run results (error *locations*,
// not merged scores), so this bench uses the sweep engine's lower-level
// run_specs() fan-out: all 2×kReps simulations run across the pool, results
// come back in input order.

#include <cstdio>

#include "analysis/sweep.hpp"
#include "common/table.hpp"

namespace {

using namespace psn;

struct ErrorLocations {
  std::size_t inside = 0;
  std::size_t outside = 0;
};

/// Errors = unmatched confident detections (FP) + unmatched oracle starts
/// (FN). We re-derive their times from the score by re-matching here with
/// the same greedy procedure, so just count detections/occurrences whose
/// match failed, by time bucket.
ErrorLocations locate_errors(const analysis::OccupancyRunResult& run,
                             const std::string& detector, SimTime w_begin,
                             SimTime w_end, Duration pad) {
  const auto& out = run.outcome(detector);
  // Rebuild matched flags via score counts is not enough — redo matching
  // simply: a detection is an "error" if no oracle start within tolerance;
  // an oracle start is an "error" if no confident detection within
  // tolerance. Tolerance mirrors the experiment harness.
  const Duration tol = Duration::millis(301);  // 2*150ms + 1
  ErrorLocations loc;
  auto bucket = [&](SimTime t) {
    if (t >= w_begin - pad && t <= w_end + pad) {
      loc.inside++;
    } else {
      loc.outside++;
    }
  };
  for (const auto& d : out.detections) {
    if (!d.to_true || d.borderline) continue;
    bool matched = false;
    for (const auto& occ : run.oracle.occurrences) {
      if ((occ.begin - d.cause_true_time).abs() <= tol) {
        matched = true;
        break;
      }
    }
    if (!matched) bucket(d.cause_true_time);
  }
  for (const auto& occ : run.oracle.occurrences) {
    bool matched = false;
    for (const auto& d : out.detections) {
      if (d.to_true && !d.borderline &&
          (occ.begin - d.cause_true_time).abs() <= tol) {
        matched = true;
        break;
      }
    }
    if (!matched) bucket(occ.begin);
  }
  return loc;
}

}  // namespace

int main() {
  using namespace psn;

  constexpr std::size_t kReps = 10;
  const SimTime w_begin = SimTime::zero() + Duration::seconds(40);
  const SimTime w_end = SimTime::zero() + Duration::seconds(44);
  const Duration delta = Duration::millis(150);

  std::printf(
      "E8: loss locality — total strobe loss during [40 s, 44 s) of a 120 s "
      "run (Delta = 150 ms, %zu seeds)\n\n",
      kReps);

  Table table({"detector", "errors in window+2D (lossy)",
               "errors elsewhere (lossy)", "errors elsewhere (clean)",
               "window fraction of run"});

  // Interleaved (clean, lossy) pairs per seed; run_specs preserves order.
  std::vector<analysis::OccupancyConfig> configs;
  for (std::uint64_t seed = 1; seed <= kReps; ++seed) {
    analysis::OccupancyConfig cfg;
    cfg.doors = 4;
    cfg.capacity = 200;
    cfg.movement_rate = 25.0;
    cfg.delta = delta;
    cfg.horizon = Duration::seconds(120);
    cfg.seed = seed;
    configs.push_back(cfg);

    analysis::OccupancyConfig lossy_cfg = cfg;
    lossy_cfg.loss_windows = {{w_begin, w_end}};
    configs.push_back(lossy_cfg);
  }
  const auto runs = analysis::run_specs(configs);

  std::map<std::string, std::array<std::size_t, 3>> tally;
  for (std::size_t i = 0; i < kReps; ++i) {
    const auto& clean = runs[2 * i];
    const auto& lossy = runs[2 * i + 1];

    for (const char* det : {"strobe-vector", "strobe-scalar"}) {
      const auto lossy_loc =
          locate_errors(lossy, det, w_begin, w_end, delta * 2);
      const auto clean_loc =
          locate_errors(clean, det, w_begin, w_end, delta * 2);
      tally[det][0] += lossy_loc.inside;
      tally[det][1] += lossy_loc.outside;
      tally[det][2] += clean_loc.inside + clean_loc.outside;
    }
  }

  const double window_fraction = (4.0 + 2 * delta.to_seconds()) / 120.0;
  for (const auto& [det, counts] : tally) {
    table.row()
        .cell(det)
        .cell(counts[0])
        .cell(counts[1])
        .cell(counts[2])
        .cell(window_fraction, 3);
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Claim check: lossy-run errors concentrate in the padded loss window\n"
      "(which covers only ~%.1f%% of the run); outside it the error count\n"
      "matches the clean control — losses do not ripple forward.\n",
      100.0 * window_fraction);
  return 0;
}
