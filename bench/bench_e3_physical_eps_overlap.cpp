// E3 — paper §3.3 item 2 / Mayo–Kearns [28]: with ε-synchronized physical
// clocks, "when the overlap period of the local intervals, during which the
// global predicate is true, is less than 2ε, false negatives occur."
//
// Controlled two-sensor pulse experiment: per episode, x1 is high for a
// fixed pulse and x2's pulse is offset so the true overlap sweeps 0 … 4ε.
// φ = x[1] > 0 && x[2] > 0 holds exactly during the overlap.
//
// Expected shape: detection probability ≈ 0 for overlap ≪ 2ε (the synced
// timestamps can invert the edges), rising to ≈ 1 beyond 2ε.

#include <cstdio>

#include "analysis/scoring.hpp"
#include "common/table.hpp"
#include "core/detectors.hpp"
#include "core/oracle.hpp"
#include "core/predicate_parser.hpp"
#include "core/system.hpp"

namespace {

using namespace psn;

struct EpisodeResult {
  std::size_t episodes = 0;
  std::size_t detected = 0;  ///< physical detector reported the occurrence
};

EpisodeResult run_pulses(Duration overlap, Duration epsilon,
                         std::uint64_t seed) {
  constexpr int kEpisodes = 120;
  const Duration pulse = Duration::millis(5);
  const Duration episode_gap = Duration::millis(50);

  core::SystemConfig sys;
  sys.num_sensors = 2;
  sys.sim.seed = seed;
  sys.sim.horizon = SimTime::zero() + episode_gap * (kEpisodes + 2);
  sys.delay_kind = core::DelayKind::kFixed;
  sys.delta = Duration::millis(2);
  sys.clock_config.sync_epsilon = epsilon;
  core::PervasiveSystem system(sys);

  const auto o1 = system.world().create_object("pulse1");
  const auto o2 = system.world().create_object("pulse2");
  system.world().object(o1).set_attribute("x", std::int64_t{0});
  system.world().object(o2).set_attribute("x", std::int64_t{0});
  system.assign(o1, "x", 1);
  system.assign(o2, "x", 2);

  auto& sched = system.sim().scheduler();
  for (int e = 0; e < kEpisodes; ++e) {
    const SimTime base = SimTime::zero() + episode_gap * (e + 1);
    // x1 high during [base, base+pulse); x2 high starting so that the pulses
    // overlap by exactly `overlap` at the tail of x1's pulse.
    const SimTime x2_rise = base + pulse - overlap;
    sched.schedule_at(base, [&system, o1] {
      system.world().emit(o1, "x", std::int64_t{1});
    });
    sched.schedule_at(x2_rise, [&system, o2] {
      system.world().emit(o2, "x", std::int64_t{1});
    });
    sched.schedule_at(base + pulse, [&system, o1] {
      system.world().emit(o1, "x", std::int64_t{0});
    });
    sched.schedule_at(x2_rise + pulse, [&system, o2] {
      system.world().emit(o2, "x", std::int64_t{0});
    });
  }
  system.run();

  const auto phi = core::parse_predicate("p", "x[1] > 0 && x[2] > 0");
  const core::GroundTruthOracle oracle(phi, system.sensing());
  const auto truth = oracle.evaluate(system.timeline(), sys.sim.horizon);

  const auto detections =
      core::PhysicalClockDetector().run(system.log(), phi);
  analysis::ScoreConfig score_cfg;
  score_cfg.tolerance = Duration::millis(10);
  const auto score = analysis::score_detections(truth, detections, score_cfg);

  EpisodeResult r;
  r.episodes = truth.occurrences.size();
  r.detected = score.true_positives;
  return r;
}

}  // namespace

int main() {
  const Duration epsilon = Duration::micros(500);
  constexpr std::size_t kReps = 8;

  std::printf(
      "E3: physical-clock detection vs true overlap (eps = %s, pulse 5 ms,\n"
      "    Mayo-Kearns predicts false negatives for overlap < 2*eps)\n\n",
      epsilon.to_string().c_str());

  Table table({"overlap/eps", "overlap (us)", "true occurrences", "detected",
               "detection prob"});

  for (const double ratio : {0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0}) {
    const Duration overlap = epsilon.scaled(ratio);
    std::size_t episodes = 0, detected = 0;
    for (std::uint64_t seed = 1; seed <= kReps; ++seed) {
      const auto r = run_pulses(overlap, epsilon, seed);
      episodes += r.episodes;
      detected += r.detected;
    }
    table.row()
        .cell(ratio, 3)
        .cell(static_cast<double>(overlap.count_nanos()) / 1e3, 4)
        .cell(episodes)
        .cell(detected)
        .cell(episodes ? static_cast<double>(detected) /
                             static_cast<double>(episodes)
                       : 0.0,
              3);
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Claim check: detection probability low below overlap = 2*eps,\n"
      "approaching 1 above it.\n");
  return 0;
}
