// E10 — paper §3.3: "We emphasize that each occurrence of the predicate
// should be detected. ... Existing literature on predicate detection, e.g.,
// [14, 17], detects only the first time the predicate becomes true and then
// the algorithms 'hang'."
//
// A deterministic thermostat-style workload makes φ true exactly k times;
// every detector must report all k became-true transitions (plus the k
// became-false ones), and we report per-occurrence reaction latency.
//
// Expected shape: detections = k for every detector, with latency ≈ message
// delay — not 1 as a detect-once algorithm would give.

#include <cstdio>

#include "analysis/scoring.hpp"
#include "common/table.hpp"
#include "core/detectors.hpp"
#include "core/oracle.hpp"
#include "core/predicate_parser.hpp"
#include "core/system.hpp"

int main() {
  using namespace psn;

  constexpr int kOccurrences = 25;
  const Duration period = Duration::seconds(2);
  const Duration hot_for = Duration::millis(600);

  core::SystemConfig sys;
  sys.num_sensors = 2;
  sys.sim.seed = 5;
  sys.sim.horizon = SimTime::zero() + period * (kOccurrences + 1);
  sys.delay_kind = core::DelayKind::kUniformBounded;
  sys.delta = Duration::millis(60);
  core::PervasiveSystem system(sys);

  // P_1 senses temperature, P_2 senses motion; the thermostat rule of the
  // paper: "reset thermostat to 28 C each time 'motion detected' AND
  // 'temp > 30 C'".
  const auto room = system.world().create_object("room");
  system.world().object(room).set_attribute("temp", 22.0);
  const auto hall = system.world().create_object("hallway");
  system.world().object(hall).set_attribute("motion", false);
  system.assign(room, "temp", 1);
  system.assign(hall, "motion", 2);

  auto& sched = system.sim().scheduler();
  // Motion is on during most of each period; temperature spikes above 30 for
  // `hot_for` in the middle — φ becomes true exactly once per period.
  for (int k = 0; k < kOccurrences; ++k) {
    const SimTime base = SimTime::zero() + period * k;
    sched.schedule_at(base + Duration::millis(100), [&system, hall] {
      system.world().emit(hall, "motion", true);
    });
    sched.schedule_at(base + Duration::millis(500), [&system, room] {
      system.world().emit(room, "temp", 31.5);
    });
    sched.schedule_at(base + Duration::millis(500) + hot_for,
                      [&system, room] {
                        system.world().emit(room, "temp", 24.0);
                      });
    sched.schedule_at(base + period - Duration::millis(100),
                      [&system, hall] {
                        system.world().emit(hall, "motion", false);
                      });
  }
  system.run();

  const auto phi =
      core::parse_predicate("hot_and_motion", "temp[1] > 30 && motion[2]");
  const core::GroundTruthOracle oracle(phi, system.sensing());
  const auto truth = oracle.evaluate(system.timeline(), sys.sim.horizon);

  std::printf(
      "E10: every-occurrence detection — thermostat rule fires %zu times in "
      "ground truth\n\n",
      truth.occurrences.size());

  analysis::ScoreConfig score_cfg;
  score_cfg.tolerance = Duration::millis(150);

  Table table({"detector", "became-true reported", "became-false reported",
               "TP", "missed", "p50 latency (ms)", "p95 latency (ms)"});
  for (const auto& det : core::all_online_detectors()) {
    const auto detections = det->run(system.log(), phi);
    std::size_t ups = 0, downs = 0;
    for (const auto& d : detections) (d.to_true ? ups : downs)++;
    const auto score = analysis::score_detections(truth, detections, score_cfg);
    table.row()
        .cell(det->name())
        .cell(ups)
        .cell(downs)
        .cell(score.true_positives)
        .cell(score.false_negatives)
        .cell(score.latency_s.empty() ? 0.0 : score.latency_s.median() * 1e3,
              4)
        .cell(score.latency_s.empty() ? 0.0
                                      : score.latency_s.percentile(95) * 1e3,
              4);
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Claim check: every detector reports ~%d became-true transitions (one\n"
      "per occurrence) — no detector 'hangs' after the first hit; latency is\n"
      "on the order of the message delay.\n",
      kOccurrences);
  return 0;
}
