#!/usr/bin/env bash
# Regenerates BENCH_micro.json at the repo root: runs the google-benchmark
# micro-bench binaries (bench_micro_sim, bench_micro_clocks) and merges their
# items/sec against the committed pre-optimization baseline
# (bench/BASELINE_micro.json), so every PR leaves a before/after trajectory.
#
# Usage: bench/run_bench.sh [build_dir]
#   build_dir defaults to <repo>/build. Override the per-benchmark minimum
#   measuring time with BENCH_MIN_TIME (seconds, plain number — the bundled
#   google-benchmark predates the "0.05s" form).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
min_time="${BENCH_MIN_TIME:-0.2}"
baseline="${repo_root}/bench/BASELINE_micro.json"
out="${repo_root}/BENCH_micro.json"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

for bench in bench_micro_sim bench_micro_clocks; do
  bin="${build_dir}/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${build_dir} --target ${bench})" >&2
    exit 1
  fi
  echo "== ${bench} (min_time=${min_time}s)" >&2
  "${bin}" --benchmark_min_time="${min_time}" \
           --benchmark_out="${tmp_dir}/${bench}.json" \
           --benchmark_out_format=json >&2
done

jq -s --slurpfile base "${baseline}" '
  ($base[0].benchmarks) as $before |
  {
    generated_by: "bench/run_bench.sh",
    baseline: "bench/BASELINE_micro.json (pre hot-path overhaul)",
    context: (.[0].context | {date, num_cpus, mhz_per_cpu, library_build_type}),
    benchmarks: [
      .[].benchmarks[] | select(.run_type == "iteration") |
      ($before[.name]) as $b |
      {
        name: .name,
        items_per_second_before: ($b.items_per_second // null),
        items_per_second_after: (.items_per_second // null),
        real_time_ns_before: ($b.real_time_ns // null),
        real_time_ns_after: .real_time,
        speedup: (
          if ($b.items_per_second // 0) > 0 and (.items_per_second // 0) > 0
          then (.items_per_second / $b.items_per_second * 1000 | round / 1000)
          elif ($b.real_time_ns // 0) > 0 and .real_time > 0
          then ($b.real_time_ns / .real_time * 1000 | round / 1000)
          else null end)
      }
    ]
  }' "${tmp_dir}/bench_micro_sim.json" "${tmp_dir}/bench_micro_clocks.json" \
  > "${out}"

echo "wrote ${out}" >&2
jq -r '.benchmarks[] | select(.speedup != null) |
       "\(.name)\t\(.speedup)x"' "${out}" >&2
