#!/usr/bin/env bash
# Regenerates BENCH_micro.json at the repo root: runs the google-benchmark
# micro-bench binaries (bench_micro_sim, bench_micro_clocks,
# bench_micro_shards) and merges their items/sec against the committed
# pre-optimization baseline (bench/BASELINE_micro.json), so every PR leaves
# a before/after trajectory. Refuses non-Release build trees (see below) and
# stamps CMAKE_BUILD_TYPE into the output context.
#
# Usage: bench/run_bench.sh [build_dir]
#   build_dir defaults to <repo>/build. Override the per-benchmark minimum
#   measuring time with BENCH_MIN_TIME (seconds, plain number — the bundled
#   google-benchmark predates the "0.05s" form).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
min_time="${BENCH_MIN_TIME:-0.2}"

# Refuse to record numbers from a non-Release build: a debug-built tree once
# leaked into the committed BENCH_micro.json and made every before/after
# trajectory meaningless. The build type is read from CMakeCache.txt (the
# authoritative source) and stamped into the output so a stray number can
# always be traced back. BENCH_ALLOW_NONRELEASE=1 overrides for local
# profiling; the override is recorded too.
cache="${build_dir}/CMakeCache.txt"
if [[ ! -f "${cache}" ]]; then
  echo "error: ${cache} not found; is ${build_dir} a configured build tree?" >&2
  exit 1
fi
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${cache}")"
build_type="${build_type:-unspecified}"
# (`library_build_type` in the context is the *preinstalled* google-benchmark
# library's own build mode — informational only; `cmake_build_type` below is
# what governs the code under test.)
if [[ "${build_type}" != "Release" && "${build_type}" != "RelWithDebInfo" ]]; then
  if [[ "${BENCH_ALLOW_NONRELEASE:-0}" != "1" ]]; then
    echo "error: ${build_dir} is CMAKE_BUILD_TYPE=${build_type}, not an optimized build." >&2
    echo "  Benchmark numbers from such a build must not be committed." >&2
    echo "  Configure with -DCMAKE_BUILD_TYPE=Release, or set" >&2
    echo "  BENCH_ALLOW_NONRELEASE=1 to record anyway (flagged in the JSON)." >&2
    exit 1
  fi
  echo "warning: recording ${build_type}-build numbers (BENCH_ALLOW_NONRELEASE=1)" >&2
fi
baseline="${repo_root}/bench/BASELINE_micro.json"
out="${repo_root}/BENCH_micro.json"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

for bench in bench_micro_sim bench_micro_clocks bench_micro_shards; do
  bin="${build_dir}/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${build_dir} --target ${bench})" >&2
    exit 1
  fi
  echo "== ${bench} (min_time=${min_time}s)" >&2
  "${bin}" --benchmark_min_time="${min_time}" \
           --benchmark_out="${tmp_dir}/${bench}.json" \
           --benchmark_out_format=json >&2
done

jq -s --slurpfile base "${baseline}" \
   --arg build_type "${build_type}" \
   --arg override "${BENCH_ALLOW_NONRELEASE:-0}" '
  ($base[0].benchmarks) as $before |
  {
    generated_by: "bench/run_bench.sh",
    baseline: "bench/BASELINE_micro.json (pre hot-path overhaul)",
    context: ((.[0].context | {date, num_cpus, mhz_per_cpu, library_build_type})
              + {cmake_build_type: $build_type, nonrelease_override: $override}),
    benchmarks: [
      .[].benchmarks[] | select(.run_type == "iteration") |
      ($before[.name]) as $b |
      {
        name: .name,
        items_per_second_before: ($b.items_per_second // null),
        items_per_second_after: (.items_per_second // null),
        real_time_ns_before: ($b.real_time_ns // null),
        real_time_ns_after: .real_time,
        speedup: (
          if ($b.items_per_second // 0) > 0 and (.items_per_second // 0) > 0
          then (.items_per_second / $b.items_per_second * 1000 | round / 1000)
          elif ($b.real_time_ns // 0) > 0 and .real_time > 0
          then ($b.real_time_ns / .real_time * 1000 | round / 1000)
          else null end)
      }
    ]
  }' "${tmp_dir}/bench_micro_sim.json" "${tmp_dir}/bench_micro_clocks.json" \
     "${tmp_dir}/bench_micro_shards.json" \
  > "${out}"

echo "wrote ${out}" >&2
jq -r '.benchmarks[] | select(.speedup != null) |
       "\(.name)\t\(.speedup)x"' "${out}" >&2
