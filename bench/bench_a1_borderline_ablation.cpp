// Ablation A1 (DESIGN.md §6.3 ◊): what does the borderline-bin rule buy?
//
// The strobe-vector detector is scored twice on identical runs:
//   (a) with the race rule — racy transitions are quarantined as borderline;
//   (b) with races *asserted* — every borderline transition is counted as a
//       confident detection (what a detector without the rule would report).
// A third column shows the cost axis: occurrences lost if borderline
// transitions were instead *suppressed* entirely.
//
// Expected: asserting races inflates false positives toward the scalar
// detector's level; quarantining keeps precision high at a bounded recall
// cost that the err-on-the-safe-side policy recovers.

#include <cstdio>

#include "analysis/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace psn;

  constexpr std::size_t kReps = 12;
  std::printf(
      "A1: borderline-bin ablation (2 doors, capacity 50, 10 events/s, "
      "%zu seeds x 60 s)\n\n",
      kReps);

  Table table({"Delta (ms)", "quarantine FP", "assert FP", "scalar FP",
               "quarantine precision", "assert precision",
               "recall w/ bin", "recall suppress"});

  analysis::OccupancyConfig base;
  base.doors = 2;
  base.capacity = 50;
  base.movement_rate = 10.0;
  base.horizon = Duration::seconds(60);
  base.seed = 400;

  const auto result =
      analysis::sweep(base)
          .vary_delta({Duration::millis(10), Duration::millis(50),
                       Duration::millis(100), Duration::millis(200),
                       Duration::millis(300)})
          .replications(kReps)
          .run();

  for (const auto& point : result.points) {
    const auto& v = point.at("strobe-vector").score;
    const auto& s = point.at("strobe-scalar").score;

    // (b) assert: borderline detections become confident — matched ones add
    // to TP, unmatched ones to FP.
    const std::size_t assert_tp = v.true_positives + v.borderline_matched;
    const std::size_t assert_fp = v.false_positives + v.borderline_unmatched;
    const double assert_precision =
        assert_tp + assert_fp
            ? static_cast<double>(assert_tp) /
                  static_cast<double>(assert_tp + assert_fp)
            : 1.0;
    // (c) suppress: borderline-covered occurrences stay missed.
    const double recall_suppress =
        v.oracle_occurrences
            ? static_cast<double>(v.true_positives) /
                  static_cast<double>(v.oracle_occurrences)
            : 1.0;

    table.row()
        .cell(static_cast<std::int64_t>(point.config.delta.to_millis()))
        .cell(v.false_positives)
        .cell(assert_fp)
        .cell(s.false_positives)
        .cell(v.precision(), 3)
        .cell(assert_precision, 3)
        .cell(v.recall_with_borderline(), 3)
        .cell(recall_suppress, 3);
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Reading: 'assert FP' approaches the scalar detector's FP count — the\n"
      "borderline rule is what separates the two time models in practice.\n");
  return 0;
}
