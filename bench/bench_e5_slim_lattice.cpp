// E5 — paper §4.2.4, the slim lattice postulate: "Although the control
// messages for the strobe clock create artificial causal dependencies, these
// are useful because they help to approximate instantaneous observation by
// eliminating many of the O(p^n) states ... The faster the strobe
// transmissions, the leaner is the lattice. When Δ = 0, the result is a
// linear order of np states."
//
// Small systems (4 sensors, ~1.5 events/s each over 4 s) at decreasing Δ;
// count consistent global states in the strobe-induced sublattice and
// compare with the unconstrained O(p^n) cut count.
//
// Expected shape: |lattice| falls monotonically with Δ, reaching exactly
// total_events + 1 (a chain) at Δ = 0.

#include <cstdio>

#include "common/table.hpp"
#include "core/execution_view.hpp"
#include "core/lattice.hpp"
#include "core/system.hpp"
#include "world/generators.hpp"

int main() {
  using namespace psn;

  constexpr std::size_t kSensors = 4;
  constexpr std::size_t kReps = 6;

  std::printf(
      "E5: slim lattice postulate — consistent global states vs Delta\n"
      "    (%zu sensors, Poisson 1.5 events/s each, 4 s horizon, %zu seeds)\n\n",
      kSensors, kReps);

  Table table({"Delta (ms)", "mean events", "unconstrained (p^n)",
               "strobe sublattice", "reduction x", "linear runs"});

  struct Row {
    double events = 0, unconstrained = 0, cuts = 0;
    int linear = 0;
  };

  for (const std::int64_t delta_ms : {-1, 400, 100, 25, 5, 0}) {
    Row acc;
    for (std::uint64_t seed = 1; seed <= kReps; ++seed) {
      core::SystemConfig sys;
      sys.num_sensors = kSensors;
      sys.sim.seed = seed;
      sys.sim.horizon = SimTime::zero() + Duration::seconds(4);
      if (delta_ms == 0) {
        sys.delay_kind = core::DelayKind::kSynchronous;
      } else if (delta_ms > 0) {
        sys.delay_kind = core::DelayKind::kUniformBounded;
        sys.delta = Duration::millis(delta_ms);
      } else {
        // "No strobes" baseline: delays longer than the horizon mean no
        // strobe ever lands — the lattice is the full product.
        sys.delay_kind = core::DelayKind::kFixed;
        sys.delta = Duration::seconds(100);
      }
      core::PervasiveSystem system(sys);

      std::vector<std::unique_ptr<world::AttributeDriver>> drivers;
      for (ProcessId pid = 1; pid <= kSensors; ++pid) {
        const auto obj =
            system.world().create_object("obj" + std::to_string(pid));
        system.world().object(obj).set_attribute("count", std::int64_t{0});
        system.assign(obj, "count", pid);
        drivers.push_back(std::make_unique<world::AttributeDriver>(
            system.world(), obj, "count",
            std::make_unique<world::PoissonArrivals>(1.5),
            std::make_unique<world::CounterValue>(),
            system.sim().rng_for("driver", pid)));
        drivers.back()->start();
      }
      system.run();

      const auto view = core::ExecutionView::from_strobe_stamps(system);
      const auto stats = core::lattice::count_consistent_cuts(view);
      acc.events += static_cast<double>(stats.total_events);
      acc.unconstrained += core::lattice::unconstrained_cuts(view);
      acc.cuts += static_cast<double>(stats.consistent_cuts);
      acc.linear += stats.linear ? 1 : 0;
    }
    const double r = static_cast<double>(kReps);
    table.row()
        .cell(delta_ms < 0 ? std::string("no strobes")
                           : std::to_string(delta_ms))
        .cell(acc.events / r, 4)
        .cell(acc.unconstrained / r, 5)
        .cell(acc.cuts / r, 5)
        .cell(acc.unconstrained / std::max(1.0, acc.cuts), 4)
        .cell(std::to_string(acc.linear) + "/" + std::to_string(kReps));
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Claim check: sublattice shrinks monotonically as Delta falls; at\n"
      "Delta = 0 every run is a chain of exactly (total events + 1) states.\n");
  return 0;
}
