// E9 — paper §4.2.3 point 5: "When synchronous communication is used, i.e.,
// when Δ = 0, and the protocol strobes at each relevant event, strobe
// vectors can be replaced by strobe scalars without sacrificing correctness
// or accuracy. This is not so for the causality-based clocks even if Δ = 0;
// Mattern/Fidge clocks are still more powerful than Lamport clocks when
// reasoning about the partial order of distributed program executions."
//
// Part 1: at Δ = 0, strobe-scalar and strobe-vector detections must be
// identical, transition for transition (and exact against the oracle).
// Part 2: on random message-passing executions, the Lamport total order
// cannot recover concurrency — we count event pairs whose Lamport order is
// strict although the events are causally concurrent; the Mattern/Fidge
// order gets every pair right by the isomorphism property.

#include <cstdio>

#include <deque>

#include "analysis/experiments.hpp"
#include "clocks/lamport.hpp"
#include "clocks/vector_clock.hpp"
#include "common/table.hpp"

namespace {

using namespace psn;

struct ConcurrencyAudit {
  std::size_t concurrent_pairs = 0;
  std::size_t lamport_misordered = 0;  ///< concurrent but Lamport says <
  std::size_t vector_misjudged = 0;    ///< concurrent but vector disagrees
};

ConcurrencyAudit audit_random_execution(std::uint64_t seed) {
  Rng rng(seed);
  constexpr std::size_t kN = 4;
  std::vector<clocks::LamportClock> lamports;
  std::vector<clocks::MatternVectorClock> vectors;
  for (ProcessId p = 0; p < kN; ++p) {
    lamports.emplace_back(p);
    vectors.emplace_back(p, kN);
  }
  struct Event {
    ProcessId pid;
    clocks::ScalarStamp ls;
    clocks::VectorStamp vs;
    std::vector<std::size_t> preds;
  };
  std::vector<Event> events;
  std::vector<std::size_t> last(kN, SIZE_MAX);
  struct InFlight {
    ProcessId to;
    std::size_t send_event;
    clocks::ScalarStamp ls;
    clocks::VectorStamp vs;
  };
  std::deque<InFlight> net;

  auto push = [&](ProcessId p, clocks::ScalarStamp ls, clocks::VectorStamp vs,
                  std::vector<std::size_t> preds) {
    if (last[p] != SIZE_MAX) preds.push_back(last[p]);
    events.push_back({p, ls, vs, std::move(preds)});
    last[p] = events.size() - 1;
  };

  for (int op = 0; op < 80; ++op) {
    const auto p = static_cast<ProcessId>(rng.uniform_int(0, kN - 1));
    const auto kind = rng.uniform_int(0, 2);
    if (kind == 0) {
      push(p, lamports[p].tick(), vectors[p].tick(), {});
    } else if (kind == 1) {
      auto q = static_cast<ProcessId>(rng.uniform_int(0, kN - 1));
      if (q == p) q = static_cast<ProcessId>((q + 1) % kN);
      const auto ls = lamports[p].on_send();
      const auto vs = vectors[p].on_send();
      push(p, ls, vs, {});
      net.push_back({q, events.size() - 1, ls, vs});
    } else if (!net.empty()) {
      const InFlight m = net.front();
      net.pop_front();
      push(m.to, lamports[m.to].on_receive(m.ls),
           vectors[m.to].on_receive(m.vs), {m.send_event});
    }
  }

  // Ground-truth happens-before closure.
  const std::size_t n = events.size();
  std::vector<std::vector<bool>> hb(n, std::vector<bool>(n, false));
  for (std::size_t b = 0; b < n; ++b) {
    for (const std::size_t a : events[b].preds) {
      hb[a][b] = true;
      for (std::size_t c = 0; c < n; ++c) {
        if (hb[c][a]) hb[c][b] = true;
      }
    }
  }

  ConcurrencyAudit audit;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (hb[a][b] || hb[b][a]) continue;
      audit.concurrent_pairs++;
      // Lamport claims an order for every pair — always "misordered" for a
      // concurrent pair in the sense that concurrency is invisible.
      if (events[a].ls < events[b].ls || events[b].ls < events[a].ls) {
        audit.lamport_misordered++;
      }
      if (!clocks::concurrent(events[a].vs, events[b].vs)) {
        audit.vector_misjudged++;
      }
    }
  }
  return audit;
}

}  // namespace

int main() {
  using namespace psn;

  // ---- Part 1: Δ = 0 equivalence of scalar and vector strobes ----
  std::printf("E9 part 1: Delta = 0 — strobe scalar vs strobe vector\n\n");
  Table t1({"seed", "transitions (scalar)", "transitions (vector)",
            "identical streams", "scalar FP+FN", "vector FP+FN"});
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    analysis::OccupancyConfig cfg;
    cfg.doors = 3;
    cfg.capacity = 60;
    cfg.movement_rate = 20.0;
    cfg.delay_kind = core::DelayKind::kSynchronous;
    cfg.delta = Duration::zero();
    cfg.score_tolerance = Duration::millis(1);
    cfg.horizon = Duration::seconds(60);
    cfg.seed = seed;
    const auto run = analysis::run_occupancy_experiment(cfg);
    const auto& s = run.outcome("strobe-scalar");
    const auto& v = run.outcome("strobe-vector");
    bool identical = s.detections.size() == v.detections.size();
    if (identical) {
      for (std::size_t i = 0; i < s.detections.size(); ++i) {
        identical &= s.detections[i].to_true == v.detections[i].to_true &&
                     s.detections[i].cause_true_time ==
                         v.detections[i].cause_true_time;
      }
    }
    t1.row()
        .cell(seed)
        .cell(s.detections.size())
        .cell(v.detections.size())
        .cell(identical ? "yes" : "NO")
        .cell(s.score.false_positives + s.score.false_negatives)
        .cell(v.score.false_positives + v.score.false_negatives);
  }
  std::printf("%s\n", t1.ascii().c_str());

  // ---- Part 2: causal clocks are NOT interchangeable even at Δ = 0 ----
  std::printf(
      "E9 part 2: concurrency audit on random message-passing executions\n"
      "(can the clock see that two events raced?)\n\n");
  Table t2({"seeds", "concurrent pairs", "Lamport sees race",
            "Mattern/Fidge sees race"});
  ConcurrencyAudit total;
  constexpr std::uint64_t kSeeds = 20;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto a = audit_random_execution(seed);
    total.concurrent_pairs += a.concurrent_pairs;
    total.lamport_misordered += a.lamport_misordered;
    total.vector_misjudged += a.vector_misjudged;
  }
  t2.row()
      .cell(kSeeds)
      .cell(total.concurrent_pairs)
      .cell(std::to_string(total.concurrent_pairs - total.lamport_misordered) +
            " / " + std::to_string(total.concurrent_pairs))
      .cell(std::to_string(total.concurrent_pairs - total.vector_misjudged) +
            " / " + std::to_string(total.concurrent_pairs));
  std::printf("%s\n", t2.ascii().c_str());
  std::printf(
      "Claim check: part 1 — identical streams and zero errors for both\n"
      "strobe flavors at Delta=0. Part 2 — Lamport recognizes 0 of the\n"
      "concurrent pairs (total order hides races); Mattern/Fidge all.\n");
  return 0;
}
