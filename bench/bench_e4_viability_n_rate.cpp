// E4 — paper §3.3: the viability condition for strobe clocks. "Δ may be
// adequate when (a) the number of processes is low and/or (b) the rate of
// occurrence of sensed events is comparatively low." And, echoing the [17]
// simulations, "despite increasing the average message delay over a wide
// range, the probability of correct detection is quite high."
//
// Sweep n (doors) × event rate at fixed Δ = 100 ms.
// Expected shape: recall stays high at low rates for every n, and degrades
// as rate·Δ grows; more processes → more concurrent traffic → more races.
//
// This bench doubles as the sweep engine's scaling check: the same grid is
// run once on 1 thread and once on PSN_THREADS workers (default 8), the
// merged scores are required to be byte-identical, and the wall-clock ratio
// is reported. Per-run determinism makes the speedup free of any
// result-level caveat.

#include <cstdio>
#include <cstdlib>

#include "analysis/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace psn;

  constexpr std::size_t kReps = 8;
  unsigned par_threads = 8;
  if (const char* env = std::getenv("PSN_THREADS")) {
    par_threads = static_cast<unsigned>(std::atoi(env));
  }

  std::printf(
      "E4: strobe-vector viability vs (n, event rate) at Delta = 100 ms "
      "(%zu seeds x 60 s)\n\n",
      kReps);

  analysis::OccupancyConfig base;
  base.capacity = 50;
  base.delta = Duration::millis(100);
  base.horizon = Duration::seconds(60);
  base.seed = 1000;

  auto spec = analysis::sweep(base)
                  .vary_doors({2, 4, 8, 16, 32})
                  .vary_rate({1.0, 5.0, 20.0})
                  .replications(kReps);

  const auto serial = spec.threads(1).run();
  const auto parallel = spec.threads(par_threads).run();

  Table table({"doors (n)", "rate (events/s)", "rate*Delta", "occurrences",
               "recall", "recall w/ borderline", "precision", "belief acc"});
  for (const auto& point : parallel.points) {
    const auto& v = point.at("strobe-vector");
    table.row()
        .cell(point.config.doors)
        .cell(point.config.movement_rate, 3)
        .cell(point.config.movement_rate * 0.1, 3)
        .cell(v.score.oracle_occurrences)
        .cell(v.score.recall(), 3)
        .cell(v.score.recall_with_borderline(), 3)
        .cell(v.score.precision(), 3)
        .cell(v.belief_accuracy.mean(), 4);
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Claim check: high recall whenever rate*Delta is small, for every n;\n"
      "degradation concentrates where rate*Delta approaches 1.\n\n");

  const bool identical = serial.csv() == parallel.csv();
  std::printf(
      "sweep engine: %zu runs | 1 thread: %.2f s | %u threads: %.2f s | "
      "speedup %.2fx | merged scores identical: %s\n",
      parallel.runs, serial.wall_seconds, parallel.threads_used,
      parallel.wall_seconds, serial.wall_seconds / parallel.wall_seconds,
      identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
