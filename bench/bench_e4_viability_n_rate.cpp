// E4 — paper §3.3: the viability condition for strobe clocks. "Δ may be
// adequate when (a) the number of processes is low and/or (b) the rate of
// occurrence of sensed events is comparatively low." And, echoing the [17]
// simulations, "despite increasing the average message delay over a wide
// range, the probability of correct detection is quite high."
//
// Sweep n (doors) × event rate at fixed Δ = 100 ms.
// Expected shape: recall stays high at low rates for every n, and degrades
// as rate·Δ grows; more processes → more concurrent traffic → more races.

#include <cstdio>

#include "analysis/experiments.hpp"
#include "common/table.hpp"

int main() {
  using namespace psn;

  constexpr std::size_t kReps = 8;
  std::printf(
      "E4: strobe-vector viability vs (n, event rate) at Delta = 100 ms "
      "(%zu seeds x 60 s)\n\n",
      kReps);

  Table table({"doors (n)", "rate (events/s)", "rate*Delta", "occurrences",
               "recall", "recall w/ borderline", "precision", "belief acc"});

  for (const std::size_t doors : {2u, 4u, 8u, 16u, 32u}) {
    for (const double rate : {1.0, 5.0, 20.0}) {
      analysis::OccupancyConfig cfg;
      cfg.doors = doors;
      cfg.capacity = 50;
      cfg.movement_rate = rate;
      cfg.delta = Duration::millis(100);
      cfg.horizon = Duration::seconds(60);
      cfg.seed = 1000 + doors;

      const auto agg = analysis::run_occupancy_replicated(cfg, kReps);
      const auto& v = agg.at("strobe-vector");
      table.row()
          .cell(doors)
          .cell(rate, 3)
          .cell(rate * 0.1, 3)
          .cell(v.score.oracle_occurrences)
          .cell(v.score.recall(), 3)
          .cell(v.score.recall_with_borderline(), 3)
          .cell(v.score.precision(), 3)
          .cell(v.belief_accuracy.mean(), 4);
    }
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "Claim check: high recall whenever rate*Delta is small, for every n;\n"
      "degradation concentrates where rate*Delta approaches 1.\n");
  return 0;
}
