#include "core/event.hpp"

namespace psn::core {

const char* to_string(EventType t) {
  switch (t) {
    case EventType::kCompute: return "compute";
    case EventType::kSense: return "sense";
    case EventType::kActuate: return "actuate";
    case EventType::kSend: return "send";
    case EventType::kReceive: return "receive";
  }
  return "?";
}

}  // namespace psn::core
