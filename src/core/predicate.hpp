#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/variables.hpp"

namespace psn::core {

/// Expression AST for global predicates φ over sensed variables (paper
/// §3.1.2). Numeric semantics: booleans are 0/1; a predicate "holds" iff its
/// value is non-zero. Two classes matter for detection algorithms:
///   - conjunctive: φ = ∧_i φ_i with each conjunct local to one process
///     (Garg–Waldecker detection applies), and
///   - relational: any expression mixing variables of several processes,
///     e.g. the exhibition hall's  sum(entered) - sum(exited) > 200.
class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,
};

enum class UnaryOp { kNeg, kNot };

enum class AggregateOp { kSum, kMin, kMax, kCount };

const char* to_string(BinaryOp op);
const char* to_string(UnaryOp op);
const char* to_string(AggregateOp op);

class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates against an assembled global state. Missing variables evaluate
  /// as 0 (a sensor that has reported nothing yet contributes nothing); use
  /// is_fully_defined() when that distinction matters.
  virtual double evaluate(const GlobalState& state) const = 0;
  /// True iff every variable the expression reads is present in `state`.
  virtual bool is_fully_defined(const GlobalState& state) const = 0;
  /// All concrete VarRefs read (aggregates expand against `state`).
  virtual void collect_vars(const GlobalState& state,
                            std::set<VarRef>& out) const = 0;
  /// Attribute names referenced via aggregates (sum(x) reads every x[i]).
  virtual void collect_aggregate_names(std::set<std::string>& out) const = 0;
  virtual std::string to_string() const = 0;

  bool holds(const GlobalState& state) const { return evaluate(state) != 0.0; }
};

ExprPtr constant(double v);
ExprPtr var(ProcessId pid, const std::string& name);
ExprPtr aggregate(AggregateOp op, const std::string& name);
ExprPtr unary(UnaryOp op, ExprPtr e);
ExprPtr binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);

// Convenience builders.
ExprPtr operator+(ExprPtr a, ExprPtr b);
ExprPtr operator-(ExprPtr a, ExprPtr b);
ExprPtr operator*(ExprPtr a, ExprPtr b);
ExprPtr operator&&(ExprPtr a, ExprPtr b);
ExprPtr operator||(ExprPtr a, ExprPtr b);
ExprPtr operator>(ExprPtr a, double v);
ExprPtr operator<(ExprPtr a, double v);
ExprPtr operator>=(ExprPtr a, double v);
ExprPtr operator==(ExprPtr a, double v);

/// A named global predicate with classification helpers.
class Predicate {
 public:
  Predicate(std::string name, ExprPtr expr);

  const std::string& name() const { return name_; }
  const ExprPtr& expr() const { return expr_; }
  bool holds(const GlobalState& state) const { return expr_->holds(state); }
  double evaluate(const GlobalState& state) const {
    return expr_->evaluate(state);
  }

  /// True iff the predicate is a conjunction of per-process local conjuncts
  /// (paper §3.1.2.a). Aggregates make it relational.
  bool is_conjunctive() const;
  /// The local conjuncts by process, valid when is_conjunctive().
  std::map<ProcessId, std::vector<ExprPtr>> local_conjuncts() const;

 private:
  std::string name_;
  ExprPtr expr_;
};

}  // namespace psn::core
