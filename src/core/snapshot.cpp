#include "core/snapshot.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace psn::core {

SnapshotParticipant::SnapshotParticipant(ProcessId self,
                                         std::vector<ProcessId> peers,
                                         SendMarkerFn send_marker)
    : self_(self), peers_(std::move(peers)), send_marker_(std::move(send_marker)) {
  PSN_CHECK(static_cast<bool>(send_marker_), "null marker hook");
  PSN_CHECK(std::find(peers_.begin(), peers_.end(), self_) == peers_.end(),
            "a process is not its own peer");
}

void SnapshotParticipant::set_state_provider(
    std::function<std::int64_t()> provider) {
  state_provider_ = std::move(provider);
}

void SnapshotParticipant::record_and_flood() {
  PSN_CHECK(static_cast<bool>(state_provider_),
            "snapshot participant needs a state provider");
  recorded_state_ = state_provider_();
  for (const ProcessId p : peers_) send_marker_(p);
}

void SnapshotParticipant::initiate() {
  PSN_CHECK(!recorded_state_.has_value(), "snapshot already in progress");
  record_and_flood();
  // Record every incoming channel until its marker arrives.
  for (const ProcessId p : peers_) recording_[p] = 0;
}

void SnapshotParticipant::on_marker(ProcessId from) {
  if (!recorded_state_.has_value()) {
    // First marker: record state now; the channel it arrived on is empty
    // (FIFO: everything the sender sent before its marker has arrived).
    record_and_flood();
    closed_[from] = 0;
    for (const ProcessId p : peers_) {
      if (p != from) recording_[p] = 0;
    }
    return;
  }
  const auto it = recording_.find(from);
  PSN_CHECK(it != recording_.end(),
            "duplicate marker or marker from unknown channel");
  closed_[from] = it->second;
  recording_.erase(it);
}

bool SnapshotParticipant::on_app_message(ProcessId from, std::int64_t amount) {
  const auto it = recording_.find(from);
  if (it == recording_.end()) return false;
  it->second += amount;
  return true;
}

bool SnapshotParticipant::complete() const {
  return recorded_state_.has_value() && recording_.empty() &&
         closed_.size() == peers_.size();
}

std::int64_t SnapshotParticipant::recorded_state() const {
  PSN_CHECK(recorded_state_.has_value(), "no state recorded yet");
  return *recorded_state_;
}

std::int64_t SnapshotParticipant::channel_state(ProcessId from) const {
  const auto closed = closed_.find(from);
  if (closed != closed_.end()) return closed->second;
  const auto open = recording_.find(from);
  PSN_CHECK(open != recording_.end(), "no such incoming channel");
  return open->second;
}

std::int64_t SnapshotParticipant::total_recorded() const {
  PSN_CHECK(complete(), "snapshot not complete");
  std::int64_t total = *recorded_state_;
  for (const auto& [_, amount] : closed_) total += amount;
  return total;
}

}  // namespace psn::core
