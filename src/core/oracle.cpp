#include "core/oracle.hpp"

#include <utility>

#include "common/error.hpp"

namespace psn::core {

GroundTruthOracle::GroundTruthOracle(Predicate predicate,
                                     const SensingMap& sensing)
    : predicate_(std::move(predicate)), sensing_(sensing) {}

OracleResult GroundTruthOracle::evaluate(const world::WorldTimeline& timeline,
                                         SimTime horizon) const {
  OracleResult result;
  GlobalState state;

  bool holding = predicate_.holds(state);
  SimTime hold_begin = SimTime::zero();
  if (holding) {
    result.transitions.push_back({SimTime::zero(), true, world::kNoWorldEvent});
  }

  Duration total_true = Duration::zero();
  for (const auto& ev : timeline.events()) {
    if (ev.when > horizon) break;
    if (!sensing_.is_assigned(ev.object, ev.attribute)) continue;
    const VarRef var = sensing_.var_of(ev.object, ev.attribute);
    state.set(var, ev.value.numeric());

    const bool now_holds = predicate_.holds(state);
    if (now_holds == holding) continue;
    result.transitions.push_back({ev.when, now_holds, ev.index});
    if (now_holds) {
      hold_begin = ev.when;
    } else {
      result.occurrences.push_back({hold_begin, ev.when});
      total_true += ev.when - hold_begin;
    }
    holding = now_holds;
  }

  if (holding) {
    result.occurrences.push_back({hold_begin, horizon});
    total_true += horizon - hold_begin;
    result.true_at_horizon = true;
  }
  result.fraction_true =
      horizon > SimTime::zero()
          ? total_true.to_seconds() / (horizon - SimTime::zero()).to_seconds()
          : 0.0;
  return result;
}

}  // namespace psn::core
