#include "core/conjunctive.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "common/error.hpp"

namespace psn::core {

namespace {

/// X's end happens before Y's begin — X is definitely over when Y starts, so
/// they cannot overlap. Open-ended X never precedes anything.
bool precedes(const ConjunctInterval& x, const ConjunctInterval& y) {
  if (!x.end_stamp) return false;
  return clocks::happens_before(*x.end_stamp, y.begin_stamp);
}

}  // namespace

std::vector<ConjunctInterval> WeakConjunctiveDetector::local_intervals(
    const ExecutionView& view, std::size_t process, const ExprPtr& conjunct) {
  std::vector<ConjunctInterval> out;
  GlobalState local;
  bool holding = conjunct->evaluate(local) != 0.0;
  PSN_CHECK(!holding,
            "local conjunct must be false on the empty state (no sensed "
            "values yet); rewrite the conjunct so an unreported variable "
            "does not satisfy it");

  const auto& events = view.events(process);
  ConjunctInterval current;
  for (std::size_t k = 0; k < events.size(); ++k) {
    const auto& e = events[k];
    if (e.has_var) local.set(e.var, e.value);
    const bool now = conjunct->evaluate(local) != 0.0;
    if (now == holding) continue;
    if (now) {
      current = ConjunctInterval{};
      current.process = process;
      current.begin_event = k;
      current.begin_stamp = e.stamp;
      current.begin_time = e.when;
    } else {
      current.end_event = k;
      current.end_stamp = e.stamp;
      current.end_time = e.when;
      out.push_back(current);
    }
    holding = now;
  }
  if (holding) out.push_back(current);  // open-ended at the horizon
  return out;
}

std::vector<ConjunctiveMatch> WeakConjunctiveDetector::run(
    const ExecutionView& view, const Predicate& predicate) const {
  PSN_CHECK(predicate.is_conjunctive(),
            "WeakConjunctiveDetector requires a conjunctive predicate");
  const auto by_pid = predicate.local_conjuncts();

  // Conjunct AND per view process; processes without conjuncts don't
  // constrain the match.
  std::vector<std::deque<ConjunctInterval>> queues;
  for (std::size_t p = 0; p < view.num_processes(); ++p) {
    const auto it = by_pid.find(view.pid(p));
    if (it == by_pid.end()) continue;
    ExprPtr conj = it->second.front();
    for (std::size_t c = 1; c < it->second.size(); ++c) {
      conj = binary(BinaryOp::kAnd, conj, it->second[c]);
    }
    auto intervals = local_intervals(view, p, conj);
    queues.emplace_back(intervals.begin(), intervals.end());
  }
  if (queues.empty()) return {};

  std::vector<ConjunctiveMatch> matches;
  for (;;) {
    // Any empty queue → no further match possible.
    if (std::any_of(queues.begin(), queues.end(),
                    [](const auto& q) { return q.empty(); })) {
      break;
    }
    // Garg–Waldecker elimination: drop any head that precedes another head —
    // it can never be part of a pairwise-overlapping set with current or
    // later intervals.
    bool removed = false;
    for (std::size_t a = 0; a < queues.size() && !removed; ++a) {
      for (std::size_t b = 0; b < queues.size(); ++b) {
        if (a == b) continue;
        if (precedes(queues[a].front(), queues[b].front())) {
          queues[a].pop_front();
          removed = true;
          break;
        }
      }
    }
    if (removed) continue;

    // Heads are pairwise non-preceding → weak conjunctive match.
    ConjunctiveMatch m;
    SimTime begin = SimTime::zero();
    for (const auto& q : queues) {
      m.intervals.push_back(q.front());
      begin = std::max(begin, q.front().begin_time);
    }
    m.window_begin = begin;
    matches.push_back(std::move(m));

    // Every-occurrence continuation: consume the interval that ends first
    // (open-ended intervals never end; if all are open-ended, we are done —
    // the predicate stays satisfiable to the horizon).
    std::size_t victim = SIZE_MAX;
    SimTime earliest_end = SimTime::max();
    for (std::size_t p = 0; p < queues.size(); ++p) {
      const auto& head = queues[p].front();
      if (head.end_time && *head.end_time < earliest_end) {
        earliest_end = *head.end_time;
        victim = p;
      }
    }
    if (victim == SIZE_MAX) break;
    queues[victim].pop_front();
  }
  return matches;
}

}  // namespace psn::core
