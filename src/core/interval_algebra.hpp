#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "clocks/timestamp.hpp"
#include "common/sim_time.hpp"
#include "core/observation.hpp"
#include "core/oracle.hpp"
#include "core/predicate.hpp"

namespace psn::core {

/// A closed-open time interval [begin, end) on some time axis (true time,
/// or a clock's readings).
struct TimeInterval {
  SimTime begin;
  SimTime end;

  Duration duration() const { return end - begin; }
  bool valid() const { return begin <= end; }
};

/// Allen's thirteen interval relations (paper §3.1.1.a.ii cites Allen [1]
/// and Hamblin [15] as the basis for "relative timing relations" such as
/// "X before Y" or "X overlaps Y").
enum class AllenRelation {
  kBefore,        ///< a ends strictly before b begins
  kMeets,         ///< a.end == b.begin
  kOverlaps,      ///< a starts first, they overlap, a ends first
  kStarts,        ///< same begin, a ends first
  kDuring,        ///< a strictly inside b
  kFinishes,      ///< same end, a starts later
  kEqual,
  kFinishedBy,    ///< inverse of kFinishes
  kContains,      ///< inverse of kDuring
  kStartedBy,     ///< inverse of kStarts
  kOverlappedBy,  ///< inverse of kOverlaps
  kMetBy,         ///< inverse of kMeets
  kAfter,         ///< inverse of kBefore
};

const char* to_string(AllenRelation r);
AllenRelation inverse(AllenRelation r);

/// Exact Allen classification on a shared (single) time axis. Requires both
/// intervals non-empty (begin < end).
AllenRelation classify(const TimeInterval& a, const TimeInterval& b);

/// Coarse relation between two intervals under a *partial* order of time —
/// what vector stamps can certify without any physical clock. This is the
/// coarsest level of the fine-grained interval-interaction hierarchy of
/// [20, 21] that the paper references.
enum class CausalIntervalRelation {
  kPrecedes,     ///< a's end happens-before b's begin: a is over before b starts
  kPrecededBy,   ///< symmetric
  kConcurrent,   ///< neither end precedes the other begin — they *may* overlap
};

const char* to_string(CausalIntervalRelation r);

/// An interval of a variable satisfying a condition, bounded by vector
/// stamps (for causal classification) and by true/physical times.
struct StampedInterval {
  VarRef var;
  TimeInterval when;  ///< on whatever axis the extractor used
  clocks::VectorStamp begin_stamp;
  /// Missing for intervals still open at the horizon.
  std::optional<clocks::VectorStamp> end_stamp;
};

CausalIntervalRelation classify_causal(const StampedInterval& a,
                                       const StampedInterval& b);

/// Extracts, from the root's observation log, the maximal intervals during
/// which `condition` held on variable `var` (condition takes the reported
/// numeric value). Times are the reports' ε-synchronized timestamps —
/// what a deployed root actually has; stamps are the strobe vectors.
std::vector<StampedInterval> extract_intervals(
    const ObservationLog& log, const VarRef& var,
    const std::function<bool(double)>& condition);

/// Relative-timing specification (paper §3.1.1.a.ii): "X `relation` Y",
/// optionally with a real-time gap bound — e.g. the secure-banking rule of
/// [22]: the biometric key (Y) must be presented AFTER the password (X),
/// within `max_gap`.
struct RelativeTimingSpec {
  AllenRelation relation = AllenRelation::kBefore;
  /// For kBefore/kAfter: maximum allowed gap between the intervals
  /// (Duration::max() = unbounded), and minimum required gap.
  Duration min_gap = Duration::zero();
  Duration max_gap = Duration::max();
};

/// Whether intervals a (X) and b (Y) satisfy the spec on the single axis.
bool satisfies(const TimeInterval& a, const TimeInterval& b,
               const RelativeTimingSpec& spec);

/// A matched occurrence of a relative-timing predicate.
struct RelativeTimingMatch {
  StampedInterval x;
  StampedInterval y;
  /// True iff the vector stamps also certify the order (no race): for a
  /// kBefore spec, x causally precedes y. When false, the match rests only
  /// on ε-accurate timestamps and could be a race artifact.
  bool causally_certified = false;
};

/// Every-occurrence detector for a two-interval relative-timing predicate
/// over the observation log: finds all (x, y) interval pairs satisfying the
/// spec, marking which are additionally certified by the partial order.
class RelativeTimingDetector {
 public:
  RelativeTimingDetector(VarRef x_var, std::function<bool(double)> x_cond,
                         VarRef y_var, std::function<bool(double)> y_cond,
                         RelativeTimingSpec spec);

  std::vector<RelativeTimingMatch> run(const ObservationLog& log) const;

 private:
  VarRef x_var_, y_var_;
  std::function<bool(double)> x_cond_, y_cond_;
  RelativeTimingSpec spec_;
};

}  // namespace psn::core
