#include "core/sensing.hpp"

#include "common/error.hpp"

namespace psn::core {

void SensingMap::assign(world::ObjectId object, const std::string& attribute,
                        ProcessId sensor) {
  PSN_CHECK(sensor != kNoProcess, "invalid sensor pid");
  const auto key = std::make_pair(object, attribute);
  PSN_CHECK(!map_.contains(key),
            "(object, attribute) already assigned to a sensor");
  map_[key] = sensor;
}

ProcessId SensingMap::sensor_of(world::ObjectId object,
                                const std::string& attribute) const {
  const auto it = map_.find({object, attribute});
  return it == map_.end() ? kNoProcess : it->second;
}

VarRef SensingMap::var_of(world::ObjectId object,
                          const std::string& attribute) const {
  const ProcessId pid = sensor_of(object, attribute);
  PSN_CHECK(pid != kNoProcess, "variable not assigned to any sensor");
  return VarRef{pid, attribute};
}

bool SensingMap::is_assigned(world::ObjectId object,
                             const std::string& attribute) const {
  return map_.contains({object, attribute});
}

SensorNode::SensorNode(ProcessId pid, std::size_t n, sim::Simulation& sim,
                       net::Transport& transport,
                       clocks::ClockBundleConfig clock_config, Rng rng)
    : pid_(pid),
      sim_(sim),
      transport_(transport),
      bundle_(pid, n, clock_config, rng) {}

void SensorNode::record_event(EventType type, std::optional<VarRef> var,
                              double value,
                              world::WorldEventIndex world_event,
                              std::uint64_t message_seq) {
  ProcessEvent ev;
  ev.pid = pid_;
  ev.type = type;
  ev.local_index = events_.size() + 1;
  ev.clocks = bundle_.snapshot(sim_.now());
  if (faults_ != nullptr) {
    ev.clocks.physical_local += faults_->drift_offset(pid_, sim_.now());
  }
  ev.var = std::move(var);
  ev.value = value;
  ev.world_event = world_event;
  ev.message_seq = message_seq;
  events_.push_back(std::move(ev));
}

void SensorNode::enable_observation_log(std::size_t n, Duration delta_bound,
                                        ValidityHorizon validity) {
  observing_ = true;
  local_log_.num_processes = n;
  local_log_.delta_bound = delta_bound;
  local_log_.validity = validity;
}

void SensorNode::sense(const world::WorldEvent& ev) {
  // A crashed node's sensor is dark: no n event, no strobe, no sequence id
  // consumed (seq allocation is per-source-strided, so skipping here leaves
  // every other message's id untouched — shard layouts stay byte-identical).
  if (faults_ != nullptr && faults_->down(pid_, sim_.now())) return;

  // SSC1/SVC1 (and SC1/VC1 for the causal clocks) fire before the snapshot,
  // so the recorded stamp is the post-tick value — the one broadcast.
  const clocks::StrobeOut strobes = bundle_.on_sense_event();

  const SimTime now = sim_.now();
  net::Message msg;
  msg.src = pid_;
  msg.kind = net::MessageKind::kStrobe;
  net::SenseReportPayload payload;
  payload.object = ev.object;
  payload.attribute = ev.attribute;
  payload.value = ev.value;
  payload.strobe_scalar = strobes.scalar;
  payload.strobe_vector = strobes.vector;
  payload.synced_timestamp = bundle_.synced().read(now);
  payload.local_timestamp = bundle_.drifting().read(now);
  if (faults_ != nullptr) {
    // Declared clock faults shift the hardware reading deterministically;
    // the checker compensates with the same pure function of (pid, t).
    payload.local_timestamp += faults_->drift_offset(pid_, now);
  }
  payload.true_sense_time = now;
  payload.world_event = ev.index;
  if (observing_) {
    // The sensor observes its own sense instantly (zero-delay self-report).
    ReceivedUpdate u;
    u.delivered_at = now;
    u.reporter = pid_;
    u.report = payload;
    u.validity = local_log_.validity;
    local_log_.updates.push_back(std::move(u));
  }
  msg.payload = std::move(payload);
  // Broadcast before recording so the n event can carry the strobe's seq
  // (the transport assigns it). Deliveries are scheduler events, so the
  // recorded order is still broadcast sends, this sense, then deliveries.
  std::uint64_t seq = 0;
  if (report_target_ == kNoProcess) {
    seq = transport_.broadcast(std::move(msg));
  } else {
    // Report-to-root deployment (city scale): one unicast up the star
    // instead of an O(n) system-wide strobe fan-out per sense.
    msg.dst = report_target_;
    seq = transport_.unicast(std::move(msg));
  }

  const VarRef var{pid_, ev.attribute};
  record_event(EventType::kSense, var, ev.value.numeric(), ev.index, seq);
  if (sim::TraceRecorder* tr = sim_.trace()) {
    tr->record({now, sim::TraceKind::kSense, pid_, kNoProcess, -1, 0,
                ev.attribute, seq});
  }
}

void SensorNode::send_computation(ProcessId dst, const std::string& tag) {
  const clocks::PiggybackStamps stamps = bundle_.on_send();
  net::Message msg;
  msg.src = pid_;
  msg.dst = dst;
  msg.kind = net::MessageKind::kComputation;
  net::ComputationPayload payload;
  payload.stamps = stamps;
  payload.tag = tag;
  msg.payload = std::move(payload);
  const std::uint64_t seq = transport_.unicast(std::move(msg));
  record_event(EventType::kSend, std::nullopt, 0.0, world::kNoWorldEvent, seq);
}

void SensorNode::compute() {
  bundle_.on_internal_event();
  record_event(EventType::kCompute);
}

void SensorNode::actuate(world::WorldModel& world, world::ObjectId object,
                         const std::string& attribute,
                         world::AttributeValue value) {
  bundle_.on_internal_event();
  record_event(EventType::kActuate);
  world.emit(object, attribute, value);
}

void SensorNode::on_message(const net::Message& msg) {
  switch (msg.kind) {
    case net::MessageKind::kStrobe: {
      // SSC2/SVC2: merge, no tick, and the causal clocks are untouched —
      // strobes are control messages (paper §4.2.3).
      const auto& report = msg.sense_report();
      bundle_.on_strobe(report.strobe_scalar, report.strobe_vector);
      if (observing_) {
        ReceivedUpdate u;
        u.delivered_at = sim_.now();
        u.reporter = msg.src;
        u.report = report;
        u.validity = local_log_.validity;
        u.seq = msg.seq;
        local_log_.updates.push_back(std::move(u));
      }
      break;
    }
    case net::MessageKind::kComputation: {
      bundle_.on_receive(msg.computation().stamps);  // SC3/VC3
      record_event(EventType::kReceive, std::nullopt, 0.0,
                   world::kNoWorldEvent, msg.seq);
      if (sim::TraceRecorder* tr = sim_.trace()) {
        tr->record({sim_.now(), sim::TraceKind::kReceive, pid_, msg.src,
                    static_cast<int>(msg.kind), 0, {}, msg.seq});
      }
      break;
    }
    case net::MessageKind::kActuation: {
      // Apply the command to the world plane as an a-event. Requires the
      // world to have been bound (PervasiveSystem does this).
      const auto& cmd = msg.actuation();
      PSN_CHECK(world_ != nullptr,
                "actuation command received but no world bound");
      actuate(*world_, cmd.object, cmd.attribute, cmd.value);
      break;
    }
    case net::MessageKind::kSync:
      // Sync traffic is modeled analytically (clocks/sync_protocols).
      break;
  }
}

RootMonitor::RootMonitor(ProcessId pid, std::size_t n, sim::Simulation& sim,
                         clocks::ClockBundleConfig clock_config, Rng rng)
    : pid_(pid), sim_(sim), bundle_(pid, n, clock_config, rng) {
  log_.num_processes = n;
}

void RootMonitor::on_message(const net::Message& msg) {
  if (msg.kind != net::MessageKind::kStrobe) return;
  const auto& report = msg.sense_report();
  bundle_.on_strobe(report.strobe_scalar, report.strobe_vector);
  ReceivedUpdate u;
  u.delivered_at = sim_.now();
  u.reporter = msg.src;
  u.report = report;
  u.validity = log_.validity;
  u.seq = msg.seq;
  log_.updates.push_back(std::move(u));
  const std::size_t index = log_.updates.size() - 1;
  for (const auto& observer : observers_) {
    observer(log_.updates[index], index);
  }
}

}  // namespace psn::core
