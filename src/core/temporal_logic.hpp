#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "core/oracle.hpp"

namespace psn::core::mtl {

/// A piecewise-constant boolean signal over [0, horizon) — the natural
/// semantic domain for the paper's "Temporal logic (*TL*) based"
/// specification option (§3.1.1.a.iv, citing the space-and-time
/// requirements logic of [6]): predicate truth values as functions of time,
/// produced by the oracle or by a detector's transition stream.
class BoolSignal {
 public:
  /// Builds from a transition list (ascending times). `initial` is the
  /// value on [0, first transition).
  BoolSignal(bool initial, std::vector<Transition> transitions,
             SimTime horizon);
  /// From an oracle result (its transitions define the signal).
  static BoolSignal from_oracle(const OracleResult& oracle, SimTime horizon);
  /// Constant signal.
  static BoolSignal constant(bool value, SimTime horizon);

  bool value_at(SimTime t) const;
  SimTime horizon() const { return horizon_; }
  /// Maximal intervals [begin, end) during which the signal is true.
  const std::vector<Occurrence>& true_intervals() const { return intervals_; }
  /// Total true time / horizon.
  double fraction_true() const;
  /// True somewhere / everywhere on [0, horizon).
  bool ever() const { return !intervals_.empty(); }
  bool always() const;

  // --- signal algebra (all results share this signal's horizon) ---
  BoolSignal operator!() const;
  BoolSignal operator&&(const BoolSignal& other) const;
  BoolSignal operator||(const BoolSignal& other) const;

  /// Eventually within [lo, hi]:  result(t) ⇔ ∃ t' ∈ [t+lo, t+hi] ∩ [0,H):
  /// this(t'). The metric "F" operator.
  BoolSignal eventually(Duration lo, Duration hi) const;
  /// Always within [lo, hi]: the metric "G" operator (dual of eventually).
  BoolSignal always_within(Duration lo, Duration hi) const;
  /// Untimed until: result(t) ⇔ ∃ t' ≥ t: other(t') ∧ this holds on [t, t').
  BoolSignal until(const BoolSignal& other) const;

  /// Construct directly from true-intervals (clamped to [0, horizon)).
  static BoolSignal from_intervals(std::vector<Occurrence> intervals,
                                   SimTime horizon);

 private:
  SimTime horizon_;
  std::vector<Occurrence> intervals_;  // disjoint, sorted, non-empty each
};

/// Convenience checks for the common specification idioms:
///   response: G (trigger → F[0, deadline] response)
/// — e.g. "every hot-and-occupied episode is followed by a thermostat
/// reset within a second".
bool responds_within(const BoolSignal& trigger, const BoolSignal& response,
                     Duration deadline);

/// invariant: G ¬bad — `bad` never holds.
bool never(const BoolSignal& bad);

}  // namespace psn::core::mtl
