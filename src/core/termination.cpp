#include "core/termination.hpp"

#include <utility>

#include "common/error.hpp"

namespace psn::core {

SafraParticipant::SafraParticipant(ProcessId self, std::size_t n,
                                   ForwardFn forward, AnnounceFn announce)
    : self_(self),
      n_(n),
      forward_(std::move(forward)),
      announce_(std::move(announce)) {
  PSN_CHECK(self < n, "participant pid out of range");
  PSN_CHECK(static_cast<bool>(forward_), "null token-forward hook");
}

void SafraParticipant::set_active(bool active) {
  active_ = active;
  if (!active_) try_forward();
}

void SafraParticipant::on_app_receive() {
  balance_--;
  // Receiving work may reactivate this process after the token has passed
  // it — blacken so the current probe round cannot succeed.
  black_ = true;
}

void SafraParticipant::start_round() {
  // Fresh white token with zero count; the initiator whitens itself. The
  // token visits n−1, n−2, …, 1, each adding its balance, then returns.
  black_ = false;
  if (n_ == 1) {
    // Degenerate single-process system: termination is local passivity.
    if (!active_ && balance_ == 0) {
      terminated_ = true;
      if (announce_) announce_();
    }
    return;
  }
  forward_(static_cast<ProcessId>(n_ - 1), Token{});
}

void SafraParticipant::initiate_probe() {
  PSN_CHECK(self_ == 0, "only process 0 initiates probes");
  if (terminated_) return;
  start_round();
}

void SafraParticipant::on_token(const Token& token) {
  if (terminated_) return;
  held_ = token;
  try_forward();
}

void SafraParticipant::try_forward() {
  if (!held_.has_value() || active_ || terminated_) return;

  if (self_ == 0) {
    // A token returned from circulation: apply Safra's termination test.
    const Token t = *held_;
    held_.reset();
    const bool success = !t.black && !black_ && (t.count + balance_) == 0;
    if (success) {
      terminated_ = true;
      if (announce_) announce_();
      return;
    }
    start_round();
    return;
  }

  // Intermediate process: accumulate balance, color the token, whiten self,
  // pass on toward the initiator (ring n−1 → n−2 → … → 0).
  Token t = *held_;
  held_.reset();
  t.count += balance_;
  if (black_) t.black = true;
  black_ = false;
  forward_(static_cast<ProcessId>(self_ - 1), t);
}

}  // namespace psn::core
