#include "core/proximity.hpp"

#include <utility>

#include "common/error.hpp"

namespace psn::core {

ProximityField::ProximityField(PervasiveSystem& system,
                               std::vector<SensorZone> zones)
    : system_(system), zones_(std::move(zones)) {
  PSN_CHECK(!zones_.empty(), "proximity field needs at least one zone");
  for (const auto& z : zones_) {
    PSN_CHECK(z.sensor >= 1 && z.sensor < system_.num_processes(),
              "zone must belong to a sensor process");
    PSN_CHECK(z.radius > 0.0, "zone radius must be positive");
    const auto obj = system_.world().create_object(
        "zone_" + std::to_string(z.sensor), z.position);
    zone_objects_.push_back(obj);
  }
  system_.world().add_move_sink(
      [this](world::ObjectId object, const world::Point2D& to) {
        on_move(object, to);
      });
}

world::ObjectId ProximityField::zone_object(ProcessId sensor) const {
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    if (zones_[i].sensor == sensor) return zone_objects_[i];
  }
  PSN_CHECK(false, "no zone for that sensor");
  return world::kNoObject;
}

void ProximityField::track(world::ObjectId object) {
  Tracked t;
  t.object = object;
  t.variable = "near_" + system_.world().object(object).name();
  t.inside.assign(zones_.size(), false);
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    system_.assign(zone_objects_[i], t.variable, zones_[i].sensor);
  }
  tracked_.push_back(std::move(t));
  // Publish the initial containment so sensors and oracle agree on t=0.
  on_move(object, system_.world().object(object).location());
}

std::vector<ProcessId> ProximityField::sensors_in_range(
    world::ObjectId object) const {
  std::vector<ProcessId> out;
  const auto& pos = system_.world().object(object).location();
  for (const auto& z : zones_) {
    if (z.position.distance_to(pos) <= z.radius) out.push_back(z.sensor);
  }
  return out;
}

void ProximityField::on_move(world::ObjectId object,
                             const world::Point2D& to) {
  for (auto& t : tracked_) {
    if (t.object != object) continue;
    for (std::size_t i = 0; i < zones_.size(); ++i) {
      const bool now = zones_[i].position.distance_to(to) <= zones_[i].radius;
      if (now == t.inside[i] &&
          system_.world().object(zone_objects_[i]).has_attribute(t.variable)) {
        continue;
      }
      t.inside[i] = now;
      system_.world().emit(zone_objects_[i], t.variable, now);
    }
  }
}

}  // namespace psn::core
