#pragma once

#include <optional>
#include <vector>

#include "clocks/timestamp.hpp"
#include "common/sim_time.hpp"
#include "core/execution_view.hpp"
#include "core/predicate.hpp"

namespace psn::core {

/// A maximal run of events at one process during which its local conjunct
/// held, bounded by the vector stamps of the opening event and of the event
/// that falsified it (open-ended intervals have no closing stamp).
struct ConjunctInterval {
  std::size_t process = 0;       ///< index into the ExecutionView
  std::size_t begin_event = 0;   ///< event index that made the conjunct true
  std::optional<std::size_t> end_event;  ///< event that falsified it
  clocks::VectorStamp begin_stamp;
  std::optional<clocks::VectorStamp> end_stamp;
  SimTime begin_time;
  std::optional<SimTime> end_time;
};

/// One detected satisfaction of the weak conjunctive predicate: a set of
/// pairwise-overlappable intervals, one per involved process.
struct ConjunctiveMatch {
  std::vector<ConjunctInterval> intervals;
  /// Earliest instant at which all conjuncts could have held together.
  SimTime window_begin;
};

/// Garg–Waldecker weak-conjunctive-predicate detection (paper §3.1.2.a,
/// [14]): φ = ∧ φ_i with each φ_i locally evaluable. Possibly(φ) holds iff
/// there is a set of local intervals, one per process, that are pairwise
/// concurrent — tested here purely with vector stamps (no physical clock).
///
/// Unlike the original "first occurrence then hang" algorithm the paper
/// criticizes (§3.3), this implementation keeps consuming intervals and
/// reports *every* disjoint occurrence.
class WeakConjunctiveDetector {
 public:
  /// `predicate` must satisfy Predicate::is_conjunctive().
  std::vector<ConjunctiveMatch> run(const ExecutionView& view,
                                    const Predicate& predicate) const;

  /// The per-process true-intervals of a local conjunct (exposed for tests
  /// and for the examples that display them).
  static std::vector<ConjunctInterval> local_intervals(
      const ExecutionView& view, std::size_t process, const ExprPtr& conjunct);
};

}  // namespace psn::core
