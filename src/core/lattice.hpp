#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/execution_view.hpp"
#include "core/predicate.hpp"

namespace psn::core::lattice {

/// Result of walking the lattice of consistent global states (consistent
/// cuts / order ideals) of an execution.
struct LatticeStats {
  std::uint64_t consistent_cuts = 0;  ///< number of consistent global states
  std::uint64_t total_events = 0;
  /// True when the lattice is a chain: exactly total_events + 1 cuts — the
  /// Δ = 0 collapse of paper §4.2.4 ("a linear order of np states").
  bool linear = false;
  /// The walk stopped at the cap without exhausting the lattice.
  bool truncated = false;
};

/// Counts consistent cuts by BFS from the empty cut (every consistent cut is
/// reachable through consistent cuts, adding one event per step). `cap`
/// bounds the walk — the unconstrained lattice is O(pⁿ) (paper §4.2.4) and
/// experiments only need to know "vastly larger".
LatticeStats count_consistent_cuts(const ExecutionView& view,
                                   std::uint64_t cap = 50'000'000);

/// Upper bound ignoring all ordering: Π (events_i + 1) — the size of the
/// unconstrained cut lattice the paper calls "the lattice of pⁿ states".
double unconstrained_cuts(const ExecutionView& view);

/// Cooper–Marzullo Possibly(φ): does some consistent cut satisfy φ?
bool possibly(const ExecutionView& view, const Predicate& predicate,
              std::uint64_t cap = 50'000'000);

/// Cooper–Marzullo Definitely(φ): does every maximal path of consistent cuts
/// from ⊥ to ⊤ pass through a φ-true cut? Implemented as reachability of ⊤
/// through ¬φ cuts only.
bool definitely(const ExecutionView& view, const Predicate& predicate,
                std::uint64_t cap = 50'000'000);

/// The witness cut found by possibly(), if any (for diagnostics/tests).
std::optional<std::vector<std::size_t>> possibly_witness(
    const ExecutionView& view, const Predicate& predicate,
    std::uint64_t cap = 50'000'000);

}  // namespace psn::core::lattice
