#include "core/system.hpp"

#include <utility>

#include "common/error.hpp"

namespace psn::core {

std::unique_ptr<net::DelayModel> make_delay_model(const SystemConfig& cfg) {
  switch (cfg.delay_kind) {
    case DelayKind::kSynchronous:
      return std::make_unique<net::SynchronousDelay>();
    case DelayKind::kFixed:
      return std::make_unique<net::FixedDelay>(cfg.delta);
    case DelayKind::kUniformBounded:
      return net::UniformBoundedDelay::with_bound(cfg.delta);
    case DelayKind::kExponential:
      return std::make_unique<net::ExponentialDelay>(cfg.delta);
  }
  PSN_CHECK(false, "unknown delay kind");
  return nullptr;
}

namespace {

/// Drops when any constituent model drops (Bernoulli noise + scheduled
/// bursts compose this way).
class CombinedLoss final : public net::LossModel {
 public:
  explicit CombinedLoss(std::vector<std::unique_ptr<net::LossModel>> models)
      : models_(std::move(models)) {}
  bool drop(SimTime now, Rng& rng) override {
    bool dropped = false;
    // Evaluate all models so their internal state/draw streams advance
    // deterministically regardless of short-circuiting.
    for (const auto& m : models_) {
      if (m->drop(now, rng)) dropped = true;
    }
    return dropped;
  }
  std::string name() const override { return "combined"; }

 private:
  std::vector<std::unique_ptr<net::LossModel>> models_;
};

}  // namespace

std::unique_ptr<net::LossModel> make_loss_model(const SystemConfig& cfg) {
  std::vector<std::unique_ptr<net::LossModel>> parts;
  if (cfg.loss_probability > 0.0) {
    parts.push_back(std::make_unique<net::BernoulliLoss>(cfg.loss_probability));
  }
  if (!cfg.loss_windows.empty()) {
    parts.push_back(std::make_unique<net::ScheduledBurstLoss>(cfg.loss_windows));
  }
  if (cfg.gilbert_elliott.has_value()) {
    const auto& ge = *cfg.gilbert_elliott;
    parts.push_back(std::make_unique<net::GilbertElliottLoss>(
        ge.p_good_to_bad, ge.p_bad_to_good, ge.loss_in_good, ge.loss_in_bad));
  }
  if (parts.empty()) return std::make_unique<net::NoLoss>();
  if (parts.size() == 1) return std::move(parts[0]);
  return std::make_unique<CombinedLoss>(std::move(parts));
}

std::unique_ptr<sim::FaultSchedule> make_fault_schedule(
    const SystemConfig& cfg) {
  if (cfg.faults.empty()) return nullptr;
  const std::size_t n = cfg.num_sensors + 1;
  for (const sim::CrashWindow& w : cfg.faults.crashes) {
    if (w.pid >= n) {
      throw ConfigError("fault plan: crash pid " + std::to_string(w.pid) +
                        " is not a process (n = " + std::to_string(n) + ")");
    }
  }
  for (const sim::ClockFaultWindow& w : cfg.faults.clock_faults) {
    if (w.pid >= n) {
      throw ConfigError("fault plan: drift pid " + std::to_string(w.pid) +
                        " is not a process (n = " + std::to_string(n) + ")");
    }
  }
  const net::Overlay overlay = make_system_overlay(cfg.topology, n);
  for (const sim::PartitionWindow& w : cfg.faults.partitions) {
    if (w.a >= n || w.b >= n || !overlay.has_edge(w.a, w.b)) {
      throw ConfigError("fault plan: cut edge " + std::to_string(w.a) + "-" +
                        std::to_string(w.b) +
                        " does not exist in the configured topology");
    }
  }
  return std::make_unique<sim::FaultSchedule>(cfg.faults);
}

net::Overlay make_system_overlay(TopologyKind kind, std::size_t n) {
  switch (kind) {
    case TopologyKind::kComplete: return net::Overlay::complete(n);
    case TopologyKind::kStar: return net::Overlay::star(n);
    case TopologyKind::kRing: return net::Overlay::ring(n);
    case TopologyKind::kLine: return net::Overlay::line(n);
  }
  PSN_CHECK(false, "unknown topology kind");
  return net::Overlay(1);
}

PervasiveSystem::PervasiveSystem(SystemConfig config)
    : config_(std::move(config)) {
  PSN_CHECK(config_.num_sensors >= 1, "need at least one sensor");
  const std::size_t n = config_.num_sensors + 1;

  faults_ = make_fault_schedule(config_);
  sim_ = std::make_unique<sim::Simulation>(config_.sim);
  world_ = std::make_unique<world::WorldModel>(*sim_);
  transport_ = std::make_unique<net::Transport>(
      *sim_, make_system_overlay(config_.topology, n),
      make_delay_model(config_), make_loss_model(config_),
      sim_->rng_for("transport"));
  transport_->set_clock_mode(config_.clock_mode);
  transport_->set_fifo_channels(config_.fifo_channels);
  if (faults_ != nullptr) transport_->set_fault_schedule(faults_.get());

  root_ = std::make_unique<RootMonitor>(0, n, *sim_, config_.clock_config,
                                        sim_->rng_for("clock", 0));
  transport_->register_handler(
      0, [this](const net::Message& msg) { root_->on_message(msg); });

  for (ProcessId pid = 1; pid < n; ++pid) {
    sensors_.push_back(std::make_unique<SensorNode>(
        pid, n, *sim_, *transport_, config_.clock_config,
        sim_->rng_for("clock", pid)));
    SensorNode* node = sensors_.back().get();
    node->bind_world(world_.get());
    if (faults_ != nullptr) node->set_fault_schedule(faults_.get());
    transport_->register_handler(
        pid, [node](const net::Message& msg) { node->on_message(msg); });
  }

  if (config_.duty_cycle.has_value()) {
    PSN_CHECK(config_.duty_cycle->valid(), "invalid duty cycle");
    Rng phase_rng = sim_->rng_for("duty_phase");
    for (ProcessId pid = 1; pid < n; ++pid) {
      net::DutyCycle dc = *config_.duty_cycle;
      if (!config_.duty_phases_aligned) {
        dc.phase = phase_rng.uniform_duration(
            Duration::zero(), dc.period - Duration::nanos(1));
      }
      transport_->set_wake_schedule(pid, dc);
    }
  }

  // Route assigned world events to their sensors.
  world_->add_sink([this](const world::WorldEvent& ev) {
    const ProcessId pid = sensing_.sensor_of(ev.object, ev.attribute);
    if (pid == kNoProcess) return;
    sensor(pid).sense(ev);
  });

  // The root's ObservationLog advertises the end-to-end Δ bound and the
  // deployment's temporal-validity policy.
  root_->log().delta_bound = delta_bound();
  root_->log().validity = config_.validity_horizon;
}

void PervasiveSystem::assign(world::ObjectId object,
                             const std::string& attribute, ProcessId sensor) {
  PSN_CHECK(sensor >= 1 && sensor <= config_.num_sensors,
            "sensing must be assigned to a sensor process (1..n)");
  sensing_.assign(object, attribute, sensor);
}

SensorNode& PervasiveSystem::sensor(ProcessId pid) {
  PSN_CHECK(pid >= 1 && pid <= sensors_.size(), "not a sensor pid");
  return *sensors_[pid - 1];
}

const SensorNode& PervasiveSystem::sensor(ProcessId pid) const {
  PSN_CHECK(pid >= 1 && pid <= sensors_.size(), "not a sensor pid");
  return *sensors_[pid - 1];
}

Duration PervasiveSystem::delta_bound() const {
  const Duration hop = transport_->delay_model().bound();
  if (hop == Duration::max()) return Duration::max();
  std::size_t diameter = 1;
  const auto& ov = transport_->overlay();
  for (ProcessId a = 0; a < ov.size(); ++a) {
    for (ProcessId b = a + 1; b < ov.size(); ++b) {
      const std::size_t d = ov.hop_distance(a, b);
      if (d != SIZE_MAX) diameter = std::max(diameter, d);
    }
  }
  return hop * static_cast<std::int64_t>(diameter);
}

std::size_t PervasiveSystem::run() { return sim_->run(); }

std::vector<const std::vector<ProcessEvent>*>
PervasiveSystem::sensor_executions() const {
  std::vector<const std::vector<ProcessEvent>*> out;
  out.reserve(sensors_.size());
  for (const auto& s : sensors_) out.push_back(&s->events());
  return out;
}

}  // namespace psn::core
