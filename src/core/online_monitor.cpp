#include "core/online_monitor.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace psn::core {

OnlineMonitor::OnlineMonitor(PervasiveSystem& system, Predicate predicate,
                             std::vector<ActuationRule> rules)
    : system_(system),
      detector_(std::move(predicate)),
      rules_(std::move(rules)) {
  for (const auto& rule : rules_) {
    PSN_CHECK(rule.actuator >= 1 && rule.actuator < system_.num_processes(),
              "actuation rule needs a sensor/actuator process");
  }
  system_.root().add_observer(
      [this](const ReceivedUpdate& update, std::size_t index) {
        on_update(update, index);
      });
}

void OnlineMonitor::on_update(const ReceivedUpdate& update,
                              std::size_t index) {
  const auto detection = detector_.feed(update, index);
  // Surface expired-state evaluations as a metric (kStaleObservation). The
  // counter is registered lazily so runs under the default unbounded
  // validity policy keep a byte-identical metrics table.
  const std::size_t stale = detector_.stale_observations();
  if (stale > stale_reported_) {
    system_.sim().metrics().counter("detector.online.stale_observations")
        .inc(stale - stale_reported_);
    stale_reported_ = stale;
  }
  if (!detection) return;
  detections_.push_back(*detection);

  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const ActuationRule& rule = rules_[r];
    if (rule.on_rising_edge != detection->to_true) continue;
    if (detection->borderline && !rule.fire_on_borderline) continue;

    net::Message msg;
    msg.src = system_.root().id();
    msg.dst = rule.actuator;
    msg.kind = net::MessageKind::kActuation;
    net::ActuationPayload payload;
    payload.command = rule.command;
    payload.issued_at = system_.sim().now();
    payload.object = rule.object;
    payload.attribute = rule.attribute;
    payload.value = rule.value;
    msg.payload = std::move(payload);
    system_.transport().unicast(std::move(msg));

    ActuationRecord record;
    record.rule_index = r;
    record.issued_at = system_.sim().now();
    record.cause_true_time = detection->cause_true_time;
    record.borderline = detection->borderline;
    actuations_.push_back(record);
  }
}

std::vector<Duration> OnlineMonitor::actuation_latencies() const {
  // Match issued commands (in order) against the actuator's recorded
  // a-events (in order). Each command produces exactly one a-event at its
  // target, so a per-actuator two-pointer pairing is exact.
  std::vector<Duration> out;
  for (ProcessId pid = 1; pid < system_.num_processes(); ++pid) {
    std::vector<SimTime> applied;
    // sensor_executions() index 0 is P_1.
    const auto& events = *system_.sensor_executions()[pid - 1];
    for (const auto& e : events) {
      if (e.type == EventType::kActuate) {
        applied.push_back(e.clocks.true_time);
      }
    }
    std::size_t next = 0;
    for (const auto& a : actuations_) {
      if (rules_[a.rule_index].actuator != pid) continue;
      if (next >= applied.size()) break;  // command still in flight at horizon
      out.push_back(applied[next] - a.cause_true_time);
      next++;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace psn::core
