#include "core/temporal_logic.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace psn::core::mtl {

namespace {

/// Sorts, clamps to [0, H), drops empties, and merges touching intervals.
std::vector<Occurrence> normalize(std::vector<Occurrence> xs, SimTime horizon) {
  std::vector<Occurrence> clamped;
  for (auto& x : xs) {
    const SimTime b = std::max(x.begin, SimTime::zero());
    const SimTime e = std::min(x.end, horizon);
    if (b < e) clamped.push_back({b, e});
  }
  std::sort(clamped.begin(), clamped.end(),
            [](const Occurrence& a, const Occurrence& b) {
              return a.begin < b.begin;
            });
  std::vector<Occurrence> out;
  for (const auto& x : clamped) {
    if (!out.empty() && x.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, x.end);
    } else {
      out.push_back(x);
    }
  }
  return out;
}

}  // namespace

BoolSignal::BoolSignal(bool initial, std::vector<Transition> transitions,
                       SimTime horizon)
    : horizon_(horizon) {
  PSN_CHECK(horizon > SimTime::zero(), "signal horizon must be positive");
  bool value = initial;
  SimTime since = SimTime::zero();
  std::vector<Occurrence> intervals;
  for (const auto& tr : transitions) {
    PSN_CHECK(tr.when >= since, "transitions must be time-ordered");
    if (tr.to_true == value) continue;
    if (value) intervals.push_back({since, tr.when});
    value = tr.to_true;
    since = tr.when;
  }
  if (value) intervals.push_back({since, horizon});
  intervals_ = normalize(std::move(intervals), horizon);
}

BoolSignal BoolSignal::from_oracle(const OracleResult& oracle,
                                   SimTime horizon) {
  return BoolSignal(false, oracle.transitions, horizon);
}

BoolSignal BoolSignal::constant(bool value, SimTime horizon) {
  std::vector<Occurrence> intervals;
  if (value) intervals.push_back({SimTime::zero(), horizon});
  return from_intervals(std::move(intervals), horizon);
}

BoolSignal BoolSignal::from_intervals(std::vector<Occurrence> intervals,
                                      SimTime horizon) {
  PSN_CHECK(horizon > SimTime::zero(), "signal horizon must be positive");
  BoolSignal s(false, {}, horizon);
  s.intervals_ = normalize(std::move(intervals), horizon);
  return s;
}

bool BoolSignal::value_at(SimTime t) const {
  PSN_CHECK(t >= SimTime::zero() && t < horizon_,
            "signal sampled outside [0, horizon)");
  // Last interval with begin <= t.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](SimTime when, const Occurrence& occ) { return when < occ.begin; });
  if (it == intervals_.begin()) return false;
  return t < std::prev(it)->end;
}

double BoolSignal::fraction_true() const {
  Duration total = Duration::zero();
  for (const auto& x : intervals_) total += x.end - x.begin;
  return total.to_seconds() / (horizon_ - SimTime::zero()).to_seconds();
}

bool BoolSignal::always() const {
  return intervals_.size() == 1 && intervals_[0].begin == SimTime::zero() &&
         intervals_[0].end == horizon_;
}

BoolSignal BoolSignal::operator!() const {
  std::vector<Occurrence> out;
  SimTime cursor = SimTime::zero();
  for (const auto& x : intervals_) {
    if (cursor < x.begin) out.push_back({cursor, x.begin});
    cursor = x.end;
  }
  if (cursor < horizon_) out.push_back({cursor, horizon_});
  return from_intervals(std::move(out), horizon_);
}

BoolSignal BoolSignal::operator&&(const BoolSignal& other) const {
  PSN_CHECK(horizon_ == other.horizon_, "signal horizons differ");
  std::vector<Occurrence> out;
  std::size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const auto& a = intervals_[i];
    const auto& b = other.intervals_[j];
    const SimTime lo = std::max(a.begin, b.begin);
    const SimTime hi = std::min(a.end, b.end);
    if (lo < hi) out.push_back({lo, hi});
    if (a.end < b.end) {
      i++;
    } else {
      j++;
    }
  }
  return from_intervals(std::move(out), horizon_);
}

BoolSignal BoolSignal::operator||(const BoolSignal& other) const {
  PSN_CHECK(horizon_ == other.horizon_, "signal horizons differ");
  std::vector<Occurrence> out = intervals_;
  out.insert(out.end(), other.intervals_.begin(), other.intervals_.end());
  return from_intervals(std::move(out), horizon_);
}

BoolSignal BoolSignal::eventually(Duration lo, Duration hi) const {
  PSN_CHECK(Duration::zero() <= lo && lo <= hi,
            "eventually needs 0 <= lo <= hi");
  // F[lo,hi] φ holds at t iff [t+lo, t+hi] intersects a φ-interval [b, e):
  //   t >= b - hi  and  t < e - lo.
  std::vector<Occurrence> out;
  for (const auto& x : intervals_) {
    const SimTime b = x.begin - hi;   // may go negative; normalize clamps
    const SimTime e = x.end - lo;
    out.push_back({b, e});
  }
  return from_intervals(std::move(out), horizon_);
}

BoolSignal BoolSignal::always_within(Duration lo, Duration hi) const {
  return !((!*this).eventually(lo, hi));
}

BoolSignal BoolSignal::until(const BoolSignal& other) const {
  PSN_CHECK(horizon_ == other.horizon_, "signal horizons differ");
  // φ U ψ at t: ψ now, or ψ at some t' > t with φ covering [t, t').
  std::vector<Occurrence> out = other.intervals_;
  for (const auto& phi : intervals_) {
    for (const auto& psi : other.intervals_) {
      // ψ begins inside (or right at the end of) this φ-interval: every
      // t ∈ [phi.begin, psi.begin) reaches ψ through φ.
      if (psi.begin >= phi.begin && psi.begin <= phi.end &&
          phi.begin < psi.begin) {
        out.push_back({phi.begin, psi.begin});
      }
    }
  }
  return from_intervals(std::move(out), horizon_);
}

bool responds_within(const BoolSignal& trigger, const BoolSignal& response,
                     Duration deadline) {
  // G (trigger → F[0, deadline] response): the set of trigger-times not
  // covered by "response eventually within the deadline" must be empty.
  const BoolSignal satisfied = response.eventually(Duration::zero(), deadline);
  const BoolSignal violation = trigger && !satisfied;
  return !violation.ever();
}

bool never(const BoolSignal& bad) { return !bad.ever(); }

}  // namespace psn::core::mtl
