#include "core/predicate_parser.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

#include "common/error.hpp"

namespace psn::core {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ExprPtr parse() {
    ExprPtr e = parse_or();
    skip_ws();
    if (pos_ != text_.size()) fail("unexpected trailing input");
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ConfigError("predicate parse error at offset " +
                      std::to_string(pos_) + ": " + why + " in \"" +
                      std::string(text_) + "\"");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool eat(std::string_view tok) {
    skip_ws();
    if (text_.substr(pos_).starts_with(tok)) {
      // Word tokens must not merge with a following identifier character
      // ("or" must not match the prefix of "order").
      if (std::isalpha(static_cast<unsigned char>(tok[0]))) {
        const std::size_t end = pos_ + tok.size();
        if (end < text_.size() &&
            (std::isalnum(static_cast<unsigned char>(text_[end])) ||
             text_[end] == '_')) {
          return false;
        }
      }
      pos_ += tok.size();
      return true;
    }
    return false;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    for (;;) {
      if (eat("||") || eat("or")) {
        lhs = binary(BinaryOp::kOr, lhs, parse_and());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_cmp();
    for (;;) {
      if (eat("&&") || eat("and")) {
        lhs = binary(BinaryOp::kAnd, lhs, parse_cmp());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_sum();
    // Order matters: match two-character operators first.
    if (eat("<=")) return binary(BinaryOp::kLe, lhs, parse_sum());
    if (eat(">=")) return binary(BinaryOp::kGe, lhs, parse_sum());
    if (eat("==")) return binary(BinaryOp::kEq, lhs, parse_sum());
    if (eat("!=")) return binary(BinaryOp::kNe, lhs, parse_sum());
    if (eat("<")) return binary(BinaryOp::kLt, lhs, parse_sum());
    if (eat(">")) return binary(BinaryOp::kGt, lhs, parse_sum());
    return lhs;
  }

  ExprPtr parse_sum() {
    ExprPtr lhs = parse_term();
    for (;;) {
      if (eat("+")) {
        lhs = binary(BinaryOp::kAdd, lhs, parse_term());
      } else {
        skip_ws();
        // "-" only as a binary op here; unary minus is handled in factor.
        if (peek() == '-') {
          pos_++;
          lhs = binary(BinaryOp::kSub, lhs, parse_term());
        } else {
          return lhs;
        }
      }
    }
  }

  ExprPtr parse_term() {
    ExprPtr lhs = parse_factor();
    for (;;) {
      if (eat("*")) {
        lhs = binary(BinaryOp::kMul, lhs, parse_factor());
      } else if (eat("/")) {
        lhs = binary(BinaryOp::kDiv, lhs, parse_factor());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_factor() {
    skip_ws();
    if (eat("-")) return unary(UnaryOp::kNeg, parse_factor());
    if (eat("!")) return unary(UnaryOp::kNot, parse_factor());
    return parse_primary();
  }

  std::string parse_ident() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      pos_++;
    }
    if (pos_ == start) fail("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  ExprPtr parse_primary() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");

    if (eat("(")) {
      ExprPtr e = parse_or();
      if (!eat(")")) fail("expected ')'");
      return e;
    }

    const char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return parse_number();
    }
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != '_') {
      fail("expected number, identifier, or '('");
    }

    const std::string ident = parse_ident();
    if (ident == "true") return constant(1.0);
    if (ident == "false") return constant(0.0);

    skip_ws();
    if (peek() == '(') {
      pos_++;
      const std::string attr = parse_ident();
      if (!eat(")")) fail("expected ')' after aggregate argument");
      if (ident == "sum") return aggregate(AggregateOp::kSum, attr);
      if (ident == "min") return aggregate(AggregateOp::kMin, attr);
      if (ident == "max") return aggregate(AggregateOp::kMax, attr);
      if (ident == "count") return aggregate(AggregateOp::kCount, attr);
      fail("unknown aggregate '" + ident + "' (want sum/min/max/count)");
    }
    if (peek() == '[') {
      pos_++;
      skip_ws();
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        pos_++;
      }
      if (pos_ == start) fail("expected process id in '[...]'");
      const auto pid = static_cast<ProcessId>(
          std::strtoul(std::string(text_.substr(start, pos_ - start)).c_str(),
                       nullptr, 10));
      if (!eat("]")) fail("expected ']'");
      return var(pid, ident);
    }
    fail("variable '" + ident +
         "' needs a process subscript like '" + ident +
         "[0]' or an aggregate like 'sum(" + ident + ")'");
  }

  ExprPtr parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      pos_++;
    }
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + num + "'");
    return constant(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

ExprPtr parse_expr(std::string_view text) { return Parser(text).parse(); }

Predicate parse_predicate(const std::string& name, std::string_view text) {
  return Predicate(name, parse_expr(text));
}

}  // namespace psn::core
