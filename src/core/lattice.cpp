#include "core/lattice.hpp"

#include <cstring>
#include <deque>
#include <unordered_set>

#include "common/error.hpp"

namespace psn::core::lattice {

namespace {

struct CutHash {
  std::size_t operator()(const std::vector<std::size_t>& cut) const {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (const std::size_t v : cut) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

using CutSet = std::unordered_set<std::vector<std::size_t>, CutHash>;

/// Generic BFS over the consistent-cut lattice from the empty cut. Calls
/// `visit(cut)` for every consistent cut reached; if `expand(cut)` returns
/// false the cut's successors are not explored (used by definitely() to stop
/// at φ-true cuts). Returns false if the cap was hit.
template <typename Visit, typename Expand>
bool walk(const ExecutionView& view, std::uint64_t cap, Visit&& visit,
          Expand&& expand) {
  const std::size_t n = view.num_processes();
  std::vector<std::size_t> bottom(n, 0);
  CutSet seen;
  std::deque<std::vector<std::size_t>> frontier;
  seen.insert(bottom);
  visit(bottom);
  if (expand(bottom)) frontier.push_back(bottom);

  while (!frontier.empty()) {
    const std::vector<std::size_t> cut = std::move(frontier.front());
    frontier.pop_front();
    for (std::size_t i = 0; i < n; ++i) {
      if (cut[i] >= view.events(i).size()) continue;
      std::vector<std::size_t> next = cut;
      next[i]++;
      if (seen.contains(next)) continue;
      if (!view.consistent(next)) continue;
      if (seen.size() >= cap) return false;
      seen.insert(next);
      visit(next);
      if (expand(next)) frontier.push_back(std::move(next));
    }
  }
  return true;
}

}  // namespace

LatticeStats count_consistent_cuts(const ExecutionView& view,
                                   std::uint64_t cap) {
  LatticeStats stats;
  stats.total_events = view.total_events();
  const bool complete =
      walk(view, cap, [&](const auto&) { stats.consistent_cuts++; },
           [](const auto&) { return true; });
  stats.truncated = !complete;
  stats.linear = complete && stats.consistent_cuts == stats.total_events + 1;
  return stats;
}

double unconstrained_cuts(const ExecutionView& view) {
  double prod = 1.0;
  for (std::size_t i = 0; i < view.num_processes(); ++i) {
    prod *= static_cast<double>(view.events(i).size() + 1);
  }
  return prod;
}

std::optional<std::vector<std::size_t>> possibly_witness(
    const ExecutionView& view, const Predicate& predicate, std::uint64_t cap) {
  std::optional<std::vector<std::size_t>> witness;
  walk(
      view, cap,
      [&](const std::vector<std::size_t>& cut) {
        if (!witness && predicate.holds(view.state_at(cut))) witness = cut;
      },
      [&](const auto&) { return !witness.has_value(); });
  return witness;
}

bool possibly(const ExecutionView& view, const Predicate& predicate,
              std::uint64_t cap) {
  return possibly_witness(view, predicate, cap).has_value();
}

bool definitely(const ExecutionView& view, const Predicate& predicate,
                std::uint64_t cap) {
  // Definitely(φ) fails iff ⊤ is reachable from ⊥ through ¬φ cuts only
  // (⊥ and ⊤ included). φ-true cuts are not expanded — every observation
  // passing through them already satisfies φ.
  const std::vector<std::size_t> top = view.final_cut();
  bool top_reached_via_false = false;
  walk(
      view, cap,
      [&](const std::vector<std::size_t>& cut) {
        if (cut == top && !predicate.holds(view.state_at(cut))) {
          top_reached_via_false = true;
        }
      },
      [&](const std::vector<std::size_t>& cut) {
        return !predicate.holds(view.state_at(cut));
      });
  return !top_reached_via_false;
}

}  // namespace psn::core::lattice
