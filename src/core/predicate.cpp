#include "core/predicate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/error.hpp"

namespace psn::core {

std::vector<VarRef> GlobalState::vars_named(const std::string& name) const {
  std::vector<VarRef> out;
  for (const auto& [ref, _] : values_) {
    if (ref.name == name) out.push_back(ref);
  }
  return out;
}

const char* to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

const char* to_string(UnaryOp op) {
  return op == UnaryOp::kNeg ? "-" : "!";
}

const char* to_string(AggregateOp op) {
  switch (op) {
    case AggregateOp::kSum: return "sum";
    case AggregateOp::kMin: return "min";
    case AggregateOp::kMax: return "max";
    case AggregateOp::kCount: return "count";
  }
  return "?";
}

namespace {

class ConstExpr final : public Expr {
 public:
  explicit ConstExpr(double v) : v_(v) {}
  double evaluate(const GlobalState&) const override { return v_; }
  bool is_fully_defined(const GlobalState&) const override { return true; }
  void collect_vars(const GlobalState&, std::set<VarRef>&) const override {}
  void collect_aggregate_names(std::set<std::string>&) const override {}
  std::string to_string() const override {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v_);
    return buf;
  }

 private:
  double v_;
};

class VarExpr final : public Expr {
 public:
  VarExpr(ProcessId pid, std::string name) : ref_{pid, std::move(name)} {}
  double evaluate(const GlobalState& state) const override {
    return state.get(ref_).value_or(0.0);
  }
  bool is_fully_defined(const GlobalState& state) const override {
    return state.has(ref_);
  }
  void collect_vars(const GlobalState&, std::set<VarRef>& out) const override {
    out.insert(ref_);
  }
  void collect_aggregate_names(std::set<std::string>&) const override {}
  std::string to_string() const override { return ref_.to_string(); }
  const VarRef& ref() const { return ref_; }

 private:
  VarRef ref_;
};

class AggregateExpr final : public Expr {
 public:
  AggregateExpr(AggregateOp op, std::string name)
      : op_(op), name_(std::move(name)) {}

  double evaluate(const GlobalState& state) const override {
    // for_each_named, not vars_named: this runs once per delivered update
    // inside the PSN_HOT detector feed, and materializing a vector of
    // string-copied VarRefs per evaluation was one allocation per event —
    // exactly what the alloc-guard suite pins at zero.
    std::size_t n = 0;
    double acc = 0.0;
    state.for_each_named(name_, [&](const VarRef&, double v) {
      switch (op_) {
        case AggregateOp::kSum: acc += v; break;
        case AggregateOp::kMin: acc = n == 0 ? v : std::min(acc, v); break;
        case AggregateOp::kMax: acc = n == 0 ? v : std::max(acc, v); break;
        case AggregateOp::kCount: break;  // only n matters
      }
      n++;
    });
    if (n == 0) return 0.0;
    if (op_ == AggregateOp::kCount) return static_cast<double>(n);
    return acc;
  }
  bool is_fully_defined(const GlobalState& state) const override {
    // An aggregate is defined over whatever has been reported; it is "fully
    // defined" once at least one instance of the name exists.
    return state.has_named(name_);
  }
  void collect_vars(const GlobalState& state,
                    std::set<VarRef>& out) const override {
    for (const auto& r : state.vars_named(name_)) out.insert(r);
  }
  void collect_aggregate_names(std::set<std::string>& out) const override {
    out.insert(name_);
  }
  std::string to_string() const override {
    return std::string(psn::core::to_string(op_)) + "(" + name_ + ")";
  }

 private:
  AggregateOp op_;
  std::string name_;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr e) : op_(op), e_(std::move(e)) {
    PSN_CHECK(e_ != nullptr, "null operand");
  }
  double evaluate(const GlobalState& state) const override {
    const double v = e_->evaluate(state);
    return op_ == UnaryOp::kNeg ? -v : (v == 0.0 ? 1.0 : 0.0);
  }
  bool is_fully_defined(const GlobalState& state) const override {
    return e_->is_fully_defined(state);
  }
  void collect_vars(const GlobalState& state,
                    std::set<VarRef>& out) const override {
    e_->collect_vars(state, out);
  }
  void collect_aggregate_names(std::set<std::string>& out) const override {
    e_->collect_aggregate_names(out);
  }
  std::string to_string() const override {
    return std::string(psn::core::to_string(op_)) + "(" + e_->to_string() + ")";
  }
  const ExprPtr& operand() const { return e_; }

 private:
  UnaryOp op_;
  ExprPtr e_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {
    PSN_CHECK(lhs_ != nullptr && rhs_ != nullptr, "null operand");
  }

  double evaluate(const GlobalState& state) const override {
    const double a = lhs_->evaluate(state);
    // Short-circuit the logical operators.
    if (op_ == BinaryOp::kAnd) {
      return (a != 0.0 && rhs_->evaluate(state) != 0.0) ? 1.0 : 0.0;
    }
    if (op_ == BinaryOp::kOr) {
      return (a != 0.0 || rhs_->evaluate(state) != 0.0) ? 1.0 : 0.0;
    }
    const double b = rhs_->evaluate(state);
    switch (op_) {
      case BinaryOp::kAdd: return a + b;
      case BinaryOp::kSub: return a - b;
      case BinaryOp::kMul: return a * b;
      case BinaryOp::kDiv:
        PSN_CHECK(b != 0.0, "division by zero in predicate");
        return a / b;
      case BinaryOp::kLt: return a < b ? 1.0 : 0.0;
      case BinaryOp::kLe: return a <= b ? 1.0 : 0.0;
      case BinaryOp::kGt: return a > b ? 1.0 : 0.0;
      case BinaryOp::kGe: return a >= b ? 1.0 : 0.0;
      case BinaryOp::kEq: return a == b ? 1.0 : 0.0;
      case BinaryOp::kNe: return a != b ? 1.0 : 0.0;
      case BinaryOp::kAnd:
      case BinaryOp::kOr: break;  // handled above
    }
    return 0.0;
  }
  bool is_fully_defined(const GlobalState& state) const override {
    return lhs_->is_fully_defined(state) && rhs_->is_fully_defined(state);
  }
  void collect_vars(const GlobalState& state,
                    std::set<VarRef>& out) const override {
    lhs_->collect_vars(state, out);
    rhs_->collect_vars(state, out);
  }
  void collect_aggregate_names(std::set<std::string>& out) const override {
    lhs_->collect_aggregate_names(out);
    rhs_->collect_aggregate_names(out);
  }
  std::string to_string() const override {
    // Built up via += rather than operator+ chaining: GCC 12's -Wrestrict
    // false-fires on `"(" + <rvalue string>` under -O3 (PR 105651).
    std::string out = "(";
    out += lhs_->to_string();
    out += ' ';
    out += psn::core::to_string(op_);
    out += ' ';
    out += rhs_->to_string();
    out += ')';
    return out;
  }

  BinaryOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

 private:
  BinaryOp op_;
  ExprPtr lhs_, rhs_;
};

/// Collects the pids of all plain variables in `e`; returns false if the
/// expression contains an aggregate (which spans all processes).
bool collect_pids(const ExprPtr& e, std::set<ProcessId>& pids) {
  if (const auto* v = dynamic_cast<const VarExpr*>(e.get())) {
    pids.insert(v->ref().pid);
    return true;
  }
  if (dynamic_cast<const AggregateExpr*>(e.get()) != nullptr) return false;
  if (const auto* u = dynamic_cast<const UnaryExpr*>(e.get())) {
    return collect_pids(u->operand(), pids);
  }
  if (const auto* b = dynamic_cast<const BinaryExpr*>(e.get())) {
    return collect_pids(b->lhs(), pids) && collect_pids(b->rhs(), pids);
  }
  return true;  // constants
}

/// Flattens nested ANDs into conjuncts.
void flatten_and(const ExprPtr& e, std::vector<ExprPtr>& out) {
  if (const auto* b = dynamic_cast<const BinaryExpr*>(e.get());
      b != nullptr && b->op() == BinaryOp::kAnd) {
    flatten_and(b->lhs(), out);
    flatten_and(b->rhs(), out);
    return;
  }
  out.push_back(e);
}

}  // namespace

ExprPtr constant(double v) { return std::make_shared<ConstExpr>(v); }
ExprPtr var(ProcessId pid, const std::string& name) {
  return std::make_shared<VarExpr>(pid, name);
}
ExprPtr aggregate(AggregateOp op, const std::string& name) {
  return std::make_shared<AggregateExpr>(op, name);
}
ExprPtr unary(UnaryOp op, ExprPtr e) {
  return std::make_shared<UnaryExpr>(op, std::move(e));
}
ExprPtr binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BinaryExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr operator+(ExprPtr a, ExprPtr b) {
  return binary(BinaryOp::kAdd, std::move(a), std::move(b));
}
ExprPtr operator-(ExprPtr a, ExprPtr b) {
  return binary(BinaryOp::kSub, std::move(a), std::move(b));
}
ExprPtr operator*(ExprPtr a, ExprPtr b) {
  return binary(BinaryOp::kMul, std::move(a), std::move(b));
}
ExprPtr operator&&(ExprPtr a, ExprPtr b) {
  return binary(BinaryOp::kAnd, std::move(a), std::move(b));
}
ExprPtr operator||(ExprPtr a, ExprPtr b) {
  return binary(BinaryOp::kOr, std::move(a), std::move(b));
}
ExprPtr operator>(ExprPtr a, double v) {
  return binary(BinaryOp::kGt, std::move(a), constant(v));
}
ExprPtr operator<(ExprPtr a, double v) {
  return binary(BinaryOp::kLt, std::move(a), constant(v));
}
ExprPtr operator>=(ExprPtr a, double v) {
  return binary(BinaryOp::kGe, std::move(a), constant(v));
}
ExprPtr operator==(ExprPtr a, double v) {
  return binary(BinaryOp::kEq, std::move(a), constant(v));
}

Predicate::Predicate(std::string name, ExprPtr expr)
    : name_(std::move(name)), expr_(std::move(expr)) {
  PSN_CHECK(expr_ != nullptr, "predicate needs an expression");
}

bool Predicate::is_conjunctive() const {
  std::vector<ExprPtr> conjuncts;
  flatten_and(expr_, conjuncts);
  for (const auto& c : conjuncts) {
    std::set<ProcessId> pids;
    if (!collect_pids(c, pids)) return false;  // aggregate present
    if (pids.size() > 1) return false;         // conjunct spans processes
  }
  return true;
}

std::map<ProcessId, std::vector<ExprPtr>> Predicate::local_conjuncts() const {
  PSN_CHECK(is_conjunctive(), "predicate is not conjunctive");
  std::map<ProcessId, std::vector<ExprPtr>> out;
  std::vector<ExprPtr> conjuncts;
  flatten_and(expr_, conjuncts);
  for (const auto& c : conjuncts) {
    std::set<ProcessId> pids;
    collect_pids(c, pids);
    // A constant conjunct binds to no process; attach it to process 0 so it
    // still participates in evaluation.
    const ProcessId pid = pids.empty() ? 0 : *pids.begin();
    out[pid].push_back(c);
  }
  return out;
}

}  // namespace psn::core
