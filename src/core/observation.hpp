#pragma once

#include <cstddef>
#include <vector>

#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace psn::core {

/// Temporal validity interval of an observation (Kopetz & Steiner: data about
/// a dynamic environment is only *temporally consistent* for a bounded
/// lifetime after it was produced). An observation timestamped t — by the
/// deployment-visible ε-synchronized clock, never by ground truth — is valid
/// until t + lifetime; a monitor that evaluates φ over state older than that
/// is acting on expired data and must flag it (kStaleObservation).
struct ValidityHorizon {
  Duration lifetime = Duration::max();  ///< max() = observations never expire

  bool bounded() const { return lifetime != Duration::max(); }
  /// Instant the observation expires (saturating; max() when unbounded).
  SimTime expires_at(SimTime produced) const {
    if (!bounded()) return SimTime::max();
    return produced + lifetime;
  }
  bool expired(SimTime produced, SimTime now) const {
    return bounded() && now > expires_at(produced);
  }
};

/// One sense report as it arrived at the root monitor P_0 — the raw input of
/// every online detector. Delivery order (not sense order!) is the order a
/// real root would see; the difference between the two *is* the race problem
/// this paper is about.
struct ReceivedUpdate {
  SimTime delivered_at;
  ProcessId reporter = kNoProcess;
  net::SenseReportPayload report;
  /// Validity policy this update was received under (copied from the log's
  /// policy at append time so per-update overrides remain possible).
  ValidityHorizon validity;
  /// net::Message::seq of the strobe this update arrived on (0 = a local
  /// self-report, which carries no message). Run-unique, so the sharded
  /// runner's per-shard root logs merge into the serial delivery order by
  /// (delivered_at, seq) with no further tie to break (DESIGN.md §14).
  std::uint64_t seq = 0;
};

/// Everything the root observed during one run, in delivery order, plus the
/// facts detectors are allowed to know statically (process count, Δ bound).
struct ObservationLog {
  std::size_t num_processes = 0;
  /// The transport's delay bound Δ (Duration::max() if unbounded); detectors
  /// may use it — the paper's Δ-bounded model makes it known (§3.2.2.b).
  Duration delta_bound = Duration::max();
  /// Deployment-wide temporal-validity policy stamped onto every update.
  ValidityHorizon validity;
  std::vector<ReceivedUpdate> updates;
};

}  // namespace psn::core
