#pragma once

#include <cstddef>
#include <vector>

#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace psn::core {

/// One sense report as it arrived at the root monitor P_0 — the raw input of
/// every online detector. Delivery order (not sense order!) is the order a
/// real root would see; the difference between the two *is* the race problem
/// this paper is about.
struct ReceivedUpdate {
  SimTime delivered_at;
  ProcessId reporter = kNoProcess;
  net::SenseReportPayload report;
};

/// Everything the root observed during one run, in delivery order, plus the
/// facts detectors are allowed to know statically (process count, Δ bound).
struct ObservationLog {
  std::size_t num_processes = 0;
  /// The transport's delay bound Δ (Duration::max() if unbounded); detectors
  /// may use it — the paper's Δ-bounded model makes it known (§3.2.2.b).
  Duration delta_bound = Duration::max();
  std::vector<ReceivedUpdate> updates;
};

}  // namespace psn::core
