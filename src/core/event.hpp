#pragma once

#include <optional>
#include <string>

#include "clocks/clock_bundle.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "core/variables.hpp"
#include "world/event.hpp"

namespace psn::core {

/// The paper's execution model (§2.2): at each process, local execution is a
/// sequence of states and transitions caused by events of five types.
enum class EventType : std::uint8_t {
  kCompute,  ///< c — internal computation
  kSense,    ///< n — observation of a world-plane attribute change
  kActuate,  ///< a — output to a world-plane object
  kSend,     ///< s — send of a computation message to another process in P
  kReceive,  ///< r — receive of a computation message
};

const char* to_string(EventType t);

/// One recorded event of a process's local execution. Carries the full clock
/// bundle snapshot taken *after* the event's clock rules fired, so any
/// detector/analysis can reconstruct its view under any time model.
struct ProcessEvent {
  ProcessId pid = kNoProcess;
  EventType type = EventType::kCompute;
  /// 1-based index of this event within its process's local sequence.
  std::size_t local_index = 0;
  clocks::ClockSnapshot clocks;

  /// For sense events: the variable updated and its new value.
  std::optional<VarRef> var;
  double value = 0.0;
  /// For sense events: which world event was observed.
  world::WorldEventIndex world_event = world::kNoWorldEvent;
  /// Transport sequence id tying this event to the network plane (0 = none):
  /// the strobe broadcast triggered by an n event, the computation message of
  /// an s or r event. psn::check matches s/r pairs on it.
  std::uint64_t message_seq = 0;
};

/// The interval between two successive relevant local events (paper §2.2:
/// "the time duration between two successive events at a process identifies
/// an interval"); the variable holds `value` throughout.
struct LocalInterval {
  ProcessId pid = kNoProcess;
  VarRef var;
  double value = 0.0;
  SimTime begin;             ///< true time the value was sensed
  SimTime end;               ///< true time of the next change (or horizon)
  std::size_t begin_event = 0;  ///< local index of the opening sense event
};

}  // namespace psn::core
