#include "core/consensus.hpp"

#include <map>

#include "common/error.hpp"

namespace psn::core {

void enable_all_observers(PervasiveSystem& system) {
  for (ProcessId pid = 1; pid < system.num_processes(); ++pid) {
    system.sensor(pid).enable_observation_log(system.num_processes(),
                                              system.delta_bound());
  }
}

std::vector<const ObservationLog*> ConsensusStrobeDetector::observer_logs(
    const PervasiveSystem& system) {
  std::vector<const ObservationLog*> logs;
  logs.push_back(&system.log());  // the root is always observer 0
  for (ProcessId pid = 1; pid < system.num_processes(); ++pid) {
    const SensorNode& node = system.sensor(pid);
    if (node.observation_log_enabled()) {
      logs.push_back(&node.observation_log());
    }
  }
  return logs;
}

std::vector<Detection> ConsensusStrobeDetector::run(
    const std::vector<const ObservationLog*>& logs,
    const Predicate& predicate) const {
  PSN_CHECK(logs.size() >= 2,
            "consensus needs the root plus at least one sensor observer");

  const StrobeVectorDetector single;
  // Observer 0 (the root) provides the spine of reported transitions.
  std::vector<Detection> spine = single.run(*logs[0], predicate);

  // For each other observer: which world event triggered which transition
  // direction, as that observer saw it.
  std::vector<std::map<world::WorldEventIndex, bool>> votes;
  for (std::size_t o = 1; o < logs.size(); ++o) {
    std::map<world::WorldEventIndex, bool> seen;
    for (const auto& d : single.run(*logs[o], predicate)) {
      const auto trigger = logs[o]->updates[d.update_index].report.world_event;
      seen[trigger] = d.to_true;
    }
    votes.push_back(std::move(seen));
  }

  // A spine transition is confident iff EVERY observer reported the same
  // direction for the same triggering world event; any disagreement (or a
  // missing report) is direct evidence that delivery orders diverged — a
  // race — so the transition goes to the borderline bin.
  for (auto& d : spine) {
    const auto trigger = logs[0]->updates[d.update_index].report.world_event;
    bool unanimous = true;
    for (const auto& seen : votes) {
      const auto it = seen.find(trigger);
      if (it == seen.end() || it->second != d.to_true) {
        unanimous = false;
        break;
      }
    }
    d.borderline = !unanimous;
  }
  return spine;
}

}  // namespace psn::core
