#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/observation.hpp"
#include "core/predicate.hpp"

namespace psn::core {

/// One reported change of φ's truth value by a detector. `cause_true_time`
/// is scoring metadata (the true time of the sense that triggered the
/// report); the detector's *decision* never reads it.
struct Detection {
  SimTime detected_at;      ///< when the root could have acted (delivery time)
  bool to_true = false;
  /// Vector-strobe detectors flag a transition as borderline when the
  /// deciding updates were concurrent (a race within Δ) — the paper's
  /// "borderline bin" (§5). The application may treat these as positives to
  /// err on the safe side.
  bool borderline = false;
  SimTime cause_true_time;
  std::size_t update_index = 0;  ///< index into ObservationLog::updates
};

/// Online every-occurrence global-predicate detector over the root's
/// observation stream. Unlike the "detect once then hang" algorithms the
/// paper criticizes (§3.3), all implementations emit a full transition
/// stream: became-true and became-false, every time.
class Detector {
 public:
  virtual ~Detector() = default;
  virtual std::string name() const = 0;
  virtual std::vector<Detection> run(const ObservationLog& log,
                                     const Predicate& predicate) const = 0;
};

/// Baseline: applies updates in raw delivery order with no staleness
/// filtering at all. Shows what the strobe machinery buys (ablation ◊).
class DeliveryOrderDetector final : public Detector {
 public:
  std::string name() const override { return "delivery-order"; }
  std::vector<Detection> run(const ObservationLog& log,
                             const Predicate& predicate) const override;
};

/// Strobe *scalar* clock detection (paper §4.2.2 + [25]): the total order
/// (stamp value, pid) simulates the single time axis. Stale updates — those
/// whose stamp is not newer than the variable's current stamp — are
/// discarded. Races are invisible in a total order, so wrong interleavings
/// are reported confidently: this is where the scalar clock's false
/// positives come from (§3.3).
class StrobeScalarDetector final : public Detector {
 public:
  std::string name() const override { return "strobe-scalar"; }
  std::vector<Detection> run(const ObservationLog& log,
                             const Predicate& predicate) const override;
};

/// Strobe *vector* clock detection (paper §4.2.1 + [24]): staleness uses the
/// vector partial order, and — crucially — a transition decided by updates
/// whose stamps are pairwise concurrent is flagged `borderline` instead of
/// being asserted. Vector strobes thus trade the scalar's false positives
/// for classified races (§3.3, §5).
class StrobeVectorDetector final : public Detector {
 public:
  std::string name() const override { return "strobe-vector"; }
  std::vector<Detection> run(const ObservationLog& log,
                             const Predicate& predicate) const override;
};

/// ε-synchronized physical-clock detection (Mayo–Kearns / Stoller style,
/// paper §3.1.1.a.i): updates are ordered by their synchronized timestamps.
/// Mis-ordering happens only when two events fall within the clock service's
/// skew — the 2ε false-negative window of [28].
class PhysicalClockDetector final : public Detector {
 public:
  std::string name() const override { return "physical-eps"; }
  std::vector<Detection> run(const ObservationLog& log,
                             const Predicate& predicate) const override;
};

/// All four online detectors, for side-by-side experiment sweeps.
std::vector<std::unique_ptr<Detector>> all_online_detectors();

/// Incremental form of the strobe-vector detector, for true online use
/// inside a running simulation (core/online_monitor): feed updates one at a
/// time; a Detection is returned whenever φ's truth value changed.
/// StrobeVectorDetector::run() is exactly a fold of this over the log.
class IncrementalStrobeVectorDetector {
 public:
  explicit IncrementalStrobeVectorDetector(Predicate predicate);
  ~IncrementalStrobeVectorDetector();
  IncrementalStrobeVectorDetector(IncrementalStrobeVectorDetector&&) noexcept;
  IncrementalStrobeVectorDetector& operator=(
      IncrementalStrobeVectorDetector&&) noexcept;

  std::optional<Detection> feed(const ReceivedUpdate& update,
                                std::size_t index);
  bool holding() const;
  const Predicate& predicate() const;

  /// Feeds whose evaluation involved temporally expired state (the update's
  /// own validity interval had lapsed before delivery, or a retained
  /// read-set variable's had lapsed by the evaluation instant — Kopetz-
  /// Steiner temporal validity). Such evaluations are flagged `borderline`
  /// in the emitted Detection: acting on expired state must be visible.
  /// Always 0 under the default unbounded ValidityHorizon.
  std::size_t stale_observations() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace psn::core
