#pragma once

#include <string>
#include <vector>

#include "core/detectors.hpp"
#include "core/observation.hpp"
#include "core/predicate.hpp"
#include "core/system.hpp"

namespace psn::core {

/// Consensus-based strobe-vector detection — the paper's §5 formulation:
/// "the *consensus based algorithm* using vector strobes will be able to
/// place false positives and most false negatives in a 'borderline bin'
/// which is characterized by a race condition."
///
/// Every observer (the root plus any sensor with its observation log
/// enabled) sees the same strobe broadcasts in a *different* delivery
/// order. When no race occurred, all observers assemble the same state
/// sequence and report identical transitions; when the deciding updates
/// raced within Δ, observers disagree — either on whether a transition
/// happened at all, or on which sense event triggered it. Consensus
/// detection therefore classifies:
///   - transitions every observer reports identically → confident,
///   - anything else → borderline (a race, by construction).
/// This sharpens the single-observer stamp-concurrency heuristic of
/// StrobeVectorDetector: disagreement is direct evidence of a race.
class ConsensusStrobeDetector {
 public:
  /// Runs the vector-strobe detector over each observer's log and merges
  /// by vote. `logs` must contain at least two observers (the root's log
  /// plus sensors'); detections are reported on the first (root) log's
  /// timeline.
  std::vector<Detection> run(
      const std::vector<const ObservationLog*>& logs,
      const Predicate& predicate) const;

  /// Convenience: collects the root log plus every sensor log that was
  /// enabled on `system`.
  static std::vector<const ObservationLog*> observer_logs(
      const PervasiveSystem& system);
};

/// Enables observation logs on all sensors of `system` (call before run()).
void enable_all_observers(PervasiveSystem& system);

}  // namespace psn::core
