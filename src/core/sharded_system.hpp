#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "core/sensing.hpp"
#include "core/system.hpp"
#include "net/shard_map.hpp"
#include "sim/trace.hpp"
#include "world/event.hpp"

namespace psn::core {

/// Configuration for the Δ-windowed sharded runner (DESIGN.md §14).
struct ShardedSystemConfig {
  /// The system being replicated per shard. Every shard is constructed from
  /// this exact config (same master seed, same models), which is what makes
  /// the per-shard RNG substreams — transport message seed, duty phases,
  /// clock noise — agree across shard counts.
  SystemConfig base;
  /// Number of space partitions K (1 <= K <= num_sensors + 1). K = 1 runs
  /// the whole system in one shard with no window machinery and supports
  /// every delay kind; K > 1 requires a positive minimum one-hop delay.
  std::size_t shards = 1;
  /// Worker threads driving the per-window shard fan-out (K > 1 only).
  /// 1 = run shard turns inline on the caller. Determinism is independent
  /// of this value; only wall-clock time changes.
  std::size_t pool_threads = 1;
  /// Route every sense report as one unicast to the root P_0 instead of the
  /// system-wide strobe broadcast (the city-scale star deployment).
  bool unicast_reports = false;
};

/// Space-partitioned execution of one ⟨P, L, O, C⟩ system (DESIGN.md §14).
///
/// The process space is cut into K contiguous shards (net::ShardMap); each
/// shard owns a full Simulation + Transport + its range of SensorNodes, and
/// all shards advance in lockstep Δ-windows (sim::ShardedSimulation). Three
/// mechanisms make the run *byte-identical* at every K:
///
///  - identity: per-source strided message seqs and per-message keyed RNG
///    (net::Transport) give every message the same seq, delay draws, and
///    loss draws no matter which shard sends it;
///  - routing: a cross-shard send is finalized (arrival instant + canonical
///    tie) in the sender's shard, parked in a per-(src,dst-shard) outbox,
///    and injected verbatim into the owner's calendar at the window barrier
///    in (at, tie) order;
///  - observation: P_0 is replicated into every shard — deliveries to the
///    root execute locally against the replica, and the per-shard logs merge
///    by (delivered_at, seq) into exactly the serial delivery order. Traces
///    merge under sim::canonical_trace_order; metrics merge by summation in
///    shard order.
///
/// The world plane is *not* replicated. The caller pre-rolls the world
/// timeline once (scenarios are autonomous — they draw only from their own
/// RNG substream) and hands it to set_world_events(); each sensor's event
/// subsequence is replayed by a per-pid timer chain inside its owner shard.
/// The K = 1 path uses the same replay machinery, so a 1-shard run is the
/// golden reference for every K — and for the pre-sharding serial runner.
///
/// Not supported (callers reject these before construction): transports'
/// causal-delivery mode, actuation messages (no world plane is bound), and
/// K > 1 under delay models with a zero minimum one-hop delay.
class ShardedPervasiveSystem {
 public:
  explicit ShardedPervasiveSystem(ShardedSystemConfig config);
  ~ShardedPervasiveSystem();

  /// Routes (object, attribute) world events to `sensor` during replay.
  void assign(world::ObjectId object, const std::string& attribute,
              ProcessId sensor);
  const SensingMap& sensing() const { return sensing_; }

  /// Installs the pre-rolled ground-truth timeline to replay (`when`
  /// non-decreasing, indices assigned). Call once, before run().
  void set_world_events(std::vector<world::WorldEvent> events);

  /// Pre-sizes every per-shard root log (city-scale runs append millions of
  /// updates; growing the logs inside the window loop would allocate).
  void reserve_root_logs(std::size_t expected_updates);

  std::size_t num_processes() const { return n_; }
  std::size_t num_shards() const { return shard_map_.num_shards(); }
  const net::ShardMap& shard_map() const { return shard_map_; }
  /// End-to-end Δ bound (hop bound × topology diameter, computed in closed
  /// form per TopologyKind — the O(n²) BFS sweep is intractable at 10^5).
  Duration delta_bound() const;
  /// Window width W used by the K > 1 drive loop (zero when K = 1).
  Duration window() const { return window_; }

  /// Replays the world timeline through all shards to the horizon; returns
  /// total events executed. Call once.
  std::size_t run();
  bool truncated() const { return truncated_; }
  /// Δ-windows executed (0 when K = 1 — no window machinery ran).
  std::size_t windows() const { return windows_; }

  // --- Merged run artifacts. Valid after run(); each is bit-identical to
  // --- the corresponding serial artifact at every K.
  const ObservationLog& log() const { return merged_log_; }
  const std::vector<world::WorldEvent>& world_events() const {
    return timeline_;
  }
  net::MessageStats message_stats() const;
  MetricsSnapshot metrics_snapshot() const;
  /// Shard 0's registry — where post-run, analysis-level counters belong
  /// (written exactly once, never per shard, so merged snapshots stay
  /// K-independent).
  MetricsRegistry& metrics();
  /// All shards' trace rings, merged under sim::canonical_trace_order.
  std::vector<sim::TraceRecord> trace_records() const;
  std::size_t trace_evicted() const;
  /// Recorded local executions of the sensors (index 0 = P_1), pid order.
  std::vector<const std::vector<ProcessEvent>*> sensor_executions() const;

  const ShardedSystemConfig& config() const { return config_; }

  /// The compiled fault schedule, or nullptr when the config has no faults.
  /// One schedule is shared by every shard — fault decisions are pure
  /// functions of (pid/edge, time), never of the shard layout.
  const sim::FaultSchedule* faults() const { return faults_.get(); }

 private:
  struct Shard;
  struct ReplayCursor;

  std::unique_ptr<Shard> build_shard(std::size_t s);
  SensorNode& sensor(ProcessId pid);
  void install_cursors();
  std::size_t exchange_outboxes();
  void merge_root_logs();

  ShardedSystemConfig config_;
  std::unique_ptr<sim::FaultSchedule> faults_;
  std::size_t n_ = 0;              ///< processes incl. the root
  Duration window_ = Duration::zero();
  net::ShardMap shard_map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// outboxes_[src_shard][dst_shard]; cleared (capacity kept) per window.
  std::vector<std::vector<std::vector<net::PendingDelivery>>> outboxes_;
  std::vector<net::PendingDelivery> exchange_scratch_;
  std::vector<world::WorldEvent> timeline_;
  std::vector<std::unique_ptr<ReplayCursor>> cursors_;
  SensingMap sensing_;
  ObservationLog merged_log_;
  bool truncated_ = false;
  std::size_t windows_ = 0;
  bool ran_ = false;
};

}  // namespace psn::core
