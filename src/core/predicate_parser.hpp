#pragma once

#include <string>
#include <string_view>

#include "core/predicate.hpp"

namespace psn::core {

/// Parses a predicate expression from text. Grammar (C-like precedence):
///
///   expr    := or
///   or      := and ( ("||" | "or") and )*
///   and     := cmp ( ("&&" | "and") cmp )*
///   cmp     := sum ( ("<" | "<=" | ">" | ">=" | "==" | "!=") sum )?
///   sum     := term ( ("+" | "-") term )*
///   term    := factor ( ("*" | "/") factor )*
///   factor  := "-" factor | "!" factor | primary
///   primary := NUMBER
///            | IDENT "[" NUMBER "]"          -- variable at a process,
///                                               e.g. entered[2]
///            | ("sum"|"min"|"max"|"count") "(" IDENT ")"
///                                            -- aggregate over processes
///            | "true" | "false"
///            | "(" expr ")"
///
/// Examples from the paper:
///   "sum(entered) - sum(exited) > 200"            (§5 exhibition hall)
///   "temp[0] > 30 && occupied[0]"                 (§3.1 smart office)
///   "x[1] == 5 && y[2] > 7"                       (§3.1.2 conjunctive ψ)
///   "x[1] + y[2] > 7"                             (§3.1.2 relational φ)
///
/// Throws ConfigError with position information on malformed input.
ExprPtr parse_expr(std::string_view text);

/// Convenience: parse and wrap into a named Predicate.
Predicate parse_predicate(const std::string& name, std::string_view text);

}  // namespace psn::core
