#include "core/sharded_system.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "net/transport.hpp"
#include "sim/scheduler.hpp"
#include "sim/sharded.hpp"
#include "sim/simulation.hpp"

namespace psn::core {

/// One space partition: a complete Simulation + Transport stack, the shard's
/// range of sensors, and a replica of the root monitor P_0.
struct ShardedPervasiveSystem::Shard {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<net::Transport> transport;
  std::unique_ptr<RootMonitor> root;
  std::vector<std::unique_ptr<SensorNode>> sensors;  ///< owned pids only
  ProcessId sensor_base = 1;                         ///< pid of sensors[0]

  SensorNode& sensor(ProcessId pid) { return *sensors[pid - sensor_base]; }
};

/// Replays one sensor's subsequence of the pre-rolled world timeline as a
/// self-rescheduling timer chain inside the owner shard. Chaining (instead
/// of scheduling the whole subsequence up front) keeps the calendar small
/// and gives every pid the same schedule-on-execute pattern at every K.
struct ShardedPervasiveSystem::ReplayCursor {
  SensorNode* node = nullptr;
  sim::Scheduler* scheduler = nullptr;
  const std::vector<world::WorldEvent>* timeline = nullptr;
  std::vector<std::uint32_t> events;  ///< indices into *timeline, ascending
  std::size_t next = 0;

  void schedule_next() {
    auto fire_cb = [this] { fire(); };
    static_assert(sim::Scheduler::Callback::stores_inline<decltype(fire_cb)>(),
                  "replay timer must not allocate");
    // Tie 0: sense timers run before any same-instant delivery, the same
    // canonical policy the serial scheduler applies.
    scheduler->schedule_at((*timeline)[events[next]].when, /*tie=*/0,
                           std::move(fire_cb));
  }
  void fire() {
    node->sense((*timeline)[events[next]]);
    ++next;
    if (next < events.size()) schedule_next();
  }
};

namespace {

net::ShardMap make_shard_map(const ShardedSystemConfig& cfg) {
  PSN_CHECK(cfg.base.num_sensors >= 1, "need at least one sensor");
  const std::size_t n = cfg.base.num_sensors + 1;
  return net::ShardMap::partition(make_system_overlay(cfg.base.topology, n),
                                  cfg.shards);
}

}  // namespace

ShardedPervasiveSystem::ShardedPervasiveSystem(ShardedSystemConfig config)
    : config_(std::move(config)),
      faults_(make_fault_schedule(config_.base)),
      n_(config_.base.num_sensors + 1),
      shard_map_(make_shard_map(config_)) {
  PSN_CHECK(config_.pool_threads >= 1, "pool_threads must be >= 1");
  // Gilbert–Elliott loss keeps good/bad state across drop() calls, so its
  // draws depend on the global transmission order — only the K = 1 layout
  // reproduces the serial run (callers reject with a friendly error first).
  PSN_CHECK(!config_.base.gilbert_elliott.has_value() || config_.shards == 1,
            "Gilbert-Elliott loss is not supported with shards > 1");
  if (config_.shards > 1) {
    // Conservative lookahead: the window W must be covered by the minimum
    // one-hop delay, or a send inside a window could land inside the same
    // window on another shard. Callers reject zero-lookahead delay kinds
    // with a friendly error before getting here; this is the backstop.
    window_ = make_delay_model(config_.base)->min_delay();
    PSN_CHECK(window_ > Duration::zero(),
              "sharded execution needs a delay model with a positive minimum "
              "one-hop delay (fixed or Delta-bounded kinds)");
  }
  outboxes_.resize(config_.shards);
  for (auto& row : outboxes_) row.resize(config_.shards);
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(build_shard(s));
  }
}

ShardedPervasiveSystem::~ShardedPervasiveSystem() = default;

std::unique_ptr<ShardedPervasiveSystem::Shard>
ShardedPervasiveSystem::build_shard(std::size_t s) {
  const SystemConfig& base = config_.base;
  auto sh = std::make_unique<Shard>();
  // Every shard's Simulation is seeded from the same SimConfig, so named
  // RNG substreams (transport, clock-per-pid, duty_phase) draw identical
  // values in every shard — replicated state is bit-identical by build.
  sh->sim = std::make_unique<sim::Simulation>(base.sim);
  sh->transport = std::make_unique<net::Transport>(
      *sh->sim, make_system_overlay(base.topology, n_),
      make_delay_model(base), make_loss_model(base),
      sh->sim->rng_for("transport"));
  sh->transport->set_clock_mode(base.clock_mode);
  // FIFO channels are rejected for shards > 1 (ctor backstop below the
  // callers' friendly errors); at one shard they behave as in the serial
  // system.
  PSN_CHECK(!base.fifo_channels || config_.shards == 1,
            "FIFO channels are not supported with shards > 1");
  sh->transport->set_fifo_channels(base.fifo_channels);
  // Every shard installs the shared fault schedule: crash/partition drops
  // are decided in the *sender's* shard (like the wake-schedule clamp), so
  // each transport must know the full plan, not just its own pids' slice.
  if (faults_ != nullptr) sh->transport->set_fault_schedule(faults_.get());

  // The root P_0 is replicated into every shard: a delivery to the root
  // executes locally in the *sender's* shard against the local replica (the
  // root only folds observations, it never sends), and the per-shard logs
  // merge into the serial delivery order after the run.
  sh->root = std::make_unique<RootMonitor>(0, n_, *sh->sim, base.clock_config,
                                           sh->sim->rng_for("clock", 0));
  sh->root->log().delta_bound = delta_bound();
  sh->root->log().validity = base.validity_horizon;
  RootMonitor* root = sh->root.get();
  sh->transport->register_handler(
      0, [root](const net::Message& msg) { root->on_message(msg); });

  const ProcessId end = shard_map_.end(s);
  sh->sensor_base = std::max<ProcessId>(1, shard_map_.begin(s));
  sh->sensors.reserve(end - sh->sensor_base);
  for (ProcessId pid = sh->sensor_base; pid < end; ++pid) {
    sh->sensors.push_back(std::make_unique<SensorNode>(
        pid, n_, *sh->sim, *sh->transport, base.clock_config,
        sh->sim->rng_for("clock", pid)));
    SensorNode* node = sh->sensors.back().get();
    if (faults_ != nullptr) node->set_fault_schedule(faults_.get());
    if (config_.unicast_reports) node->set_report_target(0);
    sh->transport->register_handler(
        pid, [node](const net::Message& msg) { node->on_message(msg); });
  }

  // Duty phases: every shard runs the full assignment loop with its own
  // "duty_phase" substream (identical draws — same master seed) and
  // installs wake schedules for *all* pids, not just its own: the arrival
  // adjustment happens in the sender's shard, which must know the wake
  // schedule of any destination.
  if (base.duty_cycle.has_value()) {
    PSN_CHECK(base.duty_cycle->valid(), "invalid duty cycle");
    Rng phase_rng = sh->sim->rng_for("duty_phase");
    for (ProcessId pid = 1; pid < n_; ++pid) {
      net::DutyCycle dc = *base.duty_cycle;
      if (!base.duty_phases_aligned) {
        dc.phase = phase_rng.uniform_duration(Duration::zero(),
                                              dc.period - Duration::nanos(1));
      }
      sh->transport->set_wake_schedule(pid, dc);
    }
  }

  if (config_.shards > 1) {
    net::RemoteRoute route;
    route.is_remote = [this, s](ProcessId dst) {
      // The root is never remote — every shard delivers to its own replica.
      return dst != 0 && shard_map_.shard_of(dst) != s;
    };
    route.enqueue = [this, s](SimTime at, std::uint64_t tie, net::Message msg,
                              std::size_t bytes) {
      outboxes_[s][shard_map_.shard_of(msg.dst)].push_back(
          {at, tie, std::move(msg), bytes});
    };
    sh->transport->set_remote_route(std::move(route));
  }
  return sh;
}

void ShardedPervasiveSystem::assign(world::ObjectId object,
                                    const std::string& attribute,
                                    ProcessId sensor) {
  PSN_CHECK(sensor >= 1 && sensor < n_,
            "sensing must be assigned to a sensor process (1..n)");
  sensing_.assign(object, attribute, sensor);
}

void ShardedPervasiveSystem::set_world_events(
    std::vector<world::WorldEvent> events) {
  PSN_CHECK(!ran_, "world events must be installed before run()");
  for (std::size_t i = 1; i < events.size(); ++i) {
    PSN_CHECK(events[i - 1].when <= events[i].when,
              "world timeline must be in true-time order");
  }
  timeline_ = std::move(events);
}

void ShardedPervasiveSystem::reserve_root_logs(std::size_t expected_updates) {
  // Each replica sees only its own shard's reports; contiguous partitioning
  // keeps that near expected/K, padded 25% for imbalance.
  const std::size_t per_shard =
      expected_updates / shards_.size() + expected_updates / (4 * shards_.size()) + 64;
  for (const auto& sh : shards_) sh->root->log().updates.reserve(per_shard);
}

SensorNode& ShardedPervasiveSystem::sensor(ProcessId pid) {
  PSN_CHECK(pid >= 1 && pid < n_, "not a sensor pid");
  return shards_[shard_map_.shard_of(pid)]->sensor(pid);
}

Duration ShardedPervasiveSystem::delta_bound() const {
  const Duration hop = make_delay_model(config_.base)->bound();
  if (hop == Duration::max()) return Duration::max();
  // Closed-form diameters (the serial system's all-pairs BFS sweep is
  // O(n^2) — intractable at city scale). Matches Overlay's builders.
  std::size_t diameter = 1;
  switch (config_.base.topology) {
    case TopologyKind::kComplete: diameter = 1; break;
    case TopologyKind::kStar: diameter = n_ <= 2 ? 1 : 2; break;
    case TopologyKind::kRing: diameter = std::max<std::size_t>(1, n_ / 2); break;
    case TopologyKind::kLine: diameter = n_ - 1; break;
  }
  return hop * static_cast<std::int64_t>(diameter);
}

void ShardedPervasiveSystem::install_cursors() {
  // Group the timeline by owning sensor pid, preserving timeline order, so
  // each pid replays exactly its subsequence — event counts and instants
  // per pid are independent of the shard count by construction.
  std::vector<std::vector<std::uint32_t>> per_pid(n_);
  for (std::size_t i = 0; i < timeline_.size(); ++i) {
    const world::WorldEvent& ev = timeline_[i];
    const ProcessId pid = sensing_.sensor_of(ev.object, ev.attribute);
    if (pid == kNoProcess) continue;  // unassigned variables are unobserved
    per_pid[pid].push_back(static_cast<std::uint32_t>(i));
  }
  cursors_.reserve(n_);
  for (ProcessId pid = 1; pid < n_; ++pid) {
    if (per_pid[pid].empty()) continue;
    Shard& sh = *shards_[shard_map_.shard_of(pid)];
    auto cur = std::make_unique<ReplayCursor>();
    cur->node = &sh.sensor(pid);
    cur->scheduler = &sh.sim->scheduler();
    cur->timeline = &timeline_;
    cur->events = std::move(per_pid[pid]);
    cur->schedule_next();
    cursors_.push_back(std::move(cur));
  }
}

std::size_t ShardedPervasiveSystem::exchange_outboxes() {
  std::size_t moved = 0;
  const std::size_t k = shards_.size();
  for (std::size_t d = 0; d < k; ++d) {
    exchange_scratch_.clear();
    for (std::size_t s = 0; s < k; ++s) {
      auto& box = outboxes_[s][d];
      for (auto& pd : box) exchange_scratch_.push_back(std::move(pd));
      box.clear();  // keeps capacity — no steady-state allocation
    }
    if (exchange_scratch_.empty()) continue;
    // (at, tie) pairs are unique (the tie embeds the run-unique message
    // seq), so this sort yields one canonical injection order no matter
    // which shards the deliveries came from.
    std::sort(exchange_scratch_.begin(), exchange_scratch_.end(),
              [](const net::PendingDelivery& a, const net::PendingDelivery& b) {
                return a.at != b.at ? a.at < b.at : a.tie < b.tie;
              });
    net::Transport& transport = *shards_[d]->transport;
    for (auto& pd : exchange_scratch_) {
      transport.inject_delivery(pd.at, pd.tie, std::move(pd.msg), pd.bytes);
    }
    moved += exchange_scratch_.size();
  }
  return moved;
}

std::size_t ShardedPervasiveSystem::run() {
  PSN_CHECK(!ran_, "run() may only be called once");
  ran_ = true;
  install_cursors();

  const SimTime horizon = config_.base.sim.horizon;
  std::size_t total = 0;
  if (shards_.size() == 1) {
    // One shard: the plain serial loop (Simulation::run()'s semantics,
    // inlined so the post-run bookkeeping below is shared across K). No
    // window machinery, so every delay kind works at K = 1.
    sim::Scheduler& sch = shards_[0]->sim->scheduler();
    const std::size_t max_events = config_.base.sim.max_events;
    while (sch.next_time() <= horizon) {
      if (total >= max_events) {
        truncated_ = true;
        break;
      }
      sch.step();
      ++total;
    }
  } else {
    sim::ShardedSimulation::Config dcfg;
    dcfg.window = window_;
    dcfg.horizon = horizon;
    dcfg.pool_threads = config_.pool_threads;
    std::vector<sim::Simulation*> sims;
    sims.reserve(shards_.size());
    for (const auto& sh : shards_) sims.push_back(sh->sim.get());
    sim::ShardedSimulation driver(std::move(sims), dcfg);
    total = driver.run([this] { return exchange_outboxes(); });
    truncated_ = driver.truncated();
    windows_ = driver.windows();
  }

  // Post-run bookkeeping written once, into shard 0's registry only, the
  // same way at every K (Simulation::run() is never used here — its gauges
  // would be written per shard and merge additively into K-dependent
  // values).
  std::size_t pending = 0;
  for (const auto& sh : shards_) pending += sh->sim->scheduler().pending();
  MetricsRegistry& metrics = shards_[0]->sim->metrics();
  metrics.gauge("sim.simulated_s").set(horizon.to_seconds());
  metrics.gauge("sim.pending_at_end").set(static_cast<double>(pending));
  if (truncated_) {
    metrics.counter("sim.truncated_runs").inc();
    PSN_WARN << "sharded run hit max_events before horizon; results are "
                "truncated";
  }
  merge_root_logs();
  return total;
}

void ShardedPervasiveSystem::merge_root_logs() {
  merged_log_ = ObservationLog{};
  merged_log_.num_processes = n_;
  merged_log_.delta_bound = delta_bound();
  merged_log_.validity = config_.base.validity_horizon;
  std::size_t total = 0;
  for (const auto& sh : shards_) total += sh->root->log().updates.size();
  merged_log_.updates.reserve(total);
  for (const auto& sh : shards_) {
    const auto& updates = sh->root->log().updates;
    merged_log_.updates.insert(merged_log_.updates.end(), updates.begin(),
                               updates.end());
  }
  // Delivery instants can collide across shards; the strobe's run-unique
  // message seq breaks the tie exactly as the serial scheduler does (the
  // delivery tie at one instant is seq order).
  std::stable_sort(merged_log_.updates.begin(), merged_log_.updates.end(),
                   [](const ReceivedUpdate& a, const ReceivedUpdate& b) {
                     return a.delivered_at != b.delivered_at
                                ? a.delivered_at < b.delivered_at
                                : a.seq < b.seq;
                   });
}

net::MessageStats ShardedPervasiveSystem::message_stats() const {
  net::MessageStats out;
  constexpr net::MessageKind kKinds[] = {
      net::MessageKind::kStrobe, net::MessageKind::kComputation,
      net::MessageKind::kActuation, net::MessageKind::kSync};
  for (const auto& sh : shards_) {
    const net::MessageStats& stats = sh->transport->stats();
    for (const net::MessageKind kind : kKinds) {
      const auto& in = stats.of(kind);
      auto& acc = out.of(kind);
      acc.sent += in.sent;
      acc.delivered += in.delivered;
      acc.dropped += in.dropped;
      acc.unreachable += in.unreachable;
      acc.bytes_sent += in.bytes_sent;
    }
    out.strobe_mode_bytes.scalar += stats.strobe_mode_bytes.scalar;
    out.strobe_mode_bytes.vector += stats.strobe_mode_bytes.vector;
    out.strobe_mode_bytes.physical += stats.strobe_mode_bytes.physical;
  }
  return out;
}

MetricsRegistry& ShardedPervasiveSystem::metrics() {
  return shards_[0]->sim->metrics();
}

MetricsSnapshot ShardedPervasiveSystem::metrics_snapshot() const {
  MetricsSnapshot out = shards_[0]->sim->metrics().snapshot();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    out.merge(shards_[s]->sim->metrics().snapshot());
  }
  return out;
}

std::vector<sim::TraceRecord> ShardedPervasiveSystem::trace_records() const {
  std::vector<sim::TraceRecord> out;
  for (const auto& sh : shards_) {
    if (const sim::TraceRecorder* tr = sh->sim->trace()) {
      std::vector<sim::TraceRecord> records = tr->records();
      out.insert(out.end(), std::make_move_iterator(records.begin()),
                 std::make_move_iterator(records.end()));
    }
  }
  // Fault-plan transitions are synthesized from the schedule exactly once,
  // post-run — live emission would duplicate them per shard and could evict
  // real records from a full ring.
  if (faults_ != nullptr) {
    faults_->append_trace_records(out, config_.base.sim.horizon);
  }
  sim::canonical_trace_order(out);
  return out;
}

std::size_t ShardedPervasiveSystem::trace_evicted() const {
  std::size_t evicted = 0;
  for (const auto& sh : shards_) {
    if (const sim::TraceRecorder* tr = sh->sim->trace()) {
      evicted += tr->evicted();
    }
  }
  return evicted;
}

std::vector<const std::vector<ProcessEvent>*>
ShardedPervasiveSystem::sensor_executions() const {
  std::vector<const std::vector<ProcessEvent>*> out;
  out.reserve(n_ - 1);
  for (ProcessId pid = 1; pid < n_; ++pid) {
    const Shard& sh = *shards_[shard_map_.shard_of(pid)];
    out.push_back(&sh.sensors[pid - sh.sensor_base]->events());
  }
  return out;
}

}  // namespace psn::core
