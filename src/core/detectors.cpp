#include "core/detectors.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "clocks/timestamp.hpp"
#include "common/error.hpp"

namespace psn::core {

namespace {

/// Shared evaluation shell: applies accepted updates to a GlobalState and
/// turns truth-value changes into Detections.
class TransitionTracker {
 public:
  explicit TransitionTracker(const Predicate& predicate)
      : predicate_(predicate), holding_(predicate.holds(state_)) {}

  GlobalState& state() { return state_; }
  const GlobalState& state() const { return state_; }
  bool holding() const { return holding_; }

  /// Re-evaluates after an applied update; appends a Detection on change.
  void evaluate(const ReceivedUpdate& update, std::size_t index,
                bool borderline, std::vector<Detection>& out) {
    const bool now_holds = predicate_.holds(state_);
    if (now_holds == holding_) return;
    holding_ = now_holds;
    Detection d;
    d.detected_at = update.delivered_at;
    d.to_true = now_holds;
    d.borderline = borderline;
    d.cause_true_time = update.report.true_sense_time;
    d.update_index = index;
    out.push_back(d);
  }

 private:
  const Predicate& predicate_;
  GlobalState state_;
  bool holding_;
};

VarRef var_of(const ReceivedUpdate& u) {
  return VarRef{u.reporter, u.report.attribute};
}

}  // namespace

std::vector<Detection> DeliveryOrderDetector::run(
    const ObservationLog& log, const Predicate& predicate) const {
  std::vector<Detection> out;
  TransitionTracker tracker(predicate);
  for (std::size_t i = 0; i < log.updates.size(); ++i) {
    const auto& u = log.updates[i];
    tracker.state().set(var_of(u), u.report.value.numeric());
    tracker.evaluate(u, i, /*borderline=*/false, out);
  }
  return out;
}

std::vector<Detection> StrobeScalarDetector::run(
    const ObservationLog& log, const Predicate& predicate) const {
  std::vector<Detection> out;
  TransitionTracker tracker(predicate);
  std::map<VarRef, clocks::ScalarStamp> latest;

  for (std::size_t i = 0; i < log.updates.size(); ++i) {
    const auto& u = log.updates[i];
    const VarRef var = var_of(u);
    const clocks::ScalarStamp stamp = u.report.strobe_scalar;
    const auto it = latest.find(var);
    if (it != latest.end() && !(it->second < stamp)) {
      continue;  // stale under the (value, pid) total order
    }
    latest[var] = stamp;
    tracker.state().set(var, u.report.value.numeric());
    tracker.evaluate(u, i, /*borderline=*/false, out);
  }
  return out;
}

struct IncrementalStrobeVectorDetector::Impl {
  explicit Impl(Predicate p) : predicate(std::move(p)), tracker(predicate) {}

  Predicate predicate;
  TransitionTracker tracker;
  std::map<VarRef, clocks::VectorStamp> latest;
};

IncrementalStrobeVectorDetector::IncrementalStrobeVectorDetector(
    Predicate predicate)
    : impl_(std::make_unique<Impl>(std::move(predicate))) {}

IncrementalStrobeVectorDetector::~IncrementalStrobeVectorDetector() = default;
IncrementalStrobeVectorDetector::IncrementalStrobeVectorDetector(
    IncrementalStrobeVectorDetector&&) noexcept = default;
IncrementalStrobeVectorDetector& IncrementalStrobeVectorDetector::operator=(
    IncrementalStrobeVectorDetector&&) noexcept = default;

bool IncrementalStrobeVectorDetector::holding() const {
  return impl_->tracker.holding();
}

const Predicate& IncrementalStrobeVectorDetector::predicate() const {
  return impl_->predicate;
}

std::optional<Detection> IncrementalStrobeVectorDetector::feed(
    const ReceivedUpdate& u, std::size_t index) {
  const VarRef var = var_of(u);
  const clocks::VectorStamp& stamp = u.report.strobe_vector;

  const auto it = impl_->latest.find(var);
  if (it != impl_->latest.end()) {
    const clocks::Ordering ord = clocks::compare(stamp, it->second);
    if (ord == clocks::Ordering::kBefore || ord == clocks::Ordering::kEqual) {
      return std::nullopt;  // causally superseded by what we already applied
    }
  }

  // Race check (the borderline-bin rule, DESIGN.md §6.3): is this update
  // concurrent with the current update of any *other* variable that the
  // predicate reads? If so, the assembled state may not correspond to any
  // instant of the single time axis.
  bool race = false;
  std::set<VarRef> read;
  impl_->predicate.expr()->collect_vars(impl_->tracker.state(), read);
  read.insert(var);  // the variable being written always matters
  for (const auto& [other_var, other_stamp] : impl_->latest) {
    if (other_var == var) continue;
    if (!read.contains(other_var)) continue;
    if (clocks::concurrent(stamp, other_stamp)) {
      race = true;
      break;
    }
  }

  impl_->latest[var] = stamp;
  impl_->tracker.state().set(var, u.report.value.numeric());
  std::vector<Detection> out;
  impl_->tracker.evaluate(u, index, race, out);
  if (out.empty()) return std::nullopt;
  return out.front();
}

std::vector<Detection> StrobeVectorDetector::run(
    const ObservationLog& log, const Predicate& predicate) const {
  std::vector<Detection> out;
  IncrementalStrobeVectorDetector incremental(predicate);
  for (std::size_t i = 0; i < log.updates.size(); ++i) {
    if (auto d = incremental.feed(log.updates[i], i)) {
      out.push_back(*d);
    }
  }
  return out;
}

std::vector<Detection> PhysicalClockDetector::run(
    const ObservationLog& log, const Predicate& predicate) const {
  // Order updates by their ε-synchronized timestamps. (Offline sort stands
  // in for the online watermark buffer a deployed root would use under the
  // Δ-bounded delay assumption; the accepted order is identical.)
  std::vector<std::size_t> order(log.updates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const auto& ua = log.updates[a];
                     const auto& ub = log.updates[b];
                     if (ua.report.synced_timestamp !=
                         ub.report.synced_timestamp) {
                       return ua.report.synced_timestamp <
                              ub.report.synced_timestamp;
                     }
                     return ua.reporter < ub.reporter;
                   });

  std::vector<Detection> out;
  TransitionTracker tracker(predicate);
  // An online root processes an update only after everything with a smaller
  // timestamp has arrived, so the earliest it can act on update i is the
  // latest delivery among i and its timestamp-predecessors (the watermark).
  SimTime watermark = SimTime::zero();
  for (const std::size_t i : order) {
    const auto& u = log.updates[i];
    watermark = std::max(watermark, u.delivered_at);
    tracker.state().set(var_of(u), u.report.value.numeric());
    const std::size_t before = out.size();
    tracker.evaluate(u, i, /*borderline=*/false, out);
    if (out.size() > before) out.back().detected_at = watermark;
  }
  return out;
}

std::vector<std::unique_ptr<Detector>> all_online_detectors() {
  std::vector<std::unique_ptr<Detector>> out;
  out.push_back(std::make_unique<DeliveryOrderDetector>());
  out.push_back(std::make_unique<StrobeScalarDetector>());
  out.push_back(std::make_unique<StrobeVectorDetector>());
  out.push_back(std::make_unique<PhysicalClockDetector>());
  return out;
}

}  // namespace psn::core
