#include "core/detectors.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string_view>
#include <utility>

#include "clocks/timestamp.hpp"
#include "common/error.hpp"
#include "common/hot.hpp"

namespace psn::core {

namespace {

/// Shared evaluation shell: applies accepted updates to a GlobalState and
/// turns truth-value changes into Detections.
class TransitionTracker {
 public:
  explicit TransitionTracker(const Predicate& predicate)
      : predicate_(predicate), holding_(predicate.holds(state_)) {}

  GlobalState& state() { return state_; }
  const GlobalState& state() const { return state_; }
  bool holding() const { return holding_; }

  /// Re-evaluates after an applied update; returns a Detection on change.
  /// The optional form (no vector, no push_back) is what the PSN_HOT
  /// incremental feed calls — a transition must not cost an allocation.
  std::optional<Detection> evaluate_one(const ReceivedUpdate& update,
                                        std::size_t index, bool borderline) {
    const bool now_holds = predicate_.holds(state_);
    if (now_holds == holding_) return std::nullopt;
    holding_ = now_holds;
    Detection d;
    d.detected_at = update.delivered_at;
    d.to_true = now_holds;
    d.borderline = borderline;
    d.cause_true_time = update.report.true_sense_time;
    d.update_index = index;
    return d;
  }

  /// Re-evaluates after an applied update; appends a Detection on change.
  void evaluate(const ReceivedUpdate& update, std::size_t index,
                bool borderline, std::vector<Detection>& out) {
    if (auto d = evaluate_one(update, index, borderline)) out.push_back(*d);
  }

 private:
  const Predicate& predicate_;
  GlobalState state_;
  bool holding_;
};

VarRef var_of(const ReceivedUpdate& u) {
  return VarRef{u.reporter, u.report.attribute};
}

/// Heterogeneous ordering so an update's (pid, attribute) can be looked up
/// against interned VarRefs without materializing a VarRef (no string copy
/// on the hot path).
struct VarKeyLess {
  using is_transparent = void;
  using Key = std::pair<ProcessId, std::string_view>;
  static Key key(const VarRef& v) { return {v.pid, v.name}; }
  bool operator()(const VarRef& a, const VarRef& b) const {
    return key(a) < key(b);
  }
  bool operator()(const VarRef& a, const Key& b) const { return key(a) < b; }
  bool operator()(const Key& a, const VarRef& b) const { return a < key(b); }
};

/// Dense VarRef interner (DESIGN.md §11): maps each distinct sensed variable
/// to a small index, so per-update detector state lives in flat vectors
/// indexed by interned id instead of ordered maps keyed by (pid, string).
/// The ordered side table is touched only on first sight of a variable —
/// steady state is one O(log V) comparison-based lookup with V = number of
/// distinct variables (small), and no allocation.
class VarInterner {
 public:
  /// Index of (pid, attribute), interning it on first sight.
  PSN_HOT std::uint32_t intern(ProcessId pid, const std::string& name) {
    const VarKeyLess::Key key{pid, name};
    const auto it = index_of_.lower_bound(key);
    if (it != index_of_.end() && VarKeyLess::key(it->first) == key) {
      return it->second;
    }
    const auto index = static_cast<std::uint32_t>(vars_.size());
    vars_.push_back(VarRef{pid, name});
    index_of_.emplace_hint(it, vars_.back(), index);
    return index;
  }

  std::size_t size() const { return vars_.size(); }
  const VarRef& var(std::uint32_t index) const { return vars_[index]; }

 private:
  std::map<VarRef, std::uint32_t, VarKeyLess> index_of_;
  std::vector<VarRef> vars_;
};

}  // namespace

std::vector<Detection> DeliveryOrderDetector::run(
    const ObservationLog& log, const Predicate& predicate) const {
  std::vector<Detection> out;
  TransitionTracker tracker(predicate);
  for (std::size_t i = 0; i < log.updates.size(); ++i) {
    const auto& u = log.updates[i];
    tracker.state().set(var_of(u), u.report.value.numeric());
    tracker.evaluate(u, i, /*borderline=*/false, out);
  }
  return out;
}

std::vector<Detection> StrobeScalarDetector::run(
    const ObservationLog& log, const Predicate& predicate) const {
  std::vector<Detection> out;
  TransitionTracker tracker(predicate);
  VarInterner interner;
  // Dense per-variable freshness table; one lookup per update (the old
  // map<VarRef, Stamp> did a find *and* an operator[] re-hash per accepted
  // update, plus a string-keyed rebalance).
  std::vector<std::optional<clocks::ScalarStamp>> latest;

  for (std::size_t i = 0; i < log.updates.size(); ++i) {
    const auto& u = log.updates[i];
    const std::uint32_t var = interner.intern(u.reporter, u.report.attribute);
    if (var >= latest.size()) latest.resize(interner.size());
    const clocks::ScalarStamp stamp = u.report.strobe_scalar;
    std::optional<clocks::ScalarStamp>& current = latest[var];
    if (current.has_value() && !(*current < stamp)) {
      continue;  // stale under the (value, pid) total order
    }
    current = stamp;
    tracker.state().set(interner.var(var), u.report.value.numeric());
    tracker.evaluate(u, i, /*borderline=*/false, out);
  }
  return out;
}

struct IncrementalStrobeVectorDetector::Impl {
  explicit Impl(Predicate p) : predicate(std::move(p)), tracker(predicate) {}

  Predicate predicate;
  TransitionTracker tracker;
  VarInterner interner;
  /// Interned index → freshest accepted vector stamp (dense; nullopt until
  /// the variable's first accepted update).
  std::vector<std::optional<clocks::VectorStamp>> latest;
  /// Interned index → instant the retained observation expires (temporal
  /// validity; SimTime::max() while unbounded or not yet reported).
  std::vector<SimTime> expires;
  std::size_t stale_observations = 0;
  /// Cached predicate read-set by interned index, plus the state size it was
  /// computed against. collect_vars expands aggregates against the tracked
  /// state, so the set can only change when the state's variable universe
  /// grows — recomputing per feed (the old code built a std::set<VarRef>
  /// from scratch on *every* update) is pure waste in steady state.
  std::vector<char> in_read_set;
  std::size_t read_set_state_size = SIZE_MAX;

  void refresh_read_set() {
    if (tracker.state().size() == read_set_state_size) return;
    std::set<VarRef> read;
    predicate.expr()->collect_vars(tracker.state(), read);
    in_read_set.assign(interner.size(), 0);
    for (const VarRef& v : read) {
      // Only interned (i.e. ever-reported) variables can carry a stamp, so
      // only they matter for the race scan below.
      for (std::uint32_t i = 0; i < interner.size(); ++i) {
        if (interner.var(i) == v) {
          in_read_set[i] = 1;
          break;
        }
      }
    }
    read_set_state_size = tracker.state().size();
  }
};

IncrementalStrobeVectorDetector::IncrementalStrobeVectorDetector(
    Predicate predicate)
    : impl_(std::make_unique<Impl>(std::move(predicate))) {}

IncrementalStrobeVectorDetector::~IncrementalStrobeVectorDetector() = default;
IncrementalStrobeVectorDetector::IncrementalStrobeVectorDetector(
    IncrementalStrobeVectorDetector&&) noexcept = default;
IncrementalStrobeVectorDetector& IncrementalStrobeVectorDetector::operator=(
    IncrementalStrobeVectorDetector&&) noexcept = default;

bool IncrementalStrobeVectorDetector::holding() const {
  return impl_->tracker.holding();
}

const Predicate& IncrementalStrobeVectorDetector::predicate() const {
  return impl_->predicate;
}

std::size_t IncrementalStrobeVectorDetector::stale_observations() const {
  return impl_->stale_observations;
}

PSN_HOT std::optional<Detection> IncrementalStrobeVectorDetector::feed(
    const ReceivedUpdate& u, std::size_t index) {
  Impl& impl = *impl_;
  const std::uint32_t var = impl.interner.intern(u.reporter, u.report.attribute);
  if (var >= impl.latest.size()) {
    impl.latest.resize(impl.interner.size());
    impl.expires.resize(impl.interner.size(), SimTime::max());
  }
  const clocks::VectorStamp& stamp = u.report.strobe_vector;

  if (impl.latest[var].has_value()) {
    const clocks::Ordering ord = clocks::compare(stamp, *impl.latest[var]);
    if (ord == clocks::Ordering::kBefore || ord == clocks::Ordering::kEqual) {
      return std::nullopt;  // causally superseded by what we already applied
    }
  }

  // Race check (the borderline-bin rule, DESIGN.md §6.3): is this update
  // concurrent with the current update of any *other* variable that the
  // predicate reads? If so, the assembled state may not correspond to any
  // instant of the single time axis. The read-set is the cached one — it
  // only changes when the tracked state gains a variable.
  impl.refresh_read_set();
  bool race = false;
  for (std::uint32_t other = 0; other < impl.latest.size(); ++other) {
    if (other == var || !impl.latest[other].has_value()) continue;
    if (other >= impl.in_read_set.size() || impl.in_read_set[other] == 0) {
      continue;
    }
    if (clocks::concurrent(stamp, *impl.latest[other])) {
      race = true;
      break;
    }
  }

  // Temporal validity (Kopetz-Steiner): an evaluation is stale when this
  // update's own validity interval lapsed before it arrived, or when any
  // read-set variable the predicate will consult holds an expired
  // observation at the evaluation instant. Staleness is judged against the
  // deployment-visible ε-synchronized timestamp, never ground truth.
  bool stale =
      u.validity.expired(u.report.synced_timestamp, u.delivered_at);
  if (u.validity.bounded() && !stale) {
    for (std::uint32_t other = 0; other < impl.latest.size(); ++other) {
      if (other == var || !impl.latest[other].has_value()) continue;
      if (other >= impl.in_read_set.size() || impl.in_read_set[other] == 0) {
        continue;
      }
      if (u.delivered_at > impl.expires[other]) {
        stale = true;
        break;
      }
    }
  }
  if (stale) impl.stale_observations++;

  impl.latest[var] = stamp;
  impl.expires[var] = u.validity.expires_at(u.report.synced_timestamp);
  impl.tracker.state().set(impl.interner.var(var), u.report.value.numeric());
  return impl.tracker.evaluate_one(u, index, race || stale);
}

std::vector<Detection> StrobeVectorDetector::run(
    const ObservationLog& log, const Predicate& predicate) const {
  std::vector<Detection> out;
  IncrementalStrobeVectorDetector incremental(predicate);
  for (std::size_t i = 0; i < log.updates.size(); ++i) {
    if (auto d = incremental.feed(log.updates[i], i)) {
      out.push_back(*d);
    }
  }
  return out;
}

std::vector<Detection> PhysicalClockDetector::run(
    const ObservationLog& log, const Predicate& predicate) const {
  // Order updates by their ε-synchronized timestamps. (Offline sort stands
  // in for the online watermark buffer a deployed root would use under the
  // Δ-bounded delay assumption; the accepted order is identical.)
  std::vector<std::size_t> order(log.updates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const auto& ua = log.updates[a];
                     const auto& ub = log.updates[b];
                     if (ua.report.synced_timestamp !=
                         ub.report.synced_timestamp) {
                       return ua.report.synced_timestamp <
                              ub.report.synced_timestamp;
                     }
                     return ua.reporter < ub.reporter;
                   });

  std::vector<Detection> out;
  TransitionTracker tracker(predicate);
  // An online root processes an update only after everything with a smaller
  // timestamp has arrived, so the earliest it can act on update i is the
  // latest delivery among i and its timestamp-predecessors (the watermark).
  SimTime watermark = SimTime::zero();
  for (const std::size_t i : order) {
    const auto& u = log.updates[i];
    watermark = std::max(watermark, u.delivered_at);
    tracker.state().set(var_of(u), u.report.value.numeric());
    const std::size_t before = out.size();
    tracker.evaluate(u, i, /*borderline=*/false, out);
    if (out.size() > before) out.back().detected_at = watermark;
  }
  return out;
}

std::vector<std::unique_ptr<Detector>> all_online_detectors() {
  std::vector<std::unique_ptr<Detector>> out;
  out.reserve(4);
  out.push_back(std::make_unique<DeliveryOrderDetector>());
  out.push_back(std::make_unique<StrobeScalarDetector>());
  out.push_back(std::make_unique<StrobeVectorDetector>());
  out.push_back(std::make_unique<PhysicalClockDetector>());
  return out;
}

}  // namespace psn::core
