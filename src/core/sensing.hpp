#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "clocks/clock_bundle.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/event.hpp"
#include "core/observation.hpp"
#include "net/transport.hpp"
#include "world/world_model.hpp"

namespace psn::core {

/// Maps world-plane variables to the sensor processes that track them:
/// (object, attribute) → VarRef{sensor pid, attribute name}. The oracle uses
/// it to translate world events into predicate variables; sensors use it to
/// know what to observe.
class SensingMap {
 public:
  void assign(world::ObjectId object, const std::string& attribute,
              ProcessId sensor);
  /// Sensor responsible for (object, attribute), or kNoProcess.
  ProcessId sensor_of(world::ObjectId object,
                      const std::string& attribute) const;
  VarRef var_of(world::ObjectId object, const std::string& attribute) const;
  bool is_assigned(world::ObjectId object, const std::string& attribute) const;
  const std::map<std::pair<world::ObjectId, std::string>, ProcessId>&
  assignments() const {
    return map_;
  }

 private:
  std::map<std::pair<world::ObjectId, std::string>, ProcessId> map_;
};

/// A sensor/actuator process p ∈ P. Implements the paper's event rules:
/// on sensing a relevant world change it records an n event, fires SSC1/SVC1
/// (strobe broadcast carrying the sensed update and all timestamps), and on
/// receiving messages applies SSC2/SVC2 (strobes) or SC3/VC3 (computation).
class SensorNode {
 public:
  SensorNode(ProcessId pid, std::size_t n, sim::Simulation& sim,
             net::Transport& transport, clocks::ClockBundleConfig clock_config,
             Rng rng);

  ProcessId id() const { return pid_; }
  clocks::ClockBundle& clocks() { return bundle_; }
  const std::vector<ProcessEvent>& events() const { return events_; }

  /// Called by the system when a world event this sensor is assigned to
  /// occurs in range. Records the n event and broadcasts the strobe report.
  void sense(const world::WorldEvent& ev);

  /// Sends an application (semantic) message — an s event with SC2/VC2
  /// piggybacking. Used by examples and by causality tests.
  void send_computation(ProcessId dst, const std::string& tag);

  /// Records an internal compute event (c) — ticks causal clocks only.
  void compute();

  /// Records an actuate event (a) targeting a world object.
  void actuate(world::WorldModel& world, world::ObjectId object,
               const std::string& attribute, world::AttributeValue value);

  /// Binds the world plane so incoming actuation commands (kActuation
  /// messages) can be applied as a-events. Set by PervasiveSystem.
  void bind_world(world::WorldModel* world) { world_ = world; }

  /// Makes this sensor record every strobe it receives (and its own sense
  /// events) into a local ObservationLog, so it can act as an additional
  /// observer for consensus detection (core/consensus). Off by default —
  /// it costs memory per strobe.
  void enable_observation_log(std::size_t n, Duration delta_bound,
                              ValidityHorizon validity = {});
  bool observation_log_enabled() const { return observing_; }
  const ObservationLog& observation_log() const { return local_log_; }

  /// Installs the run's fault schedule (DESIGN.md §15): inside one of its
  /// crash windows this node senses nothing (no n event, no strobe, no seq
  /// consumed — a down radio), and its clock-fault windows add a
  /// deterministic drift offset to every physical-local reading it stamps.
  /// The schedule must outlive the node; nullptr (default) = fault-free.
  void set_fault_schedule(const sim::FaultSchedule* faults) {
    faults_ = faults;
  }

  /// Routes sense reports as a single unicast to `target` instead of the
  /// default system-wide strobe broadcast. The city-scale deployment uses
  /// this: 10^5 sensors strobe-broadcasting would be O(n^2) messages per
  /// world tick. kNoProcess restores broadcasting.
  void set_report_target(ProcessId target) { report_target_ = target; }
  ProcessId report_target() const { return report_target_; }

  /// Transport delivery callback.
  void on_message(const net::Message& msg);

 private:
  void record_event(EventType type,
                    std::optional<VarRef> var = std::nullopt,
                    double value = 0.0,
                    world::WorldEventIndex world_event = world::kNoWorldEvent,
                    std::uint64_t message_seq = 0);

  ProcessId pid_;
  sim::Simulation& sim_;
  net::Transport& transport_;
  clocks::ClockBundle bundle_;
  std::vector<ProcessEvent> events_;
  world::WorldModel* world_ = nullptr;
  const sim::FaultSchedule* faults_ = nullptr;
  bool observing_ = false;
  ProcessId report_target_ = kNoProcess;  ///< kNoProcess = strobe broadcast
  ObservationLog local_log_;
};

/// The distinguished root/back-end process P_0 (paper §2.1). It does not
/// sense; it collects strobe reports into the ObservationLog that detectors
/// consume, and keeps its own strobe clocks merged (SSC2/SVC2) like any
/// other process.
class RootMonitor {
 public:
  RootMonitor(ProcessId pid, std::size_t n, sim::Simulation& sim,
              clocks::ClockBundleConfig clock_config, Rng rng);

  ProcessId id() const { return pid_; }
  clocks::ClockBundle& clocks() { return bundle_; }
  ObservationLog& log() { return log_; }
  const ObservationLog& log() const { return log_; }

  /// Online hook: called for every sense report as it is appended to the
  /// log, while the simulation is running. Used by core::OnlineMonitor to
  /// detect and actuate in-loop.
  using UpdateObserver = std::function<void(const ReceivedUpdate&, std::size_t)>;
  void add_observer(UpdateObserver observer) {
    observers_.push_back(std::move(observer));
  }

  void on_message(const net::Message& msg);

 private:
  ProcessId pid_;
  sim::Simulation& sim_;
  clocks::ClockBundle bundle_;
  ObservationLog log_;
  std::vector<UpdateObserver> observers_;
};

}  // namespace psn::core
