#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/sensing.hpp"
#include "net/transport.hpp"
#include "sim/fault.hpp"
#include "sim/simulation.hpp"
#include "world/world_model.hpp"

namespace psn::core {

/// How one-hop message delay is distributed (paper §3.2.2).
enum class DelayKind {
  kSynchronous,     ///< Δ = 0
  kFixed,           ///< exactly `delta`
  kUniformBounded,  ///< uniform in [delta/10, delta] — Δ-bounded
  kExponential,     ///< mean `delta`, unbounded tail
};

enum class TopologyKind { kComplete, kStar, kRing, kLine };

/// Everything needed to stand up one ⟨P, L, O, C⟩ system instance.
struct SystemConfig {
  std::size_t num_sensors = 2;  ///< processes 1..num_sensors; P_0 is the root
  sim::SimConfig sim;
  clocks::ClockBundleConfig clock_config;

  DelayKind delay_kind = DelayKind::kUniformBounded;
  /// The Δ of the delay model (bound, mean, or fixed value by kind).
  Duration delta = Duration::millis(100);

  /// Clock mode the transport charges on the wire (per-mode E7 byte
  /// accounting). Default: vector strobes, the fattest option.
  net::ClockMode clock_mode = net::ClockMode::kVectorStrobe;

  TopologyKind topology = TopologyKind::kComplete;

  /// Independent per-transmission loss probability (0 = lossless).
  double loss_probability = 0.0;
  /// Windows of total loss (E8 fault injection); combined with the above.
  std::vector<net::ScheduledBurstLoss::Window> loss_windows;

  /// Optional Gilbert–Elliott burst-loss channel, combined with the other
  /// loss sources. Its good/bad state advances per drop() call, so results
  /// depend on the global transmission order: the sharded runner rejects it
  /// for K > 1 (use loss_windows for shard-stable bursts).
  struct GilbertElliottParams {
    double p_good_to_bad = 0.0;
    double p_bad_to_good = 0.0;
    double loss_in_good = 0.0;
    double loss_in_bad = 0.0;
  };
  std::optional<GilbertElliottParams> gilbert_elliott;

  /// Deterministic fault plan (sim/fault, DESIGN.md §15): process
  /// crash/restart windows, overlay partition windows, and clock-fault
  /// drift spikes. Empty = fault-free. Compiled once into a FaultSchedule
  /// shared by the transport and every sensor; partition edges must exist
  /// in the configured topology.
  sim::FaultPlan faults;

  /// Optional receiver duty cycling for the sensor nodes (paper §5: MAC-
  /// layer duty cycles in habitat monitoring). The root's radio is always
  /// on (it is the mains-powered back-end).
  std::optional<net::DutyCycle> duty_cycle;
  /// Synchronized duty cycles (all sensors share a phase) versus the
  /// unsynchronized baseline (per-node random phases).
  bool duty_phases_aligned = true;

  /// Per-channel FIFO (causal) delivery on the transport. The sharded
  /// runner rejects this mode (arrival instants would depend on delivery
  /// state the verbatim outbox replay does not re-examine).
  bool fifo_channels = false;

  /// Temporal-validity policy stamped onto every received observation
  /// (Kopetz-Steiner validity intervals). Default: observations never
  /// expire, which reproduces the paper's original semantics exactly.
  ValidityHorizon validity_horizon;
};

/// Factories mapping a SystemConfig onto concrete network models — one
/// definition shared by PervasiveSystem and the sharded runner (DESIGN.md
/// §14), so both assemble bit-identical planes from the same config.
std::unique_ptr<net::DelayModel> make_delay_model(const SystemConfig& config);
std::unique_ptr<net::LossModel> make_loss_model(const SystemConfig& config);
net::Overlay make_system_overlay(TopologyKind kind, std::size_t n);

/// Compiles (and validates) a config's fault plan against its topology:
/// every cut edge must exist in the base overlay, and crash/drift pids must
/// name real processes. Returns nullptr for an empty plan. Shared by
/// PervasiveSystem and the sharded runner so both reject the same configs.
std::unique_ptr<sim::FaultSchedule> make_fault_schedule(
    const SystemConfig& config);

/// The assembled system: world plane ⟨O, C⟩, network plane ⟨P, L⟩ with the
/// root monitor P_0 and sensor processes P_1..P_n, wired so that every
/// assigned world event is sensed, stamped under every clock model, and
/// strobed system-wide. After run(), the root's ObservationLog and the world
/// timeline feed the detectors and the oracle respectively.
class PervasiveSystem {
 public:
  explicit PervasiveSystem(SystemConfig config);

  sim::Simulation& sim() { return *sim_; }
  const sim::Simulation& sim() const { return *sim_; }
  world::WorldModel& world() { return *world_; }
  net::Transport& transport() { return *transport_; }
  SensingMap& sensing() { return sensing_; }
  const SensingMap& sensing() const { return sensing_; }

  /// Shorthand: route (object, attribute) world events to `sensor`.
  void assign(world::ObjectId object, const std::string& attribute,
              ProcessId sensor);

  std::size_t num_processes() const { return sensors_.size() + 1; }
  SensorNode& sensor(ProcessId pid);
  const SensorNode& sensor(ProcessId pid) const;
  RootMonitor& root() { return *root_; }

  /// End-to-end delay bound Δ seen by any message (hop bound × diameter),
  /// or Duration::max() if the delay model is unbounded.
  Duration delta_bound() const;

  /// Runs the simulation to its horizon; returns events executed.
  std::size_t run();

  const ObservationLog& log() const { return root_->log(); }
  const world::WorldTimeline& timeline() const { return world_->timeline(); }
  const net::MessageStats& message_stats() const {
    return transport_->stats();
  }
  /// Recorded local executions of the sensors (index 0 = P_1).
  std::vector<const std::vector<ProcessEvent>*> sensor_executions() const;

  const SystemConfig& config() const { return config_; }

  /// The compiled fault schedule, or nullptr when the config has no faults.
  const sim::FaultSchedule* faults() const { return faults_.get(); }

 private:
  SystemConfig config_;
  std::unique_ptr<sim::FaultSchedule> faults_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<world::WorldModel> world_;
  std::unique_ptr<net::Transport> transport_;
  std::unique_ptr<RootMonitor> root_;
  std::vector<std::unique_ptr<SensorNode>> sensors_;
  SensingMap sensing_;
};

}  // namespace psn::core
