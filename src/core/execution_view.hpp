#pragma once

#include <vector>

#include "clocks/timestamp.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "core/system.hpp"
#include "core/variables.hpp"

namespace psn::core {

/// A recorded distributed execution in the form the lattice algorithms
/// consume: per process, the ordered list of its clock-ticking events with
/// their vector stamps. Which vector is used decides what the lattice means:
///   - strobe stamps → the strobe-induced sublattice of world observations
///     (paper §4.2.4, the slim-lattice postulate), over sense events only;
///   - causal Mattern/Fidge stamps → the classic lattice of consistent
///     global states of the network-plane program (paper §4.1), over every
///     event that ticks the causal clock.
class ExecutionView {
 public:
  struct Event {
    clocks::VectorStamp stamp;  ///< post-event stamp
    bool has_var = false;
    VarRef var;
    double value = 0.0;
    SimTime when;
  };

  ExecutionView(std::vector<ProcessId> pids,
                std::vector<std::vector<Event>> events);

  /// Sense events of all sensors, stamped with the *strobe* vector clock.
  static ExecutionView from_strobe_stamps(const PervasiveSystem& system);
  /// Every causal-ticking event of all sensors, stamped with the causal
  /// Mattern/Fidge clock.
  static ExecutionView from_causal_stamps(const PervasiveSystem& system);

  std::size_t num_processes() const { return events_.size(); }
  ProcessId pid(std::size_t p) const { return pids_[p]; }
  const std::vector<Event>& events(std::size_t p) const { return events_[p]; }
  std::size_t total_events() const;

  /// A cut assigns to each process the count of its included events. The cut
  /// is consistent iff no included event's stamp records knowledge of an
  /// excluded event.
  bool consistent(const std::vector<std::size_t>& cut) const;

  /// The assembled global variable state at a cut: the latest value each
  /// process's included events gave to each of its variables.
  GlobalState state_at(const std::vector<std::size_t>& cut) const;

  /// The final (all-events) cut.
  std::vector<std::size_t> final_cut() const;

 private:
  std::vector<ProcessId> pids_;
  std::vector<std::vector<Event>> events_;
};

}  // namespace psn::core
