#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace psn::core {

/// Chandy–Lamport consistent global snapshot — one of the classic vector-
/// time-adjacent middleware applications the paper's Appendix A enumerates
/// ("taking efficient consistent snapshots of a system"). Requires FIFO
/// channels (Transport::set_fifo_channels).
///
/// Protocol, per participant:
///  - initiate(): record local state, send a marker on every outgoing
///    channel, start recording every incoming channel;
///  - first marker received (from c): record local state, mark channel c
///    empty, send markers, start recording all other incoming channels;
///  - subsequent marker from channel c: stop recording c;
///  - application message from a channel being recorded: append to that
///    channel's recorded state.
///
/// The participant is transport-agnostic: the host wires `send_marker` to
/// the network and forwards incoming markers/app messages. Application
/// state is a single int64 (a counter/balance); the canonical invariant
/// test is conservation of the global sum in a token/money-transfer app.
class SnapshotParticipant {
 public:
  using SendMarkerFn = std::function<void(ProcessId to)>;

  /// `peers`: the processes this one has channels with (both directions).
  SnapshotParticipant(ProcessId self, std::vector<ProcessId> peers,
                      SendMarkerFn send_marker);

  /// The application's local state, read at marker time via this hook.
  void set_state_provider(std::function<std::int64_t()> provider);

  /// Starts a snapshot from this process.
  void initiate();
  /// A marker arrived on the channel from `from`.
  void on_marker(ProcessId from);
  /// An application message (carrying `amount`) arrived from `from`; call
  /// BEFORE applying it to local state. Returns true if the message was
  /// recorded as channel state.
  bool on_app_message(ProcessId from, std::int64_t amount);

  bool recording_started() const { return recorded_state_.has_value(); }
  /// True once every incoming channel's recording has been closed.
  bool complete() const;

  std::int64_t recorded_state() const;
  /// Sum of amounts recorded in transit on the channel from `from`.
  std::int64_t channel_state(ProcessId from) const;
  /// Recorded local state plus all recorded channel amounts.
  std::int64_t total_recorded() const;

 private:
  void record_and_flood();

  ProcessId self_;
  std::vector<ProcessId> peers_;
  SendMarkerFn send_marker_;
  std::function<std::int64_t()> state_provider_;

  std::optional<std::int64_t> recorded_state_;
  /// Channels currently being recorded → accumulated in-transit amount.
  std::map<ProcessId, std::int64_t> recording_;
  /// Channels whose recording has closed (marker seen).
  std::map<ProcessId, std::int64_t> closed_;
};

}  // namespace psn::core
