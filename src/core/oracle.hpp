#pragma once

#include <vector>

#include "common/sim_time.hpp"
#include "core/predicate.hpp"
#include "core/sensing.hpp"
#include "world/timeline.hpp"

namespace psn::core {

/// A change of the predicate's truth value in ground truth (or in a
/// detector's output — the two streams are scored against each other).
struct Transition {
  SimTime when;
  bool to_true = false;
  world::WorldEventIndex cause = world::kNoWorldEvent;
};

/// A maximal true-time interval [begin, end) during which φ held.
struct Occurrence {
  SimTime begin;
  SimTime end;
  Duration duration() const { return end - begin; }
};

struct OracleResult {
  std::vector<Transition> transitions;
  std::vector<Occurrence> occurrences;
  /// Fraction of [0, horizon) during which φ held.
  double fraction_true = 0.0;
  bool true_at_horizon = false;
};

/// Replays the world timeline in true-time order, translating world events
/// into predicate variables via the sensing map, and records exactly when φ
/// changed truth value. This is what a zero-delay, perfectly-clocked,
/// omniscient observer would see — the reference every detector is measured
/// against (DESIGN.md §6.5).
class GroundTruthOracle {
 public:
  GroundTruthOracle(Predicate predicate, const SensingMap& sensing);

  OracleResult evaluate(const world::WorldTimeline& timeline,
                        SimTime horizon) const;

 private:
  Predicate predicate_;
  const SensingMap& sensing_;
};

}  // namespace psn::core
