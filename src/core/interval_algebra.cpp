#include "core/interval_algebra.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/error.hpp"

namespace psn::core {

const char* to_string(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore: return "before";
    case AllenRelation::kMeets: return "meets";
    case AllenRelation::kOverlaps: return "overlaps";
    case AllenRelation::kStarts: return "starts";
    case AllenRelation::kDuring: return "during";
    case AllenRelation::kFinishes: return "finishes";
    case AllenRelation::kEqual: return "equal";
    case AllenRelation::kFinishedBy: return "finished-by";
    case AllenRelation::kContains: return "contains";
    case AllenRelation::kStartedBy: return "started-by";
    case AllenRelation::kOverlappedBy: return "overlapped-by";
    case AllenRelation::kMetBy: return "met-by";
    case AllenRelation::kAfter: return "after";
  }
  return "?";
}

AllenRelation inverse(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore: return AllenRelation::kAfter;
    case AllenRelation::kMeets: return AllenRelation::kMetBy;
    case AllenRelation::kOverlaps: return AllenRelation::kOverlappedBy;
    case AllenRelation::kStarts: return AllenRelation::kStartedBy;
    case AllenRelation::kDuring: return AllenRelation::kContains;
    case AllenRelation::kFinishes: return AllenRelation::kFinishedBy;
    case AllenRelation::kEqual: return AllenRelation::kEqual;
    case AllenRelation::kFinishedBy: return AllenRelation::kFinishes;
    case AllenRelation::kContains: return AllenRelation::kDuring;
    case AllenRelation::kStartedBy: return AllenRelation::kStarts;
    case AllenRelation::kOverlappedBy: return AllenRelation::kOverlaps;
    case AllenRelation::kMetBy: return AllenRelation::kMeets;
    case AllenRelation::kAfter: return AllenRelation::kBefore;
  }
  return AllenRelation::kEqual;
}

AllenRelation classify(const TimeInterval& a, const TimeInterval& b) {
  PSN_CHECK(a.begin < a.end && b.begin < b.end,
            "Allen classification requires non-empty intervals");
  if (a.end < b.begin) return AllenRelation::kBefore;
  if (a.end == b.begin) return AllenRelation::kMeets;
  if (b.end < a.begin) return AllenRelation::kAfter;
  if (b.end == a.begin) return AllenRelation::kMetBy;
  // They overlap in at least a point-interior.
  if (a.begin == b.begin) {
    if (a.end == b.end) return AllenRelation::kEqual;
    return a.end < b.end ? AllenRelation::kStarts : AllenRelation::kStartedBy;
  }
  if (a.end == b.end) {
    return a.begin > b.begin ? AllenRelation::kFinishes
                             : AllenRelation::kFinishedBy;
  }
  if (a.begin > b.begin && a.end < b.end) return AllenRelation::kDuring;
  if (b.begin > a.begin && b.end < a.end) return AllenRelation::kContains;
  return a.begin < b.begin ? AllenRelation::kOverlaps
                           : AllenRelation::kOverlappedBy;
}

const char* to_string(CausalIntervalRelation r) {
  switch (r) {
    case CausalIntervalRelation::kPrecedes: return "precedes";
    case CausalIntervalRelation::kPrecededBy: return "preceded-by";
    case CausalIntervalRelation::kConcurrent: return "concurrent";
  }
  return "?";
}

CausalIntervalRelation classify_causal(const StampedInterval& a,
                                       const StampedInterval& b) {
  const bool a_prec = a.end_stamp.has_value() &&
                      clocks::happens_before(*a.end_stamp, b.begin_stamp);
  const bool b_prec = b.end_stamp.has_value() &&
                      clocks::happens_before(*b.end_stamp, a.begin_stamp);
  PSN_CHECK(!(a_prec && b_prec), "intervals cannot mutually precede");
  if (a_prec) return CausalIntervalRelation::kPrecedes;
  if (b_prec) return CausalIntervalRelation::kPrecededBy;
  return CausalIntervalRelation::kConcurrent;
}

std::vector<StampedInterval> extract_intervals(
    const ObservationLog& log, const VarRef& var,
    const std::function<bool(double)>& condition) {
  PSN_CHECK(static_cast<bool>(condition), "null condition");
  // Collect this variable's reports in *stamp* order (the sender's own
  // sequence), so out-of-order delivery does not fabricate intervals. The
  // sender's reports are totally ordered by its own strobe-vector component.
  struct Item {
    std::uint64_t seq;
    const ReceivedUpdate* update;
  };
  std::vector<Item> items;
  for (const auto& u : log.updates) {
    if (u.reporter != var.pid || u.report.attribute != var.name) continue;
    items.push_back({u.report.strobe_vector[var.pid], &u});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.seq < b.seq; });

  std::vector<StampedInterval> out;
  bool holding = false;
  StampedInterval current;
  for (const auto& [seq, u] : items) {
    const bool now = condition(u->report.value.numeric());
    if (now == holding) continue;
    if (now) {
      current = StampedInterval{};
      current.var = var;
      current.when.begin = u->report.synced_timestamp;
      current.begin_stamp = u->report.strobe_vector;
    } else {
      current.when.end = u->report.synced_timestamp;
      current.end_stamp = u->report.strobe_vector;
      if (current.when.valid()) out.push_back(current);
    }
    holding = now;
  }
  if (holding) {
    current.when.end = SimTime::max();
    out.push_back(current);  // open at the horizon
  }
  return out;
}

bool satisfies(const TimeInterval& a, const TimeInterval& b,
               const RelativeTimingSpec& spec) {
  switch (spec.relation) {
    case AllenRelation::kBefore: {
      if (!(a.end <= b.begin)) return false;
      const Duration gap = b.begin - a.end;
      return gap >= spec.min_gap &&
             (spec.max_gap == Duration::max() || gap <= spec.max_gap);
    }
    case AllenRelation::kAfter: {
      RelativeTimingSpec flipped = spec;
      flipped.relation = AllenRelation::kBefore;
      return satisfies(b, a, flipped);
    }
    default: {
      // Exact Allen relation; gap bounds are meaningless here.
      if (a.begin >= a.end || b.begin >= b.end) return false;
      return classify(a, b) == spec.relation;
    }
  }
}

RelativeTimingDetector::RelativeTimingDetector(
    VarRef x_var, std::function<bool(double)> x_cond, VarRef y_var,
    std::function<bool(double)> y_cond, RelativeTimingSpec spec)
    : x_var_(std::move(x_var)),
      y_var_(std::move(y_var)),
      x_cond_(std::move(x_cond)),
      y_cond_(std::move(y_cond)),
      spec_(spec) {
  PSN_CHECK(static_cast<bool>(x_cond_) && static_cast<bool>(y_cond_),
            "null interval condition");
}

std::vector<RelativeTimingMatch> RelativeTimingDetector::run(
    const ObservationLog& log) const {
  const auto xs = extract_intervals(log, x_var_, x_cond_);
  const auto ys = extract_intervals(log, y_var_, y_cond_);

  std::vector<RelativeTimingMatch> out;
  for (const auto& x : xs) {
    for (const auto& y : ys) {
      if (!satisfies(x.when, y.when, spec_)) continue;
      RelativeTimingMatch m;
      m.x = x;
      m.y = y;
      // Causal certification: does the partial order agree with the claimed
      // direction? (Only meaningful for the ordered relations.)
      const CausalIntervalRelation causal = classify_causal(x, y);
      if (spec_.relation == AllenRelation::kBefore ||
          spec_.relation == AllenRelation::kMeets) {
        m.causally_certified = causal == CausalIntervalRelation::kPrecedes;
      } else if (spec_.relation == AllenRelation::kAfter ||
                 spec_.relation == AllenRelation::kMetBy) {
        m.causally_certified = causal == CausalIntervalRelation::kPrecededBy;
      } else {
        // Overlap-family relations are certified when the stamps do NOT
        // order the intervals apart.
        m.causally_certified = causal == CausalIntervalRelation::kConcurrent;
      }
      out.push_back(std::move(m));
    }
  }
  return out;
}

}  // namespace psn::core
