#pragma once

#include <string>
#include <vector>

#include "core/system.hpp"
#include "world/world_model.hpp"

namespace psn::core {

/// Proximity sensing field: turns object *movement* into sensed boolean
/// presence variables, making the dynamically-changing graphs of the paper
/// (§2.1: L and C "are dynamically changing") detectable with the ordinary
/// predicate machinery.
///
/// Each sensor process is given a fixed position and sensing radius. For
/// every tracked mobile object, the field maintains one per-sensor world
/// variable  near_<object-name>  on a virtual "zone" object assigned to that
/// sensor: true while the object is within the sensor's radius. Entry/exit
/// transitions are genuine world events — sensed, stamped, strobed, and
/// scored exactly like any other attribute change, so predicates such as
///
///     near_zebra[1] && near_zebra[2]     (object in the overlap of 1 and 2)
///     count(near_zebra) ... or sum(near_zebra) >= 2
///
/// work unchanged.
class ProximityField {
 public:
  struct SensorZone {
    ProcessId sensor = kNoProcess;
    world::Point2D position;
    double radius = 10.0;
  };

  /// Registers the zones and subscribes to world movement. Must be created
  /// after the system and before run(). Zone objects are created in the
  /// world and assigned to their sensors.
  ProximityField(PervasiveSystem& system, std::vector<SensorZone> zones);

  /// Starts tracking `object`; its presence variable is named
  /// "near_<object-name>". Emits the initial containment state immediately.
  void track(world::ObjectId object);

  std::size_t zones() const { return zones_.size(); }
  /// The virtual zone object of a sensor (for tests/diagnostics).
  world::ObjectId zone_object(ProcessId sensor) const;

  /// Ground truth: sensors whose radius currently contains the object.
  std::vector<ProcessId> sensors_in_range(world::ObjectId object) const;

 private:
  void on_move(world::ObjectId object, const world::Point2D& to);

  struct Tracked {
    world::ObjectId object = world::kNoObject;
    std::string variable;
    std::vector<bool> inside;  ///< per zone index
  };

  PervasiveSystem& system_;
  std::vector<SensorZone> zones_;
  std::vector<world::ObjectId> zone_objects_;
  std::vector<Tracked> tracked_;
};

}  // namespace psn::core
