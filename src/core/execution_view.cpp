#include "core/execution_view.hpp"

#include <utility>

#include "common/error.hpp"
#include "core/event.hpp"

namespace psn::core {

ExecutionView::ExecutionView(std::vector<ProcessId> pids,
                             std::vector<std::vector<Event>> events)
    : pids_(std::move(pids)), events_(std::move(events)) {
  PSN_CHECK(pids_.size() == events_.size(),
            "one pid per process history required");
}

ExecutionView ExecutionView::from_strobe_stamps(
    const PervasiveSystem& system) {
  std::vector<ProcessId> pids;
  std::vector<std::vector<Event>> histories;
  for (const auto* events : system.sensor_executions()) {
    std::vector<Event> hist;
    ProcessId pid = kNoProcess;
    for (const auto& pe : *events) {
      if (pe.type != EventType::kSense) continue;  // strobes tick on sense only
      pid = pe.pid;
      Event e;
      e.stamp = pe.clocks.strobe_vector;
      e.has_var = pe.var.has_value();
      if (pe.var) e.var = *pe.var;
      e.value = pe.value;
      e.when = pe.clocks.true_time;
      hist.push_back(std::move(e));
    }
    if (pid == kNoProcess && !events->empty()) pid = events->front().pid;
    pids.push_back(pid);
    histories.push_back(std::move(hist));
  }
  return ExecutionView(std::move(pids), std::move(histories));
}

ExecutionView ExecutionView::from_causal_stamps(
    const PervasiveSystem& system) {
  std::vector<ProcessId> pids;
  std::vector<std::vector<Event>> histories;
  for (const auto* events : system.sensor_executions()) {
    std::vector<Event> hist;
    ProcessId pid = kNoProcess;
    for (const auto& pe : *events) {
      // Every recorded event type ticks the causal clocks exactly once, so
      // local indices align with causal-vector own-components.
      pid = pe.pid;
      Event e;
      e.stamp = pe.clocks.causal_vector;
      e.has_var = pe.var.has_value();
      if (pe.var) e.var = *pe.var;
      e.value = pe.value;
      e.when = pe.clocks.true_time;
      hist.push_back(std::move(e));
    }
    if (pid == kNoProcess && !events->empty()) pid = events->front().pid;
    pids.push_back(pid);
    histories.push_back(std::move(hist));
  }
  return ExecutionView(std::move(pids), std::move(histories));
}

std::size_t ExecutionView::total_events() const {
  std::size_t n = 0;
  for (const auto& h : events_) n += h.size();
  return n;
}

bool ExecutionView::consistent(const std::vector<std::size_t>& cut) const {
  PSN_CHECK(cut.size() == events_.size(), "cut dimension mismatch");
  for (std::size_t i = 0; i < cut.size(); ++i) {
    PSN_CHECK(cut[i] <= events_[i].size(), "cut beyond history");
    if (cut[i] == 0) continue;
    const clocks::VectorStamp& stamp = events_[i][cut[i] - 1].stamp;
    for (std::size_t j = 0; j < cut.size(); ++j) {
      if (j == i) continue;
      // stamp[pid_j] counts how many of process j's ticks the event knows.
      if (stamp[pids_[j]] > cut[j]) return false;
    }
  }
  return true;
}

GlobalState ExecutionView::state_at(const std::vector<std::size_t>& cut) const {
  PSN_CHECK(cut.size() == events_.size(), "cut dimension mismatch");
  GlobalState state;
  for (std::size_t i = 0; i < cut.size(); ++i) {
    for (std::size_t k = 0; k < cut[i]; ++k) {
      const Event& e = events_[i][k];
      if (e.has_var) state.set(e.var, e.value);
    }
  }
  return state;
}

std::vector<std::size_t> ExecutionView::final_cut() const {
  std::vector<std::size_t> cut(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) cut[i] = events_[i].size();
  return cut;
}

}  // namespace psn::core
