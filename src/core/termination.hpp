#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/types.hpp"

namespace psn::core {

/// Dijkstra–Safra token-based termination detection — another Appendix-A
/// middleware application ("termination detection"). The computation is
/// terminated when every process is passive and no application message is
/// in flight; the difficulty is that no process can see that globally.
///
/// Safra's algorithm: processes are colored; each keeps a message-count
/// balance (sent − received). A token circulates the ring 0 → n−1 → … → 0
/// accumulating balances; receiving an application message blackens the
/// receiver (it may have been reactivated after the token passed).
/// The initiator announces termination when a token returns white with a
/// zero accumulated balance while the initiator itself is passive and white.
///
/// Transport-agnostic: the host wires `forward_token` to the network and
/// feeds events in. Hooks: call on_app_send()/on_app_receive() around the
/// application's messaging, set_active() around its work.
class SafraParticipant {
 public:
  struct Token {
    std::int64_t count = 0;
    bool black = false;
  };

  /// `forward_token(to, token)`: deliver the token to the next process.
  using ForwardFn = std::function<void(ProcessId to, const Token& token)>;
  /// Called on the initiator when termination is established.
  using AnnounceFn = std::function<void()>;

  SafraParticipant(ProcessId self, std::size_t n, ForwardFn forward,
                   AnnounceFn announce = {});

  // --- application hooks ---
  void set_active(bool active);
  bool active() const { return active_; }
  void on_app_send() { balance_++; }
  void on_app_receive();

  // --- token protocol ---
  /// Initiator (process 0) starts a probe round. No-op if a token this
  /// process owns is already waiting to move.
  void initiate_probe();
  /// The token arrived from the predecessor.
  void on_token(const Token& token);

  bool terminated() const { return terminated_; }

 private:
  void try_forward();
  void start_round();

  ProcessId self_;
  std::size_t n_;
  ForwardFn forward_;
  AnnounceFn announce_;

  bool active_ = false;
  bool black_ = false;          ///< process color
  std::int64_t balance_ = 0;    ///< sent − received
  std::optional<Token> held_;   ///< token waiting for this process to go passive
  bool terminated_ = false;
};

}  // namespace psn::core
