#pragma once

#include <string>
#include <vector>

#include "core/detectors.hpp"
#include "core/system.hpp"

namespace psn::core {

/// What the root does when the predicate fires — the actuate half of the
/// paper's sense-and-respond loop (§2.2). The command is *sent* as a
/// kActuation message to the target sensor/actuator node, which applies it
/// to the world object after the message delay: causality flows
///   world event → sense (n) → strobe (s/r) → detect → actuate-send (s)
///   → actuate (a) → world event.
struct ActuationRule {
  /// Fire on φ becoming true (rising edge) or false (falling edge).
  bool on_rising_edge = true;
  /// The paper's err-on-the-safe-side policy: also fire on borderline
  /// transitions (§5).
  bool fire_on_borderline = true;

  ProcessId actuator = kNoProcess;  ///< node that performs the a-event
  world::ObjectId object = world::kNoObject;
  std::string attribute;
  world::AttributeValue value;
  std::string command;  ///< label for reporting
};

/// In-simulation global-predicate monitor at the root P_0: feeds every
/// incoming sense report to an incremental strobe-vector detector and sends
/// actuation commands per the rules, while the simulation runs. This is the
/// online counterpart of the offline Detector interface; it closes the
/// control loop, so actuation effects become world events that are sensed
/// again.
///
/// Construct after PervasiveSystem and before run(); keep alive for the
/// whole run.
class OnlineMonitor {
 public:
  OnlineMonitor(PervasiveSystem& system, Predicate predicate,
                std::vector<ActuationRule> rules = {});

  /// Transitions detected so far (complete after system.run()).
  const std::vector<Detection>& detections() const { return detections_; }

  struct ActuationRecord {
    std::size_t rule_index = 0;
    SimTime issued_at;        ///< when the root sent the command
    SimTime cause_true_time;  ///< sense that triggered the detection
    bool borderline = false;
  };
  const std::vector<ActuationRecord>& actuations() const {
    return actuations_;
  }

  /// End-to-end actuation latencies (triggering world event → a-event
  /// applied), available after the run by matching the actuator's recorded
  /// a-events against issued commands.
  std::vector<Duration> actuation_latencies() const;

 private:
  void on_update(const ReceivedUpdate& update, std::size_t index);

  PervasiveSystem& system_;
  IncrementalStrobeVectorDetector detector_;
  std::vector<ActuationRule> rules_;
  std::vector<Detection> detections_;
  std::vector<ActuationRecord> actuations_;
  /// Stale evaluations already pushed into the metrics registry.
  std::size_t stale_reported_ = 0;
};

}  // namespace psn::core
