#pragma once

#include <compare>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace psn::core {

/// A sensed variable: an object attribute as tracked by one sensor/actuator
/// process (paper §2.2: "each sensor/actuator process p_i has local variables
/// to track object attributes"). The paper's subscript convention —
/// "the subscript on a variable denotes the location where the variable is
/// sensed" — is exactly this pair.
struct VarRef {
  ProcessId pid = kNoProcess;
  std::string name;

  auto operator<=>(const VarRef&) const = default;
  std::string to_string() const {
    return name + "[" + std::to_string(pid) + "]";
  }
};

/// A (possibly partial) assembled global state: numeric values of sensed
/// variables across the system, as known to an observer at some point. Both
/// the ground-truth oracle and every detector evaluate predicates against
/// one of these.
class GlobalState {
 public:
  void set(const VarRef& var, double value) { values_[var] = value; }
  std::optional<double> get(const VarRef& var) const {
    const auto it = values_.find(var);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  bool has(const VarRef& var) const { return values_.contains(var); }

  /// All variables with the given name, across processes — the domain of the
  /// paper's system-wide relational predicates such as Σ(x_i − y_i).
  std::vector<VarRef> vars_named(const std::string& name) const;

  /// Allocation-free visitation of every (var, value) whose name matches —
  /// the hot-path form of vars_named(): aggregate evaluation runs once per
  /// delivered update inside PSN_HOT detector feeds, so it must not
  /// materialize a vector of string-copied VarRefs per call.
  template <typename Fn>
  void for_each_named(const std::string& name, Fn&& fn) const {
    for (const auto& [ref, value] : values_) {
      if (ref.name == name) fn(ref, value);
    }
  }
  /// True iff at least one variable with this name has been reported.
  bool has_named(const std::string& name) const {
    for (const auto& [ref, value] : values_) {
      if (ref.name == name) return true;
    }
    return false;
  }

  std::size_t size() const { return values_.size(); }
  const std::map<VarRef, double>& values() const { return values_; }

 private:
  std::map<VarRef, double> values_;
};

}  // namespace psn::core
