#pragma once

#include <cstdint>
#include <random>
#include <string_view>

#include "common/sim_time.hpp"

namespace psn {

/// Deterministic random source with named sub-streams.
///
/// Every stochastic component of the simulator (world-event generators,
/// message-delay models, loss models, clock drift) draws from its own stream
/// derived from (master seed, component name, component index). Adding or
/// removing one component therefore never perturbs the draws seen by another,
/// which keeps paired experiment comparisons (e.g. scalar vs vector strobes
/// on the same world history) meaningful.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed == 0 ? 0x9e3779b97f4a7c15ULL : seed) {}

  /// Derives an independent stream keyed by a component name and index.
  Rng substream(std::string_view name, std::uint64_t index = 0) const;

  /// Uniform in [0, 1).
  double uniform01();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// True with probability p.
  bool bernoulli(double p);
  /// Exponential with the given mean (> 0).
  double exponential(double mean);
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential inter-arrival gap for a Poisson process of rate
  /// `rate_per_second` events/s, as a Duration (always >= 1 ns so that
  /// successive events never collide at the same instant).
  Duration exponential_gap(double rate_per_second);
  /// Uniform duration in [lo, hi].
  Duration uniform_duration(Duration lo, Duration hi);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Stateless 64-bit mixing function (SplitMix64 finalizer); used to derive
/// substream seeds and anywhere a cheap hash of integers is needed.
std::uint64_t mix64(std::uint64_t x);

/// FNV-1a hash of a string, for keying substreams by component name.
std::uint64_t hash_name(std::string_view name);

}  // namespace psn
