#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace psn {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  n_++;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ ? min_ : 0.0; }
double RunningStats::max() const { return n_ ? max_ : 0.0; }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

std::string RunningStats::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "n=%zu mean=%.6g sd=%.6g min=%.6g max=%.6g",
                n_, mean(), stddev(), min(), max());
  return buf;
}

void SampleSet::add(double x) {
  xs_.insert(std::upper_bound(xs_.begin(), xs_.end(), x), x);
}

double SampleSet::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double SampleSet::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (const double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double SampleSet::min() const { return xs_.empty() ? 0.0 : xs_.front(); }

double SampleSet::max() const { return xs_.empty() ? 0.0 : xs_.back(); }

double SampleSet::percentile(double p) const {
  PSN_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (xs_.empty()) return 0.0;
  if (xs_.size() == 1) return xs_[0];
  const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PSN_CHECK(hi > lo, "histogram range inverted");
  PSN_CHECK(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  total_++;
  if (x < lo_) {
    underflow_++;
    return;
  }
  if (x >= hi_) {
    overflow_++;
    return;
  }
  const double f = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(f * static_cast<double>(counts_.size()));
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  counts_[idx]++;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  PSN_CHECK(i < counts_.size(), "histogram bin index out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[96];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    std::snprintf(buf, sizeof buf, "[%10.4g, %10.4g) %6zu |", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

double Proportion::value() const {
  return trials ? static_cast<double>(successes) / static_cast<double>(trials)
                : 0.0;
}

namespace {
// Wilson score bounds with z = 1.96.
double wilson(double p, double n, bool upper) {
  if (n <= 0.0) return 0.0;
  constexpr double z = 1.96;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  const double v = (center + (upper ? margin : -margin)) / denom;
  return std::clamp(v, 0.0, 1.0);
}
}  // namespace

double Proportion::wilson_lo() const {
  return wilson(value(), static_cast<double>(trials), /*upper=*/false);
}

double Proportion::wilson_hi() const {
  return wilson(value(), static_cast<double>(trials), /*upper=*/true);
}

}  // namespace psn
