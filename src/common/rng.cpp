#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace psn {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng Rng::substream(std::string_view name, std::uint64_t index) const {
  // Fold the parent engine's *seed-equivalent state* is not recoverable, so
  // substreams are derived from a snapshot draw of a copy; this keeps the
  // parent's own sequence untouched.
  std::mt19937_64 probe = engine_;
  const std::uint64_t base = probe();
  return Rng(mix64(base ^ mix64(hash_name(name)) ^ mix64(index + 1)));
}

double Rng::uniform01() {
  // 53-bit mantissa construction: uniform in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PSN_CHECK(lo <= hi, "uniform bounds inverted");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PSN_CHECK(lo <= hi, "uniform_int bounds inverted");
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  PSN_CHECK(p >= 0.0 && p <= 1.0, "bernoulli p out of [0,1]");
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  PSN_CHECK(mean > 0.0, "exponential mean must be positive");
  // Inverse-CDF; uniform01() < 1 so the log argument is > 0.
  return -mean * std::log(1.0 - uniform01());
}

double Rng::normal(double mean, double stddev) {
  PSN_CHECK(stddev >= 0.0, "normal stddev must be non-negative");
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

Duration Rng::exponential_gap(double rate_per_second) {
  PSN_CHECK(rate_per_second > 0.0, "event rate must be positive");
  const double gap_s = exponential(1.0 / rate_per_second);
  const auto d = Duration::from_seconds(gap_s);
  return d < Duration::nanos(1) ? Duration::nanos(1) : d;
}

Duration Rng::uniform_duration(Duration lo, Duration hi) {
  PSN_CHECK(lo <= hi, "uniform_duration bounds inverted");
  return Duration(uniform_int(lo.count_nanos(), hi.count_nanos()));
}

}  // namespace psn
