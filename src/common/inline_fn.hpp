#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace psn {

/// Move-only callable wrapper with small-buffer-optimized storage, built for
/// the simulation hot path: a capturing lambda whose closure fits the inline
/// buffer (and is nothrow-move-constructible) is stored in place — schedule,
/// move, and invoke perform zero heap allocations. Larger or throwing-move
/// closures transparently fall back to a single heap cell.
///
/// Differences from std::function, deliberately:
///   - move-only (no copy): closures capturing move-only state are fine, and
///     no virtual copy machinery is carried around;
///   - fixed, caller-chosen inline capacity instead of an unspecified SBO
///     threshold, so "does this closure allocate?" is auditable at the call
///     site (the scheduler static_asserts its delivery closures fit);
///   - invoke through one function-pointer table — no RTTI, no target().
template <class Sig, std::size_t InlineBytes = 64>
class InlineFn;

template <class R, class... Args, std::size_t InlineBytes>
class InlineFn<R(Args...), InlineBytes> {
 public:
  static constexpr std::size_t kInlineBytes = InlineBytes;

  /// True iff a closure of type F is stored in the inline buffer (no heap).
  template <class F>
  static constexpr bool stores_inline() {
    return sizeof(F) <= InlineBytes && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  InlineFn() = default;

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule_*() call site
    if constexpr (stores_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    /// Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <class F>
  static constexpr Ops kInlineOps = {
      [](void* storage, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<F*>(storage)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        F* from = std::launder(reinterpret_cast<F*>(src));
        ::new (dst) F(std::move(*from));
        from->~F();
      },
      [](void* storage) noexcept {
        std::launder(reinterpret_cast<F*>(storage))->~F();
      },
  };

  template <class F>
  static constexpr Ops kHeapOps = {
      [](void* storage, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<F**>(storage)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        // Ownership of the heap cell moves with the pointer; the pointer
        // itself is trivially destructible.
        ::new (dst) F*(*std::launder(reinterpret_cast<F**>(src)));
      },
      [](void* storage) noexcept {
        delete *std::launder(reinterpret_cast<F**>(storage));
      },
  };

  void move_from(InlineFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace psn
