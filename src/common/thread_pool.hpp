#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace psn {

/// Fixed-size worker pool over a single locked FIFO queue (no work stealing
/// — experiment runs are seconds long, so queue contention is irrelevant and
/// a single mutex keeps the pool trivially TSan-clean).
///
/// Semantics worth relying on:
///  - submit() returns a std::future; an exception thrown by the task is
///    captured and rethrown from future::get().
///  - The destructor stops accepting new work, *drains* everything already
///    queued, then joins — queued tasks are never silently dropped.
///  - Tasks must not submit to the pool they run on after shutdown began.
class ThreadPool {
 public:
  /// `threads == 0` means one worker per hardware thread.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task]() { (*task)(); });
    return result;
  }

  static unsigned hardware_threads();

 private:
  void enqueue(std::function<void()> fn);
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  unsigned busy_ = 0;
  bool stopping_ = false;
};

/// Applies `fn` to every item, fanning the calls across `pool`, and returns
/// the results **in input order** — completion order never leaks out, which
/// is what makes parallel sweeps bit-reproducible. The first task exception
/// propagates to the caller (after all tasks finish).
template <typename Item, typename Fn>
auto parallel_map(ThreadPool& pool, const std::vector<Item>& items, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, const Item&>> {
  using R = std::invoke_result_t<Fn, const Item&>;
  std::vector<std::future<R>> futures;
  futures.reserve(items.size());
  for (const Item& item : items) {
    futures.push_back(pool.submit([&fn, &item]() { return fn(item); }));
  }
  std::vector<R> results;
  results.reserve(items.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace psn
