#include "common/alloc_guard.hpp"

namespace psn::alloc_guard {

namespace detail {

// Weak fallback: binaries that do not link the psn_alloc_guard object
// library resolve counters() to this and report "hooks not installed". The
// strong definition in alloc_guard_hooks.cpp overrides it at link time.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((weak)) Counters* counters() noexcept { return nullptr; }
#else
Counters* counters() noexcept { return nullptr; }
#endif

}  // namespace detail

bool hooks_installed() noexcept { return detail::counters() != nullptr; }

std::uint64_t thread_allocations() noexcept {
  const detail::Counters* c = detail::counters();
  return c != nullptr ? c->allocations : 0;
}

std::uint64_t thread_deallocations() noexcept {
  const detail::Counters* c = detail::counters();
  return c != nullptr ? c->deallocations : 0;
}

std::uint64_t thread_bytes() noexcept {
  const detail::Counters* c = detail::counters();
  return c != nullptr ? c->bytes : 0;
}

}  // namespace psn::alloc_guard
