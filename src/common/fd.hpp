#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <utility>

#include "common/error.hpp"

/// POSIX descriptor RAII for the serve layer (DESIGN.md §12). The listener
/// juggles a listen socket, one fd per session, and a signal pipe through a
/// single poll loop; every one of them is owned by a UniqueFd so no error
/// path can leak a descriptor.
namespace psn {

/// Move-only owner of a file descriptor. -1 means empty.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }

  int get() const { return fd_; }
  explicit operator bool() const { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int release() { return std::exchange(fd_, -1); }

  /// Closes the held descriptor (if any) and adopts `fd`. Close errors are
  /// ignored: on Linux the descriptor is gone even when close reports EINTR.
  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

/// The classic self-pipe: a nonblocking pipe whose write end is safe to poke
/// from a signal handler or another thread, waking a poll() that watches the
/// read end. This is how the listener turns SIGINT/SIGTERM (and test-driven
/// stop requests) into an ordinary poll event instead of an interruption.
class SelfPipe {
 public:
  SelfPipe() {
    int fds[2] = {-1, -1};
    PSN_CHECK(::pipe(fds) == 0, "SelfPipe: pipe() failed");
    rd_.reset(fds[0]);
    wr_.reset(fds[1]);
    for (const int fd : fds) {
      ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
  }

  int read_fd() const { return rd_.get(); }
  int write_fd() const { return wr_.get(); }

  /// Async-signal-safe wakeup. A full pipe is fine — the reader is already
  /// guaranteed to wake.
  void poke() const {
    const char byte = 's';
    [[maybe_unused]] const auto n = ::write(wr_.get(), &byte, 1);
  }

  /// Swallows every pending wakeup byte.
  void drain() const {
    char buf[64];
    while (::read(rd_.get(), buf, sizeof(buf)) > 0) {
    }
  }

 private:
  UniqueFd rd_;
  UniqueFd wr_;
};

}  // namespace psn
