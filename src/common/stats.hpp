#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace psn {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

  std::string summary() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Keeps all samples; supports exact percentiles. Use for detection-latency
/// style metrics where tails matter and sample counts are modest.
///
/// Samples are kept sorted eagerly on insertion (binary search + insert, so
/// add() is O(n) — fine at the sample counts this class is for). That makes
/// every const observer a pure read with no hidden mutation, so concurrent
/// reads of a fully built SampleSet are safe — e.g. sweep workers sharing a
/// merged result. Interleaving add() with reads still needs external
/// synchronization, like any container.
class SampleSet {
 public:
  void add(double x);
  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact percentile by linear interpolation, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  /// The samples in ascending order.
  const std::vector<double>& samples() const { return xs_; }

 private:
  std::vector<double> xs_;  // invariant: ascending
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples go to clamp bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  /// Renders a terminal bar chart, one row per bin.
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Wilson score interval for a binomial proportion; robust near 0 and 1,
/// which is where detection-accuracy experiments live.
struct Proportion {
  std::size_t successes = 0;
  std::size_t trials = 0;

  void add(bool success) {
    trials++;
    if (success) successes++;
  }
  double value() const;
  double wilson_lo() const;
  double wilson_hi() const;
};

}  // namespace psn
