#include "common/metrics.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace psn {

std::string labeled_metric(std::string_view base, std::uint64_t id,
                           std::string_view suffix) {
  std::string out;
  out.reserve(base.size() + suffix.size() + 22);
  out += base;
  out += '.';
  out += std::to_string(id);
  out += '.';
  out += suffix;
  return out;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, s] : other.stats) stats[name].merge(s);
  for (const auto& [name, h] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, h);
      continue;
    }
    HistogramData& mine = it->second;
    PSN_CHECK(mine.lo == h.lo && mine.hi == h.hi &&
                  mine.counts.size() == h.counts.size(),
              "merging histograms of different shape: " + name);
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      mine.counts[i] += h.counts[i];
    }
    mine.underflow += h.underflow;
    mine.overflow += h.overflow;
    mine.total += h.total;
  }
}

void MetricsSnapshot::merge_renamed(const MetricsSnapshot& other,
                                    const RenameFn& rename) {
  for (const auto& [name, v] : other.counters) {
    const std::string to = rename(name);
    if (!to.empty()) counters[to] += v;
  }
  for (const auto& [name, v] : other.gauges) {
    const std::string to = rename(name);
    if (!to.empty()) gauges[to] += v;
  }
  for (const auto& [name, s] : other.stats) {
    const std::string to = rename(name);
    if (!to.empty()) stats[to].merge(s);
  }
  for (const auto& [name, h] : other.histograms) {
    const std::string to = rename(name);
    if (to.empty()) continue;
    MetricsSnapshot renamed_one;
    renamed_one.histograms.emplace(to, h);
    merge(renamed_one);  // reuse the shape-checked histogram merge
  }
}

Table MetricsSnapshot::table() const {
  Table t({"name", "kind", "value"});
  char buf[160];
  for (const auto& [name, v] : counters) {
    t.row().cell(name).cell("counter").cell(v);
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
    t.row().cell(name).cell("gauge").cell(buf);
  }
  for (const auto& [name, s] : stats) {
    t.row().cell(name).cell("stat").cell(s.summary());
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(buf, sizeof buf,
                  "total=%zu bins=%zu range=[%.6g, %.6g) under=%zu over=%zu",
                  h.total, h.counts.size(), h.lo, h.hi, h.underflow,
                  h.overflow);
    t.row().cell(name).cell("histogram").cell(buf);
  }
  return t;
}

MetricsRegistry::Counter MetricsRegistry::counter(const std::string& name) {
  return Counter(&counters_[name]);
}

MetricsRegistry::Gauge MetricsRegistry::gauge(const std::string& name) {
  return Gauge(&gauges_[name]);
}

MetricsRegistry::Stat MetricsRegistry::stat(const std::string& name) {
  return Stat(&stats_[name]);
}

MetricsRegistry::Hist MetricsRegistry::histogram(const std::string& name,
                                                 double lo, double hi,
                                                 std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(lo, hi, bins)).first;
  } else {
    PSN_CHECK(it->second.bin_lo(0) == lo &&
                  it->second.bin_lo(it->second.bins()) == hi &&
                  it->second.bins() == bins,
              "histogram re-registered with a different shape: " + name);
  }
  return Hist(&it->second);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  snap.stats = stats_;
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.lo = h.bin_lo(0);
    data.hi = h.bin_lo(h.bins());
    data.counts.resize(h.bins());
    for (std::size_t i = 0; i < h.bins(); ++i) data.counts[i] = h.bin_count(i);
    data.underflow = h.underflow();
    data.overflow = h.overflow();
    data.total = h.total();
    snap.histograms.emplace(name, std::move(data));
  }
  return snap;
}

}  // namespace psn
