#pragma once

#include <cstdint>

namespace psn {

/// Identifier of a sensor/actuator process in the network plane P.
/// Process 0 is conventionally the distinguished root/back-end P_0
/// (paper §2.1) when a configuration uses one.
using ProcessId = std::uint32_t;
inline constexpr ProcessId kNoProcess = UINT32_MAX;

}  // namespace psn
