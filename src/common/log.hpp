#pragma once

#include <sstream>
#include <string>

namespace psn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; default Warn so library users see problems but
/// simulations stay quiet. Benchmarks/tests may lower it.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace psn

#define PSN_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::psn::log_level())) { \
  } else                                                \
    ::psn::detail::LogLine(level)

#define PSN_DEBUG PSN_LOG(::psn::LogLevel::kDebug)
#define PSN_INFO PSN_LOG(::psn::LogLevel::kInfo)
#define PSN_WARN PSN_LOG(::psn::LogLevel::kWarn)
#define PSN_ERROR PSN_LOG(::psn::LogLevel::kError)
