#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace psn {

/// Thrown when an internal invariant of the library is violated. These
/// indicate a bug in the library (or a misuse of an API precondition), never
/// an expected runtime condition.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown for invalid user-supplied configuration (bad parameters, malformed
/// predicate text, inconsistent experiment setup).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void invariant_failure(
    const char* expr, const std::string& msg,
    const std::source_location loc = std::source_location::current()) {
  throw InvariantError(std::string(loc.file_name()) + ":" +
                       std::to_string(loc.line()) + ": invariant `" + expr +
                       "` violated" + (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace psn

/// Always-on invariant check (cheap checks on hot paths use PSN_DCHECK).
#define PSN_CHECK(expr, msg)                             \
  do {                                                   \
    if (!(expr)) ::psn::detail::invariant_failure(#expr, (msg)); \
  } while (0)

#ifdef NDEBUG
#define PSN_DCHECK(expr, msg) \
  do {                        \
  } while (0)
#else
#define PSN_DCHECK(expr, msg) PSN_CHECK(expr, msg)
#endif
