#pragma once

#include <cstdint>

/// psn::alloc_guard — thread-local allocation counting for hot-path tests
/// (DESIGN.md §13).
///
/// The repo's PR-4 performance story is an *allocation-free steady state* on
/// the scheduler, broadcast fan-out, dense detector evaluation, and stream-
/// checker feed paths. Example-based perf tests cannot see a reintroduced
/// per-event malloc; this guard can: link the `psn_alloc_guard` object
/// library into a test binary and every `operator new`/`operator delete`
/// in that binary bumps plain thread-local counters. A test then wraps the
/// steady-state section in a Scope and asserts `allocations() == 0`.
///
/// When the hooks are NOT linked (every production binary), the accessors
/// resolve to weak fallbacks returning zero and `hooks_installed()` is
/// false — the header costs nothing to include and tests can skip cleanly
/// instead of asserting garbage.
namespace psn::alloc_guard {

namespace detail {
/// Plain-old-data counters: zero static initialization, no destructor, so
/// they are safe to touch from operator new at any point in a thread's
/// life, including before main() and during thread teardown.
struct Counters {
  std::uint64_t allocations = 0;
  std::uint64_t deallocations = 0;
  std::uint64_t bytes = 0;
};

/// This thread's counters, or nullptr when the counting hooks are not
/// linked into the binary. Weak-defaulted in alloc_guard.cpp; the strong
/// definition lives in alloc_guard_hooks.cpp (object library
/// `psn_alloc_guard`), which also replaces the global allocation operators.
Counters* counters() noexcept;
}  // namespace detail

/// True iff the counting operator new/delete replacements are linked in.
bool hooks_installed() noexcept;

/// Lifetime totals for the calling thread (0 when hooks are absent).
std::uint64_t thread_allocations() noexcept;
std::uint64_t thread_deallocations() noexcept;
std::uint64_t thread_bytes() noexcept;

/// Deltas since construction, on the constructing thread.
class Scope {
 public:
  Scope()
      : start_allocations_(thread_allocations()),
        start_deallocations_(thread_deallocations()),
        start_bytes_(thread_bytes()) {}

  std::uint64_t allocations() const {
    return thread_allocations() - start_allocations_;
  }
  std::uint64_t deallocations() const {
    return thread_deallocations() - start_deallocations_;
  }
  std::uint64_t bytes() const { return thread_bytes() - start_bytes_; }

 private:
  std::uint64_t start_allocations_;
  std::uint64_t start_deallocations_;
  std::uint64_t start_bytes_;
};

}  // namespace psn::alloc_guard
