#include "common/thread_pool.hpp"

#include <utility>

#include "common/error.hpp"

namespace psn {

unsigned ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PSN_CHECK(!stopping_, "submit() on a ThreadPool being destroyed");
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_++;
    }
    task();  // a packaged_task: exceptions land in the caller's future
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_--;
      if (queue_.empty() && busy_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace psn
