#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace psn {

/// Row-oriented results table with aligned ASCII rendering and CSV export.
/// Benchmarks use it to print the rows each experiment regenerates.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 4);
  Table& cell(std::int64_t value);
  Table& cell(std::size_t value);
  Table& cell(int value);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return columns_.size(); }
  const std::string& at(std::size_t row, std::size_t col) const;

  /// Aligned fixed-width rendering with a header rule.
  std::string ascii() const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string csv() const;
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace psn
