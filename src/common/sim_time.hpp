#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace psn {

/// Simulated physical ("true") time, in integer nanoseconds.
///
/// The whole library uses fixed-point nanoseconds rather than floating-point
/// seconds so that the event calendar has a deterministic total order and
/// repeated runs with the same seed are bit-identical. Durations and absolute
/// times share the representation; `SimTime` is an absolute instant and
/// `Duration` a signed difference.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t nanos) : nanos_(nanos) {}

  static constexpr Duration nanos(std::int64_t n) { return Duration(n); }
  static constexpr Duration micros(std::int64_t us) { return Duration(us * 1000); }
  static constexpr Duration millis(std::int64_t ms) { return Duration(ms * 1'000'000); }
  static constexpr Duration seconds(std::int64_t s) { return Duration(s * 1'000'000'000); }
  /// Converts a floating-point second count, rounding to the nearest ns.
  static Duration from_seconds(double s);
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t count_nanos() const { return nanos_; }
  constexpr double to_seconds() const {
    return static_cast<double>(nanos_) / 1e9;
  }
  constexpr double to_millis() const {
    return static_cast<double>(nanos_) / 1e6;
  }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration(nanos_ + o.nanos_); }
  constexpr Duration operator-(Duration o) const { return Duration(nanos_ - o.nanos_); }
  constexpr Duration operator-() const { return Duration(-nanos_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(nanos_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(nanos_ / k); }
  constexpr Duration& operator+=(Duration o) { nanos_ += o.nanos_; return *this; }
  constexpr Duration& operator-=(Duration o) { nanos_ -= o.nanos_; return *this; }
  /// Scales by a double, rounding to nearest ns (for jitter computations).
  Duration scaled(double f) const;
  constexpr Duration abs() const { return Duration(nanos_ < 0 ? -nanos_ : nanos_); }

  std::string to_string() const;

 private:
  std::int64_t nanos_ = 0;
};

class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t nanos) : nanos_(nanos) {}

  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }
  static SimTime from_seconds(double s);

  constexpr std::int64_t count_nanos() const { return nanos_; }
  constexpr double to_seconds() const {
    return static_cast<double>(nanos_) / 1e9;
  }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(Duration d) const { return SimTime(nanos_ + d.count_nanos()); }
  constexpr SimTime operator-(Duration d) const { return SimTime(nanos_ - d.count_nanos()); }
  constexpr Duration operator-(SimTime o) const { return Duration(nanos_ - o.nanos_); }
  constexpr SimTime& operator+=(Duration d) { nanos_ += d.count_nanos(); return *this; }

  std::string to_string() const;

 private:
  std::int64_t nanos_ = 0;
};

namespace time_literals {
constexpr Duration operator""_ns(unsigned long long n) {
  return Duration(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_us(unsigned long long n) {
  return Duration::micros(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_ms(unsigned long long n) {
  return Duration::millis(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_s(unsigned long long n) {
  return Duration::seconds(static_cast<std::int64_t>(n));
}
}  // namespace time_literals

}  // namespace psn
