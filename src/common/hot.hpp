#pragma once

/// PSN_HOT marks a function as a steady-state hot path: after warmup it must
/// not allocate — not directly, and not through obviously-allocating std
/// types. The contract is enforced twice (DESIGN.md §13):
///
///  - statically, by the psn-hot-path-alloc check in tools/lint (bans new/
///    delete, the malloc family, make_unique/make_shared, std::function,
///    to_string, and stringstreams inside PSN_HOT bodies; a genuinely-warmup
///    allocation carries a `// psn-lint: allow(psn-hot-path-alloc)` waiver);
///  - dynamically, by the alloc-guard suite (`ctest -L lint`), which pins
///    zero allocations per event on the annotated paths after warmup.
///
/// The macro also feeds the optimizer: on GCC/Clang it expands to the `hot`
/// function attribute, so annotated paths get the more aggressive block
/// placement they deserve.
#if defined(__GNUC__) || defined(__clang__)
#define PSN_HOT __attribute__((hot))
#else
#define PSN_HOT
#endif
