#pragma once

#include <utility>

namespace psn {

/// A value of T that has passed its `validate(const T&)` check (found by
/// ADL; it throws ConfigError on a bad value). APIs that take a
/// `Validated<T>` make "this config was checked" part of the type: callers
/// either construct one — validating exactly once, at the boundary — or pass
/// a raw T through a convenience overload that does it for them. Nonsense
/// configs (zero sensors, negative rates, Δ ≤ 0 under a bounded-delay model)
/// are rejected up front instead of silently misbehaving mid-run.
template <typename T>
class Validated {
 public:
  explicit Validated(T value) : value_(std::move(value)) { validate(value_); }

  const T& get() const { return value_; }
  const T& operator*() const { return value_; }
  const T* operator->() const { return &value_; }

 private:
  T value_;
};

}  // namespace psn
