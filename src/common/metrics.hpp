#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace psn {

/// Builds the canonical labeled metric name `<base>.<id>.<suffix>` — e.g.
/// `labeled_metric("serve.stream", 3, "records")` →
/// "serve.stream.3.records". Labels are plain name segments, so labeled
/// metrics sort textually inside snapshots and merged server-wide snapshots
/// stay deterministic without any extra machinery.
std::string labeled_metric(std::string_view base, std::uint64_t id,
                           std::string_view suffix);

/// Frozen value of every metric in a registry at one instant, detached from
/// the registry that produced it. Snapshots are plain data: they can be
/// copied out of a finished run, merged across replications, and serialized
/// — which is how the sweep engine reports per-point metrics without keeping
/// any simulation alive.
///
/// Merging is deterministic as long as the merge *order* is fixed (the sweep
/// engine merges in grid order): counters and histogram bins add, gauges
/// add, stats combine via RunningStats::merge. Two sweeps of the same spec
/// therefore serialize byte-identically at any thread count.
struct MetricsSnapshot {
  struct HistogramData {
    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::size_t> counts;
    std::size_t underflow = 0;
    std::size_t overflow = 0;
    std::size_t total = 0;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, RunningStats> stats;
  std::map<std::string, HistogramData> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && stats.empty() &&
           histograms.empty();
  }

  /// Accumulates `other` into this snapshot. Shape mismatches on a shared
  /// histogram name (different range or bin count) throw InvariantError.
  void merge(const MetricsSnapshot& other);

  /// Accumulates `other` with every metric renamed through `rename` first —
  /// how a multi-stream server folds per-session snapshots into one
  /// registry under per-stream labels (e.g. "serve.records" →
  /// "serve.stream.3.records"). Returning an empty string drops that
  /// metric. Deterministic: `other` is walked in its own sorted name order
  /// and the destination maps stay name-sorted, so merging the same
  /// snapshots in the same order serializes byte-identically.
  using RenameFn = std::function<std::string(const std::string&)>;
  void merge_renamed(const MetricsSnapshot& other, const RenameFn& rename);

  /// One row per metric, name-sorted within each kind: name, kind, value
  /// (stats and histograms render a compact summary string).
  Table table() const;
  std::string csv() const { return table().csv(); }
};

/// Registry of named counters, gauges, streaming stats, and histograms.
///
/// Lookup by name happens once, at wiring time: `counter(name)` etc. return
/// cheap handles (a raw pointer into node-stable map storage) that hot paths
/// update without hashing or allocation. A default-constructed handle is an
/// inert no-op, so components can hold handles unconditionally and only bind
/// them when a registry is available.
///
/// Thread-safety contract: a registry belongs to one simulation run and is
/// confined to the thread executing that run (the sweep engine gives every
/// run its own Simulation, hence its own registry). Neither registration nor
/// handle updates are synchronized.
class MetricsRegistry {
 public:
  class Counter {
   public:
    Counter() = default;
    void inc(std::uint64_t by = 1) {
      if (v_ != nullptr) *v_ += by;
    }
    std::uint64_t value() const { return v_ != nullptr ? *v_ : 0; }

   private:
    friend class MetricsRegistry;
    explicit Counter(std::uint64_t* v) : v_(v) {}
    std::uint64_t* v_ = nullptr;
  };

  class Gauge {
   public:
    Gauge() = default;
    void set(double v) {
      if (v_ != nullptr) *v_ = v;
    }
    void add(double v) {
      if (v_ != nullptr) *v_ += v;
    }
    double value() const { return v_ != nullptr ? *v_ : 0.0; }

   private:
    friend class MetricsRegistry;
    explicit Gauge(double* v) : v_(v) {}
    double* v_ = nullptr;
  };

  class Stat {
   public:
    Stat() = default;
    void add(double x) {
      if (s_ != nullptr) s_->add(x);
    }

   private:
    friend class MetricsRegistry;
    explicit Stat(RunningStats* s) : s_(s) {}
    RunningStats* s_ = nullptr;
  };

  class Hist {
   public:
    Hist() = default;
    void add(double x) {
      if (h_ != nullptr) h_->add(x);
    }

   private:
    friend class MetricsRegistry;
    explicit Hist(Histogram* h) : h_(h) {}
    Histogram* h_ = nullptr;
  };

  /// All accessors find-or-create by name; re-registering an existing name
  /// returns a handle to the same metric. `histogram` requires an identical
  /// shape on re-registration (InvariantError otherwise).
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Stat stat(const std::string& name);
  Hist histogram(const std::string& name, double lo, double hi,
                 std::size_t bins);

  std::size_t size() const {
    return counters_.size() + gauges_.size() + stats_.size() +
           histograms_.size();
  }

  MetricsSnapshot snapshot() const;

 private:
  // std::map nodes are address-stable, which is what makes the raw-pointer
  // handles safe for the registry's lifetime.
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, RunningStats> stats_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace psn
