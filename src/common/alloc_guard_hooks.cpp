/// Counting replacements for the global allocation operators, plus the
/// strong definition of psn::alloc_guard::detail::counters(). Built as the
/// `psn_alloc_guard` OBJECT library and linked only into test binaries that
/// assert allocation behavior — an object library (not an archive) so the
/// strong symbol always participates in the link and reliably overrides the
/// weak fallback in alloc_guard.cpp.
///
/// The replacements forward to std::malloc/std::free, so sanitizer malloc
/// interception (ASan poisoning, LSan leak accounting) keeps working
/// underneath the counters.
#include <cstdlib>
#include <new>

#include "common/alloc_guard.hpp"

namespace psn::alloc_guard::detail {

namespace {
thread_local Counters tls_counters;
}  // namespace

Counters* counters() noexcept { return &tls_counters; }

namespace {

void* counted_allocate(std::size_t size) {
  tls_counters.allocations++;
  tls_counters.bytes += size;
  // Malloc may legally return nullptr for 0 bytes; operator new must not.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_allocate_nothrow(std::size_t size) noexcept {
  tls_counters.allocations++;
  tls_counters.bytes += size;
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_allocate_aligned(std::size_t size, std::size_t align) {
  tls_counters.allocations++;
  tls_counters.bytes += size;
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  tls_counters.deallocations++;
  std::free(p);
}

}  // namespace

}  // namespace psn::alloc_guard::detail

namespace guard = psn::alloc_guard::detail;

void* operator new(std::size_t size) { return guard::counted_allocate(size); }
void* operator new[](std::size_t size) {
  return guard::counted_allocate(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return guard::counted_allocate_nothrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return guard::counted_allocate_nothrow(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return guard::counted_allocate_aligned(size,
                                         static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return guard::counted_allocate_aligned(size,
                                         static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { guard::counted_free(p); }
void operator delete[](void* p) noexcept { guard::counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { guard::counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept {
  guard::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  guard::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  guard::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  guard::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  guard::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  guard::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  guard::counted_free(p);
}
