#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace psn {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  PSN_CHECK(!columns_.empty(), "table needs at least one column");
}

Table& Table::row() {
  if (!rows_.empty()) {
    PSN_CHECK(rows_.back().size() == columns_.size(),
              "previous row incomplete: " + std::to_string(rows_.back().size()) +
                  " of " + std::to_string(columns_.size()) + " cells filled");
  }
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  PSN_CHECK(!rows_.empty(), "call row() before cell()");
  PSN_CHECK(rows_.back().size() < columns_.size(), "row already full");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return cell(std::string(buf));
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

const std::string& Table::at(std::size_t row, std::size_t col) const {
  PSN_CHECK(row < rows_.size() && col < rows_[row].size(),
            "table index out of range");
  return rows_[row][col];
}

std::string Table::ascii() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells, std::string& out) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      out += "| ";
      out += v;
      out.append(widths[c] - v.size() + 1, ' ');
    }
    out += "|\n";
  };
  std::string out;
  emit_row(columns_, out);
  for (const std::size_t w : widths) {
    out += "|";
    out.append(w + 2, '-');
  }
  out += "|\n";
  for (const auto& r : rows_) emit_row(r, out);
  return out;
}

namespace {
std::string csv_escape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (const char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::csv() const {
  std::string out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) out += ',';
    out += csv_escape(columns_[c]);
  }
  out += '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) out += ',';
      out += csv_escape(r[c]);
    }
    out += '\n';
  }
  return out;
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  PSN_CHECK(f.good(), "cannot open CSV output path: " + path);
  f << csv();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.ascii();
}

}  // namespace psn
