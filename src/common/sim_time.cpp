#include "common/sim_time.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace psn {

Duration Duration::from_seconds(double s) {
  PSN_CHECK(std::isfinite(s), "duration seconds must be finite");
  return Duration(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

Duration Duration::scaled(double f) const {
  PSN_CHECK(std::isfinite(f), "scale factor must be finite");
  return Duration(
      static_cast<std::int64_t>(std::llround(static_cast<double>(nanos_) * f)));
}

namespace {
std::string format_nanos(std::int64_t nanos) {
  char buf[64];
  const double a = std::abs(static_cast<double>(nanos));
  if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(nanos) / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(nanos) / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(nanos) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(nanos));
  }
  return buf;
}
}  // namespace

std::string Duration::to_string() const { return format_nanos(nanos_); }

SimTime SimTime::from_seconds(double s) {
  PSN_CHECK(std::isfinite(s) && s >= 0.0, "absolute time must be finite and >= 0");
  return SimTime(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

std::string SimTime::to_string() const { return format_nanos(nanos_); }

}  // namespace psn
