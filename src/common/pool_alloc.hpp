#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace psn {

/// Size-classed recycling arena for node-based containers on hot paths
/// (DESIGN.md §13). Node containers (unordered_map, deque) hit the global
/// allocator once per insert and once per erase; under steady-state churn —
/// the soak server's always-on trace matching — that is one malloc/free pair
/// per event forever. The arena breaks the cycle: deallocated blocks go onto
/// a per-size free list and the next same-size allocation pops them back,
/// so after the working set peaks, insert/erase costs a free-list push/pop
/// and the global allocator is never consulted again.
///
/// Memory therefore grows to the *peak* working set and stays there —
/// exactly the bounded-retention story the stream checker already tells —
/// and every block is released when the arena dies.
///
/// Contracts:
///  - Single-threaded, like the containers it backs (one checker = one
///    session = one thread).
///  - The arena must outlive every container allocating from it: declare it
///    before them in the owning class.
///  - Not movable or copyable (allocators hold stable pointers to it).
class PoolArena {
 public:
  PoolArena() = default;
  PoolArena(const PoolArena&) = delete;
  PoolArena& operator=(const PoolArena&) = delete;

  ~PoolArena() {
    for (void* p : blocks_) ::operator delete(p);
  }

  void* allocate(std::size_t bytes) {
    FreeList& list = free_list_for(bytes);
    if (!list.free.empty()) {
      void* p = list.free.back();
      list.free.pop_back();
      return p;
    }
    void* p = ::operator new(bytes);
    blocks_.push_back(p);
    return p;
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    // The free-list vector grows to the peak live count and is then
    // capacity-stable; if a growth push ever throws, the block is simply
    // not recycled (it remains owned by blocks_ and is freed at teardown).
    try {
      free_list_for(bytes).free.push_back(p);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }

  /// Blocks ever carved from the global allocator (diagnostics/tests).
  std::size_t blocks_allocated() const { return blocks_.size(); }

 private:
  struct FreeList {
    std::size_t bytes = 0;
    std::vector<void*> free;
  };

  /// Linear scan: a container family produces a handful of distinct sizes
  /// (node, bucket array per growth step, deque block), so the list stays
  /// short and the scan beats any map lookup.
  FreeList& free_list_for(std::size_t bytes) {
    for (FreeList& list : lists_) {
      if (list.bytes == bytes) return list;
    }
    lists_.push_back(FreeList{bytes, {}});
    return lists_.back();
  }

  std::vector<FreeList> lists_;
  std::vector<void*> blocks_;  ///< everything ever allocated, for teardown
};

/// Minimal std allocator over a PoolArena. Containers constructed with it
/// route node and bucket-array allocations through the arena's free lists.
/// Two allocators compare equal iff they share an arena; propagation traits
/// are all false — containers keep the allocator they were born with.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_move_assignment = std::false_type;
  using propagate_on_container_swap = std::false_type;
  using is_always_equal = std::false_type;

  explicit PoolAllocator(PoolArena& arena) : arena_(&arena) {}

  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other)  // NOLINT(google-explicit-constructor)
      : arena_(other.arena_) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    arena_->deallocate(p, n * sizeof(T));
  }

  bool operator==(const PoolAllocator& other) const {
    return arena_ == other.arena_;
  }

 private:
  template <typename U>
  friend class PoolAllocator;

  PoolArena* arena_;
};

}  // namespace psn
