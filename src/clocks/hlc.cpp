#include "clocks/hlc.hpp"

#include <algorithm>

namespace psn::clocks {

std::string HlcStamp::to_string() const {
  return l.to_string() + "+" + std::to_string(c);
}

HybridLogicalClock::HybridLogicalClock(ProcessId pid,
                                       EpsSynchronizedClock& physical)
    : pid_(pid), physical_(physical) {}

HlcStamp HybridLogicalClock::tick(SimTime now) {
  const SimTime pt = physical_.read(now);
  if (pt > l_) {
    l_ = pt;
    c_ = 0;
  } else {
    c_++;
  }
  return current();
}

HlcStamp HybridLogicalClock::on_receive(const HlcStamp& incoming,
                                        SimTime now) {
  const SimTime pt = physical_.read(now);
  const SimTime l_old = l_;
  l_ = std::max({l_old, incoming.l, pt});
  if (l_ == l_old && l_ == incoming.l) {
    c_ = std::max(c_, incoming.c) + 1;
  } else if (l_ == l_old) {
    c_++;
  } else if (l_ == incoming.l) {
    c_ = incoming.c + 1;
  } else {
    c_ = 0;  // physical time moved us forward
  }
  return current();
}

}  // namespace psn::clocks
