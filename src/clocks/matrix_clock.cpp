#include "clocks/matrix_clock.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psn::clocks {

MatrixClock::MatrixClock(ProcessId pid, std::size_t n) : pid_(pid) {
  PSN_CHECK(pid < n, "matrix clock pid out of dimension");
  m_.assign(n, VectorStamp(n));
}

void MatrixClock::tick() { m_[pid_][pid_]++; }

const std::vector<VectorStamp>& MatrixClock::on_send() {
  tick();
  return m_;
}

void MatrixClock::on_receive(ProcessId from,
                             const std::vector<VectorStamp>& incoming) {
  PSN_CHECK(from < m_.size(), "sender out of dimension");
  PSN_CHECK(incoming.size() == m_.size(), "matrix dimension mismatch");
  for (std::size_t row = 0; row < m_.size(); ++row) {
    m_[row].merge(incoming[row]);
  }
  // We now know everything the sender knew at send time.
  m_[pid_].merge(incoming[from]);
  m_[pid_][pid_]++;
}

std::uint64_t MatrixClock::all_know_of(ProcessId target) const {
  PSN_CHECK(target < m_.size(), "target out of dimension");
  std::uint64_t low = UINT64_MAX;
  for (const auto& row : m_) low = std::min(low, row[target]);
  return low;
}

}  // namespace psn::clocks
