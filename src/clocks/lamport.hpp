#pragma once

#include "clocks/timestamp.hpp"
#include "common/types.hpp"

namespace psn::clocks {

/// Lamport logical scalar clock (paper §4.2.2, rules SC1–SC3; Lamport 1978).
///
/// SC1: local relevant event      → C := C + 1
/// SC2: send event                → C := C + 1; message carries C
/// SC3: receive with timestamp T  → C := max(C, T); C := C + 1
///
/// Ticks only at semantic events; the resulting order, totally ordered by
/// (value, pid), is consistent with causality but does not characterize it.
class LamportClock {
 public:
  LamportClock(ProcessId pid) : pid_(pid) {}  // NOLINT: pid is *the* identity

  /// SC1 — internal/sense/actuate event.
  ScalarStamp tick();
  /// SC2 — returns the stamp to piggyback on the outgoing message.
  ScalarStamp on_send();
  /// SC3 — merges the received stamp, then ticks.
  ScalarStamp on_receive(const ScalarStamp& received);

  ScalarStamp current() const { return {value_, pid_}; }
  ProcessId pid() const { return pid_; }

 private:
  std::uint64_t value_ = 0;
  ProcessId pid_;
};

}  // namespace psn::clocks
