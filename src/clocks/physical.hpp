#pragma once

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace psn::clocks {

/// A free-running local hardware clock with initial offset and constant
/// drift — what a sensor node has *before* any synchronization (paper
/// §3.2.1.a.ii: "imperfectly synchronized (with skew/offsets) physical scalar
/// clocks"). Reads map true time t to  t + offset + drift_ppm·1e-6·t (+ read
/// jitter). Sync protocols adjust `offset` via apply_correction().
struct DriftingClockConfig {
  Duration initial_offset = Duration::zero();
  /// Crystal drift in parts per million; ±30–100 ppm is typical hardware.
  double drift_ppm = 0.0;
  /// Uniform per-read noise in [-read_jitter, +read_jitter] (quantization,
  /// interrupt latency).
  Duration read_jitter = Duration::zero();
};

class DriftingClock {
 public:
  DriftingClock(DriftingClockConfig config, Rng rng);

  /// Local clock reading at true time `t`. Non-const: draws read jitter.
  SimTime read(SimTime t);
  /// Reading without jitter — the deterministic component, used by sync
  /// protocols to compute ground-truth residual error.
  SimTime read_exact(SimTime t) const;

  /// Applied by a sync protocol: shifts the clock by `adjustment`
  /// (positive = advance).
  void apply_correction(Duration adjustment);

  /// True offset from real time at true time `t` (for evaluation only; a
  /// real node cannot observe this).
  Duration true_error_at(SimTime t) const;

  const DriftingClockConfig& config() const { return config_; }

 private:
  DriftingClockConfig config_;
  Duration correction_ = Duration::zero();
  Rng rng_;
};

/// The ε-synchronized clock *service* the pervasive-computing literature
/// assumes (paper §3.2.1.a.i–ii): readings are guaranteed within ±ε of true
/// time. Modeled as a fixed per-process offset drawn uniformly from (-ε, ε)
/// plus optional per-read jitter that stays within the bound. ε = 0 gives the
/// perfectly synchronized ideal.
class EpsSynchronizedClock {
 public:
  EpsSynchronizedClock(Duration epsilon, Rng rng);

  SimTime read(SimTime t);
  Duration epsilon() const { return epsilon_; }
  Duration offset() const { return offset_; }

 private:
  Duration epsilon_;
  Duration offset_;
  Duration jitter_range_;
  Rng rng_;
};

}  // namespace psn::clocks
