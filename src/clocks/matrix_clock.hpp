#pragma once

#include <cstdint>
#include <vector>

#include "clocks/timestamp.hpp"
#include "common/types.hpp"

namespace psn::clocks {

/// Matrix clock: the "who knows what about whom" extension of vector time.
/// Appendix A.2.d of the paper lists its classic applications — garbage
/// collection and checkpointing: an item produced by process k's e-th event
/// can be discarded once every process is known to know it, i.e. once
/// min_j M[j][k] ≥ e.
///
/// At process i, row M[i] is i's own vector clock; row M[j] is i's best
/// knowledge of j's vector clock. Messages piggyback the full matrix.
class MatrixClock {
 public:
  MatrixClock(ProcessId pid, std::size_t n);

  /// Local relevant event: own entry M[self][self] increments.
  void tick();
  /// Send event: tick, then piggyback current matrix (returned by ref).
  const std::vector<VectorStamp>& on_send();
  /// Receive from `from` with piggybacked matrix `incoming`:
  ///   - every row merges component-wise (knowledge is monotone),
  ///   - own row additionally absorbs the sender's row (we now know
  ///     everything the sender knew), then ticks.
  void on_receive(ProcessId from, const std::vector<VectorStamp>& incoming);

  const std::vector<VectorStamp>& matrix() const { return m_; }
  /// This process's own vector clock (row self).
  const VectorStamp& vector() const { return m_[pid_]; }

  /// The number of process `target`'s events that *every* process is known
  /// (to this process) to know — the garbage-collection low-watermark.
  std::uint64_t all_know_of(ProcessId target) const;

  ProcessId pid() const { return pid_; }
  std::size_t dimension() const { return m_.size(); }

 private:
  ProcessId pid_;
  std::vector<VectorStamp> m_;
};

}  // namespace psn::clocks
