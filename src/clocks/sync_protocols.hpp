#pragma once

#include <cstddef>
#include <vector>

#include "clocks/physical.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/stats.hpp"

namespace psn::clocks {

/// Radio-link model used by the sync protocols: per-hop delay is
/// `mean_delay` plus uniform noise in [-jitter, +jitter]. The *receive-side*
/// component of that noise is what limits RBS accuracy; the round-trip
/// asymmetry limits TPSN accuracy.
struct SyncLinkModel {
  Duration mean_delay = Duration::micros(500);
  Duration jitter = Duration::micros(50);
};

/// Outcome of one synchronization pass: the paper stresses that this service
/// "does not come for free" (§3.2.1.a.ii), so the cost columns matter as much
/// as the achieved skew.
struct SyncReport {
  /// Max pairwise |clock_i(t) − clock_j(t)| right after the pass — the
  /// achieved ε.
  Duration achieved_skew = Duration::zero();
  RunningStats residual_error_ns;  ///< per-node |clock − reference| in ns
  std::size_t messages = 0;
  std::size_t bytes = 0;
};

/// Reference-Broadcast Synchronization (RBS-style, Elson et al.): a beacon is
/// broadcast; every receiver timestamps its arrival locally; receivers then
/// exchange arrival timestamps and compute pairwise offsets. The propagation
/// delay is common-mode and cancels; only receive-side jitter remains.
/// Averaging over `rounds` beacons reduces the residual by ~1/sqrt(rounds).
///
/// This implementation synchronizes nodes 1..n-1 to node 0 and applies the
/// corrections to the supplied DriftingClocks.
class RbsSync {
 public:
  RbsSync(SyncLinkModel link, std::size_t rounds = 8);

  SyncReport run(std::vector<DriftingClock>& clocks, SimTime when, Rng& rng);

 private:
  SyncLinkModel link_;
  std::size_t rounds_;
};

/// Sender-receiver two-way synchronization (TPSN-style, Ganeriwal et al.):
/// each node performs a two-way timestamp exchange with the root:
///   child sends at T1 (child clock), root receives at T2 (root clock),
///   root replies at T3, child receives at T4;
///   offset = ((T2−T1) − (T4−T3)) / 2.
/// Residual error comes from delay asymmetry between the two directions.
class TpsnSync {
 public:
  TpsnSync(SyncLinkModel link, std::size_t rounds = 4);

  SyncReport run(std::vector<DriftingClock>& clocks, SimTime when, Rng& rng);

 private:
  SyncLinkModel link_;
  std::size_t rounds_;
};

/// Measures the ground-truth max pairwise skew of a clock set at true time
/// `t` (evaluation helper; a deployed network cannot compute this).
Duration max_pairwise_skew(const std::vector<DriftingClock>& clocks, SimTime t);

}  // namespace psn::clocks
