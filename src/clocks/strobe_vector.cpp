#include "clocks/strobe_vector.hpp"

#include "common/error.hpp"

namespace psn::clocks {

StrobeVectorClock::StrobeVectorClock(ProcessId pid, std::size_t n)
    : v_(n), pid_(pid) {
  PSN_CHECK(pid < n, "strobe vector clock pid out of dimension");
}

VectorStamp StrobeVectorClock::on_relevant_event() {
  v_[pid_]++;
  return v_;
}

void StrobeVectorClock::on_strobe(const VectorStamp& strobe) {
  v_.merge(strobe);
}

}  // namespace psn::clocks
