#pragma once

#include "clocks/timestamp.hpp"
#include "common/types.hpp"

namespace psn::clocks {

/// Strobe scalar clock (paper §4.2.2, rules SSC1–SSC2; Kshemkalyani 2010).
///
/// SSC1: process i senses a relevant event →
///         C := C + 1; System-wide broadcast of C
/// SSC2: process i receives a strobe T     → C := max(C, T)   (no tick!)
///
/// Unlike the Lamport clock, the receiver does *not* tick on receipt — a
/// strobe is a control message used purely to re-synchronize the drifting
/// scalars, not a causal message (paper §4.2.3 points 1–3). O(1) strobe size.
class StrobeScalarClock {
 public:
  StrobeScalarClock(ProcessId pid) : pid_(pid) {}  // NOLINT

  /// SSC1 — tick for the local relevant (sense) event; the returned stamp is
  /// what the caller must broadcast system-wide.
  ScalarStamp on_relevant_event();
  /// SSC2 — merge a received strobe; no local tick.
  void on_strobe(const ScalarStamp& strobe);

  ScalarStamp current() const { return {value_, pid_}; }
  ProcessId pid() const { return pid_; }

 private:
  std::uint64_t value_ = 0;
  ProcessId pid_;
};

}  // namespace psn::clocks
