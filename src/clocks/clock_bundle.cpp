#include "clocks/clock_bundle.hpp"

namespace psn::clocks {

ClockBundle::ClockBundle(ProcessId pid, std::size_t n,
                         ClockBundleConfig config, Rng rng)
    : pid_(pid),
      track_vectors_(config.track_vectors),
      lamport_(pid),
      // Lean mode: dimension-1 dummies that are never advanced nor read, so
      // a city-scale bundle costs O(1) instead of O(n) memory.
      vector_(track_vectors_ ? pid : 0, track_vectors_ ? n : 1),
      strobe_scalar_(pid),
      strobe_vector_(track_vectors_ ? pid : 0, track_vectors_ ? n : 1),
      drifting_(config.drifting, rng.substream("drift")),
      synced_(config.sync_epsilon, rng.substream("sync")) {}

void ClockBundle::on_internal_event() {
  lamport_.tick();
  if (track_vectors_) vector_.tick();
}

StrobeOut ClockBundle::on_sense_event() {
  lamport_.tick();  // SC1: a sense event is a local relevant event
  if (track_vectors_) vector_.tick();                    // VC1
  StrobeOut out;
  out.scalar = strobe_scalar_.on_relevant_event();       // SSC1
  if (track_vectors_) {
    out.vector = strobe_vector_.on_relevant_event();     // SVC1
  }
  return out;
}

PiggybackStamps ClockBundle::on_send() {
  PiggybackStamps stamps;
  stamps.lamport = lamport_.on_send();                       // SC2
  if (track_vectors_) stamps.causal_vector = vector_.on_send();  // VC2
  return stamps;
}

void ClockBundle::on_receive(const PiggybackStamps& stamps) {
  lamport_.on_receive(stamps.lamport);  // SC3
  if (track_vectors_) vector_.on_receive(stamps.causal_vector);  // VC3
}

void ClockBundle::on_strobe(const ScalarStamp& scalar,
                            const VectorStamp& vector) {
  strobe_scalar_.on_strobe(scalar);  // SSC2
  if (track_vectors_) strobe_vector_.on_strobe(vector);  // SVC2
}

ClockSnapshot ClockBundle::snapshot(SimTime true_time) {
  ClockSnapshot s;
  s.true_time = true_time;
  s.physical_local = drifting_.read(true_time);
  s.physical_synced = synced_.read(true_time);
  s.lamport = lamport_.current();
  s.strobe_scalar = strobe_scalar_.current();
  if (track_vectors_) {
    s.causal_vector = vector_.current();
    s.strobe_vector = strobe_vector_.current();
  }
  return s;
}

}  // namespace psn::clocks
