#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace psn::clocks {

/// Relation between two timestamps under a (partial or total) order.
enum class Ordering {
  kBefore,      ///< a < b
  kAfter,       ///< a > b
  kEqual,       ///< a == b
  kConcurrent,  ///< a || b (only possible under partial orders)
};

const char* to_string(Ordering o);

/// A scalar timestamp with its issuing process, totally ordered by
/// (value, pid) — the standard Lamport tie-break that turns the scalar
/// clock's partial consistency into a total order usable as a single time
/// axis (paper §3.2.1.a.iii).
struct ScalarStamp {
  std::uint64_t value = 0;
  ProcessId pid = kNoProcess;

  friend bool operator==(const ScalarStamp&, const ScalarStamp&) = default;
  friend bool operator<(const ScalarStamp& a, const ScalarStamp& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.pid < b.pid;
  }
  std::string to_string() const;
  /// Wire size in bytes (for message-overhead accounting, experiment E7):
  /// one 64-bit counter — O(1), independent of n.
  static std::size_t wire_size() { return sizeof(std::uint64_t); }
};

Ordering compare(const ScalarStamp& a, const ScalarStamp& b);

/// A vector timestamp: one component per process in P. Comparison yields the
/// standard partial order; `Concurrent` means neither dominates.
class VectorStamp {
 public:
  VectorStamp() = default;
  explicit VectorStamp(std::size_t n) : v_(n, 0) {}
  explicit VectorStamp(std::vector<std::uint64_t> v) : v_(std::move(v)) {}

  std::size_t size() const { return v_.size(); }
  std::uint64_t operator[](std::size_t i) const { return v_[i]; }
  std::uint64_t& operator[](std::size_t i) { return v_[i]; }
  const std::vector<std::uint64_t>& components() const { return v_; }

  /// Component-wise max into this (the merge step of VC3/SVC2).
  void merge(const VectorStamp& other);

  /// a ≤ b component-wise.
  bool dominated_by(const VectorStamp& other) const;

  friend bool operator==(const VectorStamp&, const VectorStamp&) = default;

  std::string to_string() const;
  /// Wire size in bytes: n 64-bit counters — O(n) (paper §4.2.2 contrasts
  /// this with the O(1) scalar strobe).
  std::size_t wire_size() const { return v_.size() * sizeof(std::uint64_t); }

 private:
  std::vector<std::uint64_t> v_;
};

Ordering compare(const VectorStamp& a, const VectorStamp& b);

/// True iff neither vector dominates the other (a race, in the paper's
/// terminology, when the stamps come from strobe clocks).
bool concurrent(const VectorStamp& a, const VectorStamp& b);

/// Happens-before under the vector-clock order: a → b.
bool happens_before(const VectorStamp& a, const VectorStamp& b);

}  // namespace psn::clocks
