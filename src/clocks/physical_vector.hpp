#pragma once

#include <cstddef>
#include <vector>

#include "clocks/physical.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace psn::clocks {

/// Physical (asynchronous) vector clock — paper §3.2.1.b.ii: "These vectors
/// use the monotonic physical (local) unsynchronized clocks of the processes
/// as the vector components. These seem an overkill to track causality, but
/// are useful when relating the locally observed wall times at different
/// locations, in the application predicate." (Also Appendix A.2.b: track
/// "the exact physical time of the occurrence of events at other processes
/// … that causally affect the current state".)
///
/// Component j of process i's vector is the latest local-clock reading of
/// process j known (causally) to i. Comparison of two stamps with the usual
/// component-wise dominance tracks causality exactly like a logical vector
/// clock — at the cost of carrying wall times.
class PhysicalVectorStamp {
 public:
  PhysicalVectorStamp() = default;
  explicit PhysicalVectorStamp(std::size_t n)
      : v_(n, SimTime::zero()) {}

  std::size_t size() const { return v_.size(); }
  SimTime operator[](std::size_t i) const { return v_[i]; }
  SimTime& operator[](std::size_t i) { return v_[i]; }

  void merge(const PhysicalVectorStamp& other);
  bool dominated_by(const PhysicalVectorStamp& other) const;
  friend bool operator==(const PhysicalVectorStamp&,
                         const PhysicalVectorStamp&) = default;

 private:
  std::vector<SimTime> v_;
};

class PhysicalVectorClock {
 public:
  /// `local` is this process's free-running hardware clock (not owned).
  PhysicalVectorClock(ProcessId pid, std::size_t n, DriftingClock& local);

  /// Local relevant event at true time `now`: own component advances to the
  /// local clock reading (strictly monotone even under read jitter).
  const PhysicalVectorStamp& tick(SimTime now);
  /// Send event: tick, then the current stamp is what gets piggybacked.
  const PhysicalVectorStamp& on_send(SimTime now) { return tick(now); }
  /// Receive: merge the incoming stamp, then tick.
  const PhysicalVectorStamp& on_receive(const PhysicalVectorStamp& incoming,
                                        SimTime now);

  const PhysicalVectorStamp& current() const { return v_; }
  ProcessId pid() const { return pid_; }

  /// The latest known local wall time of process j (the paper's example:
  /// "the physical time of the latest update to the versions of a file").
  SimTime known_time_of(ProcessId j) const { return v_[j]; }

 private:
  ProcessId pid_;
  DriftingClock& local_;
  PhysicalVectorStamp v_;
};

/// Causality comparison for physical vector stamps: same semantics as the
/// logical vector Ordering.
enum class PhysicalOrdering { kBefore, kAfter, kEqual, kConcurrent };
PhysicalOrdering compare(const PhysicalVectorStamp& a,
                         const PhysicalVectorStamp& b);

}  // namespace psn::clocks
