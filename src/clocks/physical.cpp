#include "clocks/physical.hpp"

#include "common/error.hpp"

namespace psn::clocks {

DriftingClock::DriftingClock(DriftingClockConfig config, Rng rng)
    : config_(config), rng_(rng) {
  PSN_CHECK(config_.read_jitter >= Duration::zero(),
            "read jitter must be non-negative");
}

SimTime DriftingClock::read_exact(SimTime t) const {
  const Duration drift =
      Duration::from_seconds(t.to_seconds() * config_.drift_ppm * 1e-6);
  return t + config_.initial_offset + drift + correction_;
}

SimTime DriftingClock::read(SimTime t) {
  SimTime exact = read_exact(t);
  if (config_.read_jitter > Duration::zero()) {
    exact += rng_.uniform_duration(-config_.read_jitter, config_.read_jitter);
  }
  return exact;
}

void DriftingClock::apply_correction(Duration adjustment) {
  correction_ += adjustment;
}

Duration DriftingClock::true_error_at(SimTime t) const {
  return read_exact(t) - t;
}

EpsSynchronizedClock::EpsSynchronizedClock(Duration epsilon, Rng rng)
    : epsilon_(epsilon), rng_(rng) {
  PSN_CHECK(epsilon_ >= Duration::zero(), "epsilon must be non-negative");
  if (epsilon_ == Duration::zero()) {
    offset_ = Duration::zero();
    jitter_range_ = Duration::zero();
  } else {
    // Fixed offset uses half the budget; per-read jitter the other half, so
    // |reading - t| <= eps always holds.
    const Duration half(epsilon_.count_nanos() / 2);
    offset_ = rng_.uniform_duration(-half, half);
    jitter_range_ = half;
  }
}

SimTime EpsSynchronizedClock::read(SimTime t) {
  Duration noise = offset_;
  if (jitter_range_ > Duration::zero()) {
    noise += rng_.uniform_duration(-jitter_range_, jitter_range_);
  }
  return t + noise;
}

}  // namespace psn::clocks
