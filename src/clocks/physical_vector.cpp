#include "clocks/physical_vector.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psn::clocks {

void PhysicalVectorStamp::merge(const PhysicalVectorStamp& other) {
  PSN_CHECK(v_.size() == other.v_.size(),
            "physical vector stamps of different dimension");
  for (std::size_t i = 0; i < v_.size(); ++i) {
    v_[i] = std::max(v_[i], other.v_[i]);
  }
}

bool PhysicalVectorStamp::dominated_by(
    const PhysicalVectorStamp& other) const {
  PSN_CHECK(v_.size() == other.v_.size(),
            "physical vector stamps of different dimension");
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] > other.v_[i]) return false;
  }
  return true;
}

PhysicalVectorClock::PhysicalVectorClock(ProcessId pid, std::size_t n,
                                         DriftingClock& local)
    : pid_(pid), local_(local), v_(n) {
  PSN_CHECK(pid < n, "physical vector clock pid out of dimension");
}

const PhysicalVectorStamp& PhysicalVectorClock::tick(SimTime now) {
  SimTime reading = local_.read(now);
  // Enforce strict monotonicity of the own component so two events at the
  // same process never share a stamp (read jitter could otherwise repeat or
  // regress a reading).
  if (reading <= v_[pid_]) reading = v_[pid_] + Duration::nanos(1);
  v_[pid_] = reading;
  return v_;
}

const PhysicalVectorStamp& PhysicalVectorClock::on_receive(
    const PhysicalVectorStamp& incoming, SimTime now) {
  v_.merge(incoming);
  return tick(now);
}

PhysicalOrdering compare(const PhysicalVectorStamp& a,
                         const PhysicalVectorStamp& b) {
  if (a == b) return PhysicalOrdering::kEqual;
  const bool ab = a.dominated_by(b);
  const bool ba = b.dominated_by(a);
  if (ab && !ba) return PhysicalOrdering::kBefore;
  if (ba && !ab) return PhysicalOrdering::kAfter;
  return PhysicalOrdering::kConcurrent;
}

}  // namespace psn::clocks
