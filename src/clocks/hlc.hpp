#pragma once

#include <cstdint>
#include <string>

#include "clocks/physical.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace psn::clocks {

/// Hybrid logical clock (Kulkarni/Demirbas et al.) — implements the paper's
/// "emerging areas" direction (Appendix A.2.d mentions massive-scale systems
/// that today use exactly this construction): a scalar timestamp that is
/// simultaneously (a) consistent with causality like a Lamport clock and
/// (b) within a bounded distance of physical time when the underlying
/// clocks are ε-synchronized and delays are Δ-bounded. It is the natural
/// middle point of the paper's design space between §3.2.1.a.ii (imperfect
/// physical) and §3.2.1.a.iii (logical scalar).
struct HlcStamp {
  SimTime l;           ///< logical wall-time component
  std::uint32_t c = 0; ///< logical counter for same-l causality

  friend bool operator==(const HlcStamp&, const HlcStamp&) = default;
  friend bool operator<(const HlcStamp& a, const HlcStamp& b) {
    if (a.l != b.l) return a.l < b.l;
    return a.c < b.c;
  }
  std::string to_string() const;
};

class HybridLogicalClock {
 public:
  /// `physical` is this process's (possibly imperfectly synchronized)
  /// physical clock; not owned.
  HybridLogicalClock(ProcessId pid, EpsSynchronizedClock& physical);

  /// Local/send event at true time `now`; returns the stamp to attach.
  HlcStamp tick(SimTime now);
  /// Receive event: merges the incoming stamp per the HLC rules.
  HlcStamp on_receive(const HlcStamp& incoming, SimTime now);

  HlcStamp current() const { return {l_, c_}; }
  ProcessId pid() const { return pid_; }

 private:
  ProcessId pid_;
  EpsSynchronizedClock& physical_;
  SimTime l_;
  std::uint32_t c_ = 0;
};

}  // namespace psn::clocks
