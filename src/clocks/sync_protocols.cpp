#include "clocks/sync_protocols.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace psn::clocks {

namespace {
constexpr std::size_t kTimestampBytes = 8;   // one 64-bit timestamp
constexpr std::size_t kHeaderBytes = 12;     // src, dst, kind

Duration draw_delay(const SyncLinkModel& link, Rng& rng) {
  Duration d = link.mean_delay;
  if (link.jitter > Duration::zero()) {
    d += rng.uniform_duration(-link.jitter, link.jitter);
  }
  return d < Duration::zero() ? Duration::zero() : d;
}
}  // namespace

Duration max_pairwise_skew(const std::vector<DriftingClock>& clocks,
                           SimTime t) {
  Duration worst = Duration::zero();
  for (std::size_t i = 0; i < clocks.size(); ++i) {
    for (std::size_t j = i + 1; j < clocks.size(); ++j) {
      const Duration d =
          (clocks[i].read_exact(t) - clocks[j].read_exact(t)).abs();
      worst = std::max(worst, d);
    }
  }
  return worst;
}

RbsSync::RbsSync(SyncLinkModel link, std::size_t rounds)
    : link_(link), rounds_(rounds) {
  PSN_CHECK(rounds_ > 0, "RBS needs at least one round");
}

SyncReport RbsSync::run(std::vector<DriftingClock>& clocks, SimTime when,
                        Rng& rng) {
  PSN_CHECK(clocks.size() >= 2, "sync needs at least two clocks");
  const std::size_t n = clocks.size();
  SyncReport report;

  // offset_estimate[i]: average over rounds of (L_i(arrival_i) −
  // L_0(arrival_0)) — node i's clock relative to node 0's, as observable
  // through common beacons.
  std::vector<double> offset_sum(n, 0.0);

  SimTime t = when;
  for (std::size_t r = 0; r < rounds_; ++r) {
    // Beacon broadcast (the beacon sender is a separate transmitter; its own
    // clock is irrelevant — that is the whole point of RBS).
    report.messages += 1;
    report.bytes += kHeaderBytes;  // beacon carries no timestamp

    // Common propagation component (cancels), plus per-receiver jitter
    // (does not cancel).
    const Duration common = draw_delay(link_, rng);
    std::vector<SimTime> arrival_local(n);
    for (std::size_t i = 0; i < n; ++i) {
      Duration recv_jitter = Duration::zero();
      if (link_.jitter > Duration::zero()) {
        recv_jitter = rng.uniform_duration(Duration::zero(), link_.jitter);
      }
      arrival_local[i] = clocks[i].read(t + common + recv_jitter);
    }
    // Receivers exchange arrival timestamps with node 0.
    report.messages += n - 1;
    report.bytes += (n - 1) * (kHeaderBytes + kTimestampBytes);

    for (std::size_t i = 1; i < n; ++i) {
      offset_sum[i] += (arrival_local[i] - arrival_local[0]).to_seconds();
    }
    t += Duration::millis(20);  // inter-beacon spacing
  }

  for (std::size_t i = 1; i < n; ++i) {
    const double mean_offset = offset_sum[i] / static_cast<double>(rounds_);
    clocks[i].apply_correction(-Duration::from_seconds(mean_offset));
  }

  const SimTime eval = t;
  for (std::size_t i = 1; i < n; ++i) {
    const Duration err =
        (clocks[i].read_exact(eval) - clocks[0].read_exact(eval)).abs();
    report.residual_error_ns.add(static_cast<double>(err.count_nanos()));
  }
  report.achieved_skew = max_pairwise_skew(clocks, eval);
  return report;
}

TpsnSync::TpsnSync(SyncLinkModel link, std::size_t rounds)
    : link_(link), rounds_(rounds) {
  PSN_CHECK(rounds_ > 0, "TPSN needs at least one round");
}

SyncReport TpsnSync::run(std::vector<DriftingClock>& clocks, SimTime when,
                         Rng& rng) {
  PSN_CHECK(clocks.size() >= 2, "sync needs at least two clocks");
  const std::size_t n = clocks.size();
  SyncReport report;

  SimTime t = when;
  for (std::size_t i = 1; i < n; ++i) {
    double offset_sum = 0.0;
    for (std::size_t r = 0; r < rounds_; ++r) {
      const SimTime send_true = t;
      const SimTime t1 = clocks[i].read(send_true);
      const Duration up = draw_delay(link_, rng);
      const SimTime t2 = clocks[0].read(send_true + up);
      const Duration turnaround = Duration::micros(200);
      const SimTime reply_true = send_true + up + turnaround;
      const SimTime t3 = clocks[0].read(reply_true);
      const Duration down = draw_delay(link_, rng);
      const SimTime t4 = clocks[i].read(reply_true + down);

      // offset of child relative to root; positive = child ahead.
      const double off =
          (((t1 - t2) + (t4 - t3)).to_seconds()) / 2.0;
      offset_sum += off;

      report.messages += 2;
      report.bytes += 2 * (kHeaderBytes + 2 * kTimestampBytes);
      t += Duration::millis(5);
    }
    clocks[i].apply_correction(
        -Duration::from_seconds(offset_sum / static_cast<double>(rounds_)));
  }

  const SimTime eval = t;
  for (std::size_t i = 1; i < n; ++i) {
    const Duration err =
        (clocks[i].read_exact(eval) - clocks[0].read_exact(eval)).abs();
    report.residual_error_ns.add(static_cast<double>(err.count_nanos()));
  }
  report.achieved_skew = max_pairwise_skew(clocks, eval);
  return report;
}

}  // namespace psn::clocks
