#pragma once

#include <cstddef>

#include "clocks/timestamp.hpp"
#include "common/types.hpp"

namespace psn::clocks {

/// Mattern/Fidge causality-tracking vector clock (paper §4.2.1, VC1–VC3).
///
/// VC1: local relevant event      → C[i] := C[i] + 1
/// VC2: send event                → C[i] := C[i] + 1; message carries C
/// VC3: receive with vector T     → C := max(C, T); C[i] := C[i] + 1
///
/// The induced partial order is isomorphic to happens-before over the
/// network-plane execution. Note the paper's warning (§4.2): this clock must
/// never be driven by strobe traffic, or it will record false causality —
/// strobe clocks are therefore a *separate* class (StrobeVectorClock).
class MatternVectorClock {
 public:
  MatternVectorClock(ProcessId pid, std::size_t n);

  /// VC1 — internal/sense/actuate event.
  VectorStamp tick();
  /// VC2 — returns the stamp to piggyback on the outgoing message.
  VectorStamp on_send();
  /// VC3 — merge then tick own component.
  VectorStamp on_receive(const VectorStamp& received);

  const VectorStamp& current() const { return v_; }
  ProcessId pid() const { return pid_; }
  std::size_t dimension() const { return v_.size(); }

 private:
  VectorStamp v_;
  ProcessId pid_;
};

}  // namespace psn::clocks
