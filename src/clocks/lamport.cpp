#include "clocks/lamport.hpp"

#include <algorithm>

namespace psn::clocks {

ScalarStamp LamportClock::tick() {
  value_++;
  return current();
}

ScalarStamp LamportClock::on_send() { return tick(); }

ScalarStamp LamportClock::on_receive(const ScalarStamp& received) {
  value_ = std::max(value_, received.value);
  value_++;
  return current();
}

}  // namespace psn::clocks
