#include "clocks/strobe_scalar.hpp"

#include <algorithm>

namespace psn::clocks {

ScalarStamp StrobeScalarClock::on_relevant_event() {
  value_++;
  return current();
}

void StrobeScalarClock::on_strobe(const ScalarStamp& strobe) {
  value_ = std::max(value_, strobe.value);
}

}  // namespace psn::clocks
