#include "clocks/timestamp.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psn::clocks {

const char* to_string(Ordering o) {
  switch (o) {
    case Ordering::kBefore: return "before";
    case Ordering::kAfter: return "after";
    case Ordering::kEqual: return "equal";
    case Ordering::kConcurrent: return "concurrent";
  }
  return "?";
}

std::string ScalarStamp::to_string() const {
  return std::to_string(value) + "@" + std::to_string(pid);
}

Ordering compare(const ScalarStamp& a, const ScalarStamp& b) {
  if (a == b) return Ordering::kEqual;
  return a < b ? Ordering::kBefore : Ordering::kAfter;
}

void VectorStamp::merge(const VectorStamp& other) {
  PSN_CHECK(v_.size() == other.v_.size(),
            "vector stamps of different dimension");
  for (std::size_t i = 0; i < v_.size(); ++i) {
    v_[i] = std::max(v_[i], other.v_[i]);
  }
}

bool VectorStamp::dominated_by(const VectorStamp& other) const {
  PSN_CHECK(v_.size() == other.v_.size(),
            "vector stamps of different dimension");
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] > other.v_[i]) return false;
  }
  return true;
}

std::string VectorStamp::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(v_[i]);
  }
  out += "]";
  return out;
}

Ordering compare(const VectorStamp& a, const VectorStamp& b) {
  if (a == b) return Ordering::kEqual;
  const bool ab = a.dominated_by(b);
  const bool ba = b.dominated_by(a);
  if (ab && !ba) return Ordering::kBefore;
  if (ba && !ab) return Ordering::kAfter;
  return Ordering::kConcurrent;
}

bool concurrent(const VectorStamp& a, const VectorStamp& b) {
  return compare(a, b) == Ordering::kConcurrent;
}

bool happens_before(const VectorStamp& a, const VectorStamp& b) {
  return compare(a, b) == Ordering::kBefore;
}

}  // namespace psn::clocks
