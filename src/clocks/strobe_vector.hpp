#pragma once

#include <cstddef>

#include "clocks/timestamp.hpp"
#include "common/types.hpp"

namespace psn::clocks {

/// Strobe vector clock (paper §4.2.1, rules SVC1–SVC2; Kshemkalyani 2010).
///
/// SVC1: process i senses a relevant event →
///         C[i] := C[i] + 1; System-wide broadcast of C
/// SVC2: process i receives a strobe T     →
///         ∀k: C[k] := max(C[k], T[k])     (no tick of C[i]!)
///
/// The strobes induce an artificial, run-time-determined partial order whose
/// purpose is to *simulate the single time axis* for observing world-plane
/// events (paper §4.2.4): every sensed change is strobed, so concurrent
/// (vector-incomparable) sense events are exactly the races within Δ.
class StrobeVectorClock {
 public:
  StrobeVectorClock(ProcessId pid, std::size_t n);

  /// SVC1 — tick own component; the returned stamp must be broadcast.
  VectorStamp on_relevant_event();
  /// SVC2 — merge a received strobe; no local tick.
  void on_strobe(const VectorStamp& strobe);

  const VectorStamp& current() const { return v_; }
  ProcessId pid() const { return pid_; }
  std::size_t dimension() const { return v_.size(); }

 private:
  VectorStamp v_;
  ProcessId pid_;
};

}  // namespace psn::clocks
