#include "clocks/vector_clock.hpp"

#include "common/error.hpp"

namespace psn::clocks {

MatternVectorClock::MatternVectorClock(ProcessId pid, std::size_t n)
    : v_(n), pid_(pid) {
  PSN_CHECK(pid < n, "vector clock pid out of dimension");
}

VectorStamp MatternVectorClock::tick() {
  v_[pid_]++;
  return v_;
}

VectorStamp MatternVectorClock::on_send() { return tick(); }

VectorStamp MatternVectorClock::on_receive(const VectorStamp& received) {
  v_.merge(received);
  v_[pid_]++;
  return v_;
}

}  // namespace psn::clocks
