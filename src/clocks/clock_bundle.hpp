#pragma once

#include <cstddef>

#include "clocks/lamport.hpp"
#include "clocks/physical.hpp"
#include "clocks/strobe_scalar.hpp"
#include "clocks/strobe_vector.hpp"
#include "clocks/vector_clock.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace psn::clocks {

/// All clock readings of one process at one instant. Every recorded event in
/// a run snapshots the full bundle, so one simulated execution can be scored
/// under every time model side by side (paired comparison; DESIGN.md §6.2).
struct ClockSnapshot {
  SimTime true_time;            ///< ground truth (not observable by nodes)
  SimTime physical_local;       ///< free-running drifting clock reading
  SimTime physical_synced;      ///< ε-synchronized service reading
  ScalarStamp lamport;
  VectorStamp causal_vector;
  ScalarStamp strobe_scalar;
  VectorStamp strobe_vector;
};

/// The strobe values a process must broadcast after a relevant (sense) event
/// — rules SSC1 and SVC1 fire together since we run both protocols on the
/// same execution for comparison.
struct StrobeOut {
  ScalarStamp scalar;
  VectorStamp vector;
};

/// Stamps piggybacked on a computation (semantic) message — SC2/VC2.
struct PiggybackStamps {
  ScalarStamp lamport;
  VectorStamp causal_vector;
};

struct ClockBundleConfig {
  DriftingClockConfig drifting;
  /// ε bound of the synchronized-clock service available to this node.
  Duration sync_epsilon = Duration::micros(100);
  /// When false, the O(n)-sized vector clocks (causal and strobe) are not
  /// tracked: they are constructed at dimension 1 and never advanced, and
  /// snapshots/strobes carry empty VectorStamps. At city scale (10^5
  /// processes) the vectors alone would cost ~80 kB *per process per
  /// snapshot* — this switch is what makes such runs feasible. Scalar,
  /// physical, and synced clocks are unaffected; detectors that need
  /// vectors must be skipped (analysis does).
  bool track_vectors = true;
};

/// One process's complete clock state, with the paper's separation enforced
/// by construction (§4.2): the causality-tracking Lamport/Mattern clocks are
/// advanced only by semantic events and computation messages; the strobe
/// clocks only by sense events and strobe control messages. Feeding a strobe
/// into the causal clocks would manufacture false causality — there is simply
/// no API path that does it.
class ClockBundle {
 public:
  ClockBundle(ProcessId pid, std::size_t n, ClockBundleConfig config, Rng rng);

  /// Internal compute (c) or actuate (a) event: advances the causal clocks
  /// only (strobe clocks tick only at *sensed* events — SSC1/SVC1).
  void on_internal_event();

  /// Sense (n) event: advances causal clocks (it is a local relevant event)
  /// and the strobe clocks; returns the strobes to broadcast.
  StrobeOut on_sense_event();

  /// Send (s) of a computation message: SC2/VC2; returns piggyback stamps.
  PiggybackStamps on_send();

  /// Receive (r) of a computation message: SC3/VC3.
  void on_receive(const PiggybackStamps& stamps);

  /// Receipt of a strobe control message: SSC2/SVC2 (no local tick, and the
  /// causal clocks are untouched).
  void on_strobe(const ScalarStamp& scalar, const VectorStamp& vector);

  ClockSnapshot snapshot(SimTime true_time);

  ProcessId pid() const { return pid_; }
  const LamportClock& lamport() const { return lamport_; }
  const MatternVectorClock& causal_vector() const { return vector_; }
  const StrobeScalarClock& strobe_scalar() const { return strobe_scalar_; }
  const StrobeVectorClock& strobe_vector() const { return strobe_vector_; }
  DriftingClock& drifting() { return drifting_; }
  EpsSynchronizedClock& synced() { return synced_; }

  bool tracks_vectors() const { return track_vectors_; }

 private:
  ProcessId pid_;
  bool track_vectors_;
  LamportClock lamport_;
  MatternVectorClock vector_;
  StrobeScalarClock strobe_scalar_;
  StrobeVectorClock strobe_vector_;
  DriftingClock drifting_;
  EpsSynchronizedClock synced_;
};

}  // namespace psn::clocks
