#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "world/world_model.hpp"

namespace psn::world {

/// When the next attribute change happens. Implementations are the stochastic
/// processes the paper's viability condition speaks about: "the rate of
/// occurrence of sensed events is comparatively low [relative to Δ]" (§3.3).
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual Duration next_gap(Rng& rng) = 0;
  /// Long-run mean rate in events/second (for reporting).
  virtual double mean_rate() const = 0;
};

/// Memoryless arrivals at a fixed rate (events/second).
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_per_second);
  Duration next_gap(Rng& rng) override;
  double mean_rate() const override { return rate_; }

 private:
  double rate_;
};

/// Fixed period with optional uniform jitter in [-jitter, +jitter].
class PeriodicArrivals final : public ArrivalProcess {
 public:
  explicit PeriodicArrivals(Duration period, Duration jitter = Duration::zero());
  Duration next_gap(Rng& rng) override;
  double mean_rate() const override;

 private:
  Duration period_;
  Duration jitter_;
};

/// Two-state Markov-modulated Poisson process: alternates between a quiet
/// rate and a burst rate, with exponentially distributed dwell times. Models
/// e.g. crowd surges through exhibition-hall doors.
class BurstyArrivals final : public ArrivalProcess {
 public:
  BurstyArrivals(double quiet_rate, double burst_rate, Duration mean_quiet_dwell,
                 Duration mean_burst_dwell);
  Duration next_gap(Rng& rng) override;
  double mean_rate() const override;

 private:
  double quiet_rate_, burst_rate_;
  Duration mean_quiet_dwell_, mean_burst_dwell_;
  bool bursting_ = false;
  Duration dwell_remaining_ = Duration::zero();
};

/// How the attribute's value evolves at each change.
class ValueProcess {
 public:
  virtual ~ValueProcess() = default;
  virtual AttributeValue next(const AttributeValue& current, Rng& rng) = 0;
};

/// Integer counter: +step per event (people entering through a door).
class CounterValue final : public ValueProcess {
 public:
  explicit CounterValue(std::int64_t step = 1) : step_(step) {}
  AttributeValue next(const AttributeValue& current, Rng& rng) override;

 private:
  std::int64_t step_;
};

/// Boolean flip (motion detected / cleared).
class ToggleValue final : public ValueProcess {
 public:
  AttributeValue next(const AttributeValue& current, Rng& rng) override;
};

/// Bounded random walk on a double (room temperature).
class RandomWalkValue final : public ValueProcess {
 public:
  RandomWalkValue(double max_step, double lo, double hi);
  AttributeValue next(const AttributeValue& current, Rng& rng) override;

 private:
  double max_step_, lo_, hi_;
};

/// Uniform choice from a fixed set of integer levels.
class ChoiceValue final : public ValueProcess {
 public:
  explicit ChoiceValue(std::vector<std::int64_t> levels);
  AttributeValue next(const AttributeValue& current, Rng& rng) override;

 private:
  std::vector<std::int64_t> levels_;
};

/// Drives one (object, attribute) pair: draws gaps from the arrival process
/// and values from the value process, emitting into the world model until the
/// simulation horizon. Create via WorldModel's simulation; call start() once.
class AttributeDriver {
 public:
  AttributeDriver(WorldModel& world, ObjectId object, std::string attribute,
                  std::unique_ptr<ArrivalProcess> arrivals,
                  std::unique_ptr<ValueProcess> values, Rng rng);

  void start();
  std::size_t events_emitted() const { return emitted_; }

 private:
  void schedule_next();
  void fire();

  WorldModel& world_;
  ObjectId object_;
  std::string attribute_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  std::unique_ptr<ValueProcess> values_;
  Rng rng_;
  std::size_t emitted_ = 0;
};

}  // namespace psn::world
