#pragma once

#include <optional>

#include "common/rng.hpp"
#include "world/world_model.hpp"

namespace psn::world {

/// Random-waypoint mobility for a world object (paper §2.1: "the objects in
/// O may be static or mobile (e.g., objects with RFID tags, animals with
/// embedded chips, humans)"). The object picks a uniform waypoint inside a
/// rectangle, walks toward it at a uniform-drawn speed, pauses, repeats.
/// Position is advanced in discrete ticks via WorldModel::move(), which
/// drives proximity sensing (core/proximity).
struct RandomWaypointConfig {
  double width = 100.0;   ///< field extent, meters
  double height = 100.0;
  double speed_min = 0.5;  ///< m/s — lifeform speeds, slow relative to Δ
  double speed_max = 2.0;
  Duration pause = Duration::seconds(2);
  Duration tick = Duration::millis(200);
};

class RandomWaypointMobility {
 public:
  RandomWaypointMobility(WorldModel& world, ObjectId object,
                         RandomWaypointConfig config, Rng rng);

  void start();

  double distance_travelled() const { return travelled_; }
  std::size_t waypoints_visited() const { return waypoints_; }

 private:
  void pick_waypoint();
  void step();

  WorldModel& world_;
  ObjectId object_;
  RandomWaypointConfig config_;
  Rng rng_;
  Point2D waypoint_;
  double speed_ = 1.0;
  double travelled_ = 0.0;
  std::size_t waypoints_ = 0;
  bool paused_ = false;
};

/// Deterministic patrol along a fixed cycle of waypoints at constant speed —
/// for tests and benchmarks that need reproducible coverage of sensor zones.
class PatrolMobility {
 public:
  PatrolMobility(WorldModel& world, ObjectId object,
                 std::vector<Point2D> waypoints, double speed,
                 Duration tick = Duration::millis(200));

  void start();

 private:
  void step();

  WorldModel& world_;
  ObjectId object_;
  std::vector<Point2D> waypoints_;
  double speed_;
  Duration tick_;
  std::size_t target_ = 0;
};

}  // namespace psn::world
