#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "common/sim_time.hpp"
#include "world/attribute.hpp"
#include "world/object.hpp"

namespace psn::world {

/// Index of a WorldEvent within its timeline.
using WorldEventIndex = std::size_t;
inline constexpr WorldEventIndex kNoWorldEvent =
    std::numeric_limits<std::size_t>::max();

/// A significant change of one attribute of one object, at one instant of
/// true physical time. This is the ground truth the network plane tries to
/// observe; it never carries a clock value of its own (objects are clockless).
struct WorldEvent {
  SimTime when;
  ObjectId object = kNoObject;
  std::string attribute;
  AttributeValue value;
  Point2D location;

  /// If this event was induced by another world event through a covert
  /// channel in C (paper §2.1), the index of that cause; kNoWorldEvent if the
  /// event is spontaneous. The network plane cannot observe this field — it
  /// exists so experiments can compare inferred causality against the truth.
  WorldEventIndex covert_cause = kNoWorldEvent;

  /// Sequence number assigned by the timeline on insertion.
  WorldEventIndex index = kNoWorldEvent;
};

}  // namespace psn::world
