#include "world/generators.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace psn::world {

PoissonArrivals::PoissonArrivals(double rate_per_second)
    : rate_(rate_per_second) {
  PSN_CHECK(rate_ > 0.0, "Poisson rate must be positive");
}

Duration PoissonArrivals::next_gap(Rng& rng) {
  return rng.exponential_gap(rate_);
}

PeriodicArrivals::PeriodicArrivals(Duration period, Duration jitter)
    : period_(period), jitter_(jitter) {
  PSN_CHECK(period_ > Duration::zero(), "period must be positive");
  PSN_CHECK(jitter_ >= Duration::zero() && jitter_ < period_,
            "jitter must be in [0, period)");
}

Duration PeriodicArrivals::next_gap(Rng& rng) {
  if (jitter_ == Duration::zero()) return period_;
  const Duration j = rng.uniform_duration(-jitter_, jitter_);
  const Duration gap = period_ + j;
  return gap < Duration::nanos(1) ? Duration::nanos(1) : gap;
}

double PeriodicArrivals::mean_rate() const {
  return 1.0 / period_.to_seconds();
}

BurstyArrivals::BurstyArrivals(double quiet_rate, double burst_rate,
                               Duration mean_quiet_dwell,
                               Duration mean_burst_dwell)
    : quiet_rate_(quiet_rate),
      burst_rate_(burst_rate),
      mean_quiet_dwell_(mean_quiet_dwell),
      mean_burst_dwell_(mean_burst_dwell) {
  PSN_CHECK(quiet_rate_ > 0.0 && burst_rate_ > 0.0, "rates must be positive");
  PSN_CHECK(mean_quiet_dwell_ > Duration::zero() &&
                mean_burst_dwell_ > Duration::zero(),
            "dwell times must be positive");
}

Duration BurstyArrivals::next_gap(Rng& rng) {
  Duration total = Duration::zero();
  for (;;) {
    if (dwell_remaining_ == Duration::zero()) {
      const Duration mean =
          bursting_ ? mean_burst_dwell_ : mean_quiet_dwell_;
      dwell_remaining_ = Duration::from_seconds(
          std::max(1e-9, rng.exponential(mean.to_seconds())));
    }
    const double rate = bursting_ ? burst_rate_ : quiet_rate_;
    const Duration candidate = rng.exponential_gap(rate);
    if (candidate <= dwell_remaining_) {
      dwell_remaining_ -= candidate;
      return total + candidate;
    }
    // The dwell period ended before the next arrival; switch state and
    // resample (memorylessness makes discarding the candidate valid).
    total += dwell_remaining_;
    dwell_remaining_ = Duration::zero();
    bursting_ = !bursting_;
  }
}

double BurstyArrivals::mean_rate() const {
  const double tq = mean_quiet_dwell_.to_seconds();
  const double tb = mean_burst_dwell_.to_seconds();
  return (quiet_rate_ * tq + burst_rate_ * tb) / (tq + tb);
}

AttributeValue CounterValue::next(const AttributeValue& current, Rng&) {
  return AttributeValue(current.is_int() ? current.as_int() + step_ : step_);
}

AttributeValue ToggleValue::next(const AttributeValue& current, Rng&) {
  return AttributeValue(current.is_bool() ? !current.as_bool() : true);
}

RandomWalkValue::RandomWalkValue(double max_step, double lo, double hi)
    : max_step_(max_step), lo_(lo), hi_(hi) {
  PSN_CHECK(max_step_ > 0.0, "random walk step must be positive");
  PSN_CHECK(lo_ < hi_, "random walk bounds inverted");
}

AttributeValue RandomWalkValue::next(const AttributeValue& current, Rng& rng) {
  const double cur = current.numeric();
  const double step = rng.uniform(-max_step_, max_step_);
  return AttributeValue(std::clamp(cur + step, lo_, hi_));
}

ChoiceValue::ChoiceValue(std::vector<std::int64_t> levels)
    : levels_(std::move(levels)) {
  PSN_CHECK(!levels_.empty(), "choice set must be non-empty");
}

AttributeValue ChoiceValue::next(const AttributeValue&, Rng& rng) {
  const auto i = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(levels_.size()) - 1));
  return AttributeValue(levels_[i]);
}

AttributeDriver::AttributeDriver(WorldModel& world, ObjectId object,
                                 std::string attribute,
                                 std::unique_ptr<ArrivalProcess> arrivals,
                                 std::unique_ptr<ValueProcess> values, Rng rng)
    : world_(world),
      object_(object),
      attribute_(std::move(attribute)),
      arrivals_(std::move(arrivals)),
      values_(std::move(values)),
      rng_(rng) {
  PSN_CHECK(arrivals_ != nullptr && values_ != nullptr,
            "driver needs arrival and value processes");
}

void AttributeDriver::start() { schedule_next(); }

void AttributeDriver::schedule_next() {
  const Duration gap = arrivals_->next_gap(rng_);
  world_.simulation().scheduler().schedule_after(gap, [this] { fire(); });
}

void AttributeDriver::fire() {
  const WorldObject& obj = world_.object(object_);
  const AttributeValue current = obj.has_attribute(attribute_)
                                     ? obj.attribute(attribute_)
                                     : AttributeValue();
  world_.emit(object_, attribute_, values_->next(current, rng_));
  emitted_++;
  schedule_next();
}

}  // namespace psn::world
