#include "world/scenarios.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace psn::world {

ExhibitionHall::ExhibitionHall(WorldModel& world, ExhibitionHallConfig config,
                               Rng rng)
    : world_(world), config_(config), rng_(rng) {
  PSN_CHECK(config_.doors > 0, "hall needs at least one door");
  PSN_CHECK(config_.capacity > 0, "capacity must be positive");
  PSN_CHECK(config_.movement_rate > 0.0, "movement rate must be positive");
  PSN_CHECK(config_.initial_occupancy >= 0, "initial occupancy negative");
  door_objects_.reserve(static_cast<std::size_t>(config_.doors));
  entered_.assign(static_cast<std::size_t>(config_.doors), 0);
  exited_.assign(static_cast<std::size_t>(config_.doors), 0);
  for (int k = 0; k < config_.doors; ++k) {
    const auto id = world_.create_object(
        config_.name_prefix + "_" + std::to_string(k),
        Point2D{static_cast<double>(k) * 10.0, 0.0});
    world_.object(id).set_attribute("entered", std::int64_t{0});
    world_.object(id).set_attribute("exited", std::int64_t{0});
    door_objects_.push_back(id);
  }
}

ObjectId ExhibitionHall::door_object(int k) const {
  PSN_CHECK(k >= 0 && k < config_.doors, "door index out of range");
  return door_objects_[static_cast<std::size_t>(k)];
}

void ExhibitionHall::start() {
  // Seed the initial crowd: spread entries uniformly over the doors at t=0
  // so detectors start from a consistent non-zero occupancy.
  for (int i = 0; i < config_.initial_occupancy; ++i) {
    const auto k = static_cast<std::size_t>(
        rng_.uniform_int(0, config_.doors - 1));
    entered_[k]++;
    world_.emit(door_objects_[k], "entered", entered_[k]);
  }
  occupancy_ = config_.initial_occupancy;
  schedule_next();
}

void ExhibitionHall::schedule_next() {
  const Duration gap = rng_.exponential_gap(config_.movement_rate);
  world_.simulation().scheduler().schedule_after(gap, [this] { movement(); });
}

void ExhibitionHall::movement() {
  // Entry probability is a logistic pull toward the target occupancy, so the
  // true occupancy keeps re-crossing the capacity threshold.
  const double deviation =
      (config_.target_occupancy - static_cast<double>(occupancy_)) /
      std::max(1.0, config_.target_occupancy);
  const double p_entry =
      std::clamp(0.5 + config_.pull * deviation, 0.05, 0.95);
  const bool entry = occupancy_ == 0 || rng_.bernoulli(p_entry);
  const auto k =
      static_cast<std::size_t>(rng_.uniform_int(0, config_.doors - 1));
  if (entry) {
    entered_[k]++;
    occupancy_++;
    world_.emit(door_objects_[k], "entered", entered_[k]);
  } else {
    exited_[k]++;
    occupancy_--;
    world_.emit(door_objects_[k], "exited", exited_[k]);
  }
  schedule_next();
}

SmartOffice::SmartOffice(WorldModel& world, SmartOfficeConfig config, Rng rng)
    : world_(world), config_(config) {
  PSN_CHECK(config_.rooms > 0, "office needs at least one room");
  for (int k = 0; k < config_.rooms; ++k) {
    const auto id = world_.create_object(
        "room_" + std::to_string(k),
        Point2D{0.0, static_cast<double>(k) * 5.0});
    world_.object(id).set_attribute("temp", 22.0);
    world_.object(id).set_attribute("occupied", false);
    room_objects_.push_back(id);

    drivers_.push_back(std::make_unique<AttributeDriver>(
        world_, id, "temp",
        std::make_unique<PoissonArrivals>(config_.temp_change_rate),
        std::make_unique<RandomWalkValue>(config_.temp_step, config_.temp_lo,
                                          config_.temp_hi),
        rng.substream("temp", static_cast<std::uint64_t>(k))));
    drivers_.push_back(std::make_unique<AttributeDriver>(
        world_, id, "occupied",
        std::make_unique<PoissonArrivals>(config_.motion_rate),
        std::make_unique<ToggleValue>(),
        rng.substream("motion", static_cast<std::uint64_t>(k))));
  }
}

ObjectId SmartOffice::room_object(int k) const {
  PSN_CHECK(k >= 0 && k < config_.rooms, "room index out of range");
  return room_objects_[static_cast<std::size_t>(k)];
}

void SmartOffice::start() {
  // Publish initial conditions as world events so sensors and the oracle
  // share a defined starting state.
  for (const auto id : room_objects_) {
    world_.emit(id, "temp", world_.object(id).attribute("temp"));
    world_.emit(id, "occupied", world_.object(id).attribute("occupied"));
  }
  for (const auto& d : drivers_) d->start();
}

HospitalWard::HospitalWard(WorldModel& world, HospitalWardConfig config,
                           Rng rng)
    : world_(world), config_(config) {
  ExhibitionHallConfig hall;
  hall.doors = config_.waiting_room_doors;
  hall.capacity = config_.waiting_room_capacity;
  hall.movement_rate = config_.movement_rate;
  hall.target_occupancy = config_.target_occupancy;
  hall.initial_occupancy = config_.initial_occupancy;
  hall.name_prefix = "waiting_door";
  waiting_room_ = std::make_unique<ExhibitionHall>(world_, hall,
                                                   rng.substream("waiting"));

  ward_ = world_.create_object("infectious_ward", Point2D{100.0, 0.0});
  world_.object(ward_).set_attribute("occupied", false);
  world_.object(ward_).set_attribute("restricted", true);

  drivers_.push_back(std::make_unique<AttributeDriver>(
      world_, ward_, "occupied",
      std::make_unique<PoissonArrivals>(config_.ward_visit_rate),
      std::make_unique<ToggleValue>(), rng.substream("ward_visits")));
  drivers_.push_back(std::make_unique<AttributeDriver>(
      world_, ward_, "restricted",
      std::make_unique<PoissonArrivals>(config_.restriction_toggle_rate),
      std::make_unique<ToggleValue>(), rng.substream("restriction")));
}

ObjectId HospitalWard::waiting_door_object(int k) const {
  return waiting_room_->door_object(k);
}

void HospitalWard::start() {
  waiting_room_->start();
  world_.emit(ward_, "occupied", world_.object(ward_).attribute("occupied"));
  world_.emit(ward_, "restricted",
              world_.object(ward_).attribute("restricted"));
  for (const auto& d : drivers_) d->start();
}

}  // namespace psn::world
