#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <string>

#include "world/attribute.hpp"

namespace psn::world {

using ObjectId = std::uint32_t;
inline constexpr ObjectId kNoObject = UINT32_MAX;

/// Planar location; sensors have a sensing radius over this plane.
struct Point2D {
  double x = 0.0;
  double y = 0.0;

  double distance_to(const Point2D& o) const {
    const double dx = x - o.x;
    const double dy = y - o.y;
    return std::sqrt(dx * dx + dy * dy);
  }
  bool operator==(const Point2D&) const = default;
};

/// A passive external-world object (paper §2.1: o ∈ O). It has attributes
/// that can be sensed/actuated by processes in P, but no clock of its own and
/// no network presence.
class WorldObject {
 public:
  WorldObject(ObjectId id, std::string name, Point2D location)
      : id_(id), name_(std::move(name)), location_(location) {}

  ObjectId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Point2D& location() const { return location_; }
  void move_to(const Point2D& p) { location_ = p; }

  bool has_attribute(const std::string& attr) const {
    return attrs_.contains(attr);
  }
  const AttributeValue& attribute(const std::string& attr) const;
  void set_attribute(const std::string& attr, AttributeValue value) {
    attrs_[attr] = value;
  }
  const std::map<std::string, AttributeValue>& attributes() const {
    return attrs_;
  }

 private:
  ObjectId id_;
  std::string name_;
  Point2D location_;
  std::map<std::string, AttributeValue> attrs_;
};

}  // namespace psn::world
