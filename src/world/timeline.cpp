#include "world/timeline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psn::world {

WorldEventIndex WorldTimeline::append(WorldEvent ev) {
  PSN_CHECK(events_.empty() || ev.when >= events_.back().when,
            "timeline events must be appended in time order");
  const WorldEventIndex idx = events_.size();
  ev.index = idx;
  per_variable_[{ev.object, ev.attribute}].push_back(idx);
  events_.push_back(std::move(ev));
  return idx;
}

const WorldEvent& WorldTimeline::at(WorldEventIndex i) const {
  PSN_CHECK(i < events_.size(), "world event index out of range");
  return events_[i];
}

std::optional<AttributeValue> WorldTimeline::value_at(
    ObjectId object, const std::string& attribute, SimTime t) const {
  const auto it = per_variable_.find({object, attribute});
  if (it == per_variable_.end()) return std::nullopt;
  const auto& hist = it->second;
  // Find last event with when <= t.
  auto pos = std::upper_bound(
      hist.begin(), hist.end(), t,
      [&](SimTime when, WorldEventIndex i) { return when < events_[i].when; });
  if (pos == hist.begin()) return std::nullopt;
  return events_[*std::prev(pos)].value;
}

std::vector<WorldEventIndex> WorldTimeline::history(
    ObjectId object, const std::string& attribute) const {
  const auto it = per_variable_.find({object, attribute});
  return it == per_variable_.end() ? std::vector<WorldEventIndex>{}
                                   : it->second;
}

bool WorldTimeline::covert_ancestor(WorldEventIndex a,
                                    WorldEventIndex b) const {
  PSN_CHECK(a < events_.size() && b < events_.size(),
            "world event index out of range");
  WorldEventIndex cur = b;
  while (cur != kNoWorldEvent) {
    if (cur == a) return true;
    cur = events_[cur].covert_cause;
  }
  return false;
}

}  // namespace psn::world
