#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/error.hpp"

namespace psn::world {

/// Value of one attribute of a world object. Objects in the world plane are
/// passive: they have no clocks; their attributes just change over (true)
/// physical time, and sensors observe those changes.
class AttributeValue {
 public:
  AttributeValue() : v_(std::int64_t{0}) {}
  AttributeValue(std::int64_t v) : v_(v) {}          // NOLINT implicit by design
  AttributeValue(int v) : v_(std::int64_t{v}) {}     // NOLINT
  AttributeValue(double v) : v_(v) {}                // NOLINT
  AttributeValue(bool v) : v_(v) {}                  // NOLINT

  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }

  std::int64_t as_int() const {
    PSN_CHECK(is_int(), "attribute is not an integer");
    return std::get<std::int64_t>(v_);
  }
  double as_double() const {
    PSN_CHECK(is_double(), "attribute is not a double");
    return std::get<double>(v_);
  }
  bool as_bool() const {
    PSN_CHECK(is_bool(), "attribute is not a bool");
    return std::get<bool>(v_);
  }

  /// Numeric view used by predicate evaluation: ints and doubles pass
  /// through; bools map to 0/1.
  double numeric() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
    if (is_double()) return std::get<double>(v_);
    return std::get<bool>(v_) ? 1.0 : 0.0;
  }

  bool operator==(const AttributeValue& o) const { return v_ == o.v_; }

  std::string to_string() const {
    if (is_int()) return std::to_string(as_int());
    if (is_bool()) return as_bool() ? "true" : "false";
    return std::to_string(as_double());
  }

 private:
  std::variant<std::int64_t, double, bool> v_;
};

}  // namespace psn::world
