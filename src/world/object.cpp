#include "world/object.hpp"

#include "common/error.hpp"

namespace psn::world {

const AttributeValue& WorldObject::attribute(const std::string& attr) const {
  const auto it = attrs_.find(attr);
  PSN_CHECK(it != attrs_.end(),
            "object '" + name_ + "' has no attribute '" + attr + "'");
  return it->second;
}

}  // namespace psn::world
