#include "world/mobility.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace psn::world {

namespace {

/// Advances `from` toward `to` by `dist`; returns the new point and whether
/// the target was reached.
std::pair<Point2D, bool> advance(const Point2D& from, const Point2D& to,
                                 double dist) {
  const double total = from.distance_to(to);
  if (total <= dist) return {to, true};
  const double f = dist / total;
  return {Point2D{from.x + (to.x - from.x) * f, from.y + (to.y - from.y) * f},
          false};
}

}  // namespace

RandomWaypointMobility::RandomWaypointMobility(WorldModel& world,
                                               ObjectId object,
                                               RandomWaypointConfig config,
                                               Rng rng)
    : world_(world), object_(object), config_(config), rng_(rng) {
  PSN_CHECK(config_.width > 0.0 && config_.height > 0.0,
            "mobility field must have positive extent");
  PSN_CHECK(config_.speed_min > 0.0 && config_.speed_min <= config_.speed_max,
            "mobility speeds invalid");
  PSN_CHECK(config_.tick > Duration::zero(), "mobility tick must be positive");
}

void RandomWaypointMobility::pick_waypoint() {
  waypoint_ = Point2D{rng_.uniform(0.0, config_.width),
                      rng_.uniform(0.0, config_.height)};
  speed_ = rng_.uniform(config_.speed_min, config_.speed_max);
  waypoints_++;
}

void RandomWaypointMobility::start() {
  pick_waypoint();
  world_.simulation().scheduler().schedule_after(config_.tick,
                                                 [this] { step(); });
}

void RandomWaypointMobility::step() {
  auto& sched = world_.simulation().scheduler();
  if (paused_) {
    paused_ = false;
    pick_waypoint();
    sched.schedule_after(config_.tick, [this] { step(); });
    return;
  }
  const Point2D here = world_.object(object_).location();
  const double dist = speed_ * config_.tick.to_seconds();
  const auto [next, arrived] = advance(here, waypoint_, dist);
  travelled_ += here.distance_to(next);
  world_.move(object_, next);
  if (arrived) {
    paused_ = true;
    sched.schedule_after(config_.pause, [this] { step(); });
  } else {
    sched.schedule_after(config_.tick, [this] { step(); });
  }
}

PatrolMobility::PatrolMobility(WorldModel& world, ObjectId object,
                               std::vector<Point2D> waypoints, double speed,
                               Duration tick)
    : world_(world),
      object_(object),
      waypoints_(std::move(waypoints)),
      speed_(speed),
      tick_(tick) {
  PSN_CHECK(!waypoints_.empty(), "patrol needs at least one waypoint");
  PSN_CHECK(speed_ > 0.0, "patrol speed must be positive");
  PSN_CHECK(tick_ > Duration::zero(), "patrol tick must be positive");
}

void PatrolMobility::start() {
  world_.simulation().scheduler().schedule_after(tick_, [this] { step(); });
}

void PatrolMobility::step() {
  const Point2D here = world_.object(object_).location();
  const double dist = speed_ * tick_.to_seconds();
  const auto [next, arrived] = advance(here, waypoints_[target_], dist);
  world_.move(object_, next);
  if (arrived) target_ = (target_ + 1) % waypoints_.size();
  world_.simulation().scheduler().schedule_after(tick_, [this] { step(); });
}

}  // namespace psn::world
