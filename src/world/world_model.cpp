#include "world/world_model.hpp"

#include <utility>

#include "common/error.hpp"

namespace psn::world {

ObjectId WorldModel::create_object(const std::string& name, Point2D location) {
  const auto id = static_cast<ObjectId>(objects_.size());
  objects_.emplace_back(id, name, location);
  return id;
}

WorldObject& WorldModel::object(ObjectId id) {
  PSN_CHECK(id < objects_.size(), "unknown world object id");
  return objects_[id];
}

const WorldObject& WorldModel::object(ObjectId id) const {
  PSN_CHECK(id < objects_.size(), "unknown world object id");
  return objects_[id];
}

void WorldModel::add_covert_channel(CovertChannelSpec spec) {
  PSN_CHECK(spec.from < objects_.size() && spec.to < objects_.size(),
            "covert channel endpoints must be existing objects");
  PSN_CHECK(spec.delay >= Duration::zero(), "covert channel delay negative");
  channels_.push_back(std::move(spec));
}

void WorldModel::move(ObjectId object_id, const Point2D& to) {
  WorldObject& obj = object(object_id);
  obj.move_to(to);
  for (const auto& sink : move_sinks_) sink(object_id, to);
}

WorldEventIndex WorldModel::emit(ObjectId object_id,
                                 const std::string& attribute,
                                 AttributeValue value,
                                 WorldEventIndex covert_cause) {
  WorldObject& obj = object(object_id);
  obj.set_attribute(attribute, value);

  WorldEvent ev;
  ev.when = sim_.now();
  ev.object = object_id;
  ev.attribute = attribute;
  ev.value = value;
  ev.location = obj.location();
  ev.covert_cause = covert_cause;
  const WorldEventIndex idx = timeline_.append(std::move(ev));

  // Sinks observe the recorded (indexed) event.
  const WorldEvent& recorded = timeline_.at(idx);
  for (const auto& sink : sinks_) sink(recorded);

  // Covert propagation: schedule induced changes. Captured by value so the
  // spec may be mutated/extended later without dangling.
  for (const auto& ch : channels_) {
    if (ch.from != object_id || ch.trigger_attribute != attribute) continue;
    const AttributeValue induced = ch.transform ? ch.transform(value) : value;
    const ObjectId to = ch.to;
    const std::string induced_attr = ch.induced_attribute;
    sim_.scheduler().schedule_after(ch.delay, [this, to, induced_attr, induced,
                                               idx] {
      emit(to, induced_attr, induced, /*covert_cause=*/idx);
    });
  }
  return idx;
}

}  // namespace psn::world
