#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "world/generators.hpp"
#include "world/world_model.hpp"

namespace psn::world {

/// Paper §5: a convention-center exhibition hall with `doors` entry-cum-exit
/// doors and a fire-code capacity. Each door k is a world object with two
/// counter attributes, "entered" and "exited"; the sensed variables are
/// x_k = entered, y_k = exited and the predicate of interest is
/// Σ(x_k − y_k) > capacity.
///
/// People movement is one stochastic process over the whole hall: movement
/// events arrive at `movement_rate`; each is an entry or an exit (entry
/// probability pulls the true occupancy toward `target_occupancy`, so the
/// predicate keeps crossing its threshold — the paper requires detecting
/// *each* occurrence, not just the first) through a uniformly chosen door.
struct ExhibitionHallConfig {
  int doors = 4;
  int capacity = 200;
  /// People movements (entry or exit) per second across all doors.
  double movement_rate = 20.0;
  /// Occupancy the crowd process hovers around; keep close to capacity.
  double target_occupancy = 200.0;
  int initial_occupancy = 190;
  /// Pull strength toward the target (0 = pure random walk).
  double pull = 2.0;
  /// Object-name prefix; door k is named "<prefix>_<k>".
  std::string name_prefix = "door";
};

class ExhibitionHall {
 public:
  ExhibitionHall(WorldModel& world, ExhibitionHallConfig config, Rng rng);

  /// Seeds initial occupancy (as entries spread over the doors at t=0) and
  /// schedules the movement process.
  void start();

  int doors() const { return config_.doors; }
  ObjectId door_object(int k) const;
  /// Ground-truth occupancy right now.
  int true_occupancy() const { return occupancy_; }
  const ExhibitionHallConfig& config() const { return config_; }

 private:
  void schedule_next();
  void movement();

  WorldModel& world_;
  ExhibitionHallConfig config_;
  Rng rng_;
  std::vector<ObjectId> door_objects_;
  std::vector<std::int64_t> entered_, exited_;
  int occupancy_ = 0;
};

/// Smart-office scenario (paper §3.1.1.b.i example): rooms with a temperature
/// random walk and a motion-driven occupancy toggle. Predicate of interest:
/// temp_i > threshold ∧ occupied_i (conjunctive, locally evaluable per room).
struct SmartOfficeConfig {
  int rooms = 2;
  double temp_change_rate = 2.0;      ///< temperature updates per second
  double temp_step = 1.5;             ///< max degrees per update
  double temp_lo = 18.0, temp_hi = 36.0;
  double motion_rate = 0.5;           ///< occupancy toggles per second
};

class SmartOffice {
 public:
  SmartOffice(WorldModel& world, SmartOfficeConfig config, Rng rng);
  void start();

  int rooms() const { return config_.rooms; }
  /// Room object k has attributes "temp" (double) and "occupied" (bool).
  ObjectId room_object(int k) const;

 private:
  WorldModel& world_;
  SmartOfficeConfig config_;
  std::vector<ObjectId> room_objects_;
  std::vector<std::unique_ptr<AttributeDriver>> drivers_;
};

/// Hospital scenario (paper §5): a waiting room monitored like the hall, plus
/// an infectious-diseases ward. Predicates of interest:
///   waiting-room overcrowding: Σ(x_k − y_k) > capacity, and
///   violation: visitor present in the ward while it is restricted —
///   occupied ∧ restricted (conjunctive, the §5 "raise alarms when a visitor
///   approaches a patient whom he is not visiting" flavor).
struct HospitalWardConfig {
  int waiting_room_doors = 2;
  int waiting_room_capacity = 30;
  double movement_rate = 4.0;
  double target_occupancy = 30.0;
  int initial_occupancy = 26;
  double ward_visit_rate = 0.2;  ///< ward occupancy toggles per second
  double restriction_toggle_rate = 0.05;
};

class HospitalWard {
 public:
  HospitalWard(WorldModel& world, HospitalWardConfig config, Rng rng);
  void start();

  ObjectId waiting_door_object(int k) const;
  int waiting_doors() const { return config_.waiting_room_doors; }
  /// Ward object: attributes "occupied" (bool), "restricted" (bool).
  ObjectId ward_object() const { return ward_; }

 private:
  WorldModel& world_;
  HospitalWardConfig config_;
  std::unique_ptr<ExhibitionHall> waiting_room_;  // reuse the crowd process
  ObjectId ward_ = kNoObject;
  std::vector<std::unique_ptr<AttributeDriver>> drivers_;
};

}  // namespace psn::world
