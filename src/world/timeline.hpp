#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "world/event.hpp"

namespace psn::world {

/// Append-only ground-truth record of every world event in true-time order.
///
/// The oracle (core/oracle) replays this to compute exactly when a global
/// predicate held, independent of any clock or message delay; detector output
/// is scored against that.
class WorldTimeline {
 public:
  /// Appends an event; `when` must be non-decreasing. Returns its index.
  WorldEventIndex append(WorldEvent ev);

  const std::vector<WorldEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const WorldEvent& at(WorldEventIndex i) const;

  /// Value of (object, attribute) as of time `t` (the last change at or
  /// before `t`), or nullopt if it never changed by then.
  std::optional<AttributeValue> value_at(ObjectId object,
                                         const std::string& attribute,
                                         SimTime t) const;

  /// All events touching (object, attribute), in time order.
  std::vector<WorldEventIndex> history(ObjectId object,
                                       const std::string& attribute) const;

  /// True-time causal ancestry through covert channels: is `a` an ancestor
  /// of `b` via the covert_cause chain?
  bool covert_ancestor(WorldEventIndex a, WorldEventIndex b) const;

 private:
  std::vector<WorldEvent> events_;
  // (object, attribute) -> indices of its change events, in time order.
  std::map<std::pair<ObjectId, std::string>, std::vector<WorldEventIndex>>
      per_variable_;
};

}  // namespace psn::world
