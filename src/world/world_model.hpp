#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "world/event.hpp"
#include "world/object.hpp"
#include "world/timeline.hpp"

namespace psn::world {

/// A covert (hidden) channel in the world-plane overlay C (paper §2.1):
/// when `trigger_attribute` of `from` changes, `induced_attribute` of `to`
/// changes `delay` later. The network plane cannot observe this channel; it
/// exists so that the world has true causality that detectors can be scored
/// against (paper §4.1: pen hand-offs, wind spreading fire, posted letters).
struct CovertChannelSpec {
  ObjectId from = kNoObject;
  std::string trigger_attribute;
  ObjectId to = kNoObject;
  std::string induced_attribute;
  Duration delay = Duration::millis(100);
  /// Maps the triggering value to the induced value; identity by default.
  std::function<AttributeValue(const AttributeValue&)> transform;
};

/// The world plane ⟨O, C⟩: a set of passive objects plus covert channels,
/// attached to a simulation. Attribute changes are *emitted* into the model;
/// the model updates the object, appends ground truth to the timeline,
/// notifies sinks (the sensing layer subscribes here), and fires covert
/// channels.
class WorldModel {
 public:
  explicit WorldModel(sim::Simulation& sim) : sim_(sim) {}

  ObjectId create_object(const std::string& name, Point2D location = {});
  WorldObject& object(ObjectId id);
  const WorldObject& object(ObjectId id) const;
  std::size_t num_objects() const { return objects_.size(); }

  void add_covert_channel(CovertChannelSpec spec);

  /// Observer of emitted world events. Sinks see events in emission order at
  /// the instant they happen (they model physical co-location of a sensor
  /// with the object, not network transmission).
  using Sink = std::function<void(const WorldEvent&)>;
  void add_sink(Sink sink) { sinks_.push_back(std::move(sink)); }

  /// Records a change of `attribute` of `object` to `value`, now.
  WorldEventIndex emit(ObjectId object, const std::string& attribute,
                       AttributeValue value,
                       WorldEventIndex covert_cause = kNoWorldEvent);

  /// Observer of object movement. Mobility models (world/mobility) call
  /// move(); proximity sensing (core/proximity) subscribes here. Movement is
  /// continuous physical state, not an attribute change, so it does not
  /// enter the event timeline by itself.
  using MoveSink = std::function<void(ObjectId, const Point2D&)>;
  void add_move_sink(MoveSink sink) { move_sinks_.push_back(std::move(sink)); }

  /// Relocates an object and notifies move sinks.
  void move(ObjectId object, const Point2D& to);

  const WorldTimeline& timeline() const { return timeline_; }
  sim::Simulation& simulation() { return sim_; }

 private:
  sim::Simulation& sim_;
  std::vector<WorldObject> objects_;
  std::vector<CovertChannelSpec> channels_;
  std::vector<Sink> sinks_;
  std::vector<MoveSink> move_sinks_;
  WorldTimeline timeline_;
};

}  // namespace psn::world
