#include "analysis/energy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psn::analysis {

namespace {
constexpr double kRadioBytesPerSecond = 250'000.0 / 8.0;  // 250 kbit/s
}

EnergyBreakdown fleet_energy(const EnergyModel& model, Duration duration,
                             std::size_t nodes, std::size_t bytes_sent,
                             std::size_t bytes_received,
                             const std::optional<net::DutyCycle>& duty) {
  PSN_CHECK(duration > Duration::zero(), "duration must be positive");
  PSN_CHECK(nodes > 0, "fleet must be non-empty");

  EnergyBreakdown e;
  e.tx_mj = model.tx_nj(bytes_sent) * 1e-6;
  e.rx_mj = model.rx_nj(bytes_received) * 1e-6;

  const double seconds = duration.to_seconds();
  const double awake_fraction = duty ? duty->duty_fraction() : 1.0;
  const double fleet_awake_s =
      seconds * awake_fraction * static_cast<double>(nodes);
  const double rx_busy_s =
      static_cast<double>(bytes_received) / kRadioBytesPerSecond;
  const double listen_s = std::max(0.0, fleet_awake_s - rx_busy_s);
  e.listen_mj = model.listen_mw * listen_s;  // mW × s = mJ

  const double fleet_sleep_s =
      seconds * (1.0 - awake_fraction) * static_cast<double>(nodes);
  e.sleep_mj = model.sleep_uw * 1e-3 * fleet_sleep_s;  // µW × s = µJ → mJ
  return e;
}

TrafficTotals strobe_traffic(const net::MessageStats& stats) {
  const auto& s = stats.of(net::MessageKind::kStrobe);
  TrafficTotals t;
  t.bytes_sent = s.bytes_sent;
  // Delivered fraction of the sent bytes is what receivers actually spent
  // energy on (drops are approximated as not received).
  t.bytes_received =
      s.sent ? s.bytes_sent * s.delivered / s.sent : 0;
  return t;
}

}  // namespace psn::analysis
