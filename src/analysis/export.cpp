#include "analysis/export.hpp"

namespace psn::analysis {

Table timeline_table(const world::WorldTimeline& timeline) {
  Table t({"time_s", "object", "attribute", "value", "covert_cause"});
  for (const auto& ev : timeline.events()) {
    t.row()
        .cell(ev.when.to_seconds(), 9)
        .cell(static_cast<std::int64_t>(ev.object))
        .cell(ev.attribute)
        .cell(ev.value.to_string())
        .cell(ev.covert_cause == world::kNoWorldEvent
                  ? std::int64_t{-1}
                  : static_cast<std::int64_t>(ev.covert_cause));
  }
  return t;
}

Table observation_table(const core::ObservationLog& log) {
  Table t({"delivered_s", "reporter", "attribute", "value", "sensed_s",
           "strobe_scalar", "strobe_vector"});
  for (const auto& u : log.updates) {
    t.row()
        .cell(u.delivered_at.to_seconds(), 9)
        .cell(static_cast<std::int64_t>(u.reporter))
        .cell(u.report.attribute)
        .cell(u.report.value.to_string())
        .cell(u.report.true_sense_time.to_seconds(), 9)
        .cell(u.report.strobe_scalar.to_string())
        .cell(u.report.strobe_vector.to_string());
  }
  return t;
}

Table detections_table(const std::vector<core::Detection>& detections) {
  Table t({"detected_s", "to_true", "borderline", "cause_s", "update_index"});
  for (const auto& d : detections) {
    t.row()
        .cell(d.detected_at.to_seconds(), 9)
        .cell(d.to_true ? "1" : "0")
        .cell(d.borderline ? "1" : "0")
        .cell(d.cause_true_time.to_seconds(), 9)
        .cell(d.update_index);
  }
  return t;
}

Table occurrences_table(const core::OracleResult& oracle) {
  Table t({"begin_s", "end_s", "duration_s"});
  for (const auto& occ : oracle.occurrences) {
    t.row()
        .cell(occ.begin.to_seconds(), 9)
        .cell(occ.end.to_seconds(), 9)
        .cell(occ.duration().to_seconds(), 9);
  }
  return t;
}

}  // namespace psn::analysis
