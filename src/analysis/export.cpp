#include "analysis/export.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "net/message.hpp"

namespace psn::analysis {

Table timeline_table(const world::WorldTimeline& timeline) {
  Table t({"time_s", "object", "attribute", "value", "covert_cause"});
  for (const auto& ev : timeline.events()) {
    t.row()
        .cell(ev.when.to_seconds(), 9)
        .cell(static_cast<std::int64_t>(ev.object))
        .cell(ev.attribute)
        .cell(ev.value.to_string())
        .cell(ev.covert_cause == world::kNoWorldEvent
                  ? std::int64_t{-1}
                  : static_cast<std::int64_t>(ev.covert_cause));
  }
  return t;
}

Table observation_table(const core::ObservationLog& log) {
  Table t({"delivered_s", "reporter", "attribute", "value", "sensed_s",
           "strobe_scalar", "strobe_vector"});
  for (const auto& u : log.updates) {
    t.row()
        .cell(u.delivered_at.to_seconds(), 9)
        .cell(static_cast<std::int64_t>(u.reporter))
        .cell(u.report.attribute)
        .cell(u.report.value.to_string())
        .cell(u.report.true_sense_time.to_seconds(), 9)
        .cell(u.report.strobe_scalar.to_string())
        .cell(u.report.strobe_vector.to_string());
  }
  return t;
}

Table detections_table(const std::vector<core::Detection>& detections) {
  Table t({"detected_s", "to_true", "borderline", "cause_s", "update_index"});
  for (const auto& d : detections) {
    t.row()
        .cell(d.detected_at.to_seconds(), 9)
        .cell(d.to_true ? "1" : "0")
        .cell(d.borderline ? "1" : "0")
        .cell(d.cause_true_time.to_seconds(), 9)
        .cell(d.update_index);
  }
  return t;
}

Table metrics_table(const MetricsSnapshot& snapshot) {
  return snapshot.table();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          // Integer hex escape — no float conversion, locale cannot touch
          // it. psn-lint: allow(psn-locale-safe-io)
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string format_chars(double v, std::chars_format fmt, int precision) {
  // Fixed notation of the largest double needs ~310 digits plus the
  // precision's fractional digits; 400 covers every caller.
  char buf[400];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v, fmt, precision);
  PSN_CHECK(res.ec == std::errc(), "to_chars: buffer too small");
  return std::string(buf, res.ptr);
}

}  // namespace

std::string json_fixed(double v, int precision) {
  return format_chars(v, std::chars_format::fixed, precision);
}

std::string json_general(double v, int precision) {
  return format_chars(v, std::chars_format::general, precision);
}

std::string trace_jsonl(const std::vector<sim::TraceRecord>& records) {
  std::string out;
  out.reserve(records.size() * 80);
  for (const sim::TraceRecord& r : records) {
    out += "{\"t\":";
    out += json_fixed(r.at.to_seconds(), 9);
    out += ",\"kind\":\"";
    out += sim::to_string(r.kind);
    out += "\",\"pid\":";
    out += std::to_string(r.pid);
    if (r.peer != kNoProcess) {
      out += ",\"peer\":";
      out += std::to_string(r.peer);
    }
    if (r.message_kind >= 0 &&
        r.message_kind <= static_cast<int>(net::MessageKind::kActuation)) {
      out += ",\"msg\":\"";
      out += net::to_string(static_cast<net::MessageKind>(r.message_kind));
      out += '"';
    }
    out += ",\"bytes\":";
    out += std::to_string(r.bytes);
    if (r.seq != 0) {
      out += ",\"seq\":";
      out += std::to_string(r.seq);
    }
    if (!r.note.empty()) {
      out += ",\"note\":\"";
      out += json_escape(r.note);
      out += '"';
    }
    out += "}\n";
  }
  return out;
}

void write_trace_jsonl(const std::vector<sim::TraceRecord>& records,
                       const std::string& path) {
  std::ofstream f(path);
  PSN_CHECK(f.good(), "cannot open trace output path: " + path);
  f << trace_jsonl(records);
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + std::to_string(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":";
    out += json_general(value, 9);
  }
  out += '}';
  return out;
}

Table occurrences_table(const core::OracleResult& oracle) {
  Table t({"begin_s", "end_s", "duration_s"});
  for (const auto& occ : oracle.occurrences) {
    t.row()
        .cell(occ.begin.to_seconds(), 9)
        .cell(occ.end.to_seconds(), 9)
        .cell(occ.duration().to_seconds(), 9);
  }
  return t;
}

}  // namespace psn::analysis
