#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/scoring.hpp"
#include "check/check.hpp"
#include "common/metrics.hpp"
#include "common/validated.hpp"
#include "core/system.hpp"
#include "net/transport.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"
#include "world/scenarios.hpp"

namespace psn::analysis {

/// The canonical experiment of the paper (§5 exhibition hall): d door
/// sensors, occupancy predicate Σ(entered_i − exited_i) > capacity, all four
/// online detectors scored against the oracle on the same run. Most benches
/// (E1, E2, E4, E6, E8, E9) are parameter sweeps over this.
struct OccupancyConfig {
  std::size_t doors = 2;
  int capacity = 200;
  /// Total people movements per second — the world-event rate λ the paper's
  /// viability condition compares against Δ.
  double movement_rate = 20.0;

  core::DelayKind delay_kind = core::DelayKind::kUniformBounded;
  Duration delta = Duration::millis(100);
  Duration sync_epsilon = Duration::micros(100);
  double loss_probability = 0.0;
  std::vector<net::ScheduledBurstLoss::Window> loss_windows;

  /// Optional Gilbert–Elliott burst-loss channel (stateful per transmission
  /// order; validate() rejects it with shards > 1 — use loss_windows for
  /// shard-stable bursts).
  std::optional<core::SystemConfig::GilbertElliottParams> gilbert_elliott;

  /// Deterministic fault plan (sim/fault, DESIGN.md §15): crash/restart
  /// windows, overlay partition windows, clock-fault drift spikes. The plan
  /// is validated against the topology when the system is built; every
  /// injected fault emits trace records, and with `check` on the audit
  /// attributes detector errors to the recorded faults.
  sim::FaultPlan faults;

  Duration horizon = Duration::seconds(60);
  std::uint64_t seed = 1;

  /// Optional receiver duty cycling for the door sensors (A3 ablation).
  std::optional<net::DutyCycle> duty_cycle;
  bool duty_phases_aligned = true;

  /// Clock mode charged on the wire (per-mode E7 byte accounting; see
  /// net::ClockMode). Detection always scores every model side by side.
  net::ClockMode clock_mode = net::ClockMode::kVectorStrobe;

  /// Kopetz-Steiner temporal validity horizon stamped on every observation
  /// (core::ValidityHorizon). Unbounded by default; when bounded, the
  /// incremental detector flags evaluations over expired state and the
  /// checker (config.check) runs the validity-horizon contract.
  core::ValidityHorizon validity_horizon;

  /// Event-trace ring capacity (records); 0 = tracing off. When on, the
  /// run's sense/send/receive/deliver/drop/detect records are returned in
  /// OccupancyRunResult::trace.
  std::size_t trace_capacity = 0;

  /// Runs the causality & clock-contract checker (check/check.hpp) over the
  /// finished run and, when the config admits it (lossless, Δ-bounded, no
  /// duty cycling), the Δ-race audit of every detector's errors. Tracing is
  /// required; if trace_capacity is 0 a default ring of 2^18 records is
  /// enabled. The report lands in OccupancyRunResult::check.
  bool check = false;

  /// Space partitions K for the sharded runner (DESIGN.md §14). Every run
  /// goes through core::ShardedPervasiveSystem; K = 1 is one shard with no
  /// window machinery (every delay kind works there). K > 1 needs a delay
  /// model with a positive minimum one-hop delay (kUniformBounded, kFixed)
  /// — validate() rejects the rest. Results are byte-identical at every K.
  std::size_t shards = 1;
  /// Worker threads for the per-window shard fan-out (1 = inline). Changes
  /// wall-clock time only, never results.
  std::size_t shard_threads = 1;
  /// Overlay topology. The city-scale scenario uses kStar (sensors report
  /// up to the mains-powered root).
  core::TopologyKind topology = core::TopologyKind::kComplete;
  /// Drops the O(n)-wide vector clocks (city scale: 10^5 processes make
  /// every snapshot O(n)). The strobe-vector detector is skipped — its
  /// stamps are inert — and combining with `check` is rejected (the checker
  /// replays vector stamps).
  bool lean_clocks = false;
  /// Sense reports go as one unicast to the root instead of the system-wide
  /// strobe broadcast (the city-scale star deployment; O(n) vs O(n^2)
  /// messages per world tick).
  bool unicast_reports = false;
  /// Per-channel FIFO (causal) delivery on the transport. Supported only
  /// unsharded; validate() rejects it with shards > 1.
  bool fifo_channels = false;

  /// Scoring tolerance; zero means "auto": 2Δ + 1 ms.
  Duration score_tolerance = Duration::zero();

  Duration effective_tolerance() const {
    if (score_tolerance > Duration::zero()) return score_tolerance;
    if (delta == Duration::max()) return Duration::seconds(2);
    return delta * 2 + Duration::millis(1);
  }
};

struct DetectorOutcome {
  std::string detector;
  std::vector<core::Detection> detections;
  DetectionScore score;
  /// Fraction of time the detector's belief matched ground truth
  /// (reaction-latency-charged).
  double belief_accuracy = 0.0;
};

struct OccupancyRunResult {
  core::OracleResult oracle;
  std::vector<DetectorOutcome> outcomes;
  net::MessageStats message_stats;
  std::size_t observed_updates = 0;
  std::size_t world_events = 0;
  Duration delta_bound;

  /// Snapshot of the run's MetricsRegistry: sim/net/world/detector counters
  /// (the sweep engine merges these per grid point, deterministically).
  MetricsSnapshot metrics;
  /// The run's event trace (empty unless config.trace_capacity > 0).
  std::vector<sim::TraceRecord> trace;
  /// Records the trace ring evicted; 0 means `trace` is complete.
  std::size_t trace_evicted = 0;

  /// Clock-contract + Δ-race-audit report (set iff config.check was on).
  std::optional<check::CheckReport> check;

  /// Δ-windows the sharded drive loop executed (0 when shards = 1) and the
  /// overlay edges cut by the partition. Diagnostics only — deliberately
  /// kept out of `metrics` so snapshots stay byte-identical across K.
  std::size_t shard_windows = 0;
  std::size_t shard_cut_edges = 0;

  const DetectorOutcome& outcome(const std::string& detector) const;
};

/// Rejects nonsensical configs (zero doors, negative rates or capacity,
/// Δ ≤ 0 under the bounded-delay model, horizon ≤ 0, loss outside [0, 1],
/// degenerate duty cycles) with ConfigError. Found by ADL from
/// `Validated<OccupancyConfig>`, which is how experiment entry points check
/// configs exactly once at the boundary.
void validate(const OccupancyConfig& config);

/// Builds the hall system, runs it, runs every online detector over the
/// observation log, and scores each against the oracle.
OccupancyRunResult run_occupancy_experiment(
    const Validated<OccupancyConfig>& config);
/// Convenience overload: validates (throwing ConfigError) and runs.
OccupancyRunResult run_occupancy_experiment(const OccupancyConfig& config);

/// Aggregate of several seeds of the same configuration.
struct AggregatedOutcome {
  DetectionScore score;          ///< counts summed across replications
  RunningStats belief_accuracy;  ///< per-replication accuracy samples
};

}  // namespace psn::analysis
