#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "common/table.hpp"

namespace psn::analysis {

/// One fully-resolved executable point of a sweep: a validated-ready config
/// (seed included) plus its coordinates in the grid. RunSpecs are what the
/// engine fans out across the thread pool; each is an independent simulation
/// (every `Simulation` derives all randomness from its own seed), so running
/// them concurrently cannot change any individual result.
struct RunSpec {
  OccupancyConfig config;
  std::size_t point = 0;        ///< grid-point index (row-major over axes)
  std::size_t replication = 0;  ///< replication index within the point
};

/// Merged outcome of one grid point: every detector's scores summed across
/// the point's replications, in seed order.
struct PointResult {
  /// The point's resolved parameters (seed = the first replication's seed).
  OccupancyConfig config;
  std::map<std::string, AggregatedOutcome> detectors;
  std::size_t world_events = 0;      ///< summed across replications
  std::size_t observed_updates = 0;  ///< summed across replications
  /// Per-run metric snapshots merged across the point's replications, in
  /// seed order — deterministic at any thread count, like the scores.
  MetricsSnapshot metrics;

  const AggregatedOutcome& at(const std::string& detector) const;
};

struct SweepResult {
  std::vector<PointResult> points;  ///< grid order, independent of completion
  std::size_t runs = 0;             ///< simulations executed (points × reps)
  unsigned threads_used = 1;
  double wall_seconds = 0.0;

  /// One row per (point, detector): the full confusion counts plus summary
  /// stats, deterministically ordered. Two sweeps of the same spec — at any
  /// thread count — must serialize identically; tests compare these bytes.
  Table summary_table() const;
  std::string csv() const { return summary_table().csv(); }

  /// One row per (point, metric), name-sorted within each point — the same
  /// byte-identical-at-any-thread-count guarantee as summary_table().
  Table metrics_table() const;
  std::string metrics_csv() const { return metrics_table().csv(); }
};

/// Builder for a config × seed grid, the single entry point for every
/// parameter-sweep experiment (the E1–E10/A1–A4 benches, the CLI, tests):
///
///   const auto result = analysis::sweep(base)
///                           .vary_doors({2, 4, 8})
///                           .vary_rate({1.0, 5.0, 20.0})
///                           .replications(8)
///                           .threads(0)  // 0 = one per hardware thread
///                           .run();
///
/// Axes combine as a cross product in declaration order, first axis slowest
/// (row-major) — exactly the nesting order of the hand-rolled loops this
/// replaces. Each point runs `replications` seeds (base seed, +1, …); the
/// engine fans every run out across a fixed thread pool and merges results
/// in grid order, so the output is byte-identical at every thread count.
class SweepSpec {
 public:
  /// An axis value: an edit applied to the base config to reach the point.
  using Mutator = std::function<void(OccupancyConfig&)>;

  SweepSpec() = default;
  explicit SweepSpec(OccupancyConfig base) : base_(std::move(base)) {}

  SweepSpec& base(OccupancyConfig cfg);
  SweepSpec& vary_doors(std::vector<std::size_t> doors);
  SweepSpec& vary_rate(std::vector<double> rates);
  SweepSpec& vary_delta(std::vector<Duration> deltas);
  SweepSpec& vary_capacity(std::vector<int> capacities);
  SweepSpec& vary_loss(std::vector<double> probabilities);
  SweepSpec& vary_sync_epsilon(std::vector<Duration> epsilons);
  /// Escape hatch for axes without a dedicated setter (delay kind, duty
  /// cycle, tolerance, …): each mutator is one value of the axis.
  SweepSpec& vary_custom(std::vector<Mutator> cases);

  /// Seeds per point: base.seed, base.seed + 1, … (default 1).
  SweepSpec& replications(std::size_t n);
  /// Worker threads; 0 (default) = one per hardware thread.
  SweepSpec& threads(unsigned n);

  /// The grid's resolved configs in row-major order, each validated
  /// (throws ConfigError on a nonsensical point — before anything runs).
  std::vector<OccupancyConfig> point_configs() const;
  /// The full flat run list: every point × every replication.
  std::vector<RunSpec> expand() const;

  SweepResult run() const;

 private:
  OccupancyConfig base_;
  std::vector<std::vector<Mutator>> axes_;
  std::size_t replications_ = 1;
  unsigned threads_ = 0;
};

SweepSpec sweep();
SweepSpec sweep(OccupancyConfig base);

/// Lower-level engine: runs every config across a fixed pool of `threads`
/// workers (0 = hardware) and returns the full per-run results **in input
/// order**. For experiments that need raw runs rather than merged scores
/// (e.g. E8's paired clean/lossy comparison). All configs are validated
/// before any simulation starts.
std::vector<OccupancyRunResult> run_specs(
    const std::vector<OccupancyConfig>& configs, unsigned threads = 0);

}  // namespace psn::analysis
