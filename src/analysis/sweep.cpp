#include "analysis/sweep.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/validated.hpp"

namespace psn::analysis {

const AggregatedOutcome& PointResult::at(const std::string& detector) const {
  const auto it = detectors.find(detector);
  PSN_CHECK(it != detectors.end(), "no outcome for detector: " + detector);
  return it->second;
}

Table SweepResult::summary_table() const {
  Table table({"point", "doors", "rate", "delta_ms", "loss", "detector",
               "occurrences", "TP", "FP", "FN", "borderline", "fn_covered",
               "recall", "recall_w_bin", "precision", "belief_mean",
               "belief_stddev", "latency_count", "latency_p50_ms"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    for (const auto& [name, agg] : p.detectors) {  // std::map: sorted, stable
      const auto& s = agg.score;
      table.row()
          .cell(i)
          .cell(p.config.doors)
          .cell(p.config.movement_rate, 3)
          .cell(p.config.delta == Duration::max() ? -1.0
                                                  : p.config.delta.to_millis(),
                3)
          .cell(p.config.loss_probability, 3)
          .cell(name)
          .cell(s.oracle_occurrences)
          .cell(s.true_positives)
          .cell(s.false_positives)
          .cell(s.false_negatives)
          .cell(s.borderline_detections)
          .cell(s.fn_covered_by_borderline)
          .cell(s.recall(), 6)
          .cell(s.recall_with_borderline(), 6)
          .cell(s.precision(), 6)
          .cell(agg.belief_accuracy.mean(), 6)
          .cell(agg.belief_accuracy.stddev(), 6)
          .cell(s.latency_s.count())
          .cell(s.latency_s.empty() ? 0.0 : s.latency_s.median() * 1e3, 6);
    }
  }
  return table;
}

Table SweepResult::metrics_table() const {
  Table table({"point", "name", "kind", "value"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Table point_metrics = points[i].metrics.table();
    for (std::size_t r = 0; r < point_metrics.num_rows(); ++r) {
      table.row()
          .cell(i)
          .cell(point_metrics.at(r, 0))
          .cell(point_metrics.at(r, 1))
          .cell(point_metrics.at(r, 2));
    }
  }
  return table;
}

SweepSpec& SweepSpec::base(OccupancyConfig cfg) {
  base_ = std::move(cfg);
  return *this;
}

SweepSpec& SweepSpec::vary_doors(std::vector<std::size_t> doors) {
  std::vector<Mutator> axis;
  for (const std::size_t d : doors) {
    axis.push_back([d](OccupancyConfig& c) { c.doors = d; });
  }
  return vary_custom(std::move(axis));
}

SweepSpec& SweepSpec::vary_rate(std::vector<double> rates) {
  std::vector<Mutator> axis;
  for (const double r : rates) {
    axis.push_back([r](OccupancyConfig& c) { c.movement_rate = r; });
  }
  return vary_custom(std::move(axis));
}

SweepSpec& SweepSpec::vary_delta(std::vector<Duration> deltas) {
  std::vector<Mutator> axis;
  for (const Duration d : deltas) {
    axis.push_back([d](OccupancyConfig& c) { c.delta = d; });
  }
  return vary_custom(std::move(axis));
}

SweepSpec& SweepSpec::vary_capacity(std::vector<int> capacities) {
  std::vector<Mutator> axis;
  for (const int cap : capacities) {
    axis.push_back([cap](OccupancyConfig& c) { c.capacity = cap; });
  }
  return vary_custom(std::move(axis));
}

SweepSpec& SweepSpec::vary_loss(std::vector<double> probabilities) {
  std::vector<Mutator> axis;
  for (const double p : probabilities) {
    axis.push_back([p](OccupancyConfig& c) { c.loss_probability = p; });
  }
  return vary_custom(std::move(axis));
}

SweepSpec& SweepSpec::vary_sync_epsilon(std::vector<Duration> epsilons) {
  std::vector<Mutator> axis;
  for (const Duration e : epsilons) {
    axis.push_back([e](OccupancyConfig& c) { c.sync_epsilon = e; });
  }
  return vary_custom(std::move(axis));
}

SweepSpec& SweepSpec::vary_custom(std::vector<Mutator> cases) {
  if (!cases.empty()) axes_.push_back(std::move(cases));
  return *this;
}

SweepSpec& SweepSpec::replications(std::size_t n) {
  if (n == 0) throw ConfigError("SweepSpec: need at least one replication");
  replications_ = n;
  return *this;
}

SweepSpec& SweepSpec::threads(unsigned n) {
  threads_ = n;
  return *this;
}

std::vector<OccupancyConfig> SweepSpec::point_configs() const {
  // Row-major cross product: the first-declared axis varies slowest, exactly
  // like the outermost loop of the hand-written sweeps this API replaces.
  std::vector<OccupancyConfig> configs{base_};
  for (const auto& axis : axes_) {
    std::vector<OccupancyConfig> next;
    next.reserve(configs.size() * axis.size());
    for (const OccupancyConfig& cfg : configs) {
      for (const Mutator& apply : axis) {
        OccupancyConfig c = cfg;
        apply(c);
        next.push_back(std::move(c));
      }
    }
    configs = std::move(next);
  }
  for (const OccupancyConfig& cfg : configs) {
    (void)Validated<OccupancyConfig>(cfg);  // throws ConfigError on nonsense
  }
  return configs;
}

std::vector<RunSpec> SweepSpec::expand() const {
  const std::vector<OccupancyConfig> configs = point_configs();
  std::vector<RunSpec> specs;
  specs.reserve(configs.size() * replications_);
  for (std::size_t p = 0; p < configs.size(); ++p) {
    for (std::size_t r = 0; r < replications_; ++r) {
      RunSpec spec;
      spec.config = configs[p];
      spec.config.seed = configs[p].seed + r;
      spec.point = p;
      spec.replication = r;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

SweepResult SweepSpec::run() const {
  const std::vector<OccupancyConfig> configs = point_configs();
  const std::vector<RunSpec> specs = expand();

  const auto t0 = std::chrono::steady_clock::now();
  ThreadPool pool(threads_);
  // Fan out every (point, replication) run; collect in submission order so
  // the merge below never observes completion order.
  const std::vector<OccupancyRunResult> runs = parallel_map(
      pool, specs,
      [](const RunSpec& spec) { return run_occupancy_experiment(spec.config); });
  const auto t1 = std::chrono::steady_clock::now();

  SweepResult result;
  result.runs = specs.size();
  result.threads_used = pool.size();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.points.resize(configs.size());
  for (std::size_t p = 0; p < configs.size(); ++p) {
    result.points[p].config = configs[p];
  }
  // Deterministic merge: flat run order is (point-major, seed order), the
  // exact order the old sequential loops accumulated in.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    PointResult& point = result.points[specs[i].point];
    point.world_events += runs[i].world_events;
    point.observed_updates += runs[i].observed_updates;
    point.metrics.merge(runs[i].metrics);
    for (const auto& out : runs[i].outcomes) {
      auto& agg = point.detectors[out.detector];
      agg.score += out.score;
      agg.belief_accuracy.add(out.belief_accuracy);
    }
  }
  return result;
}

SweepSpec sweep() { return SweepSpec(); }
SweepSpec sweep(OccupancyConfig base) { return SweepSpec(std::move(base)); }

std::vector<OccupancyRunResult> run_specs(
    const std::vector<OccupancyConfig>& configs, unsigned threads) {
  for (const OccupancyConfig& cfg : configs) {
    (void)Validated<OccupancyConfig>(cfg);
  }
  ThreadPool pool(threads);
  return parallel_map(pool, configs, [](const OccupancyConfig& cfg) {
    return run_occupancy_experiment(cfg);
  });
}

}  // namespace psn::analysis
