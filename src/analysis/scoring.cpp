#include "analysis/scoring.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psn::analysis {

double DetectionScore::precision() const {
  const std::size_t denom = true_positives + false_positives;
  return denom ? static_cast<double>(true_positives) /
                     static_cast<double>(denom)
               : 1.0;
}

double DetectionScore::recall() const {
  return oracle_occurrences ? static_cast<double>(true_positives) /
                                  static_cast<double>(oracle_occurrences)
                            : 1.0;
}

double DetectionScore::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double DetectionScore::recall_with_borderline() const {
  return oracle_occurrences
             ? static_cast<double>(true_positives + fn_covered_by_borderline) /
                   static_cast<double>(oracle_occurrences)
             : 1.0;
}

DetectionScore& DetectionScore::operator+=(const DetectionScore& other) {
  oracle_occurrences += other.oracle_occurrences;
  confident_detections += other.confident_detections;
  borderline_detections += other.borderline_detections;
  true_positives += other.true_positives;
  false_positives += other.false_positives;
  false_negatives += other.false_negatives;
  fn_covered_by_borderline += other.fn_covered_by_borderline;
  borderline_matched += other.borderline_matched;
  borderline_unmatched += other.borderline_unmatched;
  for (const double s : other.latency_s.samples()) latency_s.add(s);
  fp_cause_times.insert(fp_cause_times.end(), other.fp_cause_times.begin(),
                        other.fp_cause_times.end());
  fn_occurrence_times.insert(fn_occurrence_times.end(),
                             other.fn_occurrence_times.begin(),
                             other.fn_occurrence_times.end());
  return *this;
}

namespace {

struct TimedDetection {
  SimTime cause;
  SimTime detected;
};

/// Greedy in-order matching of two nondecreasing time sequences within a
/// tolerance. Returns per-target match flags and per-query match indices.
std::vector<std::ptrdiff_t> match_in_order(
    const std::vector<SimTime>& targets, const std::vector<TimedDetection>& qs,
    Duration tolerance, std::vector<bool>& target_matched) {
  std::vector<std::ptrdiff_t> match(qs.size(), -1);
  std::size_t t = 0;
  for (std::size_t q = 0; q < qs.size(); ++q) {
    // Advance past targets that are already matched or irrecoverably early.
    while (t < targets.size() &&
           (target_matched[t] || targets[t] + tolerance < qs[q].cause)) {
      t++;
    }
    if (t >= targets.size()) break;
    const Duration dist = (targets[t] - qs[q].cause).abs();
    if (dist <= tolerance) {
      target_matched[t] = true;
      match[q] = static_cast<std::ptrdiff_t>(t);
      t++;
    }
  }
  return match;
}

}  // namespace

DetectionScore score_detections(const core::OracleResult& oracle,
                                const std::vector<core::Detection>& detections,
                                const ScoreConfig& config) {
  DetectionScore score;

  std::vector<SimTime> starts;
  for (const auto& occ : oracle.occurrences) starts.push_back(occ.begin);
  score.oracle_occurrences = starts.size();

  std::vector<TimedDetection> confident, borderline;
  for (const auto& d : detections) {
    if (!d.to_true) continue;
    (d.borderline ? borderline : confident)
        .push_back({d.cause_true_time, d.detected_at});
  }
  auto by_cause = [](const TimedDetection& a, const TimedDetection& b) {
    return a.cause < b.cause;
  };
  std::sort(confident.begin(), confident.end(), by_cause);
  std::sort(borderline.begin(), borderline.end(), by_cause);
  score.confident_detections = confident.size();
  score.borderline_detections = borderline.size();

  std::vector<bool> matched(starts.size(), false);
  const auto conf_match =
      match_in_order(starts, confident, config.tolerance, matched);
  for (std::size_t q = 0; q < confident.size(); ++q) {
    if (conf_match[q] >= 0) {
      score.true_positives++;
      const auto t = static_cast<std::size_t>(conf_match[q]);
      score.latency_s.add((confident[q].detected - starts[t]).to_seconds());
    } else {
      score.false_positives++;
      score.fp_cause_times.push_back(confident[q].cause);
    }
  }

  for (std::size_t t = 0; t < starts.size(); ++t) {
    if (!matched[t]) score.fn_occurrence_times.push_back(starts[t]);
  }

  // Unmatched oracle starts: false negatives; see whether a borderline
  // detection covers them.
  const auto bord_match =
      match_in_order(starts, borderline, config.tolerance, matched);
  for (std::size_t q = 0; q < borderline.size(); ++q) {
    if (bord_match[q] >= 0) {
      score.borderline_matched++;
    } else {
      score.borderline_unmatched++;
    }
  }
  // An oracle start with no *confident* match is a false negative; if a
  // borderline detection covered it, it is a flagged (covered) one.
  score.false_negatives = starts.size() - score.true_positives;
  score.fn_covered_by_borderline = score.borderline_matched;

  return score;
}

double belief_accuracy(const core::OracleResult& oracle,
                       const std::vector<core::Detection>& detections,
                       SimTime horizon, bool use_detection_time) {
  // Build both truth signals as sorted transition lists and integrate the
  // agreement time with a two-pointer sweep.
  struct Edge {
    SimTime when;
    bool value;
  };
  std::vector<Edge> truth, belief;
  for (const auto& t : oracle.transitions) truth.push_back({t.when, t.to_true});
  for (const auto& d : detections) {
    belief.push_back(
        {use_detection_time ? d.detected_at : d.cause_true_time, d.to_true});
  }
  std::stable_sort(truth.begin(), truth.end(),
                   [](const Edge& a, const Edge& b) { return a.when < b.when; });
  std::stable_sort(belief.begin(), belief.end(),
                   [](const Edge& a, const Edge& b) { return a.when < b.when; });

  bool tv = false, bv = false;
  SimTime cur = SimTime::zero();
  Duration agree = Duration::zero();
  std::size_t ti = 0, bi = 0;
  while (cur < horizon) {
    SimTime next = horizon;
    if (ti < truth.size()) next = std::min(next, truth[ti].when);
    if (bi < belief.size()) next = std::min(next, belief[bi].when);
    if (next > cur && tv == bv) agree += next - cur;
    cur = next;
    while (ti < truth.size() && truth[ti].when == cur) tv = truth[ti++].value;
    while (bi < belief.size() && belief[bi].when == cur) bv = belief[bi++].value;
    if (cur == horizon) break;
  }
  const Duration total = horizon - SimTime::zero();
  return total > Duration::zero() ? agree.to_seconds() / total.to_seconds()
                                  : 1.0;
}

}  // namespace psn::analysis
