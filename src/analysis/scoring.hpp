#pragma once

#include <cstddef>
#include <vector>

#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "core/detectors.hpp"
#include "core/oracle.hpp"

namespace psn::analysis {

/// Matching policy for scoring a detector's became-true reports against the
/// oracle's occurrence starts.
struct ScoreConfig {
  /// A detection matches an oracle occurrence start if their true-time
  /// distance is within this tolerance. Use ~Δ plus a small margin: a correct
  /// detector cannot be more punctual than the message delay.
  Duration tolerance = Duration::millis(500);
};

/// Confusion counts of one detector run against ground truth. Borderline
/// detections (the vector-strobe race bin) are accounted separately so the
/// paper's claim — "false positives and most false negatives land in the
/// borderline bin" (§5) — is directly measurable.
struct DetectionScore {
  std::size_t oracle_occurrences = 0;
  std::size_t confident_detections = 0;
  std::size_t borderline_detections = 0;

  std::size_t true_positives = 0;    ///< confident, matched
  std::size_t false_positives = 0;   ///< confident, unmatched
  std::size_t false_negatives = 0;   ///< oracle start with no confident match
  /// Of the false negatives, how many had a borderline detection within
  /// tolerance (the race was at least flagged).
  std::size_t fn_covered_by_borderline = 0;
  /// Borderline detections that matched a real occurrence (correct but
  /// hedged) vs not (would-be false positives, successfully quarantined).
  std::size_t borderline_matched = 0;
  std::size_t borderline_unmatched = 0;

  /// detected_at − occurrence start, seconds, for matched confident pairs.
  SampleSet latency_s;

  /// Cause true times of the confident false positives, and occurrence start
  /// times of the false negatives — the inputs of the Δ-race audit
  /// (check/race_scan.hpp), which demands a race to blame for each.
  std::vector<SimTime> fp_cause_times;
  std::vector<SimTime> fn_occurrence_times;

  double precision() const;
  double recall() const;
  double f1() const;
  /// Recall when borderline detections are treated as positives — the
  /// "err on the safe side" reading of the borderline bin (§5).
  double recall_with_borderline() const;

  /// Accumulates counts across replications (latency samples concatenate).
  DetectionScore& operator+=(const DetectionScore& other);
};

/// Greedy in-order matching of became-true detections to oracle occurrence
/// starts on the true-time axis (DESIGN.md §6.5). Confident detections are
/// matched first; leftover oracle starts then try the borderline pool.
DetectionScore score_detections(const core::OracleResult& oracle,
                                const std::vector<core::Detection>& detections,
                                const ScoreConfig& config);

/// Fraction of [0, horizon) during which the detector's belief about φ
/// equalled ground truth. `use_detection_time` charges reaction latency
/// (belief changes at detected_at); false compares pure orderings (belief
/// changes at the causing sense time).
double belief_accuracy(const core::OracleResult& oracle,
                       const std::vector<core::Detection>& detections,
                       SimTime horizon, bool use_detection_time = true);

}  // namespace psn::analysis
