#pragma once

#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/detectors.hpp"
#include "core/observation.hpp"
#include "core/oracle.hpp"
#include "sim/trace.hpp"
#include "world/timeline.hpp"

namespace psn::analysis {

/// CSV/Table exporters for the run artifacts — the interchange layer a user
/// needs to plot results or post-process detections outside C++. All
/// exporters return a Table (ASCII-renderable, CSV-writable via
/// Table::write_csv / Table::csv).

/// Ground-truth world events: time_s, object, attribute, value,
/// covert_cause (-1 if spontaneous).
Table timeline_table(const world::WorldTimeline& timeline);

/// The root's observation log: delivered_s, reporter, attribute, value,
/// sensed_s, scalar stamp, vector stamp.
Table observation_table(const core::ObservationLog& log);

/// A detector's transition stream: detected_s, to_true, borderline,
/// cause_s, update_index.
Table detections_table(const std::vector<core::Detection>& detections);

/// Oracle occurrences: begin_s, end_s, duration_s.
Table occurrences_table(const core::OracleResult& oracle);

/// Metric snapshot rows: name, kind, value (stats/histograms render compact
/// summaries). Same rows as MetricsSnapshot::table(); exported here so the
/// interchange layer is one include.
Table metrics_table(const MetricsSnapshot& snapshot);

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, and control characters; no surrounding quotes added).
std::string json_escape(const std::string& s);

/// Locale-independent "%.<precision>f" — JSON number fields must always use
/// '.' as the decimal point, but printf honors LC_NUMERIC (a comma-decimal
/// locale would corrupt the wire format). Implemented on std::to_chars,
/// which is specified as printf-in-the-C-locale, so output bytes match the
/// old snprintf path exactly when the locale is sane.
std::string json_fixed(double v, int precision);

/// Locale-independent "%.<precision>g", same rationale.
std::string json_general(double v, int precision);

/// Serializes trace records as JSON Lines, one object per record:
///   {"t":1.25,"kind":"send","pid":3,"peer":0,"msg":"strobe","bytes":57}
/// `msg` carries the net::MessageKind name (omitted for non-message
/// records); `note` appears when non-empty (sense attribute, detector name).
std::string trace_jsonl(const std::vector<sim::TraceRecord>& records);
void write_trace_jsonl(const std::vector<sim::TraceRecord>& records,
                       const std::string& path);

/// One compact JSON object of a snapshot's counters and gauges (name-sorted,
/// no trailing newline) for streaming emitters — the soak server's periodic
/// metrics lines. Stats and histograms render via metrics_table instead.
std::string metrics_json(const MetricsSnapshot& snapshot);

}  // namespace psn::analysis
