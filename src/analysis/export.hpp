#pragma once

#include <string>

#include "common/table.hpp"
#include "core/detectors.hpp"
#include "core/observation.hpp"
#include "core/oracle.hpp"
#include "world/timeline.hpp"

namespace psn::analysis {

/// CSV/Table exporters for the run artifacts — the interchange layer a user
/// needs to plot results or post-process detections outside C++. All
/// exporters return a Table (ASCII-renderable, CSV-writable via
/// Table::write_csv / Table::csv).

/// Ground-truth world events: time_s, object, attribute, value,
/// covert_cause (-1 if spontaneous).
Table timeline_table(const world::WorldTimeline& timeline);

/// The root's observation log: delivered_s, reporter, attribute, value,
/// sensed_s, scalar stamp, vector stamp.
Table observation_table(const core::ObservationLog& log);

/// A detector's transition stream: detected_s, to_true, borderline,
/// cause_s, update_index.
Table detections_table(const std::vector<core::Detection>& detections);

/// Oracle occurrences: begin_s, end_s, duration_s.
Table occurrences_table(const core::OracleResult& oracle);

}  // namespace psn::analysis
