#include "analysis/experiments.hpp"

#include <utility>

#include "common/error.hpp"
#include "core/detectors.hpp"
#include "core/oracle.hpp"
#include "core/predicate_parser.hpp"

namespace psn::analysis {

const DetectorOutcome& OccupancyRunResult::outcome(
    const std::string& detector) const {
  for (const auto& o : outcomes) {
    if (o.detector == detector) return o;
  }
  PSN_CHECK(false, "no outcome for detector: " + detector);
  return outcomes.front();
}

OccupancyRunResult run_occupancy_experiment(const OccupancyConfig& config) {
  core::SystemConfig sys;
  sys.num_sensors = config.doors;
  sys.sim.seed = config.seed;
  sys.sim.horizon = SimTime::zero() + config.horizon;
  sys.delay_kind = config.delay_kind;
  sys.delta = config.delta;
  sys.clock_config.sync_epsilon = config.sync_epsilon;
  sys.loss_probability = config.loss_probability;
  sys.loss_windows = config.loss_windows;
  sys.duty_cycle = config.duty_cycle;
  sys.duty_phases_aligned = config.duty_phases_aligned;

  core::PervasiveSystem system(sys);

  world::ExhibitionHallConfig hall_cfg;
  hall_cfg.doors = static_cast<int>(config.doors);
  hall_cfg.capacity = config.capacity;
  hall_cfg.movement_rate = config.movement_rate;
  hall_cfg.target_occupancy = static_cast<double>(config.capacity);
  hall_cfg.initial_occupancy = config.capacity > 10 ? config.capacity - 10 : 0;
  world::ExhibitionHall hall(system.world(), hall_cfg,
                             system.sim().rng_for("hall"));

  // Door k is sensed by process k+1 (P_0 is the root monitor).
  for (int k = 0; k < hall_cfg.doors; ++k) {
    const auto pid = static_cast<ProcessId>(k + 1);
    system.assign(hall.door_object(k), "entered", pid);
    system.assign(hall.door_object(k), "exited", pid);
  }

  core::Predicate predicate = core::parse_predicate(
      "overcrowded",
      "sum(entered) - sum(exited) > " + std::to_string(config.capacity));

  hall.start();
  system.run();

  OccupancyRunResult result;
  core::GroundTruthOracle oracle(predicate, system.sensing());
  result.oracle = oracle.evaluate(system.timeline(), sys.sim.horizon);
  result.message_stats = system.message_stats();
  result.observed_updates = system.log().updates.size();
  result.world_events = system.timeline().size();
  result.delta_bound = system.delta_bound();

  ScoreConfig score_cfg;
  score_cfg.tolerance = config.effective_tolerance();

  for (const auto& detector : core::all_online_detectors()) {
    DetectorOutcome out;
    out.detector = detector->name();
    out.detections = detector->run(system.log(), predicate);
    out.score = score_detections(result.oracle, out.detections, score_cfg);
    out.belief_accuracy =
        belief_accuracy(result.oracle, out.detections, sys.sim.horizon);
    result.outcomes.push_back(std::move(out));
  }
  return result;
}

std::map<std::string, AggregatedOutcome> run_occupancy_replicated(
    OccupancyConfig config, std::size_t replications) {
  PSN_CHECK(replications > 0, "need at least one replication");
  std::map<std::string, AggregatedOutcome> agg;
  for (std::size_t r = 0; r < replications; ++r) {
    OccupancyConfig c = config;
    c.seed = config.seed + r;
    const OccupancyRunResult result = run_occupancy_experiment(c);
    for (const auto& out : result.outcomes) {
      auto& a = agg[out.detector];
      a.score += out.score;
      a.belief_accuracy.add(out.belief_accuracy);
    }
  }
  return agg;
}

}  // namespace psn::analysis
