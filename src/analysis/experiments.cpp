#include "analysis/experiments.hpp"

#include <utility>

#include "analysis/sweep.hpp"
#include "check/race_scan.hpp"
#include "common/error.hpp"
#include "core/detectors.hpp"
#include "core/oracle.hpp"
#include "core/predicate_parser.hpp"
#include "core/sharded_system.hpp"
#include "world/world_model.hpp"

namespace psn::analysis {

void validate(const OccupancyConfig& config) {
  if (config.doors == 0) {
    throw ConfigError("OccupancyConfig: doors must be >= 1");
  }
  if (config.movement_rate < 0.0) {
    throw ConfigError("OccupancyConfig: movement_rate must be >= 0, got " +
                      std::to_string(config.movement_rate));
  }
  if (config.capacity < 0) {
    throw ConfigError("OccupancyConfig: capacity must be >= 0, got " +
                      std::to_string(config.capacity));
  }
  if (config.horizon <= Duration::zero()) {
    throw ConfigError("OccupancyConfig: horizon must be positive");
  }
  if (config.delta <= Duration::zero() &&
      config.delay_kind == core::DelayKind::kUniformBounded) {
    throw ConfigError(
        "OccupancyConfig: delta must be positive under kUniformBounded "
        "(use kSynchronous for the Delta = 0 model)");
  }
  if (config.loss_probability < 0.0 || config.loss_probability > 1.0) {
    throw ConfigError("OccupancyConfig: loss_probability must be in [0, 1]");
  }
  if (config.gilbert_elliott) {
    const auto& ge = *config.gilbert_elliott;
    for (const double p : {ge.p_good_to_bad, ge.p_bad_to_good, ge.loss_in_good,
                           ge.loss_in_bad}) {
      if (p < 0.0 || p > 1.0) {
        throw ConfigError(
            "OccupancyConfig: Gilbert-Elliott parameters must be in [0, 1]");
      }
    }
    if (config.shards > 1) {
      throw ConfigError(
          "OccupancyConfig: Gilbert-Elliott loss advances per transmission "
          "and is not shard-stable; use loss_windows or run with --shards 1");
    }
  }
  if (config.duty_cycle) {
    if (config.duty_cycle->period <= Duration::zero() ||
        config.duty_cycle->window <= Duration::zero() ||
        config.duty_cycle->window > config.duty_cycle->period) {
      throw ConfigError(
          "OccupancyConfig: duty cycle needs 0 < window <= period");
    }
  }
  if (config.shards == 0) {
    throw ConfigError("OccupancyConfig: shards must be >= 1");
  }
  if (config.shards > config.doors + 1) {
    throw ConfigError(
        "OccupancyConfig: shards must be <= doors + 1 (got " +
        std::to_string(config.shards) + " shards for " +
        std::to_string(config.doors) + " doors); lower --shards");
  }
  if (config.shard_threads == 0) {
    throw ConfigError("OccupancyConfig: shard_threads must be >= 1");
  }
  if (config.shards > 1 &&
      (config.delay_kind == core::DelayKind::kSynchronous ||
       config.delay_kind == core::DelayKind::kExponential)) {
    throw ConfigError(
        "OccupancyConfig: sharded execution needs a positive minimum "
        "one-hop delay and this delay model's is zero; use --delay uniform "
        "or fixed, or run with --shards 1");
  }
  if (config.shards > 1 && config.fifo_channels) {
    throw ConfigError(
        "OccupancyConfig: FIFO/causal delivery is unsupported with shards; "
        "drop --fifo or run with --shards 1");
  }
  if (config.check && config.lean_clocks) {
    throw ConfigError(
        "OccupancyConfig: the checker replays vector-clock stamps, which "
        "--lean-clocks disables; drop one of the two");
  }
}

const DetectorOutcome& OccupancyRunResult::outcome(
    const std::string& detector) const {
  for (const auto& o : outcomes) {
    if (o.detector == detector) return o;
  }
  PSN_CHECK(false, "no outcome for detector: " + detector);
  return outcomes.front();
}

OccupancyRunResult run_occupancy_experiment(const OccupancyConfig& config) {
  return run_occupancy_experiment(Validated<OccupancyConfig>(config));
}

OccupancyRunResult run_occupancy_experiment(
    const Validated<OccupancyConfig>& validated) {
  const OccupancyConfig& config = validated.get();
  core::ShardedSystemConfig scfg;
  core::SystemConfig& sys = scfg.base;
  sys.num_sensors = config.doors;
  sys.sim.seed = config.seed;
  sys.sim.horizon = SimTime::zero() + config.horizon;
  sys.sim.trace_capacity = config.trace_capacity;
  if (config.check && sys.sim.trace_capacity == 0) {
    // The checker's happens-before oracle needs the complete trace window.
    sys.sim.trace_capacity = std::size_t{1} << 18;
  }
  sys.delay_kind = config.delay_kind;
  sys.delta = config.delta;
  sys.clock_mode = config.clock_mode;
  sys.clock_config.sync_epsilon = config.sync_epsilon;
  sys.clock_config.track_vectors = !config.lean_clocks;
  sys.topology = config.topology;
  sys.loss_probability = config.loss_probability;
  sys.loss_windows = config.loss_windows;
  sys.gilbert_elliott = config.gilbert_elliott;
  sys.faults = config.faults;
  sys.duty_cycle = config.duty_cycle;
  sys.duty_phases_aligned = config.duty_phases_aligned;
  sys.fifo_channels = config.fifo_channels;
  sys.validity_horizon = config.validity_horizon;
  scfg.shards = config.shards;
  scfg.pool_threads = config.shard_threads;
  scfg.unicast_reports = config.unicast_reports;

  // Pre-roll the world plane. Scenarios are autonomous — the hall draws
  // only from its own "hall" substream — so the ground-truth timeline is
  // computed once in a throwaway simulation and *replayed* into the sharded
  // system, whose per-pid replay chains schedule the same timers at every
  // shard count (the live hall's global movement chain would not partition).
  sim::SimConfig pre_cfg;
  pre_cfg.seed = config.seed;
  pre_cfg.horizon = sys.sim.horizon;
  sim::Simulation pre_sim(pre_cfg);
  world::WorldModel world(pre_sim);

  world::ExhibitionHallConfig hall_cfg;
  hall_cfg.doors = static_cast<int>(config.doors);
  hall_cfg.capacity = config.capacity;
  hall_cfg.movement_rate = config.movement_rate;
  hall_cfg.target_occupancy = static_cast<double>(config.capacity);
  hall_cfg.initial_occupancy = config.capacity > 10 ? config.capacity - 10 : 0;
  world::ExhibitionHall hall(world, hall_cfg, pre_sim.rng_for("hall"));
  hall.start();
  pre_sim.run();

  core::ShardedPervasiveSystem system(scfg);

  // Door k is sensed by process k+1 (P_0 is the root monitor).
  for (int k = 0; k < hall_cfg.doors; ++k) {
    const auto pid = static_cast<ProcessId>(k + 1);
    system.assign(hall.door_object(k), "entered", pid);
    system.assign(hall.door_object(k), "exited", pid);
  }
  system.set_world_events(world.timeline().events());

  core::Predicate predicate = core::parse_predicate(
      "overcrowded",
      "sum(entered) - sum(exited) > " + std::to_string(config.capacity));

  // The expected update volume is known before the run (movement_rate ×
  // horizon world events, one root delivery each when lossless): reserve the
  // logs once instead of paying their reallocation-copy cascade mid-run.
  const auto expected_updates = static_cast<std::size_t>(
      config.movement_rate * config.horizon.to_seconds()) + 1;
  system.reserve_root_logs(expected_updates);

  system.run();

  OccupancyRunResult result;
  core::GroundTruthOracle oracle(predicate, system.sensing());
  result.oracle = oracle.evaluate(world.timeline(), sys.sim.horizon);
  result.message_stats = system.message_stats();
  result.observed_updates = system.log().updates.size();
  result.world_events = world.timeline().size();
  result.delta_bound = system.delta_bound();
  result.shard_windows = system.windows();
  result.shard_cut_edges = system.shard_map().cut_edges();

  const bool tracing = sys.sim.trace_capacity > 0;
  if (tracing) {
    result.trace = system.trace_records();
    result.trace_evicted = system.trace_evicted();
  }

  ScoreConfig score_cfg;
  score_cfg.tolerance = config.effective_tolerance();

  // Per-kind traffic detail for the metric snapshot (the transport keeps
  // aggregate counters live; the per-kind split lives in MessageStats).
  // These land in shard 0's registry, once — never per shard — so the
  // merged snapshot is identical at every shard count.
  MetricsRegistry& metrics = system.metrics();
  for (const net::MessageKind kind :
       {net::MessageKind::kComputation, net::MessageKind::kStrobe,
        net::MessageKind::kSync, net::MessageKind::kActuation}) {
    const auto& ks = result.message_stats.of(kind);
    if (ks.sent == 0 && ks.unreachable == 0) continue;
    const std::string prefix = std::string("net.") + net::to_string(kind);
    metrics.counter(prefix + ".sent").inc(ks.sent);
    metrics.counter(prefix + ".delivered").inc(ks.delivered);
    metrics.counter(prefix + ".dropped").inc(ks.dropped);
    metrics.counter(prefix + ".unreachable").inc(ks.unreachable);
    metrics.counter(prefix + ".bytes_sent").inc(ks.bytes_sent);
  }
  const auto& mode_bytes = result.message_stats.strobe_mode_bytes;
  metrics.counter("net.strobe.bytes_scalar_mode").inc(mode_bytes.scalar);
  metrics.counter("net.strobe.bytes_vector_mode").inc(mode_bytes.vector);
  metrics.counter("net.strobe.bytes_physical_mode").inc(mode_bytes.physical);
  metrics.counter("world.events").inc(result.world_events);
  metrics.counter("root.observed_updates").inc(result.observed_updates);

  // Clock-contract replay runs over the network-plane trace before the
  // offline detectors append their kDetect records (which it would ignore
  // anyway, but checking the smaller window is cheaper).
  if (config.check) {
    if (!tracing) {
      throw ConfigError(
          "psn::check: tracing was off for this run; set "
          "OccupancyConfig::trace_capacity > 0 and rerun");
    }
    check::CheckOptions check_options;
    check_options.validity_horizon = config.validity_horizon;
    // trace_records() already merged the schedule's fault records into the
    // canonical order; the options pointer lets the drift contract subtract
    // declared clock faults exactly.
    check_options.faults = system.faults();
    check::RunInputs inputs;
    inputs.num_processes = system.num_processes();
    inputs.sync_epsilon = sys.clock_config.sync_epsilon;
    inputs.drifting = sys.clock_config.drifting;
    inputs.executions.resize(inputs.num_processes);  // the root's stays empty
    const auto executions = system.sensor_executions();
    for (ProcessId p = 1; p < inputs.num_processes; ++p) {
      inputs.executions[p] = *executions[p - 1];
    }
    inputs.trace = result.trace;
    inputs.trace_evicted = result.trace_evicted;
    result.check = check::check_run(inputs, check_options);
  }

  for (const auto& detector : core::all_online_detectors()) {
    // Lean clocks make vector stamps inert dummies; scoring the
    // strobe-vector detector against them would be noise, not signal.
    if (config.lean_clocks && detector->name() == "strobe-vector") continue;
    DetectorOutcome out;
    out.detector = detector->name();
    out.detections = detector->run(system.log(), predicate);
    out.score = score_detections(result.oracle, out.detections, score_cfg);
    out.belief_accuracy =
        belief_accuracy(result.oracle, out.detections, sys.sim.horizon);
    const std::string prefix = "detector." + out.detector;
    metrics.counter(prefix + ".detections").inc(out.detections.size());
    metrics.counter(prefix + ".true_positives").inc(out.score.true_positives);
    metrics.counter(prefix + ".false_positives")
        .inc(out.score.false_positives);
    metrics.counter(prefix + ".false_negatives")
        .inc(out.score.false_negatives);
    metrics.counter(prefix + ".borderline").inc(out.score.borderline_detections);
    metrics.stat(prefix + ".belief_accuracy").add(out.belief_accuracy);
    if (tracing) {
      // Detection records are appended after the canonically ordered
      // network records (the detectors replay the log offline); `at` is
      // still sim-time. The append order is the fixed detector-loop order,
      // so the trace stays byte-identical across shard counts.
      for (const core::Detection& d : out.detections) {
        result.trace.push_back({d.detected_at, sim::TraceKind::kDetect, 0,
                                kNoProcess, -1, 0,
                                out.detector + (d.to_true ? ":true" : ":false")});
      }
    }
    result.outcomes.push_back(std::move(out));
  }

  // Δ-race audit: under Δ-bounded delivery with a complete trace window,
  // every confident detector error must have an admissible cause — a Δ/2ε
  // race (paper §5), or a recorded fault: a dropped root-bound report, a
  // crash or partition window, a duty-cycle deferral past Δ, an expired
  // validity horizon (DESIGN.md §15). An error none of those cover is a
  // checker violation. Lossy, faulty, and duty-cycled runs audit at full
  // strictness — their non-race causes are in the trace, not excuses.
  if (result.check) {
    const bool audit_eligible =
        config.delay_kind == core::DelayKind::kUniformBounded &&
        result.check->trace_evicted == 0;
    if (audit_eligible) {
      check::RaceScanConfig delta_scan;
      delta_scan.window = result.delta_bound;
      const std::vector<check::RaceEvent> delta_races =
          check::scan_races(system.log(), delta_scan);
      check::RaceScanConfig eps_scan;
      eps_scan.window = config.sync_epsilon * 2;
      const std::vector<check::RaceEvent> eps_races =
          check::scan_races(system.log(), eps_scan);
      check::FaultSpanConfig span_cfg;
      span_cfg.delta_bound = result.delta_bound;
      const std::vector<check::FaultSpan> fault_spans =
          check::collect_fault_spans(result.trace, system.log(), span_cfg);
      check::AuditConfig audit;
      audit.slack = score_cfg.tolerance;
      for (const DetectorOutcome& out : result.outcomes) {
        // The physical detector orders by ε-synchronized timestamps, so its
        // race window is 2ε; the delivery/strobe detectors resolve down to Δ.
        const bool physical = out.detector == "physical-eps";
        result.check->add_contract(check::audit_detector(
            out.detector, physical ? eps_races : delta_races, fault_spans,
            out.score.fp_cause_times, out.score.fn_occurrence_times, audit));
      }
    }
    // Per-contract violation counters alongside the total, so a sweep's
    // metrics table localizes *which* contract a regression trips without
    // re-running anything (ROADMAP "per-contract violation metrics").
    for (const check::ContractResult& cr : result.check->contracts) {
      metrics.counter("check." + cr.contract + ".violations")
          .inc(cr.violations_total);
    }
    metrics.counter("check.violations").inc(result.check->total_violations());
  }

  result.metrics = system.metrics_snapshot();
  return result;
}

}  // namespace psn::analysis
