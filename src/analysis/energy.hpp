#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "common/sim_time.hpp"
#include "net/duty_cycle.hpp"
#include "net/transport.hpp"

namespace psn::analysis {

/// First-order radio energy model for sensor nodes — the currency of the
/// paper's economic argument (§3.3 item 1: the synchronized-clock service
/// "may not be affordable (in terms of energy consumption), e.g., consider
/// the wild or remote terrain"). Defaults approximate a CC2420-class
/// 802.15.4 radio at 3 V: ~17–20 mA at 250 kbit/s for rx/tx, idle listening
/// nearly as expensive as receiving, deep sleep ~1 µA.
struct EnergyModel {
  double tx_nj_per_byte = 1700.0;    ///< transmit energy per byte (nJ)
  double rx_nj_per_byte = 1900.0;    ///< receive energy per byte (nJ)
  double listen_mw = 56.0;           ///< idle-listening power (mW)
  double sleep_uw = 3.0;             ///< sleep power (µW)

  /// Energy to transmit / receive a payload of `bytes` (nanojoules).
  double tx_nj(std::size_t bytes) const {
    return tx_nj_per_byte * static_cast<double>(bytes);
  }
  double rx_nj(std::size_t bytes) const {
    return rx_nj_per_byte * static_cast<double>(bytes);
  }
};

/// Energy breakdown of one node (or a fleet) over a run, in millijoules.
struct EnergyBreakdown {
  double tx_mj = 0.0;
  double rx_mj = 0.0;
  double listen_mj = 0.0;  ///< radio on, nothing received
  double sleep_mj = 0.0;

  double total_mj() const { return tx_mj + rx_mj + listen_mj + sleep_mj; }
};

/// Per-fleet radio energy over `duration`, given observed traffic:
///  - `bytes_sent` / `bytes_received`: totals across the fleet,
///  - `nodes`: fleet size,
///  - `duty`: the receivers' wake schedule (nullopt = always listening).
/// Listening time is the awake time not spent receiving (receive time is
/// approximated from bytes at 250 kbit/s).
EnergyBreakdown fleet_energy(const EnergyModel& model, Duration duration,
                             std::size_t nodes, std::size_t bytes_sent,
                             std::size_t bytes_received,
                             const std::optional<net::DutyCycle>& duty);

/// Convenience: the strobe traffic of a MessageStats, as the byte totals
/// fleet_energy() needs. `fanout` = receivers per broadcast.
struct TrafficTotals {
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
};
TrafficTotals strobe_traffic(const net::MessageStats& stats);

}  // namespace psn::analysis
