#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace psn::net {

/// Per-hop message (transmission + propagation) delay — the paper's design
/// axis §3.2.2. Three regimes: synchronous (Δ = 0, the ideal), asynchronous
/// Δ-bounded (practical wireless: retransmission attempts are bounded), and
/// asynchronous unbounded (worst-case analysis).
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  virtual Duration sample(Rng& rng) = 0;
  /// Upper bound Δ on one hop, or Duration::max() if unbounded.
  virtual Duration bound() const = 0;
  /// Lower bound on one hop — the conservative lookahead L of the sharded
  /// driver (no message sent at t can arrive anywhere before t + L, so
  /// shards may advance L apart without synchronizing; DESIGN.md §14).
  /// Zero (the conservative default) means "no lookahead": such a model
  /// cannot be sharded.
  virtual Duration min_delay() const { return Duration::zero(); }
  virtual std::string name() const = 0;
};

/// Δ = 0: instantaneous/synchronous delivery (paper §3.2.2.a). With strobes
/// at every event this collapses the state lattice to a line (§4.2.4).
class SynchronousDelay final : public DelayModel {
 public:
  Duration sample(Rng&) override { return Duration::zero(); }
  Duration bound() const override { return Duration::zero(); }
  std::string name() const override { return "synchronous"; }
};

/// Constant delay d (deterministic network).
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(Duration d);
  Duration sample(Rng&) override { return d_; }
  Duration bound() const override { return d_; }
  Duration min_delay() const override { return d_; }
  std::string name() const override;

 private:
  Duration d_;
};

/// Uniform in [min, Δ]: the paper's Δ-bounded asynchronous model (§3.2.2.b).
class UniformBoundedDelay final : public DelayModel {
 public:
  UniformBoundedDelay(Duration min, Duration max);
  /// Convenience: uniform in [Δ/10, Δ].
  static std::unique_ptr<UniformBoundedDelay> with_bound(Duration delta);

  Duration sample(Rng& rng) override;
  Duration bound() const override { return max_; }
  Duration min_delay() const override { return min_; }
  std::string name() const override;

 private:
  Duration min_, max_;
};

/// Exponential with the given mean: unbounded tail (§3.2.2.c), for worst-case
/// experiments. A small `floor` models minimum transmission time.
class ExponentialDelay final : public DelayModel {
 public:
  explicit ExponentialDelay(Duration mean, Duration floor = Duration::zero());
  Duration sample(Rng& rng) override;
  Duration bound() const override { return Duration::max(); }
  Duration min_delay() const override { return floor_; }
  std::string name() const override;

 private:
  Duration mean_, floor_;
};

}  // namespace psn::net
