#include "net/causal_delivery.hpp"

#include <utility>

#include "common/error.hpp"

namespace psn::net {

CausalBroadcaster::CausalBroadcaster(ProcessId self, std::size_t n,
                                     TransmitFn transmit, DeliverFn deliver)
    : self_(self),
      transmit_(std::move(transmit)),
      deliver_(std::move(deliver)),
      delivered_(n) {
  PSN_CHECK(self < n, "broadcaster pid out of range");
  PSN_CHECK(static_cast<bool>(transmit_) && static_cast<bool>(deliver_),
            "causal broadcaster needs transmit and deliver hooks");
}

void CausalBroadcaster::broadcast(const std::string& payload) {
  // Own broadcasts are delivered locally right away (they causally follow
  // everything this process has delivered), then stamped and transmitted.
  CausalMessage msg;
  msg.sender = self_;
  msg.payload = payload;
  delivered_[self_]++;
  msg.stamp = delivered_;
  transmit_(msg);
  deliver_(msg);
}

bool CausalBroadcaster::deliverable(const CausalMessage& msg) const {
  PSN_CHECK(msg.stamp.size() == delivered_.size(),
            "causal stamp dimension mismatch");
  for (std::size_t k = 0; k < delivered_.size(); ++k) {
    if (k == msg.sender) {
      if (msg.stamp[k] != delivered_[k] + 1) return false;  // gap or dup
    } else {
      if (msg.stamp[k] > delivered_[k]) return false;  // missing dependency
    }
  }
  return true;
}

void CausalBroadcaster::on_receive(const CausalMessage& msg) {
  PSN_CHECK(msg.sender < delivered_.size(), "unknown sender");
  if (msg.sender == self_) return;  // self-copy from a broadcast fan-out
  // Duplicate / already-delivered messages are dropped.
  if (msg.stamp[msg.sender] <= delivered_[msg.sender]) return;
  pending_.push_back(msg);
  drain();
}

void CausalBroadcaster::drain() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (!deliverable(pending_[i])) continue;
      CausalMessage msg = std::move(pending_[i]);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      delivered_[msg.sender]++;
      deliver_(msg);
      progressed = true;
      break;  // restart: the delivery may unblock earlier entries
    }
  }
}

}  // namespace psn::net
