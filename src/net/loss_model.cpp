#include "net/loss_model.hpp"

#include <utility>

#include "common/error.hpp"

namespace psn::net {

BernoulliLoss::BernoulliLoss(double p) : p_(p) {
  PSN_CHECK(p_ >= 0.0 && p_ <= 1.0, "loss probability out of [0,1]");
}

bool BernoulliLoss::drop(SimTime, Rng& rng) { return rng.bernoulli(p_); }

std::string BernoulliLoss::name() const {
  return "bernoulli(" + std::to_string(p_) + ")";
}

GilbertElliottLoss::GilbertElliottLoss(double p_good_to_bad,
                                       double p_bad_to_good,
                                       double loss_in_good, double loss_in_bad)
    : p_gb_(p_good_to_bad),
      p_bg_(p_bad_to_good),
      loss_good_(loss_in_good),
      loss_bad_(loss_in_bad) {
  for (const double p : {p_gb_, p_bg_, loss_good_, loss_bad_}) {
    PSN_CHECK(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  }
}

bool GilbertElliottLoss::drop(SimTime, Rng& rng) {
  if (bad_) {
    if (rng.bernoulli(p_bg_)) bad_ = false;
  } else {
    if (rng.bernoulli(p_gb_)) bad_ = true;
  }
  return rng.bernoulli(bad_ ? loss_bad_ : loss_good_);
}

ScheduledBurstLoss::ScheduledBurstLoss(std::vector<Window> windows)
    : windows_(std::move(windows)) {
  for (const auto& w : windows_) {
    PSN_CHECK(w.begin <= w.end, "loss window inverted");
  }
}

bool ScheduledBurstLoss::drop(SimTime now, Rng&) {
  for (const auto& w : windows_) {
    if (now >= w.begin && now < w.end) return true;
  }
  return false;
}

}  // namespace psn::net
