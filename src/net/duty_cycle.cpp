#include "net/duty_cycle.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psn::net {

bool DutyCycle::is_awake(SimTime t) const {
  PSN_CHECK(valid(), "invalid duty cycle");
  const std::int64_t p = period.count_nanos();
  std::int64_t offset = (t.count_nanos() - phase.count_nanos()) % p;
  if (offset < 0) offset += p;
  return offset < window.count_nanos();
}

SimTime DutyCycle::next_wake(SimTime t) const {
  PSN_CHECK(valid(), "invalid duty cycle");
  const std::int64_t p = period.count_nanos();
  std::int64_t offset = (t.count_nanos() - phase.count_nanos()) % p;
  if (offset < 0) offset += p;
  if (offset < window.count_nanos()) return t;  // already awake
  return t + Duration(p - offset);              // next window start
}

void align_phases(std::vector<DutyCycle>& schedules) {
  if (schedules.empty()) return;
  Duration earliest = schedules.front().phase;
  for (const auto& s : schedules) earliest = std::min(earliest, s.phase);
  for (auto& s : schedules) s.phase = earliest;
}

Duration worst_case_wait(const DutyCycle& schedule) {
  PSN_CHECK(schedule.valid(), "invalid duty cycle");
  return schedule.period - schedule.window;
}

}  // namespace psn::net
