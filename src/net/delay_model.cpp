#include "net/delay_model.hpp"

#include "common/error.hpp"

namespace psn::net {

FixedDelay::FixedDelay(Duration d) : d_(d) {
  PSN_CHECK(d_ >= Duration::zero(), "fixed delay must be non-negative");
}

std::string FixedDelay::name() const { return "fixed(" + d_.to_string() + ")"; }

UniformBoundedDelay::UniformBoundedDelay(Duration min, Duration max)
    : min_(min), max_(max) {
  PSN_CHECK(min_ >= Duration::zero(), "delay must be non-negative");
  PSN_CHECK(min_ <= max_, "delay bounds inverted");
}

std::unique_ptr<UniformBoundedDelay> UniformBoundedDelay::with_bound(
    Duration delta) {
  return std::make_unique<UniformBoundedDelay>(
      Duration(delta.count_nanos() / 10), delta);
}

Duration UniformBoundedDelay::sample(Rng& rng) {
  return rng.uniform_duration(min_, max_);
}

std::string UniformBoundedDelay::name() const {
  return "uniform[" + min_.to_string() + "," + max_.to_string() + "]";
}

ExponentialDelay::ExponentialDelay(Duration mean, Duration floor)
    : mean_(mean), floor_(floor) {
  PSN_CHECK(mean_ > Duration::zero(), "mean delay must be positive");
  PSN_CHECK(floor_ >= Duration::zero(), "delay floor must be non-negative");
}

Duration ExponentialDelay::sample(Rng& rng) {
  return floor_ + Duration::from_seconds(rng.exponential(mean_.to_seconds()));
}

std::string ExponentialDelay::name() const {
  return "exponential(mean=" + mean_.to_string() + ")";
}

}  // namespace psn::net
