#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/delay_model.hpp"
#include "net/duty_cycle.hpp"
#include "net/loss_model.hpp"
#include "net/message.hpp"
#include "net/overlay.hpp"
#include "sim/fault.hpp"
#include "sim/simulation.hpp"

namespace psn::net {

/// Per-kind traffic accounting — experiment E7's raw data ("this service is
/// not for free": the cost of each time-model option is messages and bytes).
///
/// `sent`/`bytes_sent` count only messages that actually left the node:
/// destinations with no overlay path are tallied under `unreachable` and
/// charge no radio bytes (the radio never keys up without a route).
struct MessageStats {
  struct KindStats {
    std::size_t sent = 0;        ///< transmissions attempted (per destination)
    std::size_t delivered = 0;
    std::size_t dropped = 0;     ///< lost to the loss model
    std::size_t unreachable = 0; ///< no path in the overlay; not in `sent`
    std::size_t bytes_sent = 0;  ///< priced at the transport's clock mode
  };

  /// What `bytes_sent` of the strobe kind *would have been* under each clock
  /// mode. All three are accumulated on every strobe transmission, so one
  /// simulated run yields the full E7 per-mode comparison without replaying.
  struct StrobeModeBytes {
    std::size_t scalar = 0;
    std::size_t vector = 0;
    std::size_t physical = 0;
    std::size_t of(ClockMode mode) const;
  };

  KindStats& of(MessageKind k) { return per_kind_[static_cast<std::size_t>(k)]; }
  const KindStats& of(MessageKind k) const {
    return per_kind_[static_cast<std::size_t>(k)];
  }
  std::size_t total_sent() const;
  std::size_t total_bytes() const;

  StrobeModeBytes strobe_mode_bytes;

 private:
  std::array<KindStats, 4> per_kind_{};
};

/// Hook the sharded driver installs to divert deliveries addressed to a
/// process owned by another shard (DESIGN.md §14). `transmit` computes the
/// delivery instant and canonical tie exactly as it would locally, then
/// hands the ready-to-fire delivery to `enqueue` instead of its own
/// calendar; the window barrier later replays it into the owner shard via
/// `inject_delivery`. Unset (the default) = everything is local.
struct RemoteRoute {
  std::function<bool(ProcessId dst)> is_remote;
  std::function<void(SimTime at, std::uint64_t tie, Message msg,
                     std::size_t bytes)>
      enqueue;
};

/// Asynchronous message-passing transport over the overlay L.
///
/// Unicasts follow the shortest path, accumulating one delay sample and one
/// loss trial per hop. Broadcasts ("System-wide_Broadcast" of the strobe
/// rules) fan out to every other process as independent unicasts — delays
/// differ per receiver, which is precisely what creates the race conditions
/// the paper analyzes.
///
/// Determinism contract (what makes sharded execution byte-exact, §14):
/// sequence ids are allocated per *source* with stride |P| (`seq =
/// n_src·|P| + src + 1`), and every per-copy delay/loss draw comes from a
/// private Rng keyed by (transport seed, seq, dst) — so both ids and
/// arrival times are pure functions of the message's identity, independent
/// of how transmissions from different processes interleave, and therefore
/// identical at any shard count.
class Transport {
 public:
  Transport(sim::Simulation& sim, Overlay overlay,
            std::unique_ptr<DelayModel> delay, std::unique_ptr<LossModel> loss,
            Rng rng);

  /// Sets the clock mode used to price strobe payloads on the wire (see
  /// ClockMode). Default is kVectorStrobe — the fattest option and the one
  /// the simulated broadcast actually carries. Scalar/physical deployments
  /// must set their mode or byte accounting overstates their cost.
  void set_clock_mode(ClockMode mode) { clock_mode_ = mode; }
  ClockMode clock_mode() const { return clock_mode_; }

  /// When enabled, deliveries between each ordered (src, dst) pair never
  /// overtake one another: a message's delivery time is clamped to be after
  /// the pair's previous delivery. Off by default (radio links reorder);
  /// protocols that assume FIFO channels (e.g. Chandy–Lamport snapshots)
  /// enable it.
  void set_fifo_channels(bool fifo) { fifo_ = fifo; }
  bool fifo_channels() const { return fifo_; }

  /// Installs the run's fault schedule (sim/fault, DESIGN.md §15). The
  /// transport then (a) replays partition transitions onto its overlay copy
  /// lazily before routing — cached hop rows invalidate exactly at window
  /// boundaries; (b) drops deliveries landing inside the destination's crash
  /// windows, sender-side, so the decision is a pure function of the message
  /// and identical at every shard layout; (c) splits drop accounting into
  /// per-cause counters (net.drops.loss / crashed_dst / partition /
  /// duty_cycle), registered only now so fault-free runs keep their exact
  /// metric set. The schedule must outlive the transport; pass nullptr to
  /// detach. Crash-caused kDrop records carry note "crash" (or "duty-cycle"
  /// when a sleep deferral pushed the arrival into the window); loss drops
  /// keep an empty note; partition kUnreachable records gain note
  /// "partition" while a cut is active.
  void set_fault_schedule(const sim::FaultSchedule* faults);

  /// Installs a duty-cycle wake schedule for `pid`'s receiver: arrivals
  /// while asleep are held by the MAC and delivered at the next wake edge
  /// (paper §5, duty-cycled habitat monitoring). No schedule = always on.
  void set_wake_schedule(ProcessId pid, const DutyCycle& schedule);
  void clear_wake_schedule(ProcessId pid);

  using Handler = std::function<void(const Message&)>;
  /// Installs the delivery callback for process `pid`. Must be set before
  /// any message addressed to `pid` is delivered.
  void register_handler(ProcessId pid, Handler handler);

  /// Sends `msg` (src/dst/kind/payload filled in by the caller). Returns the
  /// run-unique sequence id assigned to the message (see Message::seq).
  std::uint64_t unicast(Message msg);
  /// Delivers independently to every process except `msg.src`. All fan-out
  /// copies share one sequence id, which is returned.
  std::uint64_t broadcast(Message msg);

  /// Diverts deliveries whose destination `route.is_remote(dst)` into
  /// `route.enqueue` instead of the local calendar (sharded driver only).
  void set_remote_route(RemoteRoute route) { remote_route_ = std::move(route); }

  /// Canonical same-instant rank of a delivery: (seq << 20) | dst. Strictly
  /// positive (seq >= 1), so timers (tie 0) run before co-instant
  /// deliveries; unique per copy, so co-instant deliveries fire in (seq,
  /// dst) order in *every* shard layout. 20 bits caps pids at ~10^6 (city
  /// scale is 10^5) and leaves 44 bits of seq — ample, seqs grow by |P| per
  /// source message.
  static std::uint64_t delivery_tie(std::uint64_t seq, ProcessId dst);

  /// Executes a delivery at the current instant: delivered accounting,
  /// kDeliver trace, handler dispatch. Public so a peer shard's buffered
  /// delivery replays through the owner's transport.
  void deliver_now(Message msg, std::size_t bytes);

  /// Schedules a delivery whose time/tie were computed by a peer shard's
  /// transmit() (the sender's side of the outbox exchange).
  void inject_delivery(SimTime at, std::uint64_t tie, Message msg,
                       std::size_t bytes);

  Overlay& overlay() { return overlay_; }
  const Overlay& overlay() const { return overlay_; }
  DelayModel& delay_model() { return *delay_; }
  const MessageStats& stats() const { return stats_; }

 private:
  /// Allocates the next per-source-strided sequence id for `src`.
  std::uint64_t next_seq_for(ProcessId src);
  /// Replays fault-plan partition transitions with at <= now onto the local
  /// overlay copy. Time is monotonic within a shard, so the replay cursor
  /// only moves forward; each transition mutates one edge, which invalidates
  /// exactly the overlay's affected cached hop rows.
  void apply_partition_epoch();
  /// `bytes` is the wire price of the message under the active clock mode,
  /// computed once per logical message (unicast: per message; broadcast:
  /// once for the whole fan-out — all copies share payload, kind, and mode).
  void transmit(Message msg, std::size_t bytes);

  sim::Simulation& sim_;
  Overlay overlay_;
  std::unique_ptr<DelayModel> delay_;
  std::unique_ptr<LossModel> loss_;
  std::vector<Handler> handlers_;
  MessageStats stats_;
  std::uint64_t msg_seed_;  ///< keys every per-message delay/loss stream
  std::vector<std::uint64_t> per_source_next_;  ///< messages sent per source
  RemoteRoute remote_route_;
  ClockMode clock_mode_ = ClockMode::kVectorStrobe;
  // Aggregate observability handles into the run's MetricsRegistry
  // (per-kind detail stays in MessageStats).
  MetricsRegistry::Counter sent_metric_;
  MetricsRegistry::Counter bytes_metric_;
  MetricsRegistry::Counter delivered_metric_;
  MetricsRegistry::Counter dropped_metric_;
  MetricsRegistry::Counter unreachable_metric_;
  MetricsRegistry::Hist delay_ms_metric_;
  // Per-cause drop counters; inert no-ops until a fault schedule arrives.
  MetricsRegistry::Counter drops_loss_metric_;
  MetricsRegistry::Counter drops_crashed_metric_;
  MetricsRegistry::Counter drops_partition_metric_;
  MetricsRegistry::Counter drops_duty_metric_;
  const sim::FaultSchedule* faults_ = nullptr;
  std::size_t partitions_applied_ = 0;  ///< transitions replayed so far
  std::size_t cut_edges_active_ = 0;    ///< currently-cut edges (attribution)
  bool fifo_ = false;
  /// Last scheduled delivery time per (src, dst), for FIFO clamping.
  std::map<std::pair<ProcessId, ProcessId>, SimTime> last_delivery_;
  /// Receiver wake schedules; nullopt = always-on radio.
  std::vector<std::optional<DutyCycle>> wake_;
};

}  // namespace psn::net
