#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "clocks/timestamp.hpp"
#include "common/types.hpp"

namespace psn::net {

/// Causal-order broadcast delivery (Birman–Schiper–Stephenson), one of the
/// classic middleware applications of vector time the paper's Appendix A
/// enumerates ("causal memory, maintaining consistency of replicated files,
/// …"). This is a pure protocol layer: it does not own a transport; the host
/// wires `on_transmit` to the network and calls `on_receive` for every
/// arriving causal message. Delivery order is guaranteed causal per
/// receiver even if the network reorders arbitrarily.
///
/// The protocol stamps each broadcast with a vector of *broadcast counts*:
/// V[j] = number of broadcasts by j that causally precede this one. A
/// message m from j is deliverable at process i once
///   delivered_i[j] == V_m[j] − 1   and   delivered_i[k] ≥ V_m[k] ∀ k ≠ j.
class CausalBroadcaster {
 public:
  struct CausalMessage {
    ProcessId sender = kNoProcess;
    clocks::VectorStamp stamp;  ///< broadcast-count vector, post-increment
    std::string payload;
  };

  /// `transmit` is invoked once per broadcast with the stamped message; the
  /// host fans it out. `deliver` is invoked in causal order.
  using TransmitFn = std::function<void(const CausalMessage&)>;
  using DeliverFn = std::function<void(const CausalMessage&)>;

  CausalBroadcaster(ProcessId self, std::size_t n, TransmitFn transmit,
                    DeliverFn deliver);

  /// Broadcasts a payload (stamps it and hands it to the transmit hook).
  void broadcast(const std::string& payload);

  /// Feed a message that arrived from the network (any order). Triggers
  /// zero or more deliveries, including of previously buffered messages.
  void on_receive(const CausalMessage& msg);

  std::size_t buffered() const { return pending_.size(); }
  std::uint64_t delivered_count(ProcessId from) const {
    return delivered_[from];
  }

 private:
  bool deliverable(const CausalMessage& msg) const;
  void drain();

  ProcessId self_;
  TransmitFn transmit_;
  DeliverFn deliver_;
  /// delivered_[j]: how many of j's broadcasts this process has delivered.
  clocks::VectorStamp delivered_;
  std::vector<CausalMessage> pending_;
};

}  // namespace psn::net
