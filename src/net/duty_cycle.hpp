#pragma once

#include <optional>
#include <vector>

#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace psn::net {

/// A periodic radio wake schedule: the node's receiver is on during
/// [phase + k·period, phase + k·period + window) for every integer k ≥ 0.
/// Messages arriving while asleep are buffered by the MAC and handed up at
/// the next wake edge (low-power listening semantics).
///
/// Paper §5 (last paragraph): "synchronization of duty cycles among
/// wireless sensor nodes for efficient execution of MAC and routing layer
/// functions can be achieved using distributed timers. It is particularly
/// feasible in applications such as habitat monitoring where the monitoring
/// activities proceed slowly."
struct DutyCycle {
  Duration period = Duration::millis(1000);
  Duration window = Duration::millis(100);
  Duration phase = Duration::zero();

  bool valid() const {
    return period > Duration::zero() && window > Duration::zero() &&
           window <= period && phase >= Duration::zero() && phase < period;
  }
  double duty_fraction() const {
    return static_cast<double>(window.count_nanos()) /
           static_cast<double>(period.count_nanos());
  }

  /// Is the receiver on at instant `t`?
  bool is_awake(SimTime t) const;
  /// Earliest instant ≥ t at which the receiver is on (t itself if awake).
  SimTime next_wake(SimTime t) const;
};

/// Aligns every schedule's phase to the earliest one — what a duty-cycle
/// synchronization protocol achieves (the paper's distributed-timer
/// suggestion); misaligned phases model the unsynchronized baseline.
void align_phases(std::vector<DutyCycle>& schedules);

/// Worst-case extra delivery latency caused by a schedule: a message can
/// arrive just after the window closes and wait out the sleep.
Duration worst_case_wait(const DutyCycle& schedule);

}  // namespace psn::net
