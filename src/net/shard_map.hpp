#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "net/message.hpp"
#include "net/overlay.hpp"

namespace psn::net {

/// A delivery whose arrival instant and canonical tie were already computed
/// by the *sender's* shard, parked in an outbox until the window barrier
/// hands it to the shard that owns `msg.dst` (DESIGN.md §14). The owner
/// schedules it verbatim via Transport::inject_delivery — no re-draws, so
/// the delivery is bit-identical to the one the serial run would have made.
struct PendingDelivery {
  SimTime at;
  std::uint64_t tie;
  Message msg;
  std::size_t bytes;
};

/// Contiguous partition of the process space [0, n) into K shards.
///
/// Shards are contiguous pid ranges — the world builders assign pids in
/// spatial order (door k owns pid k+1), so contiguity is spatial locality —
/// and each of the K-1 boundaries is placed greedily: it starts at the
/// balanced position k·n/K and slides within a ±n/(4K) slack window to the
/// candidate crossed by the fewest overlay edges (first minimum wins, so the
/// result is deterministic). Balance is preserved to within the slack;
/// lookup is a dense O(1) table.
class ShardMap {
 public:
  /// Partitions `overlay`'s pid space into `shards` contiguous ranges
  /// (1 <= shards <= overlay.size()).
  static ShardMap partition(const Overlay& overlay, std::size_t shards);

  std::size_t num_shards() const { return starts_.size() - 1; }
  /// Total processes partitioned (the overlay size).
  std::size_t size() const { return shard_of_.size(); }
  std::size_t shard_of(ProcessId pid) const { return shard_of_[pid]; }
  /// Shard k owns pids [begin(k), end(k)).
  ProcessId begin(std::size_t shard) const { return starts_[shard]; }
  ProcessId end(std::size_t shard) const { return starts_[shard + 1]; }
  std::size_t shard_size(std::size_t shard) const {
    return end(shard) - begin(shard);
  }
  /// Overlay edges whose endpoints landed in different shards — the cut the
  /// greedy boundary placement minimizes; every cut edge is a potential
  /// outbox entry per window.
  std::size_t cut_edges() const { return cut_edges_; }

 private:
  ShardMap() = default;

  std::vector<ProcessId> starts_;  ///< K+1 fence posts; [0]=0, [K]=n
  std::vector<std::uint32_t> shard_of_;  ///< dense pid -> shard table
  std::size_t cut_edges_ = 0;
};

}  // namespace psn::net
