#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

#include "clocks/clock_bundle.hpp"
#include "clocks/timestamp.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "world/event.hpp"

namespace psn::net {

/// Message classes in the network plane. The paper distinguishes *semantic*
/// computation messages (whose send/receive events drive the causal clocks)
/// from *control* messages — strobes and sync traffic — which must not
/// (paper §4.2.3 point 3).
enum class MessageKind : std::uint8_t {
  kComputation,  ///< application send/receive (s/r events)
  kStrobe,       ///< strobe-clock control broadcast (SSC1/SVC1 output)
  kSync,         ///< clock-synchronization protocol traffic
  kActuation,    ///< command from detector to an actuator node
};

const char* to_string(MessageKind k);

/// Which single time-model implementation a deployment actually puts on the
/// wire. The simulation always carries every stamp in one strobe broadcast
/// (so all detectors can be scored on the same run — paired comparison), but
/// a *real* node would serialize only its own mode's timestamp. Byte
/// accounting (experiment E7, "this service is not for free") must therefore
/// charge the active mode, not the fattest payload: the transport is told
/// the mode and prices every strobe with the matching wire_bytes_*_mode().
enum class ClockMode : std::uint8_t {
  kScalarStrobe,  ///< O(1) strobe scalar stamp + pid
  kVectorStrobe,  ///< O(n) strobe vector stamp + pid
  kPhysical,      ///< ε-synchronized physical timestamp
};

const char* to_string(ClockMode m);

/// Payload of a strobe broadcast. One broadcast serves every detector under
/// comparison: it carries the sensed update plus the stamps of *all* time
/// models, so a single simulated execution can be scored per model. Per-model
/// wire-size accounting (experiment E7) therefore uses the helpers below, not
/// the in-memory size.
struct SenseReportPayload {
  // --- the sensed update ---
  world::ObjectId object = world::kNoObject;
  std::string attribute;
  world::AttributeValue value;

  // --- timestamps a real node could attach ---
  clocks::ScalarStamp strobe_scalar;
  clocks::VectorStamp strobe_vector;
  SimTime synced_timestamp;  ///< ε-synchronized clock reading at the sense
  SimTime local_timestamp;   ///< free-running local clock reading

  // --- ground-truth metadata, for scoring only (never read by detectors) ---
  SimTime true_sense_time;
  world::WorldEventIndex world_event = world::kNoWorldEvent;

  /// Bytes on the wire if the deployment ran only the scalar-strobe protocol.
  std::size_t wire_bytes_scalar_mode() const;
  /// Bytes if it ran only the vector-strobe protocol.
  std::size_t wire_bytes_vector_mode() const;
  /// Bytes if it ran only physical-clock timestamping.
  std::size_t wire_bytes_physical_mode() const;
};

/// Payload of an application (semantic) message.
struct ComputationPayload {
  clocks::PiggybackStamps stamps;
  std::string tag;  ///< application-defined content marker
  std::size_t body_bytes = 16;

  std::size_t wire_bytes() const;
};

/// Payload of an actuation command (detector → actuator; paper §2.2: "if
/// the predicate is satisfied, a message send event is also triggered to
/// actuate one or multiple sensor/actuator nodes to output to the
/// environment objects"). The receiving node applies `value` to the named
/// world attribute — an a-event.
struct ActuationPayload {
  std::string command;
  SimTime issued_at;
  world::ObjectId object = world::kNoObject;
  std::string attribute;
  world::AttributeValue value;
};

using Payload =
    std::variant<SenseReportPayload, ComputationPayload, ActuationPayload>;

/// Immutable, shared message payload (DESIGN.md §11). A payload is stamped
/// exactly once — when the sender assigns it — and every copy of the Message
/// afterwards (broadcast fan-out, scheduled delivery closures, retained test
/// copies) shares the same heap cell instead of deep-copying the variant. An
/// N-process strobe broadcast therefore performs one VectorStamp allocation,
/// not N. Immutability is what makes the sharing sound: nothing downstream
/// of the stamp may mutate the payload (the const in shared_ptr<const
/// Payload> enforces it).
///
/// Assignment from a payload struct (`msg.payload = report;`) keeps every
/// pre-existing call site working; it is the one place the allocation
/// happens.
class SharedPayload {
 public:
  SharedPayload() = default;
  SharedPayload(SenseReportPayload p)  // NOLINT(google-explicit-constructor)
      : p_(std::make_shared<const Payload>(std::move(p))) {}
  SharedPayload(ComputationPayload p)  // NOLINT(google-explicit-constructor)
      : p_(std::make_shared<const Payload>(std::move(p))) {}
  SharedPayload(ActuationPayload p)  // NOLINT(google-explicit-constructor)
      : p_(std::make_shared<const Payload>(std::move(p))) {}

  bool has_value() const { return p_ != nullptr; }
  const Payload& variant() const { return *p_; }

  template <class T>
  bool holds() const {
    return p_ != nullptr && std::holds_alternative<T>(*p_);
  }
  template <class T>
  const T& get() const {
    return std::get<T>(*p_);
  }

 private:
  std::shared_ptr<const Payload> p_;
};

struct Message {
  ProcessId src = kNoProcess;
  ProcessId dst = kNoProcess;  ///< kNoProcess for broadcasts (fan-out copies set it)
  MessageKind kind = MessageKind::kComputation;
  /// Run-unique message identity, assigned by the transport (1, 2, …; 0 =
  /// never transmitted). Fan-out copies of one broadcast share the seq — it
  /// names the logical message, not the copy. The trace carries it on every
  /// send/deliver/drop record, which is what lets psn::check reconstruct
  /// exact send→receive edges even when deliveries reorder.
  std::uint64_t seq = 0;
  SimTime sent_at;       ///< true send time (set by transport)
  SimTime delivered_at;  ///< true delivery time (set by transport)
  SharedPayload payload;

  const SenseReportPayload& sense_report() const {
    return payload.get<SenseReportPayload>();
  }
  const ComputationPayload& computation() const {
    return payload.get<ComputationPayload>();
  }
  const ActuationPayload& actuation() const {
    return payload.get<ActuationPayload>();
  }
};

/// Nominal wire header: src, dst, kind, length.
inline constexpr std::size_t kWireHeaderBytes = 12;

/// On-the-wire size of `msg` when the deployment runs clock mode `mode`
/// (mode only affects strobe sense reports; computation and actuation
/// payloads are mode-independent).
std::size_t wire_bytes(const Message& msg, ClockMode mode);

/// Convenience overload for the fattest (vector-strobe) pricing — what the
/// simulated broadcast actually carries. Per-mode accounting must use the
/// two-argument form.
std::size_t wire_bytes(const Message& msg);

}  // namespace psn::net
