#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace psn::net {

/// The logical network overlay L over which processes in P communicate
/// (paper §2.1). Undirected; multi-hop delivery accumulates one delay sample
/// per hop along the shortest path. L "is a dynamically changing graph" in
/// the paper; edges may be added/removed mid-run.
class Overlay {
 public:
  explicit Overlay(std::size_t n);

  static Overlay complete(std::size_t n);
  /// Star centered on `hub` (the common root-P0 configuration).
  static Overlay star(std::size_t n, ProcessId hub = 0);
  static Overlay ring(std::size_t n);
  /// Path 0-1-2-…-(n-1); the worst diameter, for stress tests.
  static Overlay line(std::size_t n);

  std::size_t size() const { return n_; }
  void add_edge(ProcessId a, ProcessId b);
  void remove_edge(ProcessId a, ProcessId b);
  bool has_edge(ProcessId a, ProcessId b) const;
  const std::vector<ProcessId>& neighbors(ProcessId p) const;

  bool is_connected() const;
  /// Hop count of the shortest path, or SIZE_MAX if unreachable.
  ///
  /// O(1) in steady state: the transport asks this once per transmitted
  /// copy, so BFS rows are computed lazily per source and cached until the
  /// next add_edge/remove_edge (the alloc-guard suite pins the transmit
  /// path at zero allocations — a per-call BFS was three). The cache makes
  /// this const method non-reentrant: an Overlay must not be shared across
  /// threads, matching the one-overlay-per-run ownership everywhere else.
  std::size_t hop_distance(ProcessId from, ProcessId to) const;

 private:
  /// Degree at or below which hop_distance answers direct-neighbor queries
  /// by scanning the adjacency list instead of building a BFS row.
  static constexpr std::size_t kDirectScanDegree = 4;

  const std::vector<std::size_t>& distance_row(ProcessId from) const;

  std::size_t n_;
  std::vector<std::vector<ProcessId>> adj_;
  /// Lazy shortest-path cache: dist_rows_[p] is p's BFS row when
  /// row_valid_[p], recomputed in place (capacity reused) after edge
  /// mutations. bfs_queue_ is the BFS scratch, likewise recycled.
  mutable std::vector<std::vector<std::size_t>> dist_rows_;
  mutable std::vector<char> row_valid_;
  mutable std::vector<ProcessId> bfs_queue_;
};

}  // namespace psn::net
