#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace psn::net {

/// The logical network overlay L over which processes in P communicate
/// (paper §2.1). Undirected; multi-hop delivery accumulates one delay sample
/// per hop along the shortest path. L "is a dynamically changing graph" in
/// the paper; edges may be added/removed mid-run.
class Overlay {
 public:
  explicit Overlay(std::size_t n);

  static Overlay complete(std::size_t n);
  /// Star centered on `hub` (the common root-P0 configuration).
  static Overlay star(std::size_t n, ProcessId hub = 0);
  static Overlay ring(std::size_t n);
  /// Path 0-1-2-…-(n-1); the worst diameter, for stress tests.
  static Overlay line(std::size_t n);

  std::size_t size() const { return n_; }
  void add_edge(ProcessId a, ProcessId b);
  void remove_edge(ProcessId a, ProcessId b);
  bool has_edge(ProcessId a, ProcessId b) const;
  const std::vector<ProcessId>& neighbors(ProcessId p) const;

  bool is_connected() const;
  /// Hop count of the shortest path, or SIZE_MAX if unreachable.
  std::size_t hop_distance(ProcessId from, ProcessId to) const;

 private:
  std::size_t n_;
  std::vector<std::vector<ProcessId>> adj_;
};

}  // namespace psn::net
