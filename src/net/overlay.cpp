#include "net/overlay.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psn::net {

Overlay::Overlay(std::size_t n)
    : n_(n), adj_(n), dist_rows_(n), row_valid_(n, 0) {
  PSN_CHECK(n > 0, "overlay needs at least one process");
}

Overlay Overlay::complete(std::size_t n) {
  Overlay o(n);
  for (ProcessId a = 0; a < n; ++a) {
    for (ProcessId b = a + 1; b < n; ++b) o.add_edge(a, b);
  }
  return o;
}

Overlay Overlay::star(std::size_t n, ProcessId hub) {
  Overlay o(n);
  PSN_CHECK(hub < n, "hub out of range");
  for (ProcessId p = 0; p < n; ++p) {
    if (p != hub) o.add_edge(hub, p);
  }
  return o;
}

Overlay Overlay::ring(std::size_t n) {
  Overlay o(n);
  if (n == 1) return o;
  for (ProcessId p = 0; p < n; ++p) {
    o.add_edge(p, static_cast<ProcessId>((p + 1) % n));
  }
  return o;
}

Overlay Overlay::line(std::size_t n) {
  Overlay o(n);
  for (ProcessId p = 0; p + 1 < n; ++p) {
    o.add_edge(p, static_cast<ProcessId>(p + 1));
  }
  return o;
}

void Overlay::add_edge(ProcessId a, ProcessId b) {
  PSN_CHECK(a < n_ && b < n_, "edge endpoint out of range");
  PSN_CHECK(a != b, "self-loops not allowed");
  if (has_edge(a, b)) return;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  std::fill(row_valid_.begin(), row_valid_.end(), 0);
}

void Overlay::remove_edge(ProcessId a, ProcessId b) {
  PSN_CHECK(a < n_ && b < n_, "edge endpoint out of range");
  std::erase(adj_[a], b);
  std::erase(adj_[b], a);
  std::fill(row_valid_.begin(), row_valid_.end(), 0);
}

bool Overlay::has_edge(ProcessId a, ProcessId b) const {
  PSN_CHECK(a < n_ && b < n_, "edge endpoint out of range");
  return std::find(adj_[a].begin(), adj_[a].end(), b) != adj_[a].end();
}

const std::vector<ProcessId>& Overlay::neighbors(ProcessId p) const {
  PSN_CHECK(p < n_, "process out of range");
  return adj_[p];
}

bool Overlay::is_connected() const {
  if (n_ == 1) return true;
  std::size_t reached = 0;
  for (ProcessId p = 0; p < n_; ++p) {
    if (hop_distance(0, p) != SIZE_MAX) reached++;
  }
  return reached == n_;
}

const std::vector<std::size_t>& Overlay::distance_row(ProcessId from) const {
  std::vector<std::size_t>& dist = dist_rows_[from];
  if (row_valid_[from]) return dist;
  dist.assign(n_, SIZE_MAX);
  bfs_queue_.clear();
  dist[from] = 0;
  bfs_queue_.push_back(from);
  // Plain vector + read cursor as the BFS queue: push_back never outruns n_,
  // so after the first row both buffers sit at full capacity and a
  // recomputation allocates nothing.
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const ProcessId cur = bfs_queue_[head];
    for (const ProcessId nb : adj_[cur]) {
      if (dist[nb] != SIZE_MAX) continue;
      dist[nb] = dist[cur] + 1;
      bfs_queue_.push_back(nb);
    }
  }
  row_valid_[from] = 1;
  return dist;
}

std::size_t Overlay::hop_distance(ProcessId from, ProcessId to) const {
  PSN_CHECK(from < n_ && to < n_, "process out of range");
  if (from == to) return 0;
  // Small-degree fast path: a leaf that only ever talks to a direct
  // neighbor (a city-scale sensor unicasting to the star hub) answers from
  // its adjacency list and never materializes an O(n) BFS row — at 10^5
  // processes the rows alone would be tens of GB.
  if (!row_valid_[from] && adj_[from].size() <= kDirectScanDegree) {
    const auto& nb = adj_[from];
    if (std::find(nb.begin(), nb.end(), to) != nb.end()) return 1;
  }
  return distance_row(from)[to];
}

}  // namespace psn::net
