#include "net/overlay.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace psn::net {

Overlay::Overlay(std::size_t n) : n_(n), adj_(n) {
  PSN_CHECK(n > 0, "overlay needs at least one process");
}

Overlay Overlay::complete(std::size_t n) {
  Overlay o(n);
  for (ProcessId a = 0; a < n; ++a) {
    for (ProcessId b = a + 1; b < n; ++b) o.add_edge(a, b);
  }
  return o;
}

Overlay Overlay::star(std::size_t n, ProcessId hub) {
  Overlay o(n);
  PSN_CHECK(hub < n, "hub out of range");
  for (ProcessId p = 0; p < n; ++p) {
    if (p != hub) o.add_edge(hub, p);
  }
  return o;
}

Overlay Overlay::ring(std::size_t n) {
  Overlay o(n);
  if (n == 1) return o;
  for (ProcessId p = 0; p < n; ++p) {
    o.add_edge(p, static_cast<ProcessId>((p + 1) % n));
  }
  return o;
}

Overlay Overlay::line(std::size_t n) {
  Overlay o(n);
  for (ProcessId p = 0; p + 1 < n; ++p) {
    o.add_edge(p, static_cast<ProcessId>(p + 1));
  }
  return o;
}

void Overlay::add_edge(ProcessId a, ProcessId b) {
  PSN_CHECK(a < n_ && b < n_, "edge endpoint out of range");
  PSN_CHECK(a != b, "self-loops not allowed");
  if (has_edge(a, b)) return;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
}

void Overlay::remove_edge(ProcessId a, ProcessId b) {
  PSN_CHECK(a < n_ && b < n_, "edge endpoint out of range");
  std::erase(adj_[a], b);
  std::erase(adj_[b], a);
}

bool Overlay::has_edge(ProcessId a, ProcessId b) const {
  PSN_CHECK(a < n_ && b < n_, "edge endpoint out of range");
  return std::find(adj_[a].begin(), adj_[a].end(), b) != adj_[a].end();
}

const std::vector<ProcessId>& Overlay::neighbors(ProcessId p) const {
  PSN_CHECK(p < n_, "process out of range");
  return adj_[p];
}

bool Overlay::is_connected() const {
  if (n_ == 1) return true;
  std::size_t reached = 0;
  for (ProcessId p = 0; p < n_; ++p) {
    if (hop_distance(0, p) != SIZE_MAX) reached++;
  }
  return reached == n_;
}

std::size_t Overlay::hop_distance(ProcessId from, ProcessId to) const {
  PSN_CHECK(from < n_ && to < n_, "process out of range");
  if (from == to) return 0;
  std::vector<std::size_t> dist(n_, SIZE_MAX);
  std::queue<ProcessId> q;
  dist[from] = 0;
  q.push(from);
  while (!q.empty()) {
    const ProcessId cur = q.front();
    q.pop();
    for (const ProcessId nb : adj_[cur]) {
      if (dist[nb] != SIZE_MAX) continue;
      dist[nb] = dist[cur] + 1;
      if (nb == to) return dist[nb];
      q.push(nb);
    }
  }
  return dist[to];
}

}  // namespace psn::net
