#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace psn::net {

/// Whether a given transmission is lost. The paper notes (§4.2.2 end) that a
/// strobe loss can cause wrong detection *near* the loss but has "no
/// long-term ripple effects" — experiment E8 injects losses with these models
/// and measures where the errors land.
class LossModel {
 public:
  virtual ~LossModel() = default;
  virtual bool drop(SimTime now, Rng& rng) = 0;
  virtual std::string name() const = 0;
};

class NoLoss final : public LossModel {
 public:
  bool drop(SimTime, Rng&) override { return false; }
  std::string name() const override { return "none"; }
};

/// Independent loss with probability p per transmission.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p);
  bool drop(SimTime, Rng& rng) override;
  std::string name() const override;

 private:
  double p_;
};

/// Two-state Gilbert–Elliott channel: correlated loss bursts. State switches
/// are evaluated per transmission with the given switch probabilities.
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                     double loss_in_good, double loss_in_bad);
  bool drop(SimTime, Rng& rng) override;
  std::string name() const override { return "gilbert-elliott"; }

 private:
  double p_gb_, p_bg_, loss_good_, loss_bad_;
  bool bad_ = false;
};

/// Drops every transmission inside fixed true-time windows — the E8
/// fault-injection instrument: the error locality claim needs losses at
/// *known* times.
class ScheduledBurstLoss final : public LossModel {
 public:
  struct Window {
    SimTime begin;
    SimTime end;
  };
  explicit ScheduledBurstLoss(std::vector<Window> windows);
  bool drop(SimTime now, Rng&) override;
  std::string name() const override { return "scheduled-burst"; }

 private:
  std::vector<Window> windows_;
};

}  // namespace psn::net
