#include "net/transport.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/hot.hpp"

namespace psn::net {

const char* to_string(MessageKind k) {
  switch (k) {
    case MessageKind::kComputation: return "computation";
    case MessageKind::kStrobe: return "strobe";
    case MessageKind::kSync: return "sync";
    case MessageKind::kActuation: return "actuation";
  }
  return "?";
}

const char* to_string(ClockMode m) {
  switch (m) {
    case ClockMode::kScalarStrobe: return "scalar";
    case ClockMode::kVectorStrobe: return "vector";
    case ClockMode::kPhysical: return "physical";
  }
  return "?";
}

namespace {
constexpr std::size_t kObjectIdBytes = 4;
constexpr std::size_t kAttrIdBytes = 4;
constexpr std::size_t kValueBytes = 8;
constexpr std::size_t kTimestampBytes = 8;
constexpr std::size_t kPidBytes = 4;

std::size_t sense_report_base() {
  return kWireHeaderBytes + kObjectIdBytes + kAttrIdBytes + kValueBytes;
}
}  // namespace

std::size_t SenseReportPayload::wire_bytes_scalar_mode() const {
  return sense_report_base() + kTimestampBytes + kPidBytes;  // scalar + pid
}

std::size_t SenseReportPayload::wire_bytes_vector_mode() const {
  return sense_report_base() + strobe_vector.wire_size() + kPidBytes;
}

std::size_t SenseReportPayload::wire_bytes_physical_mode() const {
  return sense_report_base() + kTimestampBytes;
}

std::size_t ComputationPayload::wire_bytes() const {
  return kWireHeaderBytes + clocks::ScalarStamp::wire_size() + kPidBytes +
         stamps.causal_vector.wire_size() + body_bytes;
}

std::size_t wire_bytes(const Message& msg, ClockMode mode) {
  if (msg.payload.holds<SenseReportPayload>()) {
    const SenseReportPayload& report = msg.sense_report();
    switch (mode) {
      case ClockMode::kScalarStrobe: return report.wire_bytes_scalar_mode();
      case ClockMode::kVectorStrobe: return report.wire_bytes_vector_mode();
      case ClockMode::kPhysical: return report.wire_bytes_physical_mode();
    }
  }
  if (msg.payload.holds<ComputationPayload>()) {
    return msg.computation().wire_bytes();
  }
  return kWireHeaderBytes + 16;  // actuation: command id + issue time
}

std::size_t wire_bytes(const Message& msg) {
  return wire_bytes(msg, ClockMode::kVectorStrobe);
}

std::size_t MessageStats::StrobeModeBytes::of(ClockMode mode) const {
  switch (mode) {
    case ClockMode::kScalarStrobe: return scalar;
    case ClockMode::kVectorStrobe: return vector;
    case ClockMode::kPhysical: return physical;
  }
  return 0;
}

std::size_t MessageStats::total_sent() const {
  std::size_t s = 0;
  for (const auto& k : per_kind_) s += k.sent;
  return s;
}

std::size_t MessageStats::total_bytes() const {
  std::size_t s = 0;
  for (const auto& k : per_kind_) s += k.bytes_sent;
  return s;
}

Transport::Transport(sim::Simulation& sim, Overlay overlay,
                     std::unique_ptr<DelayModel> delay,
                     std::unique_ptr<LossModel> loss, Rng rng)
    : sim_(sim),
      overlay_(std::move(overlay)),
      delay_(std::move(delay)),
      loss_(std::move(loss)),
      handlers_(overlay_.size()),
      // One draw from the injected substream seeds every per-message Rng.
      // Shard replicas built from the same master seed get the same value,
      // so a message's delay/loss draws match wherever its sender lives.
      msg_seed_(rng.engine()()),
      per_source_next_(overlay_.size(), 0),
      wake_(overlay_.size()) {
  PSN_CHECK(delay_ != nullptr, "transport needs a delay model");
  PSN_CHECK(loss_ != nullptr, "transport needs a loss model");
  MetricsRegistry& m = sim_.metrics();
  sent_metric_ = m.counter("net.sent");
  bytes_metric_ = m.counter("net.bytes_sent");
  delivered_metric_ = m.counter("net.delivered");
  dropped_metric_ = m.counter("net.dropped");
  unreachable_metric_ = m.counter("net.unreachable");
  delay_ms_metric_ = m.histogram("net.delivery_delay_ms", 0.0, 1000.0, 50);
}

void Transport::set_fault_schedule(const sim::FaultSchedule* faults) {
  faults_ = faults;
  partitions_applied_ = 0;
  cut_edges_active_ = 0;
  if (faults_ == nullptr) return;
  // Registered only under a fault plan: fault-free runs keep their exact
  // metric set (golden metrics CSVs pin it byte-for-byte).
  MetricsRegistry& m = sim_.metrics();
  drops_loss_metric_ = m.counter("net.drops.loss");
  drops_crashed_metric_ = m.counter("net.drops.crashed_dst");
  drops_partition_metric_ = m.counter("net.drops.partition");
  drops_duty_metric_ = m.counter("net.drops.duty_cycle");
}

PSN_HOT void Transport::apply_partition_epoch() {
  const std::size_t epoch = faults_->partition_epoch(sim_.now());
  while (partitions_applied_ < epoch) {
    const sim::PartitionTransition& t =
        faults_->partition_transitions()[partitions_applied_++];
    if (t.cut) {
      overlay_.remove_edge(t.a, t.b);
      cut_edges_active_++;
    } else {
      overlay_.add_edge(t.a, t.b);
      cut_edges_active_--;
    }
  }
}

void Transport::set_wake_schedule(ProcessId pid, const DutyCycle& schedule) {
  PSN_CHECK(pid < wake_.size(), "pid out of range");
  PSN_CHECK(schedule.valid(), "invalid duty cycle schedule");
  wake_[pid] = schedule;
}

void Transport::clear_wake_schedule(ProcessId pid) {
  PSN_CHECK(pid < wake_.size(), "pid out of range");
  wake_[pid].reset();
}

void Transport::register_handler(ProcessId pid, Handler handler) {
  PSN_CHECK(pid < handlers_.size(), "pid out of range");
  PSN_CHECK(static_cast<bool>(handler), "null handler");
  handlers_[pid] = std::move(handler);
}

PSN_HOT std::uint64_t Transport::next_seq_for(ProcessId src) {
  // Per-source allocation with stride |P|: source s's n-th message gets
  // n·|P| + s + 1. Ids stay run-unique and 1-based, but no longer depend on
  // the global send interleaving — shard the run any way you like and every
  // message keeps its id.
  return per_source_next_[src]++ * static_cast<std::uint64_t>(overlay_.size()) +
         src + 1;
}

PSN_HOT std::uint64_t Transport::unicast(Message msg) {
  PSN_CHECK(msg.src < overlay_.size() && msg.dst < overlay_.size(),
            "message endpoints out of range");
  PSN_CHECK(msg.src != msg.dst, "self-addressed message");
  msg.seq = next_seq_for(msg.src);
  const std::uint64_t seq = msg.seq;
  const std::size_t bytes = wire_bytes(msg, clock_mode_);
  transmit(std::move(msg), bytes);
  return seq;
}

PSN_HOT std::uint64_t Transport::broadcast(Message msg) {
  PSN_CHECK(msg.src < overlay_.size(), "broadcast source out of range");
  msg.seq = next_seq_for(msg.src);  // one logical message; copies share it
  const std::uint64_t seq = msg.seq;
  // Every fan-out copy shares msg's immutable payload cell (one stamp
  // allocation per broadcast, not one per recipient) and — since wire size
  // is a pure function of payload, kind, and mode — the same byte price.
  const std::size_t bytes = wire_bytes(msg, clock_mode_);
  for (ProcessId p = 0; p < overlay_.size(); ++p) {
    if (p == msg.src) continue;
    Message copy = msg;
    copy.dst = p;
    transmit(std::move(copy), bytes);
  }
  return seq;
}

PSN_HOT void Transport::transmit(Message msg, std::size_t bytes) {
  auto& ks = stats_.of(msg.kind);
  const auto kind_index = static_cast<int>(msg.kind);

  // Partition transitions with at <= now must be on the overlay before any
  // routing decision — reachability is then a pure function of send time.
  if (faults_ != nullptr) apply_partition_epoch();

  // Reachability first: a message with no route never leaves the node, so
  // it must not inflate sent/bytes totals (partition scenarios otherwise
  // overstate radio cost). Unreachable is its own tally. With a cut window
  // active the lost route is attributed to the partition (the note feeds
  // the fault-aware audit's span builder).
  const std::size_t hops = overlay_.hop_distance(msg.src, msg.dst);
  if (hops == SIZE_MAX) {
    ks.unreachable++;
    unreachable_metric_.inc();
    const bool partitioned = faults_ != nullptr && cut_edges_active_ > 0;
    if (partitioned) drops_partition_metric_.inc();
    if (sim::TraceRecorder* tr = sim_.trace()) {
      tr->record({sim_.now(), sim::TraceKind::kUnreachable, msg.src, msg.dst,
                  kind_index, 0,
                  partitioned ? std::string("partition") : std::string(),
                  msg.seq});
    }
    return;
  }

  ks.sent++;
  ks.bytes_sent += bytes;
  sent_metric_.inc();
  bytes_metric_.inc(bytes);
  if (msg.kind == MessageKind::kStrobe) {
    // Shadow per-mode totals: one run answers E7 for all three options.
    const SenseReportPayload& report = msg.sense_report();
    stats_.strobe_mode_bytes.scalar += report.wire_bytes_scalar_mode();
    stats_.strobe_mode_bytes.vector += report.wire_bytes_vector_mode();
    stats_.strobe_mode_bytes.physical += report.wire_bytes_physical_mode();
  }
  msg.sent_at = sim_.now();
  if (sim::TraceRecorder* tr = sim_.trace()) {
    tr->record({sim_.now(), sim::TraceKind::kSend, msg.src, msg.dst,
                kind_index, bytes, {}, msg.seq});
  }

  // A private Rng per copy, keyed by (transport seed, seq, dst): delay and
  // loss draws depend only on the message's identity, never on how sends
  // from different processes interleave globally. This is what lets shards
  // transmit concurrently yet byte-match the serial run (DESIGN.md §14).
  Rng hop_rng(mix64(msg_seed_ ^ mix64(msg.seq) ^
                    (0x9e3779b97f4a7c15ULL *
                     (static_cast<std::uint64_t>(msg.dst) + 1))));
  Duration total = Duration::zero();
  for (std::size_t h = 0; h < hops; ++h) {
    if (loss_->drop(sim_.now(), hop_rng)) {
      ks.dropped++;
      dropped_metric_.inc();
      drops_loss_metric_.inc();  // inert unless a fault schedule is installed
      if (sim::TraceRecorder* tr = sim_.trace()) {
        tr->record({sim_.now(), sim::TraceKind::kDrop, msg.src, msg.dst,
                    kind_index, bytes, {}, msg.seq});
      }
      return;
    }
    total += delay_->sample(hop_rng);
  }
  const SimTime raw_at = sim_.now() + total;
  SimTime at = raw_at;
  // Duty cycling: an arrival during the receiver's sleep window waits at
  // the MAC until the next wake edge.
  if (wake_[msg.dst].has_value()) at = wake_[msg.dst]->next_wake(at);
  if (fifo_) {
    SimTime& last = last_delivery_[{msg.src, msg.dst}];
    if (at <= last) at = last + Duration::nanos(1);
    last = at;
  }
  // A delivery landing inside the destination's crash window is dropped —
  // decided here on the sender's side (like the duty clamp above), so the
  // outcome is a pure function of (schedule, message) at any shard layout.
  // Cause "duty-cycle" marks the arrival that would have been fine but for
  // a sleep deferral into the window; everything else is "crash".
  if (faults_ != nullptr && faults_->down(msg.dst, at)) {
    const bool deferred_into_crash =
        wake_[msg.dst].has_value() && !faults_->down(msg.dst, raw_at);
    ks.dropped++;
    dropped_metric_.inc();
    if (deferred_into_crash) {
      drops_duty_metric_.inc();
    } else {
      drops_crashed_metric_.inc();
    }
    if (sim::TraceRecorder* tr = sim_.trace()) {
      tr->record({sim_.now(), sim::TraceKind::kDrop, msg.src, msg.dst,
                  kind_index, bytes,
                  deferred_into_crash ? std::string("duty-cycle")
                                      : std::string("crash"),
                  msg.seq});
    }
    return;
  }
  const std::uint64_t tie = delivery_tie(msg.seq, msg.dst);
  if (remote_route_.is_remote && remote_route_.is_remote(msg.dst)) {
    remote_route_.enqueue(at, tie, std::move(msg), bytes);
    return;
  }
  // Δ = 0 (the synchronous model) delivers inline: the strobe must be merged
  // at every receiver before any later event at this instant, which is both
  // the paper's instantaneous-delivery semantics and the order the canonical
  // trace records it — deferring through the scheduler would let co-instant
  // events queued earlier run first and the checker's replay would diverge
  // from the claimed clocks.
  if (at == sim_.now()) {
    deliver_now(std::move(msg), bytes);
    return;
  }
  auto deliver = [this, msg = std::move(msg), bytes]() mutable {
    deliver_now(std::move(msg), bytes);
  };
  // The whole point of the shared payload: the per-recipient delivery
  // closure is small enough to live inside the scheduler's slab slot, so a
  // broadcast fan-out schedules N deliveries with zero heap allocations.
  static_assert(sim::Scheduler::Callback::stores_inline<decltype(deliver)>(),
                "delivery closure must fit the scheduler's inline buffer");
  sim_.scheduler().schedule_at(at, tie, std::move(deliver));
}

std::uint64_t Transport::delivery_tie(std::uint64_t seq, ProcessId dst) {
  PSN_CHECK(dst < (1u << 20), "pid too large for delivery-tie encoding");
  return (seq << 20) | dst;
}

PSN_HOT void Transport::deliver_now(Message msg, std::size_t bytes) {
  const ProcessId dst = msg.dst;
  auto& stats = stats_.of(msg.kind);
  PSN_CHECK(static_cast<bool>(handlers_[dst]),
            "no handler registered for destination process");
  msg.delivered_at = sim_.now();
  stats.delivered++;
  delivered_metric_.inc();
  delay_ms_metric_.add((msg.delivered_at - msg.sent_at).to_millis());
  if (sim::TraceRecorder* tr = sim_.trace()) {
    tr->record({sim_.now(), sim::TraceKind::kDeliver, dst, msg.src,
                static_cast<int>(msg.kind), bytes, {}, msg.seq});
  }
  handlers_[dst](msg);
}

void Transport::inject_delivery(SimTime at, std::uint64_t tie, Message msg,
                                std::size_t bytes) {
  PSN_CHECK(at >= sim_.now(), "injected delivery lands in this shard's past");
  auto deliver = [this, msg = std::move(msg), bytes]() mutable {
    deliver_now(std::move(msg), bytes);
  };
  static_assert(sim::Scheduler::Callback::stores_inline<decltype(deliver)>(),
                "delivery closure must fit the scheduler's inline buffer");
  sim_.scheduler().schedule_at(at, tie, std::move(deliver));
}

}  // namespace psn::net
