#include "net/shard_map.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psn::net {

ShardMap ShardMap::partition(const Overlay& overlay, std::size_t shards) {
  const std::size_t n = overlay.size();
  PSN_CHECK(shards >= 1, "need at least one shard");
  PSN_CHECK(shards <= n, "more shards than processes");

  // cut(c) = number of overlay edges (a, b), a < b, crossing the candidate
  // boundary c (i.e. a < c <= b), accumulated as a difference array: each
  // edge contributes +1 to every boundary in (a, b].
  std::vector<std::int64_t> diff(n + 1, 0);
  for (ProcessId a = 0; a < n; ++a) {
    for (const ProcessId b : overlay.neighbors(a)) {
      if (a < b) {
        diff[a + 1]++;
        diff[static_cast<std::size_t>(b) + 1]--;
      }
    }
  }
  std::vector<std::int64_t> cut(n + 1, 0);
  for (std::size_t c = 1; c <= n; ++c) cut[c] = cut[c - 1] + diff[c];

  ShardMap m;
  m.starts_.assign(shards + 1, 0);
  m.starts_[shards] = static_cast<ProcessId>(n);
  const std::size_t slack = std::max<std::size_t>(1, n / (4 * shards));
  for (std::size_t k = 1; k < shards; ++k) {
    const std::size_t ideal = k * n / shards;
    // The window is clipped so every shard (this one and all still to be
    // fenced off) keeps at least one pid.
    std::size_t lo = std::max<std::size_t>(m.starts_[k - 1] + 1,
                                           ideal > slack ? ideal - slack : 1);
    std::size_t hi = std::min(ideal + slack, n - (shards - k));
    if (hi < lo) {
      lo = hi = std::max<std::size_t>(m.starts_[k - 1] + 1,
                                      std::min(ideal, n - (shards - k)));
    }
    std::size_t best = lo;
    for (std::size_t c = lo + 1; c <= hi; ++c) {
      if (cut[c] < cut[best]) best = c;
    }
    m.starts_[k] = static_cast<ProcessId>(best);
  }

  m.shard_of_.resize(n);
  for (std::size_t k = 0; k < shards; ++k) {
    for (ProcessId p = m.starts_[k]; p < m.starts_[k + 1]; ++p) {
      m.shard_of_[p] = static_cast<std::uint32_t>(k);
    }
  }
  for (ProcessId a = 0; a < n; ++a) {
    for (const ProcessId b : overlay.neighbors(a)) {
      if (a < b && m.shard_of_[a] != m.shard_of_[b]) m.cut_edges_++;
    }
  }
  return m;
}

}  // namespace psn::net
