#include "check/stream_checker.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/hot.hpp"
#include "net/message.hpp"

namespace psn::check {

namespace {

constexpr int kStrobeKind = static_cast<int>(net::MessageKind::kStrobe);
constexpr int kComputationKind =
    static_cast<int>(net::MessageKind::kComputation);

}  // namespace

StreamChecker::StreamChecker(const StreamCheckerConfig& config)
    : cfg_(config),
      executions_(config.executions),
      comp_sent_(SeqMap<SentComputation>::allocator_type(arena_)),
      strobe_sent_(SeqMap<SentStrobe>::allocator_type(arena_)),
      pending_order_(PoolAllocator<PendingEntry>(arena_)) {
  if (bound()) {
    PSN_CHECK(executions_->size() == cfg_.num_processes,
              "StreamChecker: executions must have one entry per process");
  }
  states_.resize(cfg_.num_processes);
  for (auto& s : states_) {
    s.causal_vc = clocks::VectorStamp(cfg_.num_processes);
    s.strobe_vc = clocks::VectorStamp(cfg_.num_processes);
  }
  hb_.contract = "hb-graph";
  lamport_.contract = "lamport";
  vector_.contract = "vector";
  strobe_scalar_.contract = "strobe-scalar";
  strobe_vector_.contract = "strobe-vector";
  soundness_.contract = "strobe-soundness";
  epsilon_.contract = "physical-epsilon";
  drift_.contract = "physical-drift";
  validity_.contract = "validity-horizon";
  fault_.contract = "fault-model";
  down_.resize(cfg_.num_processes, 0);
  cut_edges_.reserve(8);
}

void StreamChecker::add(ContractResult& c, CheckViolation v) {
  c.violations_total++;
  if (in_feed_ && !feed_violation_.has_value()) feed_violation_ = v;
  if (c.violations.size() < cfg_.options.max_recorded_violations) {
    c.violations.push_back(std::move(v));
  }
}

std::size_t StreamChecker::violations_so_far() const {
  std::size_t n = 0;
  for (const ContractResult* c :
       {&hb_, &lamport_, &vector_, &strobe_scalar_, &strobe_vector_,
        &soundness_, &epsilon_, &drift_, &validity_, &fault_}) {
    n += c->violations_total;
  }
  return n;
}

PSN_HOT std::optional<CheckViolation> StreamChecker::feed(
    const sim::TraceRecord& record) {
  records_fed_++;
  feed_violation_.reset();
  in_feed_ = true;
  // kDetect records are appended out-of-band (batch traces rewind their
  // timestamps to the causing sense), so they neither advance the eviction
  // clock nor participate in matching.
  if (record.kind != sim::TraceKind::kDetect) evict_expired(record.at);

  // Fault records are mode-independent: they drive the crash/partition
  // replay (fault-model contract) whether or not executions are bound.
  switch (record.kind) {
    case sim::TraceKind::kCrash:
    case sim::TraceKind::kRestart:
    case sim::TraceKind::kPartition:
    case sim::TraceKind::kHeal:
      on_fault_record(record);
      in_feed_ = false;
      return std::exchange(feed_violation_, std::nullopt);
    default:
      break;
  }
  if (saw_fault_records_) check_down_activity(record);

  if (bound()) {
    switch (record.kind) {
      case sim::TraceKind::kSense:
        consume_target(record.pid, core::EventType::kSense, record.seq,
                       record);
        break;
      case sim::TraceKind::kSend:
        if (record.message_kind == kComputationKind) {
          consume_target(record.pid, core::EventType::kSend, record.seq,
                         record);
        }
        break;
      case sim::TraceKind::kReceive:
        if (record.message_kind == kComputationKind) {
          consume_target(record.pid, core::EventType::kReceive, record.seq,
                         record);
        }
        break;
      case sim::TraceKind::kDeliver:
        if (record.message_kind == kStrobeKind) on_strobe_delivery(record);
        break;
      case sim::TraceKind::kDrop:
      case sim::TraceKind::kUnreachable:
      case sim::TraceKind::kDetect:
      case sim::TraceKind::kCrash:
      case sim::TraceKind::kRestart:
      case sim::TraceKind::kPartition:
      case sim::TraceKind::kHeal:  // fault kinds returned above
        break;
    }
  } else {
    // Trace-only mode: no claimed executions to replay clocks against, so
    // only the structural send/receive + sense/deliver matching and the
    // temporal-validity contract run. This is the soak server's mode — the
    // wire carries trace records, never per-process clock claims.
    const bool pid_known =
        cfg_.num_processes == 0 || record.pid < cfg_.num_processes;
    switch (record.kind) {
      case sim::TraceKind::kSense:
        hb_.events_checked++;
        if (!pid_known) {
          add(hb_, {ViolationKind::kUnmatchedSend, record.pid, 0, record.seq,
                    record.at, "trace names pid out of range"});
          break;
        }
        if (record.seq != 0) {
          strobe_sent_[record.seq] =
              SentStrobe{0, clocks::VectorStamp(), record.at};
          if (cfg_.send_retention != Duration::max()) {
            pending_order_.push_back({record.at, record.seq, true});
          }
        }
        break;
      case sim::TraceKind::kSend:
        hb_.events_checked++;
        if (!pid_known) {
          add(hb_, {ViolationKind::kUnmatchedSend, record.pid, 0, record.seq,
                    record.at, "trace names pid out of range"});
          break;
        }
        if (record.message_kind == kComputationKind && record.seq != 0) {
          comp_sent_[record.seq] =
              SentComputation{clocks::VectorStamp(), 0, record.at};
          if (cfg_.send_retention != Duration::max()) {
            pending_order_.push_back({record.at, record.seq, false});
          }
        }
        break;
      case sim::TraceKind::kReceive:
        if (record.message_kind == kComputationKind) {
          hb_.events_checked++;
          const auto it = comp_sent_.find(record.seq);
          if (record.seq == 0 || it == comp_sent_.end()) {
            add(hb_, {ViolationKind::kUnmatchedReceive, record.pid, 0,
                      record.seq, record.at,
                      "receive record has no matching send (dropped "
                      "send->receive edge)"});
          } else {
            // Unicast: matched once, evict immediately — this is what keeps
            // the working set proportional to traffic in flight.
            comp_sent_.erase(it);
          }
        }
        break;
      case sim::TraceKind::kDeliver:
        if (record.message_kind == kStrobeKind) {
          hb_.events_checked++;
          const auto it = strobe_sent_.find(record.seq);
          if (record.seq == 0 || it == strobe_sent_.end()) {
            add(hb_,
                {ViolationKind::kUnmatchedDeliver, record.pid, 0, record.seq,
                 record.at, "strobe delivery from an unknown sense broadcast"});
          } else {
            // Broadcast copies share the seq, so the entry stays until the
            // retention window passes it.
            check_validity(record, it->second.sensed_at);
          }
        }
        break;
      case sim::TraceKind::kDrop:
      case sim::TraceKind::kUnreachable:
        // A dropped unicast computation message can never be received;
        // release its entry now rather than waiting out the window.
        if (record.message_kind == kComputationKind) {
          comp_sent_.erase(record.seq);
        }
        break;
      case sim::TraceKind::kDetect:
      case sim::TraceKind::kCrash:
      case sim::TraceKind::kRestart:
      case sim::TraceKind::kPartition:
      case sim::TraceKind::kHeal:  // fault kinds returned above
        break;
    }
  }

  in_feed_ = false;
  return std::exchange(feed_violation_, std::nullopt);
}

/// Replays one fault record into the down/cut state, flagging malformed
/// pairings: crashes must alternate with restarts per process, cuts with
/// heals per edge. A forged or re-ordered fault stream fails here instead
/// of silently excusing detector errors downstream.
void StreamChecker::on_fault_record(const sim::TraceRecord& r) {
  saw_fault_records_ = true;
  fault_.events_checked++;
  if (r.pid >= down_.size()) down_.resize(r.pid + 1, 0);
  switch (r.kind) {
    case sim::TraceKind::kCrash:
      if (down_[r.pid] != 0) {
        add(fault_, {ViolationKind::kFaultPairing, r.pid, 0, 0, r.at,
                     "crash record for a process that is already down"});
      }
      down_[r.pid] = 1;
      break;
    case sim::TraceKind::kRestart:
      if (down_[r.pid] == 0) {
        add(fault_, {ViolationKind::kFaultPairing, r.pid, 0, 0, r.at,
                     "restart record for a process that was not down"});
      }
      down_[r.pid] = 0;
      break;
    case sim::TraceKind::kPartition: {
      const std::pair<ProcessId, ProcessId> edge{std::min(r.pid, r.peer),
                                                 std::max(r.pid, r.peer)};
      const auto it = std::find(cut_edges_.begin(), cut_edges_.end(), edge);
      if (it != cut_edges_.end()) {
        add(fault_, {ViolationKind::kFaultPairing, r.pid, 0, 0, r.at,
                     "partition record for an edge that is already cut"});
      } else {
        cut_edges_.push_back(edge);
      }
      break;
    }
    case sim::TraceKind::kHeal: {
      const std::pair<ProcessId, ProcessId> edge{std::min(r.pid, r.peer),
                                                 std::max(r.pid, r.peer)};
      const auto it = std::find(cut_edges_.begin(), cut_edges_.end(), edge);
      if (it == cut_edges_.end()) {
        add(fault_, {ViolationKind::kFaultPairing, r.pid, 0, 0, r.at,
                     "heal record for an edge that was not cut"});
      } else {
        cut_edges_.erase(it);
      }
      break;
    }
    default:
      break;
  }
}

/// With the crash replay live, a down process must be silent: no sense or
/// send from it, no delivery or receive processed at it — the transport
/// contract says those are dropped. Drop/unreachable records are fine (that
/// is the fault doing its job), as are deliveries to *other* processes of a
/// message sent before the crash.
void StreamChecker::check_down_activity(const sim::TraceRecord& r) {
  const bool is_down = r.pid < down_.size() && down_[r.pid] != 0;
  if (!is_down) return;
  switch (r.kind) {
    case sim::TraceKind::kSense:
    case sim::TraceKind::kSend:
      add(fault_, {ViolationKind::kActivityWhileDown, r.pid, 0, r.seq, r.at,
                   std::string(sim::to_string(r.kind)) +
                       " record from a process inside its crash window"});
      break;
    case sim::TraceKind::kDeliver:
    case sim::TraceKind::kReceive:
      add(fault_, {ViolationKind::kActivityWhileDown, r.pid, 0, r.seq, r.at,
                   std::string(sim::to_string(r.kind)) +
                       " record at a process inside its crash window "
                       "(the transport must drop these)"});
      break;
    default:
      break;
  }
}

void StreamChecker::feed_execution_only(ProcessId pid,
                                        const core::ProcessEvent& event) {
  check_physical(pid, event);
  check_lamport_program_order(pid, event);
  lamport_.events_checked++;
}

void StreamChecker::skip_windowed_contracts() {
  partial_ = true;
  for (ContractResult* c :
       {&hb_, &vector_, &strobe_scalar_, &strobe_vector_, &soundness_}) {
    c->checked = false;
  }
}

/// Consumes execution events of `p` up to and including the one matching
/// (type, seq). Intermediate events are consumed as catch-up: internal
/// compute/actuate events are expected there; message-bearing events are
/// not (their own trace records should have consumed them first) and are
/// flagged kUntracedEvent. If no matching event remains, flags
/// kUnmatchedSend/kUnmatchedReceive and consumes nothing.
void StreamChecker::consume_target(ProcessId p, core::EventType type,
                                   std::uint64_t seq,
                                   const sim::TraceRecord& r) {
  if (p >= cfg_.num_processes) {
    add(hb_, {ViolationKind::kUnmatchedSend, p, 0, seq, r.at,
              "trace names pid out of range"});
    return;
  }
  const auto& events = (*executions_)[p];
  std::size_t target = states_[p].cursor;
  while (target < events.size() &&
         !(events[target].type == type && events[target].message_seq == seq)) {
    target++;
  }
  if (target == events.size()) {
    const auto kind = type == core::EventType::kReceive
                          ? ViolationKind::kUnmatchedReceive
                          : ViolationKind::kUnmatchedSend;
    add(hb_, {kind, p, 0, seq, r.at,
              std::string("trace record has no matching ") +
                  core::to_string(type) + " event in the execution"});
    return;
  }
  while (states_[p].cursor < target) {
    const core::ProcessEvent& e = events[states_[p].cursor];
    if (e.type != core::EventType::kCompute &&
        e.type != core::EventType::kActuate) {
      add(hb_, {ViolationKind::kUntracedEvent, p, e.local_index,
                e.message_seq, e.clocks.true_time,
                std::string(core::to_string(e.type)) +
                    " event skipped by the trace (record missing?)"});
    }
    consume_one(p, /*synced_with_trace=*/false);
  }
  consume_one(p, /*synced_with_trace=*/true);
}

/// Processes one execution event of `p` against every oracle.
/// `synced_with_trace` is true when this event is being consumed by its
/// own trace record, i.e. the strobe oracle state is exactly current —
/// only then are the strobe clocks compared (catch-up consumption has
/// ambiguous ordering against strobe deliveries).
void StreamChecker::consume_one(ProcessId p, bool synced_with_trace) {
  OracleState& s = states_[p];
  const core::ProcessEvent& e = (*executions_)[p][s.cursor++];
  check_physical(p, e);
  check_lamport_program_order(p, e);
  lamport_.events_checked++;

  switch (e.type) {
    case core::EventType::kReceive: {
      const auto it = comp_sent_.find(e.message_seq);
      if (e.message_seq == 0 || it == comp_sent_.end()) {
        add(hb_, {ViolationKind::kUnmatchedReceive, p, e.local_index,
                  e.message_seq, e.clocks.true_time,
                  "receive event has no matching send (dropped "
                  "send->receive edge)"});
        // Resync the oracle to the claimed stamps so one severed edge does
        // not cascade into mismatch reports for every later event.
        if (e.clocks.causal_vector.size() == s.causal_vc.size()) {
          s.causal_vc = e.clocks.causal_vector;
        }
        s.lamport_floor = e.clocks.lamport.value;
        return;
      }
      // VC3: merge the sender's oracle stamp, then tick own component.
      s.causal_vc.merge(it->second.oracle_vc);
      if (p < s.causal_vc.size()) s.causal_vc[p]++;
      // Lamport message edge: C(receive) must exceed C(send).
      if (e.clocks.lamport.value <= it->second.claimed_lamport) {
        add(lamport_,
            {ViolationKind::kLamportOrder, p, e.local_index, e.message_seq,
             e.clocks.true_time,
             "C(receive)=" + std::to_string(e.clocks.lamport.value) +
                 " not greater than C(send)=" +
                 std::to_string(it->second.claimed_lamport)});
      }
      // Unicast: matched, so the entry can go — but only under a finite
      // retention window. Batch mode (unbounded) keeps every entry so its
      // reports stay byte-identical to the original one-shot checker, even
      // on adversarial inputs that receive the same seq twice.
      if (cfg_.send_retention != Duration::max()) comp_sent_.erase(it);
      break;
    }
    case core::EventType::kSend:
      if (p < s.causal_vc.size()) s.causal_vc[p]++;  // VC2
      if (e.message_seq != 0) {
        comp_sent_[e.message_seq] = SentComputation{
            s.causal_vc, e.clocks.lamport.value, e.clocks.true_time};
        if (cfg_.send_retention != Duration::max()) {
          pending_order_.push_back(
              {e.clocks.true_time, e.message_seq, false});
        }
      }
      break;
    case core::EventType::kSense: {
      if (p < s.causal_vc.size()) s.causal_vc[p]++;  // VC1
      // SSC1/SVC1: tick the strobe oracles and remember the broadcast.
      s.strobe_scalar++;
      if (p < s.strobe_vc.size()) s.strobe_vc[p]++;
      if (e.message_seq != 0) {
        strobe_sent_[e.message_seq] =
            SentStrobe{s.strobe_scalar, s.strobe_vc, e.clocks.true_time};
        if (cfg_.send_retention != Duration::max()) {
          pending_order_.push_back(
              {e.clocks.true_time, e.message_seq, true});
        }
      }
      if (synced_with_trace) {
        strobe_scalar_.events_checked++;
        if (e.clocks.strobe_scalar.value != s.strobe_scalar) {
          add(strobe_scalar_,
              {ViolationKind::kStrobeScalarMismatch, p, e.local_index,
               e.message_seq, e.clocks.true_time,
               "claimed " + std::to_string(e.clocks.strobe_scalar.value) +
                   " != SSC replay " + std::to_string(s.strobe_scalar)});
        }
        strobe_vector_.events_checked++;
        if (e.clocks.strobe_vector != s.strobe_vc) {
          add(strobe_vector_,
              {ViolationKind::kStrobeVectorMismatch, p, e.local_index,
               e.message_seq, e.clocks.true_time,
               "claimed " + e.clocks.strobe_vector.to_string() +
                   " != SVC replay " + s.strobe_vc.to_string()});
        }
      }
      senses_.push_back(
          {e.clocks.true_time, p, e.local_index, e.clocks.strobe_vector});
      break;
    }
    case core::EventType::kCompute:
    case core::EventType::kActuate:
      if (p < s.causal_vc.size()) s.causal_vc[p]++;  // VC1
      break;
  }

  vector_.events_checked++;
  if (e.clocks.causal_vector != s.causal_vc) {
    add(vector_, {ViolationKind::kVectorMismatch, p, e.local_index,
                  e.message_seq, e.clocks.true_time,
                  "claimed " + e.clocks.causal_vector.to_string() +
                      " != oracle " + s.causal_vc.to_string()});
  }
}

void StreamChecker::on_strobe_delivery(const sim::TraceRecord& r) {
  if (r.pid >= cfg_.num_processes) return;
  const auto it = strobe_sent_.find(r.seq);
  if (r.seq == 0 || it == strobe_sent_.end()) {
    add(hb_, {ViolationKind::kUnmatchedDeliver, r.pid, 0, r.seq, r.at,
              "strobe delivery from an unknown sense broadcast"});
    return;
  }
  check_validity(r, it->second.sensed_at);
  // SSC2/SVC2: merge, no tick.
  OracleState& s = states_[r.pid];
  s.strobe_scalar = std::max(s.strobe_scalar, it->second.scalar);
  s.strobe_vc.merge(it->second.vector);
}

/// Lamport program-order edge: C strictly increases at every local event
/// (all five event types tick).
void StreamChecker::check_lamport_program_order(ProcessId p,
                                                const core::ProcessEvent& e) {
  OracleState& s = states_[p];
  if (e.clocks.lamport.value <= s.lamport_floor) {
    add(lamport_, {ViolationKind::kLamportOrder, p, e.local_index,
                   e.message_seq, e.clocks.true_time,
                   "C=" + std::to_string(e.clocks.lamport.value) +
                       " not greater than predecessor C=" +
                       std::to_string(s.lamport_floor)});
  }
  s.lamport_floor = e.clocks.lamport.value;
}

void StreamChecker::check_physical(ProcessId p, const core::ProcessEvent& e) {
  epsilon_.events_checked++;
  const Duration synced_err =
      (e.clocks.physical_synced - e.clocks.true_time).abs();
  if (synced_err > cfg_.sync_epsilon) {
    add(epsilon_,
        {ViolationKind::kEpsilonBound, p, e.local_index, 0,
         e.clocks.true_time,
         "|synced - true| = " + std::to_string(synced_err.to_seconds()) +
             "s exceeds epsilon = " +
             std::to_string(cfg_.sync_epsilon.to_seconds()) + "s"});
  }
  drift_.events_checked++;
  Duration local_delta = e.clocks.physical_local - e.clocks.true_time;
  if (cfg_.options.faults != nullptr) {
    // Declared clock faults are compensated exactly — subtract the injected
    // offset and hold the residual to the healthy envelope. An undeclared
    // excursion of the same size still fails.
    local_delta -= cfg_.options.faults->drift_offset(p, e.clocks.true_time);
  }
  const Duration local_err = local_delta.abs();
  const Duration envelope =
      cfg_.drifting.initial_offset.abs() + cfg_.drifting.read_jitter.abs() +
      Duration::from_seconds(std::abs(cfg_.drifting.drift_ppm) * 1e-6 *
                             e.clocks.true_time.to_seconds()) +
      Duration::nanos(1);  // rounding slack on the ppm term
  if (local_err > envelope) {
    add(drift_,
        {ViolationKind::kDriftBound, p, e.local_index, 0,
         e.clocks.true_time,
         "|local - true| = " + std::to_string(local_err.to_seconds()) +
             "s outside the drift envelope " +
             std::to_string(envelope.to_seconds()) + "s"});
  }
}

/// Kopetz-Steiner temporal validity: a strobe delivered after its
/// observation's horizon expired must not feed predicate evaluation.
void StreamChecker::check_validity(const sim::TraceRecord& r,
                                   SimTime sensed_at) {
  if (!cfg_.options.validity_horizon.bounded()) return;
  validity_.events_checked++;
  if (cfg_.options.validity_horizon.expired(sensed_at, r.at)) {
    add(validity_,
        {ViolationKind::kStaleObservation, r.pid, 0, r.seq, r.at,
         "observation sensed at " + std::to_string(sensed_at.to_seconds()) +
             "s delivered at " + std::to_string(r.at.to_seconds()) +
             "s, past its validity horizon of " +
             std::to_string(
                 cfg_.options.validity_horizon.lifetime.to_seconds()) +
             "s"});
  }
}

PSN_HOT void StreamChecker::evict_expired(SimTime now) {
  if (cfg_.send_retention == Duration::max()) return;
  while (!pending_order_.empty() &&
         pending_order_.front().at + cfg_.send_retention < now) {
    const PendingEntry entry = pending_order_.front();
    pending_order_.pop_front();
    // Matched entries were already erased from the map; this is the lazy
    // skip for them and the actual eviction for expired ones.
    if (entry.strobe) {
      strobe_sent_.erase(entry.seq);
    } else {
      comp_sent_.erase(entry.seq);
    }
  }
}

/// Strobe partial-order soundness: stamps can only order sense events the
/// way true time did — strobe information travels forward in time, so
/// V(a) < V(b) with true(b) < true(a) is impossible in a correct run.
void StreamChecker::scan_soundness() {
  std::vector<const SenseSample*> picked;
  picked.reserve(std::min(senses_.size(), cfg_.options.max_pairwise_events));
  if (senses_.size() <= cfg_.options.max_pairwise_events) {
    for (const auto& s : senses_) picked.push_back(&s);
  } else {
    const std::size_t stride =
        (senses_.size() + cfg_.options.max_pairwise_events - 1) /
        cfg_.options.max_pairwise_events;
    for (std::size_t i = 0; i < senses_.size(); i += stride) {
      picked.push_back(&senses_[i]);
    }
  }
  std::sort(picked.begin(), picked.end(),
            [](const SenseSample* a, const SenseSample* b) {
              return a->at < b->at;
            });
  for (std::size_t i = 0; i < picked.size(); ++i) {
    for (std::size_t j = i + 1; j < picked.size(); ++j) {
      if (picked[i]->at == picked[j]->at) continue;  // ties claim nothing
      if (picked[i]->strobe.size() != picked[j]->strobe.size()) continue;
      soundness_.pairs_checked++;
      if (clocks::happens_before(picked[j]->strobe, picked[i]->strobe)) {
        add(soundness_,
            {ViolationKind::kStrobeUnsoundOrder, picked[j]->pid,
             picked[j]->local_index, 0, picked[j]->at,
             "sense at " + std::to_string(picked[j]->at.to_seconds()) +
                 "s strobe-ordered before sense at " +
                 std::to_string(picked[i]->at.to_seconds()) + "s (pid " +
                 std::to_string(picked[i]->pid) + ")"});
      }
    }
  }
  soundness_.events_checked = picked.size();
}

CheckReport StreamChecker::finish() {
  if (bound() && !partial_) {
    // Drain events past the last trace record (trailing compute/actuate
    // events; anything message-bearing left here was never traced).
    for (ProcessId p = 0; p < cfg_.num_processes; ++p) {
      while (states_[p].cursor < (*executions_)[p].size()) {
        const core::ProcessEvent& e = (*executions_)[p][states_[p].cursor];
        if (e.type != core::EventType::kCompute &&
            e.type != core::EventType::kActuate) {
          add(hb_, {ViolationKind::kUntracedEvent, p, e.local_index,
                    e.message_seq, e.clocks.true_time,
                    std::string(core::to_string(e.type)) +
                        " event never appeared in the trace"});
        }
        consume_one(p, /*synced_with_trace=*/false);
      }
    }
  }
  if (!partial_) scan_soundness();

  CheckReport report;
  report.trace_evicted = cfg_.trace_evicted;
  report.contracts = {std::move(hb_),            std::move(lamport_),
                      std::move(vector_),        std::move(strobe_scalar_),
                      std::move(strobe_vector_), std::move(soundness_),
                      std::move(epsilon_),       std::move(drift_)};
  // The validity contract only joins the report when a horizon is actually
  // configured — the default report stays byte-identical to the original
  // eight-contract form the golden tests pin.
  if (cfg_.options.validity_horizon.bounded()) {
    report.contracts.push_back(std::move(validity_));
  }
  // Likewise the fault-model contract: it only exists for streams that
  // carried fault records, so fault-free reports keep the pinned shape.
  if (saw_fault_records_) report.contracts.push_back(std::move(fault_));
  std::size_t violations = 0;
  for (const auto& c : report.contracts) violations += c.violations_total;
  if (violations > 0) {
    report.verdict = Verdict::kViolations;
  } else if (cfg_.trace_evicted > 0) {
    report.verdict = Verdict::kPartialWindow;
  } else {
    report.verdict = Verdict::kClean;
  }
  return report;
}

}  // namespace psn::check
