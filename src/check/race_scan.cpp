#include "check/race_scan.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "clocks/timestamp.hpp"
#include "net/message.hpp"

namespace psn::check {

std::vector<RaceEvent> scan_races(const core::ObservationLog& log,
                                  const RaceScanConfig& config) {
  std::vector<RaceEvent> races;
  if (log.updates.size() < 2 || config.window <= Duration::zero()) {
    return races;
  }

  // Sort update indices by true sense time; the sliding window then only
  // ever compares pairs that can actually race.
  std::vector<std::size_t> order(log.updates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const SimTime ta = log.updates[a].report.true_sense_time;
    const SimTime tb = log.updates[b].report.true_sense_time;
    if (ta != tb) return ta < tb;
    return a < b;  // deterministic tie-break: delivery order
  });

  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& ua = log.updates[order[i]];
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      const auto& ub = log.updates[order[j]];
      const Duration gap = ub.report.true_sense_time - ua.report.true_sense_time;
      if (gap >= config.window) break;
      if (ua.reporter == ub.reporter && order[j] > order[i]) {
        // Same reporter, delivered in program order: nothing raced. But a
        // non-FIFO transport can deliver one process's updates INVERTED
        // (order[j] < order[i]: the later sense sits earlier in the log) —
        // the root then applies them out of program order, which misleads
        // detectors exactly like an inter-process race and must count as
        // one. Single-reporter deployments surfaced this: every delivery
        // inversion was invisible to the audit (found by checker_fuzz).
        continue;
      }
      RaceEvent race;
      race.update_a = order[i];
      race.update_b = order[j];
      race.pid_a = ua.reporter;
      race.pid_b = ub.reporter;
      race.true_a = ua.report.true_sense_time;
      race.true_b = ub.report.true_sense_time;
      race.gap = gap;
      // The root sees updates in log order; the later sense arriving at a
      // smaller index means delivery inverted the true order.
      race.delivery_inverted = race.update_b < race.update_a;
      const auto& va = ua.report.strobe_vector;
      const auto& vb = ub.report.strobe_vector;
      race.strobe_concurrent = va.size() > 0 && va.size() == vb.size() &&
                               clocks::concurrent(va, vb);
      races.push_back(race);
      if (races.size() >= config.max_races) return races;
    }
  }
  return races;
}

const char* to_string(FaultSpan::Cause c) {
  switch (c) {
    case FaultSpan::Cause::kDrop: return "drop";
    case FaultSpan::Cause::kCrash: return "crash";
    case FaultSpan::Cause::kPartition: return "partition";
    case FaultSpan::Cause::kStale: return "stale";
    case FaultSpan::Cause::kLateDelivery: return "late-delivery";
  }
  return "?";
}

std::vector<FaultSpan> collect_fault_spans(
    const std::vector<sim::TraceRecord>& trace,
    const core::ObservationLog& log, const FaultSpanConfig& config) {
  std::vector<FaultSpan> spans;
  constexpr int kStrobeKind = static_cast<int>(net::MessageKind::kStrobe);

  // Index the root's log by (reporter, attribute) in delivery order: healing
  // a span means finding the first delivered report of that attribute
  // carrying information at least as new as what went missing.
  std::map<std::pair<ProcessId, std::string>,
           std::vector<const core::ReceivedUpdate*>>
      by_attr;
  for (const core::ReceivedUpdate& u : log.updates) {
    by_attr[{u.reporter, u.report.attribute}].push_back(&u);
  }
  const auto healed_at = [&](ProcessId reporter, const std::string& attr,
                             SimTime missing_since) {
    const auto it = by_attr.find({reporter, attr});
    if (it == by_attr.end()) return SimTime::max();
    for (const core::ReceivedUpdate* u : it->second) {
      if (u->report.true_sense_time >= missing_since) return u->delivered_at;
    }
    return SimTime::max();
  };

  // One pass over the (canonical) trace: index sense records by strobe seq,
  // collect each reporter's attribute set, and pair up fault windows.
  std::unordered_map<std::uint64_t, const sim::TraceRecord*> sense_by_seq;
  std::map<ProcessId, std::set<std::string>> attrs_of;
  std::map<ProcessId, SimTime> open_crash;
  std::map<std::pair<ProcessId, ProcessId>, SimTime> open_cut;
  std::vector<const sim::TraceRecord*> root_drops;
  for (const sim::TraceRecord& r : trace) {
    switch (r.kind) {
      case sim::TraceKind::kSense:
        if (r.seq != 0) sense_by_seq.emplace(r.seq, &r);
        if (!r.note.empty()) attrs_of[r.pid].insert(r.note);
        break;
      case sim::TraceKind::kDrop:
      case sim::TraceKind::kUnreachable:
        // Only the root-bound copy of a strobe matters to the detectors.
        if (r.message_kind == kStrobeKind && r.peer == 0 && r.seq != 0) {
          root_drops.push_back(&r);
        }
        break;
      case sim::TraceKind::kCrash:
        open_crash[r.pid] = r.at;
        break;
      case sim::TraceKind::kRestart: {
        const auto it = open_crash.find(r.pid);
        if (it == open_crash.end()) break;
        // The node sensed nothing over [crash, restart): every world change
        // in the window was missed outright, and the root stays misled per
        // attribute until a strictly-newer report of it gets delivered.
        const SimTime begin = it->second;
        open_crash.erase(it);
        const auto attrs = attrs_of.find(r.pid);
        if (attrs == attrs_of.end() || attrs->second.empty()) {
          spans.push_back({begin, r.at, r.pid, FaultSpan::Cause::kCrash});
          break;
        }
        for (const std::string& attr : attrs->second) {
          spans.push_back({begin, healed_at(r.pid, attr, begin), r.pid,
                           FaultSpan::Cause::kCrash});
        }
        break;
      }
      case sim::TraceKind::kPartition:
        open_cut[{std::min(r.pid, r.peer), std::max(r.pid, r.peer)}] = r.at;
        break;
      case sim::TraceKind::kHeal: {
        const auto it = open_cut.find(
            {std::min(r.pid, r.peer), std::max(r.pid, r.peer)});
        if (it == open_cut.end()) break;
        // A cut can reroute, delay, or strand traffic from any reporter, so
        // the window itself is an any-reporter span; the reports it actually
        // strands show up as kUnreachable records and get their own spans.
        spans.push_back(
            {it->second, r.at, kNoProcess, FaultSpan::Cause::kPartition});
        open_cut.erase(it);
        break;
      }
      default:
        break;
    }
  }
  // Windows still open at end of trace: the run ended mid-fault.
  for (const auto& [pid, begin] : open_crash) {
    spans.push_back({begin, SimTime::max(), pid, FaultSpan::Cause::kCrash});
  }
  for (const auto& [edge, begin] : open_cut) {
    spans.push_back(
        {begin, SimTime::max(), kNoProcess, FaultSpan::Cause::kPartition});
  }

  // Root-bound drops: the root misses information dating from the sense and
  // recovers at the next delivered report of the same (reporter, attribute).
  for (const sim::TraceRecord* d : root_drops) {
    const auto it = sense_by_seq.find(d->seq);
    if (it == sense_by_seq.end()) continue;  // sense outside the window
    const sim::TraceRecord& sense = *it->second;
    spans.push_back({sense.at, healed_at(sense.pid, sense.note, sense.at),
                     sense.pid, FaultSpan::Cause::kDrop});
  }

  // Expired validity horizons: between a report's expiry and the next
  // delivery of its attribute the root holds data it must not act on.
  for (const auto& [key, updates] : by_attr) {
    for (std::size_t i = 0; i < updates.size(); ++i) {
      const core::ReceivedUpdate& u = *updates[i];
      if (!u.validity.bounded()) continue;
      const SimTime expiry = u.validity.expires_at(u.report.true_sense_time);
      const SimTime next = i + 1 < updates.size()
                               ? updates[i + 1]->delivered_at
                               : SimTime::max();
      if (expiry < next) {
        spans.push_back({expiry, next, key.first, FaultSpan::Cause::kStale});
      }
    }
  }

  // Deliveries beyond the Δ bound (duty-cycle deferrals held for a wake
  // window): the root is behind from the sense until the report lands.
  if (config.delta_bound != Duration::max()) {
    for (const core::ReceivedUpdate& u : log.updates) {
      if (u.delivered_at > u.report.true_sense_time + config.delta_bound) {
        spans.push_back({u.report.true_sense_time, u.delivered_at, u.reporter,
                         FaultSpan::Cause::kLateDelivery});
      }
    }
  }

  std::sort(spans.begin(), spans.end(),
            [](const FaultSpan& x, const FaultSpan& y) {
              if (x.begin != y.begin) return x.begin < y.begin;
              if (x.end != y.end) return x.end < y.end;
              if (x.reporter != y.reporter) return x.reporter < y.reporter;
              return static_cast<int>(x.cause) < static_cast<int>(y.cause);
            });
  return spans;
}

namespace {

/// True iff t falls inside some race span [true_a - slack, true_b + slack].
/// Races are emitted in nondecreasing true_a order, so we can stop early.
bool explained_by_race(SimTime t, const std::vector<RaceEvent>& races,
                       Duration slack) {
  for (const RaceEvent& r : races) {
    if (r.true_a - slack > t) break;
    if (t <= r.true_b + slack) return true;
  }
  return false;
}

/// True iff t falls inside some fault span [begin - slack, end + slack].
/// Spans are sorted by begin; open-ended spans saturate at SimTime::max().
bool explained_by_fault(SimTime t, const std::vector<FaultSpan>& spans,
                        Duration slack) {
  for (const FaultSpan& s : spans) {
    if (t + slack < s.begin) break;
    if (s.end == SimTime::max() || t <= s.end + slack) return true;
  }
  return false;
}

}  // namespace

ContractResult audit_detector(const std::string& detector,
                              const std::vector<RaceEvent>& races,
                              const std::vector<FaultSpan>& fault_spans,
                              const std::vector<SimTime>& fp_cause_times,
                              const std::vector<SimTime>& fn_occurrence_times,
                              const AuditConfig& config) {
  ContractResult result;
  result.contract = "race-audit." + detector;
  result.pairs_checked = races.size();

  auto audit = [&](const std::vector<SimTime>& times, ViolationKind kind,
                   const char* label) {
    for (const SimTime t : times) {
      result.events_checked++;
      if (explained_by_race(t, races, config.slack)) continue;
      if (explained_by_fault(t, fault_spans, config.slack)) continue;
      if (!config.strict) continue;
      result.violations_total++;
      if (result.violations.size() < config.max_recorded_violations) {
        CheckViolation v;
        v.kind = kind;
        v.at = t;
        v.detail = detector + ": confident " + label + " at t=" +
                   std::to_string(t.to_seconds()) +
                   "s has no Δ-race or recorded fault within the audit "
                   "window to explain it";
        result.violations.push_back(std::move(v));
      }
    }
  };
  audit(fp_cause_times, ViolationKind::kUnexplainedFalsePositive,
        "false positive");
  audit(fn_occurrence_times, ViolationKind::kUnexplainedFalseNegative,
        "false negative");
  return result;
}

ContractResult audit_detector(const std::string& detector,
                              const std::vector<RaceEvent>& races,
                              const std::vector<SimTime>& fp_cause_times,
                              const std::vector<SimTime>& fn_occurrence_times,
                              const AuditConfig& config) {
  return audit_detector(detector, races, {}, fp_cause_times,
                        fn_occurrence_times, config);
}

}  // namespace psn::check
