#include "check/race_scan.hpp"

#include <algorithm>

#include "clocks/timestamp.hpp"

namespace psn::check {

std::vector<RaceEvent> scan_races(const core::ObservationLog& log,
                                  const RaceScanConfig& config) {
  std::vector<RaceEvent> races;
  if (log.updates.size() < 2 || config.window <= Duration::zero()) {
    return races;
  }

  // Sort update indices by true sense time; the sliding window then only
  // ever compares pairs that can actually race.
  std::vector<std::size_t> order(log.updates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const SimTime ta = log.updates[a].report.true_sense_time;
    const SimTime tb = log.updates[b].report.true_sense_time;
    if (ta != tb) return ta < tb;
    return a < b;  // deterministic tie-break: delivery order
  });

  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& ua = log.updates[order[i]];
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      const auto& ub = log.updates[order[j]];
      const Duration gap = ub.report.true_sense_time - ua.report.true_sense_time;
      if (gap >= config.window) break;
      if (ua.reporter == ub.reporter && order[j] > order[i]) {
        // Same reporter, delivered in program order: nothing raced. But a
        // non-FIFO transport can deliver one process's updates INVERTED
        // (order[j] < order[i]: the later sense sits earlier in the log) —
        // the root then applies them out of program order, which misleads
        // detectors exactly like an inter-process race and must count as
        // one. Single-reporter deployments surfaced this: every delivery
        // inversion was invisible to the audit (found by checker_fuzz).
        continue;
      }
      RaceEvent race;
      race.update_a = order[i];
      race.update_b = order[j];
      race.pid_a = ua.reporter;
      race.pid_b = ub.reporter;
      race.true_a = ua.report.true_sense_time;
      race.true_b = ub.report.true_sense_time;
      race.gap = gap;
      // The root sees updates in log order; the later sense arriving at a
      // smaller index means delivery inverted the true order.
      race.delivery_inverted = race.update_b < race.update_a;
      const auto& va = ua.report.strobe_vector;
      const auto& vb = ub.report.strobe_vector;
      race.strobe_concurrent = va.size() > 0 && va.size() == vb.size() &&
                               clocks::concurrent(va, vb);
      races.push_back(race);
      if (races.size() >= config.max_races) return races;
    }
  }
  return races;
}

namespace {

/// True iff t falls inside some race span [true_a - slack, true_b + slack].
/// Races are emitted in nondecreasing true_a order, so we can stop early.
bool explained_by_race(SimTime t, const std::vector<RaceEvent>& races,
                       Duration slack) {
  for (const RaceEvent& r : races) {
    if (r.true_a - slack > t) break;
    if (t <= r.true_b + slack) return true;
  }
  return false;
}

}  // namespace

ContractResult audit_detector(const std::string& detector,
                              const std::vector<RaceEvent>& races,
                              const std::vector<SimTime>& fp_cause_times,
                              const std::vector<SimTime>& fn_occurrence_times,
                              const AuditConfig& config) {
  ContractResult result;
  result.contract = "race-audit." + detector;
  result.pairs_checked = races.size();

  auto audit = [&](const std::vector<SimTime>& times, ViolationKind kind,
                   const char* label) {
    for (const SimTime t : times) {
      result.events_checked++;
      if (explained_by_race(t, races, config.slack)) continue;
      if (!config.strict) continue;
      result.violations_total++;
      if (result.violations.size() < config.max_recorded_violations) {
        CheckViolation v;
        v.kind = kind;
        v.at = t;
        v.detail = detector + ": confident " + label + " at t=" +
                   std::to_string(t.to_seconds()) +
                   "s has no Δ-race within the audit window to explain it";
        result.violations.push_back(std::move(v));
      }
    }
  };
  audit(fp_cause_times, ViolationKind::kUnexplainedFalsePositive,
        "false positive");
  audit(fn_occurrence_times, ViolationKind::kUnexplainedFalseNegative,
        "false negative");
  return result;
}

}  // namespace psn::check
