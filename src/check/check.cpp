#include "check/check.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "clocks/timestamp.hpp"
#include "common/error.hpp"
#include "core/system.hpp"
#include "net/message.hpp"

namespace psn::check {

const char* to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kUnmatchedSend: return "unmatched-send";
    case ViolationKind::kUnmatchedReceive: return "unmatched-receive";
    case ViolationKind::kUnmatchedDeliver: return "unmatched-deliver";
    case ViolationKind::kUntracedEvent: return "untraced-event";
    case ViolationKind::kLamportOrder: return "lamport-order";
    case ViolationKind::kVectorMismatch: return "vector-mismatch";
    case ViolationKind::kStrobeScalarMismatch: return "strobe-scalar-mismatch";
    case ViolationKind::kStrobeVectorMismatch: return "strobe-vector-mismatch";
    case ViolationKind::kStrobeUnsoundOrder: return "strobe-unsound-order";
    case ViolationKind::kEpsilonBound: return "epsilon-bound";
    case ViolationKind::kDriftBound: return "drift-bound";
    case ViolationKind::kUnexplainedFalsePositive:
      return "unexplained-false-positive";
    case ViolationKind::kUnexplainedFalseNegative:
      return "unexplained-false-negative";
  }
  return "?";
}

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kClean: return "clean";
    case Verdict::kViolations: return "violations";
    case Verdict::kPartialWindow: return "partial-window";
  }
  return "?";
}

std::size_t CheckReport::total_violations() const {
  std::size_t n = 0;
  for (const auto& c : contracts) n += c.violations_total;
  return n;
}

const ContractResult* CheckReport::contract(std::string_view name) const {
  for (const auto& c : contracts) {
    if (c.contract == name) return &c;
  }
  return nullptr;
}

void CheckReport::add_contract(ContractResult result) {
  if (result.violations_total > 0) verdict = Verdict::kViolations;
  contracts.push_back(std::move(result));
}

std::string CheckReport::summary() const {
  std::string out = "psn-check verdict: ";
  out += to_string(verdict);
  out += " (" + std::to_string(total_violations()) + " violation(s)";
  if (trace_evicted > 0) {
    out += ", trace evicted " + std::to_string(trace_evicted) + " record(s)";
  }
  out += ")\n";
  for (const auto& c : contracts) {
    out += "  " + c.contract + ": ";
    if (!c.checked) {
      out += "skipped (partial trace window)\n";
      continue;
    }
    out += std::to_string(c.events_checked) + " event(s)";
    if (c.pairs_checked > 0) {
      out += ", " + std::to_string(c.pairs_checked) + " pair(s)";
    }
    out += ", " + std::to_string(c.violations_total) + " violation(s)\n";
    for (const auto& v : c.violations) {
      out += "    [" + std::string(to_string(v.kind)) + "] pid " +
             std::to_string(v.pid) + " event " +
             std::to_string(v.local_index) + " seq " + std::to_string(v.seq) +
             " @" + std::to_string(v.at.to_seconds()) + "s: " + v.detail +
             "\n";
    }
  }
  return out;
}

namespace {

constexpr int kStrobeKind = static_cast<int>(net::MessageKind::kStrobe);
constexpr int kComputationKind =
    static_cast<int>(net::MessageKind::kComputation);

/// Oracle stamps of a computation message at its send event, plus the
/// claimed Lamport value the receiver must exceed.
struct SentComputation {
  clocks::VectorStamp oracle_vc;
  std::uint64_t claimed_lamport = 0;
};

/// Oracle strobe stamps broadcast by a sense event (SSC1/SVC1 output).
struct SentStrobe {
  std::uint64_t scalar = 0;
  clocks::VectorStamp vector;
};

/// Claimed strobe vector of one sense event, for the pairwise soundness scan.
struct SenseSample {
  SimTime at;
  ProcessId pid = kNoProcess;
  std::size_t local_index = 0;
  clocks::VectorStamp strobe;
};

/// Per-process oracle state maintained by the replay.
struct OracleState {
  clocks::VectorStamp causal_vc;   ///< ground-truth vector timestamp
  std::uint64_t lamport_floor = 0;  ///< claimed Lamport of the previous event
  std::uint64_t strobe_scalar = 0;  ///< SSC replay value
  clocks::VectorStamp strobe_vc;    ///< SVC replay vector
  std::size_t cursor = 0;           ///< next unconsumed execution event
};

class Replay {
 public:
  Replay(const RunInputs& in, const CheckOptions& opt) : in_(in), opt_(opt) {
    states_.resize(in_.num_processes);
    for (auto& s : states_) {
      s.causal_vc = clocks::VectorStamp(in_.num_processes);
      s.strobe_vc = clocks::VectorStamp(in_.num_processes);
    }
    hb_.contract = "hb-graph";
    lamport_.contract = "lamport";
    vector_.contract = "vector";
    strobe_scalar_.contract = "strobe-scalar";
    strobe_vector_.contract = "strobe-vector";
    soundness_.contract = "strobe-soundness";
    epsilon_.contract = "physical-epsilon";
    drift_.contract = "physical-drift";
  }

  CheckReport run() {
    if (in_.trace_evicted > 0) {
      run_partial_window();
    } else {
      run_full();
    }
    return finish();
  }

 private:
  void add(ContractResult& c, CheckViolation v) {
    c.violations_total++;
    if (c.violations.size() < opt_.max_recorded_violations) {
      c.violations.push_back(std::move(v));
    }
  }

  /// Window-independent contracts only: per-event physical bounds and the
  /// program-order half of the Lamport condition. Message edges, vector
  /// equality, and the strobe replays all need the complete trace window.
  void run_partial_window() {
    for (ContractResult* c :
         {&hb_, &vector_, &strobe_scalar_, &strobe_vector_, &soundness_}) {
      c->checked = false;
    }
    for (ProcessId p = 0; p < in_.num_processes; ++p) {
      for (const core::ProcessEvent& e : in_.executions[p]) {
        check_physical(p, e);
        check_lamport_program_order(p, e);
        lamport_.events_checked++;
      }
    }
  }

  void run_full() {
    for (const sim::TraceRecord& r : in_.trace) {
      switch (r.kind) {
        case sim::TraceKind::kSense:
          consume_target(r.pid, core::EventType::kSense, r.seq, r);
          break;
        case sim::TraceKind::kSend:
          if (r.message_kind == kComputationKind) {
            consume_target(r.pid, core::EventType::kSend, r.seq, r);
          }
          break;
        case sim::TraceKind::kReceive:
          if (r.message_kind == kComputationKind) {
            consume_target(r.pid, core::EventType::kReceive, r.seq, r);
          }
          break;
        case sim::TraceKind::kDeliver:
          if (r.message_kind == kStrobeKind) on_strobe_delivery(r);
          break;
        case sim::TraceKind::kDrop:
        case sim::TraceKind::kUnreachable:
        case sim::TraceKind::kDetect:
          break;
      }
    }
    // Drain events past the last trace record (trailing compute/actuate
    // events; anything message-bearing left here was never traced).
    for (ProcessId p = 0; p < in_.num_processes; ++p) {
      while (states_[p].cursor < in_.executions[p].size()) {
        const core::ProcessEvent& e = in_.executions[p][states_[p].cursor];
        if (e.type != core::EventType::kCompute &&
            e.type != core::EventType::kActuate) {
          add(hb_, {ViolationKind::kUntracedEvent, p, e.local_index,
                    e.message_seq, e.clocks.true_time,
                    std::string(core::to_string(e.type)) +
                        " event never appeared in the trace"});
        }
        consume_one(p, /*synced_with_trace=*/false);
      }
    }
    scan_soundness();
  }

  /// Consumes execution events of `p` up to and including the one matching
  /// (type, seq). Intermediate events are consumed as catch-up: internal
  /// compute/actuate events are expected there; message-bearing events are
  /// not (their own trace records should have consumed them first) and are
  /// flagged kUntracedEvent. If no matching event remains, flags
  /// kUnmatchedSend/kUnmatchedReceive and consumes nothing.
  void consume_target(ProcessId p, core::EventType type, std::uint64_t seq,
                      const sim::TraceRecord& r) {
    if (p >= in_.num_processes) {
      add(hb_, {ViolationKind::kUnmatchedSend, p, 0, seq, r.at,
                "trace names pid out of range"});
      return;
    }
    const auto& events = in_.executions[p];
    std::size_t target = states_[p].cursor;
    while (target < events.size() &&
           !(events[target].type == type && events[target].message_seq == seq)) {
      target++;
    }
    if (target == events.size()) {
      const auto kind = type == core::EventType::kReceive
                            ? ViolationKind::kUnmatchedReceive
                            : ViolationKind::kUnmatchedSend;
      add(hb_, {kind, p, 0, seq, r.at,
                std::string("trace record has no matching ") +
                    core::to_string(type) + " event in the execution"});
      return;
    }
    while (states_[p].cursor < target) {
      const core::ProcessEvent& e = events[states_[p].cursor];
      if (e.type != core::EventType::kCompute &&
          e.type != core::EventType::kActuate) {
        add(hb_, {ViolationKind::kUntracedEvent, p, e.local_index,
                  e.message_seq, e.clocks.true_time,
                  std::string(core::to_string(e.type)) +
                      " event skipped by the trace (record missing?)"});
      }
      consume_one(p, /*synced_with_trace=*/false);
    }
    consume_one(p, /*synced_with_trace=*/true);
  }

  /// Processes one execution event of `p` against every oracle.
  /// `synced_with_trace` is true when this event is being consumed by its
  /// own trace record, i.e. the strobe oracle state is exactly current —
  /// only then are the strobe clocks compared (catch-up consumption has
  /// ambiguous ordering against strobe deliveries).
  void consume_one(ProcessId p, bool synced_with_trace) {
    OracleState& s = states_[p];
    const core::ProcessEvent& e = in_.executions[p][s.cursor++];
    check_physical(p, e);
    check_lamport_program_order(p, e);
    lamport_.events_checked++;

    switch (e.type) {
      case core::EventType::kReceive: {
        const auto it = comp_sent_.find(e.message_seq);
        if (e.message_seq == 0 || it == comp_sent_.end()) {
          add(hb_, {ViolationKind::kUnmatchedReceive, p, e.local_index,
                    e.message_seq, e.clocks.true_time,
                    "receive event has no matching send (dropped "
                    "send->receive edge)"});
          // Resync the oracle to the claimed stamps so one severed edge does
          // not cascade into mismatch reports for every later event.
          if (e.clocks.causal_vector.size() == s.causal_vc.size()) {
            s.causal_vc = e.clocks.causal_vector;
          }
          s.lamport_floor = e.clocks.lamport.value;
          return;
        }
        // VC3: merge the sender's oracle stamp, then tick own component.
        s.causal_vc.merge(it->second.oracle_vc);
        if (p < s.causal_vc.size()) s.causal_vc[p]++;
        // Lamport message edge: C(receive) must exceed C(send).
        if (e.clocks.lamport.value <= it->second.claimed_lamport) {
          add(lamport_,
              {ViolationKind::kLamportOrder, p, e.local_index, e.message_seq,
               e.clocks.true_time,
               "C(receive)=" + std::to_string(e.clocks.lamport.value) +
                   " not greater than C(send)=" +
                   std::to_string(it->second.claimed_lamport)});
        }
        break;
      }
      case core::EventType::kSend:
        if (p < s.causal_vc.size()) s.causal_vc[p]++;  // VC2
        if (e.message_seq != 0) {
          comp_sent_[e.message_seq] =
              SentComputation{s.causal_vc, e.clocks.lamport.value};
        }
        break;
      case core::EventType::kSense: {
        if (p < s.causal_vc.size()) s.causal_vc[p]++;  // VC1
        // SSC1/SVC1: tick the strobe oracles and remember the broadcast.
        s.strobe_scalar++;
        if (p < s.strobe_vc.size()) s.strobe_vc[p]++;
        if (e.message_seq != 0) {
          strobe_sent_[e.message_seq] =
              SentStrobe{s.strobe_scalar, s.strobe_vc};
        }
        if (synced_with_trace) {
          strobe_scalar_.events_checked++;
          if (e.clocks.strobe_scalar.value != s.strobe_scalar) {
            add(strobe_scalar_,
                {ViolationKind::kStrobeScalarMismatch, p, e.local_index,
                 e.message_seq, e.clocks.true_time,
                 "claimed " + std::to_string(e.clocks.strobe_scalar.value) +
                     " != SSC replay " + std::to_string(s.strobe_scalar)});
          }
          strobe_vector_.events_checked++;
          if (e.clocks.strobe_vector != s.strobe_vc) {
            add(strobe_vector_,
                {ViolationKind::kStrobeVectorMismatch, p, e.local_index,
                 e.message_seq, e.clocks.true_time,
                 "claimed " + e.clocks.strobe_vector.to_string() +
                     " != SVC replay " + s.strobe_vc.to_string()});
          }
        }
        senses_.push_back(
            {e.clocks.true_time, p, e.local_index, e.clocks.strobe_vector});
        break;
      }
      case core::EventType::kCompute:
      case core::EventType::kActuate:
        if (p < s.causal_vc.size()) s.causal_vc[p]++;  // VC1
        break;
    }

    vector_.events_checked++;
    if (e.clocks.causal_vector != s.causal_vc) {
      add(vector_, {ViolationKind::kVectorMismatch, p, e.local_index,
                    e.message_seq, e.clocks.true_time,
                    "claimed " + e.clocks.causal_vector.to_string() +
                        " != oracle " + s.causal_vc.to_string()});
    }
  }

  void on_strobe_delivery(const sim::TraceRecord& r) {
    if (r.pid >= in_.num_processes) return;
    const auto it = strobe_sent_.find(r.seq);
    if (r.seq == 0 || it == strobe_sent_.end()) {
      add(hb_, {ViolationKind::kUnmatchedDeliver, r.pid, 0, r.seq, r.at,
                "strobe delivery from an unknown sense broadcast"});
      return;
    }
    // SSC2/SVC2: merge, no tick.
    OracleState& s = states_[r.pid];
    s.strobe_scalar = std::max(s.strobe_scalar, it->second.scalar);
    s.strobe_vc.merge(it->second.vector);
  }

  /// Lamport program-order edge: C strictly increases at every local event
  /// (all five event types tick).
  void check_lamport_program_order(ProcessId p, const core::ProcessEvent& e) {
    OracleState& s = states_[p];
    if (e.clocks.lamport.value <= s.lamport_floor) {
      add(lamport_, {ViolationKind::kLamportOrder, p, e.local_index,
                     e.message_seq, e.clocks.true_time,
                     "C=" + std::to_string(e.clocks.lamport.value) +
                         " not greater than predecessor C=" +
                         std::to_string(s.lamport_floor)});
    }
    s.lamport_floor = e.clocks.lamport.value;
  }

  void check_physical(ProcessId p, const core::ProcessEvent& e) {
    epsilon_.events_checked++;
    const Duration synced_err =
        (e.clocks.physical_synced - e.clocks.true_time).abs();
    if (synced_err > in_.sync_epsilon) {
      add(epsilon_,
          {ViolationKind::kEpsilonBound, p, e.local_index, 0,
           e.clocks.true_time,
           "|synced - true| = " + std::to_string(synced_err.to_seconds()) +
               "s exceeds epsilon = " +
               std::to_string(in_.sync_epsilon.to_seconds()) + "s"});
    }
    drift_.events_checked++;
    const Duration local_err =
        (e.clocks.physical_local - e.clocks.true_time).abs();
    const Duration envelope =
        in_.drifting.initial_offset.abs() + in_.drifting.read_jitter.abs() +
        Duration::from_seconds(std::abs(in_.drifting.drift_ppm) * 1e-6 *
                               e.clocks.true_time.to_seconds()) +
        Duration::nanos(1);  // rounding slack on the ppm term
    if (local_err > envelope) {
      add(drift_,
          {ViolationKind::kDriftBound, p, e.local_index, 0,
           e.clocks.true_time,
           "|local - true| = " + std::to_string(local_err.to_seconds()) +
               "s outside the drift envelope " +
               std::to_string(envelope.to_seconds()) + "s"});
    }
  }

  /// Strobe partial-order soundness: stamps can only order sense events the
  /// way true time did — strobe information travels forward in time, so
  /// V(a) < V(b) with true(b) < true(a) is impossible in a correct run.
  void scan_soundness() {
    std::vector<const SenseSample*> picked;
    picked.reserve(std::min(senses_.size(), opt_.max_pairwise_events));
    if (senses_.size() <= opt_.max_pairwise_events) {
      for (const auto& s : senses_) picked.push_back(&s);
    } else {
      const std::size_t stride =
          (senses_.size() + opt_.max_pairwise_events - 1) /
          opt_.max_pairwise_events;
      for (std::size_t i = 0; i < senses_.size(); i += stride) {
        picked.push_back(&senses_[i]);
      }
    }
    std::sort(picked.begin(), picked.end(),
              [](const SenseSample* a, const SenseSample* b) {
                return a->at < b->at;
              });
    for (std::size_t i = 0; i < picked.size(); ++i) {
      for (std::size_t j = i + 1; j < picked.size(); ++j) {
        if (picked[i]->at == picked[j]->at) continue;  // ties claim nothing
        if (picked[i]->strobe.size() != picked[j]->strobe.size()) continue;
        soundness_.pairs_checked++;
        if (clocks::happens_before(picked[j]->strobe, picked[i]->strobe)) {
          add(soundness_,
              {ViolationKind::kStrobeUnsoundOrder, picked[j]->pid,
               picked[j]->local_index, 0, picked[j]->at,
               "sense at " + std::to_string(picked[j]->at.to_seconds()) +
                   "s strobe-ordered before sense at " +
                   std::to_string(picked[i]->at.to_seconds()) +
                   "s (pid " + std::to_string(picked[i]->pid) + ")"});
        }
      }
    }
    soundness_.events_checked = picked.size();
  }

  CheckReport finish() {
    CheckReport report;
    report.trace_evicted = in_.trace_evicted;
    report.contracts = {std::move(hb_),          std::move(lamport_),
                        std::move(vector_),      std::move(strobe_scalar_),
                        std::move(strobe_vector_), std::move(soundness_),
                        std::move(epsilon_),     std::move(drift_)};
    std::size_t violations = 0;
    for (const auto& c : report.contracts) violations += c.violations_total;
    if (violations > 0) {
      report.verdict = Verdict::kViolations;
    } else if (in_.trace_evicted > 0) {
      report.verdict = Verdict::kPartialWindow;
    } else {
      report.verdict = Verdict::kClean;
    }
    return report;
  }

  const RunInputs& in_;
  const CheckOptions& opt_;
  std::vector<OracleState> states_;
  std::unordered_map<std::uint64_t, SentComputation> comp_sent_;
  std::unordered_map<std::uint64_t, SentStrobe> strobe_sent_;
  std::vector<SenseSample> senses_;
  ContractResult hb_, lamport_, vector_, strobe_scalar_, strobe_vector_,
      soundness_, epsilon_, drift_;
};

}  // namespace

CheckReport check_run(const RunInputs& inputs, const CheckOptions& options) {
  if (inputs.num_processes == 0) {
    throw ConfigError("psn::check: num_processes must be >= 1");
  }
  if (inputs.executions.size() != inputs.num_processes) {
    throw ConfigError(
        "psn::check: executions must have one entry per process (got " +
        std::to_string(inputs.executions.size()) + ", want " +
        std::to_string(inputs.num_processes) + ")");
  }
  if (inputs.trace_evicted > 0 && !options.allow_partial_window) {
    throw ConfigError(
        "psn::check: trace ring evicted " +
        std::to_string(inputs.trace_evicted) +
        " record(s); the happens-before oracle needs the complete window. "
        "Raise trace_capacity, or set allow_partial_window for a "
        "partial-window verdict.");
  }
  Replay replay(inputs, options);
  return replay.run();
}

RunInputs inputs_from(const core::PervasiveSystem& system) {
  const sim::TraceRecorder* trace = system.sim().trace();
  if (trace == nullptr) {
    throw ConfigError(
        "psn::check: tracing was off for this run; set "
        "SimConfig::trace_capacity > 0 (or SimConfig::check) and rerun");
  }
  RunInputs in;
  in.num_processes = system.num_processes();
  in.sync_epsilon = system.config().clock_config.sync_epsilon;
  in.drifting = system.config().clock_config.drifting;
  in.executions.resize(in.num_processes);  // the root's stays empty
  for (ProcessId p = 1; p < in.num_processes; ++p) {
    in.executions[p] = system.sensor(p).events();
  }
  in.trace = trace->records();
  in.trace_evicted = trace->evicted();
  return in;
}

CheckReport check_system(const core::PervasiveSystem& system,
                         const CheckOptions& options) {
  return check_run(inputs_from(system), options);
}

}  // namespace psn::check
