#include "check/check.hpp"

#include <utility>

#include "check/stream_checker.hpp"
#include "common/error.hpp"
#include "core/system.hpp"

namespace psn::check {

const char* to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kUnmatchedSend: return "unmatched-send";
    case ViolationKind::kUnmatchedReceive: return "unmatched-receive";
    case ViolationKind::kUnmatchedDeliver: return "unmatched-deliver";
    case ViolationKind::kUntracedEvent: return "untraced-event";
    case ViolationKind::kLamportOrder: return "lamport-order";
    case ViolationKind::kVectorMismatch: return "vector-mismatch";
    case ViolationKind::kStrobeScalarMismatch: return "strobe-scalar-mismatch";
    case ViolationKind::kStrobeVectorMismatch: return "strobe-vector-mismatch";
    case ViolationKind::kStrobeUnsoundOrder: return "strobe-unsound-order";
    case ViolationKind::kEpsilonBound: return "epsilon-bound";
    case ViolationKind::kDriftBound: return "drift-bound";
    case ViolationKind::kUnexplainedFalsePositive:
      return "unexplained-false-positive";
    case ViolationKind::kUnexplainedFalseNegative:
      return "unexplained-false-negative";
    case ViolationKind::kStaleObservation: return "stale-observation";
    case ViolationKind::kFaultPairing: return "fault-pairing";
    case ViolationKind::kActivityWhileDown: return "activity-while-down";
  }
  return "?";
}

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kClean: return "clean";
    case Verdict::kViolations: return "violations";
    case Verdict::kPartialWindow: return "partial-window";
  }
  return "?";
}

std::size_t CheckReport::total_violations() const {
  std::size_t n = 0;
  for (const auto& c : contracts) n += c.violations_total;
  return n;
}

const ContractResult* CheckReport::contract(std::string_view name) const {
  for (const auto& c : contracts) {
    if (c.contract == name) return &c;
  }
  return nullptr;
}

void CheckReport::add_contract(ContractResult result) {
  if (result.violations_total > 0) verdict = Verdict::kViolations;
  contracts.push_back(std::move(result));
}

std::string CheckReport::summary() const {
  std::string out = "psn-check verdict: ";
  out += to_string(verdict);
  out += " (" + std::to_string(total_violations()) + " violation(s)";
  if (trace_evicted > 0) {
    out += ", trace evicted " + std::to_string(trace_evicted) + " record(s)";
  }
  out += ")\n";
  for (const auto& c : contracts) {
    out += "  " + c.contract + ": ";
    if (!c.checked) {
      out += "skipped (partial trace window)\n";
      continue;
    }
    out += std::to_string(c.events_checked) + " event(s)";
    if (c.pairs_checked > 0) {
      out += ", " + std::to_string(c.pairs_checked) + " pair(s)";
    }
    out += ", " + std::to_string(c.violations_total) + " violation(s)\n";
    for (const auto& v : c.violations) {
      out += "    [" + std::string(to_string(v.kind)) + "] pid " +
             std::to_string(v.pid) + " event " +
             std::to_string(v.local_index) + " seq " + std::to_string(v.seq) +
             " @" + std::to_string(v.at.to_seconds()) + "s: " + v.detail +
             "\n";
    }
  }
  return out;
}

// The batch checker is now a thin loop over the incremental StreamChecker
// (stream_checker.cpp holds the actual oracle replay). With unbounded
// send_retention the streaming replay retains exactly the state the old
// one-shot Replay did, so batch reports are byte-identical by construction
// — the equivalence test pins this.
CheckReport check_run(const RunInputs& inputs, const CheckOptions& options) {
  if (inputs.num_processes == 0) {
    throw ConfigError("psn::check: num_processes must be >= 1");
  }
  if (inputs.executions.size() != inputs.num_processes) {
    throw ConfigError(
        "psn::check: executions must have one entry per process (got " +
        std::to_string(inputs.executions.size()) + ", want " +
        std::to_string(inputs.num_processes) + ")");
  }
  if (inputs.trace_evicted > 0 && !options.allow_partial_window) {
    throw TraceWindowError(
        "psn::check: trace ring evicted " +
        std::to_string(inputs.trace_evicted) +
        " record(s); the happens-before oracle needs the complete window. "
        "Raise trace_capacity, set allow_partial_window for a "
        "partial-window verdict, or stream records through "
        "check::StreamChecker (psn_cli serve), which needs no ring.");
  }

  StreamCheckerConfig cfg;
  cfg.num_processes = inputs.num_processes;
  cfg.sync_epsilon = inputs.sync_epsilon;
  cfg.drifting = inputs.drifting;
  cfg.options = options;
  cfg.executions = &inputs.executions;
  cfg.trace_evicted = inputs.trace_evicted;
  StreamChecker checker(cfg);

  if (inputs.trace_evicted > 0) {
    // Window-independent contracts only: per-event physical bounds and the
    // program-order half of the Lamport condition. Message edges, vector
    // equality, and the strobe replays all need the complete trace window.
    checker.skip_windowed_contracts();
    for (ProcessId p = 0; p < inputs.num_processes; ++p) {
      for (const core::ProcessEvent& e : inputs.executions[p]) {
        checker.feed_execution_only(p, e);
      }
    }
  } else {
    for (const sim::TraceRecord& r : inputs.trace) checker.feed(r);
  }
  return checker.finish();
}

RunInputs inputs_from(const core::PervasiveSystem& system) {
  const sim::TraceRecorder* trace = system.sim().trace();
  if (trace == nullptr) {
    throw ConfigError(
        "psn::check: tracing was off for this run; set "
        "SimConfig::trace_capacity > 0 (or SimConfig::check) and rerun");
  }
  RunInputs in;
  in.num_processes = system.num_processes();
  in.sync_epsilon = system.config().clock_config.sync_epsilon;
  in.drifting = system.config().clock_config.drifting;
  in.executions.resize(in.num_processes);  // the root's stays empty
  for (ProcessId p = 1; p < in.num_processes; ++p) {
    in.executions[p] = system.sensor(p).events();
  }
  in.trace = trace->records();
  in.trace_evicted = trace->evicted();
  if (system.faults() != nullptr) {
    // The serial system never emits fault records live (they would ride the
    // trace ring and could evict real message records); synthesize them here
    // and restore the canonical order so the checker sees one merged stream.
    system.faults()->append_trace_records(in.trace,
                                          system.config().sim.horizon);
    sim::canonical_trace_order(in.trace);
  }
  return in;
}

CheckReport check_system(const core::PervasiveSystem& system,
                         const CheckOptions& options) {
  CheckOptions opts = options;
  // Compensate declared clock faults automatically when the caller did not
  // supply a schedule of their own.
  if (opts.faults == nullptr) opts.faults = system.faults();
  return check_run(inputs_from(system), opts);
}

}  // namespace psn::check
