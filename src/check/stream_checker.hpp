#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "check/check.hpp"
#include "clocks/timestamp.hpp"
#include "common/pool_alloc.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "core/event.hpp"
#include "sim/trace.hpp"

/// psn::check::StreamChecker — the incremental form of the causality &
/// clock-contract checker (DESIGN.md §12).
///
/// The batch `check_run` demands a complete, finished RunInputs; the paper's
/// execution model is online. StreamChecker is the same oracle turned into a
/// feed state machine: trace records go in one at a time (in trace order),
/// violations come out as they are witnessed, and the retained state is a
/// per-process frontier plus a window of not-yet-matched send entries —
/// matched entries are evicted immediately, expired ones when the configured
/// retention window passes them. Memory is therefore bounded by the traffic
/// in flight, not by the length of the stream, and the trace ring's
/// evicted-window refusal disappears: feed records as they happen and no
/// ring is needed at all.
///
/// `check_run` is now a thin loop over this class, so batch and streaming
/// verdicts are identical by construction (and pinned by test).
namespace psn::check {

struct StreamCheckerConfig {
  /// Process count including the root P_0. 0 is allowed in trace-only mode
  /// and disables pid-range checking (useful when a server joins a stream
  /// whose topology it does not know).
  std::size_t num_processes = 0;
  Duration sync_epsilon = Duration::zero();
  clocks::DriftingClockConfig drifting;  ///< for the drift envelope
  CheckOptions options;

  /// Claimed per-process local executions (indexed by pid; the root's entry
  /// empty), consumed in lockstep with the trace — the full clock-contract
  /// replay of DESIGN.md §10. May be nullptr: *trace-only mode*, where only
  /// the contracts derivable from the wire records run (send/receive and
  /// sense/deliver matching, validity horizons). The pointee must outlive
  /// the checker.
  const std::vector<std::vector<core::ProcessEvent>>* executions = nullptr;

  /// Unmatched send entries older than this (against the fed record clock)
  /// are evicted — the Δ-window of the paper's bounded-delay model: a
  /// message older than the end-to-end Δ bound can never be delivered, so a
  /// retention of Δ plus slack loses nothing on a conforming stream.
  /// Duration::max() retains entries until matched, which is the exact batch
  /// semantics `check_run` relies on for byte-identical reports.
  Duration send_retention = Duration::max();

  /// Records the producing ring evicted before this checker saw the stream
  /// (batch use only); downgrades a violation-free verdict to kPartialWindow.
  std::size_t trace_evicted = 0;
};

class StreamChecker {
 public:
  explicit StreamChecker(const StreamCheckerConfig& config);

  /// Consumes one trace record (records must arrive in trace order). Returns
  /// the first violation this record witnessed, if any; every violation is
  /// also accumulated into the final report regardless of the return value.
  std::optional<CheckViolation> feed(const sim::TraceRecord& record);

  /// Partial-window mode (batch only): runs the window-independent,
  /// per-event contracts over one execution event. Call
  /// skip_windowed_contracts() first; do not mix with feed().
  void feed_execution_only(ProcessId pid, const core::ProcessEvent& event);

  /// Marks every contract that needs the complete trace window as skipped
  /// (hb-graph, vector, both strobe replays, strobe-soundness).
  void skip_windowed_contracts();

  /// Drains trailing execution events past the last trace record, runs the
  /// pairwise strobe-soundness scan, and assembles the report. The checker
  /// is spent afterwards.
  CheckReport finish();

  std::size_t records_fed() const { return records_fed_; }
  /// Send/sense entries currently retained awaiting a match — the streaming
  /// working set. Bounded by traffic in flight when send_retention is
  /// finite; the 10^6-record soak test pins this.
  std::size_t pending_sends() const {
    return comp_sent_.size() + strobe_sent_.size();
  }
  /// Violations recorded so far across all contracts (witness caps do not
  /// stop the count).
  std::size_t violations_so_far() const;
  /// kStaleObservation count so far (the validity-horizon contract).
  std::size_t stale_observations() const {
    return validity_.violations_total;
  }

 private:
  /// Oracle stamps of a computation message at its send event, plus the
  /// claimed Lamport value the receiver must exceed.
  struct SentComputation {
    clocks::VectorStamp oracle_vc;
    std::uint64_t claimed_lamport = 0;
    SimTime sent_at;
  };

  /// Oracle strobe stamps broadcast by a sense event (SSC1/SVC1 output).
  struct SentStrobe {
    std::uint64_t scalar = 0;
    clocks::VectorStamp vector;
    SimTime sensed_at;
  };

  /// Claimed strobe vector of one sense event, for the pairwise scan.
  struct SenseSample {
    SimTime at;
    ProcessId pid = kNoProcess;
    std::size_t local_index = 0;
    clocks::VectorStamp strobe;
  };

  /// Per-process oracle state maintained by the replay — the frontier.
  struct OracleState {
    clocks::VectorStamp causal_vc;    ///< ground-truth vector timestamp
    std::uint64_t lamport_floor = 0;  ///< claimed Lamport of the prior event
    std::uint64_t strobe_scalar = 0;  ///< SSC replay value
    clocks::VectorStamp strobe_vc;    ///< SVC replay vector
    std::size_t cursor = 0;           ///< next unconsumed execution event
  };

  bool bound() const { return executions_ != nullptr; }
  void add(ContractResult& c, CheckViolation v);
  void on_fault_record(const sim::TraceRecord& r);
  void check_down_activity(const sim::TraceRecord& r);
  void consume_target(ProcessId p, core::EventType type, std::uint64_t seq,
                      const sim::TraceRecord& r);
  void consume_one(ProcessId p, bool synced_with_trace);
  void on_strobe_delivery(const sim::TraceRecord& r);
  void check_lamport_program_order(ProcessId p, const core::ProcessEvent& e);
  void check_physical(ProcessId p, const core::ProcessEvent& e);
  void check_validity(const sim::TraceRecord& r, SimTime sensed_at);
  void evict_expired(SimTime now);
  void scan_soundness();

  StreamCheckerConfig cfg_;
  const std::vector<std::vector<core::ProcessEvent>>* executions_ = nullptr;
  std::vector<OracleState> states_;
  /// Eviction queue entry: (entry time, seq, is_strobe) in feed order.
  /// Entries whose seq was already matched away are skipped lazily.
  struct PendingEntry {
    SimTime at;
    std::uint64_t seq = 0;
    bool strobe = false;
  };
  /// Recycling arena backing the streaming working set below. Declared
  /// before the containers (members destroy in reverse order, and the
  /// containers hand their nodes back to the arena as they die). With it,
  /// steady-state feed in trace-only mode performs zero global allocations
  /// per record once the in-flight window has peaked — pinned by the
  /// alloc-guard suite (`ctest -L lint`).
  PoolArena arena_;
  template <typename V>
  using SeqMap =
      std::unordered_map<std::uint64_t, V, std::hash<std::uint64_t>,
                         std::equal_to<std::uint64_t>,
                         PoolAllocator<std::pair<const std::uint64_t, V>>>;
  SeqMap<SentComputation> comp_sent_;
  SeqMap<SentStrobe> strobe_sent_;
  std::deque<PendingEntry, PoolAllocator<PendingEntry>> pending_order_;
  std::vector<SenseSample> senses_;
  ContractResult hb_, lamport_, vector_, strobe_scalar_, strobe_vector_,
      soundness_, epsilon_, drift_, validity_, fault_;
  /// Crash/partition replay driven by the stream's fault records: which
  /// processes are currently down and which overlay edges are cut. The
  /// fault-model contract only joins the report once a fault record has
  /// been seen, so fault-free reports keep their pinned shape.
  bool saw_fault_records_ = false;
  std::vector<unsigned char> down_;
  std::vector<std::pair<ProcessId, ProcessId>> cut_edges_;
  std::size_t records_fed_ = 0;
  bool partial_ = false;
  /// First violation witnessed by the in-flight feed() call, for its return.
  std::optional<CheckViolation> feed_violation_;
  bool in_feed_ = false;
};

}  // namespace psn::check
