#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "clocks/physical.hpp"
#include "common/error.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "core/event.hpp"
#include "core/observation.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"

namespace psn::core {
class PervasiveSystem;
}  // namespace psn::core

/// psn::check — the causality & clock-contract checker (DESIGN.md §10).
///
/// Reconstructs ground-truth happens-before from a run's event trace
/// (program order + send→receive edges, maintained as oracle vector
/// timestamps) and replays every clock in the bundle against its formal
/// contract:
///
///   lamport          e → f  ⇒  C(e) < C(f)            (Lamport clock condition)
///   vector           e → f  ⇔  V(e) < V(f)            (Mattern/Fidge VC1–VC3)
///   strobe-scalar    exact SSC1–SSC2 replay            (Kshemkalyani strobes)
///   strobe-vector    exact SVC1–SVC2 replay
///   strobe-soundness V(a) < V(b) ⇒ true(a) ≤ true(b)  (partial-order soundness)
///   physical-epsilon |synced(e) − true(e)| ≤ ε         (sync-service bound)
///   physical-drift   |local(e) − true(e)| within the analytic drift envelope
///
/// An optimization that silently breaks causality tracking turns every
/// affected run red instead of shipping green — the repo's correctness floor.
namespace psn::check {

enum class ViolationKind : std::uint8_t {
  kUnmatchedSend,     ///< traced send/sense with no matching execution event
  kUnmatchedReceive,  ///< receive with no matching send (dropped HB edge)
  kUnmatchedDeliver,  ///< strobe delivery whose originating sense is unknown
  kUntracedEvent,     ///< execution event the (complete) trace never saw
  kLamportOrder,      ///< C not strictly increasing along an HB edge
  kVectorMismatch,    ///< claimed causal vector ≠ oracle vector timestamp
  kStrobeScalarMismatch,  ///< claimed strobe scalar ≠ SSC replay
  kStrobeVectorMismatch,  ///< claimed strobe vector ≠ SVC replay
  kStrobeUnsoundOrder,    ///< strobe order contradicts true-time order
  kEpsilonBound,          ///< ε-synchronized reading out of bound
  kDriftBound,            ///< local clock outside its drift envelope
  kUnexplainedFalsePositive,  ///< detector FP no race/fault/horizon explains
  kUnexplainedFalseNegative,  ///< detector FN no race/fault/horizon explains
  kStaleObservation,  ///< observation delivered after its validity horizon
  kFaultPairing,      ///< malformed crash/restart or partition/heal pairing
  kActivityWhileDown,  ///< activity from (or delivery to) a crashed process
};

const char* to_string(ViolationKind k);

/// One concrete contract violation, pinned to the event (pid, local_index)
/// and/or message (seq) that witnessed it.
struct CheckViolation {
  ViolationKind kind = ViolationKind::kUnmatchedSend;
  ProcessId pid = kNoProcess;
  std::size_t local_index = 0;  ///< offending event in pid's execution (0 = n/a)
  std::uint64_t seq = 0;        ///< message involved (0 = n/a)
  SimTime at;                   ///< true time of the witness
  std::string detail;           ///< human-readable expectation vs. actual
};

/// Outcome of one contract across the whole run. `violations` keeps the
/// first CheckOptions::max_recorded_violations witnesses; `violations_total`
/// keeps counting past the cap.
struct ContractResult {
  std::string contract;
  bool checked = true;  ///< false when skipped (e.g. partial trace window)
  std::size_t events_checked = 0;
  std::size_t pairs_checked = 0;  ///< pairwise scans only
  std::size_t violations_total = 0;
  std::vector<CheckViolation> violations;
};

enum class Verdict : std::uint8_t {
  kClean,          ///< every contract checked, zero violations
  kViolations,     ///< at least one contract violated
  kPartialWindow,  ///< trace ring evicted records: only window-independent
                   ///< contracts ran; no violations among those
};

const char* to_string(Verdict v);

struct CheckReport {
  Verdict verdict = Verdict::kClean;
  std::size_t trace_evicted = 0;
  std::vector<ContractResult> contracts;

  bool clean() const { return verdict == Verdict::kClean; }
  std::size_t total_violations() const;
  /// The named contract's result, or nullptr if it was not part of the run.
  const ContractResult* contract(std::string_view name) const;
  /// Appends another contract result (used by the race-audit layer) and
  /// downgrades the verdict if it carries violations.
  void add_contract(ContractResult result);
  /// Multi-line human-readable report (psn_cli --check prints this).
  std::string summary() const;
};

struct CheckOptions {
  /// Violation witnesses kept per contract; counting continues past the cap.
  std::size_t max_recorded_violations = 16;
  /// Strobe-soundness pairwise scan: if the run has more sense events than
  /// this, a deterministic stride-sample of this size is scanned instead.
  std::size_t max_pairwise_events = 1500;
  /// A trace ring that evicted records cannot support the HB oracle. By
  /// default the checker refuses (throws TraceWindowError); set this to
  /// downgrade to a partial-window verdict that runs window-independent
  /// contracts only.
  bool allow_partial_window = false;
  /// Temporal-validity policy for observations: a strobe delivered more than
  /// this after its sense violates the Kopetz-Steiner validity interval
  /// (kStaleObservation under the "validity-horizon" contract). Unbounded by
  /// default, which keeps the report shape byte-identical to the original.
  core::ValidityHorizon validity_horizon;
  /// The run's declared fault schedule (DESIGN.md §15), if any. The
  /// physical-drift contract then subtracts the schedule's deterministic
  /// injected offset before testing the envelope — declared clock faults
  /// are compensated exactly, never excused by widening the bound. Must
  /// outlive the check. nullptr = no declared faults.
  const sim::FaultSchedule* faults = nullptr;
};

/// Thrown when the trace ring evicted records and the options forbid the
/// partial-window downgrade. A distinct type so callers (psn_cli) can exit
/// with a dedicated status and a concrete remedy — raise the ring capacity,
/// or switch to the streaming checker, which needs no retained window.
class TraceWindowError : public ConfigError {
 public:
  explicit TraceWindowError(const std::string& what) : ConfigError(what) {}
};

/// Everything the checker needs from one finished run. Synthesize (and
/// corrupt) these directly in mutation tests; `inputs_from` extracts them
/// from a PervasiveSystem.
struct RunInputs {
  std::size_t num_processes = 0;  ///< including the root P_0
  Duration sync_epsilon = Duration::zero();
  clocks::DriftingClockConfig drifting;  ///< for the drift envelope
  /// Per-process local executions, indexed by pid (the root's is empty).
  std::vector<std::vector<core::ProcessEvent>> executions;
  std::vector<sim::TraceRecord> trace;
  std::size_t trace_evicted = 0;
};

/// Runs every contract check over one run. Throws ConfigError on
/// structurally unusable inputs (no processes, executions/pid mismatch, or
/// an evicted trace without allow_partial_window).
CheckReport check_run(const RunInputs& inputs, const CheckOptions& options = {});

/// Extracts RunInputs from a finished system run. Requires tracing to have
/// been enabled (SimConfig::trace_capacity > 0).
RunInputs inputs_from(const core::PervasiveSystem& system);

/// inputs_from + check_run.
CheckReport check_system(const core::PervasiveSystem& system,
                         const CheckOptions& options = {});

}  // namespace psn::check
