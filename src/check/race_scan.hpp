#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "core/observation.hpp"

namespace psn::check {

/// One Δ-race (or 2ε overlap for physical-clock detectors): two sense
/// reports from *different* processes whose true sense times are closer than
/// the detector's resolution window. Inside that window the root cannot
/// trust any ordering signal — exactly the interval the paper blames
/// detector errors on (§5).
struct RaceEvent {
  std::size_t update_a = 0;  ///< index into ObservationLog::updates (earlier)
  std::size_t update_b = 0;  ///< index into ObservationLog::updates (later)
  ProcessId pid_a = kNoProcess;
  ProcessId pid_b = kNoProcess;
  SimTime true_a;  ///< true sense time of the earlier report
  SimTime true_b;  ///< true sense time of the later report (>= true_a)
  Duration gap = Duration::zero();  ///< true_b - true_a (< window)
  /// The later sense was *delivered* to the root before the earlier one —
  /// the raw inversion a naive FIFO observer would mis-order on.
  bool delivery_inverted = false;
  /// The strobe vector clocks leave the pair concurrent (neither dominates),
  /// so even the strongest logical clock cannot order it.
  bool strobe_concurrent = false;
};

struct RaceScanConfig {
  /// Race window: Δ for delivery/strobe detectors, 2ε for physical-timestamp
  /// detectors. Pairs with true-time gap strictly below this are races.
  Duration window = Duration::zero();
  /// Safety cap on emitted races (the scan is a sliding window, so pathological
  /// inputs — everything simultaneous — are quadratic in the window population).
  std::size_t max_races = 100000;
};

/// Scans the root's observation log for Δ-race pairs. O(u log u + races).
std::vector<RaceEvent> scan_races(const core::ObservationLog& log,
                                  const RaceScanConfig& config);

struct AuditConfig {
  /// An error at true time t is explained by a race whose true-time span
  /// [true_a - slack, true_b + slack] contains t.
  Duration slack = Duration::zero();
  /// When true, every unexplained confident error becomes a violation
  /// (kUnexplainedFalsePositive / kUnexplainedFalseNegative). Only sound for
  /// runs where races are the sole possible error source: lossless transport,
  /// bounded delay, no duty-cycling, untruncated scoring window.
  bool strict = true;
  std::size_t max_recorded_violations = 16;
};

/// Cross-checks one detector's confident errors against the scanned races:
/// each false positive (by cause true time) and false negative (by missed
/// occurrence start) must fall inside some race span. Returns a
/// ContractResult named "race-audit." + detector; feed it to
/// CheckReport::add_contract.
ContractResult audit_detector(const std::string& detector,
                              const std::vector<RaceEvent>& races,
                              const std::vector<SimTime>& fp_cause_times,
                              const std::vector<SimTime>& fn_occurrence_times,
                              const AuditConfig& config);

}  // namespace psn::check
