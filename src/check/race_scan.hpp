#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "core/observation.hpp"
#include "sim/trace.hpp"

namespace psn::check {

/// One Δ-race (or 2ε overlap for physical-clock detectors): two sense
/// reports from *different* processes whose true sense times are closer than
/// the detector's resolution window. Inside that window the root cannot
/// trust any ordering signal — exactly the interval the paper blames
/// detector errors on (§5).
struct RaceEvent {
  std::size_t update_a = 0;  ///< index into ObservationLog::updates (earlier)
  std::size_t update_b = 0;  ///< index into ObservationLog::updates (later)
  ProcessId pid_a = kNoProcess;
  ProcessId pid_b = kNoProcess;
  SimTime true_a;  ///< true sense time of the earlier report
  SimTime true_b;  ///< true sense time of the later report (>= true_a)
  Duration gap = Duration::zero();  ///< true_b - true_a (< window)
  /// The later sense was *delivered* to the root before the earlier one —
  /// the raw inversion a naive FIFO observer would mis-order on.
  bool delivery_inverted = false;
  /// The strobe vector clocks leave the pair concurrent (neither dominates),
  /// so even the strongest logical clock cannot order it.
  bool strobe_concurrent = false;
};

struct RaceScanConfig {
  /// Race window: Δ for delivery/strobe detectors, 2ε for physical-timestamp
  /// detectors. Pairs with true-time gap strictly below this are races.
  Duration window = Duration::zero();
  /// Safety cap on emitted races (the scan is a sliding window, so pathological
  /// inputs — everything simultaneous — are quadratic in the window population).
  std::size_t max_races = 100000;
};

/// Scans the root's observation log for Δ-race pairs. O(u log u + races).
std::vector<RaceEvent> scan_races(const core::ObservationLog& log,
                                  const RaceScanConfig& config);

/// One interval during which a recorded fault (or its aftermath) can
/// legitimately mislead the root's detectors: the information the root is
/// missing — or holding stale — dates from `begin` and is repaired (next
/// good delivery of the affected attribute) at `end`. SimTime::max() means
/// the run ended before repair. Intervals are in true time, like race spans.
struct FaultSpan {
  enum class Cause : std::uint8_t {
    kDrop,          ///< a root-bound report was lost or unroutable
    kCrash,         ///< the reporter was inside a crash window
    kPartition,     ///< an overlay partition window was open
    kStale,         ///< the last report's validity horizon expired
    kLateDelivery,  ///< a report arrived later than the Δ bound (duty defer)
  };

  SimTime begin;
  SimTime end;
  /// Reporter whose observations the span invalidates (kNoProcess = any —
  /// used by partition-window spans, where the cut can reroute or delay
  /// traffic from any process).
  ProcessId reporter = kNoProcess;
  Cause cause = Cause::kDrop;
};

const char* to_string(FaultSpan::Cause c);

struct FaultSpanConfig {
  /// End-to-end delay bound Δ: a report delivered later than
  /// sense + delta_bound opens a kLateDelivery span (duty-cycle deferrals).
  /// Duration::max() disables the late-delivery rule.
  Duration delta_bound = Duration::max();
};

/// Derives the loss/fault attribution intervals of one finished run from its
/// canonical trace and the root's observation log (DESIGN.md §15):
///
///  - every root-bound kDrop/kUnreachable of a strobe opens a span at the
///    originating sense, healed by the next delivered report of the same
///    (reporter, attribute) carrying newer information;
///  - every kCrash..kRestart window opens one span per attribute the node
///    reports, healed by the first post-restart delivery of that attribute
///    (world changes during the window were never sensed at all);
///  - every kPartition..kHeal window is one any-reporter span;
///  - a bounded validity horizon opens a kStale span from each report's
///    expiry to the next delivery of that (reporter, attribute);
///  - a delivery beyond the Δ bound opens a kLateDelivery span from its
///    sense to its delivery.
///
/// Returns spans sorted by begin. The list is empty for a clean lossless
/// run, in which case the audit below degenerates to the pure race audit.
std::vector<FaultSpan> collect_fault_spans(
    const std::vector<sim::TraceRecord>& trace,
    const core::ObservationLog& log, const FaultSpanConfig& config);

struct AuditConfig {
  /// An error at true time t is explained by a race whose true-time span
  /// [true_a - slack, true_b + slack] contains t (and likewise for fault
  /// spans).
  Duration slack = Duration::zero();
  /// When true, every unexplained confident error becomes a violation
  /// (kUnexplainedFalsePositive / kUnexplainedFalseNegative). Sound whenever
  /// every non-race error source is visible to the audit: Δ-bounded delay
  /// plus an untruncated trace window, with losses, crashes, partitions,
  /// duty deferrals, and expired horizons supplied as fault spans.
  bool strict = true;
  std::size_t max_recorded_violations = 16;
};

/// Cross-checks one detector's confident errors against the scanned races
/// and the run's fault spans: each false positive (by cause true time) and
/// false negative (by missed occurrence start) must fall inside some race or
/// fault span. Returns a ContractResult named "race-audit." + detector; feed
/// it to CheckReport::add_contract.
ContractResult audit_detector(const std::string& detector,
                              const std::vector<RaceEvent>& races,
                              const std::vector<FaultSpan>& fault_spans,
                              const std::vector<SimTime>& fp_cause_times,
                              const std::vector<SimTime>& fn_occurrence_times,
                              const AuditConfig& config);

/// Fault-oblivious form (lossless runs): audits against races alone.
ContractResult audit_detector(const std::string& detector,
                              const std::vector<RaceEvent>& races,
                              const std::vector<SimTime>& fp_cause_times,
                              const std::vector<SimTime>& fn_occurrence_times,
                              const AuditConfig& config);

}  // namespace psn::check
