#pragma once

#include <cstddef>
#include <iosfwd>

#include "check/stream_checker.hpp"
#include "common/metrics.hpp"
#include "common/sim_time.hpp"
#include "core/observation.hpp"

namespace psn::serve {

struct SoakServerConfig {
  /// Process count of the producing deployment (including P_0). 0 = unknown
  /// topology: pid-range checks are skipped, everything else still runs.
  std::size_t num_processes = 0;

  /// How long an unmatched send/sense entry is retained before eviction —
  /// the Δ-window that bounds the checker's working set. Must be finite in
  /// a long-running server; set it comfortably above the deployment's
  /// end-to-end delay bound so no live edge is ever evicted.
  Duration send_retention = Duration::seconds(10);

  /// Kopetz-Steiner temporal validity policy; unbounded disables the
  /// staleness contract.
  core::ValidityHorizon validity_horizon;

  /// Emit a metrics snapshot line every this many records (0 = only at EOF).
  std::size_t metrics_every = 100000;

  /// Strict mode (default) stops at the first malformed or out-of-order
  /// line with exit code 3; lenient mode rejects the line, keeps counting,
  /// and carries on — for tapping lossy or hand-edited feeds.
  bool lenient = false;

  /// Violation witnesses retained by the checker (counting never stops).
  std::size_t max_recorded_violations = 16;
};

/// What one ingest session did, for the caller's exit handling.
struct SoakReport {
  std::size_t lines_read = 0;
  std::size_t records_fed = 0;
  std::size_t malformed_lines = 0;
  std::size_t out_of_order_lines = 0;
  std::size_t detect_records = 0;
  std::size_t violations = 0;
  std::size_t stale_observations = 0;
  /// High-water mark of the checker's retained send window — the number the
  /// bounded-memory acceptance test pins.
  std::size_t peak_pending_sends = 0;
  /// 0 clean EOF, 1 violations seen, 3 input rejected in strict mode.
  int exit_code = 0;
};

/// The long-running ingest loop behind `psn_cli serve` (DESIGN.md §12):
/// reads JSONL trace records from a stream until EOF, feeds each into a
/// trace-only StreamChecker, and writes JSONL events to `out` —
///   {"event":"violation",...}  as contracts are violated
///   {"event":"detect",...}     echoing detector transitions out-of-band
///   {"event":"reject",...}     for malformed or out-of-order input
///   {"event":"metrics",...}    every metrics_every records
///   {"event":"eof",...}        final verdict + totals on shutdown
/// Memory is bounded independent of stream length: the only per-record
/// state retained is the checker's Δ-window (see SoakServerConfig) and
/// fixed-size counters. kDetect records carry rewound cause timestamps by
/// design, so they are exempt from the monotonic-time requirement the
/// network-plane records must satisfy.
class SoakServer {
 public:
  SoakServer(const SoakServerConfig& config, std::ostream& out);

  /// Runs to EOF (or to the first strict-mode rejection) and returns the
  /// session totals. One-shot: construct a fresh server per session.
  SoakReport run(std::istream& in);

 private:
  void emit_metrics();

  SoakServerConfig cfg_;
  std::ostream& out_;
  check::StreamChecker checker_;
  MetricsRegistry metrics_;
  SoakReport report_;
};

}  // namespace psn::serve
