#pragma once

#include <iosfwd>

#include "serve/session.hpp"

namespace psn::serve {

/// The single-stream ingest loop behind `psn_cli serve` without `--listen`
/// (DESIGN.md §12): reads JSONL trace records from a stream until EOF and
/// writes JSONL events to `out` —
///   {"event":"violation",...}  as contracts are violated
///   {"event":"detect",...}     echoing detector transitions out-of-band
///   {"event":"reject",...}     for malformed or out-of-order input
///   {"event":"metrics",...}    every metrics_every records
///   {"event":"eof",...}        final verdict + totals on shutdown
/// All the work happens in serve::Session — the same per-stream core the
/// socket Listener runs one of per connection, which is why socket and
/// stdin verdicts are byte-identical by construction. Memory is bounded
/// independent of stream length: the only per-record state retained is the
/// checker's Δ-window (see SoakServerConfig) and fixed-size counters.
/// kDetect records carry rewound cause timestamps by design, so they are
/// exempt from the monotonic-time requirement the network-plane records
/// must satisfy.
class SoakServer {
 public:
  SoakServer(const SoakServerConfig& config, std::ostream& out);

  /// Runs to EOF (or to the first strict-mode rejection, or until `out`
  /// stops accepting writes) and returns the session totals. One-shot:
  /// construct a fresh server per session.
  SoakReport run(std::istream& in);

 private:
  SoakServerConfig cfg_;
  std::ostream& out_;
};

}  // namespace psn::serve
