#include "serve/listener.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <ostream>
#include <utility>

#include "analysis/export.hpp"
#include "common/error.hpp"

namespace psn::serve {

namespace {

/// Write fd of the running listener's stop pipe, for the signal handlers.
/// One listener runs at a time (the CLI's); -1 when none is live.
std::atomic<int> g_stop_fd{-1};

void stop_signal_handler(int /*signum*/) {
  const int fd = g_stop_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const auto n = ::write(fd, &byte, 1);
  }
}

/// Sends the whole chunk, retrying EINTR. MSG_NOSIGNAL: a vanished peer
/// must surface as EPIPE (session teardown), never as process-wide SIGPIPE.
bool send_all(int fd, std::string_view chunk) {
  std::size_t off = 0;
  while (off < chunk.size()) {
    const ssize_t n =
        ::send(fd, chunk.data() + off, chunk.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

Listener::Listener(const ListenerConfig& config, std::ostream& log)
    : cfg_(config), log_(log) {}

Listener::~Listener() {
  conns_.clear();
  listen_fd_.reset();
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void Listener::open() {
  if (listen_fd_) return;
  if (all_digits(cfg_.listen)) {
    unsigned port = 0;
    const auto res = std::from_chars(
        cfg_.listen.data(), cfg_.listen.data() + cfg_.listen.size(), port);
    if (res.ec != std::errc() || port > 65535) {
      throw ConfigError("serve: bad --listen port '" + cfg_.listen + "'");
    }
    UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd) throw ConfigError("serve: socket() failed");
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw ConfigError("serve: cannot bind 127.0.0.1:" + cfg_.listen + ": " +
                        std::strerror(errno));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    listen_fd_ = std::move(fd);
  } else {
    sockaddr_un addr{};
    if (cfg_.listen.size() >= sizeof(addr.sun_path)) {
      throw ConfigError("serve: --listen unix path too long: " + cfg_.listen);
    }
    UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd) throw ConfigError("serve: socket() failed");
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, cfg_.listen.c_str(), cfg_.listen.size() + 1);
    ::unlink(cfg_.listen.c_str());  // clear a stale socket from a past run
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw ConfigError("serve: cannot bind " + cfg_.listen + ": " +
                        std::strerror(errno));
    }
    unix_path_ = cfg_.listen;
    listen_fd_ = std::move(fd);
  }
  if (::listen(listen_fd_.get(), 64) != 0) {
    throw ConfigError(std::string("serve: listen() failed: ") +
                      std::strerror(errno));
  }
}

void Listener::log_line(const std::string& line) {
  log_ << line;
  log_.flush();
}

void Listener::accept_one() {
  UniqueFd client(::accept(listen_fd_.get(), nullptr, nullptr));
  if (!client) return;

  if (conns_.size() >= cfg_.max_streams) {
    // Clean over-limit reject: one explanatory line, then close. Flow
    // control, not an input rejection — the exit code is unaffected.
    metrics_.counter("serve.streams.over_limit").inc();
    send_all(client.get(),
             "{\"event\":\"reject\",\"error\":\"server at --max-streams "
             "capacity (" +
                 std::to_string(cfg_.max_streams) + ")\"}\n");
    log_line("{\"event\":\"reject\",\"reason\":\"max-streams\",\"limit\":" +
             std::to_string(cfg_.max_streams) + "}\n");
    return;
  }

  auto conn = std::make_unique<Connection>();
  conn->id = next_stream_id_++;
  conn->fd = std::move(client);
  SessionConfig session_cfg;
  session_cfg.soak = cfg_.session;
  session_cfg.stream_id = conn->id;
  session_cfg.max_line_bytes = cfg_.max_line_bytes;
  const int fd = conn->fd.get();
  conn->session = std::make_unique<Session>(
      session_cfg,
      [fd](std::string_view chunk) { return send_all(fd, chunk); });
  conn->last_activity = std::chrono::steady_clock::now();
  metrics_.counter("serve.streams.accepted").inc();
  log_line("{\"event\":\"accept\",\"stream\":" + std::to_string(conn->id) +
           "}\n");
  conns_.push_back(std::move(conn));
}

bool Listener::service(Connection& conn) {
  char buf[65536];
  const ssize_t n = ::read(conn.fd.get(), buf, sizeof(buf));
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN) return false;
    return true;  // connection error: finalize what we have and close
  }
  if (n == 0) return true;  // producer EOF (orderly or half-close)
  conn.last_activity = std::chrono::steady_clock::now();
  if (conn.finalized) return false;  // draining a stopped session's input
  conn.session->on_data(std::string_view(buf, static_cast<std::size_t>(n)));
  if (conn.session->stopped()) {
    // Strict-mode rejection or write failure: the verdict is final, so emit
    // it now — but keep reading (and discarding) until the producer's EOF.
    // Closing with unread bytes in the receive buffer would send an RST
    // that can destroy the verdict before the client reads it.
    finalize(conn);
  }
  return false;
}

void Listener::finalize(Connection& conn) {
  if (conn.finalized) return;
  conn.finalized = true;
  const SoakReport& report = conn.session->finish();
  streams_served_++;

  // Fold this stream's metrics into the server-wide snapshot under its
  // per-stream labels; everything else the session counted stays local.
  const std::uint64_t id = conn.id;
  stream_metrics_.merge_renamed(
      conn.session->metrics_snapshot(),
      [id](const std::string& name) -> std::string {
        if (name == "serve.records")
          return labeled_metric("serve.stream", id, "records");
        if (name == "serve.violations")
          return labeled_metric("serve.stream", id, "violations");
        if (name == "serve.peak_pending")
          return labeled_metric("serve.stream", id, "peak_pending");
        if (name == "serve.stale_observations")
          return labeled_metric("serve.stream", id, "stale");
        return std::string();
      });

  if (conn.session->write_failed()) {
    metrics_.counter("serve.streams.write_failed").inc();
  }
  // Rejection (3) takes precedence over violations (1) over clean (0).
  if (report.exit_code == 3) {
    exit_code_ = 3;
  } else if (report.exit_code == 1 && exit_code_ != 3) {
    exit_code_ = 1;
  }
  log_line("{\"event\":\"close\",\"stream\":" + std::to_string(conn.id) +
           ",\"records\":" + std::to_string(report.records_fed) +
           ",\"violations\":" + std::to_string(report.violations) +
           ",\"exit\":" + std::to_string(report.exit_code) + "}\n");
}

void Listener::close_connection(Connection& conn) {
  finalize(conn);
  conn.fd.reset();
}

int Listener::poll_timeout_ms() const {
  if (cfg_.idle_timeout_ms <= 0 || conns_.empty()) return -1;
  const auto now = std::chrono::steady_clock::now();
  std::int64_t nearest = cfg_.idle_timeout_ms;
  for (const auto& conn : conns_) {
    const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now - conn->last_activity)
                          .count();
    nearest = std::min(nearest, cfg_.idle_timeout_ms - idle);
  }
  return static_cast<int>(std::max<std::int64_t>(0, nearest));
}

void Listener::evict_idle() {
  if (cfg_.idle_timeout_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto& conn : conns_) {
    if (!conn->fd) continue;
    const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now - conn->last_activity)
                          .count();
    if (idle < cfg_.idle_timeout_ms) continue;
    // Eviction is the normal end-of-stream path: the client still gets its
    // final metrics + eof verdict before the close.
    metrics_.counter(labeled_metric("serve.stream", conn->id, "idle_evicted"))
        .inc();
    log_line("{\"event\":\"idle_evict\",\"stream\":" +
             std::to_string(conn->id) +
             ",\"idle_ms\":" + std::to_string(idle) + "}\n");
    close_connection(*conn);
  }
}

int Listener::run() {
  open();

  struct sigaction old_int {};
  struct sigaction old_term {};
  if (cfg_.handle_signals) {
    g_stop_fd.store(stop_pipe_.write_fd(), std::memory_order_relaxed);
    struct sigaction sa {};
    sa.sa_handler = stop_signal_handler;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, &old_int);
    ::sigaction(SIGTERM, &sa, &old_term);
  }

  bool stopping = false;
  while (!stopping) {
    std::vector<pollfd> fds;
    fds.reserve(conns_.size() + 2);
    fds.push_back({stop_pipe_.read_fd(), POLLIN, 0});
    fds.push_back({listen_fd_.get(), POLLIN, 0});
    for (const auto& conn : conns_) {
      fds.push_back({conn->fd.get(), POLLIN, 0});
    }
    const int rc =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), poll_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      stop_pipe_.drain();
      stopping = true;
      break;
    }
    // Service sessions before accepting: fds[2 + i] maps to conns_[i].
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      const short revents = fds[2 + i].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (service(*conns_[i])) close_connection(*conns_[i]);
    }
    evict_idle();
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<Connection>& c) {
                                  return !c->fd;
                                }),
                 conns_.end());
    if ((fds[1].revents & POLLIN) != 0) accept_one();
  }

  // Graceful shutdown: drain every live session through finish() so each
  // client still gets its final metrics + eof verdict.
  for (const auto& conn : conns_) close_connection(*conn);
  conns_.clear();

  if (cfg_.handle_signals) {
    ::sigaction(SIGINT, &old_int, nullptr);
    ::sigaction(SIGTERM, &old_term, nullptr);
    g_stop_fd.store(-1, std::memory_order_relaxed);
  }

  const MetricsSnapshot merged = server_metrics();
  log_line("{\"event\":\"shutdown\",\"streams\":" +
           std::to_string(streams_served_) +
           ",\"exit\":" + std::to_string(exit_code_) +
           ",\"data\":" + analysis::metrics_json(merged) + "}\n");
  return exit_code_;
}

MetricsSnapshot Listener::server_metrics() const {
  MetricsSnapshot merged = metrics_.snapshot();
  merged.merge(stream_metrics_);
  return merged;
}

}  // namespace psn::serve
