#pragma once

#include <string>
#include <string_view>

#include "sim/trace.hpp"

/// psn::serve — the streaming ingest layer (DESIGN.md §12). The JSONL trace
/// schema that analysis::trace_jsonl exports is the wire format: one flat
/// JSON object per line, keys t/kind/pid/peer/msg/bytes/seq/note. A batch
/// trace file piped into `psn_cli serve` therefore replays exactly, and a
/// live producer only has to emit the same lines as they happen.
namespace psn::serve {

/// Outcome of parsing one wire line: either a record or a diagnostic.
struct ParsedRecord {
  sim::TraceRecord record;
  std::string error;  ///< non-empty iff the line was rejected

  bool ok() const { return error.empty(); }
};

/// Parses one JSONL trace line. Strict by design — the soak server treats
/// its stdin as a checked interface, not best-effort telemetry: unknown or
/// duplicate keys, missing required keys (t, kind, pid), malformed JSON,
/// negative times, or out-of-range enum names all reject the line with a
/// specific diagnostic. Key order is free; `peer`, `msg`, `bytes`, `seq`,
/// and `note` are optional exactly as the exporter omits them.
ParsedRecord parse_trace_line(std::string_view line);

/// Serializes one record back to the wire format, byte-identical to the
/// line analysis::trace_jsonl would emit for it (round-trip pinned by
/// test). No trailing newline.
std::string trace_line(const sim::TraceRecord& record);

}  // namespace psn::serve
