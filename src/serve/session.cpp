#include "serve/session.hpp"

#include <algorithm>
#include <utility>

#include "analysis/export.hpp"
#include "serve/trace_feed.hpp"

namespace psn::serve {

namespace {

check::StreamCheckerConfig checker_config(const SoakServerConfig& cfg) {
  check::StreamCheckerConfig out;
  out.num_processes = cfg.num_processes;
  out.send_retention = cfg.send_retention;
  out.options.validity_horizon = cfg.validity_horizon;
  out.options.max_recorded_violations = cfg.max_recorded_violations;
  // executions stays nullptr: the wire carries trace records, never
  // per-process clock claims, so the checker runs in trace-only mode.
  return out;
}

std::string time_field(SimTime t) {
  // json_fixed, not snprintf: the wire format keeps '.' under any locale.
  return analysis::json_fixed(t.to_seconds(), 9);
}

}  // namespace

Session::Session(const SessionConfig& config, Writer writer)
    : cfg_(config),
      writer_(std::move(writer)),
      checker_(checker_config(config.soak)),
      records_(metrics_.counter("serve.records")),
      malformed_(metrics_.counter("serve.rejects.malformed")),
      out_of_order_(metrics_.counter("serve.rejects.out_of_order")),
      overlong_(metrics_.counter("serve.rejects.overlong")),
      detects_(metrics_.counter("serve.detects")),
      violations_(metrics_.counter("serve.violations")),
      stale_(metrics_.counter("serve.stale_observations")) {}

std::string Session::event_head(std::string_view name) const {
  std::string out = "{\"event\":\"";
  out += name;
  out += '"';
  if (cfg_.stream_id.has_value()) {
    out += ",\"stream\":";
    out += std::to_string(*cfg_.stream_id);
  }
  return out;
}

void Session::emit(const std::string& line) {
  if (write_failed_) return;
  if (!writer_(line)) {
    // The downstream consumer is gone. Tear this session down quietly —
    // never the process (SIGPIPE is ignored at the CLI layer and sockets
    // write with MSG_NOSIGNAL).
    write_failed_ = true;
    stop_reading_ = true;
  }
}

void Session::emit_metrics() {
  metrics_.gauge("serve.pending_sends")
      .set(static_cast<double>(checker_.pending_sends()));
  metrics_.gauge("serve.peak_pending")
      .set(static_cast<double>(report_.peak_pending_sends));
  emit(event_head("metrics") + ",\"records\":" +
       std::to_string(report_.records_fed) +
       ",\"data\":" + analysis::metrics_json(metrics_.snapshot()) + "}\n");
  last_metrics_records_ = report_.records_fed;
}

void Session::reject(const std::string& error, std::size_t& report_counter,
                     MetricsRegistry::Counter& metric) {
  report_counter++;
  metric.inc();
  emit("{\"event\":\"reject\",\"line\":" + std::to_string(report_.lines_read) +
       ",\"error\":\"" + analysis::json_escape(error) + "\"}\n");
  if (!cfg_.soak.lenient) {
    rejected_ = true;
    stop_reading_ = true;
  }
}

void Session::feed_line(std::string_view line) {
  if (stopped()) return;
  ingest_line(line);
}

void Session::on_data(std::string_view bytes) {
  std::size_t i = 0;
  while (i < bytes.size() && !stopped()) {
    const std::size_t nl = bytes.find('\n', i);
    if (discarding_line_) {
      // Lenient slow-producer policy: the over-long line was already
      // rejected; drop its remaining bytes up to the terminator.
      if (nl == std::string_view::npos) return;
      i = nl + 1;
      discarding_line_ = false;
      continue;
    }
    if (nl != std::string_view::npos) {
      buffer_.append(bytes.substr(i, nl - i));
      i = nl + 1;
      if (buffer_.size() > cfg_.max_line_bytes) {
        report_.lines_read++;
        reject("line exceeds --max-buffer (" +
                   std::to_string(cfg_.max_line_bytes) + " bytes)",
               report_.overlong_lines, overlong_);
      } else {
        ingest_line(buffer_);
      }
      buffer_.clear();
      continue;
    }
    buffer_.append(bytes.substr(i));
    i = bytes.size();
    if (buffer_.size() > cfg_.max_line_bytes) {
      report_.lines_read++;
      reject("line exceeds --max-buffer (" +
                 std::to_string(cfg_.max_line_bytes) + " bytes)",
             report_.overlong_lines, overlong_);
      buffer_.clear();
      discarding_line_ = true;
    }
  }
}

void Session::ingest_line(std::string_view line) {
  report_.lines_read++;
  if (line.empty()) return;

  const ParsedRecord parsed = parse_trace_line(line);
  if (!parsed.ok()) {
    reject(parsed.error, report_.malformed_lines, malformed_);
    return;
  }
  const sim::TraceRecord& r = parsed.record;

  // The network plane is totally ordered by true time; only kDetect
  // records may rewind (they carry the causing sense's timestamp and are
  // appended out-of-band by batch exporters).
  if (r.kind != sim::TraceKind::kDetect) {
    if (have_last_ && r.at < last_) {
      reject("record time " + time_field(r.at) +
                 "s precedes previous record at " + time_field(last_) + "s",
             report_.out_of_order_lines, out_of_order_);
      return;
    }
    last_ = r.at;
    have_last_ = true;
  }

  const auto violation = checker_.feed(r);
  report_.records_fed++;
  records_.inc();

  if (r.kind == sim::TraceKind::kDetect) {
    report_.detect_records++;
    detects_.inc();
    std::string line_out = "{\"event\":\"detect\",\"t\":" + time_field(r.at) +
                           ",\"pid\":" + std::to_string(r.pid);
    if (!r.note.empty()) {
      line_out += ",\"detector\":\"" + analysis::json_escape(r.note) + '"';
    }
    line_out += "}\n";
    emit(line_out);
  }
  if (violation.has_value()) {
    violations_.inc();
    emit("{\"event\":\"violation\",\"t\":" + time_field(violation->at) +
         ",\"kind\":\"" + check::to_string(violation->kind) +
         "\",\"pid\":" + std::to_string(violation->pid) +
         ",\"seq\":" + std::to_string(violation->seq) + ",\"detail\":\"" +
         analysis::json_escape(violation->detail) + "\"}\n");
  }
  const std::size_t now_stale = checker_.stale_observations();
  if (now_stale > stale_seen_) {
    stale_.inc(now_stale - stale_seen_);
    stale_seen_ = now_stale;
  }
  report_.peak_pending_sends =
      std::max(report_.peak_pending_sends, checker_.pending_sends());

  if (cfg_.soak.metrics_every != 0 &&
      report_.records_fed % cfg_.soak.metrics_every == 0) {
    emit_metrics();
  }
}

const SoakReport& Session::finish() {
  if (finished_) return report_;
  // A trailing unterminated line counts, exactly as std::getline yields it.
  if (!buffer_.empty() && !discarding_line_ && !stopped()) {
    ingest_line(buffer_);
  }
  buffer_.clear();
  finished_ = true;

  report_.stale_observations = checker_.stale_observations();
  const check::CheckReport final_report = checker_.finish();
  report_.violations = final_report.total_violations();
  if (rejected_) {
    report_.exit_code = 3;
  } else if (report_.violations > 0) {
    report_.exit_code = 1;
  }

  // Boundary dedup: a stream whose length is an exact multiple of
  // metrics_every already emitted this snapshot inside the loop.
  if (last_metrics_records_ != report_.records_fed) emit_metrics();
  emit(event_head("eof") + ",\"verdict\":\"" +
       (rejected_ ? "rejected-input" : to_string(final_report.verdict)) +
       "\",\"records\":" + std::to_string(report_.records_fed) +
       ",\"violations\":" + std::to_string(report_.violations) +
       ",\"stale\":" + std::to_string(report_.stale_observations) +
       ",\"rejected\":" +
       std::to_string(report_.malformed_lines + report_.out_of_order_lines +
                      report_.overlong_lines) +
       ",\"peak_pending\":" + std::to_string(report_.peak_pending_sends) +
       ",\"exit\":" + std::to_string(report_.exit_code) + "}\n");
  return report_;
}

}  // namespace psn::serve
