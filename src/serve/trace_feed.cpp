#include "serve/trace_feed.hpp"

#include <charconv>
#include <cmath>
#include <string>

#if !defined(__cpp_lib_to_chars) || __cpp_lib_to_chars < 201611L
#include <cerrno>
#include <clocale>
#include <cstdlib>
#include <cstring>
#endif

#include "analysis/export.hpp"
#include "net/message.hpp"

namespace psn::serve {

namespace {

/// Hand-rolled scanner for the flat one-object-per-line schema. The wire
/// format never nests, so a full JSON parser would only add failure modes;
/// this one accepts exactly what analysis::trace_jsonl produces (any key
/// order) and rejects everything else with a pointed diagnostic.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : p_(line.data()), end_(line.data() + line.size()) {}

  ParsedRecord parse() {
    ParsedRecord out;
    skip_ws();
    if (!consume('{')) return fail(out, "expected '{'");
    skip_ws();
    if (consume('}')) {
      finish(out);
      return out;
    }
    while (true) {
      std::string key;
      if (!parse_string(key)) return fail(out, "expected key string");
      skip_ws();
      if (!consume(':')) return fail(out, "expected ':' after key \"" + key + "\"");
      skip_ws();
      if (!parse_value(key, out)) return out;
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      if (consume('}')) break;
      return fail(out, "expected ',' or '}' after value of \"" + key + "\"");
    }
    skip_ws();
    if (p_ != end_) return fail(out, "trailing content after '}'");
    finish(out);
    return out;
  }

 private:
  ParsedRecord& fail(ParsedRecord& out, const std::string& why) {
    if (out.error.empty()) out.error = why;
    return out;
  }

  void finish(ParsedRecord& out) {
    if (!out.error.empty()) return;
    if (!have_t_) out.error = "missing required key \"t\"";
    else if (!have_kind_) out.error = "missing required key \"kind\"";
    else if (!have_pid_) out.error = "missing required key \"pid\"";
  }

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\r')) p_++;
  }

  bool consume(char c) {
    if (p_ == end_ || *p_ != c) return false;
    p_++;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ == end_) return false;
      const char esc = *p_++;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (end_ - p_ < 4) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          if (code > 0x7f) return false;  // the exporter only escapes ASCII
          out += static_cast<char>(code);
          break;
        }
        default: return false;
      }
    }
    return consume('"');
  }

  // Numbers go through std::from_chars, never strtod/strtoull: the strto*
  // family honors LC_NUMERIC, so under a comma-decimal locale every
  // fractional timestamp would be truncated at the '.' (and the trailing
  // ".5" then rejected as garbage). from_chars is locale-independent by
  // specification and needs no NUL terminator.
  bool parse_uint(std::uint64_t& out) {
    if (p_ == end_ || *p_ < '0' || *p_ > '9') return false;
    const auto res = std::from_chars(p_, end_, out, 10);
    if (res.ec != std::errc() || res.ptr == p_) return false;
    p_ = res.ptr;
    return true;
  }

  bool parse_double(double& out) {
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
    const auto res = std::from_chars(p_, end_, out);
    if (res.ec != std::errc() || res.ptr == p_) return false;
    p_ = res.ptr;
    return true;
#else
    // Shim for standard libraries without floating-point from_chars: copy
    // the number token, substitute the active locale's decimal point for
    // '.', and let strtod parse the localized copy. Character counts map
    // 1:1, so the input cursor advances by exactly what strtod consumed.
    char buf[64];
    std::size_t n = 0;
    const char* q = p_;
    if (q != end_ && (*q == '-' || *q == '+')) buf[n++] = *q++;
    char point = '.';
    if (const struct lconv* lc = std::localeconv()) {
      if (lc->decimal_point != nullptr && lc->decimal_point[0] != '\0' &&
          std::strlen(lc->decimal_point) == 1) {
        point = lc->decimal_point[0];
      }
    }
    while (q != end_ && n + 1 < sizeof(buf) &&
           ((*q >= '0' && *q <= '9') || *q == '.' || *q == 'e' || *q == 'E' ||
            *q == '+' || *q == '-')) {
      buf[n++] = *q == '.' ? point : *q;
      q++;
    }
    buf[n] = '\0';
    errno = 0;
    char* after = nullptr;
    // Sanctioned no-<charconv> fallback: the digits above were rewritten to
    // the active locale's decimal point, so strtod parses them correctly
    // under any locale. psn-lint: allow(psn-locale-safe-io)
    out = std::strtod(buf, &after);
    if (errno == ERANGE || after == buf) return false;
    p_ += after - buf;
    return true;
#endif
  }

  bool seen(ParsedRecord& out, bool& flag, const std::string& key) {
    if (flag) {
      fail(out, "duplicate key \"" + key + "\"");
      return true;
    }
    flag = true;
    return false;
  }

  /// Dispatches one key/value pair into the record. Returns false (with
  /// out.error set) on any malformation.
  bool parse_value(const std::string& key, ParsedRecord& out) {
    if (key == "t") {
      if (seen(out, have_t_, key)) return false;
      double seconds = 0.0;
      if (!parse_double(seconds) || !std::isfinite(seconds) ||
          seconds < 0.0) {
        fail(out, "\"t\" must be a non-negative number of seconds");
        return false;
      }
      out.record.at = SimTime::from_seconds(seconds);
      return true;
    }
    if (key == "kind") {
      if (seen(out, have_kind_, key)) return false;
      std::string name;
      if (!parse_string(name)) {
        fail(out, "\"kind\" must be a string");
        return false;
      }
      for (int k = 0; k <= static_cast<int>(sim::TraceKind::kHeal); ++k) {
        if (name == sim::to_string(static_cast<sim::TraceKind>(k))) {
          out.record.kind = static_cast<sim::TraceKind>(k);
          return true;
        }
      }
      fail(out, "unknown trace kind \"" + name + "\"");
      return false;
    }
    if (key == "pid" || key == "peer") {
      bool& flag = key == "pid" ? have_pid_ : have_peer_;
      if (seen(out, flag, key)) return false;
      std::uint64_t v = 0;
      if (!parse_uint(v) || v >= kNoProcess) {
        fail(out, "\"" + key + "\" must be a process id");
        return false;
      }
      (key == "pid" ? out.record.pid : out.record.peer) =
          static_cast<ProcessId>(v);
      return true;
    }
    if (key == "msg") {
      if (seen(out, have_msg_, key)) return false;
      std::string name;
      if (!parse_string(name)) {
        fail(out, "\"msg\" must be a string");
        return false;
      }
      for (int k = 0; k <= static_cast<int>(net::MessageKind::kActuation);
           ++k) {
        if (name == net::to_string(static_cast<net::MessageKind>(k))) {
          out.record.message_kind = k;
          return true;
        }
      }
      fail(out, "unknown message kind \"" + name + "\"");
      return false;
    }
    if (key == "bytes") {
      if (seen(out, have_bytes_, key)) return false;
      std::uint64_t v = 0;
      if (!parse_uint(v)) {
        fail(out, "\"bytes\" must be a non-negative integer");
        return false;
      }
      out.record.bytes = static_cast<std::size_t>(v);
      return true;
    }
    if (key == "seq") {
      if (seen(out, have_seq_, key)) return false;
      if (!parse_uint(out.record.seq)) {
        fail(out, "\"seq\" must be a non-negative integer");
        return false;
      }
      return true;
    }
    if (key == "note") {
      if (seen(out, have_note_, key)) return false;
      if (!parse_string(out.record.note)) {
        fail(out, "\"note\" must be a string");
        return false;
      }
      return true;
    }
    fail(out, "unknown key \"" + key + "\"");
    return false;
  }

  const char* p_;
  const char* end_;
  bool have_t_ = false, have_kind_ = false, have_pid_ = false,
       have_peer_ = false, have_msg_ = false, have_bytes_ = false,
       have_seq_ = false, have_note_ = false;
};

}  // namespace

ParsedRecord parse_trace_line(std::string_view line) {
  return LineParser(line).parse();
}

std::string trace_line(const sim::TraceRecord& record) {
  // Delegate to the batch exporter so the two can never drift apart.
  std::string out = analysis::trace_jsonl({record});
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

}  // namespace psn::serve
