#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/fd.hpp"
#include "common/metrics.hpp"
#include "serve/session.hpp"

namespace psn::serve {

struct ListenerConfig {
  /// Where to listen: an all-digit spec is a TCP port bound to 127.0.0.1
  /// (0 picks an ephemeral port — read it back via Listener::port());
  /// anything else is an AF_UNIX socket path, created at bind and unlinked
  /// on close. Loopback-only on purpose: a soak verifier has no business on
  /// a public interface.
  std::string listen;

  /// Connection limit. A client accepted above the limit gets one clean
  /// over-limit reject line and an immediate close; it does not affect the
  /// server's exit code.
  std::size_t max_streams = 64;

  /// Per-session checker configuration (same knobs as stdin mode).
  SoakServerConfig session;

  /// Per-session line-reassembly cap (SessionConfig::max_line_bytes).
  std::size_t max_line_bytes = std::size_t{1} << 16;

  /// Evict a session after this much wall-clock time without a byte from
  /// its producer (0 = never). Eviction is the normal end-of-stream path:
  /// the session is drained through finish(), the client gets its final
  /// metrics + eof verdict, and serve.stream.<id>.idle_evicted records the
  /// cause in the shutdown snapshot. A producer that wedges mid-soak can no
  /// longer pin a stream slot forever.
  std::int64_t idle_timeout_ms = 0;

  /// Install SIGINT/SIGTERM handlers for graceful shutdown while run() is
  /// live. Tests turn this off and call request_stop() instead.
  bool handle_signals = true;
};

/// Multi-stream socket front end for the soak verifier (DESIGN.md §12): a
/// single-threaded poll loop that accepts connections and runs one
/// serve::Session per connection — each with its own bounded trace-only
/// StreamChecker and line-reassembly buffer, so per-stream verdicts are
/// byte-identical to single-stream `psn_cli serve` on the same input
/// (modulo the `"stream":<id>` field on `metrics`/`eof` events). Session
/// events go back over that session's own connection; the listener's log
/// stream carries lifecycle lines:
///   {"event":"accept","stream":3}
///   {"event":"close","stream":3,"records":...,"exit":0}
///   {"event":"reject","reason":"max-streams","limit":N}
///   {"event":"shutdown","streams":...,"exit":0,"data":{...}}
/// The shutdown line's data object is the server-wide snapshot: listener
/// counters plus every session's metrics folded in under per-stream labels
/// (serve.stream.<id>.records / .violations / .peak_pending / .stale) via
/// MetricsSnapshot::merge_renamed — deterministic name-sorted merge.
///
/// On SIGINT/SIGTERM (or request_stop()) the loop stops accepting, drains
/// every live session through finish() — emitting its final metrics and
/// `eof` verdict to its client — and returns. Exit code aggregation:
/// strict-mode rejection (3) beats violations (1) beats clean (0).
class Listener {
 public:
  Listener(const ListenerConfig& config, std::ostream& log);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens; ConfigError on a bad spec or bind failure. Called
  /// by run() when not already open; tests call it early to learn port().
  void open();

  /// Serves until a stop request, then drains and returns the aggregate
  /// exit code.
  int run();

  /// Thread-safe, async-signal-safe stop request (self-pipe poke).
  void request_stop() { stop_pipe_.poke(); }

  /// Bound TCP port (after open); 0 for unix-path listeners.
  std::uint16_t port() const { return port_; }

  std::size_t streams_served() const { return streams_served_; }

  /// Listener counters merged with the per-stream labeled session metrics
  /// accumulated so far.
  MetricsSnapshot server_metrics() const;

 private:
  struct Connection {
    UniqueFd fd;
    std::uint64_t id = 0;
    std::unique_ptr<Session> session;
    bool finalized = false;  ///< verdict emitted; now draining to EOF
    /// Last instant the producer delivered bytes (or the accept instant);
    /// drives the --idle-timeout eviction clock.
    std::chrono::steady_clock::time_point last_activity;
  };

  void accept_one();
  /// Reads once; feeds the session; returns true when the connection is
  /// done (EOF or error) and should be closed.
  bool service(Connection& conn);
  /// Poll timeout honoring the nearest idle deadline (-1 = block forever).
  int poll_timeout_ms() const;
  /// Evicts every session whose idle deadline has passed.
  void evict_idle();
  /// Emits the session's final events, merges its metrics, logs the close
  /// line, and folds its exit code into the aggregate. Idempotent.
  void finalize(Connection& conn);
  void close_connection(Connection& conn);
  void log_line(const std::string& line);

  ListenerConfig cfg_;
  std::ostream& log_;
  UniqueFd listen_fd_;
  SelfPipe stop_pipe_;
  std::string unix_path_;  ///< non-empty when listening on AF_UNIX
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::uint64_t next_stream_id_ = 0;
  std::size_t streams_served_ = 0;
  int exit_code_ = 0;
  MetricsRegistry metrics_;          ///< listener-level counters
  MetricsSnapshot stream_metrics_;   ///< per-stream labeled session metrics
};

}  // namespace psn::serve
