#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "check/stream_checker.hpp"
#include "common/metrics.hpp"
#include "common/sim_time.hpp"
#include "core/observation.hpp"

namespace psn::serve {

struct SoakServerConfig {
  /// Process count of the producing deployment (including P_0). 0 = unknown
  /// topology: pid-range checks are skipped, everything else still runs.
  std::size_t num_processes = 0;

  /// How long an unmatched send/sense entry is retained before eviction —
  /// the Δ-window that bounds the checker's working set. Must be finite in
  /// a long-running server; set it comfortably above the deployment's
  /// end-to-end delay bound so no live edge is ever evicted.
  Duration send_retention = Duration::seconds(10);

  /// Kopetz-Steiner temporal validity policy; unbounded disables the
  /// staleness contract.
  core::ValidityHorizon validity_horizon;

  /// Emit a metrics snapshot line every this many records (0 = only at EOF).
  std::size_t metrics_every = 100000;

  /// Strict mode (default) stops at the first malformed, out-of-order, or
  /// over-long line with exit code 3; lenient mode rejects the line, keeps
  /// counting, and carries on — for tapping lossy or hand-edited feeds.
  bool lenient = false;

  /// Violation witnesses retained by the checker (counting never stops).
  std::size_t max_recorded_violations = 16;
};

/// What one ingest session did, for the caller's exit handling.
struct SoakReport {
  std::size_t lines_read = 0;
  std::size_t records_fed = 0;
  std::size_t malformed_lines = 0;
  std::size_t out_of_order_lines = 0;
  /// Lines that outgrew the reassembly buffer cap (socket mode's
  /// slow-producer policy; see SessionConfig::max_line_bytes).
  std::size_t overlong_lines = 0;
  std::size_t detect_records = 0;
  std::size_t violations = 0;
  std::size_t stale_observations = 0;
  /// High-water mark of the checker's retained send window — the number the
  /// bounded-memory acceptance test pins.
  std::size_t peak_pending_sends = 0;
  /// 0 clean EOF, 1 violations seen, 3 input rejected in strict mode.
  /// Rejection takes precedence over violations.
  int exit_code = 0;
};

struct SessionConfig {
  SoakServerConfig soak;

  /// Socket mode stamps this id into the session's `metrics` and `eof`
  /// events (`"stream":<id>`); unset (stdin mode) emits no stream field, so
  /// single-stream output is byte-identical to the pre-socket server.
  std::optional<std::uint64_t> stream_id;

  /// Cap on the per-session line-reassembly buffer. A producer that sends
  /// more than this without a newline hits the slow-producer policy: strict
  /// mode rejects the session (exit 3), lenient mode drops bytes up to the
  /// next newline and counts the loss (SoakReport::overlong_lines).
  std::size_t max_line_bytes = std::size_t{1} << 16;
};

/// One verification stream: the session core shared by the stdin SoakServer
/// and every socket connection of serve::Listener (DESIGN.md §12). Owns a
/// bounded trace-only StreamChecker, the line-reassembly buffer, and the
/// JSONL event writer; emits the same event lines as the single-stream
/// server by construction, which is what makes the multi-stream equivalence
/// suite a byte-compare.
///
/// Writes go through the injected Writer; a false return means the
/// downstream consumer is gone (EPIPE, closed socket) and tears the session
/// down instead of killing the process — the serve layer's SIGPIPE policy.
class Session {
 public:
  using Writer = std::function<bool(std::string_view)>;

  Session(const SessionConfig& config, Writer writer);

  /// Line-oriented entry (stdin mode, tests): one complete line, no '\n'.
  /// No-op once the session has stopped.
  void feed_line(std::string_view line);

  /// Byte-oriented entry (socket mode): reassembles lines out of arbitrary
  /// read chunks, honoring max_line_bytes. No-op once stopped.
  void on_data(std::string_view bytes);

  /// True once the session stopped consuming input: strict-mode rejection
  /// or downstream write failure. finish() must still be called.
  bool stopped() const { return stop_reading_ || finished_; }
  bool write_failed() const { return write_failed_; }
  bool finished() const { return finished_; }

  /// Producer EOF (or teardown): feeds any trailing unterminated line,
  /// finishes the checker, emits the final metrics + `eof` verdict events,
  /// and freezes the report. Idempotent.
  const SoakReport& finish();

  const SoakReport& report() const { return report_; }

  /// The session's registry (serve.records, serve.violations, ...), frozen.
  /// The listener folds this into the server-wide snapshot under
  /// per-stream labels via MetricsSnapshot::merge_renamed.
  MetricsSnapshot metrics_snapshot() const { return metrics_.snapshot(); }

 private:
  void ingest_line(std::string_view line);
  void reject(const std::string& error, std::size_t& report_counter,
              MetricsRegistry::Counter& metric);
  void emit_metrics();
  void emit(const std::string& line);
  /// Opens an event object: `{"event":"<name>"` plus the stream field when
  /// configured. Caller appends the rest and the closing brace.
  std::string event_head(std::string_view name) const;

  SessionConfig cfg_;
  Writer writer_;
  check::StreamChecker checker_;
  MetricsRegistry metrics_;
  MetricsRegistry::Counter records_, malformed_, out_of_order_, overlong_,
      detects_, violations_;
  MetricsRegistry::Counter stale_;
  SoakReport report_;

  std::string buffer_;          ///< line reassembly (socket mode)
  bool discarding_line_ = false;  ///< lenient overlong: drop to next '\n'
  SimTime last_ = SimTime::zero();
  bool have_last_ = false;
  std::size_t stale_seen_ = 0;
  /// records_fed at the last metrics emission — the boundary dedup: a
  /// stream whose length is an exact multiple of metrics_every must not get
  /// a duplicate trailing metrics line before `eof`.
  std::size_t last_metrics_records_ = SIZE_MAX;
  bool stop_reading_ = false;
  bool rejected_ = false;  ///< strict-mode rejection seen → exit 3
  bool write_failed_ = false;
  bool finished_ = false;
};

}  // namespace psn::serve
