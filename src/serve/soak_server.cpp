#include "serve/soak_server.hpp"

#include <istream>
#include <ostream>
#include <string>

namespace psn::serve {

SoakServer::SoakServer(const SoakServerConfig& config, std::ostream& out)
    : cfg_(config), out_(out) {}

SoakReport SoakServer::run(std::istream& in) {
  SessionConfig session_cfg;
  session_cfg.soak = cfg_;
  // Stream writes that fail (downstream pipe closed, disk full) stop the
  // session instead of killing the process; see Session::emit.
  Session session(session_cfg, [this](std::string_view chunk) {
    out_.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    return !out_.fail();
  });

  std::string line;
  while (!session.stopped() && std::getline(in, line)) {
    session.feed_line(line);
  }
  const SoakReport report = session.finish();
  out_.flush();
  return report;
}

}  // namespace psn::serve
