#include "serve/soak_server.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <string>

#include "analysis/export.hpp"
#include "serve/trace_feed.hpp"

namespace psn::serve {

namespace {

check::StreamCheckerConfig checker_config(const SoakServerConfig& cfg) {
  check::StreamCheckerConfig out;
  out.num_processes = cfg.num_processes;
  out.send_retention = cfg.send_retention;
  out.options.validity_horizon = cfg.validity_horizon;
  out.options.max_recorded_violations = cfg.max_recorded_violations;
  // executions stays nullptr: the wire carries trace records, never
  // per-process clock claims, so the checker runs in trace-only mode.
  return out;
}

std::string time_field(SimTime t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", t.to_seconds());
  return buf;
}

}  // namespace

SoakServer::SoakServer(const SoakServerConfig& config, std::ostream& out)
    : cfg_(config), out_(out), checker_(checker_config(config)) {}

void SoakServer::emit_metrics() {
  metrics_.gauge("serve.pending_sends")
      .set(static_cast<double>(checker_.pending_sends()));
  out_ << "{\"event\":\"metrics\",\"records\":" << report_.records_fed
       << ",\"data\":" << analysis::metrics_json(metrics_.snapshot()) << "}\n";
}

SoakReport SoakServer::run(std::istream& in) {
  auto records = metrics_.counter("serve.records");
  auto malformed = metrics_.counter("serve.rejects.malformed");
  auto out_of_order = metrics_.counter("serve.rejects.out_of_order");
  auto detects = metrics_.counter("serve.detects");
  auto violations = metrics_.counter("serve.violations");
  auto stale = metrics_.counter("serve.stale_observations");

  std::string line;
  SimTime last = SimTime::zero();
  bool have_last = false;
  bool rejected = false;
  std::size_t stale_seen = 0;

  while (!rejected && std::getline(in, line)) {
    report_.lines_read++;
    if (line.empty()) continue;

    const ParsedRecord parsed = parse_trace_line(line);
    if (!parsed.ok()) {
      report_.malformed_lines++;
      malformed.inc();
      out_ << "{\"event\":\"reject\",\"line\":" << report_.lines_read
           << ",\"error\":\"" << analysis::json_escape(parsed.error)
           << "\"}\n";
      if (!cfg_.lenient) rejected = true;
      continue;
    }
    const sim::TraceRecord& r = parsed.record;

    // The network plane is totally ordered by true time; only kDetect
    // records may rewind (they carry the causing sense's timestamp and are
    // appended out-of-band by batch exporters).
    if (r.kind != sim::TraceKind::kDetect) {
      if (have_last && r.at < last) {
        report_.out_of_order_lines++;
        out_of_order.inc();
        out_ << "{\"event\":\"reject\",\"line\":" << report_.lines_read
             << ",\"error\":\"record time " << time_field(r.at)
             << "s precedes previous record at " << time_field(last)
             << "s\"}\n";
        if (!cfg_.lenient) rejected = true;
        continue;
      }
      last = r.at;
      have_last = true;
    }

    const auto violation = checker_.feed(r);
    report_.records_fed++;
    records.inc();

    if (r.kind == sim::TraceKind::kDetect) {
      report_.detect_records++;
      detects.inc();
      out_ << "{\"event\":\"detect\",\"t\":" << time_field(r.at)
           << ",\"pid\":" << r.pid;
      if (!r.note.empty()) {
        out_ << ",\"detector\":\"" << analysis::json_escape(r.note) << '"';
      }
      out_ << "}\n";
    }
    if (violation.has_value()) {
      violations.inc();
      out_ << "{\"event\":\"violation\",\"t\":" << time_field(violation->at)
           << ",\"kind\":\"" << check::to_string(violation->kind)
           << "\",\"pid\":" << violation->pid
           << ",\"seq\":" << violation->seq << ",\"detail\":\""
           << analysis::json_escape(violation->detail) << "\"}\n";
    }
    const std::size_t now_stale = checker_.stale_observations();
    if (now_stale > stale_seen) {
      stale.inc(now_stale - stale_seen);
      stale_seen = now_stale;
    }
    report_.peak_pending_sends =
        std::max(report_.peak_pending_sends, checker_.pending_sends());

    if (cfg_.metrics_every != 0 &&
        report_.records_fed % cfg_.metrics_every == 0) {
      emit_metrics();
    }
  }

  report_.stale_observations = checker_.stale_observations();
  const check::CheckReport final_report = checker_.finish();
  report_.violations = final_report.total_violations();
  if (rejected) {
    report_.exit_code = 3;
  } else if (report_.violations > 0) {
    report_.exit_code = 1;
  }

  emit_metrics();
  out_ << "{\"event\":\"eof\",\"verdict\":\""
       << (rejected ? "rejected-input" : to_string(final_report.verdict))
       << "\",\"records\":" << report_.records_fed
       << ",\"violations\":" << report_.violations
       << ",\"stale\":" << report_.stale_observations
       << ",\"rejected\":"
       << report_.malformed_lines + report_.out_of_order_lines
       << ",\"peak_pending\":" << report_.peak_pending_sends
       << ",\"exit\":" << report_.exit_code << "}\n";
  out_.flush();
  return report_;
}

}  // namespace psn::serve
