#include "sim/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <tuple>
#include <utility>

#include "common/error.hpp"

namespace psn::sim {

namespace {

[[noreturn]] void bad_spec(const std::string& clause, const std::string& why) {
  throw ConfigError("bad fault clause '" + clause + "': " + why +
                    " (grammar: crash:<pid>@<s>+<s> | cut:<a>-<b>@<s>+<s> | "
                    "drift:<pid>@<s>+<s>:<ppm>)");
}

std::string trimmed(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Parses a non-negative decimal-seconds field (e.g. "2", "0.25").
SimTime parse_seconds(const std::string& clause, const std::string& field) {
  if (field.empty()) bad_spec(clause, "empty time field");
  char* end = nullptr;
  const double s = std::strtod(field.c_str(), &end);
  if (end == nullptr || *end != '\0' || s < 0.0) {
    bad_spec(clause, "'" + field + "' is not a non-negative seconds value");
  }
  return SimTime::from_seconds(s);
}

std::int64_t parse_int(const std::string& clause, const std::string& field) {
  if (field.empty()) bad_spec(clause, "empty integer field");
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    bad_spec(clause, "'" + field + "' is not an integer");
  }
  return static_cast<std::int64_t>(v);
}

ProcessId parse_pid(const std::string& clause, const std::string& field) {
  const std::int64_t v = parse_int(clause, field);
  if (v < 0 || v >= static_cast<std::int64_t>(kNoProcess)) {
    bad_spec(clause, "'" + field + "' is not a process id");
  }
  return static_cast<ProcessId>(v);
}

/// Splits "<begin_s>+<dur_s>" and returns the [begin, end) window.
std::pair<SimTime, SimTime> parse_window(const std::string& clause,
                                         const std::string& field) {
  const std::size_t plus = field.find('+');
  if (plus == std::string::npos) bad_spec(clause, "expected <begin_s>+<dur_s>");
  const SimTime begin = parse_seconds(clause, field.substr(0, plus));
  const SimTime dur_as_time = parse_seconds(clause, field.substr(plus + 1));
  const Duration dur = Duration(dur_as_time.count_nanos());
  if (dur <= Duration::zero()) bad_spec(clause, "duration must be > 0");
  return {begin, begin + dur};
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::size_t end = semi == std::string::npos ? spec.size() : semi;
    const std::string clause = trimmed(spec.substr(pos, end - pos));
    pos = end + 1;
    if (clause.empty()) continue;
    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos) bad_spec(clause, "missing ':'");
    const std::string verb = clause.substr(0, colon);
    const std::string rest = clause.substr(colon + 1);
    const std::size_t at = rest.find('@');
    if (at == std::string::npos) bad_spec(clause, "missing '@'");
    if (verb == "crash") {
      CrashWindow w;
      w.pid = parse_pid(clause, rest.substr(0, at));
      std::tie(w.begin, w.end) = parse_window(clause, rest.substr(at + 1));
      plan.crashes.push_back(w);
    } else if (verb == "cut") {
      const std::string edge = rest.substr(0, at);
      const std::size_t dash = edge.find('-');
      if (dash == std::string::npos) bad_spec(clause, "expected <a>-<b>");
      PartitionWindow w;
      w.a = parse_pid(clause, edge.substr(0, dash));
      w.b = parse_pid(clause, edge.substr(dash + 1));
      std::tie(w.begin, w.end) = parse_window(clause, rest.substr(at + 1));
      plan.partitions.push_back(w);
    } else if (verb == "drift") {
      const std::string tail = rest.substr(at + 1);
      const std::size_t ppm_colon = tail.rfind(':');
      if (ppm_colon == std::string::npos) {
        bad_spec(clause, "expected <begin_s>+<dur_s>:<ppm>");
      }
      ClockFaultWindow w;
      w.pid = parse_pid(clause, rest.substr(0, at));
      std::tie(w.begin, w.end) =
          parse_window(clause, tail.substr(0, ppm_colon));
      w.extra_drift_ppm = parse_int(clause, tail.substr(ppm_colon + 1));
      plan.clock_faults.push_back(w);
    } else {
      bad_spec(clause, "unknown verb '" + verb + "'");
    }
  }
  return plan;
}

FaultSchedule::FaultSchedule(FaultPlan plan) : plan_(std::move(plan)) {
  for (const CrashWindow& w : plan_.crashes) {
    PSN_CHECK(w.pid != kNoProcess, "crash window needs a process id");
    if (w.pid == 0) {
      throw ConfigError(
          "fault plan: process 0 (the mains-powered root) cannot crash");
    }
    if (!(w.begin < w.end)) {
      throw ConfigError("fault plan: crash window must have begin < end");
    }
  }
  for (PartitionWindow& w : plan_.partitions) {
    PSN_CHECK(w.a != kNoProcess && w.b != kNoProcess,
              "cut window needs two process ids");
    if (w.a == w.b) throw ConfigError("fault plan: cannot cut a self-loop");
    if (w.a > w.b) std::swap(w.a, w.b);
    if (!(w.begin < w.end)) {
      throw ConfigError("fault plan: cut window must have begin < end");
    }
  }
  for (const ClockFaultWindow& w : plan_.clock_faults) {
    PSN_CHECK(w.pid != kNoProcess, "drift window needs a process id");
    if (!(w.begin < w.end)) {
      throw ConfigError("fault plan: drift window must have begin < end");
    }
    if (w.extra_drift_ppm == 0) {
      throw ConfigError("fault plan: drift window needs a nonzero ppm");
    }
  }

  crashes_by_pid_ = plan_.crashes;
  std::sort(crashes_by_pid_.begin(), crashes_by_pid_.end(),
            [](const CrashWindow& x, const CrashWindow& y) {
              return std::tie(x.pid, x.begin, x.end) <
                     std::tie(y.pid, y.begin, y.end);
            });
  for (std::size_t i = 1; i < crashes_by_pid_.size(); ++i) {
    const CrashWindow& prev = crashes_by_pid_[i - 1];
    const CrashWindow& next = crashes_by_pid_[i];
    if (prev.pid == next.pid && next.begin < prev.end) {
      throw ConfigError("fault plan: overlapping crash windows for process " +
                        std::to_string(prev.pid));
    }
  }

  std::sort(plan_.partitions.begin(), plan_.partitions.end(),
            [](const PartitionWindow& x, const PartitionWindow& y) {
              return std::tie(x.a, x.b, x.begin, x.end) <
                     std::tie(y.a, y.b, y.begin, y.end);
            });
  for (std::size_t i = 1; i < plan_.partitions.size(); ++i) {
    const PartitionWindow& prev = plan_.partitions[i - 1];
    const PartitionWindow& next = plan_.partitions[i];
    if (prev.a == next.a && prev.b == next.b && next.begin < prev.end) {
      throw ConfigError("fault plan: overlapping cut windows for edge " +
                        std::to_string(prev.a) + "-" + std::to_string(prev.b));
    }
  }

  transitions_.reserve(plan_.partitions.size() * 2);
  for (const PartitionWindow& w : plan_.partitions) {
    transitions_.push_back({w.begin, w.a, w.b, /*cut=*/true});
    transitions_.push_back({w.end, w.a, w.b, /*cut=*/false});
  }
  // Heals sort before cuts at one instant so that back-to-back windows on
  // the same edge ([t0,t1) then [t1,t2)) leave it cut at t1.
  std::sort(transitions_.begin(), transitions_.end(),
            [](const PartitionTransition& x, const PartitionTransition& y) {
              return std::tie(x.at, x.a, x.b, x.cut) <
                     std::tie(y.at, y.a, y.b, y.cut);
            });
}

bool FaultSchedule::down(ProcessId pid, SimTime t) const {
  // First window with (pid, begin) strictly after (pid, t); the candidate
  // covering window, if any, is the one just before it.
  auto it = std::upper_bound(
      crashes_by_pid_.begin(), crashes_by_pid_.end(), t,
      [pid](SimTime when, const CrashWindow& w) {
        return std::make_tuple(pid, when) < std::make_tuple(w.pid, w.begin);
      });
  if (it == crashes_by_pid_.begin()) return false;
  const CrashWindow& w = *(it - 1);
  return w.pid == pid && w.begin <= t && t < w.end;
}

Duration FaultSchedule::drift_offset(ProcessId pid, SimTime t) const {
  std::int64_t offset_ns = 0;
  for (const ClockFaultWindow& w : plan_.clock_faults) {
    if (w.pid != pid || t <= w.begin) continue;
    const SimTime upto = t < w.end ? t : w.end;
    const std::int64_t overlap_ns = (upto - w.begin).count_nanos();
    offset_ns += w.extra_drift_ppm * overlap_ns / 1'000'000;
  }
  return Duration(offset_ns);
}

std::size_t FaultSchedule::partition_epoch(SimTime t) const {
  auto it = std::upper_bound(
      transitions_.begin(), transitions_.end(), t,
      [](SimTime when, const PartitionTransition& tr) { return when < tr.at; });
  return static_cast<std::size_t>(it - transitions_.begin());
}

void FaultSchedule::append_trace_records(std::vector<TraceRecord>& out,
                                         SimTime horizon) const {
  for (const CrashWindow& w : crashes_by_pid_) {
    if (w.begin <= horizon) {
      out.push_back({w.begin, TraceKind::kCrash, w.pid, kNoProcess, -1, 0,
                     std::string(), 0});
    }
    if (w.end <= horizon) {
      out.push_back({w.end, TraceKind::kRestart, w.pid, kNoProcess, -1, 0,
                     std::string(), 0});
    }
  }
  for (const PartitionWindow& w : plan_.partitions) {
    if (w.begin <= horizon) {
      out.push_back({w.begin, TraceKind::kPartition, w.a, w.b, -1, 0,
                     std::string(), 0});
    }
    if (w.end <= horizon) {
      out.push_back(
          {w.end, TraceKind::kHeal, w.a, w.b, -1, 0, std::string(), 0});
    }
  }
}

}  // namespace psn::sim
