#include "sim/sharded.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psn::sim {

ShardedSimulation::ShardedSimulation(std::vector<Simulation*> shards,
                                     Config config)
    : shards_(std::move(shards)), config_(config) {
  PSN_CHECK(!shards_.empty(), "sharded driver needs at least one shard");
  for (Simulation* s : shards_) PSN_CHECK(s != nullptr, "null shard");
  PSN_CHECK(config_.window > Duration::zero(),
            "window width must be positive (delay model must have nonzero "
            "minimum one-hop delay)");
  PSN_CHECK(config_.pool_threads >= 1, "need at least one pool thread");
  if (config_.pool_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<unsigned>(config_.pool_threads));
  }
}

std::size_t ShardedSimulation::drain_all(SimTime fence) {
  // Results are gathered per shard and summed in shard order: the total is
  // deterministic whatever the completion order of the pool tasks.
  if (pool_ == nullptr) {
    std::size_t n = 0;
    for (Simulation* s : shards_) n += s->scheduler().run_until_before(fence);
    return n;
  }
  std::vector<std::future<std::size_t>> turns;
  turns.reserve(shards_.size());
  for (Simulation* s : shards_) {
    turns.push_back(pool_->submit(
        [s, fence]() { return s->scheduler().run_until_before(fence); }));
  }
  std::size_t n = 0;
  for (auto& t : turns) n += t.get();  // the window barrier
  return n;
}

bool ShardedSimulation::quiescent(SimTime horizon) {
  for (Simulation* s : shards_) {
    if (s->scheduler().next_time() <= horizon) return false;
  }
  return true;
}

std::size_t ShardedSimulation::run(const ExchangeFn& exchange) {
  PSN_CHECK(static_cast<bool>(exchange), "null exchange hook");
  truncated_ = false;
  windows_ = 0;
  // `stop` is one tick past the horizon so the final window's exclusive
  // fence still executes events *at* the horizon, matching the serial
  // run_until(horizon) inclusive semantics.
  const SimTime stop = config_.horizon + Duration::nanos(1);
  std::size_t max_events = SIZE_MAX;
  for (const Simulation* s : shards_) {
    max_events = std::min(max_events, s->config().max_events);
  }
  std::size_t total = 0;
  SimTime fence = std::min(stop, SimTime::zero() + config_.window);
  for (;;) {
    total += drain_all(fence);
    windows_++;
    const std::size_t injected = exchange();
    if (total >= max_events) {
      // Safety valve, checked at window granularity (the serial driver
      // checks per event): results are truncated, never an endless spin.
      truncated_ = true;
      return total;
    }
    if (fence == stop && injected == 0 && quiescent(config_.horizon)) {
      return total;
    }
    if (fence < stop) fence = std::min(stop, fence + config_.window);
  }
}

}  // namespace psn::sim
