#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/inline_fn.hpp"
#include "common/metrics.hpp"
#include "common/sim_time.hpp"

namespace psn::sim {

/// Opaque handle to a scheduled event, usable for cancellation. Encodes
/// {slot, generation}: the slot names a cell in the scheduler's callback
/// slab, the generation disambiguates reuse — a handle whose event already
/// fired (or was cancelled) goes stale the moment its slot is recycled, so a
/// late cancel can never hit the slot's next tenant.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return generation_ != 0; }

 private:
  friend class Scheduler;
  EventHandle(std::uint32_t slot, std::uint32_t generation)
      : slot_(slot), generation_(generation) {}
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;  ///< 0 = never scheduled (invalid)
};

/// Deterministic discrete-event calendar.
///
/// Events at equal timestamps fire in (tie, schedule-order) order: the
/// caller-supplied canonical tie-break `tie` (0 for plain timers) wins
/// first, then a monotonically increasing sequence number breaks the
/// remaining ties FIFO — so a run is a pure function of the seed and the
/// configuration, *and* same-instant ordering can be made independent of
/// which scheduler an event was placed in (the sharded driver keys message
/// deliveries by their transport seq; DESIGN.md §14). Callbacks may schedule
/// further events, including at the current instant (they will run after
/// all callbacks already queued for that instant with an equal tie).
///
/// Hot-path layout (DESIGN.md §11): callbacks live in a generation-tagged
/// slab of slots recycled through a free list, and the calendar itself is
/// split into two key containers exploiting how discrete-event time behaves:
/// a *monotone run* — a sorted vector appended to whenever a new event lands
/// at or after the run's tail, consumed from the front — and an overflow
/// binary min-heap for out-of-order inserts. Simulation workloads schedule
/// overwhelmingly in nondecreasing time order (timers and deliveries are
/// offsets from a forward-moving now), so the common schedule/execute round
/// trip is O(1), falling back to the heap's O(log n) only for the inserts
/// that genuinely land before the tail. Dequeue takes the (at, seq)-minimum
/// of the two fronts, so execution order is identical to a single heap's.
/// Zero heap allocations whenever the closure fits the Callback's inline
/// buffer; cancellation leaves a tombstone key behind which is dropped
/// lazily on pop — and compacted eagerly when tombstones outnumber live
/// events, so cancel-heavy duty-cycle workloads cannot grow the calendar
/// unboundedly.
class Scheduler {
 public:
  /// Small-buffer-optimized callback: closures up to kCallbackInlineBytes
  /// (network delivery closures included — transport static_asserts it)
  /// schedule without touching the heap.
  static constexpr std::size_t kCallbackInlineBytes = 88;
  using Callback = InlineFn<void(), kCallbackInlineBytes>;

  /// Current simulation time; advances only inside run()/step().
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now()) with tie 0.
  EventHandle schedule_at(SimTime at, Callback fn);
  /// Schedules `fn` at `at` with an explicit canonical tie-break: events at
  /// one instant fire in ascending (tie, schedule order). Timers use tie 0
  /// (and therefore run before same-instant message deliveries, whose ties
  /// are strictly positive) — a deliberate canonical policy, not an
  /// accident of insertion order.
  EventHandle schedule_at(SimTime at, std::uint64_t tie, Callback fn);
  /// Schedules `fn` after `delay` (>= 0) from now(), tie 0.
  EventHandle schedule_after(Duration delay, Callback fn);
  /// Cancels a pending event. Cancelling an already-fired, stale, or invalid
  /// handle is a harmless no-op (the common case when a timer raced its
  /// cancel); generation tags make it safe even after the slot is reused.
  void cancel(EventHandle h);

  /// Time of the earliest pending event, or SimTime::max() if none.
  /// Non-const: drains cancelled-event tombstones from the queue front.
  SimTime next_time();

  /// Runs the single earliest pending event; returns false if none pending.
  bool step();
  /// Runs events with time <= `until` (inclusive); returns events executed.
  std::size_t run_until(SimTime until);
  /// Runs events with time strictly < `fence`; returns events executed.
  /// now() is left at the last executed event (never advanced to the
  /// fence), so the sharded window driver can re-enter with a later fence.
  std::size_t run_until_before(SimTime fence);
  /// Runs until the calendar drains or `max_events` executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  std::size_t pending() const { return live_; }
  std::uint64_t total_executed() const { return executed_; }

  /// Binds the calendar's observability counters (executed/scheduled/
  /// cancelled events). Simulation wires this to its run-local registry; an
  /// unbound scheduler pays only a null-pointer check per event.
  void bind_metrics(MetricsRegistry& registry);

 private:
  struct QueueKey {
    SimTime at;
    std::uint64_t tie;  ///< canonical same-instant rank (0 = plain timer)
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
    bool operator>(const QueueKey& o) const {
      if (at != o.at) return at > o.at;
      if (tie != o.tie) return tie > o.tie;
      return seq > o.seq;
    }
  };

  /// Slab geometry: callbacks live in fixed-size blocks so growth never
  /// relocates existing cells (a flat vector re-moves every live closure on
  /// each doubling — measurably dominant at large calendars). Generations
  /// live in a parallel flat vector: a tombstone check touches 4 bytes, not
  /// a whole callback cell. A slot's generation advances every time the cell
  /// is vacated (fire or cancel), invalidating every outstanding handle and
  /// queue key that still names the old tenant.
  static constexpr std::uint32_t kSlotBlockShift = 10;
  static constexpr std::uint32_t kSlotsPerBlock = 1u << kSlotBlockShift;
  static constexpr std::uint32_t kSlotBlockMask = kSlotsPerBlock - 1;

  Callback& fn_at(std::uint32_t slot) {
    return slab_[slot >> kSlotBlockShift][slot & kSlotBlockMask];
  }
  bool slot_matches(const QueueKey& key) const {
    return generations_[key.slot] == key.generation;
  }
  std::uint32_t acquire_slot(Callback&& fn);
  /// Vacates a slot (destroys the callback, bumps the generation, returns
  /// the cell to the free list).
  void release_slot(std::uint32_t slot);
  /// The (at, seq)-minimum pending key across run and heap, or nullptr when
  /// the calendar is empty. Tombstone keys are still visible here — callers
  /// drain them via pop_top().
  const QueueKey* top() const;
  /// Removes the key top() currently points at.
  void pop_top();
  void execute_top(QueueKey key);
  /// Rebuilds run and heap without tombstone keys. Called when tombstones
  /// outnumber live events (amortized O(1) per cancel).
  void compact();

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;        ///< scheduled and not yet fired or cancelled
  std::size_t tombstones_ = 0;  ///< dead keys still sitting in the calendar
  /// Monotone run: sorted ascending by (at, seq); keys are appended when
  /// their time is >= the tail's and consumed by advancing run_head_. The
  /// vector is recycled (clear + head reset) whenever it drains.
  std::vector<QueueKey> run_;
  std::size_t run_head_ = 0;
  /// Overflow min-heap over (at, seq) via std::push_heap/std::pop_heap with
  /// std::greater, for inserts that land before the run's tail; a plain
  /// vector so compact() can filter it in place.
  std::vector<QueueKey> heap_;
  std::vector<std::unique_ptr<Callback[]>> slab_;
  std::uint32_t slot_count_ = 0;  ///< slots ever created (all blocks)
  std::vector<std::uint32_t> generations_;  ///< parallel to slots; starts at 1
  std::vector<std::uint32_t> free_slots_;
  MetricsRegistry::Counter executed_metric_;
  MetricsRegistry::Counter scheduled_metric_;
  MetricsRegistry::Counter cancelled_metric_;
};

}  // namespace psn::sim
