#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/metrics.hpp"
#include "common/sim_time.hpp"

namespace psn::sim {

/// Opaque handle to a scheduled event, usable for cancellation.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class Scheduler;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Deterministic discrete-event calendar.
///
/// Events at equal timestamps fire in schedule order (FIFO tie-break by a
/// monotonically increasing sequence number), so a run is a pure function of
/// the seed and the configuration. Callbacks may schedule further events,
/// including at the current instant (they will run after all callbacks
/// already queued for that instant).
class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time; advances only inside run()/step().
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now()).
  EventHandle schedule_at(SimTime at, Callback fn);
  /// Schedules `fn` after `delay` (>= 0) from now().
  EventHandle schedule_after(Duration delay, Callback fn);
  /// Cancels a pending event. Cancelling an already-fired or invalid handle
  /// is a harmless no-op (the common case when a timer raced its cancel).
  void cancel(EventHandle h);

  /// Time of the earliest pending event, or SimTime::max() if none.
  /// Non-const: drains cancelled-event tombstones from the queue front.
  SimTime next_time();

  /// Runs the single earliest pending event; returns false if none pending.
  bool step();
  /// Runs events with time <= `until` (inclusive); returns events executed.
  std::size_t run_until(SimTime until);
  /// Runs until the calendar drains or `max_events` executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  std::size_t pending() const { return live_.size(); }
  std::uint64_t total_executed() const { return executed_; }

  /// Binds the calendar's observability counters (executed/scheduled/
  /// cancelled events). Simulation wires this to its run-local registry; an
  /// unbound scheduler pays only a null-pointer check per event.
  void bind_metrics(MetricsRegistry& registry);

 private:
  struct QueueKey {
    SimTime at;
    std::uint64_t seq;
    std::uint64_t id;
    bool operator>(const QueueKey& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  void execute_top();

  SimTime now_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<QueueKey, std::vector<QueueKey>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, Callback> live_;
  MetricsRegistry::Counter executed_metric_;
  MetricsRegistry::Counter scheduled_metric_;
  MetricsRegistry::Counter cancelled_metric_;
};

}  // namespace psn::sim
