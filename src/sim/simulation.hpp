#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "sim/scheduler.hpp"

namespace psn::sim {

/// Configuration shared by every simulation run.
struct SimConfig {
  std::uint64_t seed = 1;
  /// Hard end of simulated time; events beyond it are not executed.
  SimTime horizon = SimTime::from_seconds(60.0);
  /// Safety valve against runaway event loops.
  std::size_t max_events = 50'000'000;
};

/// Owns the scheduler and the master RNG for one run.
///
/// Components derive their own RNG substreams via `rng_for(name, index)`, so
/// the draw sequence of one component is independent of the others (see Rng).
class Simulation {
 public:
  explicit Simulation(SimConfig config);

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }
  SimTime now() const { return scheduler_.now(); }
  const SimConfig& config() const { return config_; }

  /// Independent RNG stream for a named component.
  Rng rng_for(const std::string& name, std::uint64_t index = 0) const;

  /// Runs to the configured horizon; returns events executed. If the
  /// `max_events` safety valve fired first, the run stops cleanly and
  /// truncated() reports it — a runaway self-rescheduling event can never
  /// spin the loop toward SIZE_MAX.
  std::size_t run();

  /// True iff the last run() hit `max_events` with work still pending
  /// before the horizon (i.e. results are truncated).
  bool truncated() const { return truncated_; }

 private:
  SimConfig config_;
  Rng master_;
  Scheduler scheduler_;
  bool truncated_ = false;
};

}  // namespace psn::sim
