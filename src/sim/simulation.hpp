#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace psn::sim {

/// Configuration shared by every simulation run.
struct SimConfig {
  std::uint64_t seed = 1;
  /// Hard end of simulated time; events beyond it are not executed.
  SimTime horizon = SimTime::from_seconds(60.0);
  /// Safety valve against runaway event loops.
  std::size_t max_events = 50'000'000;
  /// Ring-buffer capacity of the optional per-run event trace (sim/trace);
  /// 0 (default) disables tracing entirely — no record is ever built.
  std::size_t trace_capacity = 0;
};

/// Owns the scheduler and the master RNG for one run.
///
/// Components derive their own RNG substreams via `rng_for(name, index)`, so
/// the draw sequence of one component is independent of the others (see Rng).
///
/// Observability: every run owns a MetricsRegistry (components register
/// named counters/gauges/histograms at wiring time and update them via cheap
/// handles) and, when `SimConfig::trace_capacity > 0`, a TraceRecorder that
/// components append sense/send/receive/deliver/drop/detect records to.
/// Both are confined to the thread running the simulation.
class Simulation {
 public:
  explicit Simulation(SimConfig config);

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }
  SimTime now() const { return scheduler_.now(); }
  const SimConfig& config() const { return config_; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The per-run event trace, or nullptr when tracing is off. Hot paths
  /// guard on the pointer, so a disabled trace costs one branch.
  TraceRecorder* trace() { return trace_.get(); }
  const TraceRecorder* trace() const { return trace_.get(); }
  /// Enables tracing with the given ring capacity (idempotent; re-enabling
  /// with a different capacity restarts the buffer).
  void enable_trace(std::size_t capacity);

  /// Independent RNG stream for a named component.
  Rng rng_for(const std::string& name, std::uint64_t index = 0) const;

  /// Runs to the configured horizon; returns events executed. If the
  /// `max_events` safety valve fired first, the run stops cleanly and
  /// truncated() reports it — a runaway self-rescheduling event can never
  /// spin the loop toward SIZE_MAX.
  std::size_t run();

  /// True iff the last run() hit `max_events` with work still pending
  /// before the horizon (i.e. results are truncated).
  bool truncated() const { return truncated_; }

 private:
  SimConfig config_;
  Rng master_;
  MetricsRegistry metrics_;
  Scheduler scheduler_;
  std::unique_ptr<TraceRecorder> trace_;
  bool truncated_ = false;
};

}  // namespace psn::sim
