#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "sim/trace.hpp"

namespace psn::sim {

/// A process crash/restart interval: `pid` is down over [begin, end) — it
/// stops sensing, sends nothing, and every delivery addressed to it is
/// dropped. On restart (at `end`) the node resumes with whatever clock state
/// it had; the next strobe it receives re-syncs it, and its stale detector
/// entries age out via the validity horizon (DESIGN.md §15).
struct CrashWindow {
  ProcessId pid = kNoProcess;
  SimTime begin;
  SimTime end;
};

/// An overlay partition interval: the edge {a, b} is cut over [begin, end)
/// and healed at `end`. Cuts compose with the overlay's cached hop_distance
/// rows through epoch invalidation — every transition bumps the partition
/// epoch, and transports replay transitions onto their overlay copy lazily.
struct PartitionWindow {
  ProcessId a = kNoProcess;
  ProcessId b = kNoProcess;
  SimTime begin;
  SimTime end;
};

/// A clock-fault interval for physical mode: `pid`'s drifting clock gains an
/// extra `extra_drift_ppm` over [begin, end). The injected offset is a pure
/// function of (pid, t), so the checker compensates for declared faults
/// exactly instead of widening its drift envelope.
struct ClockFaultWindow {
  ProcessId pid = kNoProcess;
  SimTime begin;
  SimTime end;
  std::int64_t extra_drift_ppm = 0;
};

/// A config-derived fault plan: no RNG, no hidden state — the schedule is
/// the same pure data in every shard at every thread count, which is what
/// keeps faulty runs byte-identical across layouts.
struct FaultPlan {
  std::vector<CrashWindow> crashes;
  std::vector<PartitionWindow> partitions;
  std::vector<ClockFaultWindow> clock_faults;

  bool empty() const {
    return crashes.empty() && partitions.empty() && clock_faults.empty();
  }
};

/// Parses the CLI fault grammar: `;`-separated clauses, each one of
///   crash:<pid>@<begin_s>+<dur_s>
///   cut:<a>-<b>@<begin_s>+<dur_s>
///   drift:<pid>@<begin_s>+<dur_s>:<ppm>
/// Times are decimal seconds; ppm is a signed integer. Throws ConfigError
/// on malformed input. An empty spec yields an empty plan.
FaultPlan parse_fault_plan(const std::string& spec);

/// One edge cut or heal on the partition timeline, in time order.
struct PartitionTransition {
  SimTime at;
  ProcessId a = kNoProcess;
  ProcessId b = kNoProcess;
  bool cut = false;  ///< true = remove the edge, false = add it back
};

/// A validated, query-optimized compilation of a FaultPlan. All queries are
/// pure functions of (id, time), allocation-free, and shared by every shard:
/// fault decisions made at send time depend only on the schedule and the
/// message, never on shard layout.
class FaultSchedule {
 public:
  /// Validates and compiles. Rejects: crash of process 0 (the root/back-end
  /// is mains-powered by convention), empty or inverted windows,
  /// overlapping crash windows on one pid, overlapping cut windows on one
  /// edge, self-loop cuts, and zero drift clauses.
  explicit FaultSchedule(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// True iff `pid` is inside one of its crash windows at `t`.
  bool down(ProcessId pid, SimTime t) const;

  /// The deterministic extra clock offset `pid` has accumulated by `t` from
  /// its clock-fault windows: sum over windows of ppm * 1e-6 * overlap.
  Duration drift_offset(ProcessId pid, SimTime t) const;

  /// Edge cut/heal events sorted by (at, a, b, cut); `partition_epoch(t)` is
  /// the number of transitions with at <= t. A transport replays
  /// transitions[applied..epoch) onto its overlay before routing, so cached
  /// hop_distance rows invalidate exactly at window boundaries.
  const std::vector<PartitionTransition>& partition_transitions() const {
    return transitions_;
  }
  std::size_t partition_epoch(SimTime t) const;

  /// Appends one trace record per fault transition inside [0, horizon]:
  /// kCrash/kRestart for crash windows (pid = the node), kPartition/kHeal
  /// for cut windows (pid = a, peer = b). Restart/heal records past the
  /// horizon are omitted — the run ended with the fault still active.
  /// Records carry seq 0, so the canonical order places them ahead of every
  /// message record at their instant.
  void append_trace_records(std::vector<TraceRecord>& out,
                            SimTime horizon) const;

 private:
  FaultPlan plan_;
  /// plan_.crashes sorted by (pid, begin) for binary search in down().
  std::vector<CrashWindow> crashes_by_pid_;
  std::vector<PartitionTransition> transitions_;
};

}  // namespace psn::sim
