#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/sim_time.hpp"
#include "common/thread_pool.hpp"
#include "sim/simulation.hpp"

namespace psn::sim {

/// Lockstep Δ-window driver over K per-shard Simulations (DESIGN.md §14).
///
/// The paper's Δ-bounded delay model is a conservative-lookahead guarantee:
/// with every one-hop delay >= L, a message sent inside the window
/// [f - W, f) (W <= L) cannot arrive anywhere before f — so each shard may
/// drain its own calendar up to the fence f with no knowledge of its peers,
/// and only the fences need synchronizing. The loop per window:
///
///   1. every shard runs `Scheduler::run_until_before(fence)` (in parallel
///      on a ThreadPool; cross-shard sends land in outboxes, not calendars);
///   2. barrier; the caller-supplied exchange hook drains all outboxes into
///      the owner shards' calendars, serially and in a canonical order;
///   3. fence += W, until the horizon is passed and the system quiesces.
///
/// The driver is deliberately ignorant of the network layer: the exchange
/// hook (installed by the sharded system, which owns the transports and
/// outboxes) is the only channel between shards. With `pool_threads == 1`
/// shard turns run inline on the calling thread — same event order, zero
/// pool machinery — which is what the alloc-guard suite measures.
class ShardedSimulation {
 public:
  /// Drains every cross-shard outbox into its owner's calendar; returns the
  /// number of deliveries moved. Runs on the driver thread, between windows,
  /// with every shard parked at the barrier.
  using ExchangeFn = std::function<std::size_t()>;

  struct Config {
    /// Window width W; must be positive and <= the minimum one-hop delay of
    /// the transports' delay model (the caller asserts that — the driver
    /// cannot see the network layer).
    Duration window;
    SimTime horizon;
    /// Worker threads for the per-window shard fan-out. 1 = inline.
    std::size_t pool_threads = 1;
  };

  /// `shards` are borrowed; they must outlive the driver. Each must be
  /// confined to this driver (their schedulers are advanced from pool
  /// threads, one shard per task — never two tasks on one shard).
  ShardedSimulation(std::vector<Simulation*> shards, Config config);

  /// Runs the window loop until the horizon is passed, every outbox is
  /// empty, and no shard has pending work at or before the horizon.
  /// Returns total events executed across all shards.
  std::size_t run(const ExchangeFn& exchange);

  /// True iff run() stopped at the aggregate max_events safety valve (the
  /// smallest `SimConfig::max_events` among the shards) with work pending.
  bool truncated() const { return truncated_; }
  /// Windows executed by the last run() (fence advances, including the
  /// final quiescence checks).
  std::size_t windows() const { return windows_; }

 private:
  std::size_t drain_all(SimTime fence);
  bool quiescent(SimTime horizon);

  std::vector<Simulation*> shards_;
  Config config_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when pool_threads == 1
  bool truncated_ = false;
  std::size_t windows_ = 0;
};

}  // namespace psn::sim
