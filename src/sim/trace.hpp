#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace psn::sim {

/// Observable moments in a run's life that the trace records. The network
/// records come from the transport, kSense/kReceive from the process event
/// rules, kDetect from the detectors' transition streams.
enum class TraceKind : std::uint8_t {
  kSense,        ///< n event: a sensor observed a world change
  kSend,         ///< a message left its source (radio keyed up)
  kReceive,      ///< r event: a computation message was processed
  kDeliver,      ///< the transport handed a message to its destination
  kDrop,         ///< the loss model ate a transmission
  kUnreachable,  ///< no overlay path to the destination; never transmitted
  kDetect,       ///< a detector reported a predicate transition
  kCrash,        ///< fault plan: the process went down (sim/fault)
  kRestart,      ///< fault plan: the process came back up
  kPartition,    ///< fault plan: overlay edge pid–peer was cut
  kHeal,         ///< fault plan: overlay edge pid–peer was restored
};

const char* to_string(TraceKind k);

/// One trace record. `message_kind` is the numeric net::MessageKind for
/// message records and -1 otherwise (the sim layer cannot name net types —
/// exporters translate). `bytes` is the on-the-wire size charged by the
/// transport's active clock mode, so summing kSend bytes per message kind
/// reproduces MessageStats exactly.
struct TraceRecord {
  SimTime at;
  TraceKind kind = TraceKind::kSense;
  ProcessId pid = kNoProcess;   ///< acting process
  ProcessId peer = kNoProcess;  ///< other endpoint, if any
  int message_kind = -1;
  std::size_t bytes = 0;
  std::string note;  ///< attribute on kSense, detector name on kDetect
  /// net::Message::seq of the message involved (0 = none). Send/deliver/drop
  /// records of one message share it; kSense carries the seq of the strobe
  /// broadcast the sense triggered, kReceive the seq of the computation
  /// message processed. psn::check keys its happens-before edges on it.
  std::uint64_t seq = 0;
};

/// Sorts `records` into the canonical co-instant order shared by every
/// shard layout (DESIGN.md §14). Records are keyed by
/// (at, seq, group, peer, pid, kind) where the group ranks a message's
/// lifecycle within one instant: send/drop/unreachable, then the sense that
/// produced the message, then delivery, then receive processing. Each
/// message's lifecycle order (send before deliver before receive; sense
/// between the fan-out and its deliveries) is preserved, so a canonical
/// trace replays cleanly through psn::check. Both the serial (1-shard) path
/// and the K-shard merge apply this sort, which is what makes the emitted
/// JSONL byte-identical across layouts. kDetect records sort last at their
/// instant; callers that append them after a post-run detector pass need
/// not re-sort.
void canonical_trace_order(std::vector<TraceRecord>& records);

/// Bounded ring buffer of TraceRecords: when full, the oldest record is
/// evicted, so memory is capped no matter how long the run is. `evicted()`
/// says whether the retained window is complete — any analysis that needs
/// totals (e.g. reconciling byte counts against MessageStats) must check it.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity);

  void record(TraceRecord r);

  std::size_t capacity() const { return capacity_; }
  /// Records currently retained (≤ capacity).
  std::size_t size() const { return ring_.size(); }
  /// Records ever recorded, including evicted ones.
  std::size_t recorded() const { return recorded_; }
  std::size_t evicted() const { return recorded_ - ring_.size(); }

  /// Retained records, oldest first.
  std::vector<TraceRecord> records() const;

  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  ///< next slot to overwrite once the ring is full
  std::size_t recorded_ = 0;
};

}  // namespace psn::sim
