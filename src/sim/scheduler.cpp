#include "sim/scheduler.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/error.hpp"
#include "common/hot.hpp"

namespace psn::sim {

namespace {
// std::greater puts the smallest (at, seq) at the heap front — a min-heap.
constexpr std::greater<> kHeapOrder{};
// Compaction threshold: rebuild once tombstones exceed both this floor and
// the live-event count. The floor keeps tiny calendars from rebuilding on
// every cancel; the ratio bounds calendar memory at ~2x the live set.
constexpr std::size_t kCompactFloor = 64;
}  // namespace

PSN_HOT std::uint32_t Scheduler::acquire_slot(Callback&& fn) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    fn_at(slot) = std::move(fn);
    return slot;
  }
  PSN_CHECK(slot_count_ < UINT32_MAX, "scheduler slab full");
  const std::uint32_t slot = slot_count_++;
  if ((slot & kSlotBlockMask) == 0) {
    // Slab growth is warmup, never steady state: blocks are recycled through
    // the free list forever after. psn-lint: allow(psn-hot-path-alloc)
    slab_.push_back(std::make_unique<Callback[]>(kSlotsPerBlock));
  }
  generations_.push_back(1);
  fn_at(slot) = std::move(fn);
  return slot;
}

PSN_HOT void Scheduler::release_slot(std::uint32_t slot) {
  fn_at(slot).reset();
  generations_[slot]++;
  free_slots_.push_back(slot);
}

PSN_HOT EventHandle Scheduler::schedule_at(SimTime at, Callback fn) {
  return schedule_at(at, 0, std::move(fn));
}

PSN_HOT EventHandle Scheduler::schedule_at(SimTime at, std::uint64_t tie,
                                           Callback fn) {
  PSN_CHECK(at >= now_, "cannot schedule into the past");
  PSN_CHECK(static_cast<bool>(fn), "null callback");
  const std::uint32_t slot = acquire_slot(std::move(fn));
  const std::uint32_t generation = generations_[slot];
  const QueueKey key{at, tie, next_seq_++, slot, generation};
  if (run_head_ == run_.size()) {
    // Run drained: recycle the vector and start a fresh run.
    run_.clear();
    run_head_ = 0;
    run_.push_back(key);
  } else if (!(run_.back() > key)) {
    // Nondecreasing (at, tie) and strictly increasing seq: appending keeps
    // the run sorted. This is the overwhelmingly common case.
    run_.push_back(key);
  } else {
    heap_.push_back(key);
    std::push_heap(heap_.begin(), heap_.end(), kHeapOrder);
  }
  live_++;
  scheduled_metric_.inc();
  return EventHandle(slot, generation);
}

PSN_HOT EventHandle Scheduler::schedule_after(Duration delay, Callback fn) {
  PSN_CHECK(delay >= Duration::zero(), "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

PSN_HOT void Scheduler::cancel(EventHandle h) {
  if (!h.valid()) return;
  if (h.slot_ >= slot_count_ || generations_[h.slot_] != h.generation_) {
    return;  // already fired or cancelled; the slot may even be reoccupied
  }
  release_slot(h.slot_);
  live_--;
  tombstones_++;  // the key stays in the calendar until popped or compacted
  cancelled_metric_.inc();
  if (tombstones_ > kCompactFloor && tombstones_ > live_) compact();
}

void Scheduler::compact() {
  run_.erase(run_.begin(),
             run_.begin() + static_cast<std::ptrdiff_t>(run_head_));
  run_head_ = 0;
  // erase_if preserves relative order, so the run stays sorted.
  std::erase_if(run_, [this](const QueueKey& k) { return !slot_matches(k); });
  std::erase_if(heap_, [this](const QueueKey& k) { return !slot_matches(k); });
  std::make_heap(heap_.begin(), heap_.end(), kHeapOrder);
  tombstones_ = 0;
}

void Scheduler::bind_metrics(MetricsRegistry& registry) {
  executed_metric_ = registry.counter("sim.events_executed");
  scheduled_metric_ = registry.counter("sim.events_scheduled");
  cancelled_metric_ = registry.counter("sim.events_cancelled");
}

PSN_HOT const Scheduler::QueueKey* Scheduler::top() const {
  const QueueKey* r = run_head_ < run_.size() ? &run_[run_head_] : nullptr;
  const QueueKey* h = heap_.empty() ? nullptr : heap_.data();
  if (r == nullptr) return h;
  if (h == nullptr) return r;
  return *h > *r ? r : h;  // seqs are unique, so the order is strict
}

PSN_HOT void Scheduler::pop_top() {
  const QueueKey* r = run_head_ < run_.size() ? &run_[run_head_] : nullptr;
  if (r != nullptr && (heap_.empty() || heap_.front() > *r)) {
    run_head_++;
    if (run_head_ == run_.size()) {
      run_.clear();
      run_head_ = 0;
    } else if (run_head_ > kCompactFloor && run_head_ * 2 >= run_.size()) {
      // A calendar that never fully drains (replay cursors re-arm from
      // inside their own callbacks, so the sharded runner's never does)
      // would otherwise grow the run's dead prefix with every event ever
      // executed. Sliding the tail left once the prefix passes half the
      // vector is amortized O(1) per pop, keeps the buffer at ~2x the live
      // run, and never reallocates — the alloc-guard suite pins that.
      run_.erase(run_.begin(),
                 run_.begin() + static_cast<std::ptrdiff_t>(run_head_));
      run_head_ = 0;
    }
    return;
  }
  std::pop_heap(heap_.begin(), heap_.end(), kHeapOrder);
  heap_.pop_back();
}

PSN_HOT void Scheduler::execute_top(QueueKey key) {
  pop_top();
  // The callback is moved out and the slot vacated *before* invocation, so
  // the callback is free to schedule (possibly into this very slot) or
  // cancel anything, including its own now-stale handle.
  Callback fn = std::move(fn_at(key.slot));
  release_slot(key.slot);
  live_--;
  now_ = key.at;
  executed_++;
  executed_metric_.inc();
  fn();
}

PSN_HOT SimTime Scheduler::next_time() {
  for (const QueueKey* k = top(); k != nullptr; k = top()) {
    if (slot_matches(*k)) return k->at;
    pop_top();  // drain cancelled-event tombstones
    tombstones_--;
  }
  return SimTime::max();
}

PSN_HOT bool Scheduler::step() {
  for (const QueueKey* k = top(); k != nullptr; k = top()) {
    if (!slot_matches(*k)) {
      pop_top();  // drain tombstone
      tombstones_--;
      continue;
    }
    execute_top(*k);
    return true;
  }
  return false;
}

PSN_HOT std::size_t Scheduler::run_until(SimTime until) {
  std::size_t n = 0;
  for (const QueueKey* k = top(); k != nullptr && !(k->at > until); k = top()) {
    if (!slot_matches(*k)) {
      pop_top();
      tombstones_--;
      continue;
    }
    execute_top(*k);
    n++;
  }
  // Time advances to `until` even if the calendar went quiet earlier, so a
  // subsequent schedule_after() measures from the end of the window.
  if (now_ < until) now_ = until;
  return n;
}

PSN_HOT std::size_t Scheduler::run_until_before(SimTime fence) {
  std::size_t n = 0;
  for (const QueueKey* k = top(); k != nullptr && k->at < fence; k = top()) {
    if (!slot_matches(*k)) {
      pop_top();
      tombstones_--;
      continue;
    }
    execute_top(*k);
    n++;
  }
  return n;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) n++;
  return n;
}

}  // namespace psn::sim
