#include "sim/scheduler.hpp"

#include <utility>

#include "common/error.hpp"

namespace psn::sim {

EventHandle Scheduler::schedule_at(SimTime at, Callback fn) {
  PSN_CHECK(at >= now_, "cannot schedule into the past");
  PSN_CHECK(static_cast<bool>(fn), "null callback");
  const std::uint64_t id = next_id_++;
  queue_.push(QueueKey{at, next_seq_++, id});
  live_.emplace(id, std::move(fn));
  scheduled_metric_.inc();
  return EventHandle(id);
}

EventHandle Scheduler::schedule_after(Duration delay, Callback fn) {
  PSN_CHECK(delay >= Duration::zero(), "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::cancel(EventHandle h) {
  if (!h.valid()) return;
  if (live_.erase(h.id_) > 0) {  // queue entry becomes a tombstone
    cancelled_metric_.inc();
  }
}

void Scheduler::bind_metrics(MetricsRegistry& registry) {
  executed_metric_ = registry.counter("sim.events_executed");
  scheduled_metric_ = registry.counter("sim.events_scheduled");
  cancelled_metric_ = registry.counter("sim.events_cancelled");
}

void Scheduler::execute_top() {
  const QueueKey key = queue_.top();
  queue_.pop();
  const auto it = live_.find(key.id);
  if (it == live_.end()) return;  // cancelled
  Callback fn = std::move(it->second);
  live_.erase(it);
  now_ = key.at;
  executed_++;
  executed_metric_.inc();
  fn();
}

SimTime Scheduler::next_time() {
  while (!queue_.empty() && !live_.contains(queue_.top().id)) {
    queue_.pop();  // drain cancelled-event tombstones
  }
  return queue_.empty() ? SimTime::max() : queue_.top().at;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    const auto it = live_.find(queue_.top().id);
    if (it == live_.end()) {
      queue_.pop();  // drain tombstone
      continue;
    }
    execute_top();
    return true;
  }
  return false;
}

std::size_t Scheduler::run_until(SimTime until) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    const auto it = live_.find(queue_.top().id);
    if (it == live_.end()) {
      queue_.pop();
      continue;
    }
    execute_top();
    n++;
  }
  // Time advances to `until` even if the calendar went quiet earlier, so a
  // subsequent schedule_after() measures from the end of the window.
  if (now_ < until) now_ = until;
  return n;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) n++;
  return n;
}

}  // namespace psn::sim
