#include "sim/trace.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/error.hpp"

namespace psn::sim {

namespace {
/// Rank of a record within its (at, seq) bucket: the message lifecycle.
int co_instant_group(TraceKind k) {
  switch (k) {
    case TraceKind::kSend:
    case TraceKind::kDrop:
    case TraceKind::kUnreachable:
      return 0;
    case TraceKind::kSense:
      return 1;
    case TraceKind::kDeliver:
      return 2;
    case TraceKind::kReceive:
      return 3;
    case TraceKind::kDetect:
      return 4;
    case TraceKind::kCrash:
    case TraceKind::kRestart:
    case TraceKind::kPartition:
    case TraceKind::kHeal:
      // Fault-plan records carry seq 0, so this ranks them ahead of every
      // message record at their instant (and ahead of co-instant detects).
      return -1;
  }
  return 5;
}

auto canonical_key(const TraceRecord& r) {
  return std::make_tuple(r.at, r.seq, co_instant_group(r.kind), r.peer, r.pid,
                         static_cast<int>(r.kind));
}
}  // namespace

void canonical_trace_order(std::vector<TraceRecord>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return canonical_key(a) < canonical_key(b);
                   });
}

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kSense: return "sense";
    case TraceKind::kSend: return "send";
    case TraceKind::kReceive: return "receive";
    case TraceKind::kDeliver: return "deliver";
    case TraceKind::kDrop: return "drop";
    case TraceKind::kUnreachable: return "unreachable";
    case TraceKind::kDetect: return "detect";
    case TraceKind::kCrash: return "crash";
    case TraceKind::kRestart: return "restart";
    case TraceKind::kPartition: return "partition";
    case TraceKind::kHeal: return "heal";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  PSN_CHECK(capacity_ > 0, "trace capacity must be positive");
}

void TraceRecorder::record(TraceRecord r) {
  recorded_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(r));
    return;
  }
  ring_[head_] = std::move(r);
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceRecord> TraceRecorder::records() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

}  // namespace psn::sim
