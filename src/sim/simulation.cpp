#include "sim/simulation.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace psn::sim {

Simulation::Simulation(SimConfig config)
    : config_(config), master_(config.seed) {
  PSN_CHECK(config_.horizon > SimTime::zero(), "horizon must be positive");
}

Rng Simulation::rng_for(const std::string& name, std::uint64_t index) const {
  return master_.substream(name, index);
}

std::size_t Simulation::run() {
  std::size_t total = 0;
  while (total < config_.max_events &&
         scheduler_.next_time() <= config_.horizon) {
    scheduler_.step();
    total++;
  }
  if (total >= config_.max_events) {
    PSN_WARN << "simulation hit max_events=" << config_.max_events
             << " before horizon; results may be truncated";
  }
  return total;
}

}  // namespace psn::sim
