#include "sim/simulation.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace psn::sim {

Simulation::Simulation(SimConfig config)
    : config_(config), master_(config.seed) {
  PSN_CHECK(config_.horizon > SimTime::zero(), "horizon must be positive");
  scheduler_.bind_metrics(metrics_);
  if (config_.trace_capacity > 0) enable_trace(config_.trace_capacity);
}

void Simulation::enable_trace(std::size_t capacity) {
  PSN_CHECK(capacity > 0, "trace capacity must be positive");
  if (trace_ == nullptr || trace_->capacity() != capacity) {
    trace_ = std::make_unique<TraceRecorder>(capacity);
  }
}

Rng Simulation::rng_for(const std::string& name, std::uint64_t index) const {
  return master_.substream(name, index);
}

std::size_t Simulation::run() {
  truncated_ = false;
  std::size_t total = 0;
  while (scheduler_.next_time() <= config_.horizon) {
    if (total >= config_.max_events) {
      // The cap fired with events still pending inside the horizon: a
      // runaway (e.g. self-rescheduling) event loop. Stop and report
      // truncation rather than executing toward SIZE_MAX.
      truncated_ = true;
      break;
    }
    scheduler_.step();
    total++;
  }
  // Additive across merges: a merged snapshot reports total simulated time.
  metrics_.gauge("sim.simulated_s").set(config_.horizon.to_seconds());
  metrics_.gauge("sim.pending_at_end")
      .set(static_cast<double>(scheduler_.pending()));
  if (truncated_) {
    metrics_.counter("sim.truncated_runs").inc();
    PSN_WARN << "simulation hit max_events=" << config_.max_events
             << " before horizon; results are truncated";
  }
  return total;
}

}  // namespace psn::sim
