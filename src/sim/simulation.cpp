#include "sim/simulation.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace psn::sim {

Simulation::Simulation(SimConfig config)
    : config_(config), master_(config.seed) {
  PSN_CHECK(config_.horizon > SimTime::zero(), "horizon must be positive");
}

Rng Simulation::rng_for(const std::string& name, std::uint64_t index) const {
  return master_.substream(name, index);
}

std::size_t Simulation::run() {
  truncated_ = false;
  std::size_t total = 0;
  while (scheduler_.next_time() <= config_.horizon) {
    if (total >= config_.max_events) {
      // The cap fired with events still pending inside the horizon: a
      // runaway (e.g. self-rescheduling) event loop. Stop and report
      // truncation rather than executing toward SIZE_MAX.
      truncated_ = true;
      break;
    }
    scheduler_.step();
    total++;
  }
  if (truncated_) {
    PSN_WARN << "simulation hit max_events=" << config_.max_events
             << " before horizon; results are truncated";
  }
  return total;
}

}  // namespace psn::sim
