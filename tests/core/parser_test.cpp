#include "core/predicate_parser.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::core {
namespace {

GlobalState state_of(
    std::initializer_list<std::pair<VarRef, double>> entries) {
  GlobalState s;
  for (const auto& [ref, v] : entries) s.set(ref, v);
  return s;
}

TEST(ParserTest, NumbersAndArithmetic) {
  const GlobalState empty;
  EXPECT_DOUBLE_EQ(parse_expr("42")->evaluate(empty), 42.0);
  EXPECT_DOUBLE_EQ(parse_expr("2 + 3 * 4")->evaluate(empty), 14.0);
  EXPECT_DOUBLE_EQ(parse_expr("(2 + 3) * 4")->evaluate(empty), 20.0);
  EXPECT_DOUBLE_EQ(parse_expr("10 - 4 - 3")->evaluate(empty), 3.0);
  EXPECT_DOUBLE_EQ(parse_expr("8 / 2 / 2")->evaluate(empty), 2.0);
  EXPECT_DOUBLE_EQ(parse_expr("1.5e2")->evaluate(empty), 150.0);
  EXPECT_DOUBLE_EQ(parse_expr("-5 + 2")->evaluate(empty), -3.0);
}

TEST(ParserTest, Variables) {
  const auto s = state_of({{{2, "entered"}, 7.0}});
  EXPECT_DOUBLE_EQ(parse_expr("entered[2]")->evaluate(s), 7.0);
  EXPECT_DOUBLE_EQ(parse_expr("entered[2] * 2")->evaluate(s), 14.0);
}

TEST(ParserTest, Aggregates) {
  const auto s = state_of({{{1, "x"}, 2.0}, {{2, "x"}, 5.0}});
  EXPECT_DOUBLE_EQ(parse_expr("sum(x)")->evaluate(s), 7.0);
  EXPECT_DOUBLE_EQ(parse_expr("min(x)")->evaluate(s), 2.0);
  EXPECT_DOUBLE_EQ(parse_expr("max(x)")->evaluate(s), 5.0);
  EXPECT_DOUBLE_EQ(parse_expr("count(x)")->evaluate(s), 2.0);
}

TEST(ParserTest, ComparisonsAndLogic) {
  const auto s = state_of({{{1, "x"}, 5.0}, {{2, "y"}, 8.0}});
  EXPECT_TRUE(parse_expr("x[1] == 5 && y[2] > 7")->holds(s));
  EXPECT_TRUE(parse_expr("x[1] == 5 and y[2] > 7")->holds(s));
  EXPECT_FALSE(parse_expr("x[1] != 5 || y[2] <= 7")->holds(s));
  EXPECT_TRUE(parse_expr("x[1] >= 5 or false")->holds(s));
  EXPECT_TRUE(parse_expr("!(x[1] < 5)")->holds(s));
}

TEST(ParserTest, PrecedenceAndOverCmp) {
  const auto s = state_of({{{1, "x"}, 5.0}});
  // "x[1] > 4 && x[1] < 6" must parse as (x>4) && (x<6).
  EXPECT_TRUE(parse_expr("x[1] > 4 && x[1] < 6")->holds(s));
  // Or binds looser than and: "false && false || true" is true.
  EXPECT_TRUE(parse_expr("false && false || true")->holds(s));
}

TEST(ParserTest, PaperExamples) {
  // §5 exhibition hall.
  const auto hall = parse_expr("sum(entered) - sum(exited) > 200");
  auto s = state_of({{{1, "entered"}, 201.0}, {{1, "exited"}, 0.0}});
  EXPECT_TRUE(hall->holds(s));
  // §3.1 smart office.
  const auto office = parse_expr("temp[1] > 30 && occupied[2]");
  auto o = state_of({{{1, "temp"}, 31.0}, {{2, "occupied"}, 1.0}});
  EXPECT_TRUE(office->holds(o));
  // §3.1.2 relational φ = x_i + y_j > 7.
  const auto rel = parse_expr("x[1] + y[2] > 7");
  auto r = state_of({{{1, "x"}, 4.0}, {{2, "y"}, 4.0}});
  EXPECT_TRUE(rel->holds(r));
}

TEST(ParserTest, BooleansAndUnary) {
  const GlobalState empty;
  EXPECT_TRUE(parse_expr("true")->holds(empty));
  EXPECT_FALSE(parse_expr("false")->holds(empty));
  EXPECT_TRUE(parse_expr("!false")->holds(empty));
  EXPECT_DOUBLE_EQ(parse_expr("--5")->evaluate(empty), 5.0);
}

TEST(ParserTest, WhitespaceInsensitive) {
  const auto s = state_of({{{1, "x"}, 5.0}});
  EXPECT_TRUE(parse_expr("  x[ 1 ]>4  ")->holds(s));
  EXPECT_TRUE(parse_expr("x[1]>4&&x[1]<6")->holds(s));
}

TEST(ParserTest, ClassificationSurvivesParsing) {
  EXPECT_TRUE(
      parse_predicate("psi", "x[1] == 5 && y[2] > 7").is_conjunctive());
  EXPECT_FALSE(parse_predicate("phi", "x[1] + y[2] > 7").is_conjunctive());
  EXPECT_FALSE(
      parse_predicate("hall", "sum(entered) - sum(exited) > 200")
          .is_conjunctive());
}

TEST(ParserTest, RoundTripThroughToString) {
  // to_string output must re-parse to an equivalent expression.
  const char* inputs[] = {
      "sum(entered) - sum(exited) > 200",
      "temp[1] > 30 && occupied[2]",
      "x[1] + y[2] * 3 >= 7",
      "!(a[0] == 1) || b[3] < 2",
  };
  const auto s = state_of({{{0, "a"}, 1.0},
                           {{3, "b"}, 5.0},
                           {{1, "x"}, 2.0},
                           {{2, "y"}, 3.0},
                           {{1, "temp"}, 31.0},
                           {{2, "occupied"}, 1.0},
                           {{1, "entered"}, 300.0},
                           {{1, "exited"}, 10.0}});
  for (const char* text : inputs) {
    const auto once = parse_expr(text);
    const auto twice = parse_expr(once->to_string());
    EXPECT_DOUBLE_EQ(once->evaluate(s), twice->evaluate(s)) << text;
  }
}

TEST(ParserTest, ErrorsCarryPosition) {
  for (const char* bad : {"", "x[", "x[1", "x[a]", "sum(", "sum(x", "1 +",
                          "x", "((1)", "1 2", "@", "foo(x)"}) {
    EXPECT_THROW(parse_expr(bad), ConfigError) << "input: " << bad;
  }
}

TEST(ParserTest, WordOperatorsDontEatIdentifiers) {
  // "order" must not be parsed as "or" + "der".
  const auto s = state_of({{{1, "order"}, 1.0}});
  EXPECT_TRUE(parse_expr("order[1] == 1")->holds(s));
  const auto a = state_of({{{1, "android"}, 1.0}});
  EXPECT_TRUE(parse_expr("android[1]")->holds(a));
}

}  // namespace
}  // namespace psn::core
