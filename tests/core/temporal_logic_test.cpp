#include "core/temporal_logic.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::core::mtl {
namespace {

using namespace psn::time_literals;

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }
const SimTime kHorizon = t(1000);

BoolSignal sig(std::initializer_list<std::pair<std::int64_t, std::int64_t>>
                   true_intervals) {
  std::vector<Occurrence> xs;
  for (const auto& [b, e] : true_intervals) xs.push_back({t(b), t(e)});
  return BoolSignal::from_intervals(std::move(xs), kHorizon);
}

TEST(BoolSignalTest, ConstructionFromTransitions) {
  std::vector<Transition> trs = {{t(100), true, 0}, {t(300), false, 0},
                                 {t(700), true, 0}};
  BoolSignal s(false, trs, kHorizon);
  EXPECT_FALSE(s.value_at(t(0)));
  EXPECT_TRUE(s.value_at(t(100)));
  EXPECT_TRUE(s.value_at(t(299)));
  EXPECT_FALSE(s.value_at(t(300)));
  EXPECT_TRUE(s.value_at(t(999)));  // open at horizon
  ASSERT_EQ(s.true_intervals().size(), 2u);
  EXPECT_NEAR(s.fraction_true(), 0.5, 1e-9);
}

TEST(BoolSignalTest, InitialValueRespected) {
  BoolSignal s(true, {{t(400), false, 0}}, kHorizon);
  EXPECT_TRUE(s.value_at(t(0)));
  EXPECT_FALSE(s.value_at(t(400)));
  EXPECT_NEAR(s.fraction_true(), 0.4, 1e-9);
}

TEST(BoolSignalTest, FromOracleMatchesOracle) {
  OracleResult oracle;
  oracle.transitions = {{t(200), true, 0}, {t(500), false, 0}};
  const auto s = BoolSignal::from_oracle(oracle, kHorizon);
  EXPECT_FALSE(s.value_at(t(100)));
  EXPECT_TRUE(s.value_at(t(350)));
  EXPECT_FALSE(s.value_at(t(600)));
}

TEST(BoolSignalTest, ConstantsAndQueries) {
  const auto yes = BoolSignal::constant(true, kHorizon);
  const auto no = BoolSignal::constant(false, kHorizon);
  EXPECT_TRUE(yes.always());
  EXPECT_TRUE(yes.ever());
  EXPECT_FALSE(no.ever());
  EXPECT_FALSE(no.always());
  EXPECT_DOUBLE_EQ(yes.fraction_true(), 1.0);
}

TEST(BoolSignalTest, OverlappingIntervalsNormalized) {
  const auto s = sig({{100, 300}, {200, 400}, {400, 500}});
  ASSERT_EQ(s.true_intervals().size(), 1u);  // merged into [100, 500)
  EXPECT_EQ(s.true_intervals()[0].begin, t(100));
  EXPECT_EQ(s.true_intervals()[0].end, t(500));
}

TEST(BoolSignalTest, SampleOutsideDomainThrows) {
  const auto s = sig({});
  EXPECT_THROW((void)s.value_at(kHorizon), InvariantError);
}

TEST(BoolSignalTest, Negation) {
  const auto s = sig({{100, 300}});
  const auto ns = !s;
  EXPECT_TRUE(ns.value_at(t(0)));
  EXPECT_FALSE(ns.value_at(t(200)));
  EXPECT_TRUE(ns.value_at(t(500)));
  EXPECT_NEAR(ns.fraction_true(), 0.8, 1e-9);
  // Double negation is identity.
  const auto nns = !ns;
  EXPECT_EQ(nns.true_intervals().size(), 1u);
  EXPECT_EQ(nns.true_intervals()[0].begin, t(100));
}

TEST(BoolSignalTest, AndOr) {
  const auto a = sig({{100, 400}});
  const auto b = sig({{300, 600}});
  const auto both = a && b;
  ASSERT_EQ(both.true_intervals().size(), 1u);
  EXPECT_EQ(both.true_intervals()[0].begin, t(300));
  EXPECT_EQ(both.true_intervals()[0].end, t(400));
  const auto either = a || b;
  ASSERT_EQ(either.true_intervals().size(), 1u);
  EXPECT_EQ(either.true_intervals()[0].begin, t(100));
  EXPECT_EQ(either.true_intervals()[0].end, t(600));
}

TEST(BoolSignalTest, DeMorgan) {
  const auto a = sig({{50, 200}, {600, 800}});
  const auto b = sig({{150, 700}});
  const auto lhs = !(a && b);
  const auto rhs = (!a) || (!b);
  for (std::int64_t ms = 0; ms < 1000; ms += 7) {
    EXPECT_EQ(lhs.value_at(t(ms)), rhs.value_at(t(ms))) << ms;
  }
}

TEST(MtlTest, EventuallyShiftsBackward) {
  // φ true on [500, 600); F[0, 100] φ true on [400, 600).
  const auto s = sig({{500, 600}});
  const auto f = s.eventually(0_ms, 100_ms);
  ASSERT_EQ(f.true_intervals().size(), 1u);
  EXPECT_EQ(f.true_intervals()[0].begin, t(400));
  EXPECT_EQ(f.true_intervals()[0].end, t(600));
}

TEST(MtlTest, EventuallyWithLowerBound) {
  // F[100, 200] φ with φ on [500, 600): true iff [t+100, t+200] hits it:
  // t ∈ [300, 500).
  const auto s = sig({{500, 600}});
  const auto f = s.eventually(100_ms, 200_ms);
  ASSERT_EQ(f.true_intervals().size(), 1u);
  EXPECT_EQ(f.true_intervals()[0].begin, t(300));
  EXPECT_EQ(f.true_intervals()[0].end, t(500));
}

TEST(MtlTest, AlwaysWithin) {
  // G[0, 100] φ with φ on [200, 500): need [t, t+100] ⊆ φ: t ∈ [200, 400).
  const auto s = sig({{200, 500}});
  const auto g = s.always_within(0_ms, 100_ms);
  ASSERT_EQ(g.true_intervals().size(), 1u);
  EXPECT_EQ(g.true_intervals()[0].begin, t(200));
  // The closed [t, t+100] sample at t=400 includes 500 — outside φ.
  EXPECT_EQ(g.true_intervals()[0].end, t(400));
}

TEST(MtlTest, EventuallyAlwaysDuality) {
  const auto s = sig({{120, 380}, {700, 910}});
  const auto lhs = s.always_within(0_ms, 50_ms);
  const auto rhs = !((!s).eventually(0_ms, 50_ms));
  for (std::int64_t ms = 0; ms < 1000; ms += 3) {
    EXPECT_EQ(lhs.value_at(t(ms)), rhs.value_at(t(ms))) << ms;
  }
}

TEST(MtlTest, Until) {
  // φ on [100, 400), ψ on [300, 350): φ U ψ from 100 (φ carries into ψ)
  // through the end of ψ.
  const auto phi = sig({{100, 400}});
  const auto psi = sig({{300, 350}});
  const auto u = phi.until(psi);
  EXPECT_FALSE(u.value_at(t(50)));
  EXPECT_TRUE(u.value_at(t(100)));
  EXPECT_TRUE(u.value_at(t(250)));
  EXPECT_TRUE(u.value_at(t(340)));   // ψ holds now
  EXPECT_FALSE(u.value_at(t(360)));  // ψ over, no future ψ reachable via φ
}

TEST(MtlTest, UntilRequiresPhiCoverage) {
  // Gap in φ before ψ: times before the gap must not satisfy the until.
  const auto phi = sig({{100, 200}, {250, 400}});
  const auto psi = sig({{300, 320}});
  const auto u = phi.until(psi);
  EXPECT_FALSE(u.value_at(t(150)));  // φ breaks at 200 before ψ at 300
  EXPECT_TRUE(u.value_at(t(260)));
}

TEST(MtlTest, RespondsWithin) {
  // Trigger episodes at [100,150) and [500,550); responses at 180 and 590.
  const auto trigger = sig({{100, 150}, {500, 550}});
  const auto response = sig({{180, 190}, {590, 600}});
  EXPECT_TRUE(responds_within(trigger, response, 100_ms));
  // A 30 ms deadline misses the first response (at 180, trigger from 100).
  EXPECT_FALSE(responds_within(trigger, response, 30_ms));
}

TEST(MtlTest, RespondsWithinNoResponder) {
  const auto trigger = sig({{100, 150}});
  const auto response = sig({});
  EXPECT_FALSE(responds_within(trigger, response, 1_s));
  EXPECT_TRUE(responds_within(sig({}), response, 1_s));  // vacuous
}

TEST(MtlTest, NeverInvariant) {
  EXPECT_TRUE(never(sig({})));
  EXPECT_FALSE(never(sig({{1, 2}})));
}

TEST(MtlTest, ThermostatSpecificationShape) {
  // The paper-flavored rule: G(hot-onset → F[0, 100ms] reset). The response
  // property is per-instant, so the trigger is the *onset pulse* of each
  // hot episode (the became-true edge a detector emits).
  const auto hot_onset = sig({{100, 110}, {600, 610}});
  const auto reset_ok = sig({{180, 190}, {690, 700}});
  EXPECT_TRUE(responds_within(hot_onset, reset_ok, 100_ms));
  // A 50 ms deadline misses both resets.
  EXPECT_FALSE(responds_within(hot_onset, reset_ok, 50_ms));
  const auto reset_missing_second = sig({{180, 190}});
  EXPECT_FALSE(responds_within(hot_onset, reset_missing_second, 100_ms));
}

}  // namespace
}  // namespace psn::core::mtl
