// Integration tests of the assembled ⟨P, L, O, C⟩ system: world events flow
// to assigned sensors, strobes reach the root, clock invariants hold across
// a full simulated run.

#include "core/system.hpp"

#include <gtest/gtest.h>

#include "core/execution_view.hpp"
#include "core/predicate_parser.hpp"
#include "world/generators.hpp"

namespace psn::core {
namespace {

using namespace psn::time_literals;

SystemConfig base_config(std::size_t sensors, Duration delta,
                         std::uint64_t seed = 1) {
  SystemConfig cfg;
  cfg.num_sensors = sensors;
  cfg.sim.seed = seed;
  cfg.sim.horizon = SimTime::zero() + 20_s;
  cfg.delta = delta;
  return cfg;
}

/// Attaches periodic counter drivers, one world object per sensor.
void attach_counters(PervasiveSystem& system, Duration period,
                     std::vector<std::unique_ptr<world::AttributeDriver>>& keep) {
  for (ProcessId pid = 1; pid < system.num_processes(); ++pid) {
    const auto obj =
        system.world().create_object("obj_" + std::to_string(pid));
    system.world().object(obj).set_attribute("count", std::int64_t{0});
    system.assign(obj, "count", pid);
    keep.push_back(std::make_unique<world::AttributeDriver>(
        system.world(), obj, "count",
        std::make_unique<world::PeriodicArrivals>(period,
                                                  Duration::millis(50)),
        std::make_unique<world::CounterValue>(),
        system.sim().rng_for("driver", pid)));
    keep.back()->start();
  }
}

TEST(SystemIntegrationTest, EveryAssignedWorldEventIsSensedAndReported) {
  PervasiveSystem system(base_config(3, 50_ms));
  std::vector<std::unique_ptr<world::AttributeDriver>> drivers;
  attach_counters(system, 1_s, drivers);
  system.run();

  const std::size_t world_events = system.timeline().size();
  EXPECT_GT(world_events, 30u);

  // Each sensor recorded one sense event per its world events.
  std::size_t sense_events = 0;
  for (const auto* events : system.sensor_executions()) {
    for (const auto& e : *events) {
      if (e.type == EventType::kSense) sense_events++;
    }
  }
  EXPECT_EQ(sense_events, world_events);

  // The root received one report per sense event (lossless, bounded delay,
  // horizon leaves a small tail in flight at most).
  EXPECT_LE(system.log().updates.size(), sense_events);
  EXPECT_GE(system.log().updates.size(), sense_events - 3);
}

TEST(SystemIntegrationTest, RootLogIsInDeliveryOrder) {
  PervasiveSystem system(base_config(4, 200_ms));
  std::vector<std::unique_ptr<world::AttributeDriver>> drivers;
  attach_counters(system, 500_ms, drivers);
  system.run();
  const auto& updates = system.log().updates;
  ASSERT_GT(updates.size(), 10u);
  for (std::size_t i = 1; i < updates.size(); ++i) {
    EXPECT_GE(updates[i].delivered_at, updates[i - 1].delivered_at);
  }
}

TEST(SystemIntegrationTest, StrobeTrafficNeverTicksCausalClocks) {
  // The paper's §4.2 separation at system scale: with no computation
  // messages, each sensor's causal vector clock must count ONLY its own
  // events — all components for other processes stay 0 even though strobes
  // flew everywhere.
  PervasiveSystem system(base_config(3, 50_ms));
  std::vector<std::unique_ptr<world::AttributeDriver>> drivers;
  attach_counters(system, 1_s, drivers);
  system.run();

  for (const auto* events : system.sensor_executions()) {
    ASSERT_FALSE(events->empty());
    const auto& last = events->back();
    for (std::size_t j = 0; j < last.clocks.causal_vector.size(); ++j) {
      if (j == last.pid) {
        EXPECT_EQ(last.clocks.causal_vector[j], events->size());
      } else {
        EXPECT_EQ(last.clocks.causal_vector[j], 0u)
            << "strobe traffic leaked into the causal clock";
      }
    }
    // The strobe vector, by contrast, must have heard of the others.
    std::uint64_t heard = 0;
    for (std::size_t j = 0; j < last.clocks.strobe_vector.size(); ++j) {
      if (j != last.pid) heard += last.clocks.strobe_vector[j];
    }
    EXPECT_GT(heard, 0u);
  }
}

TEST(SystemIntegrationTest, ComputationMessagesDriveCausalClocks) {
  PervasiveSystem system(base_config(2, 10_ms));
  // P1 sends a computation message to P2 at t=1s.
  system.sim().scheduler().schedule_at(SimTime::zero() + 1_s, [&] {
    system.sensor(1).send_computation(2, "hello");
  });
  system.run();

  // P2 recorded a receive event whose causal vector includes P1's send.
  const auto& p2_events = *system.sensor_executions()[1];
  ASSERT_EQ(p2_events.size(), 1u);
  EXPECT_EQ(p2_events[0].type, EventType::kReceive);
  EXPECT_EQ(p2_events[0].clocks.causal_vector[1], 1u);  // P1's send seen
  EXPECT_EQ(p2_events[0].clocks.causal_vector[2], 1u);  // own tick
  EXPECT_GT(p2_events[0].clocks.lamport.value, 1u);
}

TEST(SystemIntegrationTest, SameSeedIsBitIdentical) {
  auto run_once = [](std::uint64_t seed) {
    PervasiveSystem system(base_config(3, 100_ms, seed));
    std::vector<std::unique_ptr<world::AttributeDriver>> drivers;
    attach_counters(system, 700_ms, drivers);
    system.run();
    std::vector<std::pair<std::int64_t, ProcessId>> trace;
    for (const auto& u : system.log().updates) {
      trace.emplace_back(u.delivered_at.count_nanos(), u.reporter);
    }
    return trace;
  };
  EXPECT_EQ(run_once(77), run_once(77));
  EXPECT_NE(run_once(77), run_once(78));
}

TEST(SystemIntegrationTest, DeltaBoundScalesWithTopologyDiameter) {
  SystemConfig cfg = base_config(4, 100_ms);
  cfg.topology = TopologyKind::kComplete;
  EXPECT_EQ(PervasiveSystem(cfg).delta_bound(), 100_ms);
  cfg.topology = TopologyKind::kLine;  // 5 processes in a line: diameter 4
  EXPECT_EQ(PervasiveSystem(cfg).delta_bound(), 400_ms);
  cfg.delay_kind = DelayKind::kExponential;
  EXPECT_EQ(PervasiveSystem(cfg).delta_bound(), Duration::max());
}

TEST(SystemIntegrationTest, SynchronousDeltaZeroDelivery) {
  SystemConfig cfg = base_config(2, Duration::zero());
  cfg.delay_kind = DelayKind::kSynchronous;
  PervasiveSystem system(cfg);
  std::vector<std::unique_ptr<world::AttributeDriver>> drivers;
  attach_counters(system, 1_s, drivers);
  system.run();
  for (const auto& u : system.log().updates) {
    EXPECT_EQ(u.delivered_at, u.report.true_sense_time);
  }
}

TEST(SystemIntegrationTest, LossReducesDeliveredReports) {
  SystemConfig cfg = base_config(2, 50_ms, 5);
  cfg.loss_probability = 0.5;
  PervasiveSystem lossy(cfg);
  std::vector<std::unique_ptr<world::AttributeDriver>> d1;
  attach_counters(lossy, 200_ms, d1);
  lossy.run();

  SystemConfig clean_cfg = base_config(2, 50_ms, 5);
  PervasiveSystem clean(clean_cfg);
  std::vector<std::unique_ptr<world::AttributeDriver>> d2;
  attach_counters(clean, 200_ms, d2);
  clean.run();

  EXPECT_LT(lossy.log().updates.size(), clean.log().updates.size() * 3 / 4);
  EXPECT_GT(lossy.message_stats().of(net::MessageKind::kStrobe).dropped, 0u);
}

TEST(SystemIntegrationTest, ExecutionViewsAlignWithClockComponents) {
  PervasiveSystem system(base_config(2, 50_ms));
  std::vector<std::unique_ptr<world::AttributeDriver>> drivers;
  attach_counters(system, 1_s, drivers);
  system.run();

  const auto strobe_view = ExecutionView::from_strobe_stamps(system);
  ASSERT_EQ(strobe_view.num_processes(), 2u);
  for (std::size_t p = 0; p < 2; ++p) {
    const auto& events = strobe_view.events(p);
    for (std::size_t k = 0; k < events.size(); ++k) {
      // Own component of the k-th sense event's strobe stamp is k+1.
      EXPECT_EQ(events[k].stamp[strobe_view.pid(p)], k + 1);
    }
  }
  // The final (complete) cut must be consistent.
  EXPECT_TRUE(strobe_view.consistent(strobe_view.final_cut()));

  const auto causal_view = ExecutionView::from_causal_stamps(system);
  EXPECT_TRUE(causal_view.consistent(causal_view.final_cut()));
}

TEST(SystemIntegrationTest, AssignValidation) {
  PervasiveSystem system(base_config(2, 50_ms));
  const auto obj = system.world().create_object("o");
  EXPECT_THROW(system.assign(obj, "x", 0), InvariantError);   // root senses nothing
  EXPECT_THROW(system.assign(obj, "x", 9), InvariantError);   // no such sensor
  system.assign(obj, "x", 1);
  EXPECT_THROW(system.assign(obj, "x", 2), InvariantError);   // double assign
  EXPECT_THROW(system.sensor(0), InvariantError);
  EXPECT_THROW(PervasiveSystem(base_config(0, 50_ms)), InvariantError);
}

}  // namespace
}  // namespace psn::core
