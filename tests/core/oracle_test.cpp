#include "core/oracle.hpp"

#include <gtest/gtest.h>

#include "core/predicate_parser.hpp"
#include "world/timeline.hpp"

namespace psn::core {
namespace {

using namespace psn::time_literals;

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

world::WorldEvent ev(std::int64_t ms, world::ObjectId obj,
                     const std::string& attr, world::AttributeValue v) {
  world::WorldEvent e;
  e.when = t(ms);
  e.object = obj;
  e.attribute = attr;
  e.value = v;
  return e;
}

struct OracleFixture {
  OracleFixture() {
    sensing.assign(0, "x", 1);
    sensing.assign(1, "y", 2);
  }
  SensingMap sensing;
  world::WorldTimeline timeline;
};

TEST(OracleTest, SingleOccurrence) {
  OracleFixture f;
  f.timeline.append(ev(100, 0, "x", std::int64_t{5}));   // x=5 → φ true
  f.timeline.append(ev(300, 0, "x", std::int64_t{1}));   // φ false
  const GroundTruthOracle oracle(parse_predicate("p", "x[1] > 3"), f.sensing);
  const OracleResult r = oracle.evaluate(f.timeline, t(1000));

  ASSERT_EQ(r.transitions.size(), 2u);
  EXPECT_EQ(r.transitions[0].when, t(100));
  EXPECT_TRUE(r.transitions[0].to_true);
  EXPECT_EQ(r.transitions[1].when, t(300));
  EXPECT_FALSE(r.transitions[1].to_true);

  ASSERT_EQ(r.occurrences.size(), 1u);
  EXPECT_EQ(r.occurrences[0].begin, t(100));
  EXPECT_EQ(r.occurrences[0].end, t(300));
  EXPECT_EQ(r.occurrences[0].duration(), 200_ms);
  EXPECT_NEAR(r.fraction_true, 0.2, 1e-9);
  EXPECT_FALSE(r.true_at_horizon);
}

TEST(OracleTest, EveryOccurrenceCounted) {
  // The paper's requirement (§3.3): detect EACH occurrence, not just the
  // first.
  OracleFixture f;
  for (int k = 0; k < 5; ++k) {
    f.timeline.append(ev(100 + 200 * k, 0, "x", std::int64_t{10}));
    f.timeline.append(ev(200 + 200 * k, 0, "x", std::int64_t{0}));
  }
  const GroundTruthOracle oracle(parse_predicate("p", "x[1] > 3"), f.sensing);
  const OracleResult r = oracle.evaluate(f.timeline, t(2000));
  EXPECT_EQ(r.occurrences.size(), 5u);
  EXPECT_EQ(r.transitions.size(), 10u);
}

TEST(OracleTest, OpenAtHorizon) {
  OracleFixture f;
  f.timeline.append(ev(400, 0, "x", std::int64_t{9}));
  const GroundTruthOracle oracle(parse_predicate("p", "x[1] > 3"), f.sensing);
  const OracleResult r = oracle.evaluate(f.timeline, t(1000));
  ASSERT_EQ(r.occurrences.size(), 1u);
  EXPECT_EQ(r.occurrences[0].end, t(1000));
  EXPECT_TRUE(r.true_at_horizon);
  EXPECT_NEAR(r.fraction_true, 0.6, 1e-9);
}

TEST(OracleTest, CrossVariablePredicate) {
  OracleFixture f;
  f.timeline.append(ev(100, 0, "x", std::int64_t{4}));
  f.timeline.append(ev(200, 1, "y", std::int64_t{4}));  // x+y=8 > 7 → true
  f.timeline.append(ev(300, 0, "x", std::int64_t{3}));  // 7 → false
  const GroundTruthOracle oracle(parse_predicate("p", "x[1] + y[2] > 7"),
                                 f.sensing);
  const OracleResult r = oracle.evaluate(f.timeline, t(500));
  ASSERT_EQ(r.occurrences.size(), 1u);
  EXPECT_EQ(r.occurrences[0].begin, t(200));
  EXPECT_EQ(r.occurrences[0].end, t(300));
}

TEST(OracleTest, UnassignedAttributesIgnored) {
  OracleFixture f;
  f.timeline.append(ev(100, 0, "unmonitored", std::int64_t{99}));
  f.timeline.append(ev(200, 0, "x", std::int64_t{5}));
  const GroundTruthOracle oracle(parse_predicate("p", "x[1] > 3"), f.sensing);
  const OracleResult r = oracle.evaluate(f.timeline, t(500));
  ASSERT_EQ(r.occurrences.size(), 1u);
  EXPECT_EQ(r.occurrences[0].begin, t(200));
}

TEST(OracleTest, EventsBeyondHorizonIgnored) {
  OracleFixture f;
  f.timeline.append(ev(100, 0, "x", std::int64_t{5}));
  f.timeline.append(ev(900, 0, "x", std::int64_t{0}));
  const GroundTruthOracle oracle(parse_predicate("p", "x[1] > 3"), f.sensing);
  const OracleResult r = oracle.evaluate(f.timeline, t(500));
  ASSERT_EQ(r.occurrences.size(), 1u);
  EXPECT_EQ(r.occurrences[0].end, t(500));  // clipped at horizon
}

TEST(OracleTest, NoChangeNoTransitions) {
  OracleFixture f;
  f.timeline.append(ev(100, 0, "x", std::int64_t{1}));
  f.timeline.append(ev(200, 0, "x", std::int64_t{2}));
  const GroundTruthOracle oracle(parse_predicate("p", "x[1] > 3"), f.sensing);
  const OracleResult r = oracle.evaluate(f.timeline, t(500));
  EXPECT_TRUE(r.transitions.empty());
  EXPECT_TRUE(r.occurrences.empty());
  EXPECT_DOUBLE_EQ(r.fraction_true, 0.0);
}

TEST(OracleTest, TrueOnEmptyStateRecordsInitialTransition) {
  OracleFixture f;
  // φ is true with no variables reported at all (x=0 ⇒ x < 3).
  const GroundTruthOracle oracle(parse_predicate("p", "x[1] < 3"), f.sensing);
  f.timeline.append(ev(100, 0, "x", std::int64_t{10}));
  const OracleResult r = oracle.evaluate(f.timeline, t(200));
  ASSERT_GE(r.transitions.size(), 2u);
  EXPECT_EQ(r.transitions[0].when, SimTime::zero());
  EXPECT_TRUE(r.transitions[0].to_true);
  ASSERT_EQ(r.occurrences.size(), 1u);
  EXPECT_EQ(r.occurrences[0].begin, SimTime::zero());
  EXPECT_EQ(r.occurrences[0].end, t(100));
}

}  // namespace
}  // namespace psn::core
