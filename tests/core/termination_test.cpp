// Dijkstra–Safra termination detection: unit behavior plus an end-to-end
// property over the simulated transport — termination is announced exactly
// when the diffusing computation has quiesced (no actives, nothing in
// flight), never before (safety) and always eventually (liveness).

#include "core/termination.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/transport.hpp"
#include "sim/simulation.hpp"

namespace psn::core {
namespace {

using namespace psn::time_literals;
using Token = SafraParticipant::Token;

TEST(SafraUnitTest, SingleProcessTerminatesWhenPassive) {
  bool announced = false;
  SafraParticipant p(0, 1, [](ProcessId, const Token&) {},
                     [&] { announced = true; });
  p.set_active(true);
  p.initiate_probe();
  EXPECT_FALSE(announced);  // still active
  p.set_active(false);
  p.initiate_probe();
  EXPECT_TRUE(announced);
  EXPECT_TRUE(p.terminated());
}

TEST(SafraUnitTest, TokenHeldWhileActive) {
  std::vector<std::pair<ProcessId, Token>> forwards;
  SafraParticipant p(1, 3, [&](ProcessId to, const Token& t) {
    forwards.emplace_back(to, t);
  });
  p.set_active(true);
  p.on_token(Token{});
  EXPECT_TRUE(forwards.empty());  // held until passive
  p.set_active(false);
  ASSERT_EQ(forwards.size(), 1u);
  EXPECT_EQ(forwards[0].first, 0u);  // ring goes toward the initiator
}

TEST(SafraUnitTest, ReceiveBlackensAndBalances) {
  std::vector<Token> seen;
  SafraParticipant p(2, 3, [&](ProcessId, const Token& t) {
    seen.push_back(t);
  });
  p.on_app_receive();  // balance −1, blackened
  p.on_token(Token{});
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_TRUE(seen[0].black);
  EXPECT_EQ(seen[0].count, -1);
  // The process whitened itself after forwarding.
  p.on_token(Token{});
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_FALSE(seen[1].black);
}

TEST(SafraUnitTest, SendsIncreaseBalance) {
  std::vector<Token> seen;
  SafraParticipant p(1, 2, [&](ProcessId, const Token& t) {
    seen.push_back(t);
  });
  p.on_app_send();
  p.on_app_send();
  p.on_token(Token{});
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].count, 2);
  EXPECT_FALSE(seen[0].black);
}

TEST(SafraUnitTest, InitiatorRejectsBlackToken) {
  std::vector<Token> forwards;
  bool announced = false;
  SafraParticipant init(0, 2, [&](ProcessId, const Token& t) {
    forwards.push_back(t);
  }, [&] { announced = true; });
  Token black;
  black.black = true;
  init.on_token(black);
  EXPECT_FALSE(announced);
  // A new (white) round was started instead.
  ASSERT_EQ(forwards.size(), 1u);
  EXPECT_FALSE(forwards[0].black);
  EXPECT_EQ(forwards[0].count, 0);
}

TEST(SafraUnitTest, OnlyInitiatorMayProbe) {
  SafraParticipant p(1, 2, [](ProcessId, const Token&) {});
  EXPECT_THROW(p.initiate_probe(), InvariantError);
}

// ---- end-to-end diffusing computation over the transport ----

/// Workers forward "work units" randomly; each unit takes simulated time to
/// process; processing may spawn more units with decaying probability, so
/// the computation provably quiesces.
class DiffusingComputation {
 public:
  DiffusingComputation(std::size_t n, std::uint64_t seed)
      : sim_([] {
          sim::SimConfig cfg;
          cfg.horizon = SimTime::zero() + 600_s;
          return cfg;
        }()),
        transport_(sim_, net::Overlay::complete(n),
                   std::make_unique<net::UniformBoundedDelay>(5_ms, 50_ms),
                   std::make_unique<net::NoLoss>(), Rng(seed)),
        rng_(seed + 7),
        n_(n) {
    pending_.assign(n, 0);
    for (ProcessId p = 0; p < n; ++p) {
      participants_.push_back(std::make_unique<SafraParticipant>(
          p, n, [this, p](ProcessId to, const Token& t) { send_token(p, to, t); },
          p == 0 ? SafraParticipant::AnnounceFn([this] {
            announced_at_ = sim_.now();
            live_at_announce_ = total_pending() + in_flight_;
          })
                 : SafraParticipant::AnnounceFn{}));
      transport_.register_handler(
          p, [this, p](const net::Message& msg) { deliver(p, msg); });
    }
  }

  void run(int initial_units) {
    for (int k = 0; k < initial_units; ++k) {
      enqueue_work(0, /*depth=*/0);
    }
    // Kick the probe after the initial burst is underway.
    sim_.scheduler().schedule_at(SimTime::zero() + 100_ms, [this] {
      participants_[0]->initiate_probe();
    });
    sim_.run();
  }

  bool announced() const { return announced_at_.has_value(); }
  std::int64_t live_at_announce() const { return live_at_announce_; }
  std::size_t units_processed() const { return processed_; }

 private:
  std::int64_t total_pending() const {
    std::int64_t total = 0;
    for (const auto p : pending_) total += p;
    return total;
  }

  void enqueue_work(ProcessId at, int depth) {
    pending_[at]++;
    participants_[at]->set_active(true);
    // Process the unit after some simulated work time.
    sim_.scheduler().schedule_after(
        Duration::millis(rng_.uniform_int(5, 40)),
        [this, at, depth] { process(at, depth); });
  }

  void process(ProcessId at, int depth) {
    processed_++;
    // Spawn 0–2 further units at random peers with decaying probability.
    const double spawn_p = depth > 8 ? 0.0 : 0.55 / (1.0 + 0.25 * depth);
    for (int s = 0; s < 2; ++s) {
      if (!rng_.bernoulli(spawn_p)) continue;
      auto to = static_cast<ProcessId>(
          rng_.uniform_int(0, static_cast<std::int64_t>(n_) - 1));
      if (to == at) to = static_cast<ProcessId>((to + 1) % n_);
      participants_[at]->on_app_send();
      in_flight_++;
      net::Message msg;
      msg.src = at;
      msg.dst = to;
      msg.kind = net::MessageKind::kComputation;
      net::ComputationPayload payload;
      payload.stamps.causal_vector = clocks::VectorStamp(n_);
      payload.tag = "work:" + std::to_string(depth + 1);
      msg.payload = payload;
      transport_.unicast(std::move(msg));
    }
    pending_[at]--;
    if (pending_[at] == 0) participants_[at]->set_active(false);
  }

  void send_token(ProcessId from, ProcessId to, const Token& t) {
    net::Message msg;
    msg.src = from;
    msg.dst = to;
    msg.kind = net::MessageKind::kComputation;
    net::ComputationPayload payload;
    payload.stamps.causal_vector = clocks::VectorStamp(n_);
    payload.tag = "token:" + std::to_string(t.count) + ":" +
                  (t.black ? "b" : "w");
    msg.payload = payload;
    transport_.unicast(std::move(msg));
  }

  void deliver(ProcessId self, const net::Message& msg) {
    const std::string& tag = msg.computation().tag;
    if (tag.starts_with("token:")) {
      const auto second = tag.find(':', 6);
      Token t;
      t.count = std::stoll(tag.substr(6, second - 6));
      t.black = tag[second + 1] == 'b';
      participants_[self]->on_token(t);
      return;
    }
    in_flight_--;
    participants_[self]->on_app_receive();
    const int depth = std::stoi(tag.substr(tag.find(':') + 1));
    enqueue_work(self, depth);
  }

  sim::Simulation sim_;
  net::Transport transport_;
  Rng rng_;
  std::size_t n_;
  std::vector<std::int64_t> pending_;
  std::vector<std::unique_ptr<SafraParticipant>> participants_;
  std::size_t processed_ = 0;
  std::int64_t in_flight_ = 0;
  std::optional<SimTime> announced_at_;
  std::int64_t live_at_announce_ = -1;
};

class SafraEndToEndTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafraEndToEndTest, AnnouncesExactlyAtQuiescence) {
  DiffusingComputation comp(4, GetParam());
  comp.run(/*initial_units=*/6);
  ASSERT_TRUE(comp.announced()) << "liveness: termination never detected";
  // Safety: at announcement, no pending work and nothing in flight.
  EXPECT_EQ(comp.live_at_announce(), 0);
  EXPECT_GE(comp.units_processed(), 6u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafraEndToEndTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace psn::core
