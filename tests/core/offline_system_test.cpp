// Integration of the offline analyses — Cooper–Marzullo Possibly/Definitely
// and Garg–Waldecker — over *live* system executions (the unit tests use
// hand-built views; here the views come from real strobe-stamped runs).

#include <gtest/gtest.h>

#include "core/conjunctive.hpp"
#include "core/lattice.hpp"
#include "core/oracle.hpp"
#include "core/predicate_parser.hpp"
#include "core/system.hpp"

namespace psn::core {
namespace {

using namespace psn::time_literals;

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

struct TwoSensorRun {
  explicit TwoSensorRun(Duration delta, std::uint64_t seed = 1) {
    SystemConfig sys;
    sys.num_sensors = 2;
    sys.sim.seed = seed;
    sys.sim.horizon = SimTime::zero() + 30_s;
    sys.delta = delta;
    system = std::make_unique<PervasiveSystem>(sys);
    o1 = system->world().create_object("o1");
    o2 = system->world().create_object("o2");
    system->world().object(o1).set_attribute("x", std::int64_t{0});
    system->world().object(o2).set_attribute("y", std::int64_t{0});
    system->assign(o1, "x", 1);
    system->assign(o2, "y", 2);
  }
  void emit_at(std::int64_t ms, world::ObjectId obj, const std::string& attr,
               std::int64_t v) {
    system->sim().scheduler().schedule_at(t(ms), [this, obj, attr, v] {
      system->world().emit(obj, attr, v);
    });
  }
  std::unique_ptr<PervasiveSystem> system;
  world::ObjectId o1 = world::kNoObject, o2 = world::kNoObject;
};

TEST(OfflineSystemTest, DefinitelyHoldsWhenIntervalsWellSeparated) {
  // x>0 over [1 s, 10 s], y>0 over [3 s, 8 s] with Δ = 50 ms: every
  // observation passes through a state with both positive.
  TwoSensorRun run(50_ms);
  run.emit_at(1000, run.o1, "x", 1);
  run.emit_at(3000, run.o2, "y", 1);
  run.emit_at(8000, run.o2, "y", 0);
  run.emit_at(10000, run.o1, "x", 0);
  run.system->run();

  const auto view = ExecutionView::from_strobe_stamps(*run.system);
  const auto phi = parse_predicate("p", "x[1] > 0 && y[2] > 0");
  EXPECT_TRUE(lattice::possibly(view, phi));
  EXPECT_TRUE(lattice::definitely(view, phi));

  // Garg–Waldecker agrees (the predicate is conjunctive).
  const auto matches = WeakConjunctiveDetector().run(view, phi);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].window_begin, t(3000));
}

TEST(OfflineSystemTest, RacyOverlapIsPossiblyButNotDefinitely) {
  // x's pulse and y's pulse overlap in true time but the four events all
  // fall within Δ: the strobe order cannot rule out interleavings that miss
  // the overlap, so Possibly holds but Definitely must not.
  TwoSensorRun run(500_ms);
  run.emit_at(1000, run.o1, "x", 1);
  run.emit_at(1010, run.o2, "y", 1);
  run.emit_at(1020, run.o1, "x", 0);
  run.emit_at(1030, run.o2, "y", 0);
  run.system->run();

  const auto view = ExecutionView::from_strobe_stamps(*run.system);
  const auto phi = parse_predicate("p", "x[1] > 0 && y[2] > 0");
  EXPECT_TRUE(lattice::possibly(view, phi));
  EXPECT_FALSE(lattice::definitely(view, phi));
}

TEST(OfflineSystemTest, SequentialPulsesNotEvenPossible) {
  // y's pulse starts well after x's ended (≫ Δ): no consistent cut has
  // both positive.
  TwoSensorRun run(50_ms);
  run.emit_at(1000, run.o1, "x", 1);
  run.emit_at(2000, run.o1, "x", 0);
  run.emit_at(5000, run.o2, "y", 1);
  run.emit_at(6000, run.o2, "y", 0);
  run.system->run();

  const auto view = ExecutionView::from_strobe_stamps(*run.system);
  const auto phi = parse_predicate("p", "x[1] > 0 && y[2] > 0");
  EXPECT_FALSE(lattice::possibly(view, phi));
  EXPECT_FALSE(lattice::definitely(view, phi));
  EXPECT_TRUE(WeakConjunctiveDetector().run(view, phi).empty());
}

TEST(OfflineSystemTest, PossiblyAgreesWithOracleWhenNoRaces) {
  // Poisson-free deterministic pulses far apart: Possibly ⇔ the oracle saw
  // a true overlap.
  for (const bool overlap : {true, false}) {
    TwoSensorRun run(50_ms, overlap ? 2u : 3u);
    run.emit_at(1000, run.o1, "x", 1);
    run.emit_at(overlap ? 5000 : 2000, run.o1, "x", 0);
    run.emit_at(overlap ? 3000 : 5000, run.o2, "y", 1);
    run.emit_at(overlap ? 7000 : 6000, run.o2, "y", 0);
    run.system->run();
    const auto view = ExecutionView::from_strobe_stamps(*run.system);
    const auto phi = parse_predicate("p", "x[1] > 0 && y[2] > 0");
    const GroundTruthOracle oracle(phi, run.system->sensing());
    const auto truth =
        oracle.evaluate(run.system->timeline(), SimTime::zero() + 30_s);
    EXPECT_EQ(lattice::possibly(view, phi), !truth.occurrences.empty());
  }
}

TEST(OfflineSystemTest, CausalViewConsistentWithComputationMessages) {
  // Computation messages create real causal edges; the causal-view lattice
  // must shrink accordingly while the strobe view is unaffected by them.
  TwoSensorRun run(10_ms);
  run.emit_at(1000, run.o1, "x", 1);
  run.system->sim().scheduler().schedule_at(t(2000), [&run] {
    run.system->sensor(1).send_computation(2, "hello");
  });
  run.emit_at(3000, run.o2, "y", 1);
  run.system->run();

  const auto causal = ExecutionView::from_causal_stamps(*run.system);
  // P1: sense + send = 2 events; P2: receive + sense = 2 events.
  EXPECT_EQ(causal.events(0).size(), 2u);
  EXPECT_EQ(causal.events(1).size(), 2u);
  // The cut {P1: 0 events, P2: both} includes the receive without its send —
  // inconsistent.
  EXPECT_FALSE(causal.consistent({0, 2}));
  EXPECT_TRUE(causal.consistent({2, 2}));

  const auto stats = lattice::count_consistent_cuts(causal);
  EXPECT_LT(stats.consistent_cuts, 9u);  // < unconstrained 3x3
}

}  // namespace
}  // namespace psn::core
