#include "core/lattice.hpp"

#include <gtest/gtest.h>

#include "core/predicate_parser.hpp"

namespace psn::core {
namespace {

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

/// Builds an ExecutionView by hand: per process, a list of (stamp, var=value)
/// events.
struct ViewBuilder {
  explicit ViewBuilder(std::vector<ProcessId> pids)
      : pids_(std::move(pids)), events_(pids_.size()) {}

  ViewBuilder& event(std::size_t process, std::vector<std::uint64_t> stamp,
                     const std::string& var, double value,
                     std::int64_t ms = 0) {
    ExecutionView::Event e;
    e.stamp = clocks::VectorStamp(std::move(stamp));
    e.has_var = true;
    e.var = VarRef{pids_[process], var};
    e.value = value;
    e.when = t(ms);
    events_[process].push_back(std::move(e));
    return *this;
  }

  ExecutionView build() { return ExecutionView(pids_, events_); }

  std::vector<ProcessId> pids_;
  std::vector<std::vector<ExecutionView::Event>> events_;
};

// Stamps below use dimension 3: index 0 is the root (never ticks), indices
// 1, 2 are the two sensors — matching how PervasiveSystem numbers processes.

TEST(LatticeCountTest, IndependentProcessesGiveFullProduct) {
  // No process ever hears of the other: all (a+1)(b+1) cuts are consistent.
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0);
  b.event(0, {0, 2, 0}, "x", 2.0);
  b.event(1, {0, 0, 1}, "y", 1.0);
  b.event(1, {0, 0, 2}, "y", 2.0);
  const auto view = b.build();
  const auto stats = lattice::count_consistent_cuts(view);
  EXPECT_EQ(stats.consistent_cuts, 9u);
  EXPECT_DOUBLE_EQ(lattice::unconstrained_cuts(view), 9.0);
  EXPECT_FALSE(stats.linear);
  EXPECT_FALSE(stats.truncated);
}

TEST(LatticeCountTest, FullKnowledgeCollapsesToChain) {
  // Each event knows all prior events everywhere (Δ = 0 with strobes at every
  // event): the lattice is a chain of total_events + 1 cuts — the paper's
  // §4.2.4 linear collapse.
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0);   // e1 at P1
  b.event(1, {0, 1, 1}, "y", 1.0);   // e2 at P2 knows e1
  b.event(0, {0, 2, 1}, "x", 2.0);   // e3 at P1 knows e2
  b.event(1, {0, 2, 2}, "y", 2.0);   // e4 at P2 knows e3
  const auto stats = lattice::count_consistent_cuts(b.build());
  EXPECT_EQ(stats.consistent_cuts, 5u);
  EXPECT_TRUE(stats.linear);
}

TEST(LatticeCountTest, PartialKnowledgePrunes) {
  // P2's event knows P1's first event only: cut (0,1) is inconsistent.
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0);
  b.event(0, {0, 2, 0}, "x", 2.0);
  b.event(1, {0, 1, 1}, "y", 1.0);  // knows P1's first event
  const auto stats = lattice::count_consistent_cuts(b.build());
  // Unconstrained: 3 * 2 = 6. Cut {P1:0, P2:1} is inconsistent → 5.
  EXPECT_EQ(stats.consistent_cuts, 5u);
}

TEST(LatticeCountTest, EmptyExecution) {
  ViewBuilder b({1, 2});
  const auto stats = lattice::count_consistent_cuts(b.build());
  EXPECT_EQ(stats.consistent_cuts, 1u);  // just the empty cut
  EXPECT_EQ(stats.total_events, 0u);
}

TEST(LatticeCountTest, CapTruncates) {
  ViewBuilder b({1, 2});
  for (int i = 1; i <= 6; ++i) {
    b.event(0, {0, static_cast<std::uint64_t>(i), 0}, "x", i);
    b.event(1, {0, 0, static_cast<std::uint64_t>(i)}, "y", i);
  }
  const auto stats = lattice::count_consistent_cuts(b.build(), /*cap=*/10);
  EXPECT_TRUE(stats.truncated);
  EXPECT_LE(stats.consistent_cuts, 10u);
}

TEST(PossiblyDefinitelyTest, ClassicDiagonalExample) {
  // The textbook case: x and y each step 0→1 concurrently. Possibly(x==1 &&
  // y==0) holds (one interleaving passes through it) but Definitely does not.
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0);
  b.event(1, {0, 0, 1}, "y", 1.0);
  const auto view = b.build();

  const auto p_mixed = parse_predicate("m", "x[1] == 1 && y[2] == 0");
  EXPECT_TRUE(lattice::possibly(view, p_mixed));
  EXPECT_FALSE(lattice::definitely(view, p_mixed));

  // Both-one holds at the final cut of every path → Definitely... no:
  // Definitely requires passing through it on every path; the final cut is on
  // every path, so it is Definitely.
  const auto p_both = parse_predicate("b", "x[1] == 1 && y[2] == 1");
  EXPECT_TRUE(lattice::possibly(view, p_both));
  EXPECT_TRUE(lattice::definitely(view, p_both));
}

TEST(PossiblyDefinitelyTest, OrderedExecutionMakesMixedDefinite) {
  // If y's step causally follows x's step, every path passes through
  // (x=1, y=0) → Definitely.
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0);
  b.event(1, {0, 1, 1}, "y", 1.0);  // knows x's event
  const auto view = b.build();
  const auto p_mixed = parse_predicate("m", "x[1] == 1 && y[2] == 0");
  EXPECT_TRUE(lattice::definitely(view, p_mixed));
}

TEST(PossiblyDefinitelyTest, ImpossiblePredicate) {
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0);
  const auto view = b.build();
  const auto p = parse_predicate("p", "x[1] == 99");
  EXPECT_FALSE(lattice::possibly(view, p));
  EXPECT_FALSE(lattice::definitely(view, p));
}

TEST(PossiblyDefinitelyTest, TrueAtBottomIsDefinitely) {
  ViewBuilder b({1});
  b.event(0, {0, 1}, "x", 5.0);
  const auto view = b.build();
  // x==0 holds at the empty cut (unreported = 0), which is on every path.
  const auto p = parse_predicate("p", "x[1] == 0");
  EXPECT_TRUE(lattice::possibly(view, p));
  EXPECT_TRUE(lattice::definitely(view, p));
}

TEST(PossiblyWitnessTest, WitnessSatisfiesPredicate) {
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0);
  b.event(1, {0, 0, 1}, "y", 1.0);
  const auto view = b.build();
  const auto p = parse_predicate("m", "x[1] == 1 && y[2] == 0");
  const auto witness = lattice::possibly_witness(view, p);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(view.consistent(*witness));
  EXPECT_TRUE(p.holds(view.state_at(*witness)));
  EXPECT_EQ(*witness, (std::vector<std::size_t>{1, 0}));
}

TEST(ExecutionViewTest, ConsistencyRule) {
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0);
  b.event(1, {0, 1, 1}, "y", 1.0);  // knows P1's event
  const auto view = b.build();
  EXPECT_TRUE(view.consistent({0, 0}));
  EXPECT_TRUE(view.consistent({1, 0}));
  EXPECT_FALSE(view.consistent({0, 1}));  // includes effect without cause
  EXPECT_TRUE(view.consistent({1, 1}));
}

TEST(ExecutionViewTest, StateAtUsesLatestValues) {
  ViewBuilder b({1});
  b.event(0, {0, 1}, "x", 1.0);
  b.event(0, {0, 2}, "x", 7.0);
  const auto view = b.build();
  EXPECT_FALSE(view.state_at({0}).has(VarRef{1, "x"}));
  EXPECT_DOUBLE_EQ(*view.state_at({1}).get(VarRef{1, "x"}), 1.0);
  EXPECT_DOUBLE_EQ(*view.state_at({2}).get(VarRef{1, "x"}), 7.0);
}

TEST(ExecutionViewTest, FinalCutAndTotals) {
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0);
  b.event(1, {0, 0, 1}, "y", 1.0);
  b.event(1, {0, 0, 2}, "y", 2.0);
  const auto view = b.build();
  EXPECT_EQ(view.final_cut(), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(view.total_events(), 3u);
}

}  // namespace
}  // namespace psn::core
