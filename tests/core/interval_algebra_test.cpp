#include "core/interval_algebra.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::core {
namespace {

using namespace psn::time_literals;

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }
TimeInterval iv(std::int64_t b, std::int64_t e) { return {t(b), t(e)}; }

TEST(AllenTest, AllThirteenRelations) {
  EXPECT_EQ(classify(iv(0, 10), iv(20, 30)), AllenRelation::kBefore);
  EXPECT_EQ(classify(iv(0, 10), iv(10, 30)), AllenRelation::kMeets);
  EXPECT_EQ(classify(iv(0, 15), iv(10, 30)), AllenRelation::kOverlaps);
  EXPECT_EQ(classify(iv(10, 20), iv(10, 30)), AllenRelation::kStarts);
  EXPECT_EQ(classify(iv(15, 20), iv(10, 30)), AllenRelation::kDuring);
  EXPECT_EQ(classify(iv(20, 30), iv(10, 30)), AllenRelation::kFinishes);
  EXPECT_EQ(classify(iv(10, 30), iv(10, 30)), AllenRelation::kEqual);
  EXPECT_EQ(classify(iv(10, 30), iv(20, 30)), AllenRelation::kFinishedBy);
  EXPECT_EQ(classify(iv(10, 30), iv(15, 20)), AllenRelation::kContains);
  EXPECT_EQ(classify(iv(10, 30), iv(10, 20)), AllenRelation::kStartedBy);
  EXPECT_EQ(classify(iv(10, 30), iv(0, 15)), AllenRelation::kOverlappedBy);
  EXPECT_EQ(classify(iv(10, 30), iv(0, 10)), AllenRelation::kMetBy);
  EXPECT_EQ(classify(iv(20, 30), iv(0, 10)), AllenRelation::kAfter);
}

TEST(AllenTest, InverseIsInvolutionAndMatchesSwap) {
  const TimeInterval cases[][2] = {
      {iv(0, 10), iv(20, 30)}, {iv(0, 10), iv(10, 30)},
      {iv(0, 15), iv(10, 30)}, {iv(10, 20), iv(10, 30)},
      {iv(15, 20), iv(10, 30)}, {iv(20, 30), iv(10, 30)},
      {iv(10, 30), iv(10, 30)},
  };
  for (const auto& c : cases) {
    const AllenRelation r = classify(c[0], c[1]);
    EXPECT_EQ(inverse(inverse(r)), r);
    EXPECT_EQ(classify(c[1], c[0]), inverse(r)) << to_string(r);
  }
}

TEST(AllenTest, RejectsEmptyIntervals) {
  EXPECT_THROW(classify(iv(10, 10), iv(0, 5)), InvariantError);
}

TEST(AllenTest, Exhaustiveness) {
  // Every pair of non-empty intervals classifies to exactly one relation,
  // and swapping yields the inverse — over a grid of endpoint combinations.
  const std::int64_t pts[] = {0, 5, 10, 15};
  for (std::int64_t ab : pts) {
    for (std::int64_t ae : pts) {
      if (ae <= ab) continue;
      for (std::int64_t bb : pts) {
        for (std::int64_t be : pts) {
          if (be <= bb) continue;
          const AllenRelation r = classify(iv(ab, ae), iv(bb, be));
          EXPECT_EQ(classify(iv(bb, be), iv(ab, ae)), inverse(r));
        }
      }
    }
  }
}

TEST(CausalClassifyTest, ThreeOutcomes) {
  StampedInterval a, b;
  a.begin_stamp = clocks::VectorStamp({1, 0});
  a.end_stamp = clocks::VectorStamp({2, 0});
  b.begin_stamp = clocks::VectorStamp({2, 1});  // knows a's end
  b.end_stamp = clocks::VectorStamp({2, 2});
  EXPECT_EQ(classify_causal(a, b), CausalIntervalRelation::kPrecedes);
  EXPECT_EQ(classify_causal(b, a), CausalIntervalRelation::kPrecededBy);

  StampedInterval c, d;
  c.begin_stamp = clocks::VectorStamp({1, 0});
  c.end_stamp = clocks::VectorStamp({2, 0});
  d.begin_stamp = clocks::VectorStamp({0, 1});
  d.end_stamp = clocks::VectorStamp({0, 2});
  EXPECT_EQ(classify_causal(c, d), CausalIntervalRelation::kConcurrent);
}

TEST(CausalClassifyTest, OpenIntervalNeverPrecedes) {
  StampedInterval open, later;
  open.begin_stamp = clocks::VectorStamp({1, 0});
  // no end stamp: open at horizon
  later.begin_stamp = clocks::VectorStamp({5, 5});
  later.end_stamp = clocks::VectorStamp({5, 6});
  EXPECT_EQ(classify_causal(open, later), CausalIntervalRelation::kConcurrent);
}

TEST(SatisfiesTest, BeforeWithGapBounds) {
  RelativeTimingSpec spec;
  spec.relation = AllenRelation::kBefore;
  spec.max_gap = 100_ms;
  EXPECT_TRUE(satisfies(iv(0, 10), iv(50, 60), spec));    // gap 40 ms
  EXPECT_FALSE(satisfies(iv(0, 10), iv(200, 210), spec)); // gap 190 ms
  EXPECT_TRUE(satisfies(iv(0, 10), iv(10, 20), spec));    // meets: gap 0
  EXPECT_FALSE(satisfies(iv(50, 60), iv(0, 10), spec));   // wrong order

  spec.min_gap = 20_ms;
  EXPECT_FALSE(satisfies(iv(0, 10), iv(15, 20), spec));   // gap 5 < min
  EXPECT_TRUE(satisfies(iv(0, 10), iv(40, 50), spec));
}

TEST(SatisfiesTest, AfterIsFlippedBefore) {
  RelativeTimingSpec spec;
  spec.relation = AllenRelation::kAfter;
  spec.max_gap = 100_ms;
  EXPECT_TRUE(satisfies(iv(50, 60), iv(0, 10), spec));
  EXPECT_FALSE(satisfies(iv(0, 10), iv(50, 60), spec));
}

TEST(SatisfiesTest, ExactRelations) {
  RelativeTimingSpec spec;
  spec.relation = AllenRelation::kOverlaps;
  EXPECT_TRUE(satisfies(iv(0, 15), iv(10, 30), spec));
  EXPECT_FALSE(satisfies(iv(0, 5), iv(10, 30), spec));
  spec.relation = AllenRelation::kDuring;
  EXPECT_TRUE(satisfies(iv(15, 20), iv(10, 30), spec));
}

// ---- extraction from an observation log ----

ReceivedUpdate report(ProcessId pid, const std::string& attr, double value,
                      std::int64_t synced_ms, std::uint64_t own_seq,
                      std::vector<std::uint64_t> stamp) {
  ReceivedUpdate u;
  u.delivered_at = t(synced_ms + 5);
  u.reporter = pid;
  u.report.attribute = attr;
  u.report.value = world::AttributeValue(value);
  u.report.synced_timestamp = t(synced_ms);
  u.report.true_sense_time = t(synced_ms);
  u.report.strobe_scalar = {own_seq, pid};
  u.report.strobe_vector = clocks::VectorStamp(std::move(stamp));
  (void)own_seq;
  return u;
}

TEST(ExtractIntervalsTest, BasicExtraction) {
  ObservationLog log;
  log.num_processes = 2;
  log.updates.push_back(report(1, "x", 1.0, 100, 1, {0, 1}));
  log.updates.push_back(report(1, "x", 0.0, 200, 2, {0, 2}));
  log.updates.push_back(report(1, "x", 5.0, 300, 3, {0, 3}));

  const auto intervals = extract_intervals(
      log, VarRef{1, "x"}, [](double v) { return v > 0.0; });
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0].when.begin, t(100));
  EXPECT_EQ(intervals[0].when.end, t(200));
  ASSERT_TRUE(intervals[0].end_stamp.has_value());
  EXPECT_EQ(intervals[1].when.begin, t(300));
  EXPECT_EQ(intervals[1].when.end, SimTime::max());  // open
  EXPECT_FALSE(intervals[1].end_stamp.has_value());
}

TEST(ExtractIntervalsTest, OutOfOrderDeliveryHandledByStampOrder) {
  ObservationLog log;
  log.num_processes = 2;
  // Delivered out of order: the falsifier (seq 2) arrives before the riser
  // (seq 1). Stamp-order extraction must still see one clean interval.
  log.updates.push_back(report(1, "x", 0.0, 200, 2, {0, 2}));
  log.updates.push_back(report(1, "x", 1.0, 100, 1, {0, 1}));
  const auto intervals = extract_intervals(
      log, VarRef{1, "x"}, [](double v) { return v > 0.0; });
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].when.begin, t(100));
  EXPECT_EQ(intervals[0].when.end, t(200));
}

TEST(ExtractIntervalsTest, FiltersOtherVariables) {
  ObservationLog log;
  log.num_processes = 3;
  log.updates.push_back(report(1, "x", 1.0, 100, 1, {0, 1, 0}));
  log.updates.push_back(report(2, "x", 1.0, 100, 1, {0, 0, 1}));  // other pid
  log.updates.push_back(report(1, "y", 1.0, 100, 2, {0, 2, 0}));  // other attr
  const auto intervals = extract_intervals(
      log, VarRef{1, "x"}, [](double v) { return v > 0.0; });
  EXPECT_EQ(intervals.size(), 1u);
}

TEST(RelativeTimingDetectorTest, SecureBankingRule) {
  // Paper §3.1.1.a.ii / [22]: "a biometric key is presented remotely after
  // a password is entered across the network" — Y after X, within 2 s.
  ObservationLog log;
  log.num_processes = 3;
  // password session at P1: [100, 300)
  log.updates.push_back(report(1, "password_ok", 1.0, 100, 1, {0, 1, 0}));
  log.updates.push_back(report(1, "password_ok", 0.0, 300, 2, {0, 2, 0}));
  // biometric at P2: [500, 600) — gap 200 ms after password end, and its
  // begin stamp dominates the password end stamp (causally after).
  log.updates.push_back(report(2, "biometric_ok", 1.0, 500, 1, {0, 2, 1}));
  log.updates.push_back(report(2, "biometric_ok", 0.0, 600, 2, {0, 2, 2}));

  RelativeTimingSpec spec;
  spec.relation = AllenRelation::kBefore;  // X (password) before Y (biometric)
  spec.max_gap = 2_s;
  RelativeTimingDetector det(
      VarRef{1, "password_ok"}, [](double v) { return v > 0; },
      VarRef{2, "biometric_ok"}, [](double v) { return v > 0; }, spec);
  const auto matches = det.run(log);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_TRUE(matches[0].causally_certified);
}

TEST(RelativeTimingDetectorTest, RacyMatchNotCertified) {
  ObservationLog log;
  log.num_processes = 3;
  log.updates.push_back(report(1, "x", 1.0, 100, 1, {0, 1, 0}));
  log.updates.push_back(report(1, "x", 0.0, 200, 2, {0, 2, 0}));
  // y begins 50 ms later by timestamps, but its stamp does NOT dominate
  // x's end stamp — a race: the timestamps could be lying within eps.
  log.updates.push_back(report(2, "y", 1.0, 250, 1, {0, 0, 1}));
  log.updates.push_back(report(2, "y", 0.0, 400, 2, {0, 0, 2}));

  RelativeTimingSpec spec;
  spec.relation = AllenRelation::kBefore;
  RelativeTimingDetector det(
      VarRef{1, "x"}, [](double v) { return v > 0; }, VarRef{2, "y"},
      [](double v) { return v > 0; }, spec);
  const auto matches = det.run(log);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_FALSE(matches[0].causally_certified);
}

TEST(RelativeTimingDetectorTest, EveryPairReported) {
  ObservationLog log;
  log.num_processes = 3;
  // Two password sessions, two biometric sessions, all in order.
  std::uint64_t p_seq = 0, b_seq = 0;
  for (int k = 0; k < 2; ++k) {
    const std::int64_t base = 1000 * k;
    log.updates.push_back(report(1, "x", 1.0, base + 100, ++p_seq,
                                 {0, p_seq, b_seq}));
    log.updates.push_back(report(1, "x", 0.0, base + 200, ++p_seq,
                                 {0, p_seq, b_seq}));
    log.updates.push_back(report(2, "y", 1.0, base + 300, ++b_seq,
                                 {0, p_seq, b_seq}));
    log.updates.push_back(report(2, "y", 0.0, base + 400, ++b_seq,
                                 {0, p_seq, b_seq}));
  }
  RelativeTimingSpec spec;
  spec.relation = AllenRelation::kBefore;
  spec.max_gap = 500_ms;  // only the same-episode pairs qualify
  RelativeTimingDetector det(
      VarRef{1, "x"}, [](double v) { return v > 0; }, VarRef{2, "y"},
      [](double v) { return v > 0; }, spec);
  EXPECT_EQ(det.run(log).size(), 2u);
}

}  // namespace
}  // namespace psn::core
