// Chandy–Lamport snapshot tests: unit-level protocol behavior plus an
// end-to-end money-conservation property over the FIFO transport with
// random delays — the snapshot's recorded global sum must equal the true
// total even while transfers are in flight.

#include "core/snapshot.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/transport.hpp"
#include "sim/simulation.hpp"

namespace psn::core {
namespace {

using namespace psn::time_literals;

TEST(SnapshotUnitTest, InitiatorRecordsAndFloods) {
  std::vector<ProcessId> markers_sent;
  SnapshotParticipant p(0, {1, 2},
                        [&](ProcessId to) { markers_sent.push_back(to); });
  p.set_state_provider([] { return std::int64_t{42}; });
  p.initiate();
  EXPECT_TRUE(p.recording_started());
  EXPECT_EQ(p.recorded_state(), 42);
  EXPECT_EQ(markers_sent, (std::vector<ProcessId>{1, 2}));
  EXPECT_FALSE(p.complete());
}

TEST(SnapshotUnitTest, FirstMarkerTriggersRecording) {
  std::vector<ProcessId> markers_sent;
  SnapshotParticipant p(1, {0, 2},
                        [&](ProcessId to) { markers_sent.push_back(to); });
  p.set_state_provider([] { return std::int64_t{7}; });
  p.on_marker(0);
  EXPECT_TRUE(p.recording_started());
  EXPECT_EQ(p.recorded_state(), 7);
  // Channel from 0 closed empty; channel from 2 being recorded.
  EXPECT_EQ(p.channel_state(0), 0);
  EXPECT_FALSE(p.complete());
  // App message from 2 while recording → becomes channel state.
  EXPECT_TRUE(p.on_app_message(2, 5));
  p.on_marker(2);
  EXPECT_TRUE(p.complete());
  EXPECT_EQ(p.channel_state(2), 5);
  EXPECT_EQ(p.total_recorded(), 12);
}

TEST(SnapshotUnitTest, MessagesAfterMarkerNotRecorded) {
  SnapshotParticipant p(1, {0}, [](ProcessId) {});
  p.set_state_provider([] { return std::int64_t{0}; });
  p.on_marker(0);  // channel from 0 closes immediately
  EXPECT_FALSE(p.on_app_message(0, 99));
  EXPECT_EQ(p.channel_state(0), 0);
}

TEST(SnapshotUnitTest, MessagesBeforeRecordingNotRecorded) {
  SnapshotParticipant p(1, {0}, [](ProcessId) {});
  p.set_state_provider([] { return std::int64_t{0}; });
  EXPECT_FALSE(p.on_app_message(0, 5));  // snapshot not started yet
}

TEST(SnapshotUnitTest, DuplicateMarkerRejected) {
  SnapshotParticipant p(1, {0}, [](ProcessId) {});
  p.set_state_provider([] { return std::int64_t{0}; });
  p.on_marker(0);
  EXPECT_THROW(p.on_marker(0), InvariantError);
}

// ---- end-to-end conservation over the FIFO transport ----

/// A bank of n accounts doing random transfers; a snapshot is initiated
/// mid-run and the recorded global total must equal the invariant.
class Bank {
 public:
  Bank(std::size_t n, std::uint64_t seed, std::int64_t initial_balance)
      : initial_total_(static_cast<std::int64_t>(n) * initial_balance),
        sim_([] {
          sim::SimConfig cfg;
          cfg.horizon = SimTime::zero() + 60_s;
          return cfg;
        }()),
        transport_(sim_, net::Overlay::complete(n),
                   std::make_unique<net::UniformBoundedDelay>(10_ms, 200_ms),
                   std::make_unique<net::NoLoss>(), Rng(seed)),
        rng_(seed + 99) {
    transport_.set_fifo_channels(true);
    balances_.assign(n, initial_balance);
    for (ProcessId p = 0; p < n; ++p) {
      std::vector<ProcessId> peers;
      for (ProcessId q = 0; q < n; ++q) {
        if (q != p) peers.push_back(q);
      }
      participants_.push_back(std::make_unique<SnapshotParticipant>(
          p, peers, [this, p](ProcessId to) { send_marker(p, to); }));
      participants_.back()->set_state_provider(
          [this, p] { return balances_[p]; });
      transport_.register_handler(
          p, [this, p](const net::Message& msg) { deliver(p, msg); });
    }
  }

  void random_transfer() {
    const auto n = static_cast<std::int64_t>(balances_.size());
    const auto from = static_cast<ProcessId>(rng_.uniform_int(0, n - 1));
    auto to = static_cast<ProcessId>(rng_.uniform_int(0, n - 1));
    if (to == from) to = static_cast<ProcessId>((to + 1) % n);
    const std::int64_t amount = rng_.uniform_int(1, 10);
    if (balances_[from] < amount) return;
    balances_[from] -= amount;
    net::Message msg;
    msg.src = from;
    msg.dst = to;
    msg.kind = net::MessageKind::kComputation;
    net::ComputationPayload payload;
    payload.stamps.causal_vector = clocks::VectorStamp(balances_.size());
    payload.tag = "transfer:" + std::to_string(amount);
    msg.payload = payload;
    transport_.unicast(std::move(msg));
  }

  void run_scenario() {
    auto& sched = sim_.scheduler();
    // 400 transfers spread over 20 s; snapshot initiated at 10 s, from P0.
    for (int k = 0; k < 400; ++k) {
      sched.schedule_at(SimTime::zero() + Duration::millis(50 * k),
                        [this] { random_transfer(); });
    }
    sched.schedule_at(SimTime::zero() + 10_s,
                      [this] { participants_[0]->initiate(); });
    sim_.run();
  }

  bool snapshot_complete() const {
    for (const auto& p : participants_) {
      if (!p->complete()) return false;
    }
    return true;
  }

  std::int64_t snapshot_total() const {
    std::int64_t total = 0;
    for (const auto& p : participants_) total += p->total_recorded();
    return total;
  }

  std::int64_t live_total() const {
    std::int64_t total = 0;
    for (const auto b : balances_) total += b;
    return total;  // excludes in-flight transfers
  }

  std::int64_t initial_total() const { return initial_total_; }

 private:
  void send_marker(ProcessId from, ProcessId to) {
    net::Message msg;
    msg.src = from;
    msg.dst = to;
    msg.kind = net::MessageKind::kComputation;
    net::ComputationPayload payload;
    payload.stamps.causal_vector = clocks::VectorStamp(balances_.size());
    payload.tag = "marker";
    msg.payload = payload;
    transport_.unicast(std::move(msg));
  }

  void deliver(ProcessId self, const net::Message& msg) {
    const std::string& tag = msg.computation().tag;
    if (tag == "marker") {
      participants_[self]->on_marker(msg.src);
      return;
    }
    const std::int64_t amount = std::stoll(tag.substr(tag.find(':') + 1));
    participants_[self]->on_app_message(msg.src, amount);
    balances_[self] += amount;
  }

  std::int64_t initial_total_;
  sim::Simulation sim_;
  net::Transport transport_;
  Rng rng_;
  std::vector<std::int64_t> balances_;
  std::vector<std::unique_ptr<SnapshotParticipant>> participants_;
};

class SnapshotConservationTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapshotConservationTest, GlobalSumConservedInSnapshot) {
  Bank bank(4, GetParam(), 1000);
  bank.run_scenario();
  ASSERT_TRUE(bank.snapshot_complete());
  // After the run drains, live total equals the invariant again...
  EXPECT_EQ(bank.live_total(), bank.initial_total());
  // ...and — the actual theorem — the snapshot, taken while transfers were
  // in flight, also recorded exactly the invariant.
  EXPECT_EQ(bank.snapshot_total(), bank.initial_total());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotConservationTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace psn::core
