#include "core/proximity.hpp"

#include <gtest/gtest.h>

#include "analysis/scoring.hpp"
#include "common/error.hpp"
#include "core/detectors.hpp"
#include "core/oracle.hpp"
#include "core/predicate_parser.hpp"
#include "world/mobility.hpp"

namespace psn::core {
namespace {

using namespace psn::time_literals;

struct Field {
  explicit Field(std::uint64_t seed = 1, Duration delta = 50_ms) {
    SystemConfig sys;
    sys.num_sensors = 2;
    sys.sim.seed = seed;
    sys.sim.horizon = SimTime::zero() + 120_s;
    sys.delta = delta;
    system = std::make_unique<PervasiveSystem>(sys);
    // Two overlapping zones: sensor 1 at x=0, sensor 2 at x=15, radius 10 —
    // the overlap is x in [5, 10].
    field = std::make_unique<ProximityField>(
        *system, std::vector<ProximityField::SensorZone>{
                     {1, {0.0, 0.0}, 10.0}, {2, {15.0, 0.0}, 10.0}});
  }
  std::unique_ptr<PervasiveSystem> system;
  std::unique_ptr<ProximityField> field;
};

TEST(ProximityFieldTest, InitialContainmentPublished) {
  Field f;
  const auto zebra = f.system->world().create_object("zebra", {3.0, 0.0});
  f.field->track(zebra);
  // Inside zone 1, outside zone 2, recorded as world events at t=0.
  const auto& timeline = f.system->world().timeline();
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline.at(0).attribute, "near_zebra");
  EXPECT_TRUE(timeline.at(0).value.as_bool());
  EXPECT_FALSE(timeline.at(1).value.as_bool());
  EXPECT_EQ(f.field->sensors_in_range(zebra), (std::vector<ProcessId>{1}));
}

TEST(ProximityFieldTest, CrossingEmitsTransitions) {
  Field f;
  const auto zebra = f.system->world().create_object("zebra", {-20.0, 0.0});
  f.field->track(zebra);
  // March the zebra straight through both zones.
  world::PatrolMobility patrol(f.system->world(), zebra, {{40.0, 0.0}},
                               /*speed=*/2.0, /*tick=*/100_ms);
  patrol.start();
  f.system->run();

  // Ground truth: entered and left both zones.
  const auto hist1 =
      f.system->world().timeline().history(f.field->zone_object(1),
                                           "near_zebra");
  const auto hist2 =
      f.system->world().timeline().history(f.field->zone_object(2),
                                           "near_zebra");
  // initial false, enter, exit → at least 3 events each.
  EXPECT_GE(hist1.size(), 3u);
  EXPECT_GE(hist2.size(), 3u);
  EXPECT_TRUE(f.field->sensors_in_range(zebra).empty());
}

TEST(ProximityFieldTest, OverlapPredicateDetectedEndToEnd) {
  Field f;
  const auto zebra = f.system->world().create_object("zebra", {-15.0, 0.0});
  f.field->track(zebra);
  // Patrol back and forth through the overlap region several times.
  world::PatrolMobility patrol(f.system->world(), zebra,
                               {{30.0, 0.0}, {-15.0, 0.0}},
                               /*speed=*/2.0, /*tick=*/100_ms);
  patrol.start();
  f.system->run();

  const auto phi = parse_predicate(
      "in_overlap", "near_zebra[1] && near_zebra[2]");
  const GroundTruthOracle oracle(phi, f.system->sensing());
  const auto truth =
      oracle.evaluate(f.system->timeline(),
                      SimTime::zero() + 120_s);
  // One traversal of the overlap per direction change: several occurrences.
  EXPECT_GE(truth.occurrences.size(), 3u);

  analysis::ScoreConfig cfg;
  cfg.tolerance = 150_ms;
  const auto detections =
      StrobeVectorDetector().run(f.system->log(), phi);
  const auto score = analysis::score_detections(truth, detections, cfg);
  // Zone crossings are seconds apart — far beyond Δ — so detection must be
  // essentially perfect.
  EXPECT_EQ(score.false_negatives, 0u);
  EXPECT_EQ(score.false_positives, 0u);
  EXPECT_EQ(score.true_positives, truth.occurrences.size());
}

TEST(ProximityFieldTest, MultipleTrackedObjects) {
  Field f;
  const auto zebra = f.system->world().create_object("zebra", {0.0, 0.0});
  const auto lion = f.system->world().create_object("lion", {15.0, 0.0});
  f.field->track(zebra);
  f.field->track(lion);
  // Distinct variables exist for each animal.
  EXPECT_TRUE(f.system->world()
                  .object(f.field->zone_object(1))
                  .has_attribute("near_zebra"));
  EXPECT_TRUE(f.system->world()
                  .object(f.field->zone_object(1))
                  .has_attribute("near_lion"));
  EXPECT_EQ(f.field->sensors_in_range(zebra), (std::vector<ProcessId>{1}));
  EXPECT_EQ(f.field->sensors_in_range(lion), (std::vector<ProcessId>{2}));
}

TEST(ProximityFieldTest, Validation) {
  SystemConfig sys;
  sys.num_sensors = 1;
  PervasiveSystem system(sys);
  EXPECT_THROW(ProximityField(system, {}), InvariantError);
  EXPECT_THROW(ProximityField(
                   system, {{0, {0.0, 0.0}, 5.0}}),  // root cannot sense
               InvariantError);
  EXPECT_THROW(ProximityField(system, {{1, {0.0, 0.0}, -1.0}}),
               InvariantError);
}

}  // namespace
}  // namespace psn::core
