// Hand-crafted observation logs exercising each online detector's decision
// rules: staleness filtering, race (borderline) classification, and
// timestamp-order processing.

#include "core/detectors.hpp"

#include <gtest/gtest.h>

#include "core/predicate_parser.hpp"

namespace psn::core {
namespace {

using namespace psn::time_literals;

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

/// Builder for observation logs with explicit stamps.
struct LogBuilder {
  explicit LogBuilder(std::size_t n) { log.num_processes = n; }

  LogBuilder& update(std::int64_t delivered_ms, ProcessId reporter,
                     const std::string& attr, double value,
                     clocks::ScalarStamp scalar,
                     std::vector<std::uint64_t> vec,
                     std::int64_t sensed_ms = -1,
                     std::int64_t synced_us_offset = 0) {
    ReceivedUpdate u;
    u.delivered_at = t(delivered_ms);
    u.reporter = reporter;
    u.report.attribute = attr;
    u.report.value = world::AttributeValue(value);
    u.report.strobe_scalar = scalar;
    u.report.strobe_vector = clocks::VectorStamp(std::move(vec));
    const std::int64_t sensed = sensed_ms >= 0 ? sensed_ms : delivered_ms - 1;
    u.report.true_sense_time = t(sensed);
    u.report.synced_timestamp =
        t(sensed) + Duration::micros(synced_us_offset);
    u.report.local_timestamp = u.report.synced_timestamp;
    log.updates.push_back(std::move(u));
    return *this;
  }

  ObservationLog log;
};

Predicate both_positive() { return parse_predicate("p", "x[1] > 0 && x[2] > 0"); }

TEST(DeliveryOrderDetectorTest, AppliesEverythingInArrivalOrder) {
  LogBuilder b(3);
  b.update(10, 1, "x", 1.0, {1, 1}, {0, 1, 0});
  b.update(20, 2, "x", 1.0, {1, 2}, {0, 0, 1});
  b.update(30, 1, "x", 0.0, {2, 1}, {0, 2, 1});
  const auto detections = DeliveryOrderDetector().run(b.log, both_positive());
  ASSERT_EQ(detections.size(), 2u);
  EXPECT_TRUE(detections[0].to_true);
  EXPECT_EQ(detections[0].detected_at, t(20));
  EXPECT_FALSE(detections[1].to_true);
  EXPECT_EQ(detections[1].detected_at, t(30));
  EXPECT_FALSE(detections[0].borderline);
}

TEST(StrobeScalarDetectorTest, DiscardsStaleUpdates) {
  // Updates from P1 arrive out of order; the older stamp must not overwrite
  // the newer value.
  LogBuilder b(2);
  b.update(10, 1, "x", 5.0, {3, 1}, {0, 3});   // newer arrives first
  b.update(20, 1, "x", 1.0, {2, 1}, {0, 2});   // stale — must be dropped
  const auto detections =
      StrobeScalarDetector().run(b.log, parse_predicate("p", "x[1] > 3"));
  ASSERT_EQ(detections.size(), 1u);  // only the became-true at t=10
  EXPECT_TRUE(detections[0].to_true);
}

TEST(StrobeScalarDetectorTest, NoBorderlineEver) {
  // Scalar order is total: races are invisible (paper §3.3) — the detector
  // never hedges.
  LogBuilder b(3);
  b.update(10, 1, "x", 1.0, {1, 1}, {0, 1, 0});
  b.update(11, 2, "x", 1.0, {1, 2}, {0, 0, 1});  // concurrent in vector terms
  const auto detections = StrobeScalarDetector().run(b.log, both_positive());
  for (const auto& d : detections) EXPECT_FALSE(d.borderline);
  ASSERT_EQ(detections.size(), 1u);
}

TEST(StrobeScalarDetectorTest, EqualStampsBreakByPid) {
  LogBuilder b(3);
  b.update(10, 2, "x", 2.0, {5, 2}, {0, 0, 5});
  // Same scalar value from lower pid — (5,1) < (5,2) so for a *different*
  // variable it still applies.
  b.update(20, 1, "x", 3.0, {5, 1}, {0, 5, 0});
  const auto detections =
      StrobeScalarDetector().run(b.log, parse_predicate("p", "x[1] + x[2] > 4"));
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_TRUE(detections[0].to_true);
}

TEST(StrobeVectorDetectorTest, DropsCausallySupersededUpdate) {
  LogBuilder b(2);
  b.update(10, 1, "x", 5.0, {3, 1}, {0, 3});
  b.update(20, 1, "x", 1.0, {2, 1}, {0, 2});  // happens-before the applied one
  const auto detections =
      StrobeVectorDetector().run(b.log, parse_predicate("p", "x[1] > 3"));
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_TRUE(detections[0].to_true);
}

TEST(StrobeVectorDetectorTest, FlagsRaceAsBorderline) {
  // P1 and P2 sense concurrently (vector stamps incomparable): the resulting
  // transition must be borderline.
  LogBuilder b(3);
  b.update(10, 1, "x", 1.0, {1, 1}, {0, 1, 0});
  b.update(12, 2, "x", 1.0, {1, 2}, {0, 0, 1});  // concurrent with the above
  const auto detections = StrobeVectorDetector().run(b.log, both_positive());
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_TRUE(detections[0].to_true);
  EXPECT_TRUE(detections[0].borderline);
}

TEST(StrobeVectorDetectorTest, OrderedUpdatesAreConfident) {
  // P2 heard P1's strobe before sensing: stamps are ordered — no race.
  LogBuilder b(3);
  b.update(10, 1, "x", 1.0, {1, 1}, {0, 1, 0});
  b.update(30, 2, "x", 1.0, {2, 2}, {0, 1, 1});  // dominates P1's stamp
  const auto detections = StrobeVectorDetector().run(b.log, both_positive());
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_TRUE(detections[0].to_true);
  EXPECT_FALSE(detections[0].borderline);
}

TEST(StrobeVectorDetectorTest, RaceWithIrrelevantVariableIgnored) {
  // A concurrent update of a variable the predicate does not read must not
  // taint the transition.
  LogBuilder b(3);
  b.update(5, 2, "noise", 1.0, {1, 2}, {0, 0, 1});
  b.update(10, 1, "x", 5.0, {1, 1}, {0, 1, 0});  // concurrent with noise
  const auto detections =
      StrobeVectorDetector().run(b.log, parse_predicate("p", "x[1] > 3"));
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_FALSE(detections[0].borderline);
}

TEST(PhysicalClockDetectorTest, ProcessesInTimestampOrder) {
  // Delivery order inverts the sense order; the synced timestamps restore it.
  LogBuilder b(3);
  // Sensed at 100 ms but delivered late.
  b.update(/*delivered=*/300, 1, "x", 1.0, {1, 1}, {0, 1, 0},
           /*sensed=*/100);
  // Sensed at 200 ms, delivered first.
  b.update(/*delivered=*/210, 2, "x", 1.0, {1, 2}, {0, 0, 1},
           /*sensed=*/200);
  // Falsifier sensed at 250 ms.
  b.update(/*delivered=*/260, 1, "x", 0.0, {2, 1}, {0, 2, 0},
           /*sensed=*/250);
  const auto detections = PhysicalClockDetector().run(b.log, both_positive());
  // Correct order: x1=1 (100), x2=1 (200) → true, x1=0 (250) → false.
  ASSERT_EQ(detections.size(), 2u);
  EXPECT_TRUE(detections[0].to_true);
  EXPECT_EQ(detections[0].cause_true_time, t(200));
  EXPECT_FALSE(detections[1].to_true);
}

TEST(PhysicalClockDetectorTest, SkewCanInvertCloseEvents) {
  // Two events 1 ms apart, but clock offsets of ±2 ms invert their synced
  // timestamps — the Mayo–Kearns failure mode.
  LogBuilder b(3);
  b.update(100, 1, "x", 1.0, {1, 1}, {0, 1, 0}, /*sensed=*/50,
           /*synced_us_offset=*/+2000);
  b.update(101, 2, "x", 1.0, {1, 2}, {0, 0, 1}, /*sensed=*/51,
           /*synced_us_offset=*/-2000);
  // In true time: x1 then x2, so φ becomes true at x2 (51 ms).
  // In synced order: x2 (49 ms) then x1 (52 ms) — φ "becomes true" at x1.
  const auto detections = PhysicalClockDetector().run(b.log, both_positive());
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].cause_true_time, t(50));  // the wrong culprit
}

TEST(EveryOccurrenceTest, AllDetectorsReportEachTransition) {
  // φ toggles five times; every detector must report all 10 transitions
  // (no "detect once then hang" — paper §3.3).
  LogBuilder b(2);
  std::uint64_t stamp = 0;
  for (int k = 0; k < 5; ++k) {
    stamp++;
    b.update(100 * (2 * k + 1), 1, "x", 5.0, {stamp, 1}, {0, stamp});
    stamp++;
    b.update(100 * (2 * k + 2), 1, "x", 0.0, {stamp, 1}, {0, stamp});
  }
  const auto phi = parse_predicate("p", "x[1] > 3");
  for (const auto& det : all_online_detectors()) {
    const auto detections = det->run(b.log, phi);
    EXPECT_EQ(detections.size(), 10u) << det->name();
    for (std::size_t i = 0; i < detections.size(); ++i) {
      EXPECT_EQ(detections[i].to_true, i % 2 == 0) << det->name();
    }
  }
}

TEST(DetectorTest, EmptyLogYieldsNothing) {
  ObservationLog log;
  log.num_processes = 2;
  const auto phi = parse_predicate("p", "x[1] > 3");
  for (const auto& det : all_online_detectors()) {
    EXPECT_TRUE(det->run(log, phi).empty()) << det->name();
  }
}

TEST(DetectorTest, AllFourNamesDistinct) {
  const auto dets = all_online_detectors();
  ASSERT_EQ(dets.size(), 4u);
  std::set<std::string> names;
  for (const auto& d : dets) names.insert(d->name());
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace psn::core
