#include "core/predicate.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::core {
namespace {

GlobalState state_of(
    std::initializer_list<std::pair<VarRef, double>> entries) {
  GlobalState s;
  for (const auto& [ref, v] : entries) s.set(ref, v);
  return s;
}

TEST(ExprTest, ConstantsAndArithmetic) {
  const GlobalState empty;
  EXPECT_DOUBLE_EQ(constant(5.0)->evaluate(empty), 5.0);
  EXPECT_DOUBLE_EQ((constant(2.0) + constant(3.0))->evaluate(empty), 5.0);
  EXPECT_DOUBLE_EQ((constant(2.0) - constant(3.0))->evaluate(empty), -1.0);
  EXPECT_DOUBLE_EQ((constant(2.0) * constant(3.0))->evaluate(empty), 6.0);
  EXPECT_DOUBLE_EQ(
      binary(BinaryOp::kDiv, constant(6.0), constant(3.0))->evaluate(empty),
      2.0);
}

TEST(ExprTest, DivisionByZeroThrows) {
  const GlobalState empty;
  EXPECT_THROW(
      binary(BinaryOp::kDiv, constant(1.0), constant(0.0))->evaluate(empty),
      InvariantError);
}

TEST(ExprTest, VariablesReadState) {
  const auto s = state_of({{{1, "x"}, 5.0}});
  EXPECT_DOUBLE_EQ(var(1, "x")->evaluate(s), 5.0);
  // Missing variable evaluates as 0 but is not "fully defined".
  EXPECT_DOUBLE_EQ(var(2, "x")->evaluate(s), 0.0);
  EXPECT_TRUE(var(1, "x")->is_fully_defined(s));
  EXPECT_FALSE(var(2, "x")->is_fully_defined(s));
}

TEST(ExprTest, Comparisons) {
  const auto s = state_of({{{1, "x"}, 5.0}});
  EXPECT_TRUE((var(1, "x") > 4.0)->holds(s));
  EXPECT_FALSE((var(1, "x") > 5.0)->holds(s));
  EXPECT_TRUE((var(1, "x") >= 5.0)->holds(s));
  EXPECT_TRUE((var(1, "x") < 6.0)->holds(s));
  EXPECT_TRUE((var(1, "x") == 5.0)->holds(s));
  EXPECT_TRUE(binary(BinaryOp::kNe, var(1, "x"), constant(4.0))->holds(s));
  EXPECT_TRUE(binary(BinaryOp::kLe, var(1, "x"), constant(5.0))->holds(s));
}

TEST(ExprTest, LogicalOperators) {
  const auto s = state_of({{{1, "x"}, 1.0}, {{2, "y"}, 0.0}});
  EXPECT_FALSE((var(1, "x") && var(2, "y"))->holds(s));
  EXPECT_TRUE((var(1, "x") || var(2, "y"))->holds(s));
  EXPECT_TRUE(unary(UnaryOp::kNot, var(2, "y"))->holds(s));
  EXPECT_FALSE(unary(UnaryOp::kNot, var(1, "x"))->holds(s));
  EXPECT_DOUBLE_EQ(unary(UnaryOp::kNeg, var(1, "x"))->evaluate(s), -1.0);
}

TEST(ExprTest, LogicalResultIsBoolean01) {
  const auto s = state_of({{{1, "x"}, 7.0}});
  EXPECT_DOUBLE_EQ((var(1, "x") && var(1, "x"))->evaluate(s), 1.0);
  EXPECT_DOUBLE_EQ((var(1, "x") || var(1, "x"))->evaluate(s), 1.0);
}

TEST(ExprTest, AggregatesOverProcesses) {
  const auto s = state_of(
      {{{1, "x"}, 3.0}, {{2, "x"}, 4.0}, {{5, "x"}, 5.0}, {{1, "y"}, 100.0}});
  EXPECT_DOUBLE_EQ(aggregate(AggregateOp::kSum, "x")->evaluate(s), 12.0);
  EXPECT_DOUBLE_EQ(aggregate(AggregateOp::kMin, "x")->evaluate(s), 3.0);
  EXPECT_DOUBLE_EQ(aggregate(AggregateOp::kMax, "x")->evaluate(s), 5.0);
  EXPECT_DOUBLE_EQ(aggregate(AggregateOp::kCount, "x")->evaluate(s), 3.0);
}

TEST(ExprTest, AggregateOverNothingIsZero) {
  const GlobalState empty;
  EXPECT_DOUBLE_EQ(aggregate(AggregateOp::kSum, "x")->evaluate(empty), 0.0);
  EXPECT_FALSE(aggregate(AggregateOp::kSum, "x")->is_fully_defined(empty));
}

TEST(ExprTest, ExhibitionHallPredicateShape) {
  // sum(entered) - sum(exited) > 200 — the paper's §5 predicate.
  const auto phi =
      (aggregate(AggregateOp::kSum, "entered") -
       aggregate(AggregateOp::kSum, "exited")) > 200.0;
  auto s = state_of({{{1, "entered"}, 150.0},
                     {{2, "entered"}, 60.0},
                     {{1, "exited"}, 5.0},
                     {{2, "exited"}, 4.0}});
  EXPECT_TRUE(phi->holds(s));  // 210 - 9 = 201 > 200
  s.set({2, "exited"}, 5.0);
  EXPECT_FALSE(phi->holds(s));  // exactly 200 is not > 200
}

TEST(ExprTest, CollectVarsExpandsAggregates) {
  const auto s = state_of({{{1, "x"}, 1.0}, {{2, "x"}, 2.0}});
  std::set<VarRef> vars;
  (aggregate(AggregateOp::kSum, "x") + var(3, "y"))->collect_vars(s, vars);
  EXPECT_EQ(vars.size(), 3u);
  EXPECT_TRUE(vars.contains(VarRef{1, "x"}));
  EXPECT_TRUE(vars.contains(VarRef{2, "x"}));
  EXPECT_TRUE(vars.contains(VarRef{3, "y"}));
}

TEST(ExprTest, ToStringRoundTripShape) {
  const auto e = (var(1, "temp") > 30.0) && var(2, "occupied");
  EXPECT_EQ(e->to_string(), "((temp[1] > 30) && occupied[2])");
}

TEST(PredicateTest, ConjunctiveClassification) {
  // Paper §3.1.2: ψ = (x_i = 5) ∧ (y_j > 7) is conjunctive...
  const Predicate psi("psi", (var(1, "x") == 5.0) && (var(2, "y") > 7.0));
  EXPECT_TRUE(psi.is_conjunctive());
  // ...while φ = x_i + y_j > 7 is relational.
  const Predicate phi("phi", (var(1, "x") + var(2, "y")) > 7.0);
  EXPECT_FALSE(phi.is_conjunctive());
}

TEST(PredicateTest, AggregateMakesRelational) {
  const Predicate p("p", aggregate(AggregateOp::kSum, "x") > 1.0);
  EXPECT_FALSE(p.is_conjunctive());
}

TEST(PredicateTest, MultiConjunctsSameProcessStayConjunctive) {
  const Predicate p("p", ((var(1, "temp") > 30.0) && (var(1, "hum") < 40.0)) &&
                             var(2, "occ"));
  EXPECT_TRUE(p.is_conjunctive());
  const auto locals = p.local_conjuncts();
  EXPECT_EQ(locals.at(1).size(), 2u);
  EXPECT_EQ(locals.at(2).size(), 1u);
}

TEST(PredicateTest, LocalConjunctsRequireConjunctive) {
  const Predicate p("p", (var(1, "x") + var(2, "y")) > 7.0);
  EXPECT_THROW(p.local_conjuncts(), InvariantError);
}

TEST(PredicateTest, DisjunctionAcrossProcessesIsOneConjunct) {
  // (x[1] > 0 || y[2] > 0) spans two processes inside one conjunct →
  // not conjunctive.
  const Predicate p("p", (var(1, "x") > 0.0) || (var(2, "y") > 0.0));
  EXPECT_FALSE(p.is_conjunctive());
}

TEST(GlobalStateTest, VarsNamed) {
  const auto s = state_of({{{1, "x"}, 1.0}, {{3, "x"}, 2.0}, {{1, "y"}, 3.0}});
  const auto xs = s.vars_named("x");
  EXPECT_EQ(xs.size(), 2u);
  EXPECT_EQ(s.vars_named("z").size(), 0u);
  EXPECT_EQ(s.size(), 3u);
}

}  // namespace
}  // namespace psn::core
