#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/detectors.hpp"
#include "core/predicate_parser.hpp"

namespace psn::core {
namespace {

using namespace psn::time_literals;

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

ReceivedUpdate update(std::int64_t delivered_ms, ProcessId reporter,
                      const std::string& attr, double value,
                      std::vector<std::uint64_t> stamp) {
  ReceivedUpdate u;
  u.delivered_at = t(delivered_ms);
  u.reporter = reporter;
  u.report.attribute = attr;
  u.report.value = world::AttributeValue(value);
  u.report.strobe_scalar = {stamp[reporter], reporter};
  u.report.strobe_vector = clocks::VectorStamp(std::move(stamp));
  u.report.true_sense_time = t(delivered_ms - 1);
  return u;
}

TEST(IncrementalDetectorTest, FeedMatchesBatchRun) {
  const auto phi = parse_predicate("p", "x[1] > 0 && x[2] > 0");
  // A random-ish log with races and stale deliveries.
  ObservationLog log;
  log.num_processes = 3;
  log.updates.push_back(update(10, 1, "x", 1.0, {0, 1, 0}));
  log.updates.push_back(update(12, 2, "x", 1.0, {0, 0, 1}));  // race
  log.updates.push_back(update(20, 1, "x", 0.0, {0, 2, 1}));
  log.updates.push_back(update(25, 1, "x", 2.0, {0, 3, 1}));
  log.updates.push_back(update(26, 1, "x", 1.0, {0, 2, 0}));  // stale
  log.updates.push_back(update(30, 2, "x", 0.0, {0, 3, 2}));

  const auto batch = StrobeVectorDetector().run(log, phi);

  IncrementalStrobeVectorDetector incremental(phi);
  std::vector<Detection> streamed;
  for (std::size_t i = 0; i < log.updates.size(); ++i) {
    if (auto d = incremental.feed(log.updates[i], i)) streamed.push_back(*d);
  }
  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(streamed[i].to_true, batch[i].to_true);
    EXPECT_EQ(streamed[i].borderline, batch[i].borderline);
    EXPECT_EQ(streamed[i].update_index, batch[i].update_index);
    EXPECT_EQ(streamed[i].detected_at, batch[i].detected_at);
  }
}

TEST(IncrementalDetectorTest, HoldingTracksTruthValue) {
  const auto phi = parse_predicate("p", "x[1] > 0");
  IncrementalStrobeVectorDetector det(phi);
  EXPECT_FALSE(det.holding());
  det.feed(update(10, 1, "x", 5.0, {0, 1}), 0);
  EXPECT_TRUE(det.holding());
  det.feed(update(20, 1, "x", 0.0, {0, 2}), 1);
  EXPECT_FALSE(det.holding());
}

TEST(IncrementalDetectorTest, NoDetectionWithoutChange) {
  const auto phi = parse_predicate("p", "x[1] > 10");
  IncrementalStrobeVectorDetector det(phi);
  EXPECT_FALSE(det.feed(update(10, 1, "x", 1.0, {0, 1}), 0).has_value());
  EXPECT_FALSE(det.feed(update(20, 1, "x", 2.0, {0, 2}), 1).has_value());
  EXPECT_TRUE(det.feed(update(30, 1, "x", 11.0, {0, 3}), 2).has_value());
}

TEST(IncrementalDetectorTest, StaleFeedIsIgnored) {
  const auto phi = parse_predicate("p", "x[1] > 0");
  IncrementalStrobeVectorDetector det(phi);
  det.feed(update(10, 1, "x", 5.0, {0, 3}), 0);
  // Older stamp with a falsifying value: must not fire a transition.
  EXPECT_FALSE(det.feed(update(20, 1, "x", 0.0, {0, 2}), 1).has_value());
  EXPECT_TRUE(det.holding());
}

TEST(IncrementalDetectorTest, MoveSemanticsPreserveState) {
  const auto phi = parse_predicate("p", "x[1] > 0");
  IncrementalStrobeVectorDetector a(phi);
  a.feed(update(10, 1, "x", 5.0, {0, 1}), 0);
  IncrementalStrobeVectorDetector b = std::move(a);
  EXPECT_TRUE(b.holding());
  // The moved-to detector continues the stream seamlessly.
  const auto d = b.feed(update(20, 1, "x", 0.0, {0, 2}), 1);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->to_true);
  EXPECT_EQ(b.predicate().name(), "p");
}

TEST(IncrementalDetectorTest, ExpiredObservationsAreFlaggedStale) {
  const auto phi = parse_predicate("p", "x[1] > 0 && x[2] > 0");
  IncrementalStrobeVectorDetector det(phi);
  ValidityHorizon horizon;
  horizon.lifetime = Duration::millis(50);

  ReceivedUpdate first = update(10, 1, "x", 1.0, {0, 1, 0});
  first.validity = horizon;
  first.report.synced_timestamp = t(9);
  det.feed(first, 0);
  EXPECT_EQ(det.stale_observations(), 0u);

  // The second variable arrives 110 ms later: x[1]'s state expired at
  // 59 ms, so this evaluation reads expired state — it must be counted
  // stale and the resulting transition flagged borderline (the paper's
  // err-on-the-safe-side policy applied to temporal validity).
  ReceivedUpdate second = update(120, 2, "x", 1.0, {0, 1, 1});
  second.validity = horizon;
  second.report.synced_timestamp = t(119);
  const auto d = det.feed(second, 1);
  EXPECT_EQ(det.stale_observations(), 1u);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->to_true);
  EXPECT_TRUE(d->borderline);
}

TEST(IncrementalDetectorTest, UnboundedHorizonNeverCountsStale) {
  const auto phi = parse_predicate("p", "x[1] > 0 && x[2] > 0");
  IncrementalStrobeVectorDetector det(phi);
  // Default ReceivedUpdate::validity is unbounded: arbitrarily old state
  // stays valid and nothing is flagged.
  det.feed(update(10, 1, "x", 1.0, {0, 1, 0}), 0);
  det.feed(update(100000, 2, "x", 1.0, {0, 1, 1}), 1);
  EXPECT_EQ(det.stale_observations(), 0u);
}

TEST(IncrementalDetectorTest, RandomLogStreamBatchEquivalence) {
  // Property: for random logs, fold(feed) == batch, always.
  const auto phi = parse_predicate("p", "sum(x) > 5");
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    ObservationLog log;
    log.num_processes = 4;
    std::vector<std::uint64_t> counts(4, 0);
    for (int i = 0; i < 80; ++i) {
      const auto pid = static_cast<ProcessId>(rng.uniform_int(1, 3));
      counts[pid]++;
      std::vector<std::uint64_t> stamp(4, 0);
      for (std::size_t k = 0; k < 4; ++k) {
        // Partially merged knowledge: anywhere from 0 to the true count.
        stamp[k] = static_cast<std::uint64_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(counts[k])));
      }
      stamp[pid] = counts[pid];  // own component exact
      log.updates.push_back(update(10 * (i + 1), pid, "x",
                                   rng.uniform(0.0, 4.0), std::move(stamp)));
    }
    const auto batch = StrobeVectorDetector().run(log, phi);
    IncrementalStrobeVectorDetector inc(phi);
    std::vector<Detection> streamed;
    for (std::size_t i = 0; i < log.updates.size(); ++i) {
      if (auto d = inc.feed(log.updates[i], i)) streamed.push_back(*d);
    }
    ASSERT_EQ(streamed.size(), batch.size()) << "seed " << seed;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(streamed[i].update_index, batch[i].update_index);
      EXPECT_EQ(streamed[i].borderline, batch[i].borderline);
    }
  }
}

}  // namespace
}  // namespace psn::core
