#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/sensing.hpp"

namespace psn::core {
namespace {

TEST(SensingMapTest, AssignAndLookup) {
  SensingMap map;
  map.assign(3, "temp", 1);
  map.assign(3, "hum", 2);
  map.assign(4, "temp", 1);
  EXPECT_EQ(map.sensor_of(3, "temp"), 1u);
  EXPECT_EQ(map.sensor_of(3, "hum"), 2u);
  EXPECT_EQ(map.sensor_of(4, "temp"), 1u);
  EXPECT_EQ(map.sensor_of(9, "temp"), kNoProcess);
  EXPECT_EQ(map.sensor_of(3, "pressure"), kNoProcess);
  EXPECT_TRUE(map.is_assigned(3, "temp"));
  EXPECT_FALSE(map.is_assigned(3, "pressure"));
  EXPECT_EQ(map.assignments().size(), 3u);
}

TEST(SensingMapTest, VarOfBuildsPaperSubscript) {
  SensingMap map;
  map.assign(0, "entered", 5);
  const VarRef v = map.var_of(0, "entered");
  EXPECT_EQ(v.pid, 5u);
  EXPECT_EQ(v.name, "entered");
  EXPECT_EQ(v.to_string(), "entered[5]");
  EXPECT_THROW(map.var_of(0, "exited"), InvariantError);
}

TEST(SensingMapTest, DoubleAssignmentRejected) {
  SensingMap map;
  map.assign(1, "x", 1);
  EXPECT_THROW(map.assign(1, "x", 2), InvariantError);
  EXPECT_THROW(map.assign(2, "y", kNoProcess), InvariantError);
}

TEST(VarRefTest, OrderingIsByPidThenName) {
  const VarRef a{1, "a"}, b{1, "b"}, c{2, "a"};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (VarRef{1, "a"}));
}

TEST(EventTypeTest, Names) {
  EXPECT_STREQ(to_string(EventType::kCompute), "compute");
  EXPECT_STREQ(to_string(EventType::kSense), "sense");
  EXPECT_STREQ(to_string(EventType::kActuate), "actuate");
  EXPECT_STREQ(to_string(EventType::kSend), "send");
  EXPECT_STREQ(to_string(EventType::kReceive), "receive");
}

TEST(LogLevelTest, ThresholdFilters) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold statements are skipped (their stream expressions never
  // run — verified by the side effect).
  int evaluations = 0;
  auto touch = [&]() {
    evaluations++;
    return "x";
  };
  PSN_WARN << touch();
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::kDebug);
  PSN_WARN << touch();
  EXPECT_EQ(evaluations, 1);
  set_log_level(before);
}

}  // namespace
}  // namespace psn::core
