#include "core/online_monitor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/predicate_parser.hpp"

namespace psn::core {
namespace {

using namespace psn::time_literals;

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

struct LoopFixture {
  explicit LoopFixture(Duration delta = Duration::millis(20),
                       std::uint64_t seed = 1) {
    SystemConfig sys;
    sys.num_sensors = 2;
    sys.sim.seed = seed;
    sys.sim.horizon = SimTime::zero() + 60_s;
    sys.delay_kind = DelayKind::kFixed;
    sys.delta = delta;
    system = std::make_unique<PervasiveSystem>(sys);

    room = system->world().create_object("room");
    system->world().object(room).set_attribute("temp", 22.0);
    hall = system->world().create_object("hall");
    system->world().object(hall).set_attribute("motion", false);
    system->assign(room, "temp", 1);
    system->assign(hall, "motion", 2);
  }

  std::unique_ptr<PervasiveSystem> system;
  world::ObjectId room = world::kNoObject;
  world::ObjectId hall = world::kNoObject;
};

ActuationRule thermostat_rule(const LoopFixture& f) {
  ActuationRule rule;
  rule.on_rising_edge = true;
  rule.actuator = 1;
  rule.object = f.room;
  rule.attribute = "temp";
  rule.value = world::AttributeValue(25.0);
  rule.command = "reset_thermostat";
  return rule;
}

TEST(OnlineMonitorTest, DetectsTransitionsLive) {
  LoopFixture f;
  OnlineMonitor monitor(*f.system,
                        parse_predicate("hot", "temp[1] > 30 && motion[2]"));
  auto& sched = f.system->sim().scheduler();
  sched.schedule_at(t(100), [&] { f.system->world().emit(f.hall, "motion", true); });
  sched.schedule_at(t(200), [&] { f.system->world().emit(f.room, "temp", 32.0); });
  sched.schedule_at(t(400), [&] { f.system->world().emit(f.room, "temp", 24.0); });
  f.system->run();

  ASSERT_EQ(monitor.detections().size(), 2u);
  EXPECT_TRUE(monitor.detections()[0].to_true);
  EXPECT_FALSE(monitor.detections()[1].to_true);
  // Online detections match the offline detector on the same log.
  const auto offline = StrobeVectorDetector().run(
      f.system->log(), parse_predicate("hot", "temp[1] > 30 && motion[2]"));
  ASSERT_EQ(offline.size(), 2u);
  EXPECT_EQ(offline[0].cause_true_time,
            monitor.detections()[0].cause_true_time);
}

TEST(OnlineMonitorTest, ClosedLoopActuationChangesWorld) {
  LoopFixture f;
  OnlineMonitor monitor(*f.system,
                        parse_predicate("hot", "temp[1] > 30 && motion[2]"),
                        {thermostat_rule(f)});
  auto& sched = f.system->sim().scheduler();
  sched.schedule_at(t(100), [&] { f.system->world().emit(f.hall, "motion", true); });
  sched.schedule_at(t(200), [&] { f.system->world().emit(f.room, "temp", 32.0); });
  f.system->run();

  // The loop acted: command issued, a-event applied, temperature reset, and
  // (because the reset is itself sensed) the predicate fell again.
  ASSERT_EQ(monitor.actuations().size(), 1u);
  EXPECT_DOUBLE_EQ(
      f.system->world().object(f.room).attribute("temp").as_double(), 25.0);
  ASSERT_EQ(monitor.detections().size(), 2u);
  EXPECT_FALSE(monitor.detections()[1].to_true);

  // The actuator recorded an a-event.
  bool saw_actuate = false;
  for (const auto& e : *f.system->sensor_executions()[0]) {
    saw_actuate |= e.type == EventType::kActuate;
  }
  EXPECT_TRUE(saw_actuate);
}

TEST(OnlineMonitorTest, ActuationLatencyIsSenseToApply) {
  const Duration delta = Duration::millis(20);
  LoopFixture f(delta);
  OnlineMonitor monitor(*f.system,
                        parse_predicate("hot", "temp[1] > 30 && motion[2]"),
                        {thermostat_rule(f)});
  auto& sched = f.system->sim().scheduler();
  sched.schedule_at(t(100), [&] { f.system->world().emit(f.hall, "motion", true); });
  sched.schedule_at(t(200), [&] { f.system->world().emit(f.room, "temp", 32.0); });
  f.system->run();

  const auto latencies = monitor.actuation_latencies();
  ASSERT_EQ(latencies.size(), 1u);
  // Fixed delays: sense→root (Δ) + root→actuator (Δ) = 2Δ exactly.
  EXPECT_EQ(latencies[0], delta * 2);
}

TEST(OnlineMonitorTest, EveryOccurrenceActuated) {
  LoopFixture f;
  OnlineMonitor monitor(*f.system,
                        parse_predicate("hot", "temp[1] > 30 && motion[2]"),
                        {thermostat_rule(f)});
  auto& sched = f.system->sim().scheduler();
  sched.schedule_at(t(50), [&] { f.system->world().emit(f.hall, "motion", true); });
  // The heater keeps pushing the temperature up; each spike must trigger a
  // fresh reset (the paper's "reset thermostat EACH time" requirement).
  constexpr int kSpikes = 8;
  for (int k = 0; k < kSpikes; ++k) {
    sched.schedule_at(t(200 + 500 * k), [&] {
      f.system->world().emit(f.room, "temp", 33.0);
    });
  }
  f.system->run();

  EXPECT_EQ(monitor.actuations().size(), kSpikes);
  EXPECT_EQ(monitor.actuation_latencies().size(), kSpikes);
  // Thermostat ends at the reset value.
  EXPECT_DOUBLE_EQ(
      f.system->world().object(f.room).attribute("temp").as_double(), 25.0);
}

TEST(OnlineMonitorTest, FallingEdgeRule) {
  LoopFixture f;
  ActuationRule rule = thermostat_rule(f);
  rule.on_rising_edge = false;
  rule.attribute = "lights";
  rule.value = world::AttributeValue(false);
  rule.command = "lights_off";
  OnlineMonitor monitor(*f.system,
                        parse_predicate("occ", "motion[2]"), {rule});
  auto& sched = f.system->sim().scheduler();
  sched.schedule_at(t(100), [&] { f.system->world().emit(f.hall, "motion", true); });
  sched.schedule_at(t(300), [&] { f.system->world().emit(f.hall, "motion", false); });
  f.system->run();

  ASSERT_EQ(monitor.actuations().size(), 1u);
  EXPECT_FALSE(
      f.system->world().object(f.room).attribute("lights").as_bool());
}

TEST(OnlineMonitorTest, BorderlinePolicyRespected) {
  // With fire_on_borderline = false, borderline transitions must not
  // actuate. Force a race: zero-initialized strobes and two concurrent
  // sensed events under a large delay.
  LoopFixture f(Duration::millis(500), 3);
  ActuationRule rule = thermostat_rule(f);
  rule.fire_on_borderline = false;
  OnlineMonitor monitor(*f.system,
                        parse_predicate("hot", "temp[1] > 30 && motion[2]"),
                        {rule});
  auto& sched = f.system->sim().scheduler();
  // Concurrent (within Δ) updates → the rising transition is borderline.
  sched.schedule_at(t(100), [&] { f.system->world().emit(f.room, "temp", 32.0); });
  sched.schedule_at(t(101), [&] { f.system->world().emit(f.hall, "motion", true); });
  f.system->run();

  ASSERT_GE(monitor.detections().size(), 1u);
  EXPECT_TRUE(monitor.detections()[0].borderline);
  EXPECT_TRUE(monitor.actuations().empty());
}

TEST(OnlineMonitorTest, RuleValidation) {
  LoopFixture f;
  ActuationRule bad = thermostat_rule(f);
  bad.actuator = 0;  // the root cannot actuate
  EXPECT_THROW(OnlineMonitor(*f.system,
                             parse_predicate("p", "temp[1] > 30"), {bad}),
               InvariantError);
}

}  // namespace
}  // namespace psn::core
