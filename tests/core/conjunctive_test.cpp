#include "core/conjunctive.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/predicate_parser.hpp"

namespace psn::core {
namespace {

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

struct ViewBuilder {
  explicit ViewBuilder(std::vector<ProcessId> pids)
      : pids_(std::move(pids)), events_(pids_.size()) {}

  ViewBuilder& event(std::size_t process, std::vector<std::uint64_t> stamp,
                     const std::string& var, double value, std::int64_t ms) {
    ExecutionView::Event e;
    e.stamp = clocks::VectorStamp(std::move(stamp));
    e.has_var = true;
    e.var = VarRef{pids_[process], var};
    e.value = value;
    e.when = t(ms);
    events_[process].push_back(std::move(e));
    return *this;
  }

  ExecutionView build() { return ExecutionView(pids_, events_); }

  std::vector<ProcessId> pids_;
  std::vector<std::vector<ExecutionView::Event>> events_;
};

TEST(LocalIntervalsTest, ExtractsTrueRuns) {
  ViewBuilder b({1});
  b.event(0, {0, 1}, "x", 1.0, 10);   // conjunct true
  b.event(0, {0, 2}, "x", 0.0, 20);   // false
  b.event(0, {0, 3}, "x", 2.0, 30);   // true again, open-ended
  const auto view = b.build();
  const auto intervals = WeakConjunctiveDetector::local_intervals(
      view, 0, parse_expr("x[1] > 0"));
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0].begin_time, t(10));
  ASSERT_TRUE(intervals[0].end_time.has_value());
  EXPECT_EQ(*intervals[0].end_time, t(20));
  EXPECT_EQ(intervals[1].begin_time, t(30));
  EXPECT_FALSE(intervals[1].end_time.has_value());  // open at horizon
}

TEST(LocalIntervalsTest, RejectsConjunctTrueOnEmptyState) {
  ViewBuilder b({1});
  b.event(0, {0, 1}, "x", 1.0, 10);
  const auto view = b.build();
  EXPECT_THROW(WeakConjunctiveDetector::local_intervals(
                   view, 0, parse_expr("x[1] < 5")),
               InvariantError);
}

TEST(WeakConjunctiveTest, ConcurrentIntervalsMatch) {
  // P1's x>0 interval and P2's y>0 interval are concurrent (no causal order
  // between them): Possibly(x>0 && y>0) must be detected.
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0, 10);
  b.event(1, {0, 0, 1}, "y", 1.0, 12);
  const auto matches = WeakConjunctiveDetector().run(
      b.build(), parse_predicate("p", "x[1] > 0 && y[2] > 0"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].intervals.size(), 2u);
  EXPECT_EQ(matches[0].window_begin, t(12));
}

TEST(WeakConjunctiveTest, SequentialIntervalsDoNotMatch) {
  // P1's interval ends (causally) before P2's begins: no common cut.
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0, 10);  // x>0 begins
  b.event(0, {0, 2, 0}, "x", 0.0, 20);  // x>0 ends, stamp [0,2,0]
  // P2's y>0 begins knowing P1's end (stamp dominates [0,2,0]).
  b.event(1, {0, 2, 1}, "y", 1.0, 30);
  const auto matches = WeakConjunctiveDetector().run(
      b.build(), parse_predicate("p", "x[1] > 0 && y[2] > 0"));
  EXPECT_TRUE(matches.empty());
}

TEST(WeakConjunctiveTest, EliminationFindsLaterInterval) {
  // P1's first interval precedes P2's interval, but P1's *second* interval
  // overlaps it: GW must skip the first and match the second.
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0, 10);
  b.event(0, {0, 2, 0}, "x", 0.0, 20);   // first interval closed
  b.event(1, {0, 2, 1}, "y", 1.0, 30);   // y-interval knows that closure
  b.event(0, {0, 3, 1}, "x", 5.0, 40);   // second x-interval, concurrent-ish
  const auto matches = WeakConjunctiveDetector().run(
      b.build(), parse_predicate("p", "x[1] > 0 && y[2] > 0"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].window_begin, t(40));
}

TEST(WeakConjunctiveTest, EveryOccurrenceReported) {
  // Two disjoint co-occurrences must yield two matches (not "detect once and
  // hang", paper §3.3).
  ViewBuilder b({1, 2});
  // First co-occurrence.
  b.event(0, {0, 1, 0}, "x", 1.0, 10);
  b.event(1, {0, 0, 1}, "y", 1.0, 11);
  b.event(0, {0, 2, 1}, "x", 0.0, 20);
  b.event(1, {0, 2, 2}, "y", 0.0, 21);
  // Second co-occurrence.
  b.event(0, {0, 3, 2}, "x", 1.0, 30);
  b.event(1, {0, 3, 3}, "y", 1.0, 31);
  const auto matches = WeakConjunctiveDetector().run(
      b.build(), parse_predicate("p", "x[1] > 0 && y[2] > 0"));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].window_begin, t(11));
  EXPECT_EQ(matches[1].window_begin, t(31));
}

TEST(WeakConjunctiveTest, UninvolvedProcessDoesNotConstrain) {
  // The predicate only mentions P1; P2's execution is irrelevant.
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0, 10);
  b.event(1, {0, 0, 1}, "z", 9.0, 15);
  const auto matches = WeakConjunctiveDetector().run(
      b.build(), parse_predicate("p", "x[1] > 0"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].intervals.size(), 1u);
}

TEST(WeakConjunctiveTest, NoIntervalsNoMatch) {
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0, 10);
  // P2 never satisfies its conjunct.
  b.event(1, {0, 0, 1}, "y", 0.0, 15);
  const auto matches = WeakConjunctiveDetector().run(
      b.build(), parse_predicate("p", "x[1] > 0 && y[2] > 0"));
  EXPECT_TRUE(matches.empty());
}

TEST(WeakConjunctiveTest, RequiresConjunctivePredicate) {
  ViewBuilder b({1, 2});
  b.event(0, {0, 1, 0}, "x", 1.0, 10);
  EXPECT_THROW(WeakConjunctiveDetector().run(
                   b.build(), parse_predicate("p", "x[1] + y[2] > 7")),
               InvariantError);
}

}  // namespace
}  // namespace psn::core
