#include "core/consensus.hpp"

#include <gtest/gtest.h>

#include "analysis/scoring.hpp"
#include "common/error.hpp"
#include "core/oracle.hpp"
#include "core/predicate_parser.hpp"
#include "world/generators.hpp"

namespace psn::core {
namespace {

using namespace psn::time_literals;

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

struct ConsensusFixture {
  explicit ConsensusFixture(Duration delta, std::uint64_t seed = 1) {
    SystemConfig sys;
    sys.num_sensors = 2;
    sys.sim.seed = seed;
    sys.sim.horizon = SimTime::zero() + 60_s;
    sys.delta = delta;
    system = std::make_unique<PervasiveSystem>(sys);
    enable_all_observers(*system);

    o1 = system->world().create_object("o1");
    o2 = system->world().create_object("o2");
    system->world().object(o1).set_attribute("x", std::int64_t{0});
    system->world().object(o2).set_attribute("x", std::int64_t{0});
    system->assign(o1, "x", 1);
    system->assign(o2, "x", 2);
  }

  std::unique_ptr<PervasiveSystem> system;
  world::ObjectId o1 = world::kNoObject;
  world::ObjectId o2 = world::kNoObject;
};

TEST(ConsensusTest, ObserverLogsCollected) {
  ConsensusFixture f(10_ms);
  const auto logs = ConsensusStrobeDetector::observer_logs(*f.system);
  EXPECT_EQ(logs.size(), 3u);  // root + 2 sensors
}

TEST(ConsensusTest, SensorsLogOwnAndRemoteReports) {
  ConsensusFixture f(10_ms);
  auto& sched = f.system->sim().scheduler();
  sched.schedule_at(t(100), [&] { f.system->world().emit(f.o1, "x", std::int64_t{1}); });
  sched.schedule_at(t(200), [&] { f.system->world().emit(f.o2, "x", std::int64_t{1}); });
  f.system->run();
  // Each sensor logs its own sense (instantly) plus the other's strobe.
  EXPECT_EQ(f.system->sensor(1).observation_log().updates.size(), 2u);
  EXPECT_EQ(f.system->sensor(2).observation_log().updates.size(), 2u);
  // Own report is logged at the sense instant.
  EXPECT_EQ(f.system->sensor(1).observation_log().updates[0].delivered_at,
            t(100));
}

TEST(ConsensusTest, WellSeparatedEventsAreUnanimous) {
  ConsensusFixture f(10_ms);
  auto& sched = f.system->sim().scheduler();
  // Events far apart (≫ Δ): every observer sees the same order.
  sched.schedule_at(t(100), [&] { f.system->world().emit(f.o1, "x", std::int64_t{1}); });
  sched.schedule_at(t(500), [&] { f.system->world().emit(f.o2, "x", std::int64_t{1}); });
  sched.schedule_at(t(900), [&] { f.system->world().emit(f.o1, "x", std::int64_t{0}); });
  f.system->run();

  const auto phi = parse_predicate("p", "x[1] > 0 && x[2] > 0");
  const auto logs = ConsensusStrobeDetector::observer_logs(*f.system);
  const auto detections = ConsensusStrobeDetector().run(logs, phi);
  ASSERT_EQ(detections.size(), 2u);
  for (const auto& d : detections) {
    EXPECT_FALSE(d.borderline) << "unraced transition flagged borderline";
  }
}

TEST(ConsensusTest, RacingEventsDisagreeSomewhere) {
  // Two sensors sense "simultaneously" (within Δ). Sensor 1 sees its own
  // event at once but sensor 2's only after the delay — and vice versa —
  // so their assembled orders differ and consensus must flag the
  // transition.
  ConsensusFixture f(200_ms);
  auto& sched = f.system->sim().scheduler();
  sched.schedule_at(t(500), [&] { f.system->world().emit(f.o1, "x", std::int64_t{1}); });
  sched.schedule_at(t(501), [&] { f.system->world().emit(f.o2, "x", std::int64_t{1}); });
  f.system->run();

  const auto phi = parse_predicate("p", "x[1] > 0 && x[2] > 0");
  const auto logs = ConsensusStrobeDetector::observer_logs(*f.system);
  const auto detections = ConsensusStrobeDetector().run(logs, phi);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_TRUE(detections[0].to_true);
  EXPECT_TRUE(detections[0].borderline);
}

TEST(ConsensusTest, RequiresAtLeastTwoObservers) {
  ConsensusFixture f(10_ms);
  const auto phi = parse_predicate("p", "x[1] > 0");
  EXPECT_THROW(
      ConsensusStrobeDetector().run({&f.system->log()}, phi),
      InvariantError);
}

class ConsensusPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ConsensusPropertyTest, ConsensusBorderlineCoversErrors) {
  // On a busy run, score the consensus detector like any other: its
  // confident detections should have precision at least as good as the
  // single-observer vector detector, because disagreement catches races the
  // stamp heuristic can miss.
  SystemConfig sys;
  sys.num_sensors = 3;
  sys.sim.seed = GetParam();
  sys.sim.horizon = SimTime::zero() + 60_s;
  sys.delta = 120_ms;
  PervasiveSystem system(sys);
  enable_all_observers(system);

  std::vector<std::unique_ptr<world::AttributeDriver>> drivers;
  for (ProcessId pid = 1; pid <= 3; ++pid) {
    const auto obj = system.world().create_object("o" + std::to_string(pid));
    system.world().object(obj).set_attribute("count", std::int64_t{0});
    system.assign(obj, "count", pid);
    drivers.push_back(std::make_unique<world::AttributeDriver>(
        system.world(), obj, "count",
        std::make_unique<world::PoissonArrivals>(4.0),
        std::make_unique<world::CounterValue>(),
        system.sim().rng_for("drv", pid)));
    drivers.back()->start();
  }
  system.run();

  const auto phi = parse_predicate("p", "sum(count) > 300");
  const GroundTruthOracle oracle(phi, system.sensing());
  const auto truth =
      oracle.evaluate(system.timeline(), SimTime::zero() + 60_s);

  analysis::ScoreConfig score_cfg;
  score_cfg.tolerance = 300_ms;
  const auto logs = ConsensusStrobeDetector::observer_logs(system);
  const auto consensus_dets = ConsensusStrobeDetector().run(logs, phi);
  const auto single_dets = StrobeVectorDetector().run(system.log(), phi);

  const auto consensus =
      analysis::score_detections(truth, consensus_dets, score_cfg);
  const auto single =
      analysis::score_detections(truth, single_dets, score_cfg);

  EXPECT_GE(consensus.precision(), single.precision() - 1e-9);
  // Consensus does not invent or drop transitions — only re-labels them.
  EXPECT_EQ(consensus_dets.size(), single_dets.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsensusPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace psn::core
