#include "analysis/scoring.hpp"

#include <gtest/gtest.h>

namespace psn::analysis {
namespace {

using namespace psn::time_literals;

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

core::OracleResult oracle_with_starts(std::initializer_list<std::int64_t> ms) {
  core::OracleResult r;
  for (const auto m : ms) {
    r.occurrences.push_back({t(m), t(m + 50)});
    r.transitions.push_back({t(m), true, 0});
    r.transitions.push_back({t(m + 50), false, 0});
  }
  return r;
}

core::Detection became_true(std::int64_t cause_ms, std::int64_t detect_ms,
                            bool borderline = false) {
  core::Detection d;
  d.to_true = true;
  d.borderline = borderline;
  d.cause_true_time = t(cause_ms);
  d.detected_at = t(detect_ms);
  return d;
}

ScoreConfig tol(std::int64_t ms) {
  ScoreConfig c;
  c.tolerance = Duration::millis(ms);
  return c;
}

TEST(ScoringTest, PerfectDetection) {
  const auto oracle = oracle_with_starts({100, 300, 500});
  std::vector<core::Detection> dets = {
      became_true(100, 120), became_true(300, 330), became_true(500, 540)};
  const auto s = score_detections(oracle, dets, tol(50));
  EXPECT_EQ(s.true_positives, 3u);
  EXPECT_EQ(s.false_positives, 0u);
  EXPECT_EQ(s.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(s.precision(), 1.0);
  EXPECT_DOUBLE_EQ(s.recall(), 1.0);
  EXPECT_DOUBLE_EQ(s.f1(), 1.0);
  // Latencies recorded for matched pairs.
  EXPECT_EQ(s.latency_s.count(), 3u);
  EXPECT_NEAR(s.latency_s.mean(), (0.020 + 0.030 + 0.040) / 3.0, 1e-9);
}

TEST(ScoringTest, MissAndGhost) {
  const auto oracle = oracle_with_starts({100, 300});
  // One correct, one spurious far from anything.
  std::vector<core::Detection> dets = {became_true(100, 110),
                                       became_true(900, 910)};
  const auto s = score_detections(oracle, dets, tol(50));
  EXPECT_EQ(s.true_positives, 1u);
  EXPECT_EQ(s.false_positives, 1u);
  EXPECT_EQ(s.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(s.precision(), 0.5);
  EXPECT_DOUBLE_EQ(s.recall(), 0.5);
}

TEST(ScoringTest, ToleranceBoundary) {
  const auto oracle = oracle_with_starts({100});
  const auto inside = score_detections(oracle, {became_true(150, 150)}, tol(50));
  EXPECT_EQ(inside.true_positives, 1u);
  const auto outside =
      score_detections(oracle, {became_true(151, 151)}, tol(50));
  EXPECT_EQ(outside.true_positives, 0u);
  EXPECT_EQ(outside.false_positives, 1u);
  EXPECT_EQ(outside.false_negatives, 1u);
}

TEST(ScoringTest, EachOccurrenceMatchedOnce) {
  const auto oracle = oracle_with_starts({100});
  // Two detections near the same occurrence: one TP, one FP.
  std::vector<core::Detection> dets = {became_true(100, 105),
                                       became_true(110, 115)};
  const auto s = score_detections(oracle, dets, tol(50));
  EXPECT_EQ(s.true_positives, 1u);
  EXPECT_EQ(s.false_positives, 1u);
}

TEST(ScoringTest, BorderlineCoversFalseNegative) {
  const auto oracle = oracle_with_starts({100, 300});
  // The first start gets only a borderline detection; the second a confident
  // one.
  std::vector<core::Detection> dets = {became_true(100, 105, true),
                                       became_true(300, 310)};
  const auto s = score_detections(oracle, dets, tol(50));
  EXPECT_EQ(s.true_positives, 1u);
  EXPECT_EQ(s.false_negatives, 1u);
  EXPECT_EQ(s.fn_covered_by_borderline, 1u);
  EXPECT_EQ(s.borderline_matched, 1u);
  EXPECT_EQ(s.borderline_unmatched, 0u);
  EXPECT_DOUBLE_EQ(s.recall(), 0.5);
  EXPECT_DOUBLE_EQ(s.recall_with_borderline(), 1.0);
}

TEST(ScoringTest, BorderlineGhostQuarantined) {
  const auto oracle = oracle_with_starts({100});
  // A borderline detection far from any occurrence is NOT a false positive —
  // the detector hedged, correctly.
  std::vector<core::Detection> dets = {became_true(100, 105),
                                       became_true(900, 905, true)};
  const auto s = score_detections(oracle, dets, tol(50));
  EXPECT_EQ(s.false_positives, 0u);
  EXPECT_EQ(s.borderline_unmatched, 1u);
}

TEST(ScoringTest, ConfidentMatchesTakePriorityOverBorderline) {
  const auto oracle = oracle_with_starts({100});
  std::vector<core::Detection> dets = {became_true(105, 110, true),
                                       became_true(100, 120)};
  const auto s = score_detections(oracle, dets, tol(50));
  EXPECT_EQ(s.true_positives, 1u);        // the confident one matched
  EXPECT_EQ(s.borderline_matched, 0u);    // borderline found nothing left
  EXPECT_EQ(s.borderline_unmatched, 1u);
}

TEST(ScoringTest, BecameFalseTransitionsIgnored) {
  const auto oracle = oracle_with_starts({100});
  core::Detection down;
  down.to_true = false;
  down.cause_true_time = t(100);
  down.detected_at = t(100);
  const auto s = score_detections(oracle, {down}, tol(50));
  EXPECT_EQ(s.confident_detections, 0u);
  EXPECT_EQ(s.false_negatives, 1u);
}

TEST(ScoringTest, EmptyEverything) {
  const auto s =
      score_detections(core::OracleResult{}, {}, tol(50));
  EXPECT_EQ(s.true_positives, 0u);
  EXPECT_DOUBLE_EQ(s.precision(), 1.0);
  EXPECT_DOUBLE_EQ(s.recall(), 1.0);
}

TEST(ScoringTest, AggregationSumsCounts) {
  DetectionScore a, b;
  a.true_positives = 2;
  a.oracle_occurrences = 3;
  a.latency_s.add(0.1);
  b.true_positives = 1;
  b.oracle_occurrences = 2;
  b.latency_s.add(0.3);
  a += b;
  EXPECT_EQ(a.true_positives, 3u);
  EXPECT_EQ(a.oracle_occurrences, 5u);
  EXPECT_EQ(a.latency_s.count(), 2u);
}

TEST(BeliefAccuracyTest, PerfectBeliefIsOne) {
  core::OracleResult oracle;
  oracle.transitions.push_back({t(100), true, 0});
  oracle.transitions.push_back({t(200), false, 0});
  std::vector<core::Detection> dets;
  core::Detection up = became_true(100, 100);
  core::Detection down;
  down.to_true = false;
  down.cause_true_time = t(200);
  down.detected_at = t(200);
  dets = {up, down};
  EXPECT_DOUBLE_EQ(belief_accuracy(oracle, dets, t(1000)), 1.0);
}

TEST(BeliefAccuracyTest, LatencyChargedWhenUsingDetectionTime) {
  core::OracleResult oracle;
  oracle.transitions.push_back({t(100), true, 0});
  // Detector reacts 100 ms late and never reports the falling edge.
  std::vector<core::Detection> dets = {became_true(100, 200)};
  const double acc = belief_accuracy(oracle, dets, t(1000), true);
  EXPECT_NEAR(acc, 0.9, 1e-9);
  const double acc_cause = belief_accuracy(oracle, dets, t(1000), false);
  EXPECT_NEAR(acc_cause, 1.0, 1e-9);
}

TEST(BeliefAccuracyTest, AlwaysWrongIsZero) {
  core::OracleResult oracle;
  oracle.transitions.push_back({t(0), true, 0});
  const double acc = belief_accuracy(oracle, {}, t(1000));
  EXPECT_DOUBLE_EQ(acc, 0.0);
}

TEST(BeliefAccuracyTest, NoSignalsPerfectAgreement) {
  EXPECT_DOUBLE_EQ(belief_accuracy(core::OracleResult{}, {}, t(1000)), 1.0);
}

}  // namespace
}  // namespace psn::analysis
