// Window-barrier stress (`ctest -L par`; CI repeats the label under
// -DPSN_SANITIZE=thread). Two layers:
//
//   1. The ShardedSimulation driver alone, fed a cancel-heavy workload —
//      every shard tick schedules a decoy and cancels it, the duty-cycle
//      wake re-plan pattern at full rate — across a real 8-thread pool,
//      with cross-shard traffic through the outbox exchange every window.
//      TSan's targets: the submit/future window barrier, the one-task-per-
//      shard scheduler confinement, and the driver-thread-only exchange.
//
//   2. The full sharded occupancy system at 8 shards × 8 pool threads
//      under unaligned duty cycling plus burst loss — run twice, artifacts
//      must match byte for byte (a data race that perturbs event order
//      shows up here as nondeterminism even when TSan is off).

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/export.hpp"
#include "common/sim_time.hpp"
#include "sim/scheduler.hpp"
#include "sim/sharded.hpp"
#include "sim/simulation.hpp"

namespace psn::analysis {
namespace {

// --- 1. driver-level cancel storm ------------------------------------------

struct StormShard {
  sim::Simulation* sim = nullptr;
  /// Outbox to the next shard (ring traffic): (arrival instant, payload).
  std::vector<std::pair<SimTime, std::uint64_t>>* outbox = nullptr;
  std::size_t remaining = 0;
  std::uint64_t fired = 0;
  std::uint64_t received = 0;

  void arm() {
    if (remaining == 0) return;
    --remaining;
    sim->scheduler().schedule_after(
        Duration::millis(1), sim::Scheduler::Callback([this] {
          ++fired;
          // The churn: plan a wake, immediately re-plan (cancel) it — twice.
          sim::Scheduler& sched = sim->scheduler();
          const sim::EventHandle a = sched.schedule_after(
              Duration::millis(3), sim::Scheduler::Callback([] {}));
          const sim::EventHandle b = sched.schedule_after(
              Duration::millis(7), sim::Scheduler::Callback([] {}));
          sched.cancel(a);
          sched.cancel(b);
          // Cross-shard send: arrives >= one window (5 ms) ahead, so the
          // conservative-lookahead contract holds.
          outbox->push_back({sched.now() + Duration::millis(5), fired});
          arm();
        }));
  }
};

struct StormTotals {
  std::uint64_t fired = 0;
  std::uint64_t received = 0;
  std::size_t events = 0;
  std::size_t windows = 0;

  bool operator==(const StormTotals& o) const {
    return fired == o.fired && received == o.received && events == o.events &&
           windows == o.windows;
  }
};

StormTotals run_cancel_storm(std::size_t shards, std::size_t pool_threads,
                             std::size_t ticks_per_shard) {
  std::vector<std::unique_ptr<sim::Simulation>> sims;
  std::vector<sim::Simulation*> raw;
  std::vector<std::vector<std::pair<SimTime, std::uint64_t>>> outboxes(shards);
  std::vector<StormShard> chains(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    sim::SimConfig cfg;
    sims.push_back(std::make_unique<sim::Simulation>(cfg));
    raw.push_back(sims.back().get());
    chains[s].sim = raw[s];
    chains[s].outbox = &outboxes[s];
    chains[s].remaining = ticks_per_shard;
    chains[s].arm();
  }

  sim::ShardedSimulation::Config cfg;
  cfg.window = Duration::millis(5);
  cfg.horizon = SimTime::zero() +
                Duration::millis(static_cast<std::int64_t>(ticks_per_shard) + 16);
  cfg.pool_threads = pool_threads;
  sim::ShardedSimulation driver(raw, cfg);

  const auto exchange = [&]() -> std::size_t {
    std::size_t moved = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      StormShard& dst = chains[(s + 1) % shards];  // ring traffic
      for (const auto& [at, payload] : outboxes[s]) {
        dst.sim->scheduler().schedule_at(
            at, payload, sim::Scheduler::Callback([&dst] { ++dst.received; }));
        ++moved;
      }
      outboxes[s].clear();
    }
    return moved;
  };

  StormTotals totals;
  totals.events = driver.run(exchange);
  totals.windows = driver.windows();
  for (const StormShard& c : chains) {
    totals.fired += c.fired;
    totals.received += c.received;
  }
  return totals;
}

TEST(ShardedStressTest, CancelStormAcrossWindowBarrierIsLosslessAndRepeatable) {
  const std::size_t kShards = 8;
  const std::size_t kTicks = 400;
  const StormTotals par = run_cancel_storm(kShards, 8, kTicks);
  // Every tick fired, every cross-shard send arrived, nothing double-ran.
  EXPECT_EQ(par.fired, kShards * kTicks);
  EXPECT_EQ(par.received, kShards * kTicks);
  EXPECT_GT(par.windows, kTicks / 5);
  // The pool must not change anything the serial driver would have done —
  // including the executed-event count (cancelled decoys never execute).
  const StormTotals serial = run_cancel_storm(kShards, 1, kTicks);
  EXPECT_TRUE(par == serial) << "pooled run diverged from inline run";
  // And a second pooled run must reproduce the first exactly.
  EXPECT_TRUE(run_cancel_storm(kShards, 8, kTicks) == par);
}

// --- 2. system-level duty churn at full fan-out -----------------------------

TEST(ShardedStressTest, DutyChurnSystemRunIsByteIdenticalAcrossRepeats) {
  OccupancyConfig cfg;
  cfg.doors = 16;
  cfg.horizon = Duration::seconds(8);
  cfg.trace_capacity = 1 << 18;
  cfg.loss_probability = 0.2;
  cfg.loss_windows.push_back({SimTime::zero() + Duration::seconds(2),
                              SimTime::zero() + Duration::seconds(3)});
  net::DutyCycle duty;
  duty.period = Duration::millis(20);
  duty.window = Duration::millis(10);
  cfg.duty_cycle = duty;
  cfg.duty_phases_aligned = false;
  cfg.shards = 8;
  cfg.shard_threads = 8;

  const OccupancyRunResult first = run_occupancy_experiment(cfg);
  ASSERT_EQ(first.trace_evicted, 0u);
  EXPECT_GT(first.shard_windows, 0u);
  const OccupancyRunResult second = run_occupancy_experiment(cfg);
  EXPECT_EQ(trace_jsonl(first.trace), trace_jsonl(second.trace));
  EXPECT_EQ(first.metrics.csv(), second.metrics.csv());
  ASSERT_EQ(first.outcomes.size(), second.outcomes.size());
  for (std::size_t i = 0; i < first.outcomes.size(); ++i) {
    EXPECT_EQ(detections_table(first.outcomes[i].detections).csv(),
              detections_table(second.outcomes[i].detections).csv())
        << first.outcomes[i].detector;
  }
}

}  // namespace
}  // namespace psn::analysis
