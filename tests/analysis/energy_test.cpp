#include "analysis/energy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::analysis {
namespace {

using namespace psn::time_literals;

TEST(EnergyModelTest, PerByteCosts) {
  EnergyModel m;
  EXPECT_DOUBLE_EQ(m.tx_nj(100), 170000.0);
  EXPECT_DOUBLE_EQ(m.rx_nj(100), 190000.0);
}

TEST(FleetEnergyTest, AlwaysOnIsDominatedByListening) {
  EnergyModel m;
  // 1 hour, 4 nodes, modest traffic, no duty cycling.
  const auto e = fleet_energy(m, Duration::seconds(3600), 4,
                              /*sent=*/100'000, /*recv=*/300'000,
                              std::nullopt);
  // Listening: ~4 × 3600 s × 56 mW ≈ 806 J ≫ tx+rx (< 1 J).
  EXPECT_GT(e.listen_mj, 700'000.0);
  EXPECT_LT(e.tx_mj + e.rx_mj, 1'000.0);
  EXPECT_DOUBLE_EQ(e.sleep_mj, 0.0);
  EXPECT_NEAR(e.total_mj(), e.listen_mj + e.tx_mj + e.rx_mj, 1e-6);
}

TEST(FleetEnergyTest, DutyCyclingSlashesListening) {
  EnergyModel m;
  net::DutyCycle dc;
  dc.period = 1000_ms;
  dc.window = 100_ms;  // 10% duty
  const auto on = fleet_energy(m, Duration::seconds(3600), 4, 100'000,
                               300'000, std::nullopt);
  const auto cycled = fleet_energy(m, Duration::seconds(3600), 4, 100'000,
                                   300'000, dc);
  EXPECT_NEAR(cycled.listen_mj / on.listen_mj, 0.1, 0.01);
  EXPECT_GT(cycled.sleep_mj, 0.0);
  // Sleep power is ~4 orders below listening: total drops ~10x.
  EXPECT_LT(cycled.total_mj(), on.total_mj() * 0.12);
}

TEST(FleetEnergyTest, ReceiveTimeDeductedFromListening) {
  EnergyModel m;
  m.listen_mw = 100.0;
  // 10 s, 1 node; 312500 bytes at 31250 B/s = 10 s of pure receiving:
  // listening time must collapse to ~0.
  const auto e = fleet_energy(m, Duration::seconds(10), 1, 0, 312'500,
                              std::nullopt);
  EXPECT_NEAR(e.listen_mj, 0.0, 1.0);
}

TEST(FleetEnergyTest, Validation) {
  EnergyModel m;
  EXPECT_THROW(fleet_energy(m, Duration::zero(), 1, 0, 0, std::nullopt),
               InvariantError);
  EXPECT_THROW(
      fleet_energy(m, Duration::seconds(1), 0, 0, 0, std::nullopt),
      InvariantError);
}

TEST(StrobeTrafficTest, LossReducesReceivedBytes) {
  net::MessageStats stats;
  auto& s = stats.of(net::MessageKind::kStrobe);
  s.sent = 100;
  s.delivered = 50;
  s.bytes_sent = 10'000;
  const auto t = strobe_traffic(stats);
  EXPECT_EQ(t.bytes_sent, 10'000u);
  EXPECT_EQ(t.bytes_received, 5'000u);
}

TEST(StrobeTrafficTest, EmptyStats) {
  net::MessageStats stats;
  const auto t = strobe_traffic(stats);
  EXPECT_EQ(t.bytes_sent, 0u);
  EXPECT_EQ(t.bytes_received, 0u);
}

}  // namespace
}  // namespace psn::analysis
