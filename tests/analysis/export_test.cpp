#include "analysis/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace psn::analysis {
namespace {

using namespace psn::time_literals;

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

TEST(ExportTest, TimelineTable) {
  world::WorldTimeline timeline;
  world::WorldEvent ev;
  ev.when = t(1500);
  ev.object = 2;
  ev.attribute = "entered";
  ev.value = world::AttributeValue(std::int64_t{7});
  timeline.append(ev);
  world::WorldEvent induced = ev;
  induced.when = t(1600);
  induced.object = 3;
  induced.covert_cause = 0;
  timeline.append(induced);

  const Table table = timeline_table(timeline);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.at(0, 0), "1.5");
  EXPECT_EQ(table.at(0, 2), "entered");
  EXPECT_EQ(table.at(0, 4), "-1");
  EXPECT_EQ(table.at(1, 4), "0");
}

TEST(ExportTest, ObservationTableCarriesStamps) {
  core::ObservationLog log;
  log.num_processes = 2;
  core::ReceivedUpdate u;
  u.delivered_at = t(205);
  u.reporter = 1;
  u.report.attribute = "x";
  u.report.value = world::AttributeValue(true);
  u.report.true_sense_time = t(200);
  u.report.strobe_scalar = {4, 1};
  u.report.strobe_vector = clocks::VectorStamp({0, 4});
  log.updates.push_back(u);

  const Table table = observation_table(log);
  EXPECT_EQ(table.at(0, 0), "0.205");
  EXPECT_EQ(table.at(0, 3), "true");
  EXPECT_EQ(table.at(0, 5), "4@1");
  EXPECT_EQ(table.at(0, 6), "[0,4]");
}

TEST(ExportTest, DetectionsTable) {
  std::vector<core::Detection> dets;
  core::Detection d;
  d.detected_at = t(300);
  d.to_true = true;
  d.borderline = true;
  d.cause_true_time = t(250);
  d.update_index = 9;
  dets.push_back(d);
  const Table table = detections_table(dets);
  EXPECT_EQ(table.at(0, 1), "1");
  EXPECT_EQ(table.at(0, 2), "1");
  EXPECT_EQ(table.at(0, 4), "9");
}

TEST(ExportTest, OccurrencesTable) {
  core::OracleResult oracle;
  oracle.occurrences.push_back({t(100), t(350)});
  const Table table = occurrences_table(oracle);
  EXPECT_EQ(table.at(0, 0), "0.1");
  EXPECT_EQ(table.at(0, 2), "0.25");
}

TEST(ExportTest, CsvRoundTripThroughFile) {
  core::OracleResult oracle;
  oracle.occurrences.push_back({t(100), t(350)});
  oracle.occurrences.push_back({t(500), t(900)});
  const Table table = occurrences_table(oracle);

  const std::string path = "/tmp/psn_export_roundtrip_test.csv";
  table.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string contents = buf.str();
  EXPECT_EQ(contents, table.csv());
  EXPECT_EQ(std::count(contents.begin(), contents.end(), '\n'), 3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace psn::analysis
