// End-to-end checks of the observability layer (label: obs): the per-run
// event trace must reconcile exactly with the transport's MessageStats under
// every wire clock mode, and the metric snapshot must agree with both.

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

#include "analysis/experiments.hpp"
#include "analysis/export.hpp"
#include "net/message.hpp"
#include "sim/trace.hpp"

namespace psn::analysis {
namespace {

OccupancyConfig traced_base(net::ClockMode mode) {
  OccupancyConfig cfg;
  cfg.doors = 3;
  cfg.capacity = 50;
  cfg.movement_rate = 10.0;
  cfg.delta = Duration::millis(50);
  cfg.horizon = Duration::seconds(10);
  cfg.seed = 11;
  cfg.clock_mode = mode;
  cfg.trace_capacity = 1 << 20;  // large enough that nothing is evicted
  return cfg;
}

class TraceReconciliationTest
    : public ::testing::TestWithParam<net::ClockMode> {};

TEST_P(TraceReconciliationTest, SendRecordsMatchMessageStatsExactly) {
  const net::ClockMode mode = GetParam();
  const OccupancyRunResult run = run_occupancy_experiment(traced_base(mode));
  ASSERT_EQ(run.trace_evicted, 0u) << "trace ring too small for this run";
  ASSERT_FALSE(run.trace.empty());

  // Per-kind sent counts and byte totals recomputed from the trace alone.
  for (const net::MessageKind kind :
       {net::MessageKind::kComputation, net::MessageKind::kStrobe,
        net::MessageKind::kSync, net::MessageKind::kActuation}) {
    std::size_t sends = 0, bytes = 0, drops = 0, delivers = 0;
    for (const sim::TraceRecord& r : run.trace) {
      if (r.message_kind != static_cast<int>(kind)) continue;
      if (r.kind == sim::TraceKind::kSend) {
        sends++;
        bytes += r.bytes;
      } else if (r.kind == sim::TraceKind::kDrop) {
        drops++;
      } else if (r.kind == sim::TraceKind::kDeliver) {
        delivers++;
      }
    }
    const auto& ks = run.message_stats.of(kind);
    EXPECT_EQ(sends, ks.sent) << net::to_string(kind);
    EXPECT_EQ(bytes, ks.bytes_sent) << net::to_string(kind);
    EXPECT_EQ(drops, ks.dropped) << net::to_string(kind);
    EXPECT_EQ(delivers, ks.delivered) << net::to_string(kind);
  }

  // The shadow per-mode total for the *active* mode must equal what was
  // actually charged for strobes.
  EXPECT_EQ(run.message_stats.strobe_mode_bytes.of(mode),
            run.message_stats.of(net::MessageKind::kStrobe).bytes_sent);

  // The metric snapshot agrees with the aggregate stats.
  EXPECT_EQ(run.metrics.counters.at("net.sent"),
            run.message_stats.total_sent());
  EXPECT_EQ(run.metrics.counters.at("net.bytes_sent"),
            run.message_stats.total_bytes());
}

TEST(TraceReconciliationTest, PerCauseDropCountersMatchTraceRecords) {
  // Satellite of the fault layer (DESIGN.md §15): every transport drop is
  // tallied under exactly one cause, and each per-cause counter must equal
  // the count of trace records carrying that cause annotation.
  OccupancyConfig cfg = traced_base(net::ClockMode::kVectorStrobe);
  cfg.loss_probability = 0.2;
  // Star overlay so the cut root edge is genuinely unroutable (a complete
  // overlay would just route around it and never record a partition drop).
  cfg.topology = core::TopologyKind::kStar;
  cfg.faults = sim::parse_fault_plan("crash:2@2+3;cut:0-3@6+2");
  cfg.duty_cycle = net::DutyCycle{Duration::millis(200),
                                  Duration::millis(60), Duration::zero()};
  const OccupancyRunResult run = run_occupancy_experiment(cfg);
  ASSERT_EQ(run.trace_evicted, 0u);

  std::size_t loss = 0, crashed = 0, duty = 0, partition = 0;
  for (const sim::TraceRecord& r : run.trace) {
    if (r.kind == sim::TraceKind::kDrop) {
      if (r.note == "crash") {
        crashed++;
      } else if (r.note == "duty-cycle") {
        duty++;
      } else {
        loss++;
      }
    } else if (r.kind == sim::TraceKind::kUnreachable &&
               r.note == "partition") {
      partition++;
    }
  }
  EXPECT_EQ(run.metrics.counters.at("net.drops.loss"), loss);
  EXPECT_EQ(run.metrics.counters.at("net.drops.crashed_dst"), crashed);
  EXPECT_EQ(run.metrics.counters.at("net.drops.duty_cycle"), duty);
  EXPECT_EQ(run.metrics.counters.at("net.drops.partition"), partition);
  // The config injects enough of each for the interesting causes to be
  // exercised, and the causes partition the aggregate drop total.
  EXPECT_GT(loss, 0u);
  EXPECT_GT(crashed, 0u);
  EXPECT_GT(partition, 0u);
  EXPECT_EQ(loss + crashed + duty,
            static_cast<std::size_t>(
                run.metrics.counters.at("net.dropped")));
}

TEST(MetricsResultTest, StockRunsCarryNoFaultDropCounters) {
  // Lazy registration: without a fault schedule the per-cause counters must
  // stay out of the snapshot entirely, keeping stock metrics CSVs
  // byte-identical to the pre-fault-layer fixtures.
  const OccupancyRunResult run =
      run_occupancy_experiment(traced_base(net::ClockMode::kVectorStrobe));
  EXPECT_EQ(run.metrics.counters.count("net.drops.loss"), 0u);
  EXPECT_EQ(run.metrics.counters.count("net.drops.crashed_dst"), 0u);
  EXPECT_EQ(run.metrics.counters.count("net.drops.partition"), 0u);
  EXPECT_EQ(run.metrics.counters.count("net.drops.duty_cycle"), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllClockModes, TraceReconciliationTest,
                         ::testing::Values(net::ClockMode::kScalarStrobe,
                                           net::ClockMode::kVectorStrobe,
                                           net::ClockMode::kPhysical),
                         [](const auto& p) {
                           return std::string(net::to_string(p.param));
                         });

TEST(TraceExportTest, JsonlIsOneWellFormedObjectPerRecord) {
  const OccupancyRunResult run =
      run_occupancy_experiment(traced_base(net::ClockMode::kVectorStrobe));
  const std::string jsonl = trace_jsonl(run.trace);

  std::istringstream lines(jsonl);
  std::string line;
  std::size_t count = 0;
  bool saw_sense = false, saw_send = false, saw_deliver = false;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"t\":"), std::string::npos);
    EXPECT_NE(line.find("\"kind\":\""), std::string::npos);
    EXPECT_NE(line.find("\"pid\":"), std::string::npos);
    EXPECT_NE(line.find("\"bytes\":"), std::string::npos);
    saw_sense = saw_sense || line.find("\"kind\":\"sense\"") != std::string::npos;
    saw_send = saw_send || line.find("\"kind\":\"send\"") != std::string::npos;
    saw_deliver =
        saw_deliver || line.find("\"kind\":\"deliver\"") != std::string::npos;
    count++;
  }
  EXPECT_EQ(count, run.trace.size());
  EXPECT_TRUE(saw_sense);
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_deliver);
}

TEST(MetricsResultTest, TracingOffByDefaultAndMetricsStillPresent) {
  OccupancyConfig cfg = traced_base(net::ClockMode::kVectorStrobe);
  cfg.trace_capacity = 0;
  const OccupancyRunResult run = run_occupancy_experiment(cfg);
  EXPECT_TRUE(run.trace.empty());
  EXPECT_EQ(run.trace_evicted, 0u);
  EXPECT_FALSE(run.metrics.empty());
  EXPECT_GT(run.metrics.counters.at("sim.events_executed"), 0u);
  EXPECT_GT(run.metrics.counters.at("world.events"), 0u);
  // Per-kind strobe counters were exported and agree with MessageStats.
  EXPECT_EQ(run.metrics.counters.at("net.strobe.sent"),
            run.message_stats.of(net::MessageKind::kStrobe).sent);
}

TEST(MetricsResultTest, ActiveModeChangesBytesButNotDetection) {
  const OccupancyRunResult scalar =
      run_occupancy_experiment(traced_base(net::ClockMode::kScalarStrobe));
  const OccupancyRunResult vector =
      run_occupancy_experiment(traced_base(net::ClockMode::kVectorStrobe));
  // Same seed, same world: the mode only re-prices the wire.
  EXPECT_EQ(scalar.message_stats.of(net::MessageKind::kStrobe).sent,
            vector.message_stats.of(net::MessageKind::kStrobe).sent);
  EXPECT_LT(scalar.message_stats.of(net::MessageKind::kStrobe).bytes_sent,
            vector.message_stats.of(net::MessageKind::kStrobe).bytes_sent);
  ASSERT_FALSE(scalar.outcomes.empty());
  for (std::size_t i = 0; i < scalar.outcomes.size(); ++i) {
    EXPECT_EQ(scalar.outcomes[i].detections.size(),
              vector.outcomes[i].detections.size());
  }
}

}  // namespace
}  // namespace psn::analysis
