// Golden determinism fixtures (label: par): the hot-path implementation may
// change freely — slab scheduler, shared-payload broadcast, dense detector
// state — but the *observable* run artifacts may not. The fixtures below
// were captured from the pre-optimization implementation (PR 3 head) for the
// stock occupancy config under all three wire clock modes; this suite
// asserts that detections, the per-run metrics snapshot CSV, the trace
// JSONL, and the sweep-merged metrics CSV reproduce them byte-identically
// at 1 and at 8 worker threads.
//
// To regenerate after an *intentional* semantic change (never after a pure
// optimization), run with PSN_GOLDEN_PRINT=1 and paste the printed table:
//   PSN_GOLDEN_PRINT=1 ./test_golden --gtest_filter='*Golden*'

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/export.hpp"
#include "analysis/sweep.hpp"
#include "net/message.hpp"

namespace psn::analysis {
namespace {

// FNV-1a 64-bit: tiny, dependency-free, stable across platforms for byte
// input — all we need to pin run artifacts without committing megabytes.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

/// The stock occupancy configuration (all defaults) with tracing enabled and
/// a horizon short enough for a test budget. Every default the experiment
/// ships with — doors, capacity, rate, Δ, ε, lossless, always-on — is kept.
OccupancyConfig stock(net::ClockMode mode) {
  OccupancyConfig cfg;
  cfg.horizon = Duration::seconds(20);
  cfg.clock_mode = mode;
  cfg.trace_capacity = 1 << 18;  // complete trace; eviction would fail below
  return cfg;
}

std::string detections_bytes(const OccupancyRunResult& run) {
  std::string out;
  for (const DetectorOutcome& o : run.outcomes) {
    out += o.detector;
    out += '\n';
    out += detections_table(o.detections).csv();
  }
  return out;
}

struct GoldenHashes {
  const char* mode;
  const char* detections;
  const char* metrics_csv;
  const char* trace_jsonl;
};

// --- fixtures: pre-optimization implementation, seed 1, 20 s horizon ---
constexpr GoldenHashes kGolden[] = {
    {"scalar", "471f3957e0466713", "9ea4f163c4ec572d", "fc78d5afcb64949"},
    {"vector", "471f3957e0466713", "4c65bd9da942eebd", "f50546c005dc00a9"},
    {"physical", "471f3957e0466713", "5a1f477ebcc59ebb", "f2e3f73d965ba805"},
};
constexpr const char* kGoldenSweepMetricsCsv = "11403998d35bca18";

bool print_mode() { return std::getenv("PSN_GOLDEN_PRINT") != nullptr; }

std::vector<OccupancyConfig> stock_configs() {
  return {stock(net::ClockMode::kScalarStrobe),
          stock(net::ClockMode::kVectorStrobe),
          stock(net::ClockMode::kPhysical)};
}

class GoldenDeterminismTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(GoldenDeterminismTest, RunArtifactsMatchPreOptimizationFixtures) {
  const unsigned threads = GetParam();
  const std::vector<OccupancyRunResult> runs =
      run_specs(stock_configs(), threads);
  ASSERT_EQ(runs.size(), 3u);

  for (std::size_t i = 0; i < runs.size(); ++i) {
    const OccupancyRunResult& run = runs[i];
    ASSERT_EQ(run.trace_evicted, 0u) << "trace ring too small for the run";
    const std::string det = hex64(fnv1a(detections_bytes(run)));
    const std::string met = hex64(fnv1a(run.metrics.csv()));
    const std::string tra = hex64(fnv1a(trace_jsonl(run.trace)));
    if (print_mode()) {
      std::printf("    {\"%s\", \"%s\", \"%s\", \"%s\"},\n", kGolden[i].mode,
                  det.c_str(), met.c_str(), tra.c_str());
      continue;
    }
    EXPECT_EQ(det, kGolden[i].detections)
        << kGolden[i].mode << ": detection stream diverged from golden";
    EXPECT_EQ(met, kGolden[i].metrics_csv)
        << kGolden[i].mode << ": metrics snapshot diverged from golden";
    EXPECT_EQ(tra, kGolden[i].trace_jsonl)
        << kGolden[i].mode << ": trace JSONL diverged from golden";
  }
}

TEST_P(GoldenDeterminismTest, SweepMergedMetricsMatchFixture) {
  // The merge path: three modes × two replications fanned across the pool,
  // merged in grid order. Exercises the metric-merge determinism contract on
  // top of the per-run one.
  const unsigned threads = GetParam();
  SweepSpec spec = sweep(stock(net::ClockMode::kScalarStrobe));
  spec.vary_custom(
          {[](OccupancyConfig& c) { c.clock_mode = net::ClockMode::kScalarStrobe; },
           [](OccupancyConfig& c) { c.clock_mode = net::ClockMode::kVectorStrobe; },
           [](OccupancyConfig& c) { c.clock_mode = net::ClockMode::kPhysical; }})
      .replications(2)
      .threads(threads);
  const std::string csv_hash = hex64(fnv1a(spec.run().metrics_csv()));
  if (print_mode()) {
    std::printf("    kGoldenSweepMetricsCsv = \"%s\"\n", csv_hash.c_str());
    return;
  }
  EXPECT_EQ(csv_hash, kGoldenSweepMetricsCsv);
}

INSTANTIATE_TEST_SUITE_P(Threads, GoldenDeterminismTest,
                         ::testing::Values(1u, 8u),
                         [](const ::testing::TestParamInfo<unsigned>& param) {
                           return std::to_string(param.param) + "threads";
                         });

}  // namespace
}  // namespace psn::analysis
