// Golden determinism fixtures (label: par): the hot-path implementation may
// change freely — slab scheduler, shared-payload broadcast, dense detector
// state — but the *observable* run artifacts may not. The fixtures below
// were captured from the pre-optimization implementation (PR 3 head) for the
// stock occupancy config under all three wire clock modes; this suite
// asserts that detections, the per-run metrics snapshot CSV, the trace
// JSONL, and the sweep-merged metrics CSV reproduce them byte-identically
// at 1 and at 8 worker threads.
//
// To regenerate after an *intentional* semantic change (never after a pure
// optimization), run with PSN_GOLDEN_PRINT=1 and paste the printed table:
//   PSN_GOLDEN_PRINT=1 ./test_golden --gtest_filter='*Golden*'

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/export.hpp"
#include "analysis/sweep.hpp"
#include "net/message.hpp"

namespace psn::analysis {
namespace {

// FNV-1a 64-bit: tiny, dependency-free, stable across platforms for byte
// input — all we need to pin run artifacts without committing megabytes.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

/// The stock occupancy configuration (all defaults) with tracing enabled and
/// a horizon short enough for a test budget. Every default the experiment
/// ships with — doors, capacity, rate, Δ, ε, lossless, always-on — is kept.
OccupancyConfig stock(net::ClockMode mode) {
  OccupancyConfig cfg;
  cfg.horizon = Duration::seconds(20);
  cfg.clock_mode = mode;
  cfg.trace_capacity = 1 << 18;  // complete trace; eviction would fail below
  return cfg;
}

std::string detections_bytes(const OccupancyRunResult& run) {
  std::string out;
  for (const DetectorOutcome& o : run.outcomes) {
    out += o.detector;
    out += '\n';
    out += detections_table(o.detections).csv();
  }
  return out;
}

struct GoldenHashes {
  const char* mode;
  const char* detections;
  const char* metrics_csv;
  const char* trace_jsonl;
};

// --- fixtures: sharded-replay implementation, seed 1, 20 s horizon ---
// (Regenerated for the Δ-windowed sharded runner: the occupancy harness now
// pre-rolls the world timeline and replays it through per-source strided
// message seqs and per-message keyed RNG, so seqs and delay draws — though
// not the statistics — differ from the pre-sharding fixtures.)
constexpr GoldenHashes kGolden[] = {
    {"scalar", "3525c69976669b4f", "1c050ad8b2dcc5a8", "568c147d55e48ff9"},
    {"vector", "3525c69976669b4f", "76b49913ea5b7564", "43036b3f6b07edd2"},
    {"physical", "3525c69976669b4f", "9d87f6f29ee17ec6", "d9ba76923126de8"},
};
constexpr const char* kGoldenSweepMetricsCsv = "26f9be90481856f0";

bool print_mode() { return std::getenv("PSN_GOLDEN_PRINT") != nullptr; }

std::vector<OccupancyConfig> stock_configs() {
  return {stock(net::ClockMode::kScalarStrobe),
          stock(net::ClockMode::kVectorStrobe),
          stock(net::ClockMode::kPhysical)};
}

class GoldenDeterminismTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(GoldenDeterminismTest, RunArtifactsMatchPreOptimizationFixtures) {
  const unsigned threads = GetParam();
  const std::vector<OccupancyRunResult> runs =
      run_specs(stock_configs(), threads);
  ASSERT_EQ(runs.size(), 3u);

  for (std::size_t i = 0; i < runs.size(); ++i) {
    const OccupancyRunResult& run = runs[i];
    ASSERT_EQ(run.trace_evicted, 0u) << "trace ring too small for the run";
    const std::string det = hex64(fnv1a(detections_bytes(run)));
    const std::string met = hex64(fnv1a(run.metrics.csv()));
    const std::string tra = hex64(fnv1a(trace_jsonl(run.trace)));
    if (print_mode()) {
      std::printf("    {\"%s\", \"%s\", \"%s\", \"%s\"},\n", kGolden[i].mode,
                  det.c_str(), met.c_str(), tra.c_str());
      continue;
    }
    EXPECT_EQ(det, kGolden[i].detections)
        << kGolden[i].mode << ": detection stream diverged from golden";
    EXPECT_EQ(met, kGolden[i].metrics_csv)
        << kGolden[i].mode << ": metrics snapshot diverged from golden";
    EXPECT_EQ(tra, kGolden[i].trace_jsonl)
        << kGolden[i].mode << ": trace JSONL diverged from golden";
  }
}

TEST_P(GoldenDeterminismTest, SweepMergedMetricsMatchFixture) {
  // The merge path: three modes × two replications fanned across the pool,
  // merged in grid order. Exercises the metric-merge determinism contract on
  // top of the per-run one.
  const unsigned threads = GetParam();
  SweepSpec spec = sweep(stock(net::ClockMode::kScalarStrobe));
  spec.vary_custom(
          {[](OccupancyConfig& c) { c.clock_mode = net::ClockMode::kScalarStrobe; },
           [](OccupancyConfig& c) { c.clock_mode = net::ClockMode::kVectorStrobe; },
           [](OccupancyConfig& c) { c.clock_mode = net::ClockMode::kPhysical; }})
      .replications(2)
      .threads(threads);
  const std::string csv_hash = hex64(fnv1a(spec.run().metrics_csv()));
  if (print_mode()) {
    std::printf("    kGoldenSweepMetricsCsv = \"%s\"\n", csv_hash.c_str());
    return;
  }
  EXPECT_EQ(csv_hash, kGoldenSweepMetricsCsv);
}

INSTANTIATE_TEST_SUITE_P(Threads, GoldenDeterminismTest,
                         ::testing::Values(1u, 8u),
                         [](const ::testing::TestParamInfo<unsigned>& param) {
                           return std::to_string(param.param) + "threads";
                         });

// --- the sharding acceptance bar (DESIGN.md §14) -------------------------
//
// One run config, every (shards × pool threads) shape, all three wire clock
// modes: detections, the metrics snapshot CSV, and the trace JSONL must be
// byte-identical to the 1-shard run of the same config — and the 1-shard
// run itself is pinned so cross-session drift cannot hide behind the
// self-comparison.

struct ShardArtifacts {
  std::string detections;
  std::string metrics_csv;
  std::string trace_jsonl;
};

ShardArtifacts artifacts_of(const OccupancyRunResult& run) {
  return {hex64(fnv1a(detections_bytes(run))), hex64(fnv1a(run.metrics.csv())),
          hex64(fnv1a(trace_jsonl(run.trace)))};
}

/// doors = 8 (9 processes) so the grid reaches 8 shards; shorter horizon —
/// the grid multiplies runs 15×.
OccupancyConfig shard_grid_config(net::ClockMode mode) {
  OccupancyConfig cfg = stock(mode);
  cfg.doors = 8;
  cfg.horizon = Duration::seconds(10);
  return cfg;
}

// Fixtures for the 1-shard doors = 8 reference runs (PSN_GOLDEN_PRINT=1).
constexpr GoldenHashes kShardGolden[] = {
    {"scalar", "3f97562eea96d162", "910eaae1d5c9c514", "71f135b78c164b17"},
    {"vector", "3f97562eea96d162", "abf23d168a7508d0", "5a4bb6bc03156e12"},
    {"physical", "3f97562eea96d162", "9f9d39dcd9c5ff54", "cd741b67313b5686"},
};

class ShardedGoldenTest : public ::testing::Test {};

TEST(ShardedGoldenTest, ShardCountAndPoolSizeNeverChangeArtifacts) {
  const net::ClockMode modes[] = {net::ClockMode::kScalarStrobe,
                                  net::ClockMode::kVectorStrobe,
                                  net::ClockMode::kPhysical};
  for (std::size_t i = 0; i < 3; ++i) {
    const OccupancyConfig base = shard_grid_config(modes[i]);
    const OccupancyRunResult ref_run = run_occupancy_experiment(base);
    ASSERT_EQ(ref_run.trace_evicted, 0u);
    const ShardArtifacts ref = artifacts_of(ref_run);
    if (print_mode()) {
      std::printf("    {\"%s\", \"%s\", \"%s\", \"%s\"},\n", kShardGolden[i].mode,
                  ref.detections.c_str(), ref.metrics_csv.c_str(),
                  ref.trace_jsonl.c_str());
    } else {
      EXPECT_EQ(ref.detections, kShardGolden[i].detections)
          << kShardGolden[i].mode << ": 1-shard reference drifted";
      EXPECT_EQ(ref.metrics_csv, kShardGolden[i].metrics_csv)
          << kShardGolden[i].mode << ": 1-shard reference drifted";
      EXPECT_EQ(ref.trace_jsonl, kShardGolden[i].trace_jsonl)
          << kShardGolden[i].mode << ": 1-shard reference drifted";
    }

    struct Shape {
      std::size_t shards;
      std::size_t threads;
    };
    for (const Shape shape :
         {Shape{2, 1}, Shape{2, 8}, Shape{8, 1}, Shape{8, 8}}) {
      OccupancyConfig sharded = base;
      sharded.shards = shape.shards;
      sharded.shard_threads = shape.threads;
      const OccupancyRunResult run = run_occupancy_experiment(sharded);
      const ShardArtifacts got = artifacts_of(run);
      const std::string where = std::string(kShardGolden[i].mode) + " @ " +
                                std::to_string(shape.shards) + " shards × " +
                                std::to_string(shape.threads) + " threads";
      EXPECT_EQ(got.detections, ref.detections) << where << ": detections";
      EXPECT_EQ(got.metrics_csv, ref.metrics_csv) << where << ": metrics";
      EXPECT_EQ(got.trace_jsonl, ref.trace_jsonl) << where << ": trace";
      EXPECT_GT(run.shard_windows, 0u) << where;
    }
  }
}

// --- the fault-layer acceptance bar (DESIGN.md §15) ----------------------
//
// A faulty run — two crash windows, a partition window, a drift spike, and
// scheduled burst loss — must produce byte-identical artifacts at every
// (shards × pool threads) shape under all three wire clock modes, and the
// 1-shard reference is pinned so cross-session drift cannot hide behind the
// self-comparison. Fault schedules are config-derived pure data, so this is
// exactly as strong a bar as the fault-free one above.

OccupancyConfig faulty_grid_config(net::ClockMode mode) {
  OccupancyConfig cfg = shard_grid_config(mode);
  cfg.faults = sim::parse_fault_plan(
      "crash:3@2+3;crash:5@6+2;cut:1-4@3+4;drift:2@1+5:200");
  cfg.loss_windows.push_back({SimTime::zero() + Duration::seconds(4),
                              SimTime::zero() + Duration::seconds(5)});
  cfg.loss_probability = 0.05;
  cfg.check = true;  // the checker must stay clean at every shape, too
  return cfg;
}

// Fixtures for the 1-shard faulty reference runs (PSN_GOLDEN_PRINT=1).
constexpr GoldenHashes kFaultyGolden[] = {
    {"scalar", "2685c8dab976799e", "2389316e88ba6b92", "d36449a85cf42e18"},
    {"vector", "2685c8dab976799e", "37e9105693831520", "f71d8df3909b54a"},
    {"physical", "2685c8dab976799e", "3692b9a36cd83274", "f033590393bb8328"},
};

TEST(FaultyGoldenTest, FaultScheduleNeverBreaksShardOrThreadDeterminism) {
  const net::ClockMode modes[] = {net::ClockMode::kScalarStrobe,
                                  net::ClockMode::kVectorStrobe,
                                  net::ClockMode::kPhysical};
  for (std::size_t i = 0; i < 3; ++i) {
    const OccupancyConfig base = faulty_grid_config(modes[i]);
    const OccupancyRunResult ref_run = run_occupancy_experiment(base);
    ASSERT_EQ(ref_run.trace_evicted, 0u);
    ASSERT_TRUE(ref_run.check.has_value());
    EXPECT_TRUE(ref_run.check->clean()) << ref_run.check->summary();
    const ShardArtifacts ref = artifacts_of(ref_run);
    if (print_mode()) {
      std::printf("    {\"%s\", \"%s\", \"%s\", \"%s\"},\n",
                  kFaultyGolden[i].mode, ref.detections.c_str(),
                  ref.metrics_csv.c_str(), ref.trace_jsonl.c_str());
    } else {
      EXPECT_EQ(ref.detections, kFaultyGolden[i].detections)
          << kFaultyGolden[i].mode << ": faulty 1-shard reference drifted";
      EXPECT_EQ(ref.metrics_csv, kFaultyGolden[i].metrics_csv)
          << kFaultyGolden[i].mode << ": faulty 1-shard reference drifted";
      EXPECT_EQ(ref.trace_jsonl, kFaultyGolden[i].trace_jsonl)
          << kFaultyGolden[i].mode << ": faulty 1-shard reference drifted";
    }

    struct Shape {
      std::size_t shards;
      std::size_t threads;
    };
    for (const Shape shape :
         {Shape{1, 8}, Shape{4, 1}, Shape{4, 8}}) {
      OccupancyConfig sharded = base;
      sharded.shards = shape.shards;
      sharded.shard_threads = shape.threads;
      const OccupancyRunResult run = run_occupancy_experiment(sharded);
      ASSERT_TRUE(run.check.has_value());
      EXPECT_TRUE(run.check->clean()) << run.check->summary();
      const ShardArtifacts got = artifacts_of(run);
      const std::string where = std::string(kFaultyGolden[i].mode) + " @ " +
                                std::to_string(shape.shards) + " shards × " +
                                std::to_string(shape.threads) + " threads";
      EXPECT_EQ(got.detections, ref.detections) << where << ": detections";
      EXPECT_EQ(got.metrics_csv, ref.metrics_csv) << where << ": metrics";
      EXPECT_EQ(got.trace_jsonl, ref.trace_jsonl) << where << ": trace";
    }
  }
}

TEST(ShardedGoldenTest, ChurnHeavyConfigStaysIdenticalAcrossShards) {
  // Loss draws, scheduled burst windows, and unaligned duty cycling all bend
  // the per-message hot path (drops consume RNG draws; wake schedules warp
  // arrival instants). None of it may depend on the shard count.
  OccupancyConfig cfg = shard_grid_config(net::ClockMode::kVectorStrobe);
  cfg.loss_probability = 0.3;
  cfg.loss_windows.push_back({SimTime::zero() + Duration::seconds(2),
                              SimTime::zero() + Duration::seconds(4)});
  net::DutyCycle duty;
  duty.period = Duration::millis(40);
  duty.window = Duration::millis(25);
  cfg.duty_cycle = duty;
  cfg.duty_phases_aligned = false;

  const OccupancyRunResult ref = run_occupancy_experiment(cfg);
  const ShardArtifacts want = artifacts_of(ref);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    OccupancyConfig sharded = cfg;
    sharded.shards = shards;
    sharded.shard_threads = 4;
    const ShardArtifacts got = artifacts_of(run_occupancy_experiment(sharded));
    EXPECT_EQ(got.detections, want.detections) << shards << " shards";
    EXPECT_EQ(got.metrics_csv, want.metrics_csv) << shards << " shards";
    EXPECT_EQ(got.trace_jsonl, want.trace_jsonl) << shards << " shards";
  }
}

}  // namespace
}  // namespace psn::analysis
