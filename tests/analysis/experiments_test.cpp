#include "analysis/experiments.hpp"

#include <gtest/gtest.h>

#include "analysis/sweep.hpp"

namespace psn::analysis {
namespace {

using namespace psn::time_literals;

OccupancyConfig small_config(std::uint64_t seed = 1) {
  OccupancyConfig cfg;
  cfg.doors = 2;
  cfg.capacity = 50;
  cfg.movement_rate = 10.0;
  cfg.delta = 50_ms;
  cfg.horizon = 20_s;
  cfg.seed = seed;
  return cfg;
}

TEST(OccupancyExperimentTest, ProducesAllFourDetectors) {
  const auto run = run_occupancy_experiment(small_config());
  ASSERT_EQ(run.outcomes.size(), 4u);
  EXPECT_NO_THROW(run.outcome("strobe-vector"));
  EXPECT_NO_THROW(run.outcome("strobe-scalar"));
  EXPECT_NO_THROW(run.outcome("physical-eps"));
  EXPECT_NO_THROW(run.outcome("delivery-order"));
  EXPECT_THROW(run.outcome("nonexistent"), InvariantError);
}

TEST(OccupancyExperimentTest, PhysicalDetectorNearPerfectAtTinyEpsilon) {
  OccupancyConfig cfg = small_config(3);
  cfg.sync_epsilon = 10_us;
  const auto run = run_occupancy_experiment(cfg);
  const auto& phys = run.outcome("physical-eps").score;
  EXPECT_GT(phys.oracle_occurrences, 3u);
  EXPECT_DOUBLE_EQ(phys.recall(), 1.0);
  EXPECT_DOUBLE_EQ(phys.precision(), 1.0);
}

TEST(OccupancyExperimentTest, DeterministicForSameSeed) {
  const auto a = run_occupancy_experiment(small_config(9));
  const auto b = run_occupancy_experiment(small_config(9));
  EXPECT_EQ(a.world_events, b.world_events);
  EXPECT_EQ(a.observed_updates, b.observed_updates);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].score.true_positives,
              b.outcomes[i].score.true_positives);
    EXPECT_EQ(a.outcomes[i].detections.size(),
              b.outcomes[i].detections.size());
  }
}

TEST(OccupancyExperimentTest, OracleSeesThresholdCrossings) {
  const auto run = run_occupancy_experiment(small_config(4));
  EXPECT_GT(run.oracle.occurrences.size(), 2u);
  EXPECT_GT(run.oracle.fraction_true, 0.0);
  EXPECT_LT(run.oracle.fraction_true, 1.0);
  EXPECT_GT(run.world_events, 50u);
  EXPECT_GT(run.observed_updates, 50u);
}

TEST(OccupancyExperimentTest, StrobeTrafficAccounted) {
  const auto run = run_occupancy_experiment(small_config(5));
  const auto& strobes = run.message_stats.of(net::MessageKind::kStrobe);
  // Each sense event broadcasts to doors + root (= doors + 1 - 1 + ... ):
  // 2 doors + root = 3 processes, so 2 copies per sense.
  EXPECT_EQ(strobes.sent, run.world_events * 2);
  EXPECT_GT(strobes.bytes_sent, 0u);
}

TEST(OccupancyExperimentTest, EffectiveToleranceAuto) {
  OccupancyConfig cfg;
  cfg.delta = 100_ms;
  EXPECT_EQ(cfg.effective_tolerance(), 201_ms);
  cfg.score_tolerance = 5_ms;
  EXPECT_EQ(cfg.effective_tolerance(), 5_ms);
  OccupancyConfig unbounded;
  unbounded.delta = Duration::max();
  EXPECT_EQ(unbounded.effective_tolerance(), 2_s);
}

TEST(OccupancyExperimentTest, ValidatedOverloadMatchesRawOverload) {
  const Validated<OccupancyConfig> checked(small_config(6));
  const auto via_validated = run_occupancy_experiment(checked);
  const auto via_raw = run_occupancy_experiment(small_config(6));
  EXPECT_EQ(via_validated.world_events, via_raw.world_events);
  EXPECT_EQ(via_validated.observed_updates, via_raw.observed_updates);
}

TEST(OccupancyExperimentTest, RejectsInvalidConfig) {
  OccupancyConfig bad = small_config();
  bad.doors = 0;
  EXPECT_THROW(run_occupancy_experiment(bad), ConfigError);
  bad = small_config();
  bad.movement_rate = -5.0;
  EXPECT_THROW(run_occupancy_experiment(bad), ConfigError);
}

TEST(ReplicationTest, SumsAcrossSeeds) {
  const auto agg =
      sweep(small_config(10)).replications(3).run().points.front().detectors;
  ASSERT_EQ(agg.size(), 4u);
  for (const auto& [name, outcome] : agg) {
    EXPECT_GT(outcome.score.oracle_occurrences, 0u) << name;
    EXPECT_EQ(outcome.belief_accuracy.count(), 3u) << name;
  }
  // Aggregate equals the sum of individual runs for one detector.
  std::size_t tp_sum = 0;
  for (std::uint64_t s = 10; s < 13; ++s) {
    tp_sum += run_occupancy_experiment(small_config(s))
                  .outcome("strobe-vector")
                  .score.true_positives;
  }
  EXPECT_EQ(agg.at("strobe-vector").score.true_positives, tp_sum);
}

}  // namespace
}  // namespace psn::analysis
