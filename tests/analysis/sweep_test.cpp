#include "analysis/sweep.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/validated.hpp"

namespace psn::analysis {
namespace {

using namespace psn::time_literals;

OccupancyConfig small_base(std::uint64_t seed = 1) {
  OccupancyConfig cfg;
  cfg.doors = 2;
  cfg.capacity = 50;
  cfg.movement_rate = 10.0;
  cfg.delta = 50_ms;
  cfg.horizon = 10_s;
  cfg.seed = seed;
  return cfg;
}

TEST(SweepSpecTest, ExpandsRowMajorInDeclarationOrder) {
  const auto specs = sweep(small_base())
                         .vary_doors({2, 3})
                         .vary_rate({5.0, 10.0, 15.0})
                         .replications(2)
                         .expand();
  ASSERT_EQ(specs.size(), 2u * 3u * 2u);
  // First axis (doors) slowest, then rate, then replication.
  EXPECT_EQ(specs[0].config.doors, 2u);
  EXPECT_DOUBLE_EQ(specs[0].config.movement_rate, 5.0);
  EXPECT_EQ(specs[0].config.seed, 1u);
  EXPECT_EQ(specs[1].config.seed, 2u);
  EXPECT_EQ(specs[1].point, 0u);
  EXPECT_EQ(specs[1].replication, 1u);
  EXPECT_DOUBLE_EQ(specs[2].config.movement_rate, 10.0);
  EXPECT_EQ(specs[6].config.doors, 3u);
  EXPECT_DOUBLE_EQ(specs[6].config.movement_rate, 5.0);
  EXPECT_EQ(specs[6].point, 3u);
}

TEST(SweepSpecTest, RunMergesEveryDetectorPerPoint) {
  const auto result =
      sweep(small_base()).vary_rate({5.0, 10.0}).replications(2).run();
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.runs, 4u);
  for (const auto& point : result.points) {
    ASSERT_EQ(point.detectors.size(), 4u);
    EXPECT_EQ(point.at("strobe-vector").belief_accuracy.count(), 2u);
    EXPECT_GT(point.world_events, 0u);
  }
  EXPECT_THROW(result.points[0].at("nonexistent"), InvariantError);
}

TEST(SweepSpecTest, MatchesSequentialPerRunResults) {
  // One grid point, two seeds: the sweep must equal hand-run experiments
  // accumulated in seed order.
  const auto result = sweep(small_base(7)).replications(2).run();
  DetectionScore expected;
  for (std::uint64_t s = 7; s <= 8; ++s) {
    expected += run_occupancy_experiment(small_base(s))
                    .outcome("strobe-vector")
                    .score;
  }
  const auto& got = result.points[0].at("strobe-vector").score;
  EXPECT_EQ(got.true_positives, expected.true_positives);
  EXPECT_EQ(got.false_positives, expected.false_positives);
  EXPECT_EQ(got.false_negatives, expected.false_negatives);
  EXPECT_EQ(got.oracle_occurrences, expected.oracle_occurrences);
}

TEST(SweepDeterminismTest, OneAndEightThreadSweepsAreByteIdentical) {
  auto spec = sweep(small_base())
                  .vary_delta({10_ms, 50_ms, 150_ms})
                  .replications(3);
  const std::string serial = spec.threads(1).run().csv();
  const std::string parallel = spec.threads(8).run().csv();
  EXPECT_EQ(serial, parallel);
  EXPECT_FALSE(serial.empty());
}

TEST(SweepDeterminismTest, MetricSnapshotsAreByteIdenticalAcrossThreadCounts) {
  // Metric merging (counters, gauges, RunningStats, histogram bins) happens
  // in grid order regardless of which worker finished first, so the merged
  // snapshots — including FP-sensitive stat summaries — must serialize to
  // the same bytes at 1 and 8 threads.
  auto spec = sweep(small_base())
                  .vary_rate({5.0, 10.0})
                  .replications(4);
  const SweepResult serial = spec.threads(1).run();
  const SweepResult parallel = spec.threads(8).run();
  const std::string serial_csv = serial.metrics_csv();
  EXPECT_EQ(serial_csv, parallel.metrics_csv());
  EXPECT_FALSE(serial_csv.empty());
  // And the snapshot actually carries the run's traffic.
  for (const auto& point : serial.points) {
    EXPECT_GT(point.metrics.counters.at("net.sent"), 0u);
    EXPECT_EQ(point.metrics.stats.at("detector.strobe-vector.belief_accuracy")
                  .count(),
              4u);  // one sample per replication survived the merge
  }
}

TEST(SweepSpecTest, RunSpecsPreservesInputOrder) {
  std::vector<OccupancyConfig> configs;
  for (std::uint64_t s = 1; s <= 6; ++s) configs.push_back(small_base(s));
  const auto runs = run_specs(configs, 4);
  ASSERT_EQ(runs.size(), 6u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto solo = run_occupancy_experiment(configs[i]);
    EXPECT_EQ(runs[i].world_events, solo.world_events) << "run " << i;
    EXPECT_EQ(runs[i].observed_updates, solo.observed_updates) << "run " << i;
  }
}

TEST(SweepValidationTest, RejectsNonsenseConfigsBeforeRunning) {
  EXPECT_THROW(sweep(small_base()).vary_doors({2, 0}).expand(), ConfigError);

  OccupancyConfig negative_rate = small_base();
  negative_rate.movement_rate = -1.0;
  EXPECT_THROW(sweep(negative_rate).run(), ConfigError);

  OccupancyConfig zero_delta = small_base();
  zero_delta.delta = Duration::zero();  // nonsense under kUniformBounded
  EXPECT_THROW(sweep(zero_delta).run(), ConfigError);
  zero_delta.delay_kind = core::DelayKind::kSynchronous;
  EXPECT_NO_THROW((void)Validated<OccupancyConfig>(zero_delta));

  EXPECT_THROW(sweep(small_base()).replications(0), ConfigError);
}

TEST(SweepValidationTest, ValidatedRejectsAtExperimentBoundary) {
  OccupancyConfig bad = small_base();
  bad.doors = 0;
  EXPECT_THROW(run_occupancy_experiment(bad), ConfigError);
  bad = small_base();
  bad.loss_probability = 1.5;
  EXPECT_THROW(run_occupancy_experiment(bad), ConfigError);
  bad = small_base();
  bad.horizon = Duration::zero();
  EXPECT_THROW(run_occupancy_experiment(bad), ConfigError);
  EXPECT_NO_THROW((void)Validated<OccupancyConfig>(small_base()));
}

}  // namespace
}  // namespace psn::analysis
