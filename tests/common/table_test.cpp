#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn {
namespace {

TEST(TableTest, BuildsRowsInOrder) {
  Table t({"a", "b"});
  t.row().cell("x").cell(std::int64_t{1});
  t.row().cell("y").cell(std::int64_t{2});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_EQ(t.at(0, 0), "x");
  EXPECT_EQ(t.at(1, 1), "2");
}

TEST(TableTest, DoubleFormatting) {
  Table t({"v"});
  t.row().cell(3.14159, 3);
  EXPECT_EQ(t.at(0, 0), "3.14");
}

TEST(TableTest, RejectsOverfullRow) {
  Table t({"only"});
  t.row().cell("ok");
  EXPECT_THROW(t.cell("too many"), InvariantError);
}

TEST(TableTest, RejectsNewRowWhenPreviousIncomplete) {
  Table t({"a", "b"});
  t.row().cell("x");
  EXPECT_THROW(t.row(), InvariantError);
}

TEST(TableTest, CellBeforeRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), InvariantError);
}

TEST(TableTest, AsciiAlignsColumns) {
  Table t({"name", "n"});
  t.row().cell("short").cell(std::int64_t{1});
  t.row().cell("a much longer name").cell(std::int64_t{22});
  const std::string art = t.ascii();
  // Header, rule, two data rows.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  // All lines equally wide.
  std::size_t first_len = art.find('\n');
  std::size_t pos = first_len + 1;
  while (pos < art.size()) {
    const std::size_t next = art.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.row().cell("has,comma").cell("has\"quote");
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, CsvPlainValuesUnquoted) {
  Table t({"a"});
  t.row().cell("plain");
  EXPECT_EQ(t.csv(), "a\nplain\n");
}

TEST(TableTest, EmptyColumnsRejected) {
  EXPECT_THROW(Table({}), InvariantError);
}

}  // namespace
}  // namespace psn
