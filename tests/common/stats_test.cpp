#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace psn {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, MergeEqualsConcatenation) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(SampleSetTest, PercentilesExact) {
  SampleSet s;
  for (const double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(12.5), 15.0);  // interpolated
}

TEST(SampleSetTest, UnsortedInsertionOrder) {
  SampleSet s;
  for (const double x : {50.0, 10.0, 40.0, 20.0, 30.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
}

TEST(SampleSetTest, MeanAndStddev) {
  SampleSet s;
  for (const double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 1.0);
}

TEST(SampleSetTest, EmptyAndSingle) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 7.0);
}

TEST(SampleSetTest, PercentileRangeChecked) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), InvariantError);
  EXPECT_THROW(s.percentile(101), InvariantError);
}

TEST(HistogramTest, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  h.add(0.0);
  h.add(1.999);
  h.add(2.0);
  h.add(9.999);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, OverflowUnderflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi edge is exclusive
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 3), InvariantError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvariantError);
}

TEST(HistogramTest, AsciiRendersOneRowPerBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
}

TEST(ProportionTest, ValueAndBounds) {
  Proportion p;
  for (int i = 0; i < 80; ++i) p.add(true);
  for (int i = 0; i < 20; ++i) p.add(false);
  EXPECT_DOUBLE_EQ(p.value(), 0.8);
  EXPECT_LT(p.wilson_lo(), 0.8);
  EXPECT_GT(p.wilson_hi(), 0.8);
  EXPECT_GT(p.wilson_lo(), 0.7);
  EXPECT_LT(p.wilson_hi(), 0.9);
}

TEST(ProportionTest, ExtremesStayInUnitInterval) {
  Proportion all;
  for (int i = 0; i < 10; ++i) all.add(true);
  EXPECT_DOUBLE_EQ(all.value(), 1.0);
  EXPECT_LE(all.wilson_hi(), 1.0);
  EXPECT_LT(all.wilson_lo(), 1.0);

  Proportion none;
  for (int i = 0; i < 10; ++i) none.add(false);
  EXPECT_DOUBLE_EQ(none.value(), 0.0);
  EXPECT_GE(none.wilson_lo(), 0.0);
  EXPECT_GT(none.wilson_hi(), 0.0);
}

TEST(ProportionTest, EmptyIsZero) {
  Proportion p;
  EXPECT_DOUBLE_EQ(p.value(), 0.0);
  EXPECT_DOUBLE_EQ(p.wilson_lo(), 0.0);
}

}  // namespace
}  // namespace psn
