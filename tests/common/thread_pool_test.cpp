#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace psn {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroMeansHardwareThreads) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, WaitIdleDrainsTheQueue) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task exploded"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // One failed task must not poison the pool.
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);  // single worker: tasks genuinely queue up
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ran.fetch_add(1);
      });
    }
  }  // destructor joins — every queued task must have executed, not dropped
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, ParallelMapPreservesInputOrder) {
  ThreadPool pool(8);
  std::vector<int> items(200);
  std::iota(items.begin(), items.end(), 0);
  const auto out = parallel_map(pool, items, [](const int& x) {
    if (x % 7 == 0) {  // stagger completion so order would scramble
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    return x * 3;
  });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(ThreadPoolTest, ManyProducersOneQueue) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&pool, &sum] {
      for (int i = 1; i <= 250; ++i) {
        pool.submit([&sum, i] { sum.fetch_add(i); });
      }
    });
  }
  for (auto& p : producers) p.join();
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 4L * 250 * 251 / 2);
}

}  // namespace
}  // namespace psn
