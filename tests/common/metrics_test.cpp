#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"

namespace psn {
namespace {

TEST(MetricsRegistryTest, CounterFindOrCreateAndInc) {
  MetricsRegistry reg;
  auto c = reg.counter("a");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Re-registering the same name returns a handle to the same metric.
  auto c2 = reg.counter("a");
  c2.inc();
  EXPECT_EQ(c.value(), 43u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryTest, DefaultConstructedHandlesAreInert) {
  MetricsRegistry::Counter c;
  MetricsRegistry::Gauge g;
  MetricsRegistry::Stat s;
  MetricsRegistry::Hist h;
  c.inc();
  g.set(1.0);
  g.add(2.0);
  s.add(3.0);
  h.add(4.0);  // none of these may crash or register anything
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry reg;
  auto g = reg.gauge("g");
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(MetricsRegistryTest, HandlesStayValidAsRegistryGrows) {
  MetricsRegistry reg;
  auto first = reg.counter("m.000");
  // Force many node insertions around the first one; the handle must still
  // point at the same metric (std::map nodes are address-stable).
  for (int i = 1; i < 200; ++i) {
    reg.counter("m." + std::to_string(i)).inc();
  }
  first.inc(7);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("m.000"), 7u);
}

TEST(MetricsRegistryTest, HistogramShapeMismatchThrows) {
  MetricsRegistry reg;
  reg.histogram("h", 0.0, 10.0, 5);
  EXPECT_NO_THROW(reg.histogram("h", 0.0, 10.0, 5));
  EXPECT_THROW(reg.histogram("h", 0.0, 10.0, 6), InvariantError);
  EXPECT_THROW(reg.histogram("h", 0.0, 20.0, 5), InvariantError);
}

TEST(MetricsSnapshotTest, CapturesAllKinds) {
  MetricsRegistry reg;
  reg.counter("c").inc(3);
  reg.gauge("g").set(1.5);
  reg.stat("s").add(2.0);
  reg.stat("s").add(4.0);
  reg.histogram("h", 0.0, 10.0, 10).add(5.0);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 1.5);
  EXPECT_EQ(snap.stats.at("s").count(), 2u);
  EXPECT_DOUBLE_EQ(snap.stats.at("s").mean(), 3.0);
  EXPECT_EQ(snap.histograms.at("h").total, 1u);
  EXPECT_EQ(snap.histograms.at("h").counts.size(), 10u);
}

TEST(MetricsSnapshotTest, MergeAddsAndCombines) {
  MetricsRegistry a, b;
  a.counter("c").inc(2);
  b.counter("c").inc(5);
  b.counter("only_b").inc(1);
  a.gauge("g").set(1.0);
  b.gauge("g").set(2.0);
  a.stat("s").add(1.0);
  b.stat("s").add(3.0);
  a.histogram("h", 0.0, 4.0, 4).add(1.0);
  b.histogram("h", 0.0, 4.0, 4).add(1.5);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counters.at("c"), 7u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("g"), 3.0);  // gauges add across runs
  EXPECT_EQ(merged.stats.at("s").count(), 2u);
  EXPECT_DOUBLE_EQ(merged.stats.at("s").mean(), 2.0);
  EXPECT_EQ(merged.histograms.at("h").total, 2u);
  EXPECT_EQ(merged.histograms.at("h").counts[1], 2u);  // both in [1, 2)
}

TEST(MetricsSnapshotTest, MergeRejectsHistogramShapeMismatch) {
  MetricsRegistry a, b;
  a.histogram("h", 0.0, 4.0, 4).add(1.0);
  b.histogram("h", 0.0, 4.0, 8).add(1.0);
  MetricsSnapshot merged = a.snapshot();
  EXPECT_THROW(merged.merge(b.snapshot()), InvariantError);
}

TEST(MetricsSnapshotTest, MergeRenamedRelabelsAndDrops) {
  // The listener's per-stream fold: session metric names map onto labeled
  // server-wide names; an empty mapping drops the metric.
  MetricsRegistry session;
  session.counter("serve.records").inc(83000);
  session.counter("serve.violations").inc(2);
  session.counter("serve.detects").inc(9);  // not folded → dropped
  session.gauge("serve.peak_pending").set(120.0);

  MetricsSnapshot server;
  server.merge_renamed(session.snapshot(), [](const std::string& name) {
    if (name == "serve.records") {
      return labeled_metric("serve.stream", 3, "records");
    }
    if (name == "serve.violations") {
      return labeled_metric("serve.stream", 3, "violations");
    }
    if (name == "serve.peak_pending") {
      return labeled_metric("serve.stream", 3, "peak_pending");
    }
    return std::string();
  });
  EXPECT_EQ(server.counters.at("serve.stream.3.records"), 83000u);
  EXPECT_EQ(server.counters.at("serve.stream.3.violations"), 2u);
  EXPECT_DOUBLE_EQ(server.gauges.at("serve.stream.3.peak_pending"), 120.0);
  EXPECT_EQ(server.counters.count("serve.detects"), 0u);
  EXPECT_EQ(server.counters.size(), 2u);
}

TEST(MetricsSnapshotTest, MergeRenamedAccumulatesAcrossSources) {
  MetricsRegistry a, b;
  a.counter("c").inc(1);
  b.counter("c").inc(2);
  a.stat("s").add(1.0);
  b.stat("s").add(3.0);
  a.histogram("h", 0.0, 4.0, 4).add(0.5);
  b.histogram("h", 0.0, 4.0, 4).add(0.5);

  MetricsSnapshot out;
  const auto same = [](const std::string& name) { return name; };
  out.merge_renamed(a.snapshot(), same);
  out.merge_renamed(b.snapshot(), same);
  EXPECT_EQ(out.counters.at("c"), 3u);
  EXPECT_EQ(out.stats.at("s").count(), 2u);
  EXPECT_EQ(out.histograms.at("h").total, 2u);
}

TEST(MetricsSnapshotTest, LabeledMetricComposesDottedNames) {
  EXPECT_EQ(labeled_metric("serve.stream", 0, "records"),
            "serve.stream.0.records");
  EXPECT_EQ(labeled_metric("serve.stream", 17, "stale"),
            "serve.stream.17.stale");
}

TEST(MetricsSnapshotTest, TableIsNameSortedAndStable) {
  MetricsRegistry reg;
  reg.counter("z").inc();
  reg.counter("a").inc(2);
  reg.gauge("m").set(0.5);
  const MetricsSnapshot snap = reg.snapshot();
  const Table t = snap.table();
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.at(0, 0), "a");
  EXPECT_EQ(t.at(1, 0), "z");
  EXPECT_EQ(t.at(2, 0), "m");
  // Same content twice → same bytes (the determinism tests rely on this).
  EXPECT_EQ(snap.csv(), reg.snapshot().csv());
}

}  // namespace
}  // namespace psn
