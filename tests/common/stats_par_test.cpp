// Regression test for the SampleSet lazy-sort data race: ensure_sorted()
// used to const_cast and sort inside const observers, so two threads reading
// percentiles of a shared SampleSet raced on the sample vector. Samples are
// now kept sorted eagerly, making every const observer a pure read. Run
// under -DPSN_SANITIZE=thread (label: par) to prove it.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/stats.hpp"

namespace psn {
namespace {

TEST(SampleSetParTest, ConcurrentConstReadsAreRaceFree) {
  SampleSet set;
  // Insert out of order so the old lazy path would have had to sort on the
  // first concurrent read.
  for (int i = 999; i >= 0; --i) set.add(static_cast<double>(i % 97));

  constexpr std::size_t kThreads = 8;
  std::vector<double> medians(kThreads), p99s(kThreads), mins(kThreads),
      maxs(kThreads);
  {
    std::vector<std::jthread> readers;
    readers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      readers.emplace_back([&, t] {
        for (int rep = 0; rep < 100; ++rep) {
          medians[t] = set.median();
          p99s[t] = set.percentile(99.0);
          mins[t] = set.min();
          maxs[t] = set.max();
        }
      });
    }
  }
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(medians[t], medians[0]);
    EXPECT_DOUBLE_EQ(p99s[t], p99s[0]);
    EXPECT_DOUBLE_EQ(mins[t], 0.0);
    EXPECT_DOUBLE_EQ(maxs[t], 96.0);
  }
}

TEST(SampleSetParTest, SamplesAreAlwaysAscending) {
  SampleSet set;
  const double xs[] = {5.0, -1.0, 3.5, 3.5, 0.0, 100.0, -7.25};
  for (const double x : xs) {
    set.add(x);
    const auto& s = set.samples();
    for (std::size_t i = 1; i < s.size(); ++i) EXPECT_LE(s[i - 1], s[i]);
  }
  EXPECT_EQ(set.count(), 7u);
  EXPECT_DOUBLE_EQ(set.min(), -7.25);
  EXPECT_DOUBLE_EQ(set.max(), 100.0);
}

}  // namespace
}  // namespace psn
