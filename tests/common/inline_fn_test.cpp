#include "common/inline_fn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

namespace psn {
namespace {

using Fn = InlineFn<int(), 32>;

/// Callable that tallies constructions/destructions into external counters,
/// so storage bugs (double-destroy, leak on move, destroy of moved-from
/// source) show up as count mismatches.
struct Counted {
  int* constructed;
  int* destroyed;
  int value;

  Counted(int* c, int* d, int v) : constructed(c), destroyed(d), value(v) {
    ++*constructed;
  }
  Counted(const Counted& o)
      : constructed(o.constructed), destroyed(o.destroyed), value(o.value) {
    ++*constructed;
  }
  Counted(Counted&& o) noexcept
      : constructed(o.constructed), destroyed(o.destroyed), value(o.value) {
    ++*constructed;
  }
  ~Counted() { ++*destroyed; }
  int operator()() const { return value; }
};

TEST(InlineFnTest, InlineVsHeapBoundaryIsExact) {
  struct Fits {
    std::array<char, 32> pad;
    void operator()() const {}
  };
  struct Overflows {
    std::array<char, 33> pad;
    void operator()() const {}
  };
  using F = InlineFn<void(), 32>;
  static_assert(F::stores_inline<Fits>(), "exactly-at-capacity stays inline");
  static_assert(!F::stores_inline<Overflows>(), "one past capacity heaps");

  // A throwing move disqualifies a closure from the inline buffer even when
  // it fits: relocation must be noexcept for the scheduler's slab moves.
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&&) {}  // NOLINT: intentionally not noexcept
    void operator()() const {}
  };
  static_assert(!F::stores_inline<ThrowingMove>(),
                "throwing-move closures must heap-allocate");

  // Both variants still invoke fine; only the storage strategy differs.
  F inline_fn{Fits{}};
  F heap_fn{Overflows{}};
  inline_fn();
  heap_fn();
}

TEST(InlineFnTest, InvokesAndReturnsThroughBothStorages) {
  Fn small{[] { return 7; }};
  std::array<char, 64> big_pad{};
  big_pad[0] = 35;
  auto big_closure = [big_pad] { return static_cast<int>(big_pad[0]); };
  static_assert(!Fn::stores_inline<decltype(big_closure)>());
  Fn big{big_closure};
  EXPECT_EQ(small(), 7);
  EXPECT_EQ(big(), 35);
}

TEST(InlineFnTest, MoveTransfersInlineTarget) {
  int constructed = 0;
  int destroyed = 0;
  {
    Fn a{Counted(&constructed, &destroyed, 11)};
    Fn b{std::move(a)};
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(b(), 11);
  }
  EXPECT_EQ(constructed, destroyed);  // every construction matched by destroy
}

TEST(InlineFnTest, MoveTransfersHeapCellWithoutCopying) {
  int constructed = 0;
  int destroyed = 0;
  struct BigCounted : Counted {
    std::array<char, 64> pad{};
    using Counted::Counted;
    BigCounted(const BigCounted&) = default;
    BigCounted(BigCounted&&) noexcept = default;
  };
  static_assert(!Fn::stores_inline<BigCounted>());
  {
    Fn a{BigCounted(&constructed, &destroyed, 5)};
    const int constructed_before_move = constructed;
    Fn b{std::move(a)};
    // The heap cell's ownership moved with the pointer: no new object.
    EXPECT_EQ(constructed, constructed_before_move);
    EXPECT_EQ(b(), 5);
  }
  EXPECT_EQ(constructed, destroyed);
}

TEST(InlineFnTest, MoveAssignDestroysPreviousTarget) {
  int constructed = 0;
  int destroyed = 0;
  Fn a{Counted(&constructed, &destroyed, 1)};
  const int destroyed_before = destroyed;
  a = Fn{[] { return 2; }};
  EXPECT_GT(destroyed, destroyed_before);  // old target destroyed
  EXPECT_EQ(a(), 2);
  // Every Counted ever constructed is destroyed — no double-destroy, no leak.
  EXPECT_EQ(constructed, destroyed);
}

TEST(InlineFnTest, ResetDestroysAndEmpties) {
  int constructed = 0;
  int destroyed = 0;
  Fn a{Counted(&constructed, &destroyed, 3)};
  a.reset();
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(constructed, destroyed);
  a.reset();  // idempotent on empty
  EXPECT_EQ(constructed, destroyed);
}

TEST(InlineFnTest, DefaultConstructedIsEmpty) {
  Fn a;
  EXPECT_FALSE(static_cast<bool>(a));
}

TEST(InlineFnTest, HoldsMoveOnlyClosures) {
  // std::function cannot hold this; InlineFn is move-only so it can.
  auto owner = std::make_unique<int>(42);
  InlineFn<int()> f{[owner = std::move(owner)] { return *owner; }};
  InlineFn<int()> g{std::move(f)};
  EXPECT_EQ(g(), 42);
}

TEST(InlineFnTest, ForwardsArguments) {
  InlineFn<int(int, int)> add{[](int a, int b) { return a + b; }};
  EXPECT_EQ(add(2, 3), 5);
  InlineFn<void(std::unique_ptr<int>&&, int&)> sink{
      [](std::unique_ptr<int>&& p, int& out) { out = *p; }};
  int out = 0;
  sink(std::make_unique<int>(9), out);
  EXPECT_EQ(out, 9);
}

}  // namespace
}  // namespace psn
