#include "common/sim_time.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace psn {
namespace {

using namespace psn::time_literals;

TEST(DurationTest, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::seconds(1).count_nanos(), 1'000'000'000);
  EXPECT_EQ(Duration::millis(1).count_nanos(), 1'000'000);
  EXPECT_EQ(Duration::micros(1).count_nanos(), 1'000);
  EXPECT_EQ(Duration::nanos(1).count_nanos(), 1);
  EXPECT_EQ(Duration::seconds(2), Duration::millis(2000));
}

TEST(DurationTest, LiteralsMatchFactories) {
  EXPECT_EQ(5_s, Duration::seconds(5));
  EXPECT_EQ(250_ms, Duration::millis(250));
  EXPECT_EQ(7_us, Duration::micros(7));
  EXPECT_EQ(13_ns, Duration::nanos(13));
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ(1_s + 500_ms, Duration::millis(1500));
  EXPECT_EQ(1_s - 250_ms, Duration::millis(750));
  EXPECT_EQ(100_ms * 3, Duration::millis(300));
  EXPECT_EQ(1_s / 4, Duration::millis(250));
  EXPECT_EQ(-(3_ms), Duration::millis(-3));
  Duration d = 1_s;
  d += 1_ms;
  d -= 2_ms;
  EXPECT_EQ(d, Duration::nanos(999'000'000));
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_LE(5_us, 5_us);
  EXPECT_EQ(Duration::zero(), 0_ns);
}

TEST(DurationTest, FromSecondsRoundsToNearestNano) {
  EXPECT_EQ(Duration::from_seconds(1.5).count_nanos(), 1'500'000'000);
  EXPECT_EQ(Duration::from_seconds(1e-9).count_nanos(), 1);
  EXPECT_EQ(Duration::from_seconds(0.49e-9).count_nanos(), 0);
  EXPECT_EQ(Duration::from_seconds(-2.0).count_nanos(), -2'000'000'000);
}

TEST(DurationTest, FromSecondsRejectsNonFinite) {
  EXPECT_THROW(Duration::from_seconds(std::numeric_limits<double>::infinity()),
               InvariantError);
  EXPECT_THROW(Duration::from_seconds(std::nan("")), InvariantError);
}

TEST(DurationTest, ToSecondsRoundTrip) {
  EXPECT_DOUBLE_EQ((1500_ms).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ((1500_ms).to_millis(), 1500.0);
}

TEST(DurationTest, ScaledRounds) {
  EXPECT_EQ((100_ms).scaled(0.5), 50_ms);
  EXPECT_EQ((3_ns).scaled(0.5), 2_ns);  // round-half-away behavior of llround
  EXPECT_EQ((100_ms).scaled(-1.0), -(100_ms));
}

TEST(DurationTest, Abs) {
  EXPECT_EQ((-(5_ms)).abs(), 5_ms);
  EXPECT_EQ((5_ms).abs(), 5_ms);
  EXPECT_EQ(Duration::zero().abs(), Duration::zero());
}

TEST(DurationTest, FormattingPicksUnit) {
  EXPECT_EQ((2_s).to_string(), "2.000s");
  EXPECT_EQ((1500_ms).to_string(), "1.500s");
  EXPECT_EQ((250_ms).to_string(), "250.000ms");
  EXPECT_EQ((10_us).to_string(), "10.000us");
  EXPECT_EQ((42_ns).to_string(), "42ns");
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + 5_s;
  EXPECT_EQ(t1.count_nanos(), 5'000'000'000);
  EXPECT_EQ(t1 - t0, 5_s);
  EXPECT_EQ(t1 - 1_s, t0 + 4_s);
  SimTime t = t1;
  t += 500_ms;
  EXPECT_EQ(t - t1, 500_ms);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::zero(), SimTime::zero() + 1_ns);
  EXPECT_EQ(SimTime::max(), SimTime::max());
  EXPECT_LT(SimTime::from_seconds(1.0), SimTime::max());
}

TEST(SimTimeTest, FromSecondsRejectsNegative) {
  EXPECT_THROW(SimTime::from_seconds(-1.0), InvariantError);
}

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime{}, SimTime::zero());
  EXPECT_EQ(Duration{}, Duration::zero());
}

}  // namespace
}  // namespace psn
