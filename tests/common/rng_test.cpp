#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace psn {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) same++;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng r(0);
  const double v = r.uniform01();
  EXPECT_GE(v, 0.0);
  EXPECT_LT(v, 1.0);
}

TEST(RngTest, SubstreamsAreIndependentOfSiblings) {
  Rng parent(42);
  Rng s1 = parent.substream("alpha");
  Rng s2 = parent.substream("beta");
  // Streams keyed by different names must differ...
  EXPECT_NE(s1.uniform01(), s2.uniform01());
  // ...and re-deriving the same name yields the same stream.
  Rng parent2(42);
  Rng s1_again = parent2.substream("alpha");
  Rng s1_ref = Rng(42).substream("alpha");
  EXPECT_DOUBLE_EQ(s1_again.uniform01(), s1_ref.uniform01());
}

TEST(RngTest, SubstreamDoesNotAdvanceParent) {
  Rng a(7), b(7);
  (void)a.substream("x");
  (void)a.substream("y", 3);
  EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(RngTest, SubstreamIndexMatters) {
  Rng parent(9);
  Rng s0 = parent.substream("node", 0);
  Rng s1 = parent.substream("node", 1);
  EXPECT_NE(s0.uniform01(), s1.uniform01());
}

TEST(RngTest, Uniform01InRange) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng r(6);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
  EXPECT_THROW(r.uniform(1.0, 0.0), InvariantError);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliRate) {
  Rng r(8);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  EXPECT_THROW(r.bernoulli(1.5), InvariantError);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMean) {
  Rng r(10);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.exponential(2.5));
  EXPECT_NEAR(s.mean(), 2.5, 0.1);
  EXPECT_THROW(r.exponential(0.0), InvariantError);
}

TEST(RngTest, NormalMoments) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialGapNeverZero) {
  Rng r(12);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(r.exponential_gap(1e9).count_nanos(), 1);
  }
}

TEST(RngTest, ExponentialGapMatchesRate) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    s.add(r.exponential_gap(50.0).to_seconds());
  }
  EXPECT_NEAR(s.mean(), 1.0 / 50.0, 0.002);
}

TEST(RngTest, UniformDurationBounds) {
  Rng r(14);
  const Duration lo = Duration::millis(10), hi = Duration::millis(20);
  for (int i = 0; i < 1000; ++i) {
    const Duration d = r.uniform_duration(lo, hi);
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
}

TEST(Mix64Test, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(0), 0u);
}

TEST(HashNameTest, DistinguishesNames) {
  EXPECT_EQ(hash_name("abc"), hash_name("abc"));
  EXPECT_NE(hash_name("abc"), hash_name("abd"));
  EXPECT_NE(hash_name(""), hash_name("a"));
}

}  // namespace
}  // namespace psn
