// Unit tests of the four logical clock protocols against the paper's rules:
// SC1–SC3 (Lamport), VC1–VC3 (Mattern/Fidge), SSC1–SSC2 (strobe scalar),
// SVC1–SVC2 (strobe vector). The distinguishing behaviors of §4.2.3 are each
// pinned by a test.

#include <gtest/gtest.h>

#include "clocks/lamport.hpp"
#include "clocks/strobe_scalar.hpp"
#include "clocks/strobe_vector.hpp"
#include "clocks/vector_clock.hpp"
#include "common/error.hpp"

namespace psn::clocks {
namespace {

TEST(LamportClockTest, SC1TickIncrements) {
  LamportClock c(0);
  EXPECT_EQ(c.current().value, 0u);
  EXPECT_EQ(c.tick().value, 1u);
  EXPECT_EQ(c.tick().value, 2u);
}

TEST(LamportClockTest, SC2SendTicksAndStamps) {
  LamportClock c(1);
  const ScalarStamp sent = c.on_send();
  EXPECT_EQ(sent.value, 1u);
  EXPECT_EQ(sent.pid, 1u);
}

TEST(LamportClockTest, SC3ReceiveMaxesThenTicks) {
  LamportClock c(0);
  c.tick();  // 1
  const ScalarStamp after = c.on_receive({10, 1});
  EXPECT_EQ(after.value, 11u);  // max(1,10)+1
  // Receiving an old stamp still ticks.
  EXPECT_EQ(c.on_receive({3, 1}).value, 12u);
}

TEST(LamportClockTest, ClockConditionOnMessageChain) {
  // send at P0 then receive at P1: receive stamp > send stamp.
  LamportClock p0(0), p1(1);
  p1.tick();
  p1.tick();
  const ScalarStamp sent = p0.on_send();
  const ScalarStamp recvd = p1.on_receive(sent);
  EXPECT_LT(sent, recvd);
}

TEST(MatternVectorClockTest, VC1TicksOwnComponentOnly) {
  MatternVectorClock c(1, 3);
  c.tick();
  c.tick();
  EXPECT_EQ(c.current(), VectorStamp({0, 2, 0}));
}

TEST(MatternVectorClockTest, VC3MergesThenTicks) {
  MatternVectorClock c(0, 3);
  c.tick();  // [1,0,0]
  const VectorStamp got = c.on_receive(VectorStamp({0, 4, 1}));
  EXPECT_EQ(got, VectorStamp({2, 4, 1}));
}

TEST(MatternVectorClockTest, SendThenReceiveOrdersStamps) {
  MatternVectorClock a(0, 2), b(1, 2);
  b.tick();
  const VectorStamp sent = a.on_send();
  const VectorStamp recvd = b.on_receive(sent);
  EXPECT_TRUE(happens_before(sent, recvd));
}

TEST(MatternVectorClockTest, IndependentProcessesAreConcurrent) {
  MatternVectorClock a(0, 2), b(1, 2);
  const VectorStamp sa = a.tick();
  const VectorStamp sb = b.tick();
  EXPECT_TRUE(concurrent(sa, sb));
}

TEST(MatternVectorClockTest, PidOutOfRangeThrows) {
  EXPECT_THROW(MatternVectorClock(3, 3), InvariantError);
}

TEST(StrobeScalarClockTest, SSC1TicksAndReturnsBroadcastValue) {
  StrobeScalarClock c(2);
  const ScalarStamp s = c.on_relevant_event();
  EXPECT_EQ(s.value, 1u);
  EXPECT_EQ(s.pid, 2u);
}

TEST(StrobeScalarClockTest, SSC2MergesWithoutTick) {
  // Paper §4.2.3 point 2: "on receiving a strobe, the receiver updates its
  // clock but does not tick locally" — unlike SC3.
  StrobeScalarClock c(0);
  c.on_relevant_event();  // 1
  c.on_strobe({10, 1});
  EXPECT_EQ(c.current().value, 10u);  // max(1,10), NOT 11
  c.on_strobe({4, 1});
  EXPECT_EQ(c.current().value, 10u);  // old strobe is a no-op
}

TEST(StrobeScalarClockTest, MonotoneUnderAnyStrobeSequence) {
  StrobeScalarClock c(0);
  std::uint64_t prev = 0;
  const std::uint64_t strobes[] = {3, 1, 7, 7, 2, 20, 5};
  for (const auto v : strobes) {
    c.on_strobe({v, 1});
    EXPECT_GE(c.current().value, prev);
    prev = c.current().value;
  }
}

TEST(StrobeVectorClockTest, SVC1TicksOwnComponent) {
  StrobeVectorClock c(1, 3);
  const VectorStamp s = c.on_relevant_event();
  EXPECT_EQ(s, VectorStamp({0, 1, 0}));
}

TEST(StrobeVectorClockTest, SVC2MergesWithoutOwnTick) {
  StrobeVectorClock c(0, 3);
  c.on_relevant_event();  // [1,0,0]
  c.on_strobe(VectorStamp({0, 5, 2}));
  EXPECT_EQ(c.current(), VectorStamp({1, 5, 2}));  // own component unchanged
}

TEST(StrobeVectorClockTest, CatchUpSemantics) {
  // Strobes make everyone's view of everyone's sense counts converge.
  StrobeVectorClock a(0, 2), b(1, 2);
  const VectorStamp s1 = a.on_relevant_event();
  b.on_strobe(s1);
  const VectorStamp s2 = b.on_relevant_event();
  EXPECT_EQ(s2, VectorStamp({1, 1}));  // b knows a's event
  a.on_strobe(s2);
  EXPECT_EQ(a.current(), VectorStamp({1, 1}));
}

TEST(StrobeVectorClockTest, RaceShowsAsConcurrentStamps) {
  // Two sensors tick before either strobe arrives: their stamps must be
  // concurrent — this is exactly the paper's "race within Delta".
  StrobeVectorClock a(0, 2), b(1, 2);
  const VectorStamp sa = a.on_relevant_event();
  const VectorStamp sb = b.on_relevant_event();
  EXPECT_TRUE(concurrent(sa, sb));
}

TEST(StrobeVectorClockTest, StrobeBeforeEventOrdersStamps) {
  // If b hears a's strobe before its own sense event, stamps are ordered:
  // no race.
  StrobeVectorClock a(0, 2), b(1, 2);
  const VectorStamp sa = a.on_relevant_event();
  b.on_strobe(sa);
  const VectorStamp sb = b.on_relevant_event();
  EXPECT_TRUE(happens_before(sa, sb));
}

TEST(StrobeVectorClockTest, PidOutOfRangeThrows) {
  EXPECT_THROW(StrobeVectorClock(2, 2), InvariantError);
}

}  // namespace
}  // namespace psn::clocks
