// Tests for the physical vector clock (paper §3.2.1.b.ii) and the hybrid
// logical clock extension.

#include <gtest/gtest.h>

#include <deque>

#include "clocks/hlc.hpp"
#include "clocks/physical_vector.hpp"
#include "common/rng.hpp"

namespace psn::clocks {
namespace {

using namespace psn::time_literals;

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

DriftingClock make_clock(Duration offset, std::uint64_t seed) {
  DriftingClockConfig cfg;
  cfg.initial_offset = offset;
  return DriftingClock(cfg, Rng(seed));
}

TEST(PhysicalVectorClockTest, TickRecordsLocalReading) {
  auto local = make_clock(5_ms, 1);
  PhysicalVectorClock clock(0, 2, local);
  clock.tick(t(100));
  EXPECT_EQ(clock.known_time_of(0), t(105));
  EXPECT_EQ(clock.known_time_of(1), SimTime::zero());
}

TEST(PhysicalVectorClockTest, MonotoneUnderJitter) {
  DriftingClockConfig cfg;
  cfg.read_jitter = 10_ms;
  DriftingClock local(cfg, Rng(2));
  PhysicalVectorClock clock(0, 1, local);
  SimTime prev = SimTime::zero();
  for (int i = 0; i < 200; ++i) {
    clock.tick(t(i));  // jitter (±10 ms) dwarfs the 1 ms step
    EXPECT_GT(clock.known_time_of(0), prev);
    prev = clock.known_time_of(0);
  }
}

TEST(PhysicalVectorClockTest, ReceiveMergesRemoteWallTimes) {
  auto la = make_clock(Duration::zero(), 3);
  auto lb = make_clock(50_ms, 4);
  PhysicalVectorClock a(0, 2, la), b(1, 2, lb);
  const auto sent = a.on_send(t(100));
  b.on_receive(sent, t(120));
  // b now knows a's wall time at the send (100 ms), and its own reading.
  EXPECT_EQ(b.known_time_of(0), t(100));
  EXPECT_EQ(b.known_time_of(1), t(170));  // 120 + 50 offset
}

TEST(PhysicalVectorClockTest, CausalityTracking) {
  auto la = make_clock(Duration::zero(), 5);
  auto lb = make_clock(Duration::zero(), 6);
  PhysicalVectorClock a(0, 2, la), b(1, 2, lb);

  const PhysicalVectorStamp sa = a.tick(t(10));
  const PhysicalVectorStamp sb = b.tick(t(11));
  EXPECT_EQ(compare(sa, sb), PhysicalOrdering::kConcurrent);

  const auto sent = a.on_send(t(20));
  const auto recvd = b.on_receive(sent, t(30));
  EXPECT_EQ(compare(sent, recvd), PhysicalOrdering::kBefore);
  EXPECT_EQ(compare(recvd, sent), PhysicalOrdering::kAfter);
}

TEST(PhysicalVectorClockTest, SkewedClocksStillTrackCausality) {
  // The point of §3.2.1.b.ii: components are unsynchronized wall times, yet
  // dominance still reflects causality because merging is max-based.
  auto la = make_clock(1_s, 7);        // way ahead
  auto lb = make_clock(-(1_s), 8);     // way behind
  PhysicalVectorClock a(0, 2, la), b(1, 2, lb);
  const auto sent = a.on_send(t(100));
  const auto recvd = b.on_receive(sent, t(150));
  EXPECT_EQ(compare(sent, recvd), PhysicalOrdering::kBefore);
}

TEST(HlcTest, TracksPhysicalTimeWhenIdle) {
  EpsSynchronizedClock phys(Duration::zero(), Rng(9));
  HybridLogicalClock hlc(0, phys);
  const HlcStamp s1 = hlc.tick(t(100));
  EXPECT_EQ(s1.l, t(100));
  EXPECT_EQ(s1.c, 0u);
  const HlcStamp s2 = hlc.tick(t(200));
  EXPECT_EQ(s2.l, t(200));
  EXPECT_EQ(s2.c, 0u);
}

TEST(HlcTest, CounterBreaksTiesWithoutMovingL) {
  EpsSynchronizedClock phys(Duration::zero(), Rng(10));
  HybridLogicalClock hlc(0, phys);
  hlc.tick(t(100));
  // Second event at the same physical instant: l stays, c increments.
  const HlcStamp s = hlc.tick(t(100));
  EXPECT_EQ(s.l, t(100));
  EXPECT_EQ(s.c, 1u);
}

TEST(HlcTest, ReceiveFromFutureAdoptsSenderTime) {
  EpsSynchronizedClock phys(Duration::zero(), Rng(11));
  HybridLogicalClock hlc(0, phys);
  hlc.tick(t(100));
  const HlcStamp incoming{t(500), 3};
  const HlcStamp s = hlc.on_receive(incoming, t(101));
  EXPECT_EQ(s.l, t(500));
  EXPECT_EQ(s.c, 4u);  // incoming.c + 1
  EXPECT_LT(incoming, s);
}

TEST(HlcTest, CausalityConsistencyAcrossMessages) {
  EpsSynchronizedClock pa(1_ms, Rng(12)), pb(1_ms, Rng(13));
  HybridLogicalClock a(0, pa), b(1, pb);
  const HlcStamp sent = a.tick(t(100));
  const HlcStamp recvd = b.on_receive(sent, t(105));
  EXPECT_LT(sent, recvd);
  const HlcStamp later = b.tick(t(200));
  EXPECT_LT(recvd, later);
}

TEST(HlcTest, StaysNearPhysicalTimeUnderBoundedDelay) {
  // With ε-synchronized clocks and Δ-bounded messages, HLC's l component
  // never exceeds (max physical reading sent so far): simulate a message
  // chain and check drift stays within ε + Δ of true time.
  const Duration eps = 1_ms;
  const Duration delta = 10_ms;
  Rng rng(14);
  std::vector<EpsSynchronizedClock> phys;
  std::vector<HybridLogicalClock> hlcs;
  for (ProcessId p = 0; p < 3; ++p) {
    phys.emplace_back(eps, rng.substream("p", p));
  }
  for (ProcessId p = 0; p < 3; ++p) {
    hlcs.emplace_back(p, phys[p]);
  }
  SimTime now = t(0);
  HlcStamp in_flight{};
  for (int step = 0; step < 300; ++step) {
    now += Duration::millis(1);
    const auto p = static_cast<ProcessId>(rng.uniform_int(0, 2));
    if (rng.bernoulli(0.5)) {
      in_flight = hlcs[p].tick(now);
    } else {
      const HlcStamp s = hlcs[p].on_receive(in_flight, now);
      const Duration divergence = s.l - now;
      EXPECT_LE(divergence, eps + delta + eps)
          << "HLC drifted beyond eps+Delta bound";
    }
  }
}

TEST(HlcStampTest, OrderingAndFormat) {
  const HlcStamp a{t(1), 5}, b{t(1), 6}, c{t(2), 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, a);
  EXPECT_NE(a.to_string().find("+5"), std::string::npos);
}

}  // namespace
}  // namespace psn::clocks
