#include "clocks/sync_protocols.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::clocks {
namespace {

using namespace psn::time_literals;

std::vector<DriftingClock> make_fleet(std::size_t n, Duration offset_spread,
                                      std::uint64_t seed) {
  std::vector<DriftingClock> clocks;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    DriftingClockConfig cfg;
    cfg.initial_offset =
        rng.uniform_duration(-offset_spread, offset_spread);
    cfg.read_jitter = 5_us;
    clocks.emplace_back(cfg, rng.substream("clock", i));
  }
  return clocks;
}

TEST(RbsSyncTest, ReducesSkewByOrdersOfMagnitude) {
  auto clocks = make_fleet(5, 50_ms, 1);
  const SimTime start = SimTime::from_seconds(1.0);
  const Duration before = max_pairwise_skew(clocks, start);
  ASSERT_GT(before, 10_ms);

  RbsSync rbs({.mean_delay = 500_us, .jitter = 50_us}, 8);
  Rng rng(2);
  const SyncReport report = rbs.run(clocks, start, rng);
  EXPECT_LT(report.achieved_skew, 1_ms);
  EXPECT_LT(report.achieved_skew, before / 10);
}

TEST(RbsSyncTest, AccountsMessagesAndBytes) {
  auto clocks = make_fleet(4, 10_ms, 3);
  RbsSync rbs({.mean_delay = 500_us, .jitter = 50_us}, 5);
  Rng rng(4);
  const SyncReport report = rbs.run(clocks, SimTime::from_seconds(1.0), rng);
  // Per round: 1 beacon + (n-1) exchanges.
  EXPECT_EQ(report.messages, 5u * (1 + 3));
  EXPECT_GT(report.bytes, 0u);
  EXPECT_EQ(report.residual_error_ns.count(), 3u);
}

TEST(RbsSyncTest, PerfectClocksStayPerfect) {
  std::vector<DriftingClock> clocks;
  for (int i = 0; i < 3; ++i) {
    clocks.emplace_back(DriftingClockConfig{}, Rng(static_cast<std::uint64_t>(i)));
  }
  RbsSync rbs({.mean_delay = 500_us, .jitter = Duration::zero()}, 3);
  Rng rng(5);
  const SyncReport report = rbs.run(clocks, SimTime::from_seconds(1.0), rng);
  EXPECT_EQ(report.achieved_skew, Duration::zero());
}

TEST(TpsnSyncTest, ReducesSkew) {
  auto clocks = make_fleet(5, 50_ms, 6);
  const SimTime start = SimTime::from_seconds(1.0);
  const Duration before = max_pairwise_skew(clocks, start);

  TpsnSync tpsn({.mean_delay = 500_us, .jitter = 50_us}, 4);
  Rng rng(7);
  const SyncReport report = tpsn.run(clocks, start, rng);
  EXPECT_LT(report.achieved_skew, before / 10);
  // TPSN residual is limited by delay asymmetry — sub-jitter scale.
  EXPECT_LT(report.achieved_skew, 1_ms);
}

TEST(TpsnSyncTest, MessageCountTwoPerRoundPerChild) {
  auto clocks = make_fleet(4, 10_ms, 8);
  TpsnSync tpsn({.mean_delay = 500_us, .jitter = 50_us}, 6);
  Rng rng(9);
  const SyncReport report = tpsn.run(clocks, SimTime::from_seconds(1.0), rng);
  EXPECT_EQ(report.messages, 3u * 6u * 2u);
}

TEST(SyncCompareTest, MoreRoundsImproveRbs) {
  // Averaging over more beacons shrinks the receive-jitter residual.
  RunningStats few, many;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto c1 = make_fleet(4, 20_ms, 100 + seed);
    auto c2 = make_fleet(4, 20_ms, 100 + seed);
    Rng r1(200 + seed), r2(300 + seed);
    RbsSync rbs1({.mean_delay = 500_us, .jitter = 200_us}, 1);
    RbsSync rbs16({.mean_delay = 500_us, .jitter = 200_us}, 16);
    few.add(rbs1.run(c1, SimTime::from_seconds(1.0), r1)
                .achieved_skew.to_seconds());
    many.add(rbs16.run(c2, SimTime::from_seconds(1.0), r2)
                 .achieved_skew.to_seconds());
  }
  EXPECT_LT(many.mean(), few.mean());
}

TEST(MaxPairwiseSkewTest, KnownOffsets) {
  std::vector<DriftingClock> clocks;
  for (const std::int64_t ms : {0, 3, 10}) {
    DriftingClockConfig cfg;
    cfg.initial_offset = Duration::millis(ms);
    clocks.emplace_back(cfg, Rng(1));
  }
  EXPECT_EQ(max_pairwise_skew(clocks, SimTime::from_seconds(5.0)), 10_ms);
}

TEST(SyncValidationTest, NeedsTwoClocks) {
  auto clocks = make_fleet(1, 1_ms, 10);
  RbsSync rbs({}, 1);
  Rng rng(11);
  EXPECT_THROW(rbs.run(clocks, SimTime::from_seconds(1.0), rng),
               InvariantError);
}

}  // namespace
}  // namespace psn::clocks
