#include "clocks/physical.hpp"

#include <gtest/gtest.h>

#include "clocks/clock_bundle.hpp"

namespace psn::clocks {
namespace {

using namespace psn::time_literals;

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

TEST(DriftingClockTest, PureOffset) {
  DriftingClockConfig cfg;
  cfg.initial_offset = 5_ms;
  DriftingClock c(cfg, Rng(1));
  EXPECT_EQ(c.read_exact(t(100)), t(105));
  EXPECT_EQ(c.true_error_at(t(100)), 5_ms);
}

TEST(DriftingClockTest, DriftAccumulates) {
  DriftingClockConfig cfg;
  cfg.drift_ppm = 100.0;  // 100 us per second
  DriftingClock c(cfg, Rng(2));
  EXPECT_EQ(c.read_exact(SimTime::from_seconds(10.0)),
            SimTime::from_seconds(10.0) + Duration::micros(1000));
}

TEST(DriftingClockTest, NegativeDriftLagsBehind) {
  DriftingClockConfig cfg;
  cfg.drift_ppm = -50.0;
  DriftingClock c(cfg, Rng(3));
  EXPECT_LT(c.read_exact(SimTime::from_seconds(100.0)),
            SimTime::from_seconds(100.0));
}

TEST(DriftingClockTest, CorrectionShiftsReading) {
  DriftingClockConfig cfg;
  cfg.initial_offset = 10_ms;
  DriftingClock c(cfg, Rng(4));
  c.apply_correction(-(10_ms));
  EXPECT_EQ(c.read_exact(t(50)), t(50));
  EXPECT_EQ(c.true_error_at(t(50)), Duration::zero());
  c.apply_correction(2_ms);
  EXPECT_EQ(c.true_error_at(t(50)), 2_ms);
}

TEST(DriftingClockTest, ReadJitterBounded) {
  DriftingClockConfig cfg;
  cfg.read_jitter = 100_us;
  DriftingClock c(cfg, Rng(5));
  for (int i = 0; i < 1000; ++i) {
    const Duration err = c.read(t(10)) - t(10);
    EXPECT_LE(err.abs(), 100_us);
  }
}

TEST(DriftingClockTest, JitterlessReadEqualsExact) {
  DriftingClockConfig cfg;
  cfg.initial_offset = 3_ms;
  DriftingClock c(cfg, Rng(6));
  EXPECT_EQ(c.read(t(7)), c.read_exact(t(7)));
}

TEST(EpsSynchronizedClockTest, AlwaysWithinEpsilon) {
  EpsSynchronizedClock c(1_ms, Rng(7));
  for (int i = 0; i < 5000; ++i) {
    const Duration err = c.read(t(i)) - t(i);
    EXPECT_LE(err.abs(), 1_ms) << "reading strayed beyond eps";
  }
}

TEST(EpsSynchronizedClockTest, ZeroEpsilonIsPerfect) {
  EpsSynchronizedClock c(Duration::zero(), Rng(8));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c.read(t(i)), t(i));
}

TEST(EpsSynchronizedClockTest, DistinctProcessesGetDistinctOffsets) {
  EpsSynchronizedClock a(1_ms, Rng(9));
  EpsSynchronizedClock b(1_ms, Rng(10));
  EXPECT_NE(a.offset(), b.offset());
}

TEST(ClockBundleTest, SnapshotReflectsAllClocks) {
  ClockBundleConfig cfg;
  cfg.sync_epsilon = 500_us;
  ClockBundle bundle(1, 3, cfg, Rng(11));
  bundle.on_sense_event();
  const ClockSnapshot s = bundle.snapshot(t(42));
  EXPECT_EQ(s.true_time, t(42));
  EXPECT_EQ(s.lamport.value, 1u);
  EXPECT_EQ(s.causal_vector, VectorStamp({0, 1, 0}));
  EXPECT_EQ(s.strobe_scalar.value, 1u);
  EXPECT_EQ(s.strobe_vector, VectorStamp({0, 1, 0}));
  EXPECT_LE((s.physical_synced - t(42)).abs(), 500_us);
}

TEST(ClockBundleTest, InternalEventTicksCausalOnly) {
  ClockBundleConfig cfg;
  ClockBundle bundle(0, 2, cfg, Rng(12));
  bundle.on_internal_event();
  EXPECT_EQ(bundle.lamport().current().value, 1u);
  EXPECT_EQ(bundle.causal_vector().current(), VectorStamp({1, 0}));
  EXPECT_EQ(bundle.strobe_scalar().current().value, 0u);
  EXPECT_EQ(bundle.strobe_vector().current(), VectorStamp({0, 0}));
}

TEST(ClockBundleTest, StrobesDoNotPolluteCausalClocks) {
  // The paper's §4.2 warning, enforced by construction: receiving strobes
  // must leave the Lamport/Mattern clocks untouched, else strobe traffic
  // manufactures false causality.
  ClockBundleConfig cfg;
  ClockBundle bundle(0, 2, cfg, Rng(13));
  bundle.on_internal_event();
  const auto lamport_before = bundle.lamport().current();
  const auto vector_before = bundle.causal_vector().current();
  bundle.on_strobe({50, 1}, VectorStamp({0, 50}));
  EXPECT_EQ(bundle.lamport().current(), lamport_before);
  EXPECT_EQ(bundle.causal_vector().current(), vector_before);
  // ...while the strobe clocks did merge.
  EXPECT_EQ(bundle.strobe_scalar().current().value, 50u);
  EXPECT_EQ(bundle.strobe_vector().current(), VectorStamp({0, 50}));
}

TEST(ClockBundleTest, ComputationMessagesDoNotTouchStrobeClocks) {
  // Dual of the above: semantic message receipt drives SC3/VC3 only.
  ClockBundleConfig cfg;
  ClockBundle bundle(0, 2, cfg, Rng(14));
  PiggybackStamps stamps;
  stamps.lamport = {9, 1};
  stamps.causal_vector = VectorStamp({0, 9});
  bundle.on_receive(stamps);
  EXPECT_EQ(bundle.lamport().current().value, 10u);
  EXPECT_EQ(bundle.causal_vector().current(), VectorStamp({1, 9}));
  EXPECT_EQ(bundle.strobe_scalar().current().value, 0u);
  EXPECT_EQ(bundle.strobe_vector().current(), VectorStamp({0, 0}));
}

TEST(ClockBundleTest, SenseTicksEverything) {
  ClockBundleConfig cfg;
  ClockBundle bundle(1, 2, cfg, Rng(15));
  const StrobeOut out = bundle.on_sense_event();
  EXPECT_EQ(out.scalar.value, 1u);
  EXPECT_EQ(out.vector, VectorStamp({0, 1}));
  EXPECT_EQ(bundle.lamport().current().value, 1u);
  EXPECT_EQ(bundle.causal_vector().current(), VectorStamp({0, 1}));
}

}  // namespace
}  // namespace psn::clocks
