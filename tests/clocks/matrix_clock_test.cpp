#include "clocks/matrix_clock.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::clocks {
namespace {

TEST(MatrixClockTest, TickAdvancesOwnDiagonal) {
  MatrixClock m(1, 3);
  m.tick();
  m.tick();
  EXPECT_EQ(m.vector(), VectorStamp({0, 2, 0}));
  EXPECT_EQ(m.matrix()[0], VectorStamp({0, 0, 0}));
  EXPECT_EQ(m.matrix()[2], VectorStamp({0, 0, 0}));
}

TEST(MatrixClockTest, OwnRowIsVectorClock) {
  // The own row must evolve exactly like a Mattern/Fidge vector clock.
  MatrixClock a(0, 2), b(1, 2);
  const auto& sent = a.on_send();
  b.on_receive(0, sent);
  EXPECT_EQ(b.vector(), VectorStamp({1, 1}));
  const auto& sent2 = b.on_send();
  a.on_receive(1, sent2);
  EXPECT_EQ(a.vector(), VectorStamp({2, 2}));
}

TEST(MatrixClockTest, LearnsWhatOthersKnow) {
  MatrixClock a(0, 3), b(1, 3), c(2, 3);
  // a tells b; then b tells c. c must know that b knows a's event.
  b.on_receive(0, a.on_send());
  c.on_receive(1, b.on_send());
  EXPECT_GE(c.matrix()[1][0], 1u) << "c should know b knows a's event";
  EXPECT_GE(c.vector()[0], 1u);
  // But c has no evidence that a knows anything of b.
  EXPECT_EQ(c.matrix()[0][1], 0u);
}

TEST(MatrixClockTest, GarbageCollectionWatermark) {
  // Process 0 produces events; once everyone has heard (and 0 has heard
  // that they heard), all_know_of(0) rises to the produced count.
  MatrixClock a(0, 3), b(1, 3), c(2, 3);
  a.tick();
  a.tick();  // two events at a
  EXPECT_EQ(a.all_know_of(0), 0u);  // nobody else knows yet

  // a → b, a → c: both learn.
  b.on_receive(0, a.on_send());  // a's 3rd event (the send)
  c.on_receive(0, a.on_send());  // a's 4th event
  // Acks flow back: b → a, c → a.
  a.on_receive(1, b.on_send());
  a.on_receive(2, c.on_send());

  // Everyone (as far as a knows) has seen at least a's first 3 events.
  EXPECT_GE(a.all_know_of(0), 3u);
  // b, however, has not heard back from c, so b's watermark stays lower.
  EXPECT_LT(b.all_know_of(0), a.all_know_of(0));
}

TEST(MatrixClockTest, WatermarkNeverExceedsTruth) {
  // The low-watermark is conservative: as long as any process has not been
  // heard from, it pins the watermark at zero.
  MatrixClock a(0, 3), b(1, 3);  // process 2 stays silent
  for (int i = 0; i < 5; ++i) a.tick();
  EXPECT_EQ(a.all_know_of(0), 0u);
  b.on_receive(0, a.on_send());
  // b knows a's 6 events, and knows a knows them — but process 2's row is
  // still all-zero, so nothing may be collected.
  EXPECT_EQ(b.vector()[0], 6u);
  EXPECT_EQ(b.all_know_of(0), 0u);
  a.on_receive(1, b.on_send());
  EXPECT_EQ(a.all_know_of(0), 0u);  // still gated by the silent process
}

TEST(MatrixClockTest, DimensionChecks) {
  EXPECT_THROW(MatrixClock(3, 3), InvariantError);
  MatrixClock a(0, 2);
  MatrixClock big(0, 3);
  EXPECT_THROW(a.on_receive(1, big.matrix()), InvariantError);
  EXPECT_THROW(a.all_know_of(5), InvariantError);
}

}  // namespace
}  // namespace psn::clocks
