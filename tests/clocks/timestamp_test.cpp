#include "clocks/timestamp.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::clocks {
namespace {

TEST(ScalarStampTest, TotalOrderByValueThenPid) {
  const ScalarStamp a{5, 1}, b{5, 2}, c{6, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(compare(a, b), Ordering::kBefore);
  EXPECT_EQ(compare(c, a), Ordering::kAfter);
  EXPECT_EQ(compare(a, a), Ordering::kEqual);
}

TEST(ScalarStampTest, NeverConcurrent) {
  // A scalar stamp order is total: races are invisible (paper §3.3).
  const ScalarStamp a{5, 1}, b{5, 2};
  EXPECT_NE(compare(a, b), Ordering::kConcurrent);
}

TEST(ScalarStampTest, WireSizeIsConstant) {
  EXPECT_EQ(ScalarStamp::wire_size(), 8u);
}

TEST(ScalarStampTest, ToString) {
  EXPECT_EQ((ScalarStamp{7, 2}).to_string(), "7@2");
}

TEST(VectorStampTest, CompareBeforeAfterEqual) {
  VectorStamp a({1, 2, 3});
  VectorStamp b({1, 2, 3});
  VectorStamp c({2, 2, 3});
  EXPECT_EQ(compare(a, b), Ordering::kEqual);
  EXPECT_EQ(compare(a, c), Ordering::kBefore);
  EXPECT_EQ(compare(c, a), Ordering::kAfter);
  EXPECT_TRUE(happens_before(a, c));
  EXPECT_FALSE(happens_before(c, a));
  EXPECT_FALSE(happens_before(a, b));  // equal is not before
}

TEST(VectorStampTest, Concurrency) {
  VectorStamp a({2, 0});
  VectorStamp b({0, 2});
  EXPECT_EQ(compare(a, b), Ordering::kConcurrent);
  EXPECT_TRUE(concurrent(a, b));
  EXPECT_TRUE(concurrent(b, a));
  EXPECT_FALSE(concurrent(a, a));
}

TEST(VectorStampTest, MergeIsComponentwiseMax) {
  VectorStamp a({1, 5, 2});
  VectorStamp b({3, 1, 2});
  a.merge(b);
  EXPECT_EQ(a, VectorStamp({3, 5, 2}));
  // Merge is idempotent.
  a.merge(b);
  EXPECT_EQ(a, VectorStamp({3, 5, 2}));
}

TEST(VectorStampTest, MergeYieldsLeastUpperBound) {
  VectorStamp a({2, 0, 1});
  VectorStamp b({0, 3, 1});
  VectorStamp m = a;
  m.merge(b);
  EXPECT_TRUE(a.dominated_by(m));
  EXPECT_TRUE(b.dominated_by(m));
}

TEST(VectorStampTest, DimensionMismatchThrows) {
  VectorStamp a(2), b(3);
  EXPECT_THROW(a.merge(b), InvariantError);
  EXPECT_THROW((void)a.dominated_by(b), InvariantError);
}

TEST(VectorStampTest, WireSizeGrowsWithN) {
  EXPECT_EQ(VectorStamp(1).wire_size(), 8u);
  EXPECT_EQ(VectorStamp(16).wire_size(), 128u);
}

TEST(VectorStampTest, ToString) {
  EXPECT_EQ(VectorStamp({1, 0, 4}).to_string(), "[1,0,4]");
}

TEST(OrderingTest, Names) {
  EXPECT_STREQ(to_string(Ordering::kBefore), "before");
  EXPECT_STREQ(to_string(Ordering::kConcurrent), "concurrent");
}

}  // namespace
}  // namespace psn::clocks
