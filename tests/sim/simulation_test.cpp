#include "sim/simulation.hpp"

#include <gtest/gtest.h>

namespace psn::sim {
namespace {

using namespace psn::time_literals;

TEST(SimulationTest, StopsAtHorizon) {
  SimConfig cfg;
  cfg.horizon = SimTime::zero() + 10_ms;
  Simulation sim(cfg);
  int fired = 0;
  // A self-perpetuating 1 ms heartbeat.
  std::function<void()> beat = [&] {
    fired++;
    sim.scheduler().schedule_after(1_ms, beat);
  };
  sim.scheduler().schedule_after(1_ms, beat);
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_LE(sim.now(), cfg.horizon);
}

TEST(SimulationTest, MaxEventsSafetyValve) {
  SimConfig cfg;
  cfg.horizon = SimTime::zero() + 1_s;
  cfg.max_events = 25;
  Simulation sim(cfg);
  int fired = 0;
  std::function<void()> loop = [&] {
    fired++;
    sim.scheduler().schedule_after(Duration::nanos(1), loop);
  };
  sim.scheduler().schedule_after(Duration::nanos(1), loop);
  const std::size_t executed = sim.run();
  EXPECT_EQ(executed, 25u);
  EXPECT_EQ(fired, 25);
}

TEST(SimulationTest, RngForIsDeterministicPerComponent) {
  SimConfig cfg;
  cfg.seed = 99;
  Simulation a(cfg), b(cfg);
  EXPECT_DOUBLE_EQ(a.rng_for("gen", 1).uniform01(),
                   b.rng_for("gen", 1).uniform01());
  EXPECT_NE(a.rng_for("gen", 1).uniform01(), a.rng_for("gen", 2).uniform01());
  EXPECT_NE(a.rng_for("gen").uniform01(), a.rng_for("net").uniform01());
}

TEST(SimulationTest, DifferentSeedsDifferentDraws) {
  SimConfig a_cfg, b_cfg;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  Simulation a(a_cfg), b(b_cfg);
  EXPECT_NE(a.rng_for("x").uniform01(), b.rng_for("x").uniform01());
}

TEST(SimulationTest, EventsBeyondHorizonDoNotRun) {
  SimConfig cfg;
  cfg.horizon = SimTime::zero() + 5_ms;
  Simulation sim(cfg);
  bool late = false;
  sim.scheduler().schedule_at(SimTime::zero() + 6_ms, [&] { late = true; });
  sim.run();
  EXPECT_FALSE(late);
}

}  // namespace
}  // namespace psn::sim
