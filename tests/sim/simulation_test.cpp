#include "sim/simulation.hpp"

#include <gtest/gtest.h>

namespace psn::sim {
namespace {

using namespace psn::time_literals;

TEST(SimulationTest, StopsAtHorizon) {
  SimConfig cfg;
  cfg.horizon = SimTime::zero() + 10_ms;
  Simulation sim(cfg);
  int fired = 0;
  // A self-perpetuating 1 ms heartbeat.
  std::function<void()> beat = [&] {
    fired++;
    sim.scheduler().schedule_after(1_ms, beat);
  };
  sim.scheduler().schedule_after(1_ms, beat);
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_LE(sim.now(), cfg.horizon);
}

TEST(SimulationTest, MaxEventsSafetyValve) {
  SimConfig cfg;
  cfg.horizon = SimTime::zero() + 1_s;
  cfg.max_events = 25;
  Simulation sim(cfg);
  int fired = 0;
  std::function<void()> loop = [&] {
    fired++;
    sim.scheduler().schedule_after(Duration::nanos(1), loop);
  };
  sim.scheduler().schedule_after(Duration::nanos(1), loop);
  const std::size_t executed = sim.run();
  EXPECT_EQ(executed, 25u);
  EXPECT_EQ(fired, 25);
}

TEST(SimulationTest, RunawaySameInstantRescheduleStopsAtCapAndReports) {
  // Regression: an event that reschedules itself *at the current instant*
  // never advances time, so only the max_events cap can stop it. The run
  // must stop exactly at the cap and report truncation — not spin on toward
  // SIZE_MAX.
  SimConfig cfg;
  cfg.horizon = SimTime::zero() + 1_s;
  cfg.max_events = 1000;
  Simulation sim(cfg);
  std::size_t fired = 0;
  std::function<void()> runaway = [&] {
    fired++;
    sim.scheduler().schedule_after(Duration::zero(), runaway);
  };
  sim.scheduler().schedule_after(1_ms, runaway);
  EXPECT_EQ(sim.run(), 1000u);
  EXPECT_EQ(fired, 1000u);
  EXPECT_TRUE(sim.truncated());
  EXPECT_EQ(sim.scheduler().pending(), 1u);  // the cut-off reschedule
}

TEST(SimulationTest, CleanRunToHorizonIsNotTruncated) {
  SimConfig cfg;
  cfg.horizon = SimTime::zero() + 10_ms;
  Simulation sim(cfg);
  sim.scheduler().schedule_after(1_ms, [] {});
  sim.run();
  EXPECT_FALSE(sim.truncated());
}

TEST(SimulationTest, ExactlyCapEventsWithNoPendingWorkIsNotTruncated) {
  // Cap/overflow interplay: finishing with total == max_events is only a
  // truncation if work remained; a calendar that drained exactly at the cap
  // is a complete run.
  SimConfig cfg;
  cfg.horizon = SimTime::zero() + 1_s;
  cfg.max_events = 3;
  Simulation sim(cfg);
  for (int i = 1; i <= 3; ++i) {
    sim.scheduler().schedule_after(Duration::millis(i), [] {});
  }
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_FALSE(sim.truncated());
}

TEST(SimulationTest, RngForIsDeterministicPerComponent) {
  SimConfig cfg;
  cfg.seed = 99;
  Simulation a(cfg), b(cfg);
  EXPECT_DOUBLE_EQ(a.rng_for("gen", 1).uniform01(),
                   b.rng_for("gen", 1).uniform01());
  EXPECT_NE(a.rng_for("gen", 1).uniform01(), a.rng_for("gen", 2).uniform01());
  EXPECT_NE(a.rng_for("gen").uniform01(), a.rng_for("net").uniform01());
}

TEST(SimulationTest, DifferentSeedsDifferentDraws) {
  SimConfig a_cfg, b_cfg;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  Simulation a(a_cfg), b(b_cfg);
  EXPECT_NE(a.rng_for("x").uniform01(), b.rng_for("x").uniform01());
}

TEST(SimulationTest, EventsBeyondHorizonDoNotRun) {
  SimConfig cfg;
  cfg.horizon = SimTime::zero() + 5_ms;
  Simulation sim(cfg);
  bool late = false;
  sim.scheduler().schedule_at(SimTime::zero() + 6_ms, [&] { late = true; });
  sim.run();
  EXPECT_FALSE(late);
}

}  // namespace
}  // namespace psn::sim
