#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace psn::sim {
namespace {

using namespace psn::time_literals;

SimTime at(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(at(30), [&] { order.push_back(3); });
  s.schedule_at(at(10), [&] { order.push_back(1); });
  s.schedule_at(at(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), at(30));
}

TEST(SchedulerTest, FifoTieBreakAtEqualTimes) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(at(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, CallbackMaySchedule) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(at(1), [&] {
    order.push_back(1);
    s.schedule_after(Duration::millis(1), [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), at(2));
}

TEST(SchedulerTest, SameInstantSelfScheduleRunsAfterQueued) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(at(1), [&] {
    order.push_back(1);
    s.schedule_after(Duration::zero(), [&] { order.push_back(3); });
  });
  s.schedule_at(at(1), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventHandle h = s.schedule_at(at(1), [&] { ran = true; });
  s.cancel(h);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTest, CancelAfterFireIsNoop) {
  Scheduler s;
  const EventHandle h = s.schedule_at(at(1), [] {});
  s.run();
  s.cancel(h);  // must not throw
  s.cancel(EventHandle{});
}

TEST(SchedulerTest, RunUntilStopsInclusive) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(at(10), [&] { order.push_back(1); });
  s.schedule_at(at(20), [&] { order.push_back(2); });
  s.schedule_at(at(30), [&] { order.push_back(3); });
  const std::size_t n = s.run_until(at(20));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), at(20));
  EXPECT_EQ(s.pending(), 1u);
}

TEST(SchedulerTest, RunUntilAdvancesTimeWhenIdle) {
  Scheduler s;
  s.run_until(at(100));
  EXPECT_EQ(s.now(), at(100));
}

TEST(SchedulerTest, NextTimeSkipsCancelled) {
  Scheduler s;
  const EventHandle h = s.schedule_at(at(1), [] {});
  s.schedule_at(at(2), [] {});
  s.cancel(h);
  EXPECT_EQ(s.next_time(), at(2));
}

TEST(SchedulerTest, NextTimeEmpty) {
  Scheduler s;
  EXPECT_EQ(s.next_time(), SimTime::max());
}

TEST(SchedulerTest, StepReturnsFalseWhenDrained) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_at(at(1), [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(SchedulerTest, RunWithEventCap) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(at(i), [&] { count++; });
  }
  EXPECT_EQ(s.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(s.pending(), 6u);
}

TEST(SchedulerTest, RejectsPastScheduling) {
  Scheduler s;
  s.schedule_at(at(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(at(5), [] {}), InvariantError);
  EXPECT_THROW(s.schedule_after(-1_ms, [] {}), InvariantError);
}

TEST(SchedulerTest, RejectsNullCallback) {
  Scheduler s;
  EXPECT_THROW(s.schedule_at(at(1), Scheduler::Callback{}), InvariantError);
}

TEST(SchedulerTest, TotalExecutedCountsAcrossRuns) {
  Scheduler s;
  s.schedule_at(at(1), [] {});
  s.schedule_at(at(2), [] {});
  s.run();
  EXPECT_EQ(s.total_executed(), 2u);
}

TEST(SchedulerTest, RunawaySelfReschedulerStopsAtCap) {
  // Regression for the max_events/cap interplay: a callback that reschedules
  // itself at the current instant would otherwise run run() to SIZE_MAX.
  Scheduler s;
  std::size_t fired = 0;
  std::function<void()> runaway = [&] {
    fired++;
    s.schedule_at(s.now(), runaway);
  };
  s.schedule_at(at(1), runaway);
  EXPECT_EQ(s.run(500), 500u);
  EXPECT_EQ(fired, 500u);
  EXPECT_EQ(s.pending(), 1u);  // the runaway is still queued, not lost
  EXPECT_EQ(s.run(250), 250u);  // and a later run resumes from the cap
  EXPECT_EQ(fired, 750u);
}

}  // namespace
}  // namespace psn::sim
