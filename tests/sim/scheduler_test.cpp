#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace psn::sim {
namespace {

using namespace psn::time_literals;

SimTime at(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(at(30), [&] { order.push_back(3); });
  s.schedule_at(at(10), [&] { order.push_back(1); });
  s.schedule_at(at(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), at(30));
}

TEST(SchedulerTest, FifoTieBreakAtEqualTimes) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(at(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, CallbackMaySchedule) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(at(1), [&] {
    order.push_back(1);
    s.schedule_after(Duration::millis(1), [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), at(2));
}

TEST(SchedulerTest, SameInstantSelfScheduleRunsAfterQueued) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(at(1), [&] {
    order.push_back(1);
    s.schedule_after(Duration::zero(), [&] { order.push_back(3); });
  });
  s.schedule_at(at(1), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventHandle h = s.schedule_at(at(1), [&] { ran = true; });
  s.cancel(h);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTest, CancelAfterFireIsNoop) {
  Scheduler s;
  const EventHandle h = s.schedule_at(at(1), [] {});
  s.run();
  s.cancel(h);  // must not throw
  s.cancel(EventHandle{});
}

TEST(SchedulerTest, RunUntilStopsInclusive) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(at(10), [&] { order.push_back(1); });
  s.schedule_at(at(20), [&] { order.push_back(2); });
  s.schedule_at(at(30), [&] { order.push_back(3); });
  const std::size_t n = s.run_until(at(20));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), at(20));
  EXPECT_EQ(s.pending(), 1u);
}

TEST(SchedulerTest, RunUntilAdvancesTimeWhenIdle) {
  Scheduler s;
  s.run_until(at(100));
  EXPECT_EQ(s.now(), at(100));
}

TEST(SchedulerTest, NextTimeSkipsCancelled) {
  Scheduler s;
  const EventHandle h = s.schedule_at(at(1), [] {});
  s.schedule_at(at(2), [] {});
  s.cancel(h);
  EXPECT_EQ(s.next_time(), at(2));
}

TEST(SchedulerTest, NextTimeEmpty) {
  Scheduler s;
  EXPECT_EQ(s.next_time(), SimTime::max());
}

TEST(SchedulerTest, StepReturnsFalseWhenDrained) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_at(at(1), [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(SchedulerTest, RunWithEventCap) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(at(i), [&] { count++; });
  }
  EXPECT_EQ(s.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(s.pending(), 6u);
}

TEST(SchedulerTest, RejectsPastScheduling) {
  Scheduler s;
  s.schedule_at(at(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(at(5), [] {}), InvariantError);
  EXPECT_THROW(s.schedule_after(-1_ms, [] {}), InvariantError);
}

TEST(SchedulerTest, RejectsNullCallback) {
  Scheduler s;
  EXPECT_THROW(s.schedule_at(at(1), Scheduler::Callback{}), InvariantError);
}

TEST(SchedulerTest, TotalExecutedCountsAcrossRuns) {
  Scheduler s;
  s.schedule_at(at(1), [] {});
  s.schedule_at(at(2), [] {});
  s.run();
  EXPECT_EQ(s.total_executed(), 2u);
}

TEST(SchedulerSlabTest, StaleHandleCannotCancelRecycledSlot) {
  // Generation safety: after A fires, its slab slot is recycled for B.
  // Cancelling A's (now stale) handle must not touch B.
  Scheduler s;
  bool a_ran = false;
  bool b_ran = false;
  const EventHandle a = s.schedule_at(at(1), [&] { a_ran = true; });
  s.run();
  ASSERT_TRUE(a_ran);
  s.schedule_at(at(2), [&] { b_ran = true; });  // reuses A's slot
  s.cancel(a);                                  // stale: must be a no-op
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_TRUE(b_ran);
}

TEST(SchedulerSlabTest, CancelledHandleStaysStaleAcrossReuse) {
  // Cancel, recycle, cancel again: the second cancel of the same handle must
  // not release the slot out from under its new tenant.
  Scheduler s;
  bool b_ran = false;
  const EventHandle a = s.schedule_at(at(1), [] {});
  s.cancel(a);
  s.schedule_at(at(1), [&] { b_ran = true; });  // reuses the freed slot
  s.cancel(a);                                  // double-cancel: no-op
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_TRUE(b_ran);
}

TEST(SchedulerSlabTest, CallbackBeyondInlineCapacityStillRuns) {
  // The slab's inline buffer is a fast path, not a capacity limit: a closure
  // past kCallbackInlineBytes falls back to a heap cell transparently.
  struct Big {
    std::array<char, Scheduler::kCallbackInlineBytes + 8> pad;
  };
  static_assert(Scheduler::Callback::stores_inline<decltype([] {})>());
  Scheduler s;
  int seen = 0;
  Big big{};
  big.pad[0] = 3;
  auto fat = [&seen, big] { seen = big.pad[0]; };
  static_assert(!Scheduler::Callback::stores_inline<decltype(fat)>());
  s.schedule_at(at(1), std::move(fat));
  s.run();
  EXPECT_EQ(seen, 3);
}

TEST(SchedulerSlabTest, CancelHeavyWorkloadCompactsAndPreservesOrder) {
  // Duty-cycle pattern: mass-schedule timers, cancel most before they fire.
  // Tombstone compaction must bound the calendar while the survivors run in
  // exactly their (time, schedule-seq) order.
  Scheduler s;
  std::vector<int> fired;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 2000; ++i) {
    handles.push_back(
        s.schedule_at(at(i + 1), [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 2000; ++i) {
    if (i % 10 != 0) s.cancel(handles[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(s.pending(), 200u);
  s.run();
  ASSERT_EQ(fired.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], i * 10);
  }
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerSlabTest, SlotsRecycleUnderSteadyChurn) {
  // A bounded schedule/fire cycle must reuse slab slots rather than grow:
  // observable as handles repeating the same slots (same handle values are
  // private, so assert indirectly: massive churn, then cancellation of an
  // early stale handle is still a no-op and order still holds).
  Scheduler s;
  EventHandle first = s.schedule_at(at(1), [] {});
  s.run();
  std::size_t fired = 0;
  for (int round = 0; round < 1000; ++round) {
    s.schedule_after(Duration::millis(1), [&fired] { fired++; });
    s.run();
  }
  s.cancel(first);  // ancient handle, slot long since recycled
  EXPECT_EQ(fired, 1000u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerOrderTest, OutOfOrderInsertsMergeDeterministically) {
  // Exercises the monotone-run/overflow-heap split: in-order appends land in
  // the run, earlier times land in the heap, and the merged execution order
  // is still globally (time, seq).
  Scheduler s;
  std::vector<int> order;
  auto push = [&order](int v) { return [&order, v] { order.push_back(v); }; };
  s.schedule_at(at(20), push(0));  // run
  s.schedule_at(at(10), push(1));  // heap (before run tail)
  s.schedule_at(at(20), push(2));  // run again (ties with 0, after it)
  s.schedule_at(at(15), push(3));  // heap
  s.schedule_at(at(10), push(4));  // heap (ties with 1, after it)
  s.schedule_at(at(30), push(5));  // run
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 4, 3, 0, 2, 5}));
}

TEST(SchedulerOrderTest, RunRecyclesAfterDrainDuringExecution) {
  // Once the calendar drains mid-run, later schedules start a fresh monotone
  // run; times smaller than the *old* run tail must not be misplaced.
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(at(100), [&] {
    order.push_back(1);
    // Calendar is empty here; this starts a new run at an earlier-than-ever
    // absolute ordering position relative to the old tail.
    s.schedule_after(Duration::millis(1), [&] { order.push_back(2); });
  });
  s.run();
  s.schedule_at(at(102), [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), at(102));
}

TEST(SchedulerOrderTest, CancelFrontTombstoneIsSkippedAcrossContainers) {
  // Tombstones at the head of either container must be drained lazily
  // without disturbing the live merge order.
  Scheduler s;
  std::vector<int> order;
  auto push = [&order](int v) { return [&order, v] { order.push_back(v); }; };
  const EventHandle run_front = s.schedule_at(at(20), push(0));
  const EventHandle heap_front = s.schedule_at(at(10), push(1));
  s.schedule_at(at(25), push(2));
  s.schedule_at(at(12), push(3));
  s.cancel(run_front);
  s.cancel(heap_front);
  EXPECT_EQ(s.next_time(), at(12));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{3, 2}));
}

TEST(SchedulerTest, RunawaySelfReschedulerStopsAtCap) {
  // Regression for the max_events/cap interplay: a callback that reschedules
  // itself at the current instant would otherwise run run() to SIZE_MAX.
  Scheduler s;
  std::size_t fired = 0;
  std::function<void()> runaway = [&] {
    fired++;
    s.schedule_at(s.now(), runaway);
  };
  s.schedule_at(at(1), runaway);
  EXPECT_EQ(s.run(500), 500u);
  EXPECT_EQ(fired, 500u);
  EXPECT_EQ(s.pending(), 1u);  // the runaway is still queued, not lost
  EXPECT_EQ(s.run(250), 250u);  // and a later run resumes from the cap
  EXPECT_EQ(fired, 750u);
}

}  // namespace
}  // namespace psn::sim
